// Benchmarks regenerating the paper's evaluation. One benchmark per table
// and figure (reduced sweeps so `go test -bench=.` completes in minutes;
// run `cosbench` for the full-scale experiments), plus the ablation benches
// called out in DESIGN.md and micro-benchmarks of the two hot paths
// (model prediction, simulator event processing).
package cosmodel_test

import (
	"io"
	"sync"
	"testing"

	"cosmodel"
)

// quickScenario scales a paper scenario down for benchmarking.
func quickScenario(sc cosmodel.ScenarioConfig) cosmodel.ScenarioConfig {
	sc.RateStep *= 10
	sc.StepDur = 8
	sc.StepDiscard = 2
	sc.WarmDur = 15
	sc.CalibrationOps = 1000
	sc.CatalogObjects = 60000
	return sc
}

// BenchmarkFig5DiskFitting regenerates Fig. 5: benchmark the disk, fit the
// candidate families, tabulate recorded vs Gamma CDFs.
func BenchmarkFig5DiskFitting(b *testing.B) {
	cfg := cosmodel.DefaultFig5()
	cfg.Ops = 3000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := cosmodel.RunFig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Fits.Index[0].Name != "gamma" {
			b.Fatalf("gamma did not win: %s", res.Fits.Index[0].Name)
		}
	}
}

// BenchmarkFig6ScenarioS1 regenerates Fig. 6 (scenario S1): observed vs
// our/ODOPR/noWTA percentile curves over the rate sweep.
func BenchmarkFig6ScenarioS1(b *testing.B) {
	benchScenario(b, quickScenario(cosmodel.ScenarioS1()))
}

// BenchmarkFig7ScenarioS16 regenerates Fig. 7 (scenario S16).
func BenchmarkFig7ScenarioS16(b *testing.B) {
	benchScenario(b, quickScenario(cosmodel.ScenarioS16()))
}

func benchScenario(b *testing.B, sc cosmodel.ScenarioConfig) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc.Seed = int64(i + 1)
		res, err := cosmodel.RunScenario(sc)
		if err != nil {
			b.Fatal(err)
		}
		if res.AnalyzedSteps() == 0 {
			b.Fatal("no analyzed steps")
		}
		if i == 0 {
			s := res.ErrorSummary(1, "our")
			b.ReportMetric(s.Mean*100, "mean_err_%")
		}
	}
}

// legacyInverter hides the node-based quadrature API behind a plain
// Inverter, forcing the model down the pre-engine evaluation path (every
// composed transform closure inverted independently). It benchmarks the
// shared-subexpression engine against its predecessor on identical inputs.
type legacyInverter struct{ cosmodel.Inverter }

// fig6Sweep simulates the quick S1 sweep once and shares the captured
// windows across all prediction-sweep benchmarks.
var fig6Sweep = sync.OnceValues(func() (*cosmodel.SweepData, error) {
	sc := quickScenario(cosmodel.ScenarioS1())
	sc.Seed = 1
	return cosmodel.RunSweep(sc)
})

// BenchmarkFig6PredictionSweep measures the model-evaluation half of Fig. 6
// in isolation — the full rate × SLA × variant prediction sweep over a
// pre-captured simulation — which is what PR 2's evaluation engine
// accelerates (BenchmarkFig6ScenarioS1 is dominated by simulation time).
// Sub-benchmarks: "baseline" is the pre-engine path (independent closure
// inversions, sequential), "sequential" the shared-subexpression engine on
// one goroutine, "parallel" the engine with the default worker pool.
func BenchmarkFig6PredictionSweep(b *testing.B) {
	data, err := fig6Sweep()
	if err != nil {
		b.Fatal(err)
	}
	sc := quickScenario(cosmodel.ScenarioS1())
	sc.Seed = 1
	run := func(b *testing.B, overlay cosmodel.Options) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := cosmodel.EvaluateSweep(sc, data, overlay)
			if res.AnalyzedSteps() == 0 {
				b.Fatal("no analyzed steps")
			}
		}
	}
	b.Run("baseline", func(b *testing.B) {
		run(b, cosmodel.Options{Inverter: legacyInverter{cosmodel.NewEuler()}, Workers: 1})
	})
	b.Run("sequential", func(b *testing.B) {
		run(b, cosmodel.Options{Workers: 1})
	})
	b.Run("parallel", func(b *testing.B) {
		run(b, cosmodel.Options{})
	})
}

// BenchmarkTable1ErrorSummary regenerates Table I: best/worst/mean absolute
// error of the full model per scenario × SLA.
func BenchmarkTable1ErrorSummary(b *testing.B) {
	benchTables(b, cosmodel.RenderTable1)
}

// BenchmarkTable2ModelComparison regenerates Table II: mean errors of the
// our/ODOPR/noWTA models per scenario × SLA.
func BenchmarkTable2ModelComparison(b *testing.B) {
	benchTables(b, cosmodel.RenderTable2)
}

func benchTables(b *testing.B, render func(io.Writer, []*cosmodel.ScenarioResult) error) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s1 := quickScenario(cosmodel.ScenarioS1())
		s16 := quickScenario(cosmodel.ScenarioS16())
		s1.Seed, s16.Seed = int64(i+1), int64(i+2)
		r1, err := cosmodel.RunScenario(s1)
		if err != nil {
			b.Fatal(err)
		}
		r16, err := cosmodel.RunScenario(s16)
		if err != nil {
			b.Fatal(err)
		}
		if err := render(io.Discard, []*cosmodel.ScenarioResult{r1, r16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWTAExact compares the paper's Wa = Wbe approximation
// with the exact accept-waiting integral and with no WTA at all.
func BenchmarkAblationWTAExact(b *testing.B) {
	benchAblation(b, "wta", cosmodel.WTAVariants(), 1)
}

// BenchmarkAblationDiskQueueApprox compares the paper's M/M/1/K disk
// approximation against an unbounded M/G/1 disk queue for Nbe = 16.
func BenchmarkAblationDiskQueueApprox(b *testing.B) {
	benchAblation(b, "diskqueue", cosmodel.DiskQueueVariants(), 16)
}

// BenchmarkAblationCompounding compares the Poisson extra-read count with
// fixed-mean and geometric alternatives.
func BenchmarkAblationCompounding(b *testing.B) {
	benchAblation(b, "compound", cosmodel.CompoundVariants(), 1)
}

// BenchmarkAblationInversion compares the Euler, Talbot and Gaver-Stehfest
// Laplace inverters inside the full model.
func BenchmarkAblationInversion(b *testing.B) {
	benchAblation(b, "inversion", cosmodel.InverterVariants(), 1)
}

func benchAblation(b *testing.B, name string, variants []cosmodel.Variant, procs int) {
	b.Helper()
	sc := quickScenario(cosmodel.ScenarioS1())
	sc.Sim.ProcsPerDisk = procs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc.Seed = int64(i + 1)
		res, err := cosmodel.RunAblation(name, sc, variants)
		if err != nil {
			b.Fatal(err)
		}
		if res.Steps == 0 {
			b.Fatal("no analyzed steps")
		}
	}
}

// BenchmarkArchComparison regenerates the Section II claim: event-driven vs
// thread-per-connection tail latency at matched concurrency.
func BenchmarkArchComparison(b *testing.B) {
	cfg := cosmodel.DefaultArchComparison()
	cfg.Rates = []float64{150, 300}
	cfg.StepDur = 12
	cfg.Discard = 3
	cfg.CatalogObjects = 50000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := cosmodel.RunArchComparison(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.EventDriven) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkWriteSensitivity regenerates the read-heavy-assumption test:
// model error vs unmodeled PUT fraction.
func BenchmarkWriteSensitivity(b *testing.B) {
	cfg := cosmodel.DefaultWriteSensitivity()
	cfg.WriteFractions = []float64{0, 0.2}
	cfg.StepDur = 12
	cfg.Discard = 3
	cfg.CatalogObjects = 40000
	cfg.CalibrationOps = 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := cosmodel.RunWriteSensitivity(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) != 2 {
			b.Fatal("missing points")
		}
	}
}

// BenchmarkWorkloadIndependence regenerates the calibration-portability
// test: one benchmark serving five structurally different workloads.
func BenchmarkWorkloadIndependence(b *testing.B) {
	cfg := cosmodel.DefaultWorkloadIndependence()
	cfg.StepDur = 12
	cfg.Discard = 3
	cfg.CatalogObjects = 40000
	cfg.CalibrationOps = 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := cosmodel.RunWorkloadIndependence(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkModelPrediction measures one end-to-end analytic prediction
// (device + frontend + system model build plus three SLA evaluations).
func BenchmarkModelPrediction(b *testing.B) {
	props := cosmodel.DeviceProperties{
		IndexDisk: cosmodel.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  cosmodel.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  cosmodel.NewGammaMeanSCV(8e-3, 0.40),
		ParseFE:   cosmodel.Degenerate{Value: 0.3e-3},
		ParseBE:   cosmodel.Degenerate{Value: 0.5e-3},
	}
	m := cosmodel.OnlineMetrics{
		Rate: 60, DataRate: 72,
		MissIndex: 0.4, MissMeta: 0.35, MissData: 0.5,
		Procs: 1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dev, err := cosmodel.NewDeviceModel(props, m, cosmodel.Options{})
		if err != nil {
			b.Fatal(err)
		}
		fe, err := cosmodel.NewFrontendModel(240, 12, props.ParseFE)
		if err != nil {
			b.Fatal(err)
		}
		sys, err := cosmodel.NewSystemModel(fe, []*cosmodel.DeviceModel{dev}, cosmodel.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, sla := range []float64{0.01, 0.05, 0.1} {
			if p := sys.PercentileMeetingSLA(sla); p < 0 || p > 1 {
				b.Fatalf("bad prediction %v", p)
			}
		}
	}
}

// BenchmarkSimulatorRequests measures the cluster simulator's end-to-end
// request throughput.
func BenchmarkSimulatorRequests(b *testing.B) {
	cfg := cosmodel.DefaultSimConfig()
	catalog, err := cosmodel.NewCatalog(60000, cosmodel.WikipediaLikeSizes(), 1.05, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	cluster, err := cosmodel.NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := cluster.PrewarmCaches(catalog, 0.95); err != nil {
		b.Fatal(err)
	}
	const rate = 300.0
	records, err := cosmodel.GenerateTrace(catalog, cosmodel.Schedule{
		{Rate: rate, Duration: float64(b.N) / rate, Label: "bench"},
	}, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	cluster.Inject(records)
	cluster.Drain()
	b.ReportMetric(float64(cluster.EventsProcessed())/float64(b.N), "events/req")
}

// BenchmarkServePredictColdVsCached measures the serving engine's memoized
// prediction path against cold evaluation: "cold" invalidates the model
// cache every iteration (forcing a model build and transform inversions per
// SLA), "cached" answers the same query from the memo. The cached path is
// required to be at least 10x faster (see internal/serve's timing test); in
// practice the gap is several orders of magnitude.
func BenchmarkServePredictColdVsCached(b *testing.B) {
	props := cosmodel.DeviceProperties{
		IndexDisk: cosmodel.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  cosmodel.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  cosmodel.NewGammaMeanSCV(8e-3, 0.40),
		ParseFE:   cosmodel.Degenerate{Value: 0.3e-3},
		ParseBE:   cosmodel.Degenerate{Value: 0.5e-3},
	}
	newEngine := func(b *testing.B) *cosmodel.ServeEngine {
		cfg := cosmodel.DefaultServeConfig(props, 4)
		eng, err := cosmodel.NewServeEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		batch := make([]cosmodel.ServeObservation, cfg.Devices)
		for d := range batch {
			batch[d] = cosmodel.ServeObservation{
				Device: d, Interval: 10, Requests: 500, DataReads: 600,
				IndexHits: 700, IndexMisses: 300,
				MetaHits: 650, MetaMisses: 350,
				DataHits: 500, DataMisses: 500,
				DiskBusy: 8, DiskOps: 1000,
			}
		}
		if err := eng.Ingest(batch); err != nil {
			b.Fatal(err)
		}
		return eng
	}
	slas := []float64{0.01, 0.05, 0.1}
	b.Run("cold", func(b *testing.B) {
		eng := newEngine(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.InvalidateCache()
			if _, err := eng.Predict(slas); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		eng := newEngine(b)
		if _, err := eng.Predict(slas); err != nil { // warm the cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			preds, err := eng.Predict(slas)
			if err != nil {
				b.Fatal(err)
			}
			if !preds[0].Cached {
				b.Fatal("cache miss on the warmed path")
			}
		}
		b.ReportMetric(eng.Stats().CacheHitRatio, "hit-ratio")
	})
	// refresh is the calibration hot-swap path: Recalibrate validates and
	// atomically publishes new properties, bumps the cache generation, and
	// the next prediction re-inverts from scratch — the full latency a
	// client sees right after a drift-triggered recalibration.
	b.Run("refresh", func(b *testing.B) {
		eng := newEngine(b)
		variants := [2]cosmodel.DeviceProperties{props, props}
		variants[1].DataDisk = cosmodel.NewGammaMeanSCV(12e-3, 0.9)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.Recalibrate(variants[i%2]); err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Predict(slas); err != nil {
				b.Fatal(err)
			}
		}
	})
}
