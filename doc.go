// Package cosmodel predicts response-latency percentiles for cloud object
// storage systems. It is a from-scratch Go reproduction of
//
//	Yi Su, Dan Feng, Yu Hua, Zhan Shi.
//	"Predicting Response Latency Percentiles for Cloud Object Storage
//	Systems". ICPP 2017. DOI 10.1109/ICPP.2017.33.
//
// The package exposes three layers:
//
//   - The analytic model (the paper's contribution): build a SystemModel
//     from benchmarked DeviceProperties and measured OnlineMetrics, then
//     ask for the percentile of requests meeting an SLA. The model packs
//     request parsing, index lookup, metadata read and chunked data reads
//     into a single M/G/1 "union operation", models the waiting time for
//     being accept()-ed at backend servers, and reduces multi-process
//     devices to the single-process case through an M/M/1/K disk queue.
//
//   - A discrete-event simulator of an OpenStack-Swift-like event-driven
//     object store (Cluster), standing in for the paper's 7-node testbed:
//     it is both a validation target for the model and a workbench for
//     what-if analysis.
//
//   - The experiment drivers that regenerate the paper's evaluation
//     (Fig. 5, Figs. 6-7, Tables I-II) plus ablations of the paper's
//     modeling choices.
//
// # Quick start
//
//	props, _ := cosmodel.FitDeviceProperties(indexSamples, metaSamples, dataSamples, 0.3e-3, 0.5e-3)
//	dev, _ := cosmodel.NewDeviceModel(props, cosmodel.OnlineMetrics{
//		Rate: 80, DataRate: 96,
//		MissIndex: 0.4, MissMeta: 0.35, MissData: 0.5,
//		Procs: 1,
//	}, cosmodel.Options{})
//	fe, _ := cosmodel.NewFrontendModel(320, 12, props.ParseFE)
//	sys, _ := cosmodel.NewSystemModel(fe, []*cosmodel.DeviceModel{dev}, cosmodel.Options{})
//	fmt.Printf("P(latency <= 100ms) = %.3f\n", sys.PercentileMeetingSLA(0.100))
//
// See examples/ for runnable programs and cmd/cosbench for the full
// evaluation harness.
package cosmodel
