// Bench-smoke artifact for the coded-read prediction path: the serving
// engine's coded /predict latencies cold (model build plus order-statistic
// combination per SLA) and cached (memoized), with allocations per
// operation, and the cold-path cost relative to a plain predict on the
// same operating point. Written to results/BENCH_PR6.json; gated behind
// COSMODEL_BENCH_SMOKE=1 like the other artifacts (`make bench-smoke` sets
// the gate and mirrors the artifacts at the repo root).
package cosmodel_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"cosmodel"
)

type codedSmokeReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// N and K identify the measured stripe shape; SLAs the query width.
	N    int `json:"n"`
	K    int `json:"k"`
	SLAs int `json:"slas"`
	// CodedColdNs and CodedCachedNs are the serving engine's per-query
	// coded-predict latencies: cold invalidates the memo every round
	// (forcing a model build, the frontend-grid discretization, and one
	// order-statistic bisection per SLA), cached answers from the memo.
	CodedColdNs   int64 `json:"coded_cold_ns"`
	CodedCachedNs int64 `json:"coded_cached_ns"`
	// CodedColdAllocs and CodedCachedAllocs are allocations per query on
	// the two paths (testing.AllocsPerRun).
	CodedColdAllocs   float64 `json:"coded_cold_allocs"`
	CodedCachedAllocs float64 `json:"coded_cached_allocs"`
	// PlainColdNs is the uncoded cold predict on the same operating point;
	// CodedVsPlainCold is the cold-path cost ratio of the order-statistic
	// model over the plain response CDF.
	PlainColdNs      int64   `json:"plain_cold_ns"`
	CodedVsPlainCold float64 `json:"coded_vs_plain_cold"`
}

// codedSmokeEngine builds a warm serving engine with one ingested batch,
// shared by the coded benchmark and the artifact test.
func codedSmokeEngine(fatal func(...any)) *cosmodel.ServeEngine {
	props := cosmodel.DeviceProperties{
		IndexDisk: cosmodel.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  cosmodel.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  cosmodel.NewGammaMeanSCV(8e-3, 0.40),
		ParseFE:   cosmodel.Degenerate{Value: 0.3e-3},
		ParseBE:   cosmodel.Degenerate{Value: 0.5e-3},
	}
	cfg := cosmodel.DefaultServeConfig(props, 4)
	eng, err := cosmodel.NewServeEngine(cfg)
	if err != nil {
		fatal(err)
	}
	batch := make([]cosmodel.ServeObservation, cfg.Devices)
	for d := range batch {
		batch[d] = cosmodel.ServeObservation{
			Device: d, Interval: 10, Requests: 500, DataReads: 600,
			IndexHits: 700, IndexMisses: 300,
			MetaHits: 650, MetaMisses: 350,
			DataHits: 500, DataMisses: 500,
			DiskBusy: 8, DiskOps: 1000,
		}
	}
	if err := eng.Ingest(batch); err != nil {
		fatal(err)
	}
	return eng
}

// BenchmarkCodedPredict measures the serving engine's coded-read prediction
// on a (3,1) replication spec: cold (memo invalidated every iteration) and
// cached, both with allocations reported.
func BenchmarkCodedPredict(b *testing.B) {
	spec := cosmodel.ServeCodedReadSpec{N: 3, K: 1}
	slas := []float64{0.01, 0.05, 0.1}
	b.Run("cold", func(b *testing.B) {
		eng := codedSmokeEngine(b.Fatal)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.InvalidateCache()
			if _, err := eng.PredictCoded(spec, slas); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		eng := codedSmokeEngine(b.Fatal)
		if _, err := eng.PredictCoded(spec, slas); err != nil { // warm
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			preds, err := eng.PredictCoded(spec, slas)
			if err != nil {
				b.Fatal(err)
			}
			if !preds[0].Cached {
				b.Fatal("cache miss on the warmed path")
			}
		}
	})
}

// TestBenchSmokeCoded measures the coded predict path cold and cached, with
// allocations per operation, and writes the PR's bench artifact.
func TestBenchSmokeCoded(t *testing.T) {
	if os.Getenv("COSMODEL_BENCH_SMOKE") == "" {
		t.Skip("set COSMODEL_BENCH_SMOKE=1 to produce results/BENCH_PR6.json")
	}
	eng := codedSmokeEngine(t.Fatal)
	spec := cosmodel.ServeCodedReadSpec{N: 3, K: 1}
	slas := []float64{0.01, 0.05, 0.1}
	coded := func() {
		if _, err := eng.PredictCoded(spec, slas); err != nil {
			t.Fatal(err)
		}
	}
	plain := func() {
		if _, err := eng.Predict(slas); err != nil {
			t.Fatal(err)
		}
	}
	coded() // warm
	rep := codedSmokeReport{
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		N:                 spec.N,
		K:                 spec.K,
		SLAs:              len(slas),
		CodedCachedNs:     best(20, func(int) { coded() }),
		CodedCachedAllocs: testing.AllocsPerRun(10, coded),
		CodedColdNs:       best(20, func(int) { eng.InvalidateCache(); coded() }),
		CodedColdAllocs: testing.AllocsPerRun(10, func() {
			eng.InvalidateCache()
			coded()
		}),
		PlainColdNs: best(20, func(int) { eng.InvalidateCache(); plain() }),
	}
	rep.CodedVsPlainCold = float64(rep.CodedColdNs) / float64(rep.PlainColdNs)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("results", "BENCH_PR6.json")
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("coded predict cold %s (%.0f allocs), cached %s (%.0f allocs), %.2fx plain cold -> %s",
		time.Duration(rep.CodedColdNs), rep.CodedColdAllocs,
		time.Duration(rep.CodedCachedNs), rep.CodedCachedAllocs,
		rep.CodedVsPlainCold, path)

	// The regression bars: the memo must actually short-circuit the coded
	// path (an order of magnitude and near allocation-free), and the coded
	// cold path — one extra discretized convolution over the plain model —
	// must stay within 100x of a plain cold predict.
	if rep.CodedCachedNs*10 > rep.CodedColdNs {
		t.Errorf("cached coded predict %s not 10x under cold %s",
			time.Duration(rep.CodedCachedNs), time.Duration(rep.CodedColdNs))
	}
	if rep.CodedCachedAllocs > 100 {
		t.Errorf("cached coded predict allocates %.0f objects per query, want <= 100", rep.CodedCachedAllocs)
	}
	if rep.CodedVsPlainCold > 100 {
		t.Errorf("coded cold predict %.1fx a plain cold predict, want <= 100x", rep.CodedVsPlainCold)
	}
}
