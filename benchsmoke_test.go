// Bench-smoke artifact: a one-shot measurement of the evaluation engine's
// speedup over the pre-engine path, written to results/BENCH_PR2.json.
// Gated behind COSMODEL_BENCH_SMOKE=1 so ordinary `go test` runs stay fast
// and deterministic; `make bench-smoke` sets the gate.
package cosmodel_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"cosmodel"
)

type benchSmokeReport struct {
	// GOMAXPROCS records the parallelism available to the "parallel" path.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Steps and SLAs size the measured prediction sweep.
	Steps int `json:"steps"`
	SLAs  int `json:"slas"`
	// BaselineNs, SequentialNs and ParallelNs are per-sweep wall times:
	// the pre-engine path (independent closure inversions), the
	// shared-subexpression engine on one goroutine, and the engine with
	// the default worker pool.
	BaselineNs   int64 `json:"baseline_ns"`
	SequentialNs int64 `json:"sequential_ns"`
	ParallelNs   int64 `json:"parallel_ns"`
	// SpeedupSequential = baseline/sequential: the single-core win from
	// shared-subexpression evaluation. SpeedupParallel = baseline/parallel
	// adds the worker pool (equals SpeedupSequential at GOMAXPROCS=1).
	SpeedupSequential float64 `json:"speedup_sequential"`
	SpeedupParallel   float64 `json:"speedup_parallel"`
}

// TestBenchSmokeArtifact times the Fig. 6 prediction sweep on its three
// evaluation paths and records the measured speedups.
func TestBenchSmokeArtifact(t *testing.T) {
	if os.Getenv("COSMODEL_BENCH_SMOKE") == "" {
		t.Skip("set COSMODEL_BENCH_SMOKE=1 to produce results/BENCH_PR2.json")
	}
	data, err := fig6Sweep()
	if err != nil {
		t.Fatal(err)
	}
	sc := quickScenario(cosmodel.ScenarioS1())
	sc.Seed = 1
	const rounds = 5
	measure := func(overlay cosmodel.Options) int64 {
		best := time.Duration(1<<63 - 1)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			res := cosmodel.EvaluateSweep(sc, data, overlay)
			if elapsed := time.Since(start); elapsed < best {
				best = elapsed
			}
			if res.AnalyzedSteps() == 0 {
				t.Fatal("no analyzed steps")
			}
		}
		return best.Nanoseconds()
	}
	rep := benchSmokeReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Steps:      len(data.Windows),
		SLAs:       len(sc.Sim.SLAs),
		BaselineNs: measure(cosmodel.Options{
			Inverter: legacyInverter{cosmodel.NewEuler()}, Workers: 1,
		}),
		SequentialNs: measure(cosmodel.Options{Workers: 1}),
		ParallelNs:   measure(cosmodel.Options{}),
	}
	rep.SpeedupSequential = float64(rep.BaselineNs) / float64(rep.SequentialNs)
	rep.SpeedupParallel = float64(rep.BaselineNs) / float64(rep.ParallelNs)
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("results", "BENCH_PR2.json")
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("engine speedup: %.2fx sequential, %.2fx parallel (GOMAXPROCS=%d) -> %s",
		rep.SpeedupSequential, rep.SpeedupParallel, rep.GOMAXPROCS, path)
	if rep.SpeedupParallel < 2 {
		t.Errorf("parallel path speedup %.2fx below the 2x target", rep.SpeedupParallel)
	}
}
