// Bench-smoke artifact for the observability layer: the cost of running the
// prediction sweep with evaluation spans wired to a metrics registry versus
// uninstrumented, the serving engine's cold and cached prediction latencies
// under the always-on instrumentation, and the price of one Prometheus
// scrape. Written to results/BENCH_PR5.json; gated behind
// COSMODEL_BENCH_SMOKE=1 like the other artifacts (`make bench-smoke` sets
// the gate and mirrors the artifacts at the repo root).
package cosmodel_test

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"cosmodel"
)

type obsSmokeReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// Steps and SLAs size the measured prediction sweep.
	Steps int `json:"steps"`
	SLAs  int `json:"slas"`
	// SweepPlainNs and SweepInstrumentedNs are per-sweep wall times of the
	// engine's parallel path with Options.Observer nil versus wired to a
	// registry recording per-span counters and latency histograms (the same
	// shape cosserve installs). ObserverOverhead is their ratio; the
	// acceptance bar is <= 1.05.
	SweepPlainNs        int64   `json:"sweep_plain_ns"`
	SweepInstrumentedNs int64   `json:"sweep_instrumented_ns"`
	ObserverOverhead    float64 `json:"observer_overhead"`
	// ServeColdNs and ServeCachedNs are the serving engine's per-query
	// latencies (cache invalidated every round vs the memoized path), both
	// under the engine's always-on instrumentation. CachedVsPR4 compares
	// the cached path against the pre-observability number recorded in
	// results/BENCH_PR4.json (0 when that artifact is absent).
	ServeColdNs   int64   `json:"serve_cold_ns"`
	ServeCachedNs int64   `json:"serve_cached_ns"`
	CachedVsPR4   float64 `json:"cached_vs_pr4"`
	// ScrapeNs is one full Prometheus text render of the serving registry.
	ScrapeNs int64 `json:"scrape_ns"`
}

// best runs op `rounds` times and returns the fastest wall time: the usual
// noise-rejecting smoke measurement.
func best(rounds int, op func(i int)) int64 {
	b := time.Duration(1<<63 - 1)
	for r := 0; r < rounds; r++ {
		start := time.Now()
		op(r)
		if elapsed := time.Since(start); elapsed < b {
			b = elapsed
		}
	}
	return b.Nanoseconds()
}

// TestBenchSmokeObservability measures the observability overhead on the two
// headline paths (Fig. 6 prediction sweep, serve predict cold vs cached) and
// writes the PR's bench artifact.
func TestBenchSmokeObservability(t *testing.T) {
	if os.Getenv("COSMODEL_BENCH_SMOKE") == "" {
		t.Skip("set COSMODEL_BENCH_SMOKE=1 to produce results/BENCH_PR5.json")
	}
	data, err := fig6Sweep()
	if err != nil {
		t.Fatal(err)
	}
	sc := quickScenario(cosmodel.ScenarioS1())
	sc.Seed = 1
	const rounds = 5
	sweep := func(overlay cosmodel.Options) int64 {
		return best(rounds, func(int) {
			res := cosmodel.EvaluateSweep(sc, data, overlay)
			if res.AnalyzedSteps() == 0 {
				t.Fatal("no analyzed steps")
			}
		})
	}
	// The instrumented run wires the same span shape cosserve installs:
	// one counter increment and one histogram observation per completed
	// evaluation span.
	reg := cosmodel.NewObsRegistry()
	instrumented := cosmodel.Options{Observer: func(ev cosmodel.EvalEvent) {
		lbl := cosmodel.ObsLabels{"op": ev.Op}
		reg.Counter("model_ops_total", "Completed evaluation spans.", lbl).Inc()
		reg.Histogram("model_op_seconds", "Span wall time.", lbl).Observe(ev.Duration.Seconds())
	}}
	rep := obsSmokeReport{
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		Steps:               len(data.Windows),
		SLAs:                len(sc.Sim.SLAs),
		SweepPlainNs:        sweep(cosmodel.Options{}),
		SweepInstrumentedNs: sweep(instrumented),
	}
	rep.ObserverOverhead = float64(rep.SweepInstrumentedNs) / float64(rep.SweepPlainNs)

	// The serving engine: cold (invalidate + re-invert) and cached
	// (memoized) prediction latencies, instrumentation always on.
	props := cosmodel.DeviceProperties{
		IndexDisk: cosmodel.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  cosmodel.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  cosmodel.NewGammaMeanSCV(8e-3, 0.40),
		ParseFE:   cosmodel.Degenerate{Value: 0.3e-3},
		ParseBE:   cosmodel.Degenerate{Value: 0.5e-3},
	}
	cfg := cosmodel.DefaultServeConfig(props, 4)
	eng, err := cosmodel.NewServeEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]cosmodel.ServeObservation, cfg.Devices)
	for d := range batch {
		batch[d] = cosmodel.ServeObservation{
			Device: d, Interval: 10, Requests: 500, DataReads: 600,
			IndexHits: 700, IndexMisses: 300,
			MetaHits: 650, MetaMisses: 350,
			DataHits: 500, DataMisses: 500,
			DiskBusy: 8, DiskOps: 1000,
		}
	}
	if err := eng.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	slas := []float64{0.01, 0.05, 0.1}
	predict := func() {
		if _, err := eng.Predict(slas); err != nil {
			t.Fatal(err)
		}
	}
	predict() // warm
	rep.ServeCachedNs = best(20, func(int) { predict() })
	rep.ServeColdNs = best(20, func(int) { eng.InvalidateCache(); predict() })
	rep.ScrapeNs = best(20, func(int) {
		if err := eng.Registry().WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
	})
	if prev, err := os.ReadFile(filepath.Join("results", "BENCH_PR4.json")); err == nil {
		var pr4 struct {
			CachedNs int64 `json:"cached_ns"`
		}
		if json.Unmarshal(prev, &pr4) == nil && pr4.CachedNs > 0 {
			rep.CachedVsPR4 = float64(rep.ServeCachedNs) / float64(pr4.CachedNs)
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("results", "BENCH_PR5.json")
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("observer overhead %.3fx on the prediction sweep; serve cold %s, cached %s, scrape %s -> %s",
		rep.ObserverOverhead, time.Duration(rep.ServeColdNs),
		time.Duration(rep.ServeCachedNs), time.Duration(rep.ScrapeNs), path)

	// The regression bars: spans must cost <= 5% of the sweep, and the
	// cached serve path must stay within 5% of its pre-observability
	// measurement (when one is on disk to compare against). Sub-microsecond
	// noise dominates the cached path, so the PR 4 comparison also accepts
	// any absolute reading under 2x the recorded one when that reading is
	// still below 20µs — a memo lookup, not a re-inversion.
	if rep.ObserverOverhead > 1.05 {
		t.Errorf("observer overhead %.3fx exceeds 1.05x", rep.ObserverOverhead)
	}
	if rep.CachedVsPR4 > 1.05 && !(rep.ServeCachedNs < 20_000 && rep.CachedVsPR4 < 2) {
		t.Errorf("cached predict %.3fx of the PR 4 measurement, want <= 1.05x", rep.CachedVsPR4)
	}
	if rep.ServeColdNs <= rep.ServeCachedNs {
		t.Error("cold predict measured faster than cached; measurement broken")
	}
}
