// Bench-smoke artifact for the sharded serving tier: what the cosrouter
// fan-out costs over a single cosserve answering the same /predict from one
// process, plus the dual-write ingest cost and the steady-state failover
// path with a shard node down. Written to results/BENCH_PR8.json; gated
// behind COSMODEL_BENCH_SMOKE=1 like the other artifacts.
package cosmodel_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"cosmodel"
)

type clusterSmokeReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	Nodes      int `json:"nodes"`
	Replicas   int `json:"replicas"`
	Devices    int `json:"devices"`
	SLAs       int `json:"slas"`
	// SingleCachedNs is a lone cosserve answering a cached /predict over
	// loopback HTTP — the no-cluster baseline including transport.
	SingleCachedNs int64 `json:"single_cached_ns"`
	// RouterCachedNs is the same query through the router: fan-out to the
	// shard owners, per-shard cached partials, exact merge.
	RouterCachedNs int64 `json:"router_cached_ns"`
	// RouterFailoverNs is the router's steady state with one node down
	// (marked down after the first strike, so the chain skips it).
	RouterFailoverNs int64 `json:"router_failover_ns"`
	// IngestFanoutNs is one dual-written observation batch through the
	// router; SingleIngestNs the same batch into the lone cosserve.
	SingleIngestNs int64 `json:"single_ingest_ns"`
	IngestFanoutNs int64 `json:"ingest_fanout_ns"`
	// FanoutOverhead ratios the router's cached predict over the single
	// server's: the price of surviving shard loss.
	FanoutOverhead float64 `json:"fanout_overhead"`
}

// clusterSmokeProps mirrors the operating point of the earlier artifacts.
func clusterSmokeProps() cosmodel.DeviceProperties {
	return cosmodel.DeviceProperties{
		IndexDisk: cosmodel.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  cosmodel.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  cosmodel.NewGammaMeanSCV(8e-3, 0.40),
		ParseFE:   cosmodel.Degenerate{Value: 0.3e-3},
		ParseBE:   cosmodel.Degenerate{Value: 0.5e-3},
	}
}

func clusterSmokeBatch(devices int) []cosmodel.ServeObservation {
	batch := make([]cosmodel.ServeObservation, devices)
	for d := range batch {
		batch[d] = cosmodel.ServeObservation{
			Device: d, Interval: 10, Requests: 400 + 100*uint64(d), DataReads: 600,
			IndexHits: 700, IndexMisses: 300,
			MetaHits: 650, MetaMisses: 350,
			DataHits: 500, DataMisses: 500,
			DiskBusy: 8, DiskOps: 1000,
		}
	}
	return batch
}

// smokeTier spins a single-server baseline and a 3-node sharded tier over
// loopback HTTP; returns the two base URLs, the shard server handles and a
// teardown.
func smokeTier(fatal func(...any), devices int) (single, router string, shardSrvs []*httptest.Server, done func()) {
	var closers []func()
	cfg := cosmodel.DefaultServeConfig(clusterSmokeProps(), devices)
	srv, err := cosmodel.NewServeServer(cfg)
	if err != nil {
		fatal(err)
	}
	ss := httptest.NewServer(srv.Handler())
	closers = append(closers, ss.Close)

	const nodes = 3
	urls := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		scfg := cosmodel.DefaultServeConfig(clusterSmokeProps(), devices)
		scfg.ShardMode = true
		shard, err := cosmodel.NewServeServer(scfg)
		if err != nil {
			fatal(err)
		}
		hs := httptest.NewServer(shard.Handler())
		closers = append(closers, hs.Close)
		shardSrvs = append(shardSrvs, hs)
		urls[i] = hs.URL
	}
	ccfg := cosmodel.DefaultClusterConfig(urls, devices)
	ccfg.ProbeInterval = 0 // no background prober in the measurement
	ccfg.FailThreshold = 1
	ccfg.Retry = cosmodel.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond,
		MaxDelay: 5 * time.Millisecond, Multiplier: 2}
	rt, err := cosmodel.NewClusterRouter(ccfg)
	if err != nil {
		fatal(err)
	}
	rs := httptest.NewServer(rt.Handler())
	closers = append(closers, rs.Close, rt.Close)
	return ss.URL, rs.URL, shardSrvs, func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
}

func smokePost(fatal func(...any), url string, body any) {
	payload, err := json.Marshal(body)
	if err != nil {
		fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("POST %s: %d %s", url, resp.StatusCode, b))
	}
}

func smokeGet(fatal func(...any), url string) {
	resp, err := http.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("GET %s: %d %s", url, resp.StatusCode, b))
	}
}

// BenchmarkRouterFanOut measures the cached /predict through the sharded
// tier against the single-server baseline, same operating point, both over
// loopback HTTP.
func BenchmarkRouterFanOut(b *testing.B) {
	const devices = 4
	fatal := func(args ...any) { b.Fatal(args...) }
	single, router, _, done := smokeTier(fatal, devices)
	defer done()
	req := cosmodel.ServeIngestRequest{Observations: clusterSmokeBatch(devices)}
	smokePost(fatal, single+"/ingest", req)
	smokePost(fatal, router+"/ingest", req)
	smokeGet(fatal, single+"/predict") // warm both caches
	smokeGet(fatal, router+"/predict")
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			smokeGet(fatal, single+"/predict")
		}
	})
	b.Run("router", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			smokeGet(fatal, router+"/predict")
		}
	})
}

// TestBenchSmokeCluster measures the sharded tier end to end and writes the
// PR's bench artifact.
func TestBenchSmokeCluster(t *testing.T) {
	if os.Getenv("COSMODEL_BENCH_SMOKE") == "" {
		t.Skip("set COSMODEL_BENCH_SMOKE=1 to produce results/BENCH_PR8.json")
	}
	const devices = 4
	fatal := func(args ...any) { t.Fatal(args...) }
	single, router, shardSrvs, done := smokeTier(fatal, devices)
	defer done()
	req := cosmodel.ServeIngestRequest{Observations: clusterSmokeBatch(devices)}
	smokePost(fatal, single+"/ingest", req)
	smokePost(fatal, router+"/ingest", req)
	smokeGet(fatal, single+"/predict") // warm both caches
	smokeGet(fatal, router+"/predict")

	rep := clusterSmokeReport{
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Nodes:          len(shardSrvs),
		Replicas:       2,
		Devices:        devices,
		SLAs:           3,
		SingleCachedNs: best(30, func(int) { smokeGet(fatal, single+"/predict") }),
		RouterCachedNs: best(30, func(int) { smokeGet(fatal, router+"/predict") }),
		SingleIngestNs: best(20, func(int) { smokePost(fatal, single+"/ingest", req) }),
		IngestFanoutNs: best(20, func(int) { smokePost(fatal, router+"/ingest", req) }),
	}

	// Kill one shard node for real (connection refused) and measure the
	// steady state: the first strike marks it down, after which the fan-out
	// goes straight to the warm standby.
	shardSrvs[0].Close()
	smokeGet(fatal, router+"/predict") // absorb the strike
	rep.RouterFailoverNs = best(30, func(int) { smokeGet(fatal, router+"/predict") })
	rep.FanoutOverhead = float64(rep.RouterCachedNs) / float64(rep.SingleCachedNs)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("results", "BENCH_PR8.json")
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("single cached %s, router cached %s (%.1fx), failover steady state %s; ingest single %s, dual-write %s -> %s",
		time.Duration(rep.SingleCachedNs), time.Duration(rep.RouterCachedNs), rep.FanoutOverhead,
		time.Duration(rep.RouterFailoverNs),
		time.Duration(rep.SingleIngestNs), time.Duration(rep.IngestFanoutNs), path)

	// Acceptance bars: a cached fan-out answer in under 5ms on loopback,
	// and the degraded steady state no worse than 3x the healthy fan-out
	// (the down node is skipped, not retried, on every query).
	if rep.RouterCachedNs > 5_000_000 {
		t.Errorf("cached fan-out predict %s, want < 5ms", time.Duration(rep.RouterCachedNs))
	}
	if rep.RouterFailoverNs > 3*rep.RouterCachedNs {
		t.Errorf("failover steady state %s over 3x the healthy fan-out %s",
			time.Duration(rep.RouterFailoverNs), time.Duration(rep.RouterCachedNs))
	}
}
