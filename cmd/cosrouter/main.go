// Command cosrouter fronts a sharded, replicated tier of shard-mode cosserve
// instances (cosserve -shard). Monitoring agents POST observations to the
// router's /ingest, which dual-writes each device's batch to every replica of
// its shard; /predict and /advise fan out to the shard owners, evaluate
// partial CDFs in parallel and merge them into the exact tier-wide mixture
// answer. The router holds no model state: any number of routers can front
// the same shards, and a restarted router is serving at full fidelity as soon
// as its rate window refills.
//
// Robustness: shard calls retry with capped exponential backoff and honor
// Retry-After on shed; slow replicas are hedged to the warm standby after
// -hedge; a health prober marks nodes down after -fail-threshold consecutive
// failures and revives them on the first successful probe, no restart needed.
// When a device's whole replica chain is down the router keeps answering from
// the surviving shards, renormalized, with `degraded: true`, the lost devices
// named and the confidence interval widened over their traffic share.
//
// Usage:
//
//	cosrouter -addr :8090 -nodes http://s1:8080,http://s2:8080,http://s3:8080 \
//	    -devices 4 -replicas 2 -slas 10ms,50ms,100ms
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cosmodel"
)

func main() {
	cfg, run, err := configure(os.Args[1:])
	if err != nil {
		fatal(err)
	}
	router, err := cosmodel.NewClusterRouter(cfg)
	if err != nil {
		fatal(err)
	}
	router.Start()
	defer router.Close()
	fmt.Printf("cosrouter: %d shard nodes x %d replicas, %d partitions, %d devices, SLAs %v\n",
		len(cfg.Nodes), cfg.Replicas, cfg.Partitions, cfg.Devices, cfg.SLAs)
	fmt.Printf("cosrouter: hedge %s, probe %s, fail threshold %d\n",
		cfg.HedgeDelay, cfg.ProbeInterval, cfg.FailThreshold)
	fmt.Printf("cosrouter: listening on %s\n", run.addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := cosmodel.NewServeHTTPServer(run.addr, router.Handler())
	err = cosmodel.ListenAndServeGraceful(ctx, hs, run.grace)
	switch {
	case err == nil:
		fmt.Println("cosrouter: drained cleanly, bye")
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintln(os.Stderr, "cosrouter: shutdown grace expired with requests still in flight")
		os.Exit(1)
	default:
		fatal(err)
	}
}

type runOptions struct {
	addr  string
	grace time.Duration
}

// configure parses flags into a router configuration; split from main so
// tests can exercise it without binding a socket.
func configure(args []string) (cosmodel.ClusterConfig, runOptions, error) {
	fs := flag.NewFlagSet("cosrouter", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8090", "listen address")
		nodes    = fs.String("nodes", "", "comma-separated shard base URLs (cosserve -shard instances)")
		devices  = fs.Int("devices", 4, "storage devices in the deployment")
		replicas = fs.Int("replicas", 2, "replica-chain length per shard (primary + warm standbys)")
		parts    = fs.Int("partitions", 64, "consistent-hash ring partitions (power of two)")
		seed     = fs.Int64("seed", 0, "ring assignment seed")
		slas     = fs.String("slas", "10ms,50ms,100ms", "comma-separated default SLA bounds")
		window   = fs.Duration("window", time.Minute, "rate-tracking window span (match the shards' -window)")
		hedge    = fs.Duration("hedge", 25*time.Millisecond, "delay before hedging a shard call to the standby (0 = no hedging)")
		probe    = fs.Duration("probe", time.Second, "health-probe period")
		failTh   = fs.Int("fail-threshold", 2, "consecutive failures before a shard is marked down")
		inflight = fs.Int("max-inflight", 64, "concurrent fan-out queries before shedding with 503")
		grace    = fs.Duration("shutdown-grace", 15*time.Second, "drain time for in-flight requests on SIGINT/SIGTERM")
	)
	if err := fs.Parse(args); err != nil {
		return cosmodel.ClusterConfig{}, runOptions{}, err
	}
	var urls []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			urls = append(urls, n)
		}
	}
	if len(urls) == 0 {
		return cosmodel.ClusterConfig{}, runOptions{}, fmt.Errorf("cosrouter: -nodes is required")
	}
	cfg := cosmodel.DefaultClusterConfig(urls, *devices)
	cfg.Replicas = *replicas
	cfg.Partitions = *parts
	cfg.Seed = *seed
	cfg.Window = window.Seconds()
	cfg.HedgeDelay = *hedge
	cfg.ProbeInterval = *probe
	cfg.FailThreshold = *failTh
	cfg.MaxInflight = *inflight
	var err error
	if cfg.SLAs, err = parseSLAs(*slas); err != nil {
		return cosmodel.ClusterConfig{}, runOptions{}, err
	}
	if err := cfg.Validate(); err != nil {
		return cosmodel.ClusterConfig{}, runOptions{}, err
	}
	return cfg, runOptions{addr: *addr, grace: *grace}, nil
}

func parseSLAs(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad SLA %q: %w", part, err)
		}
		out = append(out, d.Seconds())
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cosrouter:", err)
	os.Exit(1)
}
