package main

import (
	"testing"
	"time"
)

func TestConfigureDefaults(t *testing.T) {
	cfg, run, err := configure([]string{
		"-nodes", "http://a:8080, http://b:8080,http://c:8080",
		"-devices", "8",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Nodes) != 3 || cfg.Nodes[1] != "http://b:8080" {
		t.Errorf("nodes parsed as %v", cfg.Nodes)
	}
	if cfg.Devices != 8 || cfg.Replicas != 2 || cfg.Partitions != 64 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	want := []float64{0.010, 0.050, 0.100}
	for i, s := range cfg.SLAs {
		if s != want[i] {
			t.Errorf("SLAs %v, want %v", cfg.SLAs, want)
			break
		}
	}
	if run.addr != ":8090" || run.grace != 15*time.Second {
		t.Errorf("run options %+v", run)
	}
}

func TestConfigureRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{}, // no nodes
		{"-nodes", "http://a:8080", "-replicas", "3"}, // replicas > nodes
		{"-nodes", "http://a:8080,http://b:8080", "-slas", "nonsense"},
		{"-nodes", "http://a:8080,http://b:8080", "-partitions", "33"},
		{"-nodes", "http://a:8080,http://b:8080", "-devices", "0"},
	}
	for i, args := range cases {
		if _, _, err := configure(args); err == nil {
			t.Errorf("case %d (%v): no error", i, args)
		}
	}
}
