// Command cosload is the open-loop load generator for the serving tier: it
// replays a phased arrival schedule (the paper's warmup / transition /
// rate-step construction) against a cosserve or cosrouter endpoint, posting
// observation batches over the streaming NDJSON ingest mode (or the JSON
// array mode) and an independent Poisson stream of /predict probes, then
// reports achieved obs/sec, predict QPS, and client-observed latency
// percentiles over the measured phases.
//
// Usage:
//
//	cosload -target http://localhost:8080 -devices 4 \
//	    -rate-start 50 -rate-end 200 -rate-step 50 -step-dur 10 \
//	    -predict-rate 100 -mode ndjson
//
//	cosload -target http://shard0:8080,http://shard1:8080   # round-robin fan-out
//
//	cosload -selftest        # spin an in-process cosserve and load it
//
// Being open-loop, arrivals never wait for responses: a saturated service
// sees the offered rate, and overflow beyond -max-inflight is dropped and
// counted rather than silently throttled.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cosmodel"
)

func main() {
	cfg, opts, err := configure(os.Args[1:])
	if err != nil {
		fatal(err)
	}

	// -selftest: an in-process serving instance is both the smoke test for
	// the generator and a one-command demo of the whole ingest pipeline.
	if opts.selftest {
		srv, err := cosmodel.NewServeServer(cosmodel.DefaultServeConfig(defaultProps(), cfg.Devices))
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		cfg.Target, cfg.Targets = ts.URL, nil
		fmt.Fprintf(os.Stderr, "cosload: self-test server at %s\n", cfg.Target)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	targets := cfg.Target
	if len(cfg.Targets) > 0 {
		targets = fmt.Sprintf("%d targets (%s)", len(cfg.Targets), strings.Join(cfg.Targets, ", "))
	}
	fmt.Fprintf(os.Stderr, "cosload: %d phases over %.1fs against %s (mode %s, predict %.1f/s)\n",
		len(cfg.Schedule), cfg.Schedule.TotalDuration(), targets, cfg.Mode, cfg.PredictRate)

	rep, err := cosmodel.RunLoad(ctx, cfg)
	if err != nil && rep == nil {
		fatal(err)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cosload: run interrupted (%v); partial report follows\n", err)
	}
	if opts.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else if err := rep.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

// runOptions are the process-level settings outside the load config.
type runOptions struct {
	selftest bool
	jsonOut  bool
}

// configure parses flags into a load configuration; split from main so
// tests can exercise it without issuing traffic.
func configure(args []string) (cosmodel.LoadConfig, runOptions, error) {
	fs := flag.NewFlagSet("cosload", flag.ContinueOnError)
	var (
		target   = fs.String("target", "http://localhost:8080", "base URL(s) of the cosserve/cosrouter under test; comma-separated list fans out round-robin")
		devices  = fs.Int("devices", 4, "devices the generated observations describe")
		mode     = fs.String("mode", cosmodel.LoadModeNDJSON, "ingest wire mode: json | ndjson")
		predict  = fs.Float64("predict-rate", 50, "independent /predict probe rate (req/s, 0 = off)")
		inflight = fs.Int("max-inflight", 256, "open-loop concurrency cap; overflow arrivals are dropped and counted")
		seed     = fs.Int64("seed", 1, "arrival-process random seed")

		warmRate  = fs.Float64("warm-rate", 50, "warmup-phase batch rate (batches/s)")
		warmDur   = fs.Duration("warm-dur", 5*time.Second, "warmup-phase length (0 skips it)")
		transRate = fs.Float64("trans-rate", 20, "transition-phase batch rate")
		transDur  = fs.Duration("trans-dur", 0, "transition-phase length (0 skips it)")
		rateStart = fs.Float64("rate-start", 50, "first measured step's batch rate")
		rateEnd   = fs.Float64("rate-end", 200, "last measured step's batch rate")
		rateStep  = fs.Float64("rate-step", 50, "batch-rate increment between steps")
		stepDur   = fs.Duration("step-dur", 10*time.Second, "measured length of each step")

		selftest = fs.Bool("selftest", false, "spin an in-process cosserve and load it (ignores -target)")
		jsonOut  = fs.Bool("json", false, "emit the report as JSON instead of the text summary")
	)
	if err := fs.Parse(args); err != nil {
		return cosmodel.LoadConfig{}, runOptions{}, err
	}
	sched, err := cosmodel.PaperSchedule(*warmRate, warmDur.Seconds(), *transRate, transDur.Seconds(),
		*rateStart, *rateEnd, *rateStep, stepDur.Seconds())
	if err != nil {
		return cosmodel.LoadConfig{}, runOptions{}, err
	}
	cfg := cosmodel.LoadConfig{
		Devices:     *devices,
		Mode:        *mode,
		Schedule:    sched,
		PredictRate: *predict,
		MaxInflight: *inflight,
		Seed:        *seed,
	}
	// A comma-separated -target becomes the round-robin fan-out list; a
	// single URL stays in the scalar field for backward compatibility.
	if parts := strings.Split(*target, ","); len(parts) > 1 {
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		cfg.Targets = parts
	} else {
		cfg.Target = strings.TrimSpace(*target)
	}
	return cfg, runOptions{selftest: *selftest, jsonOut: *jsonOut}, nil
}

// defaultProps mirrors cosserve's default simulated-testbed hardware, so a
// self-test server predicts with the same calibration a real one would.
func defaultProps() cosmodel.DeviceProperties {
	return cosmodel.DeviceProperties{
		IndexDisk: cosmodel.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  cosmodel.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  cosmodel.NewGammaMeanSCV(8e-3, 0.40),
		ParseFE:   cosmodel.Degenerate{Value: 300e-6},
		ParseBE:   cosmodel.Degenerate{Value: 500e-6},
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cosload:", err)
	os.Exit(1)
}
