package main

import (
	"context"
	"net/http/httptest"
	"testing"

	"cosmodel"
)

func TestConfigureDefaults(t *testing.T) {
	cfg, opts, err := configure(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != cosmodel.LoadModeNDJSON {
		t.Errorf("default mode = %q", cfg.Mode)
	}
	if cfg.Devices != 4 || cfg.PredictRate != 50 || cfg.MaxInflight != 256 {
		t.Errorf("defaults off: %+v", cfg)
	}
	// warmup + 4 steps (50..200 by 50), no transition
	if len(cfg.Schedule) != 5 {
		t.Errorf("schedule has %d phases, want 5: %+v", len(cfg.Schedule), cfg.Schedule)
	}
	if cfg.Schedule[0].Label != "warmup" {
		t.Errorf("first phase %q, want warmup", cfg.Schedule[0].Label)
	}
	if opts.selftest || opts.jsonOut {
		t.Errorf("options default on: %+v", opts)
	}
}

func TestConfigureRejectsBadSchedule(t *testing.T) {
	if _, _, err := configure([]string{"-rate-start", "200", "-rate-end", "100"}); err == nil {
		t.Fatal("descending rate sweep accepted")
	}
	if _, _, err := configure([]string{"-not-a-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestQuickRunEndToEnd wires configure's output through a real run against
// an in-process server — the same path -selftest takes, scaled down.
func TestQuickRunEndToEnd(t *testing.T) {
	cfg, _, err := configure([]string{
		"-devices", "2",
		"-warm-dur", "100ms", "-warm-rate", "100",
		"-rate-start", "100", "-rate-end", "100", "-rate-step", "50",
		"-step-dur", "300ms", "-predict-rate", "50",
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cosmodel.NewServeServer(cosmodel.DefaultServeConfig(defaultProps(), cfg.Devices))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cfg.Target = ts.URL

	rep, err := cosmodel.RunLoad(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ingest.OK == 0 || rep.Predict.OK == 0 {
		t.Fatalf("quick run produced no traffic: %+v", rep)
	}
	if rep.ObsPerSec <= 0 {
		t.Fatalf("no sustained throughput: %+v", rep)
	}
}
