// Command cossim runs the Swift-like cluster simulator standalone: it
// drives a synthetic (or file-based) workload through a configured cluster
// and reports observed latency percentiles, per-device rates, cache miss
// ratios and disk utilization — the raw material of the paper's "observed"
// curves.
//
// Usage:
//
//	cossim -rate 240 -duration 60 -nbe 1 -slas 10ms,50ms,100ms
//	cossim -trace workload.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cosmodel"
)

func main() {
	var (
		rate      = flag.Float64("rate", 200, "request arrival rate (req/s) for the synthetic workload")
		duration  = flag.Float64("duration", 60, "workload duration (s)")
		warmup    = flag.Float64("warmup", 10, "measurement discard prefix (s)")
		traceFile = flag.String("trace", "", "replay a CSV trace instead of generating one")

		frontends = flag.Int("frontends", 3, "frontend servers")
		backends  = flag.Int("backends", 4, "backend servers")
		nbe       = flag.Int("nbe", 1, "processes per storage device")
		replicas  = flag.Int("replicas", 3, "replicas per partition")
		cacheMB   = flag.Int64("cache-mb", 96, "page cache per backend server (MiB)")
		objects   = flag.Int("objects", 150000, "catalog size for the synthetic workload")
		zipf      = flag.Float64("zipf", 1.05, "popularity skew (Zipf s)")
		prewarm   = flag.Bool("prewarm", true, "pre-populate caches with popular objects")
		slas      = flag.String("slas", "10ms,50ms,100ms", "comma-separated SLA bounds")
		arch      = flag.String("arch", "event", "backend architecture: event | tpc")
		threads   = flag.Int("threads", 64, "thread pool per disk (tpc only)")
		timeout   = flag.Duration("timeout", 0, "request timeout (0 disables)")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := cosmodel.DefaultSimConfig()
	switch *arch {
	case "event":
		cfg.Architecture = cosmodel.EventDriven
	case "tpc":
		cfg.Architecture = cosmodel.ThreadPerConnection
	default:
		fatal(fmt.Errorf("unknown architecture %q", *arch))
	}
	cfg.MaxThreadsPerDisk = *threads
	cfg.RequestTimeout = timeout.Seconds()
	cfg.Frontends = *frontends
	cfg.Backends = *backends
	cfg.ProcsPerDisk = *nbe
	cfg.Replicas = *replicas
	cfg.CacheBytes = *cacheMB << 20
	cfg.Seed = *seed
	var err error
	cfg.SLAs, err = parseSLAs(*slas)
	if err != nil {
		fatal(err)
	}

	cluster, err := cosmodel.NewCluster(cfg)
	if err != nil {
		fatal(err)
	}

	var records []cosmodel.TraceRecord
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		records, err = cosmodel.ReadTrace(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		catalog, err := cosmodel.NewCatalog(*objects, cosmodel.WikipediaLikeSizes(), *zipf, 1, *seed)
		if err != nil {
			fatal(err)
		}
		if *prewarm {
			if err := cluster.PrewarmCaches(catalog, 0.95); err != nil {
				fatal(err)
			}
		}
		records, err = cosmodel.GenerateTrace(catalog, cosmodel.Schedule{
			{Rate: *rate, Duration: *duration, Label: "run"},
		}, *seed+1)
		if err != nil {
			fatal(err)
		}
	}
	st := cosmodel.SummarizeTrace(records)
	fmt.Printf("workload: %d requests, %.1f s, %.1f req/s, mean object %.1f KiB, %d unique objects\n",
		st.Requests, st.Duration, st.MeanRate, st.MeanSize/1024, st.Unique)

	cluster.Inject(records)
	cluster.RunUntil(*warmup)
	before := cluster.Snapshot()
	cluster.Drain()
	after := cluster.Snapshot()
	win := cluster.Window(before, after)

	fmt.Printf("\nmeasured over %.1f s (%d responses, %v simulator events):\n",
		win.Duration, win.Responses, cluster.EventsProcessed())
	for i, sla := range cfg.SLAs {
		fmt.Printf("  P(latency <= %v): frontend %.4f, backend %.4f\n",
			time.Duration(sla*float64(time.Second)), win.MeetFraction[i], win.BEMeetFraction[i])
	}
	fmt.Printf("  mean latency %.2f ms, mean accept-wait %.3f ms\n",
		win.MeanLatency*1e3, win.MeanWTA*1e3)
	if win.Latency != nil {
		fmt.Printf("  p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, p99.9 %.2f ms\n",
			win.Latency.Quantile(0.50)*1e3, win.Latency.Quantile(0.95)*1e3,
			win.Latency.Quantile(0.99)*1e3, win.Latency.Quantile(0.999)*1e3)
	}
	if win.Timeouts > 0 || win.Retries > 0 {
		fmt.Printf("  timeouts %d, retries %d\n", win.Timeouts, win.Retries)
	}
	fmt.Println("\nper-device online metrics (model inputs):")
	for d := range win.DeviceRate {
		fmt.Printf("  dev %d: r=%.1f/s rdata=%.1f/s miss(i/m/d)=%.2f/%.2f/%.2f disk b=%.2f ms util=%.2f\n",
			d, win.DeviceRate[d], win.DeviceChunkRate[d],
			win.MissIndex[d], win.MissMeta[d], win.MissData[d],
			win.DiskMeanSvc[d]*1e3, win.DiskUtilization[d])
	}
}

func parseSLAs(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad SLA %q: %w", part, err)
		}
		out = append(out, d.Seconds())
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cossim:", err)
	os.Exit(1)
}
