package main

import (
	"math"
	"testing"
)

func TestParseSLAs(t *testing.T) {
	got, err := parseSLAs("25ms,100ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || math.Abs(got[0]-0.025) > 1e-12 || math.Abs(got[1]-0.1) > 1e-12 {
		t.Errorf("got %v", got)
	}
	if _, err := parseSLAs("bogus"); err == nil {
		t.Error("bad duration should fail")
	}
}
