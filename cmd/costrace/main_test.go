package main

import (
	"os"
	"path/filepath"
	"testing"

	"cosmodel"
)

func TestGenRescaleStatsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "t.csv")
	if err := genCmd([]string{"-objects", "500", "-rate", "100", "-duration", "5", "-out", traceFile}); err != nil {
		t.Fatal(err)
	}
	recs, err := readIn(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	st := cosmodel.SummarizeTrace(recs)
	if st.Requests < 300 || st.Requests > 700 {
		t.Fatalf("generated %d records, want ~500", st.Requests)
	}
	fast := filepath.Join(dir, "fast.csv")
	if err := rescaleCmd([]string{"-factor", "0.5", "-in", traceFile, "-out", fast}); err != nil {
		t.Fatal(err)
	}
	fastRecs, err := readIn(fast)
	if err != nil {
		t.Fatal(err)
	}
	fastStats := cosmodel.SummarizeTrace(fastRecs)
	if fastStats.MeanRate < st.MeanRate*1.8 {
		t.Errorf("rescale did not double the rate: %v vs %v", fastStats.MeanRate, st.MeanRate)
	}
	if err := statsCmd([]string{"-in", traceFile}); err != nil {
		t.Fatal(err)
	}
}

func TestWikibenchCmd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "wb.txt")
	raw := "1 100.0 http://upload.wikimedia.org/a.jpg -\n" +
		"2 100.5 http://en.wikipedia.org/wiki/X -\n" +
		"3 101.0 http://upload.wikimedia.org/b.png -\n"
	if err := os.WriteFile(in, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "wb.csv")
	if err := wikibenchCmd([]string{"-in", in, "-out", out}); err != nil {
		t.Fatal(err)
	}
	recs, err := readIn(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("kept %d records, want 2 media requests", len(recs))
	}
}

func TestGenPaperSchedule(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "p.csv")
	err := genCmd([]string{"-objects", "200", "-paper",
		"-warm-rate", "50", "-warm-dur", "5",
		"-start", "10", "-end", "30", "-step", "10", "-step-dur", "2",
		"-out", out})
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("missing output: %v", err)
	}
}
