// Command costrace generates, rescales and inspects workload traces in the
// CSV format used by cossim. The synthetic generator substitutes for the
// paper's Wikipedia media trace: Zipf popularity, lognormal sizes with a
// 32 KB mean, Poisson arrivals, and the paper's warmup/transition/stepped
// benchmarking schedule.
//
// Usage:
//
//	costrace gen -rate 200 -duration 120 -out trace.csv
//	costrace gen -paper -out paper.csv      # warmup + transition + steps
//	costrace rescale -factor 0.5 -in trace.csv -out faster.csv
//	costrace stats -in trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"cosmodel"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = genCmd(os.Args[2:])
	case "rescale":
		err = rescaleCmd(os.Args[2:])
	case "stats":
		err = statsCmd(os.Args[2:])
	case "wikibench":
		err = wikibenchCmd(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "costrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: costrace <gen|rescale|stats|wikibench> [flags]")
	os.Exit(2)
}

// wikibenchCmd converts a wikibench-format trace (the format of the
// Wikipedia trace the paper replays) into the CSV format cossim consumes,
// keeping only media requests as the paper does.
func wikibenchCmd(args []string) error {
	fs := flag.NewFlagSet("wikibench", flag.ExitOnError)
	var (
		in   = fs.String("in", "", "wikibench trace file (default stdin)")
		out  = fs.String("out", "", "output CSV (default stdout)")
		all  = fs.Bool("all", false, "keep all requests, not only upload.wikimedia.org")
		skip = fs.Bool("skip-malformed", true, "drop unparsable lines")
	)
	fs.Parse(args)
	src := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	records, err := cosmodel.ParseWikibench(src, cosmodel.WikibenchOptions{
		MediaOnly:     !*all,
		SkipMalformed: *skip,
	})
	if err != nil {
		return err
	}
	return writeOut(*out, records)
}

func genCmd(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		objects  = fs.Int("objects", 150000, "catalog size")
		zipf     = fs.Float64("zipf", 1.05, "popularity skew (Zipf s)")
		rate     = fs.Float64("rate", 200, "arrival rate (req/s) for a flat schedule")
		duration = fs.Float64("duration", 60, "duration (s) for a flat schedule")
		paper    = fs.Bool("paper", false, "use the paper's warmup/transition/stepped schedule")
		warmRate = fs.Float64("warm-rate", 300, "warmup rate (paper schedule)")
		warmDur  = fs.Float64("warm-dur", 300, "warmup duration (paper schedule)")
		start    = fs.Float64("start", 10, "benchmark start rate (paper schedule)")
		end      = fs.Float64("end", 350, "benchmark end rate (paper schedule)")
		step     = fs.Float64("step", 5, "benchmark rate step (paper schedule)")
		stepDur  = fs.Float64("step-dur", 30, "benchmark step duration (paper schedule)")
		seed     = fs.Int64("seed", 1, "random seed")
		out      = fs.String("out", "", "output file (default stdout)")
	)
	fs.Parse(args)

	catalog, err := cosmodel.NewCatalog(*objects, cosmodel.WikipediaLikeSizes(), *zipf, 1, *seed)
	if err != nil {
		return err
	}
	var schedule cosmodel.Schedule
	if *paper {
		schedule, err = cosmodel.PaperSchedule(*warmRate, *warmDur, 10, 60, *start, *end, *step, *stepDur)
		if err != nil {
			return err
		}
	} else {
		schedule = cosmodel.Schedule{{Rate: *rate, Duration: *duration, Label: "flat"}}
	}
	records, err := cosmodel.GenerateTrace(catalog, schedule, *seed+1)
	if err != nil {
		return err
	}
	return writeOut(*out, records)
}

func rescaleCmd(args []string) error {
	fs := flag.NewFlagSet("rescale", flag.ExitOnError)
	var (
		factor = fs.Float64("factor", 1, "timestamp scale factor (<1 raises the rate)")
		in     = fs.String("in", "", "input trace file")
		out    = fs.String("out", "", "output file (default stdout)")
	)
	fs.Parse(args)
	records, err := readIn(*in)
	if err != nil {
		return err
	}
	scaled, err := cosmodel.RescaleTrace(records, *factor)
	if err != nil {
		return err
	}
	return writeOut(*out, scaled)
}

func statsCmd(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "input trace file")
	fs.Parse(args)
	records, err := readIn(*in)
	if err != nil {
		return err
	}
	st := cosmodel.SummarizeTrace(records)
	fmt.Printf("requests:     %d\n", st.Requests)
	fmt.Printf("duration:     %.2f s\n", st.Duration)
	fmt.Printf("mean rate:    %.2f req/s\n", st.MeanRate)
	fmt.Printf("mean size:    %.1f KiB\n", st.MeanSize/1024)
	fmt.Printf("total bytes:  %.1f MiB\n", float64(st.TotalSize)/(1<<20))
	fmt.Printf("unique objs:  %d\n", st.Unique)
	return nil
}

func readIn(path string) ([]cosmodel.TraceRecord, error) {
	if path == "" {
		return cosmodel.ReadTrace(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return cosmodel.ReadTrace(f)
}

func writeOut(path string, records []cosmodel.TraceRecord) error {
	if path == "" {
		return cosmodel.WriteTrace(os.Stdout, records)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := cosmodel.WriteTrace(f, records); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
