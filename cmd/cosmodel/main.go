// Command cosmodel is the predictor CLI: given device properties (Gamma
// disk service-time parameters, parse latencies) and online metrics
// (arrival rates, cache miss ratios, process counts), it prints the
// predicted percentile of requests meeting each SLA — the paper's headline
// output — along with diagnostic quantities.
//
// Usage:
//
//	cosmodel -rate 240 -data-rate 288 -devices 4 -nbe 1 \
//	         -miss-index 0.4 -miss-meta 0.35 -miss-data 0.5 \
//	         -slas 10ms,50ms,100ms
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cosmodel"
)

func main() {
	var (
		rate      = flag.Float64("rate", 240, "aggregate request arrival rate (req/s)")
		dataRate  = flag.Float64("data-rate", 0, "aggregate data read operation rate (req/s; default 1.2x rate)")
		devices   = flag.Int("devices", 4, "number of storage devices (load split evenly)")
		nbe       = flag.Int("nbe", 1, "processes per storage device (Nbe)")
		nfe       = flag.Int("nfe", 12, "frontend processes (Nfe)")
		missIndex = flag.Float64("miss-index", 0.40, "index lookup cache miss ratio")
		missMeta  = flag.Float64("miss-meta", 0.35, "metadata read cache miss ratio")
		missData  = flag.Float64("miss-data", 0.50, "data read cache miss ratio")
		diskMean  = flag.Float64("disk-mean", 0, "observed overall disk mean service time in seconds (0: use fitted means)")

		indexMean = flag.Float64("index-mean", 9e-3, "fitted index-lookup disk mean (s)")
		indexSCV  = flag.Float64("index-scv", 0.45, "fitted index-lookup squared coefficient of variation")
		metaMean  = flag.Float64("meta-mean", 6e-3, "fitted metadata-read disk mean (s)")
		metaSCV   = flag.Float64("meta-scv", 0.50, "fitted metadata-read SCV")
		dataMean  = flag.Float64("data-mean", 8e-3, "fitted data-read disk mean (s)")
		dataSCV   = flag.Float64("data-scv", 0.40, "fitted data-read SCV")
		parseFE   = flag.Float64("parse-fe", 0.3e-3, "frontend parse latency (s)")
		parseBE   = flag.Float64("parse-be", 0.5e-3, "backend parse latency (s)")

		slas    = flag.String("slas", "10ms,50ms,100ms", "comma-separated SLA latency bounds")
		variant = flag.String("variant", "our", "model variant: our | odopr | nowta")
	)
	flag.Parse()

	if *dataRate <= 0 {
		*dataRate = 1.2 * *rate
	}
	bounds, err := parseSLAs(*slas)
	if err != nil {
		fatal(err)
	}
	opts := cosmodel.Options{}
	switch *variant {
	case "our":
	case "odopr":
		opts.ODOPR = true
	case "nowta":
		opts.WTA = cosmodel.WTANone
	default:
		fatal(fmt.Errorf("unknown variant %q", *variant))
	}

	props := cosmodel.DeviceProperties{
		IndexDisk: cosmodel.NewGammaMeanSCV(*indexMean, *indexSCV),
		MetaDisk:  cosmodel.NewGammaMeanSCV(*metaMean, *metaSCV),
		DataDisk:  cosmodel.NewGammaMeanSCV(*dataMean, *dataSCV),
		ParseFE:   cosmodel.Degenerate{Value: *parseFE},
		ParseBE:   cosmodel.Degenerate{Value: *parseBE},
	}
	perDevice := cosmodel.OnlineMetrics{
		Rate:      *rate / float64(*devices),
		DataRate:  *dataRate / float64(*devices),
		MissIndex: *missIndex,
		MissMeta:  *missMeta,
		MissData:  *missData,
		Procs:     *nbe,
		DiskMean:  *diskMean,
	}
	devs := make([]*cosmodel.DeviceModel, *devices)
	for i := range devs {
		d, err := cosmodel.NewDeviceModel(props, perDevice, opts)
		if err != nil {
			fatal(err)
		}
		devs[i] = d
	}
	fe, err := cosmodel.NewFrontendModel(*rate, *nfe, props.ParseFE)
	if err != nil {
		fatal(err)
	}
	sys, err := cosmodel.NewSystemModel(fe, devs, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("model variant: %s\n", *variant)
	fmt.Printf("per-device rate: %.2f req/s, extra reads per request: %.3f\n",
		perDevice.Rate, perDevice.ExtraReads())
	fmt.Printf("device utilization (union queue, per process): %.3f\n", devs[0].Utilization())
	fmt.Printf("frontend utilization (per process): %.3f\n", fe.Utilization())
	fmt.Printf("mean response latency: %.3f ms\n", sys.MeanResponse()*1e3)
	fmt.Println()
	for _, sla := range bounds {
		fmt.Printf("P(latency <= %v) = %.4f\n", time.Duration(sla*float64(time.Second)), sys.PercentileMeetingSLA(sla))
	}
	for _, p := range []float64{0.50, 0.90, 0.95, 0.99} {
		fmt.Printf("p%.0f latency = %.2f ms\n", p*100, sys.Quantile(p)*1e3)
	}
}

func parseSLAs(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad SLA %q: %w", part, err)
		}
		out = append(out, d.Seconds())
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no SLAs given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cosmodel:", err)
	os.Exit(1)
}
