package main

import (
	"math"
	"testing"
)

func TestParseSLAs(t *testing.T) {
	got, err := parseSLAs("10ms, 50ms,1s")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.01, 0.05, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("sla %d = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := parseSLAs("notaduration"); err == nil {
		t.Error("bad duration should fail")
	}
	if _, err := parseSLAs(""); err == nil {
		t.Error("empty should fail")
	}
}
