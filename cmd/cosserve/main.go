// Command cosserve runs the online SLA-prediction and admission-control
// service: monitoring agents POST per-device observations to /ingest
// (JSON array or streaming NDJSON, optionally class-labelled and carrying
// PUT replica counts), and clients query /predict (percentile predictions
// at the current operating point; add writeN/writeW for W-of-N write-quorum
// compliance and tenant= for a per-class annotation), /advise (max
// admissible rate and headroom for an SLA target; add tenants=class:weight,…
// for a weighted shedding plan that drops the cheapest tenant first),
// /metrics and /healthz. Predictions are memoized per quantized operating
// point, so a stable workload is served without re-inverting transforms.
//
// Usage:
//
//	cosserve -addr :8080 -devices 4 -nbe 1 -fe-procs 12 -slas 10ms,50ms,100ms
//
// Device properties default to the simulated testbed's calibrated hardware;
// override the disk service-time fits with the -disk-* flags. With -calib the
// online calibration and drift-detection subsystem watches the ingested
// observations, re-solves the device properties on confirmed drift and swaps
// them into the engine; inspect its state at /calibration. The -calib-*
// flags override individual detector thresholds (0 keeps the default).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cosmodel"
)

func main() {
	cfg, run, err := configure(os.Args[1:])
	if err != nil {
		fatal(err)
	}
	srv, err := cosmodel.NewServeServer(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cosserve: %d devices x %d procs, %d frontend procs, SLAs %v, window %.0fs\n",
		cfg.Devices, cfg.ProcsPerDevice, cfg.FrontendProcs, cfg.SLAs, cfg.Window)
	if cfg.Calib != nil {
		fmt.Printf("cosserve: online calibration on (confirm %d windows, cooldown %d, KS factor %.2f)\n",
			cfg.Calib.ConfirmWindows, cfg.Calib.CooldownWindows, cfg.Calib.KSFactor)
	}
	if cfg.Pprof {
		fmt.Println("cosserve: pprof profiling endpoints mounted under /debug/pprof/")
	}
	fmt.Printf("cosserve: listening on %s\n", run.addr)

	// SIGINT/SIGTERM start a graceful drain: the listener closes, in-flight
	// requests get run.grace to finish, then the process exits.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := cosmodel.NewServeHTTPServer(run.addr, srv.Handler())
	err = cosmodel.ListenAndServeGraceful(ctx, hs, run.grace)
	switch {
	case err == nil:
		fmt.Println("cosserve: drained cleanly, bye")
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintln(os.Stderr, "cosserve: shutdown grace expired with requests still in flight")
		os.Exit(1)
	default:
		fatal(err)
	}
}

// runOptions are the process-level (non-model) settings from the flags.
type runOptions struct {
	addr  string
	grace time.Duration
}

// configure parses flags into a serving configuration; split from main so
// tests can exercise it without binding a socket.
func configure(args []string) (cosmodel.ServeConfig, runOptions, error) {
	fs := flag.NewFlagSet("cosserve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		devices  = fs.Int("devices", 4, "storage devices in the deployment")
		nbe      = fs.Int("nbe", 1, "object-server processes per storage device")
		feProcs  = fs.Int("fe-procs", 12, "frontend event-loop processes (tier total)")
		slas     = fs.String("slas", "10ms,50ms,100ms", "comma-separated default SLA bounds")
		window   = fs.Duration("window", time.Minute, "sliding measurement window span")
		maxObs   = fs.Int("max-observations", 128, "retained observations per device")
		inflight = fs.Int("max-inflight", 64, "concurrent model evaluations before shedding with 503")
		cacheN   = fs.Int("cache-entries", 4096, "memoized predictions kept")
		stripes  = fs.Int("ingest-stripes", 0, "lock stripes of the observation table (0 = auto from GOMAXPROCS)")
		queue    = fs.Int("ingest-queue", 256, "calibration hand-off ring capacity in batches")
		evalTO   = fs.Duration("eval-timeout", 10*time.Second, "per-query model evaluation budget (0 = unbounded)")
		grace    = fs.Duration("shutdown-grace", 15*time.Second, "drain time for in-flight requests on SIGINT/SIGTERM")
		shard    = fs.Bool("shard", false, "expose the cluster-internal /shard/* endpoints for cosrouter fan-out")

		obsPprof   = fs.Bool("obs-pprof", false, "mount net/http/pprof profiling endpoints under /debug/pprof/")
		obsRuntime = fs.Bool("obs-runtime", false, "expose Go runtime gauges (goroutines, heap, GC) at /metrics/prom")

		calibOn   = fs.Bool("calib", false, "enable online calibration and drift detection")
		calibPHD  = fs.Float64("calib-ph-delta", 0, "Page-Hinkley drift magnitude (0 = default)")
		calibPHL  = fs.Float64("calib-ph-lambda", 0, "Page-Hinkley alarm threshold (0 = default)")
		calibCUS  = fs.Float64("calib-cusum-slack", 0, "CUSUM slack on miss-ratio drift (0 = default)")
		calibCUT  = fs.Float64("calib-cusum-threshold", 0, "CUSUM alarm threshold (0 = default)")
		calibKS   = fs.Float64("calib-ks-factor", 0, "Kolmogorov-Smirnov threshold factor (0 = default)")
		calibConf = fs.Int("calib-confirm", 0, "consecutive flagged windows before recalibrating (0 = default)")
		calibCool = fs.Int("calib-cooldown", 0, "windows suppressed after a recalibration (0 = default)")

		idxMean = fs.Float64("disk-index-mean", 9e-3, "index disk service mean (s)")
		idxSCV  = fs.Float64("disk-index-scv", 0.45, "index disk service SCV")
		metMean = fs.Float64("disk-meta-mean", 6e-3, "metadata disk service mean (s)")
		metSCV  = fs.Float64("disk-meta-scv", 0.50, "metadata disk service SCV")
		datMean = fs.Float64("disk-data-mean", 8e-3, "data disk service mean (s)")
		datSCV  = fs.Float64("disk-data-scv", 0.40, "data disk service SCV")
		parseFE = fs.Duration("parse-fe", 300*time.Microsecond, "frontend parse time")
		parseBE = fs.Duration("parse-be", 500*time.Microsecond, "backend parse time")
	)
	if err := fs.Parse(args); err != nil {
		return cosmodel.ServeConfig{}, runOptions{}, err
	}
	props := cosmodel.DeviceProperties{
		IndexDisk: cosmodel.NewGammaMeanSCV(*idxMean, *idxSCV),
		MetaDisk:  cosmodel.NewGammaMeanSCV(*metMean, *metSCV),
		DataDisk:  cosmodel.NewGammaMeanSCV(*datMean, *datSCV),
		ParseFE:   cosmodel.Degenerate{Value: parseFE.Seconds()},
		ParseBE:   cosmodel.Degenerate{Value: parseBE.Seconds()},
	}
	cfg := cosmodel.DefaultServeConfig(props, *devices)
	cfg.ProcsPerDevice = *nbe
	cfg.FrontendProcs = *feProcs
	cfg.Window = window.Seconds()
	cfg.MaxObservations = *maxObs
	cfg.MaxInflight = *inflight
	cfg.CacheEntries = *cacheN
	cfg.IngestStripes = *stripes
	cfg.IngestQueue = *queue
	cfg.Opts.EvalTimeout = *evalTO
	cfg.ShardMode = *shard
	cfg.Pprof = *obsPprof
	cfg.RuntimeMetrics = *obsRuntime
	if *calibOn {
		cc := cosmodel.DefaultCalibConfig(cfg.Devices)
		override := func(dst *float64, v float64) {
			if v != 0 {
				*dst = v
			}
		}
		override(&cc.PHDelta, *calibPHD)
		override(&cc.PHLambda, *calibPHL)
		override(&cc.CUSUMSlack, *calibCUS)
		override(&cc.CUSUMThreshold, *calibCUT)
		override(&cc.KSFactor, *calibKS)
		if *calibConf != 0 {
			cc.ConfirmWindows = *calibConf
		}
		if *calibCool != 0 {
			cc.CooldownWindows = *calibCool
		}
		cfg.Calib = &cc
	}
	var err error
	if cfg.SLAs, err = parseSLAs(*slas); err != nil {
		return cosmodel.ServeConfig{}, runOptions{}, err
	}
	if err := cfg.Validate(); err != nil {
		return cosmodel.ServeConfig{}, runOptions{}, err
	}
	return cfg, runOptions{addr: *addr, grace: *grace}, nil
}

func parseSLAs(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad SLA %q: %w", part, err)
		}
		out = append(out, d.Seconds())
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cosserve:", err)
	os.Exit(1)
}
