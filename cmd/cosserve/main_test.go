package main

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cosmodel"
)

func TestConfigure(t *testing.T) {
	cfg, run, err := configure([]string{
		"-addr", ":9999", "-devices", "8", "-nbe", "16",
		"-slas", "25ms,100ms", "-window", "30s",
		"-eval-timeout", "2s", "-shutdown-grace", "3s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.addr != ":9999" || cfg.Devices != 8 || cfg.ProcsPerDevice != 16 {
		t.Errorf("cfg %+v run %+v", cfg, run)
	}
	if cfg.Opts.EvalTimeout != 2*time.Second || run.grace != 3*time.Second {
		t.Errorf("eval timeout %v grace %v", cfg.Opts.EvalTimeout, run.grace)
	}
	if len(cfg.SLAs) != 2 || math.Abs(cfg.SLAs[0]-0.025) > 1e-12 {
		t.Errorf("SLAs %v", cfg.SLAs)
	}
	if cfg.Window != 30 {
		t.Errorf("window %v", cfg.Window)
	}
	if cfg.Calib != nil {
		t.Error("calibration must stay disabled without -calib")
	}
	if _, _, err := configure([]string{"-slas", "bogus"}); err == nil {
		t.Error("bad SLA list should fail")
	}
	if _, _, err := configure([]string{"-devices", "0"}); err == nil {
		t.Error("zero devices should fail")
	}
}

func TestConfigureCalib(t *testing.T) {
	cfg, _, err := configure([]string{
		"-calib", "-devices", "6",
		"-calib-ks-factor", "2.5", "-calib-confirm", "3", "-calib-cooldown", "5",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Calib == nil {
		t.Fatal("-calib did not enable the subsystem")
	}
	def := cosmodel.DefaultCalibConfig(6)
	switch {
	case cfg.Calib.KSFactor != 2.5:
		t.Errorf("KS factor %v", cfg.Calib.KSFactor)
	case cfg.Calib.ConfirmWindows != 3 || cfg.Calib.CooldownWindows != 5:
		t.Errorf("confirm/cooldown %d/%d", cfg.Calib.ConfirmWindows, cfg.Calib.CooldownWindows)
	case cfg.Calib.PHDelta != def.PHDelta || cfg.Calib.CUSUMSlack != def.CUSUMSlack:
		t.Errorf("unset thresholds must keep defaults: %+v", cfg.Calib)
	}
	// Out-of-range detector settings must fail configuration, not serve.
	if _, _, err := configure([]string{"-calib", "-calib-ph-lambda", "-1"}); err == nil {
		t.Error("negative Page-Hinkley lambda should fail")
	}
}

// TestServeSmoke builds a server from default flags and drives one
// ingest/predict round trip through the HTTP handler.
func TestServeSmoke(t *testing.T) {
	cfg, _, err := configure(nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cosmodel.NewServeServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"observations":[{"device":0,"interval":10,"requests":400,"dataReads":480,
		"indexHits":700,"indexMisses":300,"metaHits":650,"metaMisses":350,
		"dataHits":500,"dataMisses":500}]}`
	resp, err := ts.Client().Post(ts.URL+"/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
}
