package main

import (
	"os"
	"path/filepath"
	"testing"

	"cosmodel"
)

func TestRunnerAdjustQuick(t *testing.T) {
	r := &runner{quick: true, seed: 42}
	sc := r.adjust(cosmodel.ScenarioS1())
	if sc.Seed != 42 {
		t.Errorf("seed = %d", sc.Seed)
	}
	if sc.RateStep != cosmodel.ScenarioS1().RateStep*5 {
		t.Errorf("rate step = %v", sc.RateStep)
	}
	if sc.StepDur != 10 || sc.WarmDur != 20 {
		t.Errorf("durations not reduced: %v %v", sc.StepDur, sc.WarmDur)
	}
	full := (&runner{seed: 7}).adjust(cosmodel.ScenarioS1())
	if full.RateStep != cosmodel.ScenarioS1().RateStep {
		t.Error("non-quick must not rescale")
	}
}

func TestRunnerOutput(t *testing.T) {
	dir := t.TempDir()
	r := &runner{outDir: dir}
	w, closeFn, err := r.output("x.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "x.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Errorf("content = %q", data)
	}
	// stdout mode
	r2 := &runner{}
	w2, closeFn2, err := r2.output("ignored")
	if err != nil || w2 != os.Stdout {
		t.Errorf("stdout mode: %v %v", w2, err)
	}
	if err := closeFn2(); err != nil {
		t.Errorf("stdout close: %v", err)
	}
}

// TestQuickFig5EndToEnd runs the smallest real experiment through the
// runner to keep the wiring honest.
func TestQuickFig5EndToEnd(t *testing.T) {
	dir := t.TempDir()
	r := &runner{quick: true, outDir: dir, seed: 1}
	if err := r.fig5(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty fig5 report")
	}
}
