// Command cosbench regenerates the paper's evaluation: Fig. 5 (disk
// service-time fitting), Figs. 6-7 (predicted vs observed percentile
// curves for scenarios S1 and S16), Tables I-II (error summaries), and the
// modeling-choice ablations from DESIGN.md.
//
// Usage:
//
//	cosbench -exp all            # everything, full scale
//	cosbench -exp fig6 -quick    # scenario S1, reduced sweep
//	cosbench -exp table2 -out results/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"cosmodel"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: fig5 | fig6 | fig7 | table1 | table2 | ablations | arch | writes | workload | motivation | all")
		quick = flag.Bool("quick", false, "reduced sweep (coarser rate steps, shorter windows)")
		out   = flag.String("out", "", "directory for CSV/report files (default: stdout only)")
		seed  = flag.Int64("seed", 1, "base random seed")
	)
	flag.Parse()

	runner := &runner{quick: *quick, outDir: *out, seed: *seed}
	var err error
	switch *exp {
	case "fig5":
		err = runner.fig5()
	case "fig6":
		_, err = runner.scenario(cosmodel.ScenarioS1(), "fig6")
	case "fig7":
		_, err = runner.scenario(cosmodel.ScenarioS16(), "fig7")
	case "table1", "table2":
		err = runner.tables(*exp)
	case "ablations":
		err = runner.ablations()
	case "arch":
		err = runner.arch()
	case "writes":
		err = runner.writes()
	case "workload":
		err = runner.workload()
	case "motivation":
		err = runner.motivation()
	case "all":
		err = runner.all()
	default:
		err = fmt.Errorf("unknown experiment %q", *exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosbench:", err)
		os.Exit(1)
	}
}

type runner struct {
	quick  bool
	outDir string
	seed   int64

	cachedS1, cachedS16 *cosmodel.ScenarioResult
}

// adjust scales a scenario down when -quick is set.
func (r *runner) adjust(sc cosmodel.ScenarioConfig) cosmodel.ScenarioConfig {
	sc.Seed = r.seed
	if r.quick {
		sc.RateStep *= 5
		sc.StepDur = 10
		sc.StepDiscard = 3
		sc.WarmDur = 20
		sc.CalibrationOps = 1500
	}
	return sc
}

// output opens a report file in the output directory, or returns stdout.
func (r *runner) output(name string) (io.Writer, func() error, error) {
	if r.outDir == "" {
		return os.Stdout, func() error { return nil }, nil
	}
	if err := os.MkdirAll(r.outDir, 0o755); err != nil {
		return nil, nil, err
	}
	f, err := os.Create(filepath.Join(r.outDir, name))
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func (r *runner) fig5() error {
	cfg := cosmodel.DefaultFig5()
	cfg.Seed = r.seed
	if r.quick {
		cfg.Ops = 2000
	}
	res, err := cosmodel.RunFig5(cfg)
	if err != nil {
		return err
	}
	w, closeFn, err := r.output("fig5.txt")
	if err != nil {
		return err
	}
	if err := res.Render(w); err != nil {
		closeFn()
		return err
	}
	return closeFn()
}

func (r *runner) scenario(sc cosmodel.ScenarioConfig, name string) (*cosmodel.ScenarioResult, error) {
	sc = r.adjust(sc)
	fmt.Fprintf(os.Stderr, "running scenario %s (%d processes/device, rates %g..%g step %g)...\n",
		sc.Name, sc.Sim.ProcsPerDisk, sc.RateStart, sc.RateEnd, sc.RateStep)
	res, err := cosmodel.RunScenario(sc)
	if err != nil {
		return nil, err
	}
	w, closeFn, err := r.output(name + ".txt")
	if err != nil {
		return nil, err
	}
	if err := res.Render(w); err != nil {
		closeFn()
		return nil, err
	}
	return res, closeFn()
}

func (r *runner) both() ([]*cosmodel.ScenarioResult, error) {
	if r.cachedS1 == nil {
		res, err := r.scenario(cosmodel.ScenarioS1(), "fig6")
		if err != nil {
			return nil, err
		}
		r.cachedS1 = res
	}
	if r.cachedS16 == nil {
		res, err := r.scenario(cosmodel.ScenarioS16(), "fig7")
		if err != nil {
			return nil, err
		}
		r.cachedS16 = res
	}
	return []*cosmodel.ScenarioResult{r.cachedS1, r.cachedS16}, nil
}

func (r *runner) tables(which string) error {
	results, err := r.both()
	if err != nil {
		return err
	}
	w, closeFn, err := r.output(which + ".txt")
	if err != nil {
		return err
	}
	defer closeFn()
	if which == "table1" {
		return cosmodel.RenderTable1(w, results)
	}
	return cosmodel.RenderTable2(w, results)
}

func (r *runner) ablations() error {
	sc := r.adjust(cosmodel.ScenarioS1())
	if !r.quick {
		// Ablations don't need the full 69-step sweep.
		sc.RateStep *= 5
	}
	w, closeFn, err := r.output("ablations.txt")
	if err != nil {
		return err
	}
	defer closeFn()
	for _, a := range []struct {
		name     string
		variants []cosmodel.Variant
		procs    int
	}{
		{"WTA model (paper approx vs exact integral vs none)", cosmodel.WTAVariants(), 1},
		{"disk queue for Nbe>1 (M/M/1/K vs unbounded M/G/1)", cosmodel.DiskQueueVariants(), 16},
		{"extra-read compounding (Poisson vs fixed vs geometric)", cosmodel.CompoundVariants(), 1},
		{"Laplace inversion algorithm", cosmodel.InverterVariants(), 1},
	} {
		cfg := sc
		cfg.Sim.ProcsPerDisk = a.procs
		if a.procs > 1 {
			cfg.RateEnd = 600
		}
		fmt.Fprintf(os.Stderr, "running ablation: %s...\n", a.name)
		res, err := cosmodel.RunAblation(a.name, cfg, a.variants)
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

func (r *runner) arch() error {
	cfg := cosmodel.DefaultArchComparison()
	cfg.Seed = r.seed
	if r.quick {
		cfg.Rates = []float64{150, 300}
		cfg.StepDur = 12
		cfg.Discard = 3
		cfg.CatalogObjects = 50000
	}
	fmt.Fprintln(os.Stderr, "running architecture comparison...")
	res, err := cosmodel.RunArchComparison(cfg)
	if err != nil {
		return err
	}
	w, closeFn, err := r.output("arch.txt")
	if err != nil {
		return err
	}
	if err := res.Render(w); err != nil {
		closeFn()
		return err
	}
	return closeFn()
}

func (r *runner) writes() error {
	cfg := cosmodel.DefaultWriteSensitivity()
	cfg.Seed = r.seed
	if r.quick {
		cfg.WriteFractions = []float64{0, 0.1, 0.4}
		cfg.StepDur = 15
		cfg.Discard = 4
		cfg.CatalogObjects = 50000
		cfg.CalibrationOps = 1200
	}
	fmt.Fprintln(os.Stderr, "running write-fraction sensitivity...")
	res, err := cosmodel.RunWriteSensitivity(cfg)
	if err != nil {
		return err
	}
	w, closeFn, err := r.output("writes.txt")
	if err != nil {
		return err
	}
	if err := res.Render(w); err != nil {
		closeFn()
		return err
	}
	return closeFn()
}

func (r *runner) workload() error {
	cfg := cosmodel.DefaultWorkloadIndependence()
	cfg.Seed = r.seed
	if r.quick {
		cfg.StepDur = 15
		cfg.Discard = 4
		cfg.CatalogObjects = 50000
		cfg.CalibrationOps = 1200
	}
	fmt.Fprintln(os.Stderr, "running workload-independence test...")
	res, err := cosmodel.RunWorkloadIndependence(cfg)
	if err != nil {
		return err
	}
	w, closeFn, err := r.output("workload.txt")
	if err != nil {
		return err
	}
	if err := res.Render(w); err != nil {
		closeFn()
		return err
	}
	return closeFn()
}

func (r *runner) motivation() error {
	res, err := cosmodel.RunMeanVsPercentile(cosmodel.DefaultMeanVsPercentile())
	if err != nil {
		return err
	}
	w, closeFn, err := r.output("motivation.txt")
	if err != nil {
		return err
	}
	if err := res.Render(w); err != nil {
		closeFn()
		return err
	}
	return closeFn()
}

func (r *runner) all() error {
	if err := r.fig5(); err != nil {
		return err
	}
	if err := r.motivation(); err != nil {
		return err
	}
	if err := r.tables("table1"); err != nil {
		return err
	}
	if err := r.tables("table2"); err != nil {
		return err
	}
	if err := r.ablations(); err != nil {
		return err
	}
	if err := r.arch(); err != nil {
		return err
	}
	if err := r.writes(); err != nil {
		return err
	}
	return r.workload()
}
