// Bench-smoke artifact for the write-prediction path and the hand-rolled
// NDJSON scanner: the serving engine's W-of-N write /predict latencies cold
// (model build plus quorum order-statistic per SLA) and cached (memoized),
// and the streaming decode cost of the flat-field scanner against the
// per-line encoding/json path it replaced (PR 9's decoder). Written to
// results/BENCH_PR10.json; gated behind COSMODEL_BENCH_SMOKE=1 like the
// other artifacts (`make bench-smoke` sets the gate and mirrors the
// artifacts at the repo root).
package cosmodel_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"cosmodel"
	"cosmodel/internal/ingest"
)

type writeSmokeReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// N and W identify the measured write quorum; SLAs the query width.
	N    int `json:"n"`
	W    int `json:"w"`
	SLAs int `json:"slas"`
	// WriteColdNs and WriteCachedNs are the serving engine's per-query
	// write-predict latencies: cold invalidates the memo every round
	// (forcing a model build with the mixed read/write queue, the
	// frontend-grid discretization, and one quorum order-statistic
	// bisection per SLA), cached answers from the memo.
	WriteColdNs   int64 `json:"write_cold_ns"`
	WriteCachedNs int64 `json:"write_cached_ns"`
	// NDJSONLines sizes the decode payload; NDJSONScanNs and
	// NDJSONStdlibNs are one full-payload decode through the hand-rolled
	// flat-field scanner and through the per-line encoding/json path it
	// replaced; NDJSONSpeedup is their ratio. ScanAllocsPerLine and
	// StdlibAllocsPerLine are the per-line allocation counts of the two
	// paths — the alloc-reduction bar vs PR 9's decoder.
	NDJSONLines         int     `json:"ndjson_lines"`
	NDJSONScanNs        int64   `json:"ndjson_scan_ns"`
	NDJSONStdlibNs      int64   `json:"ndjson_stdlib_ns"`
	NDJSONSpeedup       float64 `json:"ndjson_speedup"`
	ScanAllocsPerLine   float64 `json:"scan_allocs_per_line"`
	StdlibAllocsPerLine float64 `json:"stdlib_allocs_per_line"`
}

// writeSmokeEngine builds a warm serving engine whose ingested batch
// carries mixed read/write traffic, shared by the write benchmark and the
// artifact test.
func writeSmokeEngine(fatal func(...any)) *cosmodel.ServeEngine {
	cfg := cosmodel.DefaultServeConfig(clusterSmokeProps(), 4)
	eng, err := cosmodel.NewServeEngine(cfg)
	if err != nil {
		fatal(err)
	}
	if err := eng.Ingest(writeSmokeBatch(cfg.Devices)); err != nil {
		fatal(err)
	}
	return eng
}

// writeSmokeBatch is clusterSmokeBatch plus a write stream: each device
// also absorbs PUT replica sub-requests averaging 1.5 data chunks.
func writeSmokeBatch(devices int) []cosmodel.ServeObservation {
	batch := clusterSmokeBatch(devices)
	for d := range batch {
		batch[d].Writes = 80
		batch[d].WriteChunks = 120
	}
	return batch
}

// BenchmarkWritePredict measures the serving engine's write prediction on
// a 2-of-3 replication quorum: cold (memo invalidated every iteration) and
// cached, both with allocations reported.
func BenchmarkWritePredict(b *testing.B) {
	spec := cosmodel.ServeWriteSpec{N: 3, W: 2}
	slas := []float64{0.01, 0.05, 0.1}
	b.Run("cold", func(b *testing.B) {
		eng := writeSmokeEngine(b.Fatal)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.InvalidateCache()
			if _, err := eng.PredictWrite(spec, slas); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		eng := writeSmokeEngine(b.Fatal)
		if _, err := eng.PredictWrite(spec, slas); err != nil { // warm
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			preds, err := eng.PredictWrite(spec, slas)
			if err != nil {
				b.Fatal(err)
			}
			if !preds[0].Cached {
				b.Fatal("cache miss on the warmed path")
			}
		}
	})
}

// ndjsonStdlibDecode is PR 9's per-line decoder, kept as the measured
// baseline: one strict encoding/json pass plus validation per line.
func ndjsonStdlibDecode(payload []byte, devices int) (int, error) {
	n := 0
	for _, raw := range bytes.Split(payload, []byte{'\n'}) {
		raw = bytes.TrimSpace(raw)
		if len(raw) == 0 {
			continue
		}
		var o ingest.Observation
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&o); err != nil {
			return n, err
		}
		if err := o.Validate(devices); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// TestBenchSmokeWrite measures the write predict path cold and cached plus
// the NDJSON scanner against its stdlib baseline, and writes the PR's
// bench artifact.
func TestBenchSmokeWrite(t *testing.T) {
	if os.Getenv("COSMODEL_BENCH_SMOKE") == "" {
		t.Skip("set COSMODEL_BENCH_SMOKE=1 to produce results/BENCH_PR10.json")
	}
	eng := writeSmokeEngine(t.Fatal)
	spec := cosmodel.ServeWriteSpec{N: 3, W: 2}
	slas := []float64{0.01, 0.05, 0.1}
	predict := func() {
		if _, err := eng.PredictWrite(spec, slas); err != nil {
			t.Fatal(err)
		}
	}
	predict() // warm

	// The decode payload: class-labelled observations with write streams,
	// the full wire surface the scanner must cover.
	const devices = 64
	var obsBatch []ingest.Observation
	for d := 0; d < devices; d++ {
		o := ingest.Observation{
			Device: d, Interval: 10, Requests: 500, DataReads: 600,
			IndexHits: 700, IndexMisses: 300,
			MetaHits: 650, MetaMisses: 350,
			DataHits: 500, DataMisses: 500,
			DiskBusy: 8, DiskOps: 1000,
			Writes: 80, WriteChunks: 120,
			Class:     "gold",
			Latencies: []float64{0.004, 0.009, 0.021},
		}
		if d%2 == 1 {
			o.Class = "bronze"
		}
		obsBatch = append(obsBatch, o)
	}
	var buf bytes.Buffer
	if err := ingest.EncodeNDJSON(&buf, obsBatch); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()
	discard := func([]ingest.Observation) error { return nil }
	scan := func() {
		if n, err := ingest.DecodeNDJSON(bytes.NewReader(payload), devices, 0, discard); err != nil || n != devices {
			t.Fatalf("scanner decode: %d lines, %v", n, err)
		}
	}
	stdlib := func() {
		if n, err := ndjsonStdlibDecode(payload, devices); err != nil || n != devices {
			t.Fatalf("stdlib decode: %d lines, %v", n, err)
		}
	}

	rep := writeSmokeReport{
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		N:                   spec.N,
		W:                   spec.W,
		SLAs:                len(slas),
		WriteCachedNs:       best(20, func(int) { predict() }),
		WriteColdNs:         best(20, func(int) { eng.InvalidateCache(); predict() }),
		NDJSONLines:         devices,
		NDJSONScanNs:        best(20, func(int) { scan() }),
		NDJSONStdlibNs:      best(20, func(int) { stdlib() }),
		ScanAllocsPerLine:   testing.AllocsPerRun(10, scan) / devices,
		StdlibAllocsPerLine: testing.AllocsPerRun(10, stdlib) / devices,
	}
	rep.NDJSONSpeedup = float64(rep.NDJSONStdlibNs) / float64(rep.NDJSONScanNs)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("results", "BENCH_PR10.json")
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("write predict: cold %dns cached %dns; ndjson: scan %dns stdlib %dns (%.2fx, %.1f vs %.1f allocs/line) -> %s",
		rep.WriteColdNs, rep.WriteCachedNs, rep.NDJSONScanNs, rep.NDJSONStdlibNs,
		rep.NDJSONSpeedup, rep.ScanAllocsPerLine, rep.StdlibAllocsPerLine, path)

	// Acceptance bars. The alloc comparison is deterministic so it gates
	// everywhere; the wall-clock speedup gates only where there are cores
	// enough for timing to be trustworthy, mirroring the other artifacts.
	if rep.WriteColdNs <= 0 || rep.WriteCachedNs <= 0 {
		t.Errorf("degenerate write predict timings: %+v", rep)
	}
	if rep.ScanAllocsPerLine >= rep.StdlibAllocsPerLine {
		t.Errorf("scanner allocates %.1f per line, stdlib %.1f — no reduction",
			rep.ScanAllocsPerLine, rep.StdlibAllocsPerLine)
	}
	if runtime.GOMAXPROCS(0) >= 8 && rep.NDJSONSpeedup < 1.2 {
		t.Errorf("NDJSON scanner %.2fx stdlib, want >= 1.2x", rep.NDJSONSpeedup)
	}
}
