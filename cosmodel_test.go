package cosmodel_test

import (
	"errors"
	"math"
	"testing"

	"cosmodel"
)

func testProps() cosmodel.DeviceProperties {
	return cosmodel.DeviceProperties{
		IndexDisk: cosmodel.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  cosmodel.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  cosmodel.NewGammaMeanSCV(8e-3, 0.40),
		ParseFE:   cosmodel.Degenerate{Value: 0.3e-3},
		ParseBE:   cosmodel.Degenerate{Value: 0.5e-3},
	}
}

// TestPublicAPIEndToEnd exercises the full public surface: calibration,
// simulation, model construction and prediction — the path a downstream
// user follows.
func TestPublicAPIEndToEnd(t *testing.T) {
	simCfg := cosmodel.DefaultSimConfig()
	props, err := cosmodel.CalibrateDevice(simCfg, 1500, 1)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := cosmodel.NewCluster(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := cosmodel.NewCatalog(50000, cosmodel.WikipediaLikeSizes(), 1.05, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.PrewarmCaches(catalog, 0.95); err != nil {
		t.Fatal(err)
	}
	records, err := cosmodel.GenerateTrace(catalog, cosmodel.Schedule{
		{Rate: 200, Duration: 25, Label: "run"},
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	cluster.Inject(records)
	cluster.RunUntil(8)
	before := cluster.Snapshot()
	cluster.Drain()
	window := cluster.Window(before, cluster.Snapshot())

	sys, err := cosmodel.BuildSystemModel(simCfg, props, window, cosmodel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, sla := range simCfg.SLAs {
		pred := sys.PercentileMeetingSLA(sla)
		obs := window.MeetFraction[i]
		if pred < 0 || pred > 1 {
			t.Fatalf("prediction %v out of range", pred)
		}
		// The headline claim at moderate load: predictions track
		// observations within a handful of percentage points for the
		// 50/100ms SLAs.
		if i > 0 && math.Abs(pred-obs) > 0.10 {
			t.Errorf("SLA %v: predicted %.3f, observed %.3f", sla, pred, obs)
		}
	}
}

func TestPublicErrorsAreTyped(t *testing.T) {
	m := cosmodel.OnlineMetrics{Rate: 1e6, DataRate: 1.2e6, MissIndex: 1, MissMeta: 1, MissData: 1, Procs: 1}
	_, err := cosmodel.NewDeviceModel(testProps(), m, cosmodel.Options{})
	if !errors.Is(err, cosmodel.ErrOverload) {
		t.Errorf("want ErrOverload, got %v", err)
	}
	_, err = cosmodel.NewDeviceModel(testProps(), cosmodel.OnlineMetrics{}, cosmodel.Options{})
	if !errors.Is(err, cosmodel.ErrBadParams) {
		t.Errorf("want ErrBadParams, got %v", err)
	}
}

func TestPublicVariantsOrdering(t *testing.T) {
	m := cosmodel.OnlineMetrics{
		Rate: 60, DataRate: 72,
		MissIndex: 0.4, MissMeta: 0.35, MissData: 0.5,
		Procs: 1,
	}
	build := func(opts cosmodel.Options) *cosmodel.SystemModel {
		dev, err := cosmodel.NewDeviceModel(testProps(), m, opts)
		if err != nil {
			t.Fatal(err)
		}
		fe, err := cosmodel.NewFrontendModel(240, 12, testProps().ParseFE)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := cosmodel.NewSystemModel(fe, []*cosmodel.DeviceModel{dev}, opts)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	our := build(cosmodel.Options{})
	odopr := build(cosmodel.Options{ODOPR: true})
	nowta := build(cosmodel.Options{WTA: cosmodel.WTANone})
	for _, sla := range []float64{0.01, 0.05, 0.1} {
		if odopr.PercentileMeetingSLA(sla) < our.PercentileMeetingSLA(sla)-1e-9 {
			t.Error("ODOPR must be optimistic relative to the full model")
		}
		if nowta.PercentileMeetingSLA(sla) < our.PercentileMeetingSLA(sla)-1e-9 {
			t.Error("noWTA must be optimistic relative to the full model")
		}
	}
}

func TestHeterogeneousFrontendPublic(t *testing.T) {
	fe, err := cosmodel.NewHeterogeneousFrontend([]cosmodel.FrontendSet{
		{Rate: 100, Procs: 4, Parse: cosmodel.Degenerate{Value: 0.2e-3}},
		{Rate: 200, Procs: 8, Parse: cosmodel.Degenerate{Value: 0.5e-3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fe.TotalRate != 300 || fe.Procs != 12 {
		t.Errorf("aggregates: %v %v", fe.TotalRate, fe.Procs)
	}
}
