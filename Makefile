# Development entry points. `make check` is the full gate: formatting,
# vet, build, and the race-enabled test suite.

GO ?= go

.PHONY: check fmt vet build test race e2e bench bench-verify bench-smoke fuzz-smoke loadtest chaos chaos-cluster tidy

check: fmt vet build race e2e bench-verify bench-smoke fuzz-smoke loadtest

# gofmt -l prints offending files; fail when it prints anything.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Shuffled execution order surfaces inter-test state dependencies that a
# fixed order hides.
race:
	$(GO) test -race -shuffle=on ./...

# The simulator-validated end-to-end suites, run explicitly (race already
# covers them, but an explicit gate keeps the accuracy bars visible): the
# read-path sweep and the two-tenant mixed read/write sweep, both holding
# predictions within MAE <= 0.10 of simstore ground truth.
e2e:
	$(GO) test -race -count=1 \
		-run 'TestEndToEndAgainstSimulator|TestTwoTenantWriteEndToEnd' \
		./internal/serve

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# The results/ directory is the canonical home of the bench artifacts; the
# root copies exist only for reviewers. Fail check when a root mirror has
# drifted from its canonical file (e.g. results/ was regenerated without
# re-running bench-smoke's copy step).
bench-verify:
	@for f in BENCH_PR4.json BENCH_PR5.json BENCH_PR6.json BENCH_PR7.json BENCH_PR8.json BENCH_PR9.json BENCH_PR10.json; do \
		if [ -f "$$f" ] && ! cmp -s "results/$$f" "$$f"; then \
			echo "bench artifact drift: $$f differs from canonical results/$$f (run make bench-smoke)"; \
			exit 1; \
		fi; \
	done

# Smoke-run the headline benchmarks (one iteration each) and write every
# bench artifact under results/: the engine speedup (BENCH_PR2.json), the
# calibration refresh latency (BENCH_PR4.json), the observability overhead
# (BENCH_PR5.json), the coded-predict cost (BENCH_PR6.json), the batched
# evaluation engine (BENCH_PR7.json) and the cluster fan-out overhead
# (BENCH_PR8.json), the ingest-pipeline micro/macro numbers
# (BENCH_PR9.json) and the write-predict and NDJSON-scanner numbers
# (BENCH_PR10.json). The current PRs' artifacts are mirrored at the repo
# root for reviewers.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Fig6|ServePredictColdVsCached|CodedPredict|CDFBatch|RouterFanOut|WritePredict' -benchtime=1x .
	COSMODEL_BENCH_SMOKE=1 $(GO) test \
		-run 'TestBenchSmokeArtifact|TestBenchSmokeCalibration|TestBenchSmokeObservability|TestBenchSmokeCoded|TestBenchSmokeBatched|TestBenchSmokeCluster|TestBenchSmokeIngest|TestBenchSmokeWrite' .
	cp results/BENCH_PR4.json BENCH_PR4.json
	cp results/BENCH_PR5.json BENCH_PR5.json
	cp results/BENCH_PR6.json BENCH_PR6.json
	cp results/BENCH_PR7.json BENCH_PR7.json
	cp results/BENCH_PR8.json BENCH_PR8.json
	cp results/BENCH_PR9.json BENCH_PR9.json
	cp results/BENCH_PR10.json BENCH_PR10.json

# Short native-fuzzing runs over the HTTP request parsers (including the
# hand-rolled NDJSON scanner's byte-for-byte equivalence against the stdlib
# decoder), the histogram
# invariants, the k-of-n order-statistic combinator, the guarded root
# finder and the router's partial-CDF merge: enough to catch regressions in
# the strict decoder, the quantile/bucket arithmetic, the coded-read CDF
# bounds, the bracketed search invariants and the cluster merge invariants
# (outputs in [0,1], monotone, single-shard passthrough) without turning
# check into a soak.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzNDJSONDecode$$' -fuzztime=10s ./internal/ingest
	$(GO) test -run '^$$' -fuzz '^FuzzNDJSONScannerEquivalence$$' -fuzztime=10s ./internal/ingest
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeStrict$$' -fuzztime=10s ./internal/serve
	$(GO) test -run '^$$' -fuzz '^FuzzParseFloats$$' -fuzztime=10s ./internal/serve
	$(GO) test -run '^$$' -fuzz '^FuzzHistogramInvariants$$' -fuzztime=10s ./internal/stats
	$(GO) test -run '^$$' -fuzz '^FuzzOrderStatisticCDF$$' -fuzztime=10s ./internal/coscode
	$(GO) test -run '^$$' -fuzz '^FuzzBrentGuarded$$' -fuzztime=10s ./internal/numeric
	$(GO) test -run '^$$' -fuzz '^FuzzPartialMerge$$' -fuzztime=10s ./internal/cluster

# A short open-loop cosload run against an in-process cosserve: the whole
# ingest pipeline (NDJSON streaming, striped state, predict probes) smoke-
# tested through the real binary in a couple of seconds.
loadtest:
	$(GO) run ./cmd/cosload -selftest -devices 4 \
		-warm-rate 100 -warm-dur 300ms \
		-rate-start 150 -rate-end 300 -rate-step 150 -step-dur 500ms \
		-predict-rate 100

# Repeated race-enabled runs of the fault-injection and cancellation suites:
# the tests that depend on goroutine interleavings get three chances to flake.
chaos:
	$(GO) test -race -count=3 \
		-run 'Fault|Chaos|Cancel|Panic|SlowLoris|Graceful|Shed|Timeout|Fallback|Context' \
		./internal/serve ./internal/parallel ./internal/core ./internal/numeric ./internal/cluster

# Cluster fault injection: drive the sharded tier with simulator-measured
# traffic, kill a shard node mid-sweep and require the surviving replica to
# keep clearing the paper's MAE bar, flag degradation and rejoin in place;
# plus the router's loss, quorum and gossip suites.
chaos-cluster:
	$(GO) test -race -count=1 \
		-run 'ChaosCluster|RouterSurvives|RouterLostDevices|RouterNoQuorum|RouterIngestRejected|GenerationGossip' \
		./internal/cluster

tidy:
	gofmt -w .
