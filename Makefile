# Development entry points. `make check` is the full gate: formatting,
# vet, build, and the race-enabled test suite.

GO ?= go

.PHONY: check fmt vet build test race bench tidy

check: fmt vet build race

# gofmt -l prints offending files; fail when it prints anything.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

tidy:
	gofmt -w .
