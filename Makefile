# Development entry points. `make check` is the full gate: formatting,
# vet, build, and the race-enabled test suite.

GO ?= go

.PHONY: check fmt vet build test race bench bench-smoke tidy

check: fmt vet build race bench-smoke

# gofmt -l prints offending files; fail when it prints anything.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Smoke-run the headline benchmarks (one iteration each) and write the
# measured engine speedup to results/BENCH_PR2.json.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Fig6|ServePredictColdVsCached' -benchtime=1x .
	COSMODEL_BENCH_SMOKE=1 $(GO) test -run TestBenchSmokeArtifact .

tidy:
	gofmt -w .
