package cosmodel_test

import (
	"fmt"

	"cosmodel"
)

// ExampleSystemModel demonstrates the analytic model on its own: fitted
// device properties and online metrics in, percentile predictions out.
func ExampleSystemModel() {
	props := cosmodel.DeviceProperties{
		IndexDisk: cosmodel.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  cosmodel.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  cosmodel.NewGammaMeanSCV(8e-3, 0.40),
		ParseFE:   cosmodel.Degenerate{Value: 0.3e-3},
		ParseBE:   cosmodel.Degenerate{Value: 0.5e-3},
	}
	metrics := cosmodel.OnlineMetrics{
		Rate:      60,  // requests/s at this device
		DataRate:  72,  // chunk reads/s (≈0.2 extra reads per request)
		MissIndex: 0.4, // cache miss ratios
		MissMeta:  0.35,
		MissData:  0.5,
		Procs:     1, // Nbe
	}
	dev, err := cosmodel.NewDeviceModel(props, metrics, cosmodel.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fe, err := cosmodel.NewFrontendModel(240, 12, props.ParseFE)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sys, err := cosmodel.NewSystemModel(fe, []*cosmodel.DeviceModel{dev}, cosmodel.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("P(latency <= 100ms) = %.2f\n", sys.PercentileMeetingSLA(0.100))
	fmt.Printf("utilization = %.2f\n", dev.Utilization())
	// Output:
	// P(latency <= 100ms) = 0.91
	// utilization = 0.66
}

// ExampleMissRatioByThreshold shows the paper's latency-threshold method
// for estimating cache miss ratios from measured operation latencies.
func ExampleMissRatioByThreshold() {
	latencies := []float64{
		2e-6, 1e-6, 3e-6, // memory hits: microseconds
		7e-3, 12e-3, // disk misses: milliseconds
	}
	miss := cosmodel.MissRatioByThreshold(latencies, cosmodel.DefaultMissThreshold)
	fmt.Printf("miss ratio = %.2f\n", miss)
	// Output:
	// miss ratio = 0.40
}

// ExampleWilsonInterval shows the confidence interval attached to observed
// SLA-meeting fractions.
func ExampleWilsonInterval() {
	lo, hi := cosmodel.WilsonInterval(950, 1000, 0.95)
	fmt.Printf("[%.3f, %.3f]\n", lo, hi)
	// Output:
	// [0.935, 0.962]
}
