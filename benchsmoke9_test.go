// Bench-smoke artifact for the ingest pipeline and load generator: the
// striped state table against its own single-lock layout (direct calls),
// and the macro numbers — sustained accepted obs/sec and predict QPS
// through a real cosserve over loopback HTTP, driven by the open-loop
// generator in streaming NDJSON mode. Written to results/BENCH_PR9.json;
// gated behind COSMODEL_BENCH_SMOKE=1 like the other artifacts.
package cosmodel_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"cosmodel"
	"cosmodel/internal/ingest"
)

type ingestSmokeReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	Devices    int `json:"devices"`
	Stripes    int `json:"stripes"`
	// SingleLockObsPerSec and StripedObsPerSec are direct state-table
	// ingest throughput with GOMAXPROCS concurrent writers, one-lock vs
	// auto-striped layout; StripedSpeedup is their ratio. On a 1-core
	// runner the speedup is ~1 by construction — the ≥5x acceptance bar
	// applies at 8+ cores and is enforced by the smoke test there.
	SingleLockObsPerSec float64 `json:"single_lock_obs_per_sec"`
	StripedObsPerSec    float64 `json:"striped_obs_per_sec"`
	StripedSpeedup      float64 `json:"striped_speedup"`
	// HTTPObsPerSec is the sustained accepted-observation rate and
	// PredictQPS the completed probe rate of an open-loop cosload run
	// against a cosserve over loopback HTTP (NDJSON mode); the p99s are
	// client-observed request latencies from the same run. Dropped counts
	// open-loop overflow plus calibration-ring drops — the zero-silent-
	// drops bar requires it to be 0.
	HTTPObsPerSec float64 `json:"http_obs_per_sec"`
	PredictQPS    float64 `json:"predict_qps"`
	IngestP99Ms   float64 `json:"ingest_p99_ms"`
	PredictP99Ms  float64 `json:"predict_p99_ms"`
	Dropped       uint64  `json:"dropped"`
	// SingleBatchIngestNs is one JSON-array batch POST (PR8's metric,
	// re-measured) and IngestVsPR8 the ratio of PR8's recorded number to
	// it — the cross-PR regression gate (NaN-omitted on fresh checkouts).
	SingleBatchIngestNs int64   `json:"single_batch_ingest_ns"`
	IngestVsPR8         float64 `json:"ingest_vs_pr8,omitempty"`
}

// tableObsPerSec hammers a state table with GOMAXPROCS concurrent writers
// for a fixed wall budget and returns accepted observations per second.
func tableObsPerSec(fatal func(...any), stripes int) (float64, int) {
	const devices = 64
	tbl, err := ingest.NewTable(ingest.Config{
		Devices: devices, Stripes: stripes, Window: 600, MaxEntries: 64, Procs: 1,
	})
	if err != nil {
		fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	// Disjoint per-worker device sets so the striped layout can actually
	// run lock-free in parallel — the workload the stripes exist for.
	batches := make([][]ingest.Observation, workers)
	for w := range batches {
		for d := w; d < devices; d += workers {
			batches[w] = append(batches[w], ingest.Observation{
				Device: d, Interval: 10, Requests: 500, DataReads: 600,
				IndexHits: 700, IndexMisses: 300,
				MetaHits: 650, MetaMisses: 350,
				DataHits: 500, DataMisses: 500,
			})
		}
	}
	const budget = 300 * time.Millisecond
	var wg sync.WaitGroup
	counts := make([]uint64, workers)
	start := time.Now()
	deadline := start.Add(budget)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			now := start
			for time.Now().Before(deadline) {
				now = now.Add(time.Second)
				if err := tbl.Ingest(batches[w], now); err != nil {
					panic(err)
				}
				counts[w] += uint64(len(batches[w]))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	var total uint64
	for _, c := range counts {
		total += c
	}
	return float64(total) / elapsed, tbl.Stripes()
}

// TestBenchSmokeIngest measures the ingest pipeline micro and macro and
// writes the PR's bench artifact.
func TestBenchSmokeIngest(t *testing.T) {
	if os.Getenv("COSMODEL_BENCH_SMOKE") == "" {
		t.Skip("set COSMODEL_BENCH_SMOKE=1 to produce results/BENCH_PR9.json")
	}
	fatal := func(args ...any) { t.Fatal(args...) }
	const devices = 4

	singleLock, _ := tableObsPerSec(fatal, 1)
	striped, stripes := tableObsPerSec(fatal, 0)
	rep := ingestSmokeReport{
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		Devices:             devices,
		Stripes:             stripes,
		SingleLockObsPerSec: singleLock,
		StripedObsPerSec:    striped,
		StripedSpeedup:      striped / singleLock,
	}

	// Macro: a cosserve over loopback HTTP, loaded by the open-loop
	// generator in NDJSON mode with a concurrent predict stream.
	cfg := cosmodel.DefaultServeConfig(clusterSmokeProps(), devices)
	srv, err := cosmodel.NewServeServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	lr, err := cosmodel.RunLoad(context.Background(), cosmodel.LoadConfig{
		Target:  ts.URL,
		Devices: devices,
		Mode:    cosmodel.LoadModeNDJSON,
		Schedule: cosmodel.Schedule{
			{Rate: 200, Duration: 0.3, Label: "warmup"},
			{Rate: 400, Duration: 1.0, Label: "rate=400"},
		},
		PredictRate: 200,
		MaxInflight: 512,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.HTTPObsPerSec = lr.ObsPerSec
	rep.PredictQPS = lr.PredictQPS
	rep.IngestP99Ms = lr.Ingest.P99 * 1e3
	rep.PredictP99Ms = lr.Predict.P99 * 1e3
	rep.Dropped = lr.Ingest.Dropped + lr.Predict.Dropped + srv.Engine().Stats().CalibQueueDropped

	// Cross-PR regression gate: PR8's single-server JSON-array batch POST,
	// re-measured on the same box.
	req := cosmodel.ServeIngestRequest{Observations: clusterSmokeBatch(devices)}
	rep.SingleBatchIngestNs = best(20, func(int) { smokePost(fatal, ts.URL+"/ingest", req) })
	if pr8 := baselineField(filepath.Join("results", "BENCH_PR8.json"), "single_ingest_ns"); pr8 == pr8 {
		rep.IngestVsPR8 = pr8 / float64(rep.SingleBatchIngestNs)
		// The striped table replaced the single-mutex stateTable under the
		// same HTTP path; allow generous loopback noise but catch a real
		// regression.
		if rep.IngestVsPR8 < 1.0/3 {
			t.Errorf("JSON batch ingest %dns is >3x PR8's %.0fns", rep.SingleBatchIngestNs, pr8)
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("results", "BENCH_PR9.json")
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("table: single-lock %.0f obs/s, %d stripes %.0f obs/s (%.2fx); http: %.0f obs/s accepted, %.1f predict QPS, ingest p99 %.2fms -> %s",
		rep.SingleLockObsPerSec, rep.Stripes, rep.StripedObsPerSec, rep.StripedSpeedup,
		rep.HTTPObsPerSec, rep.PredictQPS, rep.IngestP99Ms, path)

	// Acceptance bars.
	if rep.Dropped != 0 {
		t.Errorf("%d observations dropped; the pipeline must account for every one", rep.Dropped)
	}
	if rep.HTTPObsPerSec <= 0 || rep.PredictQPS <= 0 {
		t.Errorf("macro throughput degenerate: %+v", rep)
	}
	// The ≥5x striped-vs-single-lock bar applies where the stripes have
	// cores to run on; below that the layouts are equivalent by design
	// (stripes=1 IS the single-lock table) and the speedup is recorded
	// without being gated.
	if runtime.GOMAXPROCS(0) >= 8 && rep.StripedSpeedup < 5 {
		t.Errorf("striped ingest %.2fx single-lock at %d cores, want >= 5x",
			rep.StripedSpeedup, runtime.GOMAXPROCS(0))
	}
}
