// Bench-smoke artifact for the calibration subsystem: one-shot measurements
// of the recalibration refresh path (hot swap + cold re-inversion) against
// the warm cached path, written to results/BENCH_PR4.json. Gated behind
// COSMODEL_BENCH_SMOKE=1 like the engine artifact; `make bench-smoke` sets
// the gate and mirrors the artifact at the repo root.
package cosmodel_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"cosmodel"
)

type calibSmokeReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// Devices and SLAs size the measured deployment.
	Devices int `json:"devices"`
	SLAs    int `json:"slas"`
	// CachedNs is a warm /predict (memoized, no inversion). RefreshNs is
	// Recalibrate (validate + atomic swap + generation bump) followed by
	// the first cold prediction under the new properties — the end-to-end
	// latency of serving fresh numbers after a confirmed drift. SwapNs
	// isolates the Recalibrate call itself.
	CachedNs  int64 `json:"cached_ns"`
	SwapNs    int64 `json:"swap_ns"`
	RefreshNs int64 `json:"refresh_ns"`
	// RefreshOverCached is the cost ratio a client pays on the first query
	// after a recalibration relative to steady-state serving.
	RefreshOverCached float64 `json:"refresh_over_cached"`
}

// TestBenchSmokeCalibration measures the calibration refresh latency and
// writes the PR's bench artifact.
func TestBenchSmokeCalibration(t *testing.T) {
	if os.Getenv("COSMODEL_BENCH_SMOKE") == "" {
		t.Skip("set COSMODEL_BENCH_SMOKE=1 to produce results/BENCH_PR4.json")
	}
	props := cosmodel.DeviceProperties{
		IndexDisk: cosmodel.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  cosmodel.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  cosmodel.NewGammaMeanSCV(8e-3, 0.40),
		ParseFE:   cosmodel.Degenerate{Value: 0.3e-3},
		ParseBE:   cosmodel.Degenerate{Value: 0.5e-3},
	}
	cfg := cosmodel.DefaultServeConfig(props, 4)
	eng, err := cosmodel.NewServeEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]cosmodel.ServeObservation, cfg.Devices)
	for d := range batch {
		batch[d] = cosmodel.ServeObservation{
			Device: d, Interval: 10, Requests: 500, DataReads: 600,
			IndexHits: 700, IndexMisses: 300,
			MetaHits: 650, MetaMisses: 350,
			DataHits: 500, DataMisses: 500,
			DiskBusy: 8, DiskOps: 1000,
		}
	}
	if err := eng.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	slas := []float64{0.01, 0.05, 0.1}
	variants := [2]cosmodel.DeviceProperties{props, props}
	variants[1].DataDisk = cosmodel.NewGammaMeanSCV(12e-3, 0.9)

	const rounds = 20
	best := func(op func(i int)) int64 {
		b := time.Duration(1<<63 - 1)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			op(r)
			if elapsed := time.Since(start); elapsed < b {
				b = elapsed
			}
		}
		return b.Nanoseconds()
	}
	predict := func() {
		if _, err := eng.Predict(slas); err != nil {
			t.Fatal(err)
		}
	}
	predict() // warm the cache
	rep := calibSmokeReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Devices:    cfg.Devices,
		SLAs:       len(slas),
		CachedNs:   best(func(int) { predict() }),
		SwapNs: best(func(i int) {
			if err := eng.Recalibrate(variants[i%2]); err != nil {
				t.Fatal(err)
			}
		}),
		RefreshNs: best(func(i int) {
			if err := eng.Recalibrate(variants[i%2]); err != nil {
				t.Fatal(err)
			}
			predict()
		}),
	}
	rep.RefreshOverCached = float64(rep.RefreshNs) / float64(rep.CachedNs)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if err := os.MkdirAll("results", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("results", "BENCH_PR4.json"), out, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("calibration refresh: swap %s, refresh %s, cached %s (refresh/cached %.1fx)",
		time.Duration(rep.SwapNs), time.Duration(rep.RefreshNs),
		time.Duration(rep.CachedNs), rep.RefreshOverCached)
	if rep.RefreshNs <= rep.CachedNs {
		t.Error("refresh measured faster than a cached hit; measurement broken")
	}
}
