module cosmodel

go 1.22
