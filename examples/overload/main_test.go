package main

import (
	"testing"

	"cosmodel"
)

// TestAdmissionThresholds smoke-tests the example's computation: the shared
// cosmodel.MaxAdmissibleRate must yield positive thresholds that shrink as
// the cache degrades.
func TestAdmissionThresholds(t *testing.T) {
	props := cosmodel.DeviceProperties{
		IndexDisk: cosmodel.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  cosmodel.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  cosmodel.NewGammaMeanSCV(8e-3, 0.40),
		ParseFE:   cosmodel.Degenerate{Value: 0.3e-3},
		ParseBE:   cosmodel.Degenerate{Value: 0.5e-3},
	}
	dep := func(mi, mm, md float64) cosmodel.Deployment {
		return cosmodel.Deployment{
			Props:         props,
			Devices:       devices,
			Procs:         1,
			FrontendProcs: 12,
			ExtraReadFrac: chunkFrac,
			MissIndex:     mi,
			MissMeta:      mm,
			MissData:      md,
		}
	}
	healthy, err := cosmodel.MaxAdmissibleRate(dep(0.20, 0.18, 0.25), slaLatency, slaTarget)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := cosmodel.MaxAdmissibleRate(dep(0.85, 0.85, 0.90), slaLatency, slaTarget)
	if err != nil {
		t.Fatal(err)
	}
	if healthy <= 0 || cold <= 0 {
		t.Fatalf("thresholds must be positive: healthy=%v cold=%v", healthy, cold)
	}
	if cold >= healthy {
		t.Errorf("cold-cache threshold %v should be below healthy %v", cold, healthy)
	}
}
