// Overload control: one of the paper's what-if applications. A proxy that
// can turn away excess requests needs an admission threshold: the highest
// arrival rate at which the SLA still holds. This example asks the analytic
// model for that threshold (cosmodel.MaxAdmissibleRate) — and shows how the
// threshold moves when the cache degrades (miss ratios rise), which is
// exactly the situation where a static threshold fails.
package main

import (
	"fmt"
	"log"

	"cosmodel"
)

const (
	slaLatency = 0.050
	slaTarget  = 0.90
	devices    = 4
	chunkFrac  = 0.2
)

func main() {
	props := cosmodel.DeviceProperties{
		IndexDisk: cosmodel.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  cosmodel.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  cosmodel.NewGammaMeanSCV(8e-3, 0.40),
		ParseFE:   cosmodel.Degenerate{Value: 0.3e-3},
		ParseBE:   cosmodel.Degenerate{Value: 0.5e-3},
	}
	fmt.Printf("SLA: %.0f%% of requests within %.0f ms, %d devices\n\n",
		slaTarget*100, slaLatency*1e3, devices)
	fmt.Println("cache state            miss(i/m/d)      max admissible rate")
	for _, c := range []struct {
		name       string
		mi, mm, md float64
	}{
		{"healthy cache", 0.20, 0.18, 0.25},
		{"degraded cache", 0.40, 0.35, 0.50},
		{"cold cache (restart)", 0.85, 0.85, 0.90},
	} {
		dep := cosmodel.Deployment{
			Props:         props,
			Devices:       devices,
			Procs:         1,
			FrontendProcs: 12,
			ExtraReadFrac: chunkFrac,
			MissIndex:     c.mi,
			MissMeta:      c.mm,
			MissData:      c.md,
		}
		rate, err := cosmodel.MaxAdmissibleRate(dep, slaLatency, slaTarget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %.2f/%.2f/%.2f   %8.0f req/s\n", c.name, c.mi, c.mm, c.md, rate)
	}
	fmt.Println("\nA static admission threshold tuned for the healthy cache would accept")
	fmt.Println("far more traffic than a cold cache can serve within the SLA; the model")
	fmt.Println("gives the controller a threshold that tracks the observed miss ratios.")
}
