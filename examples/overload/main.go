// Overload control: one of the paper's what-if applications. A proxy that
// can turn away excess requests needs an admission threshold: the highest
// arrival rate at which the SLA still holds. This example sweeps the rate
// through the analytic model to find that threshold — and shows how the
// threshold moves when the cache degrades (miss ratios rise), which is
// exactly the situation where a static threshold fails.
package main

import (
	"errors"
	"fmt"
	"log"

	"cosmodel"
)

const (
	slaLatency = 0.050
	slaTarget  = 0.90
	devices    = 4
	chunkFrac  = 0.2
)

func main() {
	props := cosmodel.DeviceProperties{
		IndexDisk: cosmodel.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  cosmodel.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  cosmodel.NewGammaMeanSCV(8e-3, 0.40),
		ParseFE:   cosmodel.Degenerate{Value: 0.3e-3},
		ParseBE:   cosmodel.Degenerate{Value: 0.5e-3},
	}
	fmt.Printf("SLA: %.0f%% of requests within %.0f ms, %d devices\n\n",
		slaTarget*100, slaLatency*1e3, devices)
	fmt.Println("cache state            miss(i/m/d)      max admissible rate")
	for _, c := range []struct {
		name       string
		mi, mm, md float64
	}{
		{"healthy cache", 0.20, 0.18, 0.25},
		{"degraded cache", 0.40, 0.35, 0.50},
		{"cold cache (restart)", 0.85, 0.85, 0.90},
	} {
		rate := maxAdmissible(props, c.mi, c.mm, c.md)
		fmt.Printf("%-22s %.2f/%.2f/%.2f   %8.0f req/s\n", c.name, c.mi, c.mm, c.md, rate)
	}
	fmt.Println("\nA static admission threshold tuned for the healthy cache would accept")
	fmt.Println("far more traffic than a cold cache can serve within the SLA; the model")
	fmt.Println("gives the controller a threshold that tracks the observed miss ratios.")
}

// maxAdmissible binary-searches the largest aggregate rate whose predicted
// percentile still meets the target.
func maxAdmissible(props cosmodel.DeviceProperties, mi, mm, md float64) float64 {
	meets := func(rate float64) bool {
		perDev := cosmodel.OnlineMetrics{
			Rate:      rate / devices,
			DataRate:  rate * (1 + chunkFrac) / devices,
			MissIndex: mi,
			MissMeta:  mm,
			MissData:  md,
			Procs:     1,
		}
		devs := make([]*cosmodel.DeviceModel, devices)
		for i := range devs {
			d, err := cosmodel.NewDeviceModel(props, perDev, cosmodel.Options{})
			if errors.Is(err, cosmodel.ErrOverload) {
				return false
			}
			if err != nil {
				log.Fatal(err)
			}
			devs[i] = d
		}
		fe, err := cosmodel.NewFrontendModel(rate, 12, props.ParseFE)
		if err != nil {
			return false
		}
		sys, err := cosmodel.NewSystemModel(fe, devs, cosmodel.Options{})
		if err != nil {
			log.Fatal(err)
		}
		return sys.PercentileMeetingSLA(slaLatency) >= slaTarget
	}
	lo, hi := 1.0, 4000.0
	if !meets(lo) {
		return 0
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if meets(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
