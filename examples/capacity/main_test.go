package main

import (
	"testing"

	"cosmodel"
)

// TestEvaluateMonotoneInDevices smoke-tests the example's computation: with
// the forecast workload, adding devices must not hurt the predicted
// percentile, and some device count within the sweep must meet the SLA.
func TestEvaluateMonotoneInDevices(t *testing.T) {
	props := cosmodel.DeviceProperties{
		IndexDisk: cosmodel.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  cosmodel.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  cosmodel.NewGammaMeanSCV(8e-3, 0.40),
		ParseFE:   cosmodel.Degenerate{Value: 0.3e-3},
		ParseBE:   cosmodel.Degenerate{Value: 0.5e-3},
	}
	const rate = 900.0
	dep := func(devices int) cosmodel.Deployment {
		return cosmodel.Deployment{
			Props:         props,
			Devices:       devices,
			Procs:         1,
			FrontendProcs: 12,
			ExtraReadFrac: 0.2,
			MissIndex:     0.40,
			MissMeta:      0.35,
			MissData:      0.50,
		}
	}
	prev := -1.0
	met := false
	for _, devices := range []int{8, 12, 16, 24} {
		p, ok := evaluate(dep(devices), rate)
		if ok && p < prev-1e-6 {
			t.Errorf("percentile fell from %v to %v when growing to %d devices", prev, p, devices)
		}
		if ok {
			prev = p
			if p >= slaTarget {
				met = true
			}
		}
	}
	if !met {
		t.Error("no configuration up to 24 devices met the SLA; the example would find nothing")
	}
}
