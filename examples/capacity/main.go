// Capacity planning: the paper's motivating application. Given an SLA
// ("95% of requests within 100 ms"), a workload forecast, and calibrated
// device properties, use the analytic model to find the smallest number of
// storage devices — and the best process count per device — that meets the
// SLA, without running a single load test. The evaluation goes through the
// shared cosmodel.Deployment operating-point abstraction, the same code
// path the cosserve /advise endpoint uses online.
package main

import (
	"errors"
	"fmt"
	"log"

	"cosmodel"
)

const (
	slaLatency = 0.100 // seconds
	slaTarget  = 0.95  // fraction of requests that must meet it
)

func main() {
	// Calibrated device properties (from the quickstart's benchmark; here
	// written out explicitly the way an operator would persist them).
	props := cosmodel.DeviceProperties{
		IndexDisk: cosmodel.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  cosmodel.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  cosmodel.NewGammaMeanSCV(8e-3, 0.40),
		ParseFE:   cosmodel.Degenerate{Value: 0.3e-3},
		ParseBE:   cosmodel.Degenerate{Value: 0.5e-3},
	}
	// Workload forecast: aggregate rate and cache behaviour expected at
	// the planning horizon.
	forecast := struct {
		rate      float64 // req/s, aggregate
		chunkFrac float64 // extra data reads per request
		missIdx   float64
		missMeta  float64
		missData  float64
	}{rate: 900, chunkFrac: 0.2, missIdx: 0.40, missMeta: 0.35, missData: 0.50}

	deployment := func(devices, procs int) cosmodel.Deployment {
		return cosmodel.Deployment{
			Props:         props,
			Devices:       devices,
			Procs:         procs,
			FrontendProcs: 12,
			ExtraReadFrac: forecast.chunkFrac,
			MissIndex:     forecast.missIdx,
			MissMeta:      forecast.missMeta,
			MissData:      forecast.missData,
		}
	}

	fmt.Printf("target: %.0f%% of requests within %.0f ms at %.0f req/s\n\n",
		slaTarget*100, slaLatency*1e3, forecast.rate)
	fmt.Println("devices  procs/device  P(<=SLA)  verdict")

	best := -1
	for devices := 2; devices <= 24; devices++ {
		p, ok := evaluate(deployment(devices, 1), forecast.rate)
		verdict := "insufficient"
		if ok && p >= slaTarget {
			verdict = "MEETS SLA"
			if best < 0 {
				best = devices
			}
		}
		fmt.Printf("%7d  %12d  %s  %s\n", devices, 1, fmtP(p, ok), verdict)
		if best > 0 && devices >= best+2 {
			break
		}
	}
	if best < 0 {
		fmt.Println("\nno configuration up to 24 devices meets the SLA — revisit hardware or SLA")
		return
	}
	fmt.Printf("\nminimum deployment: %d devices\n", best)

	// How much growth does the minimum deployment leave before the SLA
	// breaks? The same question cosserve's /advise answers online.
	headroom, err := cosmodel.Headroom(deployment(best, 1), forecast.rate, slaLatency, slaTarget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("headroom at %d devices: %+.0f req/s beyond the forecast\n", best, headroom)

	// What-if: can more processes per device substitute for devices?
	fmt.Println("\nwhat-if on the marginal configuration (one device fewer):")
	fmt.Println("procs/device  P(<=SLA)")
	for _, procs := range []int{1, 2, 4, 8, 16} {
		p, ok := evaluate(deployment(best-1, procs), forecast.rate)
		fmt.Printf("%12d  %s\n", procs, fmtP(p, ok))
	}
}

// evaluate predicts the percentile meeting the SLA for a deployment; ok is
// false when the configuration is overloaded.
func evaluate(dep cosmodel.Deployment, totalRate float64) (float64, bool) {
	p, err := dep.MeetFraction(totalRate, slaLatency)
	if errors.Is(err, cosmodel.ErrOverload) {
		return 0, false
	}
	if err != nil {
		log.Fatal(err)
	}
	return p, true
}

func fmtP(p float64, ok bool) string {
	if !ok {
		return "overload"
	}
	return fmt.Sprintf("%.4f  ", p)
}
