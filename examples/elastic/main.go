// Elastic storage: the paper's third what-if application. At night the
// arrival rate drops; powering storage nodes down saves energy, but the
// surviving devices absorb the traffic (and, with less aggregate cache,
// higher miss ratios). This example uses the analytic model to pick, for
// each hour of a synthetic diurnal load curve, the smallest device count
// that still meets the SLA.
package main

import (
	"errors"
	"fmt"
	"log"
	"math"

	"cosmodel"
)

const (
	slaLatency = 0.100
	slaTarget  = 0.95
	maxDevices = 12
	chunkFrac  = 0.2
)

func main() {
	props := cosmodel.DeviceProperties{
		IndexDisk: cosmodel.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  cosmodel.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  cosmodel.NewGammaMeanSCV(8e-3, 0.40),
		ParseFE:   cosmodel.Degenerate{Value: 0.3e-3},
		ParseBE:   cosmodel.Degenerate{Value: 0.5e-3},
	}
	fmt.Printf("SLA: %.0f%% within %.0f ms; fleet of %d devices\n\n", slaTarget*100, slaLatency*1e3, maxDevices)
	fmt.Println("hour  load(req/s)  devices powered  P(<=SLA)  saved")
	totalSaved := 0
	for hour := 0; hour < 24; hour++ {
		// Diurnal curve: trough at 04:00, peak at 16:00.
		load := 700 + 500*math.Sin(2*math.Pi*float64(hour-10)/24)
		devices, p := minimalFleet(props, load)
		saved := maxDevices - devices
		totalSaved += saved
		fmt.Printf("%4d  %11.0f  %15d  %.4f    %d\n", hour, load, devices, p, saved)
	}
	fmt.Printf("\ndevice-hours saved per day: %d of %d (%.0f%%)\n",
		totalSaved, 24*maxDevices, 100*float64(totalSaved)/(24*maxDevices))
}

// minimalFleet finds the fewest powered devices meeting the SLA at the
// given load. Powering down devices concentrates traffic and shrinks the
// aggregate cache, which we model as miss ratios rising with concentration.
func minimalFleet(props cosmodel.DeviceProperties, rate float64) (int, float64) {
	for devices := 1; devices <= maxDevices; devices++ {
		// Fewer devices -> less aggregate cache for the same working
		// set -> higher miss ratios. A simple saturating model: full
		// fleet has the baseline ratios; each removed device adds load
		// and misses.
		conc := float64(maxDevices) / float64(devices)
		mi := clamp(0.35 * math.Sqrt(conc))
		mm := clamp(0.30 * math.Sqrt(conc))
		md := clamp(0.45 * math.Sqrt(conc))
		perDev := cosmodel.OnlineMetrics{
			Rate:      rate / float64(devices),
			DataRate:  rate * (1 + chunkFrac) / float64(devices),
			MissIndex: mi,
			MissMeta:  mm,
			MissData:  md,
			Procs:     4,
		}
		devs := make([]*cosmodel.DeviceModel, devices)
		usable := true
		for i := range devs {
			d, err := cosmodel.NewDeviceModel(props, perDev, cosmodel.Options{})
			if errors.Is(err, cosmodel.ErrOverload) {
				usable = false
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			devs[i] = d
		}
		if !usable {
			continue
		}
		fe, err := cosmodel.NewFrontendModel(rate, 12, props.ParseFE)
		if err != nil {
			continue
		}
		sys, err := cosmodel.NewSystemModel(fe, devs, cosmodel.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if p := sys.PercentileMeetingSLA(slaLatency); p >= slaTarget {
			return devices, p
		}
	}
	// Fall back to the full fleet even if the SLA is missed.
	perDev := cosmodel.OnlineMetrics{
		Rate:      rate / maxDevices,
		DataRate:  rate * (1 + chunkFrac) / maxDevices,
		MissIndex: 0.35, MissMeta: 0.30, MissData: 0.45,
		Procs: 4,
	}
	d, err := cosmodel.NewDeviceModel(props, perDev, cosmodel.Options{})
	if err != nil {
		return maxDevices, 0
	}
	fe, _ := cosmodel.NewFrontendModel(rate, 12, props.ParseFE)
	devs := make([]*cosmodel.DeviceModel, maxDevices)
	for i := range devs {
		devs[i] = d
	}
	sys, err := cosmodel.NewSystemModel(fe, devs, cosmodel.Options{})
	if err != nil {
		return maxDevices, 0
	}
	return maxDevices, sys.PercentileMeetingSLA(slaLatency)
}

func clamp(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}
