// Bottleneck identification: the paper's second what-if application. A
// cluster of many devices misses its SLA; instead of instrumenting every
// disk, feed each device's cheap online metrics (rates, miss ratios) into
// the model and rank devices by their predicted contribution to SLA
// violations. Here one device has a degraded disk (slower service times)
// and another a cold cache — the model pinpoints both, in order.
package main

import (
	"fmt"
	"log"
	"os"

	"cosmodel"
)

const sla = 0.050

func main() {
	props := cosmodel.DeviceProperties{
		IndexDisk: cosmodel.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  cosmodel.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  cosmodel.NewGammaMeanSCV(8e-3, 0.40),
		ParseFE:   cosmodel.Degenerate{Value: 0.3e-3},
		ParseBE:   cosmodel.Degenerate{Value: 0.5e-3},
	}
	// Eight devices; device 2 has a degraded disk (its online-measured
	// mean service time doubled — remapping, vibration, whatever), and
	// device 5 restarted recently (cold cache).
	type devState struct {
		name           string
		rate, dataRate float64
		mi, mm, md     float64
		diskMean       float64
	}
	states := make([]devState, 8)
	for i := range states {
		states[i] = devState{
			name: fmt.Sprintf("disk-%d", i),
			rate: 30, dataRate: 36,
			mi: 0.30, mm: 0.25, md: 0.40,
		}
	}
	states[2].name = "disk-2 (degraded media)"
	states[2].diskMean = 16e-3 // online b doubled
	states[5].name = "disk-5 (cold cache)"
	states[5].mi, states[5].mm, states[5].md = 0.85, 0.85, 0.9

	var devices []*cosmodel.DeviceModel
	total := 0.0
	for _, st := range states {
		m := cosmodel.OnlineMetrics{
			Rate: st.rate, DataRate: st.dataRate,
			MissIndex: st.mi, MissMeta: st.mm, MissData: st.md,
			Procs: 1, DiskMean: st.diskMean,
		}
		d, err := cosmodel.NewDeviceModel(props, m, cosmodel.Options{})
		if err != nil {
			log.Fatal(err)
		}
		devices = append(devices, d)
		total += st.rate
	}
	fe, err := cosmodel.NewFrontendModel(total, 12, props.ParseFE)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := cosmodel.NewSystemModel(fe, devices, cosmodel.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("system-wide: P(latency <= %.0fms) = %.4f\n\n", sla*1e3, sys.PercentileMeetingSLA(sla))
	diag := sys.Diagnose(sla)
	if err := cosmodel.RenderDiagnosis(os.Stdout, diag, sla); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for i, d := range diag {
		fmt.Printf("#%d: %s (%.0f%% of predicted misses)\n", i+1, states[d.Device].name, d.SLAContribution*100)
		if i == 1 {
			break
		}
	}
}
