// Quickstart: calibrate device properties, build the analytic model, and
// compare its predicted percentile-meeting-SLA values against a short run
// of the cluster simulator — the whole paper in one page.
package main

import (
	"fmt"
	"log"
	"time"

	"cosmodel"
)

func main() {
	// 1. Benchmark the "hardware" (Section IV-A of the paper): disk
	// service times with one outstanding operation, parse latencies with
	// a cached closed loop, then fit distributions.
	simCfg := cosmodel.DefaultSimConfig()
	props, err := cosmodel.CalibrateDevice(simCfg, 3000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("calibrated device properties:")
	fmt.Printf("  index lookup: %v (mean %.2f ms)\n", props.IndexDisk, props.IndexDisk.Mean()*1e3)
	fmt.Printf("  metadata read: %v (mean %.2f ms)\n", props.MetaDisk, props.MetaDisk.Mean()*1e3)
	fmt.Printf("  data read:     %v (mean %.2f ms)\n", props.DataDisk, props.DataDisk.Mean()*1e3)
	fmt.Printf("  parse FE/BE:   %.2f / %.2f ms\n\n", props.ParseFE.Mean()*1e3, props.ParseBE.Mean()*1e3)

	// 2. Run a workload through the simulated cluster and collect the
	// online metrics (Section IV-B): rates, miss ratios, disk means.
	cluster, err := cosmodel.NewCluster(simCfg)
	if err != nil {
		log.Fatal(err)
	}
	catalog, err := cosmodel.NewCatalog(150000, cosmodel.WikipediaLikeSizes(), 1.05, 1, 7)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.PrewarmCaches(catalog, 0.95); err != nil {
		log.Fatal(err)
	}
	const rate = 240.0
	records, err := cosmodel.GenerateTrace(catalog, cosmodel.Schedule{
		{Rate: rate, Duration: 40, Label: "run"},
	}, 11)
	if err != nil {
		log.Fatal(err)
	}
	cluster.Inject(records)
	cluster.RunUntil(10) // warm
	before := cluster.Snapshot()
	cluster.Drain()
	window := cluster.Window(before, cluster.Snapshot())

	// 3. Build the analytic model from the measured window and predict.
	sys, err := cosmodel.BuildSystemModel(simCfg, props, window, cosmodel.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %.0f req/s over %d devices\n\n", rate, simCfg.Devices())
	fmt.Println("SLA        observed   predicted")
	for i, sla := range simCfg.SLAs {
		fmt.Printf("%-9v  %.4f     %.4f\n",
			time.Duration(sla*float64(time.Second)), window.MeetFraction[i], sys.PercentileMeetingSLA(sla))
	}
	fmt.Printf("\npredicted p95 latency: %.1f ms\n", sys.Quantile(0.95)*1e3)
	fmt.Printf("predicted mean latency: %.1f ms (observed %.1f ms)\n",
		sys.MeanResponse()*1e3, window.MeanLatency*1e3)
}
