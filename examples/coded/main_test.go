package main

import (
	"context"
	"math"
	"testing"

	"cosmodel"
)

// TestSchemeOrdering smoke-tests the example's computation: the p99s of the
// compared redundancy schemes must land in the order the order-statistic
// model guarantees at this operating point.
func TestSchemeOrdering(t *testing.T) {
	q := func(spec cosmodel.CodedSpec) float64 {
		v, err := p99(spec, parentRate)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		if !(v > 0) || math.IsInf(v, 0) {
			t.Fatalf("%+v: p99 %v not positive finite", spec, v)
		}
		return v
	}

	plain := q(cosmodel.CodedSpec{N: 1, K: 1})
	repl := q(cosmodel.CodedSpec{N: 3, K: 1})
	fastest6 := q(cosmodel.CodedSpec{N: 6, K: 1})
	ec := q(cosmodel.CodedSpec{N: 6, K: 4})
	barrier := q(cosmodel.CodedSpec{N: 6, K: 6})

	// Racing three replicas beats the single read at this (modest) load.
	if repl >= plain {
		t.Errorf("replication p99 %.4f not below single-replica %.4f", repl, plain)
	}
	// Within a stripe width, a larger quorum can only be slower.
	if fastest6 > ec+1e-12 || ec > barrier+1e-12 {
		t.Errorf("quorum ordering violated: 1-of-6 %.4f, 4-of-6 %.4f, 6-of-6 %.4f",
			fastest6, ec, barrier)
	}

	// Hedging endpoints: delay zero is full issue; a huge delay pushes the
	// reserves past any mass and degrades to the k-of-k barrier.
	zero := q(cosmodel.CodedSpec{N: 6, K: 4, Hedge: true, HedgeDelay: 0})
	if math.Abs(zero-ec) > 1e-9 {
		t.Errorf("hedge delay 0 p99 %.6f differs from full issue %.6f", zero, ec)
	}
	// Compare on one system so both see identical device load (the example
	// helper provisions for the worst-case fan-out of n sub-reads).
	sys, err := system(cosmodel.CodedSpec{N: 6, K: 4}, parentRate)
	if err != nil {
		t.Fatal(err)
	}
	huge, err := sys.CodedQuantileContext(context.Background(),
		cosmodel.CodedSpec{N: 6, K: 4, Hedge: true, HedgeDelay: 1e6}, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	kofk, err := sys.CodedQuantileContext(context.Background(), cosmodel.CodedSpec{N: 4, K: 4}, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(huge-kofk) > 1e-6 {
		t.Errorf("hedge delay ->inf p99 %.6f differs from 4-of-4 barrier %.6f", huge, kofk)
	}
}

// TestSingleReplicaMatchesPlainQuantile checks the example's degenerate
// scheme against the plain model: with n = k = 1 the coded path must agree
// with SystemModel.Quantile.
func TestSingleReplicaMatchesPlainQuantile(t *testing.T) {
	spec := cosmodel.CodedSpec{N: 1, K: 1}
	sys, err := system(spec, parentRate)
	if err != nil {
		t.Fatal(err)
	}
	coded, err := sys.CodedQuantileContext(context.Background(), spec, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.QuantileContext(context.Background(), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coded-plain) > 1e-9*math.Max(1, plain) {
		t.Errorf("n=1 coded p99 %.9f differs from plain p99 %.9f", coded, plain)
	}
}
