// Redundancy planning for coded reads: given calibrated device properties
// and a workload forecast, compare the p99 read latency of replication
// (n=3, k=1: race three full copies, keep the fastest) against erasure
// coding (n=6, k=4: stripe into four data plus two parity chunks, done at
// the fourth-fastest), and see how a hedging delay trades tail latency
// against the extra load of reserve reads. Everything comes from the
// analytic k-of-n order-statistic model — no load tests. The storage cost
// of a scheme is n/k (3x for triple replication, 1.5x for the 6-of-4
// code), so the question the table answers is: how much tail latency does
// each multiple of storage actually buy at this operating point?
package main

import (
	"context"
	"fmt"
	"log"

	"cosmodel"
)

const (
	devices       = 6    // storage devices in the cluster
	procs         = 4    // backend processes per device
	frontendProcs = 12   // proxy-tier processes
	parentRate    = 60.0 // object reads per second (before fan-out)
)

// props are the calibrated device properties (Section IV-A), written out
// the way an operator would persist them after the quickstart benchmark.
var props = cosmodel.DeviceProperties{
	IndexDisk: cosmodel.NewGammaMeanSCV(9e-3, 0.45),
	MetaDisk:  cosmodel.NewGammaMeanSCV(6e-3, 0.50),
	DataDisk:  cosmodel.NewGammaMeanSCV(8e-3, 0.40),
	ParseFE:   cosmodel.Degenerate{Value: 0.3e-3},
	ParseBE:   cosmodel.Degenerate{Value: 0.5e-3},
}

func main() {
	fmt.Printf("forecast: %.0f object reads/s over %d devices\n\n", parentRate, devices)
	fmt.Println("scheme            n  k  hedge Δ   storage   p99 read latency")

	schemes := []struct {
		name string
		spec cosmodel.CodedSpec
	}{
		{"single replica", cosmodel.CodedSpec{N: 1, K: 1}},
		{"replication", cosmodel.CodedSpec{N: 3, K: 1}},
		{"erasure 6-of-4", cosmodel.CodedSpec{N: 6, K: 4}},
		{"  + hedge 5ms", cosmodel.CodedSpec{N: 6, K: 4, Hedge: true, HedgeDelay: 5e-3}},
		{"  + hedge 20ms", cosmodel.CodedSpec{N: 6, K: 4, Hedge: true, HedgeDelay: 20e-3}},
	}
	for _, s := range schemes {
		q, err := p99(s.spec, parentRate)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		delay := "      -"
		if s.spec.Hedge {
			delay = fmt.Sprintf("%4.0f ms", s.spec.HedgeDelay*1e3)
		}
		fmt.Printf("%-16s  %d  %d  %s  %5.1fx  %9.1f ms\n",
			s.name, s.spec.N, s.spec.K, delay,
			float64(s.spec.N)/float64(s.spec.K), q*1e3)
	}

	fmt.Println("\nhedging sweep for the 6-of-4 code (Δ=0 issues all six up front;")
	fmt.Println("a long Δ degrades to the 4-of-4 barrier):")
	fmt.Println("     Δ      sub-reads/object   p99")
	for _, d := range []float64{0, 2e-3, 5e-3, 10e-3, 20e-3, 50e-3} {
		spec := cosmodel.CodedSpec{N: 6, K: 4, Hedge: true, HedgeDelay: d}
		q, err := p99(spec, parentRate)
		if err != nil {
			log.Fatal(err)
		}
		// Worst case: every reserve fires. The simulator cancels reserves
		// once the quorum is met, so the realized fan-out sits between the
		// k primaries and this bound.
		fmt.Printf("%5.0f ms   <= %d               %6.1f ms\n", d*1e3, spec.N, q*1e3)
	}
}

// system builds the analytic model for one coded scheme at the given
// object-read rate: each read fans into n sub-reads (one chunk per
// backend), so the device tier sees n times the parent rate spread over
// the cluster, while the proxy parses each object read once.
func system(spec cosmodel.CodedSpec, rate float64) (*cosmodel.SystemModel, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	subRate := rate * float64(spec.N) / float64(devices)
	m := cosmodel.OnlineMetrics{
		Rate:      subRate,
		DataRate:  subRate,
		MissIndex: 0.40,
		MissMeta:  0.35,
		MissData:  0.50,
		Procs:     procs,
	}
	var opts cosmodel.Options
	dev, err := cosmodel.NewDeviceModel(props, m, opts)
	if err != nil {
		return nil, err
	}
	devs := make([]*cosmodel.DeviceModel, devices)
	for i := range devs {
		devs[i] = dev
	}
	fe, err := cosmodel.NewFrontendModel(rate, frontendProcs, props.ParseFE)
	if err != nil {
		return nil, err
	}
	return cosmodel.NewSystemModel(fe, devs, opts)
}

// p99 predicts the 99th-percentile read latency for a scheme.
func p99(spec cosmodel.CodedSpec, rate float64) (float64, error) {
	sys, err := system(spec, rate)
	if err != nil {
		return 0, err
	}
	return sys.CodedQuantileContext(context.Background(), spec, 0.99)
}
