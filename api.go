package cosmodel

import (
	"net/http"

	"cosmodel/internal/calib"
	"cosmodel/internal/cluster"
	"cosmodel/internal/core"
	"cosmodel/internal/coscode"
	"cosmodel/internal/dist"
	"cosmodel/internal/experiments"
	"cosmodel/internal/ingest"
	"cosmodel/internal/load"
	"cosmodel/internal/numeric"
	"cosmodel/internal/obs"
	"cosmodel/internal/parallel"
	"cosmodel/internal/retry"
	"cosmodel/internal/serve"
	"cosmodel/internal/simstore"
	"cosmodel/internal/stats"
	"cosmodel/internal/trace"
)

// ---------------------------------------------------------------------------
// Analytic model (the paper's contribution).

// Core model types; see internal/core for full documentation.
type (
	// DeviceProperties are benchmarked per-device performance properties:
	// fitted disk service-time distributions and parse latencies.
	DeviceProperties = core.DeviceProperties
	// OnlineMetrics are the per-device runtime inputs: rates, miss
	// ratios, process count and observed disk mean service time.
	OnlineMetrics = core.OnlineMetrics
	// Options select model variants (WTA mode, disk-queue approximation,
	// compounding, ODOPR baseline, inverter).
	Options = core.Options
	// DeviceModel is the backend-tier model of one storage device.
	DeviceModel = core.DeviceModel
	// FrontendModel is the proxy-tier M/G/1 model.
	FrontendModel = core.FrontendModel
	// FrontendSet is one homogeneous group within a heterogeneous
	// frontend tier.
	FrontendSet = core.FrontendSet
	// SystemModel is the full response-latency model.
	SystemModel = core.SystemModel
	// WTAMode selects the accept-waiting model.
	WTAMode = core.WTAMode
	// DiskQueueMode selects the multi-process disk approximation.
	DiskQueueMode = core.DiskQueueMode
	// CompoundMode selects the extra-data-read count model.
	CompoundMode = core.CompoundMode
	// BestFitReport ranks candidate service-time families (Fig. 5).
	BestFitReport = core.BestFitReport
	// DeviceDiagnosis is one row of the bottleneck-identification report.
	DeviceDiagnosis = core.DeviceDiagnosis
	// CodedSpec describes an (n,k) coded read — stripe width, completion
	// quorum, and optional hedging delay — consumed by SystemModel's
	// CodedCDF/CodedQuantile order-statistic predictions.
	CodedSpec = core.CodedSpec
	// WriteQuorumSpec describes a w-of-n replicated PUT — replica fan-out
	// and acknowledgement quorum — consumed by SystemModel's
	// WriteCDF/WriteQuantile order-statistic predictions.
	WriteQuorumSpec = core.WriteSpec
)

// Order-statistic primitives (internal/coscode): KOfNProbability is the
// Poisson-binomial tail P(at least k of the n successes), the combinator
// under every coded-read prediction; ErrBadCodedSpec marks invalid specs.
var (
	KOfNProbability = coscode.KOfN
	ErrBadCodedSpec = coscode.ErrBadSpec
)

// Model variant constants.
const (
	WTAApprox = core.WTAApprox
	WTANone   = core.WTANone
	WTAExact  = core.WTAExact

	DiskMM1K = core.DiskMM1K
	DiskMG1  = core.DiskMG1

	CompoundPoisson   = core.CompoundPoisson
	CompoundFixed     = core.CompoundFixed
	CompoundGeometric = core.CompoundGeometric
)

// Model errors.
var (
	// ErrOverload marks operating points with no steady state.
	ErrOverload = core.ErrOverload
	// ErrBadParams marks invalid model inputs.
	ErrBadParams = core.ErrBadParams
)

// Model constructors and calibration helpers.
var (
	// NewDeviceModel builds the backend model of one storage device.
	NewDeviceModel = core.NewDeviceModel
	// NewFrontendModel builds the proxy-tier model.
	NewFrontendModel = core.NewFrontendModel
	// NewHeterogeneousFrontend builds a frontend tier of several
	// homogeneous server sets (Section III-C of the paper).
	NewHeterogeneousFrontend = core.NewHeterogeneousFrontend
	// NewSystemModel combines frontend and device models (Eqs. 2-3).
	NewSystemModel = core.NewSystemModel
	// FitDeviceProperties fits Gamma disk distributions and degenerate
	// parse latencies from benchmark samples (Fig. 5 calibration).
	FitDeviceProperties = core.FitDeviceProperties
	// CompareFits ranks the four candidate families per operation class.
	CompareFits = core.CompareFits
	// MissRatioByThreshold classifies hits/misses by latency threshold.
	MissRatioByThreshold = core.MissRatioByThreshold
	// SolveServiceTimes decomposes the overall disk mean into
	// per-operation means (Section IV-B).
	SolveServiceTimes = core.SolveServiceTimes
	// RenderDiagnosis writes the bottleneck-identification report.
	RenderDiagnosis = core.RenderDiagnosis
)

// DefaultMissThreshold is the hit/miss latency threshold (15 µs).
const DefaultMissThreshold = core.DefaultMissThreshold

// ---------------------------------------------------------------------------
// Admission control and capacity planning.

// Deployment describes a homogeneous deployment (identical devices behind a
// shared frontend tier) evaluated at varying aggregate load — the shared
// operating-point parameterization of the capacity and overload examples
// and of cosserve's /advise endpoint.
type Deployment = core.Deployment

var (
	// MaxAdmissibleRate finds the admission threshold: the largest
	// aggregate rate at which the deployment still meets the SLA target.
	MaxAdmissibleRate = core.MaxAdmissibleRate
	// Headroom returns MaxAdmissibleRate minus the current rate.
	Headroom = core.Headroom
	// MaxRateWhere is the underlying monotone bisection.
	MaxRateWhere = core.MaxRateWhere
	// MaxAdmissibleRateContext, HeadroomContext and MaxRateWhereContext
	// are the cancellable variants: the search observes ctx (and the
	// deployment's Options.EvalTimeout) before every bisection probe.
	MaxAdmissibleRateContext = core.MaxAdmissibleRateContext
	HeadroomContext          = core.HeadroomContext
	MaxRateWhereContext      = core.MaxRateWhereContext
)

// ---------------------------------------------------------------------------
// Online serving (cmd/cosserve); see internal/serve.

type (
	// ServeConfig configures the SLA-prediction service: device properties,
	// deployment size, sliding-window span and serving limits.
	ServeConfig = serve.Config
	// ServeServer is the HTTP front of the prediction engine.
	ServeServer = serve.Server
	// ServeEngine is the concurrent, memoizing prediction engine.
	ServeEngine = serve.Engine
	// ServeObservation is one interval of per-device measurements — the
	// /ingest wire format — and ServeIngestRequest the batch envelope.
	ServeObservation   = serve.Observation
	ServeIngestRequest = serve.IngestRequest
	// ServePrediction is the answer for one SLA bound.
	ServePrediction = serve.Prediction
	// ServeAdvice is the /advise admission-control answer.
	ServeAdvice = serve.Advice
	// ServeCodedReadSpec is the wire form of an (n,k) coded-read query and
	// ServeCodedReadBlock the coded section of a /predict answer.
	ServeCodedReadSpec  = serve.CodedReadSpec
	ServeCodedReadBlock = serve.CodedReadBlock
	// ServeWriteSpec is the wire form of a w-of-n PUT quorum query and
	// ServeWriteBlock the write section of a /predict answer.
	ServeWriteSpec  = serve.WriteSpec
	ServeWriteBlock = serve.WriteBlock
	// ServeTenantStats is one tenant class's windowed rates;
	// ServeTenantAdvice and ServeTenantShed are the weighted multi-tenant
	// admission answer and its per-class allocation rows.
	ServeTenantStats  = serve.TenantStats
	ServeTenantAdvice = serve.TenantAdvice
	ServeTenantShed   = serve.TenantShed
)

var (
	// NewServeServer builds a serving instance from the configuration.
	NewServeServer = serve.NewServer
	// NewServeEngine builds the engine without the HTTP layer.
	NewServeEngine = serve.NewEngine
	// DefaultServeConfig returns serving defaults for a deployment size.
	DefaultServeConfig = serve.DefaultConfig
)

// Hardened HTTP serving: slow-client timeouts and graceful drain.
var (
	// NewServeHTTPServer wraps a handler in an http.Server with hardened
	// read/write/idle timeouts (zero ServeHTTPTimeouts = defaults).
	NewServeHTTPServer = func(addr string, h http.Handler) *http.Server {
		return serve.NewHTTPServer(addr, h, serve.HTTPTimeouts{})
	}
	// ListenAndServeGraceful serves until ctx is cancelled, then drains
	// in-flight requests for up to grace before closing hard.
	ListenAndServeGraceful = serve.ListenAndServeGraceful
	// ServeGraceful is the listener-injecting variant (tests, systemd
	// socket activation).
	ServeGraceful = serve.ServeGraceful
)

// ServeHTTPTimeouts are the hardened http.Server limits.
type ServeHTTPTimeouts = serve.HTTPTimeouts

// DefaultServeHTTPTimeouts returns the production limits.
var DefaultServeHTTPTimeouts = serve.DefaultHTTPTimeouts

// ---------------------------------------------------------------------------
// Sharded serving tier (cmd/cosrouter); see internal/cluster.

type (
	// ClusterConfig configures the router of a sharded, replicated serving
	// tier: shard node URLs, replication factor, ring layout, health
	// probing, hedging and retry policy.
	ClusterConfig = cluster.Config
	// ClusterRouter is the stateless fan-out router in front of shard-mode
	// cosserve instances.
	ClusterRouter = cluster.Router
	// ClusterTopology maps storage devices to replica chains over the
	// consistent-hash ring.
	ClusterTopology = cluster.Topology
	// ClusterPartial is one shard's partial CDF evaluation and
	// ClusterMerged the exact rate-weighted merge across shards.
	ClusterPartial = cluster.Partial
	ClusterMerged  = cluster.Merged
	// ClusterPredictResponse and ClusterAdviceResponse are the router's
	// /predict and /advise wire formats (the serve formats plus
	// degradation metadata).
	ClusterPredictResponse = cluster.PredictResponse
	ClusterAdviceResponse  = cluster.AdviceResponse
	// ShardPartialRequest/Response are the cluster-internal /shard/partial
	// wire formats served by cosserve -shard.
	ShardPartialRequest  = serve.PartialRequest
	ShardPartialResponse = serve.PartialResponse
)

var (
	// NewClusterRouter builds a router over shard nodes.
	NewClusterRouter = cluster.NewRouter
	// DefaultClusterConfig returns routing defaults for a node list and
	// deployment size.
	DefaultClusterConfig = cluster.DefaultConfig
	// NewClusterTopology builds just the device-to-chain mapping.
	NewClusterTopology = cluster.NewTopology
	// MergeClusterPartials merges per-shard partial evaluations into the
	// tier-wide mixture CDF with degradation bounds.
	MergeClusterPartials = cluster.MergePartials
	// ErrClusterBadConfig marks invalid router configurations or poisoned
	// partials; ErrClusterNoQuorum means no shard could answer.
	ErrClusterBadConfig = cluster.ErrBadConfig
	ErrClusterNoQuorum  = cluster.ErrNoQuorum
)

// ---------------------------------------------------------------------------
// Retrying (internal/retry): capped exponential backoff with jitter.

type (
	// RetryPolicy is a bounded exponential-backoff-with-jitter retry loop.
	RetryPolicy = retry.Policy
)

var (
	// DefaultRetryPolicy returns the standard 4-attempt policy.
	DefaultRetryPolicy = retry.DefaultPolicy
	// RetryPermanent marks an error as not worth retrying; RetryAfter
	// carries a server-mandated minimum wait (e.g. a Retry-After hint,
	// parsed by HTTPRetryAfter).
	RetryPermanent = retry.Permanent
	RetryAfter     = retry.After
	HTTPRetryAfter = retry.HTTPRetryAfter
)

// ---------------------------------------------------------------------------
// Observability; see internal/obs.

type (
	// ObsRegistry is a metrics registry with Prometheus text exposition;
	// ServeEngine.Registry returns the one behind /metrics/prom.
	ObsRegistry = obs.Registry
	// ObsLabels attach dimensions to a metric.
	ObsLabels = obs.Labels
	// ObsCounter, ObsGauge and ObsHistogram are the metric kinds.
	ObsCounter   = obs.Counter
	ObsGauge     = obs.Gauge
	ObsHistogram = obs.Histogram
	// EvalEvent is one completed model-evaluation span, delivered to
	// Options.Observer (op name, expression-graph size, quadrature probes,
	// wall time, error).
	EvalEvent = core.EvalEvent
	// WorkerPool is the shared goroutine pool evaluations run on; assign
	// one to Options.Pool to share and meter capacity across engines.
	WorkerPool = parallel.Pool
)

var (
	// NewObsRegistry builds an empty metrics registry.
	NewObsRegistry = obs.NewRegistry
	// RegisterObsRuntimeMetrics adds go_* runtime gauges to a registry
	// (ServeConfig.RuntimeMetrics / cosserve -obs-runtime do this for the
	// serving registry).
	RegisterObsRuntimeMetrics = obs.RegisterRuntimeMetrics
	// NewWorkerPool builds a bounded evaluation pool; DefaultWorkerPool
	// returns the process-wide GOMAXPROCS-sized pool.
	NewWorkerPool     = parallel.New
	DefaultWorkerPool = parallel.Default
)

// ObsContentType is the Content-Type of the Prometheus text exposition
// served at /metrics/prom.
const ObsContentType = obs.ContentType

// ---------------------------------------------------------------------------
// Online calibration and drift detection; see internal/calib.

type (
	// CalibConfig tunes the streaming estimators, drift detectors and
	// recalibration policy; assign one to ServeConfig.Calib (or pass the
	// cosserve -calib flags) to enable the subsystem.
	CalibConfig = calib.Config
	// CalibController is the standalone calibration controller for
	// embedding outside the serving layer.
	CalibController = calib.Controller
	// CalibWindowStats is one observation window fed to the controller.
	CalibWindowStats = calib.WindowStats
	// CalibStatus and CalibDeviceStatus snapshot the drift state exposed
	// by /calibration and /metrics.
	CalibStatus       = calib.Status
	CalibDeviceStatus = calib.DeviceStatus
	// PageHinkley and CUSUM are the mean-shift detectors, exported for
	// reuse on other telemetry streams.
	PageHinkley = calib.PageHinkley
	CUSUM       = calib.CUSUM
	// CalibDeviceState is one device's drift state, delivered to
	// CalibConfig.OnTransition on every state change.
	CalibDeviceState = calib.DeviceState
	// ServeCalibrationResponse is the /calibration endpoint's answer.
	ServeCalibrationResponse = serve.CalibrationResponse
	// ServeDistSummary summarizes one served distribution (mean, SCV).
	ServeDistSummary = serve.DistSummary
)

// Calibration drift states (CalibConfig.OnTransition, /calibration).
const (
	CalibStable        = calib.Stable
	CalibDrifting      = calib.Drifting
	CalibRecalibrating = calib.Recalibrating
)

var (
	// DefaultCalibConfig returns detector thresholds tuned for windows
	// carrying on the order of a hundred disk operations per device.
	DefaultCalibConfig = calib.DefaultConfig
	// NewCalibController builds a controller around baseline properties
	// and an apply callback (e.g. ServeEngine.Recalibrate).
	NewCalibController = calib.New
	// NewPageHinkley and NewCUSUM build the detectors directly.
	NewPageHinkley = calib.NewPageHinkley
	NewCUSUM       = calib.NewCUSUM
	// ErrCalibBadConfig and ErrCalibBadWindow mark invalid calibration
	// configurations and malformed observation windows.
	ErrCalibBadConfig = calib.ErrBadConfig
	ErrCalibBadWindow = calib.ErrBadWindow
	// RescaleDeviceProperties shifts fitted distributions to an observed
	// disk mean while preserving their shape (the recalibration fallback
	// when drift evidence has no raw service-time samples).
	RescaleDeviceProperties = core.RescaleDeviceProperties
)

// ---------------------------------------------------------------------------
// Distributions.

// Distribution types; see internal/dist.
type (
	// Distribution is the common interface of all service-time and size
	// distributions.
	Distribution = dist.Distribution
	// Gamma is the paper's disk service-time family.
	Gamma = dist.Gamma
	// Exponential, Degenerate, Normal, Lognormal, Uniform and Weibull are
	// the remaining families.
	Exponential = dist.Exponential
	Degenerate  = dist.Degenerate
	Normal      = dist.Normal
	Lognormal   = dist.Lognormal
	Uniform     = dist.Uniform
	Weibull     = dist.Weibull
	// Pareto, Erlang and HyperExp extend the family set for what-if
	// analyses (heavy tails, phase-type services, high-variability
	// two-moment matches).
	Pareto   = dist.Pareto
	Erlang   = dist.Erlang
	HyperExp = dist.HyperExp
	// Empirical is the distribution of a recorded sample set.
	Empirical = dist.Empirical
)

// Distribution constructors and fitting.
var (
	NewGammaMeanSCV        = dist.NewGammaMeanSCV
	NewExponentialMean     = dist.NewExponentialMean
	NewLognormalMeanMedian = dist.NewLognormalMeanMedian
	NewEmpirical           = dist.NewEmpirical
	NewHyperExp            = dist.NewHyperExp
	NewHyperExpMeanSCV     = dist.NewHyperExpMeanSCV
	FitPhaseType           = dist.FitPhaseType
	FitGamma               = dist.FitGamma
	FitBest                = dist.FitBest
	KolmogorovSmirnov      = dist.KolmogorovSmirnov
	ScaleToMean            = dist.ScaleToMean
)

// ---------------------------------------------------------------------------
// Laplace inversion.

// Inverter performs numerical Laplace-transform inversion.
type Inverter = numeric.Inverter

// InversionError details one guarded inversion that failed even after
// every fallback inverter; it wraps ErrNumerical.
type InversionError = numeric.InversionError

// ErrNumerical marks inversions whose result was invalid (NaN, Inf, far
// outside [0,1]) after exhausting the fallback chain. Predictions carrying
// this error are withheld, never served as garbage.
var ErrNumerical = numeric.ErrNumerical

// Inversion algorithm constructors.
var (
	NewEuler         = numeric.NewEuler
	NewTalbot        = numeric.NewTalbot
	NewGaverStehfest = numeric.NewGaverStehfest
	// DefaultFallbackInverters is the guarded evaluation engine's standard
	// fallback chain (Euler, then Gaver–Stehfest).
	DefaultFallbackInverters = numeric.DefaultFallbacks
)

// ---------------------------------------------------------------------------
// Cluster simulator (the Swift-like testbed substitute).

// Simulator types; see internal/simstore.
type (
	// Cluster is a simulated object storage deployment.
	Cluster = simstore.Cluster
	// SimConfig describes a simulated cluster.
	SimConfig = simstore.Config
	// Request is one GET moving through the cluster.
	Request = simstore.Request
	// SimSnapshot and SimWindow expose the cluster's metrics.
	SimSnapshot = simstore.Snapshot
	SimWindow   = simstore.Window
	// DiskSamples holds calibration measurements per operation class.
	DiskSamples = simstore.DiskSamples
	// ParseCalibration holds the parse benchmark result.
	ParseCalibration = simstore.ParseCalibration
	// SimArchitecture selects the backend concurrency model.
	SimArchitecture = simstore.Architecture
)

// Backend concurrency models.
const (
	// EventDriven is the paper's architecture.
	EventDriven = simstore.EventDriven
	// ThreadPerConnection is the blocking-thread alternative.
	ThreadPerConnection = simstore.ThreadPerConnection
)

// Simulator constructors and calibration benchmarks.
var (
	// NewCluster builds a simulated cluster.
	NewCluster = simstore.New
	// DefaultSimConfig mirrors the paper's 7-node testbed.
	DefaultSimConfig = simstore.DefaultConfig
	// MeasureDiskService runs the sequential disk benchmark.
	MeasureDiskService = simstore.MeasureDiskService
	// MeasureParse runs the closed-loop parse benchmark.
	MeasureParse = simstore.MeasureParse
)

// ---------------------------------------------------------------------------
// Workloads.

// Trace types; see internal/trace.
type (
	// Catalog is a population of objects with sizes and popularity.
	Catalog = trace.Catalog
	// TraceRecord is one request of a workload trace.
	TraceRecord = trace.Record
	// Schedule is a phased arrival-rate plan.
	Schedule = trace.Schedule
	// Phase is one constant-rate schedule segment.
	Phase = trace.Phase
	// WikibenchOptions configures conversion of wikibench-format traces
	// (the format of the trace the paper replays).
	WikibenchOptions = trace.WikibenchOptions
)

// Trace operation types.
const (
	OpGet = trace.OpGet
	OpPut = trace.OpPut
)

// Workload constructors.

var (
	NewCatalog         = trace.NewCatalog
	GenerateTrace      = trace.Generate
	GenerateMixedTrace = trace.GenerateMixed
	RescaleTrace       = trace.Rescale
	SummarizeTrace     = trace.Summarize
	PaperSchedule      = trace.PaperSchedule
	WikipediaLikeSizes = trace.WikipediaLikeSizes
	ParetoSizes        = trace.ParetoSizes
	WriteTrace         = trace.Write
	ReadTrace          = trace.Read
	ParseWikibench     = trace.ParseWikibench
)

// ---------------------------------------------------------------------------
// Load generation (open-loop client driver); see internal/load.

type (
	// LoadConfig parameterizes one open-loop run against a serving
	// endpoint: a Schedule of Poisson arrival phases, the ingest wire
	// mode, and an independent predict-probe stream.
	LoadConfig = load.Config
	// LoadReport is the measured outcome: achieved obs/sec, predict QPS,
	// and client-observed latency percentiles per stream.
	LoadReport = load.Report
	// LoadStreamReport summarizes one request stream.
	LoadStreamReport = load.StreamReport
	// LoadPhaseReport is the per-phase arrival accounting.
	LoadPhaseReport = load.PhaseReport
)

// Ingest wire modes accepted by LoadConfig.Mode and negotiated by /ingest.
const (
	LoadModeJSON   = load.ModeJSON
	LoadModeNDJSON = load.ModeNDJSON

	// IngestContentTypeJSON and IngestContentTypeNDJSON are the media
	// types the serving tier negotiates on POST /ingest.
	IngestContentTypeJSON   = ingest.ContentTypeJSON
	IngestContentTypeNDJSON = ingest.ContentTypeNDJSON
)

var (
	// RunLoad executes an open-loop run and blocks until the schedule
	// finishes and in-flight requests drain.
	RunLoad = load.Run
	// LoadSyntheticSource generates steady-workload observation batches
	// for throughput-only runs.
	LoadSyntheticSource = load.SyntheticSource
	// EncodeObservationsNDJSON writes a batch in the streaming /ingest
	// wire format, one JSON observation per line.
	EncodeObservationsNDJSON = ingest.EncodeNDJSON
)

// ---------------------------------------------------------------------------
// Experiments (the paper's evaluation).

// Experiment types; see internal/experiments.
type (
	// ScenarioConfig parameterizes a Fig. 6/7-style sweep.
	ScenarioConfig = experiments.ScenarioConfig
	// ScenarioResult holds observed and predicted percentiles per step.
	ScenarioResult = experiments.ScenarioResult
	// StepResult is one rate step.
	StepResult = experiments.StepResult
	// SweepData is a captured rate sweep (measurement windows plus
	// calibrated device properties), re-evaluable without re-simulating.
	SweepData = experiments.SweepData
	// Fig5Config and Fig5Result drive the disk-fitting experiment.
	Fig5Config = experiments.Fig5Config
	Fig5Result = experiments.Fig5Result
	// Variant and AblationResult drive the modeling-choice ablations.
	Variant        = experiments.Variant
	AblationResult = experiments.AblationResult
	// ArchComparisonConfig and ArchComparisonResult drive the
	// event-driven vs thread-per-connection experiment.
	ArchComparisonConfig = experiments.ArchComparisonConfig
	ArchComparisonResult = experiments.ArchComparisonResult
	// WriteSensitivityConfig/Result test the read-heavy assumption;
	// WorkloadIndependenceConfig/Result test calibration portability.
	WriteSensitivityConfig     = experiments.WriteSensitivityConfig
	WriteSensitivityResult     = experiments.WriteSensitivityResult
	WorkloadIndependenceConfig = experiments.WorkloadIndependenceConfig
	WorkloadIndependenceResult = experiments.WorkloadIndependenceResult
	// MeanVsPercentileConfig/Result drive the §I motivation experiment
	// (equal means, divergent percentiles).
	MeanVsPercentileConfig = experiments.MeanVsPercentileConfig
	MeanVsPercentileResult = experiments.MeanVsPercentileResult
	// CodedResult and CodedStepResult hold a coded-read sweep: observed
	// vs order-statistic-predicted SLA fractions per rate step.
	CodedResult     = experiments.CodedResult
	CodedStepResult = experiments.CodedStepResult
)

// Experiment drivers.
var (
	ScenarioS1    = experiments.DefaultS1
	ScenarioS16   = experiments.DefaultS16
	RunScenario   = experiments.RunScenario
	RunSweep      = experiments.RunSweep
	EvaluateSweep = experiments.EvaluateSweep
	// EvaluateSweepContext is the cancellable re-evaluation: ctx is
	// observed between sweep steps and inside each step's inversions.
	EvaluateSweepContext = experiments.EvaluateSweepContext
	// QuantileSweep evaluates the model's p-quantile over every window of
	// a captured sweep, warm-starting each step's bracketed root search
	// from the previous step's quantile.
	QuantileSweep        = experiments.QuantileSweep
	QuantileSweepContext = experiments.QuantileSweepContext
	RunFig5              = experiments.RunFig5
	DefaultFig5          = experiments.DefaultFig5
	RunAblation          = experiments.RunAblation
	BuildSystemModel     = experiments.BuildSystemModel
	CalibrateDevice      = experiments.Calibrate
	RenderTable1         = experiments.RenderTable1
	RenderTable2         = experiments.RenderTable2
	WTAVariants          = experiments.WTAVariants
	DiskQueueVariants    = experiments.DiskQueueVariants
	CompoundVariants     = experiments.CompoundVariants
	InverterVariants     = experiments.InverterVariants

	DefaultArchComparison = experiments.DefaultArchComparison
	RunArchComparison     = experiments.RunArchComparison

	DefaultWriteSensitivity     = experiments.DefaultWriteSensitivity
	RunWriteSensitivity         = experiments.RunWriteSensitivity
	DefaultWorkloadIndependence = experiments.DefaultWorkloadIndependence
	RunWorkloadIndependence     = experiments.RunWorkloadIndependence

	DefaultMeanVsPercentile = experiments.DefaultMeanVsPercentile
	RunMeanVsPercentile     = experiments.RunMeanVsPercentile

	// Coded-read validation: drive a striped sweep through the simulator
	// and score the order-statistic model against it.
	RunCodedScenario       = experiments.RunCodedScenario
	EvaluateCodedSweep     = experiments.EvaluateCodedSweep
	EvaluateCodedSweepCtx  = experiments.EvaluateCodedSweepContext
	BuildCodedSystemModel  = experiments.BuildCodedSystemModel
	CodedSpecFromSimConfig = experiments.CodedSpecFromConfig
)

// ---------------------------------------------------------------------------
// Online statistics.

// Statistics types; see internal/stats.
type (
	// LatencyHistogram is a log-bucketed histogram with quantile queries.
	LatencyHistogram = stats.Histogram
	// StatSummary accumulates streaming mean/variance/extremes.
	StatSummary = stats.Summary
)

// Statistics constructors.
var (
	NewLatencyHistogram = stats.NewLatencyHistogram
	NewHistogram        = stats.NewHistogram
	// WilsonInterval is the binomial proportion confidence interval used
	// for observed SLA-meeting fractions.
	WilsonInterval = stats.WilsonInterval
)
