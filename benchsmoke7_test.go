// Bench-smoke artifact for the batched-probe evaluation engine: serving
// /predict latencies plain and coded, cold and cached, with allocations
// per query, plus the Fig. 6 sweep re-evaluation and the warm-started
// quantile sweep — all riding the single-traversal CDFBatch path. Written
// to results/BENCH_PR7.json and compared against the PR 5/6 baselines;
// gated behind COSMODEL_BENCH_SMOKE=1 like the other artifacts.
package cosmodel_test

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"cosmodel"
)

type batchedSmokeReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// SLAs is the /predict grid width; Steps the sweep length.
	SLAs  int `json:"slas"`
	Steps int `json:"steps"`
	// Plain serve predict: cold rebuilds the model and runs one batched
	// traversal for the whole SLA grid; cached answers from the grid memo.
	PlainColdNs       int64   `json:"plain_cold_ns"`
	PlainCachedNs     int64   `json:"plain_cached_ns"`
	PlainColdAllocs   float64 `json:"plain_cold_allocs"`
	PlainCachedAllocs float64 `json:"plain_cached_allocs"`
	// Coded serve predict on a (3,1) replication spec, same two paths.
	CodedColdNs       int64   `json:"coded_cold_ns"`
	CodedCachedNs     int64   `json:"coded_cached_ns"`
	CodedColdAllocs   float64 `json:"coded_cold_allocs"`
	CodedCachedAllocs float64 `json:"coded_cached_allocs"`
	// Fig6SweepNs is one EvaluateSweep over the captured S1 windows (the
	// PR 5 sweep_plain_ns workload, now fused onto CDFBatchKinds);
	// QuantileSweepNs is the p95 quantile over the same windows with
	// warm-started brackets.
	Fig6SweepNs     int64 `json:"fig6_sweep_ns"`
	QuantileSweepNs int64 `json:"quantile_sweep_ns"`
	// Ratios against the recorded baselines: PR6's plain/coded cold
	// predicts and cached allocations, PR5's sweep. Values < 1 are
	// speedups.
	PlainColdVsPR6    float64 `json:"plain_cold_vs_pr6"`
	CodedColdVsPR6    float64 `json:"coded_cold_vs_pr6"`
	CachedAllocsVsPR6 float64 `json:"cached_allocs_vs_pr6"`
	SweepVsPR5        float64 `json:"sweep_vs_pr5"`
}

// baselineField reads one numeric field out of a recorded bench artifact,
// returning NaN when the artifact or field is missing (the ratio is then
// omitted rather than failing the smoke run on a fresh checkout).
func baselineField(path, field string) float64 {
	raw, err := os.ReadFile(path)
	if err != nil {
		return math.NaN()
	}
	var m map[string]float64
	if json.Unmarshal(raw, &m) != nil {
		return math.NaN()
	}
	v, ok := m[field]
	if !ok {
		return math.NaN()
	}
	return v
}

// BenchmarkCDFBatch measures the batched traversal against per-threshold
// scalar evaluation on the same system model: the per-t cost of the batch
// path is the weight dot product, not a fresh graph traversal.
func BenchmarkCDFBatch(b *testing.B) {
	sys := benchSystem(b)
	ts := []float64{0.004, 0.01, 0.02, 0.05, 0.1, 0.25}
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if vs := sys.CDFBatch(ts); vs[len(vs)-1] <= 0 {
				b.Fatal("degenerate batch CDF")
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, t := range ts {
				if sys.CDF(t) < 0 {
					b.Fatal("degenerate scalar CDF")
				}
			}
		}
	})
}

// benchSystem builds a small heterogeneous mixture for the batch
// micro-benchmark.
func benchSystem(b *testing.B) *cosmodel.SystemModel {
	b.Helper()
	props := cosmodel.DeviceProperties{
		IndexDisk: cosmodel.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  cosmodel.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  cosmodel.NewGammaMeanSCV(8e-3, 0.40),
		ParseFE:   cosmodel.Degenerate{Value: 0.3e-3},
		ParseBE:   cosmodel.Degenerate{Value: 0.5e-3},
	}
	devs := make([]*cosmodel.DeviceModel, 4)
	total := 0.0
	for i := range devs {
		m := cosmodel.OnlineMetrics{
			Rate: 40 + 3*float64(i), MissIndex: 0.35, MissMeta: 0.30,
			MissData: 0.45 - 0.02*float64(i), Procs: 1,
		}
		m.DataRate = m.Rate * 1.2
		d, err := cosmodel.NewDeviceModel(props, m, cosmodel.Options{})
		if err != nil {
			b.Fatal(err)
		}
		devs[i] = d
		total += m.Rate
	}
	fe, err := cosmodel.NewFrontendModel(total, 4, props.ParseFE)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := cosmodel.NewSystemModel(fe, devs, cosmodel.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// TestBenchSmokeBatched measures the batched evaluation paths end to end
// and writes the PR's bench artifact, gating against the PR 5/6 baselines.
func TestBenchSmokeBatched(t *testing.T) {
	if os.Getenv("COSMODEL_BENCH_SMOKE") == "" {
		t.Skip("set COSMODEL_BENCH_SMOKE=1 to produce results/BENCH_PR7.json")
	}
	eng := codedSmokeEngine(t.Fatal)
	spec := cosmodel.ServeCodedReadSpec{N: 3, K: 1}
	slas := []float64{0.01, 0.05, 0.1}
	plain := func() {
		if _, err := eng.Predict(slas); err != nil {
			t.Fatal(err)
		}
	}
	coded := func() {
		if _, err := eng.PredictCoded(spec, slas); err != nil {
			t.Fatal(err)
		}
	}
	plain()
	coded() // warm both grids

	data, err := fig6Sweep()
	if err != nil {
		t.Fatal(err)
	}
	sc := quickScenario(cosmodel.ScenarioS1())
	sc.Seed = 1
	const rounds = 5

	rep := batchedSmokeReport{
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		SLAs:              len(slas),
		Steps:             len(data.Windows),
		PlainCachedNs:     best(20, func(int) { plain() }),
		PlainCachedAllocs: testing.AllocsPerRun(10, plain),
		PlainColdNs:       best(20, func(int) { eng.InvalidateCache(); plain() }),
		PlainColdAllocs: testing.AllocsPerRun(10, func() {
			eng.InvalidateCache()
			plain()
		}),
		CodedCachedNs:     best(20, func(int) { coded() }),
		CodedCachedAllocs: testing.AllocsPerRun(10, coded),
		CodedColdNs:       best(20, func(int) { eng.InvalidateCache(); coded() }),
		CodedColdAllocs: testing.AllocsPerRun(10, func() {
			eng.InvalidateCache()
			coded()
		}),
		Fig6SweepNs: best(rounds, func(int) {
			if res := cosmodel.EvaluateSweep(sc, data); res.AnalyzedSteps() == 0 {
				t.Fatal("no analyzed steps")
			}
		}),
		QuantileSweepNs: best(rounds, func(int) {
			qs := cosmodel.QuantileSweep(sc, data, 0.95)
			finite := 0
			for _, q := range qs {
				if !math.IsNaN(q) {
					finite++
				}
			}
			if finite == 0 {
				t.Fatal("no finite quantiles in sweep")
			}
		}),
	}
	rep.PlainColdVsPR6 = float64(rep.PlainColdNs) / baselineField(filepath.Join("results", "BENCH_PR6.json"), "plain_cold_ns")
	rep.CodedColdVsPR6 = float64(rep.CodedColdNs) / baselineField(filepath.Join("results", "BENCH_PR6.json"), "coded_cold_ns")
	rep.CachedAllocsVsPR6 = rep.CodedCachedAllocs / baselineField(filepath.Join("results", "BENCH_PR6.json"), "coded_cached_allocs")
	rep.SweepVsPR5 = float64(rep.Fig6SweepNs) / baselineField(filepath.Join("results", "BENCH_PR5.json"), "sweep_plain_ns")

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("results", "BENCH_PR7.json")
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("plain predict cold %s (%.0f allocs), cached %s (%.0f allocs); coded cold %s, cached %s (%.0f allocs); fig6 sweep %s, quantile sweep %s -> %s",
		time.Duration(rep.PlainColdNs), rep.PlainColdAllocs,
		time.Duration(rep.PlainCachedNs), rep.PlainCachedAllocs,
		time.Duration(rep.CodedColdNs), time.Duration(rep.CodedCachedNs), rep.CodedCachedAllocs,
		time.Duration(rep.Fig6SweepNs), time.Duration(rep.QuantileSweepNs), path)

	// The acceptance bars: a cold plain predict under 40µs, the fused
	// Fig. 6 sweep under 1.5ms, and the cached coded path at no more than
	// half its PR 6 allocation count.
	if rep.PlainColdNs > 40_000 {
		t.Errorf("cold plain predict %s, want < 40µs", time.Duration(rep.PlainColdNs))
	}
	if rep.Fig6SweepNs > 1_500_000 {
		t.Errorf("fig6 sweep %s, want < 1.5ms", time.Duration(rep.Fig6SweepNs))
	}
	if rep.CodedCachedAllocs > 38 {
		t.Errorf("cached coded predict allocates %.0f objects per query, want <= 38 (half of PR 6's 76)", rep.CodedCachedAllocs)
	}
	// The regression gate against the PR 6 artifact measured moments ago
	// in this same process: the batched engine must not cost more than
	// 1.10x the baseline on either axis. NaN baselines (fresh checkout
	// without results/) skip the gate by comparison semantics.
	if rep.CodedColdVsPR6 > 1.10 {
		t.Errorf("coded cold predict regressed %.2fx vs PR 6, want <= 1.10x", rep.CodedColdVsPR6)
	}
	if rep.CachedAllocsVsPR6 > 1.10 {
		t.Errorf("cached coded allocs regressed %.2fx vs PR 6, want <= 1.10x", rep.CachedAllocsVsPR6)
	}
}
