package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// ctxBG saves typing in tests that don't exercise cancellation.
var ctxBG = context.Background()

func TestModelCacheMemoizes(t *testing.T) {
	c := newModelCache(16)
	calls := 0
	fn := func(context.Context) (cachedValue, error) {
		calls++
		return cachedValue{p: 0.9}, nil
	}
	v, cached, err := c.do(ctxBG, "k", fn)
	if err != nil || cached || v.p != 0.9 {
		t.Fatalf("first call: v=%v cached=%v err=%v", v, cached, err)
	}
	v, cached, err = c.do(ctxBG, "k", fn)
	if err != nil || !cached || v.p != 0.9 {
		t.Fatalf("second call: v=%v cached=%v err=%v", v, cached, err)
	}
	if calls != 1 {
		t.Errorf("fn ran %d times, want 1", calls)
	}
	st := c.stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats %+v", st)
	}
	if got := st.hitRatio(); got != 0.5 {
		t.Errorf("hit ratio %v, want 0.5", got)
	}
}

func TestModelCacheGeneration(t *testing.T) {
	c := newModelCache(16)
	calls := 0
	fn := func(context.Context) (cachedValue, error) {
		calls++
		return cachedValue{p: float64(calls)}, nil
	}
	c.do(ctxBG, "k", fn) //nolint:errcheck
	c.invalidate()
	v, cached, err := c.do(ctxBG, "k", fn)
	if err != nil || cached {
		t.Fatalf("stale entry served: v=%v cached=%v err=%v", v, cached, err)
	}
	if v.p != 2 {
		t.Errorf("got stale value %v", v.p)
	}
	if calls != 2 {
		t.Errorf("fn ran %d times, want 2 (recompute after invalidate)", calls)
	}
	if gen := c.stats().Generation; gen != 1 {
		t.Errorf("generation %d", gen)
	}
}

func TestModelCacheErrorNotCached(t *testing.T) {
	c := newModelCache(16)
	boom := errors.New("boom")
	calls := 0
	if _, _, err := c.do(ctxBG, "k", func(context.Context) (cachedValue, error) { calls++; return cachedValue{}, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, cached, err := c.do(ctxBG, "k", func(context.Context) (cachedValue, error) { calls++; return cachedValue{p: 1}, nil })
	if err != nil || cached || v.p != 1 {
		t.Fatalf("retry after error: v=%v cached=%v err=%v", v, cached, err)
	}
	if calls != 2 {
		t.Errorf("fn ran %d times, want 2", calls)
	}
}

func TestModelCacheEvicts(t *testing.T) {
	c := newModelCache(4)
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		c.do(ctxBG, key, func(context.Context) (cachedValue, error) { return cachedValue{p: float64(i)}, nil }) //nolint:errcheck
	}
	if st := c.stats(); st.Entries > 4 {
		t.Errorf("entries %d exceed capacity 4", st.Entries)
	}
	// Most recent key still resident.
	_, cached, _ := c.do(ctxBG, "k9", func(context.Context) (cachedValue, error) { return cachedValue{}, nil })
	if !cached {
		t.Error("most recently used entry was evicted")
	}
	// Oldest key evicted.
	_, cached, _ = c.do(ctxBG, "k0", func(context.Context) (cachedValue, error) { return cachedValue{}, nil })
	if cached {
		t.Error("least recently used entry survived beyond capacity")
	}
}

// TestModelCacheSingleflight checks that concurrent lookups of one key run
// the computation exactly once and everyone gets its value.
func TestModelCacheSingleflight(t *testing.T) {
	c := newModelCache(16)
	var calls atomic.Int64
	gate := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	values := make([]float64, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.do(ctxBG, "k", func(context.Context) (cachedValue, error) {
				calls.Add(1)
				<-gate // hold the computation open so everyone piles up
				return cachedValue{p: 0.75}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			values[i] = v.p
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("computation ran %d times, want 1", n)
	}
	for i, v := range values {
		if v != 0.75 {
			t.Errorf("waiter %d got %v", i, v)
		}
	}
	st := c.stats()
	if st.Misses != 1 || st.Hits != waiters-1 {
		t.Errorf("stats %+v, want 1 miss and %d hits", st, waiters-1)
	}
}
