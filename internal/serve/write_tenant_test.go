package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"testing"
)

// obsWithWrites extends obsAtRate with PUT replica traffic at writeRate
// sub-requests per second (1.5 data chunks per write on average).
func obsWithWrites(device int, rate, writeRate float64) Observation {
	o := obsAtRate(device, rate)
	o.Writes = uint64(writeRate * o.Interval)
	o.WriteChunks = o.Writes + o.Writes/2
	return o
}

// ingestMixed feeds every device a read+write operating point.
func ingestMixed(t testing.TB, e *Engine, rate, writeRate float64) {
	t.Helper()
	batch := make([]Observation, e.Config().Devices)
	for d := range batch {
		batch[d] = obsWithWrites(d, rate, writeRate)
	}
	if err := e.Ingest(batch); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSpecValidate(t *testing.T) {
	for _, s := range []WriteSpec{{N: 1, W: 1}, {N: 3, W: 2}, {N: 5, W: 5}} {
		if err := s.validate(); err != nil {
			t.Errorf("%+v rejected: %v", s, err)
		}
	}
	for _, s := range []WriteSpec{{}, {N: 3, W: 0}, {N: 0, W: 1}, {N: 3, W: 4}, {N: -1, W: -1}} {
		err := s.validate()
		if err == nil {
			t.Errorf("%+v accepted", s)
		} else if !errors.Is(err, ErrBadQuery) {
			t.Errorf("%+v: error %v not ErrBadQuery", s, err)
		}
	}
	if a, b := (WriteSpec{N: 3, W: 2}).cacheKey(), (WriteSpec{N: 3, W: 3}).cacheKey(); a == b {
		t.Errorf("distinct specs share cache key %q", a)
	}
}

func TestPredictWrite(t *testing.T) {
	eng, err := NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	spec := WriteSpec{N: 3, W: 2}
	if _, err := eng.PredictWrite(spec, nil); !errors.Is(err, ErrNotReady) {
		t.Fatalf("predict-write before ingest: %v", err)
	}
	// A read-only operating point cannot answer PUT questions.
	ingestAll(t, eng, 40)
	if _, err := eng.PredictWrite(spec, nil); !errors.Is(err, ErrNotReady) {
		t.Fatalf("predict-write on read-only window: %v", err)
	}
	ingestMixed(t, eng, 40, 10)
	preds, err := eng.PredictWrite(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(eng.Config().SLAs) {
		t.Fatalf("got %d predictions, want %d", len(preds), len(eng.Config().SLAs))
	}
	for i, p := range preds {
		if !(p.MeetRatio >= 0 && p.MeetRatio <= 1) {
			t.Fatalf("prediction %d out of range: %+v", i, p)
		}
		if i > 0 && p.MeetRatio < preds[i-1].MeetRatio-1e-9 {
			t.Fatalf("meet ratio not monotone in SLA: %+v", preds)
		}
	}
	// Waiting for more replicas can only slow the quorum: W=3 compliance
	// must not exceed W=2 at the same operating point.
	all, err := eng.PredictWrite(WriteSpec{N: 3, W: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range preds {
		if all[i].MeetRatio > preds[i].MeetRatio+1e-9 {
			t.Fatalf("W=3 beats W=2 at SLA %v: %v > %v",
				preds[i].SLA, all[i].MeetRatio, preds[i].MeetRatio)
		}
	}
	if _, err := eng.PredictWrite(WriteSpec{N: 3, W: 4}, nil); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("W>N: %v", err)
	}
	if _, err := eng.PredictWrite(spec, []float64{-1}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("negative SLA: %v", err)
	}
}

// classBatch labels a full-cluster batch with one tenant class, putting the
// class's traffic on the given devices only.
func classBatch(e *Engine, class string, devices []int, rate, writeRate float64) []Observation {
	batch := make([]Observation, 0, len(devices))
	for _, d := range devices {
		o := obsWithWrites(d, rate, writeRate)
		o.Class = class
		batch = append(batch, o)
	}
	return batch
}

func TestTenantStatsAndBound(t *testing.T) {
	eng, err := NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Ingest(classBatch(eng, "gold", []int{0, 1}, 60, 15)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest(classBatch(eng, "bronze", []int{2, 3}, 20, 5)); err != nil {
		t.Fatal(err)
	}
	ts, err := eng.TenantStats("gold")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ts.Rate-120) > 1 || ts.Reporting != 2 {
		t.Fatalf("gold stats: %+v, want rate ~120 over 2 devices", ts)
	}
	if ts.WriteRate <= 0 {
		t.Fatalf("gold write rate missing: %+v", ts)
	}
	// gold is 120 of the aggregate 160 read rate.
	if math.Abs(ts.ShareOfTotal-0.75) > 0.02 {
		t.Fatalf("gold share = %v, want ~0.75", ts.ShareOfTotal)
	}
	if _, err := eng.TenantStats("unknown"); !errors.Is(err, ErrNotReady) {
		t.Fatalf("unknown tenant: %v", err)
	}
	if _, err := eng.TenantStats(""); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("empty label: %v", err)
	}
	if _, err := eng.TenantStats("bad\x00label"); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("control char: %v", err)
	}
	all := eng.Tenants()
	if len(all) != 2 || all[0].Class != "bronze" || all[1].Class != "gold" {
		t.Fatalf("tenants = %+v, want sorted [bronze gold]", all)
	}

	// Class explosion is rejected before anything lands: the 65th fresh
	// class fails all-or-nothing, leaving both tables untouched.
	for i := len(eng.state.tenantNames()); i < maxTenantClasses; i++ {
		o := obsAtRate(0, 1)
		o.Class = fmt.Sprintf("filler-%02d", i)
		if err := eng.Ingest([]Observation{o}); err != nil {
			t.Fatal(err)
		}
	}
	before := eng.Stats().Ingested
	o := obsAtRate(0, 1)
	o.Class = "one-too-many"
	if err := eng.Ingest([]Observation{o}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("class bound: %v", err)
	}
	if got := eng.Stats().Ingested; got != before {
		t.Fatalf("rejected batch still ingested (%d -> %d)", before, got)
	}
	if n := len(eng.state.tenantNames()); n != maxTenantClasses {
		t.Fatalf("tenant classes = %d, want %d", n, maxTenantClasses)
	}
}

func TestAdviseTenantsWaterfill(t *testing.T) {
	eng, err := NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Ingest(classBatch(eng, "gold", []int{0, 1}, 80, 0)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest(classBatch(eng, "bronze", []int{2, 3}, 80, 0)); err != nil {
		t.Fatal(err)
	}
	weights := map[string]float64{"gold": 3, "bronze": 1}

	// A hard target at this load must shed; a loose one must admit both.
	adv, err := eng.AdviseTenants(0.010, 0.9999, weights)
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Tenants) != 2 || adv.Tenants[0].Class != "bronze" || adv.Tenants[1].Class != "gold" {
		t.Fatalf("shed order %+v, want bronze (cheapest) first", adv.Tenants)
	}
	wantShed := adv.CurrentRate - adv.MaxAdmissibleRate
	if wantShed <= 0 {
		t.Fatalf("operating point not overloaded: %+v", adv.Advice)
	}
	var shed float64
	for _, ten := range adv.Tenants {
		if math.Abs(ten.CurrentRate-(ten.AdmittedRate+ten.ShedRate)) > 1e-9 {
			t.Fatalf("tenant accounting broken: %+v", ten)
		}
		shed += ten.ShedRate
	}
	if math.Abs(shed+adv.ResidualShedRate-wantShed) > 1e-6 {
		t.Fatalf("shed %v + residual %v != overload %v", shed, adv.ResidualShedRate, wantShed)
	}
	// Waterfill: gold loses traffic only once bronze is fully shed.
	bronze, gold := adv.Tenants[0], adv.Tenants[1]
	if gold.ShedRate > 0 && bronze.ShedRate < bronze.CurrentRate-1e-9 {
		t.Fatalf("gold shed %v while bronze kept %v", gold.ShedRate, bronze.AdmittedRate)
	}
	if bronze.Admit && bronze.ShedRate > 0 {
		t.Fatalf("admit flag inconsistent: %+v", bronze)
	}

	easy, err := eng.AdviseTenants(0.100, 0.5, weights)
	if err != nil {
		t.Fatal(err)
	}
	for _, ten := range easy.Tenants {
		if !ten.Admit || ten.ShedRate != 0 {
			t.Fatalf("loose target shed traffic: %+v", ten)
		}
	}

	// Validation: unknown tenant, bad weight, no weights.
	if _, err := eng.AdviseTenants(0.05, 0.9, map[string]float64{"ghost": 1}); !errors.Is(err, ErrNotReady) {
		t.Fatalf("unknown tenant: %v", err)
	}
	if _, err := eng.AdviseTenants(0.05, 0.9, map[string]float64{"gold": 0}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("zero weight: %v", err)
	}
	if _, err := eng.AdviseTenants(0.05, 0.9, nil); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("no weights: %v", err)
	}
}

func TestParseTenantWeights(t *testing.T) {
	w, err := parseTenantWeights("gold:3,bronze:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 || w["gold"] != 3 || w["bronze"] != 1 {
		t.Fatalf("parsed %+v", w)
	}
	if w, err = parseTenantWeights(""); err != nil || w != nil {
		t.Fatalf("empty list: %v, %v", w, err)
	}
	for _, bad := range []string{"gold", "gold:x", "gold:1,gold:2", ":1", "gold:"} {
		if _, err := parseTenantWeights(bad); !errors.Is(err, ErrBadQuery) {
			t.Errorf("%q: %v", bad, err)
		}
	}
}

func TestParseWriteParams(t *testing.T) {
	q := map[string][]string{"writeN": {"3"}, "writeW": {"2"}}
	spec, err := parseWriteParams(q)
	if err != nil || spec == nil || spec.N != 3 || spec.W != 2 {
		t.Fatalf("parsed %+v, %v", spec, err)
	}
	if spec, err = parseWriteParams(map[string][]string{}); err != nil || spec != nil {
		t.Fatalf("absent params: %+v, %v", spec, err)
	}
	for _, bad := range []map[string][]string{
		{"writeN": {"3"}},
		{"writeW": {"2"}},
		{"writeN": {"x"}, "writeW": {"2"}},
	} {
		if _, err := parseWriteParams(bad); !errors.Is(err, ErrBadQuery) {
			t.Errorf("%v: %v", bad, err)
		}
	}
}

// TestHTTPWriteAndTenant exercises the new query surface end to end: a
// write-spec'd GET /predict returns the write block, tenant= annotates,
// and /advise?tenants= returns the weighted allocation.
func TestHTTPWriteAndTenant(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	e := s.Engine()
	if err := e.Ingest(classBatch(e, "gold", []int{0, 1}, 60, 15)); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(classBatch(e, "bronze", []int{2, 3}, 20, 5)); err != nil {
		t.Fatal(err)
	}

	get := func(url string, out any) int {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}

	var pr PredictResponse
	if code := get(ts.URL+"/predict?writeN=3&writeW=2&tenant=gold", &pr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if pr.Write == nil || pr.Write.Spec != (WriteSpec{N: 3, W: 2}) || len(pr.Write.Predictions) == 0 {
		t.Fatalf("write block missing: %+v", pr.Write)
	}
	if pr.Tenant == nil || pr.Tenant.Class != "gold" || pr.Tenant.Rate <= 0 {
		t.Fatalf("tenant annotation missing: %+v", pr.Tenant)
	}

	var bad IngestErrorBody
	if code := get(ts.URL+"/predict?writeN=3&writeW=9", &bad); code != http.StatusBadRequest {
		t.Fatalf("W>N status %d", code)
	}
	if code := get(ts.URL+"/predict?tenant=ghost", &bad); code != http.StatusConflict {
		t.Fatalf("unknown tenant status %d", code)
	}

	var adv TenantAdvice
	if code := get(ts.URL+"/advise?sla=0.05&target=0.9&tenants=gold:3,bronze:1", &adv); code != http.StatusOK {
		t.Fatalf("advise status %d", code)
	}
	if len(adv.Tenants) != 2 || adv.Tenants[0].Class != "bronze" {
		t.Fatalf("advise allocation %+v", adv.Tenants)
	}

	// tenant=gold is shorthand for tenants=gold:1.
	var single TenantAdvice
	if code := get(ts.URL+"/advise?sla=0.05&target=0.9&tenant=gold", &single); code != http.StatusOK {
		t.Fatalf("advise tenant shorthand status %d", code)
	}
	if len(single.Tenants) != 1 || single.Tenants[0].Class != "gold" {
		t.Fatalf("shorthand allocation %+v", single.Tenants)
	}

	if code := get(ts.URL+"/advise?sla=0.05&target=0.9&tenants=gold:0", &bad); code != http.StatusBadRequest {
		t.Fatalf("zero weight status %d", code)
	}
}
