package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"

	"cosmodel/internal/core"
	"cosmodel/internal/numeric"
)

// CodedReadSpec is the wire form of a coded-read configuration: the
// object is striped over n backends and the response completes at the
// k-th-fastest sub-read. With hedging only the k primaries are issued up
// front; the n-k reserves follow hedgeDelaySeconds later. The delay must
// be finite on the wire (JSON cannot carry infinity; a reserve that is
// never issued is the same as striping with n == k).
type CodedReadSpec struct {
	N                 int     `json:"n"`
	K                 int     `json:"k"`
	Hedge             bool    `json:"hedge,omitempty"`
	HedgeDelaySeconds float64 `json:"hedgeDelaySeconds,omitempty"`
}

func (c CodedReadSpec) spec() core.CodedSpec {
	return core.CodedSpec{N: c.N, K: c.K, Hedge: c.Hedge, HedgeDelay: c.HedgeDelaySeconds}
}

func (c CodedReadSpec) validate() error {
	if math.IsInf(c.HedgeDelaySeconds, 0) {
		return fmt.Errorf("%w: coded hedge delay must be finite on the wire (use n == k for never-issued reserves)", ErrBadQuery)
	}
	if err := c.spec().Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	return nil
}

// cacheKey is the memo-cache suffix distinguishing coded evaluations of
// the same operating point.
func (c CodedReadSpec) cacheKey() string {
	h := "0"
	if c.Hedge {
		h = "1"
	}
	return "|coded=" + strconv.Itoa(c.N) + "," + strconv.Itoa(c.K) + "," + h + "," + quantStr(c.HedgeDelaySeconds)
}

// PredictCoded evaluates the coded-read SLA-meeting fractions at the
// current operating point; see PredictCodedContext.
func (e *Engine) PredictCoded(spec CodedReadSpec, slas []float64) ([]Prediction, error) {
	return e.PredictCodedContext(context.Background(), spec, slas)
}

// PredictCodedContext is the coded-read counterpart of PredictContext: the
// same memoizing, cancellable evaluation, but through the order-statistic
// combinator (core.CodedCDF) instead of the plain response CDF.
func (e *Engine) PredictCodedContext(ctx context.Context, spec CodedReadSpec, slas []float64) ([]Prediction, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if len(slas) == 0 {
		slas = e.cfg.SLAs
	}
	for _, s := range slas {
		if !(s > 0) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("%w: SLA %v must be positive and finite", ErrBadQuery, s)
		}
	}
	ms, key, err := e.state.snapshotKeyed()
	if err != nil {
		return nil, err
	}
	ctx, cancel := e.cfg.Opts.EvalContext(ctx)
	defer cancel()
	v, cached, err := e.evaluateBatch(ctx, ms, gridKey(key, spec.cacheKey(), slas), slas, &spec)
	if err != nil {
		return nil, err
	}
	out := make([]Prediction, len(slas))
	for i, sla := range slas {
		out[i] = Prediction{SLA: sla, MeetRatio: v.ps[i], Saturated: v.saturated, Cached: cached}
	}
	return out, nil
}

// evaluateCoded answers one coded (operating point, SLA) query through the
// cache, scaling every device's load by factor (admission bisection).
func (e *Engine) evaluateCoded(ctx context.Context, ms []core.OnlineMetrics, key string, spec CodedReadSpec, sla, factor float64) (cachedValue, bool, error) {
	ck := key + spec.cacheKey()
	if factor != 1 {
		ck += "|f=" + quantStr(factor)
	}
	ck += "|sla=" + quantStr(sla)
	v, cached, err := e.cache.do(ctx, ck, func(ctx context.Context) (cachedValue, error) {
		sys, err := e.buildCodedModel(ms, spec, factor)
		if errors.Is(err, core.ErrOverload) {
			return cachedValue{p: 0, saturated: true}, nil
		}
		if err != nil {
			return cachedValue{}, err
		}
		p, err := sys.CodedCDFContext(ctx, spec.spec(), sla)
		if err != nil {
			return cachedValue{}, err
		}
		return cachedValue{p: p}, nil
	})
	if err == nil {
		e.predictions.Inc()
		if v.saturated {
			e.saturations.Inc()
		}
	}
	return v, cached, err
}

// buildCodedModel assembles the system model for a coded query. The
// per-device inputs are the reported sub-read metrics unchanged; only the
// frontend arrival rate differs from buildModel: the proxy parses each
// coded GET once before fanning it into n sub-reads, so its M/G/1 rate is
// the reported per-device total divided by the stripe width (the
// sub-millisecond frontend term makes this approximation harmless even
// when hedging issues fewer than n).
func (e *Engine) buildCodedModel(ms []core.OnlineMetrics, spec CodedReadSpec, factor float64) (*core.SystemModel, error) {
	props := e.Props()
	devs := make([]*core.DeviceModel, 0, len(ms))
	built := make(map[core.OnlineMetrics]*core.DeviceModel, len(ms))
	total := 0.0
	for _, m := range ms {
		m.Rate *= factor
		m.DataRate *= factor
		m.WriteRate *= factor
		dm := built[m]
		if dm == nil {
			var err error
			dm, err = core.NewDeviceModel(props, m, e.cfg.Opts)
			if err != nil {
				return nil, err
			}
			built[m] = dm
		}
		devs = append(devs, dm)
		total += m.Rate
	}
	fe, err := core.NewFrontendModel(total/float64(spec.N), e.cfg.FrontendProcs, props.ParseFE)
	if err != nil {
		return nil, err
	}
	return core.NewSystemModel(fe, devs, e.cfg.Opts)
}

// AdviseCoded is the coded-read admission query; see AdviseCodedContext.
func (e *Engine) AdviseCoded(spec CodedReadSpec, sla, target float64) (Advice, error) {
	return e.AdviseCodedContext(context.Background(), spec, sla, target)
}

// AdviseCodedContext answers the admission question for coded reads: the
// same bisection over a proportional scaling of the current per-device
// operating point as AdviseContext, with every probe evaluated through the
// order-statistic model. Rates are sub-read rates — the same unit the
// devices report.
func (e *Engine) AdviseCodedContext(ctx context.Context, spec CodedReadSpec, sla, target float64) (Advice, error) {
	if err := spec.validate(); err != nil {
		return Advice{}, err
	}
	if !(sla > 0) || math.IsInf(sla, 0) {
		return Advice{}, fmt.Errorf("%w: SLA %v must be positive and finite", ErrBadQuery, sla)
	}
	if !(target > 0) || target > 1 {
		return Advice{}, fmt.Errorf("%w: target %v outside (0,1]", ErrBadQuery, target)
	}
	ms, key, err := e.state.snapshotKeyed()
	if err != nil {
		return Advice{}, err
	}
	ctx, cancel := e.cfg.Opts.EvalContext(ctx)
	defer cancel()
	current := 0.0
	for _, m := range ms {
		current += m.Rate
	}
	sp := spec
	adv := Advice{SLA: sla, Target: target, CurrentRate: current, CodedRead: &sp}
	cur, _, err := e.evaluateCoded(ctx, ms, key, spec, sla, 1)
	if err != nil {
		return Advice{}, err
	}
	adv.CurrentMeetRatio = cur.p
	adv.Saturated = cur.saturated
	margin := func(ctx context.Context, rate float64) (float64, bool, error) {
		v, _, err := e.evaluateCoded(ctx, ms, key, spec, sla, rate/current)
		switch {
		case err == nil:
			if v.saturated {
				return 0, false, nil
			}
			return v.p - target, true, nil
		case isContextErr(err) || errors.Is(err, numeric.ErrNumerical):
			return 0, false, err
		default:
			return 0, false, nil
		}
	}
	maxRate, err := core.MaxRateWhereValueContext(ctx, margin, current/64, current/200)
	if err != nil {
		return Advice{}, err
	}
	adv.MaxAdmissibleRate = maxRate
	adv.Headroom = adv.MaxAdmissibleRate - current
	adv.Admit = !adv.Saturated && cur.p >= target && adv.Headroom >= 0
	return adv, nil
}
