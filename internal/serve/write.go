package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"

	"cosmodel/internal/core"
)

// WriteSpec is the wire form of a PUT replication policy: each write fans
// out to n replicas and is acknowledged at the w-th replica completion
// (w-of-n quorum). It mirrors CodedReadSpec for the write path: the engine
// evaluates the w-th order statistic of the per-replica backend write CDFs.
type WriteSpec struct {
	N int `json:"n"`
	W int `json:"w"`
}

func (s WriteSpec) spec() core.WriteSpec { return core.WriteSpec{N: s.N, W: s.W} }

func (s WriteSpec) validate() error {
	if err := s.spec().Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	return nil
}

// cacheKey is the memo-cache suffix distinguishing write evaluations of the
// same operating point.
func (s WriteSpec) cacheKey() string {
	return "|write=" + strconv.Itoa(s.N) + "," + strconv.Itoa(s.W)
}

// PredictWrite evaluates the PUT SLA-meeting fractions at the current
// operating point; see PredictWriteContext.
func (e *Engine) PredictWrite(spec WriteSpec, slas []float64) ([]Prediction, error) {
	return e.PredictWriteContext(context.Background(), spec, slas)
}

// PredictWriteContext is the write-path counterpart of PredictContext: the
// same memoizing, cancellable evaluation, but through the w-of-n quorum
// combinator (core.WriteCDF) over the snapshot's write traffic. It returns
// ErrNotReady when the current window carries no writes — the model cannot
// answer a PUT question from a read-only operating point.
func (e *Engine) PredictWriteContext(ctx context.Context, spec WriteSpec, slas []float64) ([]Prediction, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if len(slas) == 0 {
		slas = e.cfg.SLAs
	}
	for _, s := range slas {
		if !(s > 0) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("%w: SLA %v must be positive and finite", ErrBadQuery, s)
		}
	}
	ms, key, err := e.state.snapshotKeyed()
	if err != nil {
		return nil, err
	}
	ctx, cancel := e.cfg.Opts.EvalContext(ctx)
	defer cancel()
	v, cached, err := e.evaluateWriteBatch(ctx, ms, gridKey(key, spec.cacheKey(), slas), spec, slas)
	if err != nil {
		return nil, err
	}
	out := make([]Prediction, len(slas))
	for i, sla := range slas {
		out[i] = Prediction{SLA: sla, MeetRatio: v.ps[i], Saturated: v.saturated, Cached: cached}
	}
	return out, nil
}

// evaluateWriteBatch answers one (operating point, SLA grid) write query
// through the cache: a miss builds the shared read/write model once and
// evaluates every SLA in a single batched traversal of the quorum
// combinator. A read-only snapshot — core.ErrBadParams from the write
// mixture — maps to ErrNotReady: the client asked a sound question the
// server has no write observations to answer yet.
func (e *Engine) evaluateWriteBatch(ctx context.Context, ms []core.OnlineMetrics, ck string, spec WriteSpec, slas []float64) (cachedValue, bool, error) {
	v, cached, err := e.cache.do(ctx, ck, func(ctx context.Context) (cachedValue, error) {
		sys, err := e.buildModel(ms, 1)
		if errors.Is(err, core.ErrOverload) {
			return cachedValue{saturated: true, ps: make([]float64, len(slas))}, nil
		}
		if err != nil {
			return cachedValue{}, err
		}
		ps, err := sys.WriteCDFBatchContext(ctx, spec.spec(), slas)
		if err != nil {
			return cachedValue{}, err
		}
		return cachedValue{ps: ps}, nil
	})
	if err != nil && errors.Is(err, core.ErrBadParams) {
		return v, cached, fmt.Errorf("%w: %v", ErrNotReady, err)
	}
	if err == nil {
		e.predictions.Add(uint64(len(slas)))
		if v.saturated {
			e.saturations.Add(uint64(len(slas)))
		}
	}
	return v, cached, err
}
