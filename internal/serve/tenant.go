package serve

import (
	"context"
	"fmt"
	"math"
	"sort"

	"cosmodel/internal/ingest"
)

// TenantStats is the windowed operating point of one tenant class, derived
// from its partition of class-labelled observations.
type TenantStats struct {
	// Class is the tenant's label as reported on its observations.
	Class string `json:"class"`
	// Rate and WriteRate are the tenant's aggregate read request and PUT
	// replica rates over the window.
	Rate      float64 `json:"rate"`
	WriteRate float64 `json:"writeRate"`
	// Reporting counts the devices with tenant observations in the window.
	Reporting int `json:"reporting"`
	// ShareOfTotal is the tenant's read-rate fraction of the aggregate
	// operating point (0 when the aggregate is empty).
	ShareOfTotal float64 `json:"shareOfTotal"`
}

// validateClassLabel applies the ingest label rules to a query parameter so
// an unknown-tenant lookup and a malformed label fail differently (404-ish
// conflict vs 400).
func validateClassLabel(class string) error {
	if class == "" {
		return fmt.Errorf("%w: empty tenant class", ErrBadQuery)
	}
	if len(class) > ingest.MaxClassLen {
		return fmt.Errorf("%w: tenant class longer than %d bytes", ErrBadQuery, ingest.MaxClassLen)
	}
	for i := 0; i < len(class); i++ {
		if c := class[i]; c < 0x20 || c == 0x7f {
			return fmt.Errorf("%w: control character in tenant class", ErrBadQuery)
		}
	}
	return nil
}

// tenantRates sums a tenant partition's per-device operating points.
func tenantRates(tab *ingest.Table) (rate, writeRate float64, reporting int) {
	for _, m := range tab.Snapshot() {
		rate += m.Rate
		writeRate += m.WriteRate
		reporting++
	}
	return rate, writeRate, reporting
}

// TenantStats reports one tenant's windowed rates. ErrBadQuery names a
// malformed label; ErrNotReady a class that has no observations yet.
func (e *Engine) TenantStats(class string) (TenantStats, error) {
	if err := validateClassLabel(class); err != nil {
		return TenantStats{}, err
	}
	tab, ok := e.state.tenantTable(class)
	if !ok {
		return TenantStats{}, fmt.Errorf("%w: tenant class %q has no observations", ErrNotReady, class)
	}
	ts := TenantStats{Class: class}
	ts.Rate, ts.WriteRate, ts.Reporting = tenantRates(tab)
	total := 0.0
	if ms, err := e.state.snapshot(); err == nil {
		for _, m := range ms {
			total += m.Rate
		}
	}
	if total > 0 {
		ts.ShareOfTotal = ts.Rate / total
	}
	return ts, nil
}

// Tenants lists every known tenant class's stats in sorted class order.
func (e *Engine) Tenants() []TenantStats {
	names := e.state.tenantNames()
	out := make([]TenantStats, 0, len(names))
	for _, c := range names {
		if ts, err := e.TenantStats(c); err == nil {
			out = append(out, ts)
		}
	}
	return out
}

// TenantShed is one tenant's slice of a weighted admission decision.
type TenantShed struct {
	// Class and Weight restate the tenant and its priority weight.
	Class  string  `json:"class"`
	Weight float64 `json:"weight"`
	// CurrentRate is the tenant's windowed read request rate; AdmittedRate
	// the portion the weighted controller keeps and ShedRate the portion it
	// sheds (CurrentRate = AdmittedRate + ShedRate).
	CurrentRate  float64 `json:"currentRate"`
	AdmittedRate float64 `json:"admittedRate"`
	ShedRate     float64 `json:"shedRate"`
	// Admit reports whether the tenant keeps its full current rate.
	Admit bool `json:"admit"`
}

// TenantAdvice is the weighted admission answer: the aggregate Advice plus
// the per-tenant allocation that realizes it.
type TenantAdvice struct {
	Advice
	// Tenants carries the per-class allocation, cheapest (lowest weight)
	// first — the order traffic is shed in.
	Tenants []TenantShed `json:"tenants"`
	// ResidualShedRate is shed demand that could not be attributed to the
	// weighted tenants (unlabelled traffic when the aggregate overload
	// exceeds the listed tenants' combined rate).
	ResidualShedRate float64 `json:"residualShedRate,omitempty"`
}

// AdviseTenants is the weighted admission query; see AdviseTenantsContext.
func (e *Engine) AdviseTenants(sla, target float64, weights map[string]float64) (TenantAdvice, error) {
	return e.AdviseTenantsContext(context.Background(), sla, target, weights, nil)
}

// AdviseTenantsContext answers weighted multi-tenant admission control: the
// aggregate max admissible rate is found exactly as in AdviseContext (or
// AdviseCodedContext when a stripe shape is given), and any excess of the
// current aggregate rate over it is shed tenant by tenant in ascending
// weight order — the cheapest class loses traffic first, and a higher-weight
// class is touched only once every cheaper one is fully shed. Every listed
// tenant must have class-labelled observations in the window.
func (e *Engine) AdviseTenantsContext(ctx context.Context, sla, target float64, weights map[string]float64, coded *CodedReadSpec) (TenantAdvice, error) {
	if len(weights) == 0 {
		return TenantAdvice{}, fmt.Errorf("%w: no tenant weights given", ErrBadQuery)
	}
	sheds := make([]TenantShed, 0, len(weights))
	for class, w := range weights {
		if err := validateClassLabel(class); err != nil {
			return TenantAdvice{}, err
		}
		if !(w > 0) || math.IsInf(w, 0) {
			return TenantAdvice{}, fmt.Errorf("%w: tenant %q weight %v must be positive and finite",
				ErrBadQuery, class, w)
		}
		tab, ok := e.state.tenantTable(class)
		if !ok {
			return TenantAdvice{}, fmt.Errorf("%w: tenant class %q has no observations", ErrNotReady, class)
		}
		rate, _, _ := tenantRates(tab)
		sheds = append(sheds, TenantShed{Class: class, Weight: w, CurrentRate: rate})
	}
	// Cheapest first; ties break on the class name so the shed order is
	// deterministic.
	sort.Slice(sheds, func(i, j int) bool {
		if sheds[i].Weight != sheds[j].Weight {
			return sheds[i].Weight < sheds[j].Weight
		}
		return sheds[i].Class < sheds[j].Class
	})
	var (
		base Advice
		err  error
	)
	if coded != nil {
		base, err = e.AdviseCodedContext(ctx, *coded, sla, target)
	} else {
		base, err = e.AdviseContext(ctx, sla, target)
	}
	if err != nil {
		return TenantAdvice{}, err
	}
	adv := TenantAdvice{Advice: base, Tenants: sheds}
	shed := base.CurrentRate - base.MaxAdmissibleRate
	if shed < 0 {
		shed = 0
	}
	for i := range adv.Tenants {
		t := &adv.Tenants[i]
		take := math.Min(shed, t.CurrentRate)
		t.ShedRate = take
		t.AdmittedRate = t.CurrentRate - take
		t.Admit = take == 0
		shed -= take
	}
	adv.ResidualShedRate = shed
	return adv, nil
}
