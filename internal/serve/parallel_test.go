package serve

import (
	"math"
	"testing"
)

// TestPredictParallelMatchesSequential checks that the worker budget is
// purely a performance knob for the serving engine: cold-path predictions
// and admission advice computed with a pooled model evaluation agree with a
// fully sequential engine to within 1e-12.
func TestPredictParallelMatchesSequential(t *testing.T) {
	build := func(workers int) *Engine {
		cfg := testConfig()
		cfg.Opts.Workers = workers
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ingestAll(t, eng, 55)
		return eng
	}
	seq := build(1)
	par := build(8)
	slas := seq.Config().SLAs
	ps, err := seq.Predict(slas)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := par.Predict(slas)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if ps[i].Saturated != pp[i].Saturated {
			t.Fatalf("sla %v: saturation mismatch", slas[i])
		}
		if math.Abs(ps[i].MeetRatio-pp[i].MeetRatio) > 1e-12 {
			t.Errorf("sla %v: parallel %v, sequential %v", slas[i], pp[i].MeetRatio, ps[i].MeetRatio)
		}
	}
	as, err := seq.Advise(0.050, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := par.Advise(0.050, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(as.CurrentMeetRatio-ap.CurrentMeetRatio) > 1e-12 {
		t.Errorf("advise meet ratio: parallel %v, sequential %v", ap.CurrentMeetRatio, as.CurrentMeetRatio)
	}
	if math.Abs(as.MaxAdmissibleRate-ap.MaxAdmissibleRate) > 1e-9*(1+as.MaxAdmissibleRate) {
		t.Errorf("advise max rate: parallel %v, sequential %v", ap.MaxAdmissibleRate, as.MaxAdmissibleRate)
	}
}
