package serve

import (
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"cosmodel/internal/calib"
	"cosmodel/internal/core"
	"cosmodel/internal/dist"
)

func httpGetInto(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("unmarshal %q: %v", data, err)
	}
}

// TestRecalibrateSwapsPropsAndInvalidatesCache checks the hot-swap contract:
// new properties are served immediately, the memo cache starts a new
// generation, and predictions actually change.
func TestRecalibrateSwapsPropsAndInvalidatesCache(t *testing.T) {
	eng, err := NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, eng, 50)
	before, err := eng.Predict([]float64{0.050})
	if err != nil {
		t.Fatal(err)
	}
	gen0 := eng.Stats().CacheGeneration

	slower := testProps()
	slower.DataDisk = dist.NewGammaMeanSCV(24e-3, 1.6)
	if err := eng.Recalibrate(slower); err != nil {
		t.Fatal(err)
	}
	if got := eng.Props().DataDisk.Mean(); got != slower.DataDisk.Mean() {
		t.Errorf("served data mean %v, want %v", got, slower.DataDisk.Mean())
	}
	st := eng.Stats()
	if st.Recalibrations != 1 {
		t.Errorf("recalibrations = %d, want 1", st.Recalibrations)
	}
	if st.CacheGeneration == gen0 {
		t.Error("cache generation must bump on recalibration")
	}
	after, err := eng.Predict([]float64{0.050})
	if err != nil {
		t.Fatal(err)
	}
	if after[0].Cached {
		t.Error("post-recalibration prediction served from the stale generation")
	}
	if !(after[0].MeetRatio < before[0].MeetRatio) {
		t.Errorf("meet ratio %v -> %v: slower disks must predict worse compliance",
			before[0].MeetRatio, after[0].MeetRatio)
	}
	// Invalid properties are rejected without touching the served ones.
	if err := eng.Recalibrate(core.DeviceProperties{}); !errors.Is(err, core.ErrBadParams) {
		t.Errorf("invalid recalibration error = %v", err)
	}
	if eng.Props().DataDisk.Mean() != slower.DataDisk.Mean() {
		t.Error("failed recalibration changed the served properties")
	}
}

// driftObs builds an observation whose raw disk samples come from the given
// distributions — the calibration feed.
func driftObs(dev int, index, meta, data dist.Distribution, rng *rand.Rand) Observation {
	o := obsAtRate(dev, 50)
	o.Interval = 3
	o.Requests = 150
	o.DataReads = 180
	sample := func(d dist.Distribution, n int) []float64 {
		out := make([]float64, n)
		var sum float64
		for i := range out {
			out[i] = d.Sample(rng)
			sum += out[i]
		}
		o.DiskBusy += sum
		o.DiskOps += uint64(n)
		return out
	}
	o.DiskIndexLat = sample(index, 20)
	o.DiskMetaLat = sample(meta, 20)
	o.DiskDataLat = sample(data, 60)
	return o
}

// TestOnlineCalibrationEndToEnd enables the calib subsystem on an engine,
// streams stationary observations (no recalibration may fire), then shifts
// the data-read regime and checks the controller refits and hot-swaps the
// served properties.
func TestOnlineCalibrationEndToEnd(t *testing.T) {
	cfg := testConfig()
	cc := calib.DefaultConfig(cfg.Devices)
	cfg.Calib = &cc
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	props := testProps()
	rng := rand.New(rand.NewSource(21))
	stationary := func() []Observation {
		batch := make([]Observation, cfg.Devices)
		for d := range batch {
			batch[d] = driftObs(d, props.IndexDisk, props.MetaDisk, props.DataDisk, rng)
		}
		return batch
	}
	for w := 0; w < 30; w++ {
		if err := eng.Ingest(stationary()); err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.Stats(); st.Recalibrations != 0 {
		t.Fatalf("recalibrations = %d on stationary ingest, want 0", st.Recalibrations)
	}
	cs, ok := eng.CalibrationStatus()
	if !ok {
		t.Fatal("calibration status must be available when enabled")
	}
	for _, d := range cs.Devices {
		if d.State != "stable" {
			t.Errorf("device %d state %q during stationary run", d.Device, d.State)
		}
	}

	slow := dist.NewGammaMeanSCV(20e-3, 1.6)
	for w := 0; w < 8; w++ {
		batch := make([]Observation, cfg.Devices)
		for d := range batch {
			batch[d] = driftObs(d, props.IndexDisk, props.MetaDisk, slow, rng)
		}
		if err := eng.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Recalibrations < 1 {
		t.Fatal("drift never triggered a recalibration")
	}
	got := eng.Props().DataDisk
	if m := got.Mean(); m < 15e-3 || m > 26e-3 {
		t.Errorf("served data mean %v after drift, want near 20e-3", m)
	}
	cs, _ = eng.CalibrationStatus()
	if cs.Recalibrations != st.Recalibrations {
		t.Errorf("controller recalibrations %d != engine %d", cs.Recalibrations, st.Recalibrations)
	}
	if cs.LastFitSource != "refit" {
		t.Errorf("fit source %q, want refit (plenty of samples)", cs.LastFitSource)
	}
}

// TestCalibrationEndpoint checks /calibration for enabled and disabled
// servers, and the calibration block in /metrics.
func TestCalibrationEndpoint(t *testing.T) {
	cfg := testConfig()
	cc := calib.DefaultConfig(cfg.Devices)
	cfg.Calib = &cc
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var resp CalibrationResponse
	httpGetInto(t, ts.URL+"/calibration", &resp)
	if !resp.Enabled {
		t.Error("enabled = false with Calib configured")
	}
	if resp.Status == nil || len(resp.Status.Devices) != cfg.Devices {
		t.Fatalf("status devices = %+v, want %d entries", resp.Status, cfg.Devices)
	}
	if resp.DataDisk.Mean != testProps().DataDisk.Mean() {
		t.Errorf("served data mean %v", resp.DataDisk.Mean)
	}
	if resp.DataDisk.SCV < 0.35 || resp.DataDisk.SCV > 0.45 {
		t.Errorf("served data SCV %v, want ~0.40", resp.DataDisk.SCV)
	}
	var metrics MetricsResponse
	httpGetInto(t, ts.URL+"/metrics", &metrics)
	if metrics.Calibration == nil {
		t.Error("metrics must embed the calibration status when enabled")
	}
	// Method discipline.
	post, err := http.Post(ts.URL+"/calibration", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /calibration = %d, want 405", post.StatusCode)
	}

	// Disabled server: endpoint still answers, enabled=false, no status.
	srv2, err := NewServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	var resp2 CalibrationResponse
	httpGetInto(t, ts2.URL+"/calibration", &resp2)
	if resp2.Enabled || resp2.Status != nil {
		t.Errorf("disabled server: %+v", resp2)
	}
	var metrics2 MetricsResponse
	httpGetInto(t, ts2.URL+"/metrics", &metrics2)
	if metrics2.Calibration != nil {
		t.Error("metrics must omit calibration when disabled")
	}
}
