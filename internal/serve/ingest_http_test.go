package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cosmodel/internal/calib"
	"cosmodel/internal/ingest"
)

// postBody posts raw bytes with an explicit content type and returns the
// response with its body read.
func postBody(t testing.TB, url, contentType, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func ndjsonFor(t testing.TB, batch []Observation) string {
	t.Helper()
	var buf bytes.Buffer
	if err := ingest.EncodeNDJSON(&buf, batch); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestIngestNDJSON streams a full batch in NDJSON mode and checks it is
// indistinguishable from the JSON-array mode: same accepted count, same
// engine state, predictions work.
func TestIngestNDJSON(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	batch := make([]Observation, 4)
	for d := range batch {
		batch[d] = obsAtRate(d, 50)
		batch[d].Latencies = []float64{0.004, 0.009}
	}
	resp, data := postBody(t, ts.URL+"/ingest", ingest.ContentTypeNDJSON, ndjsonFor(t, batch))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var ack IngestResponse
	if err := json.Unmarshal(data, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 4 {
		t.Fatalf("accepted = %d, want 4", ack.Accepted)
	}
	if st := s.Engine().Stats(); st.Ingested != 4 || st.Reporting != 4 {
		t.Fatalf("engine stats after NDJSON ingest: %+v", st)
	}
	if s.latAll.Count() != 8 {
		t.Fatalf("observed latencies = %d, want 8", s.latAll.Count())
	}
	if _, err := s.Engine().Predict(nil); err != nil {
		t.Fatalf("predict after NDJSON ingest: %v", err)
	}
}

// TestIngestContentTypeNegotiation pins the negotiation matrix: parameters
// on a supported type are fine, an absent type defaults to JSON, and unknown
// types get a structured 415 naming the supported encodings.
func TestIngestContentTypeNegotiation(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	jsonBody := func() string {
		buf, err := json.Marshal(IngestRequest{Observations: []Observation{obsAtRate(0, 10)}})
		if err != nil {
			t.Fatal(err)
		}
		return string(buf)
	}()

	resp, data := postBody(t, ts.URL+"/ingest", "application/json; charset=utf-8", jsonBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json with charset: status %d: %s", resp.StatusCode, data)
	}

	// No content type at all: defaults to the JSON-array mode.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/ingest", strings.NewReader(jsonBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Del("Content-Type")
	bare, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	bare.Body.Close()
	if bare.StatusCode != http.StatusOK {
		t.Fatalf("bare content type: status %d", bare.StatusCode)
	}

	for _, ct := range []string{"text/plain", "application/xml", "bogus;;;"} {
		resp, data := postBody(t, ts.URL+"/ingest", ct, jsonBody)
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("content type %q: status %d, want 415", ct, resp.StatusCode)
		}
		var eb errorBody
		if err := json.Unmarshal(data, &eb); err != nil {
			t.Fatalf("415 body %q not structured: %v", data, err)
		}
		if !strings.Contains(eb.Error, ingest.ContentTypeNDJSON) {
			t.Fatalf("415 error %q does not name the supported types", eb.Error)
		}
	}
	if got := s.unsupMedia.Value(); got != 3 {
		t.Fatalf("unsupported-media counter = %d, want 3", got)
	}
	var m MetricsResponse
	getJSON(t, ts.URL+"/metrics", &m)
	if m.UnsupMedia != 3 {
		t.Fatalf("metrics unsupportedMediaTypes = %d, want 3", m.UnsupMedia)
	}
}

// TestIngestNDJSONBadLine pins the partial-accept semantics over HTTP:
// chunks flushed before the bad line stay absorbed, the 400 body reports
// both the accepted count and the offending line.
func TestIngestNDJSONBadLine(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	body := ndjsonFor(t, []Observation{obsAtRate(0, 10), obsAtRate(1, 10)}) +
		`{"device":99,"interval":1}` + "\n"
	resp, data := postBody(t, ts.URL+"/ingest", ingest.ContentTypeNDJSON, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, data)
	}
	var eb IngestErrorBody
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Line != 3 {
		t.Fatalf("line = %d, want 3: %+v", eb.Line, eb)
	}
	// The default chunk size is larger than two observations, so nothing
	// flushed before the failure.
	if eb.Accepted != 0 {
		t.Fatalf("accepted = %d, want 0: %+v", eb.Accepted, eb)
	}
	if st := s.Engine().Stats(); st.Ingested != 0 {
		t.Fatalf("state absorbed %d observations despite unflushed chunk", st.Ingested)
	}
}

// TestIngestNDJSONTooLarge keeps the 413 taxonomy in streaming mode.
func TestIngestNDJSONTooLarge(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	line := ndjsonFor(t, []Observation{obsAtRate(0, 10)})
	var b strings.Builder
	for b.Len() <= maxBodyBytes {
		b.WriteString(line)
	}
	resp, data := postBody(t, ts.URL+"/ingest", ingest.ContentTypeNDJSON, b.String())
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, data)
	}
	var eb IngestErrorBody
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatal(err)
	}
	if s.tooLarge.Value() != 1 {
		t.Fatalf("oversized-body counter = %d, want 1", s.tooLarge.Value())
	}
}

// TestIngestQueueDrain exercises the asynchronous calibration hand-off: the
// HTTP path returns before drift detection runs, yet every queued batch
// reaches the controller (zero drops) once the feeder drains.
func TestIngestQueueDrain(t *testing.T) {
	cfg := testConfig()
	cc := calib.DefaultConfig(cfg.Devices)
	cfg.Calib = &cc
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	e := srv.Engine()
	const rounds = 10
	for i := 0; i < rounds; i++ {
		batch := make([]Observation, cfg.Devices)
		for d := range batch {
			batch[d] = obsAtRate(d, 50)
		}
		if err := e.IngestQueued(batch); err != nil {
			t.Fatal(err)
		}
	}
	if !e.WaitCalibrationIdle(5 * time.Second) {
		t.Fatal("calibration queue did not drain")
	}
	st := e.Stats()
	if st.CalibQueueDepth != 0 || st.CalibQueueDropped != 0 {
		t.Fatalf("queue depth %d, dropped %d after drain", st.CalibQueueDepth, st.CalibQueueDropped)
	}
	cst, ok := e.CalibrationStatus()
	if !ok {
		t.Fatal("calibration subsystem disabled")
	}
	if cst.Windows != rounds*uint64(cfg.Devices) {
		t.Fatalf("controller observed %d windows, want %d", cst.Windows, rounds*cfg.Devices)
	}
}

// TestCalibrationFeederDropAccounting hammers a deliberately tiny hand-off
// ring from concurrent producers under -race and pins the feeder's
// accounting: every attempted batch is either fed to the controller or
// counted in CalibQueueDropped — the coalesced PopAll drain never
// under-counts drops — and WaitCalibrationIdle still means fed == pushed.
func TestCalibrationFeederDropAccounting(t *testing.T) {
	cfg := testConfig()
	cfg.IngestQueue = 2 // force overflow so drops actually happen
	cc := calib.DefaultConfig(cfg.Devices)
	cfg.Calib = &cc
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const (
		producers = 4
		perProd   = 50
	)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				batch := make([]Observation, cfg.Devices)
				for d := range batch {
					batch[d] = obsAtRate(d, 50)
				}
				if err := e.IngestQueued(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if !e.WaitCalibrationIdle(5 * time.Second) {
		t.Fatal("calibration queue did not drain")
	}
	st := e.Stats()
	if st.Ingested != producers*perProd*uint64(cfg.Devices) {
		t.Fatalf("state table absorbed %d observations, want %d",
			st.Ingested, producers*perProd*cfg.Devices)
	}
	if st.CalibQueueDepth != 0 {
		t.Fatalf("queue depth %d after idle", st.CalibQueueDepth)
	}
	// Fed plus dropped must tile the attempts exactly: a batch the ring
	// refused is counted per observation, a batch it accepted reaches the
	// controller as one window per observation.
	cst, ok := e.CalibrationStatus()
	if !ok {
		t.Fatal("calibration subsystem disabled")
	}
	if st.CalibQueueDropped == 0 {
		t.Fatal("2-slot queue under a 4-producer burst dropped nothing — overflow path untested")
	}
	attempts := uint64(producers * perProd * cfg.Devices)
	if got := cst.Windows + st.CalibQueueDropped; got != attempts {
		t.Fatalf("windows %d + dropped %d = %d observations, want %d attempts",
			cst.Windows, st.CalibQueueDropped, got, attempts)
	}
}

// TestEngineCloseCountsLateDrops pins the post-Close contract: batches still
// land in the state table, and the skipped calibration feed is counted.
func TestEngineCloseCountsLateDrops(t *testing.T) {
	cfg := testConfig()
	cc := calib.DefaultConfig(cfg.Devices)
	cfg.Calib = &cc
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
	if err := e.IngestQueued([]Observation{obsAtRate(0, 10)}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Ingested != 1 {
		t.Fatalf("post-close ingest lost: %+v", st)
	}
	if st.CalibQueueDropped != 1 {
		t.Fatalf("post-close calibration drop not counted: %+v", st)
	}
}
