package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"cosmodel/internal/experiments"
	"cosmodel/internal/obs/promtest"
	"cosmodel/internal/serve"
)

// TestSelfMeasuredP99AgainstPrediction is the observability e2e: the server
// self-measures the latency percentiles of the traffic it ingests (the same
// histograms /metrics/prom exposes) and the model must agree with its own
// service's measurement — the predicted SLA-meeting fraction at the
// self-measured p99 must be ~0.99. Acceptance: MAE <= 0.10 across the sweep
// steps, the same band as the paper's Table I.
func TestSelfMeasuredP99AgainstPrediction(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-driven e2e")
	}
	sc := experiments.DefaultS1()
	sc.CatalogObjects = 50000
	sc.WarmRate, sc.WarmDur = 100, 15
	sc.RateStart, sc.RateEnd, sc.RateStep = 60, 180, 60
	sc.StepDur, sc.StepDiscard = 10, 3
	sc.CalibrationOps = 1500
	data, err := experiments.RunSweep(sc)
	if err != nil {
		t.Fatal(err)
	}

	measured := sc.StepDur - sc.StepDiscard
	baseCfg := serve.DefaultConfig(data.Props, sc.Sim.Devices())
	baseCfg.ProcsPerDevice = sc.Sim.ProcsPerDisk
	baseCfg.FrontendProcs = sc.Sim.Frontends * sc.Sim.ProcsPerFrontend
	baseCfg.SLAs = sc.Sim.SLAs
	baseCfg.Window = measured

	var absErr []float64
	for step, win := range data.Windows {
		if win.Timeouts > 0 || win.Retries > 0 || win.Responses == 0 || win.Latency == nil {
			continue
		}
		batch := windowToObservations(win)
		if len(batch) == 0 {
			continue
		}
		// Reconstruct a representative raw-latency stream from the window's
		// measurement histogram: quantile inversion at evenly spaced ranks.
		// The slight shrink keeps each sample inside the bucket whose upper
		// bound the quantile reports.
		const n = 3000
		lats := make([]float64, n)
		for i := range lats {
			lats[i] = win.Latency.Quantile((float64(i)+0.5)/n) * 0.9995
		}
		batch[0].Latencies = lats

		// A fresh server per step keeps the self-measured distribution
		// scoped to this step's operating point.
		srv, err := serve.NewServer(baseCfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		postJSONInto(t, ts.URL+"/ingest", serve.IngestRequest{Observations: batch})

		var m serve.MetricsResponse
		getInto(t, ts.URL+"/metrics", &m)
		if m.ObservedCount == 0 || m.ObservedP99 <= 0 {
			ts.Close()
			t.Fatalf("step %d: no self-measured latencies: %+v", step, m)
		}
		// The server's self-measured p99 must track the simulator's own
		// measurement of the same window (identical bucket layouts; allow
		// two growth factors of slack).
		simP99 := win.Latency.Quantile(0.99)
		if r := m.ObservedP99 / simP99; r < 1/1.11 || r > 1.11 {
			t.Errorf("step %d: self-measured p99 %.5f vs simulator p99 %.5f", step, m.ObservedP99, simP99)
		}

		var pr serve.PredictResponse
		getInto(t, ts.URL+"/predict?sla="+strconv.FormatFloat(m.ObservedP99, 'g', -1, 64), &pr)
		if len(pr.Predictions) != 1 {
			ts.Close()
			t.Fatalf("step %d: %d predictions", step, len(pr.Predictions))
		}
		p := pr.Predictions[0]
		if p.Saturated {
			t.Errorf("step %d: predicted saturated at a survivable load", step)
			ts.Close()
			continue
		}
		e := math.Abs(p.MeetRatio - 0.99)
		absErr = append(absErr, e)
		t.Logf("rate %.0f: self-measured p99 %.4fs, predicted meet fraction %.4f (err %.4f)",
			data.Rates[step], m.ObservedP99, p.MeetRatio, e)

		// The same self-measurement must be visible — and parseable — in the
		// Prometheus exposition.
		samples := scrapePromText(t, ts.URL)
		if got := samples[`cosserve_ingested_latency_seconds{quantile="0.99"}`]; got != m.ObservedP99 {
			t.Errorf("step %d: prom p99 %v != JSON p99 %v", step, got, m.ObservedP99)
		}
		ts.Close()
	}
	if len(absErr) < 2 {
		t.Fatalf("only %d comparable steps; sweep degenerated", len(absErr))
	}
	var sum float64
	for _, e := range absErr {
		sum += e
	}
	mae := sum / float64(len(absErr))
	t.Logf("MAE %.4f between predicted meet fraction at self-measured p99 and 0.99, over %d steps", mae, len(absErr))
	if mae > 0.10 {
		t.Errorf("MAE %.4f exceeds 0.10", mae)
	}
}

func postJSONInto(t *testing.T, url string, v any) {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, body)
	}
}

func scrapePromText(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics/prom: %d %s", resp.StatusCode, body)
	}
	samples, err := promtest.Parse(string(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	return samples
}
