package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"cosmodel/internal/experiments"
	"cosmodel/internal/serve"
	"cosmodel/internal/simstore"
	"cosmodel/internal/trace"
)

// TestTwoTenantWriteEndToEnd drives the serving tier with mixed GET/PUT
// traffic measured from the simulator, reported as two tenant classes
// (gold on devices 0..n/2, bronze on the rest — a placement-partitioned
// deployment). Per step it checks BOTH prediction paths against simulator
// ground truth — read compliance vs Window.MeetFraction and W-of-N write
// compliance vs Window.WriteMeetFraction, each within MAE <= 0.10 — plus
// the tenant annotations, and finally that weighted admission sheds the
// cheaper tenant first under an unmeetable target.
func TestTwoTenantWriteEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-driven e2e")
	}
	simCfg := simstore.DefaultConfig() // 4 devices, 3 replicas, majority W=2
	const (
		writeFrac   = 0.2
		stepDur     = 30.0
		stepDiscard = 5.0
		seed        = 5
	)
	// Top out near 80% device utilization: past that the window's
	// completion rates (which include backlog drain) overstate the
	// long-run arrival rate and the M/G/1 model rightly reports the
	// measured operating point as unstable.
	rates := []float64{60, 120, 150}

	props, err := experiments.Calibrate(simCfg, 1500, seed)
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := trace.NewCatalog(60000, trace.WikipediaLikeSizes(), 1.05, 1, seed+10)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := simstore.New(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.PrewarmCaches(catalog, 0.95); err != nil {
		t.Fatal(err)
	}

	now := 0.0
	runPhase := func(rate, dur float64, phaseSeed int64) {
		t.Helper()
		recs, err := trace.GenerateMixed(catalog,
			trace.Schedule{{Rate: rate, Duration: dur, Label: "phase"}}, writeFrac, phaseSeed)
		if err != nil {
			t.Fatal(err)
		}
		for i := range recs {
			recs[i].At += now
		}
		cluster.Inject(recs)
		now += dur
	}
	runPhase(100, 20, seed+100) // warmup
	cluster.RunUntil(now)

	measured := stepDur - stepDiscard
	cfg := serve.DefaultConfig(props, simCfg.Devices())
	cfg.ProcsPerDevice = simCfg.ProcsPerDisk
	cfg.FrontendProcs = simCfg.Frontends * simCfg.ProcsPerFrontend
	cfg.SLAs = simCfg.SLAs
	cfg.Window = measured
	srv, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	writeSpec := serve.WriteSpec{N: simCfg.Replicas, W: simCfg.Replicas/2 + 1}
	var readErr, writeErr []float64
	for step, rate := range rates {
		runPhase(rate, stepDur, seed+200+int64(step))
		cluster.RunUntil(now - stepDur + stepDiscard)
		before := cluster.Snapshot()
		cluster.RunUntil(now)
		win := cluster.Window(before, cluster.Snapshot())
		if win.Responses == 0 || len(win.WriteMeetFraction) == 0 {
			t.Fatalf("rate %.0f: degenerate window (responses %d)", rate, win.Responses)
		}

		batch := mixedWindowToObservations(win, simCfg.Devices())
		buf, err := json.Marshal(serve.IngestRequest{Observations: batch})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rate %.0f ingest: %d %s", rate, resp.StatusCode, body)
		}

		var pr serve.PredictResponse
		getInto(t, ts.URL+"/predict?writeN=3&writeW=2&tenant=gold", &pr)
		if pr.Saturated || (pr.Write != nil && pr.Write.Saturated) {
			t.Errorf("rate %.0f predicted saturated; simulator completed fine", rate)
			continue
		}
		if pr.Write == nil || pr.Write.Spec != writeSpec {
			t.Fatalf("rate %.0f: write block missing or wrong spec: %+v", rate, pr.Write)
		}
		if pr.Tenant == nil || pr.Tenant.Class != "gold" || pr.Tenant.Rate <= 0 || pr.Tenant.WriteRate <= 0 {
			t.Fatalf("rate %.0f: tenant annotation %+v", rate, pr.Tenant)
		}
		for i, p := range pr.Predictions {
			e := math.Abs(p.MeetRatio - win.MeetFraction[i])
			readErr = append(readErr, e)
			t.Logf("rate %.0f read sla %.3f: predicted %.4f observed %.4f", rate, p.SLA, p.MeetRatio, win.MeetFraction[i])
		}
		for i, p := range pr.Write.Predictions {
			e := math.Abs(p.MeetRatio - win.WriteMeetFraction[i])
			writeErr = append(writeErr, e)
			t.Logf("rate %.0f write sla %.3f: predicted %.4f observed %.4f", rate, p.SLA, p.MeetRatio, win.WriteMeetFraction[i])
		}
	}
	mae := func(errs []float64) float64 {
		var sum float64
		for _, e := range errs {
			sum += e
		}
		return sum / float64(len(errs))
	}
	if len(readErr) < 6 || len(writeErr) < 6 {
		t.Fatalf("sweep degenerated: %d read, %d write comparisons", len(readErr), len(writeErr))
	}
	readMAE, writeMAE := mae(readErr), mae(writeErr)
	t.Logf("read MAE %.4f (%d pairs), write MAE %.4f (%d pairs)",
		readMAE, len(readErr), writeMAE, len(writeErr))
	if readMAE > 0.10 {
		t.Errorf("read MAE %.4f exceeds 0.10", readMAE)
	}
	if writeMAE > 0.10 {
		t.Errorf("write MAE %.4f exceeds 0.10", writeMAE)
	}

	// Weighted admission. A generous target admits both tenants in full; an
	// unmeetable one forces shedding, and the waterfill must empty bronze
	// (weight 1) before touching gold (weight 3).
	var loose serve.TenantAdvice
	getInto(t, ts.URL+"/advise?sla=0.1&target=0.5&tenants=gold:3,bronze:1", &loose)
	if len(loose.Tenants) != 2 || loose.Tenants[0].Class != "bronze" || loose.Tenants[1].Class != "gold" {
		t.Fatalf("allocation order %+v, want [bronze gold]", loose.Tenants)
	}
	for _, ten := range loose.Tenants {
		if !ten.Admit || ten.ShedRate != 0 {
			t.Errorf("loose target shed tenant traffic: %+v", ten)
		}
	}
	var strict serve.TenantAdvice
	getInto(t, ts.URL+"/advise?sla=0.002&target=0.999&tenants=gold:3,bronze:1", &strict)
	overload := strict.CurrentRate - strict.MaxAdmissibleRate
	if overload <= 0 {
		t.Fatalf("2ms@99.9%% target unexpectedly admissible: %+v", strict.Advice)
	}
	bronze, gold := strict.Tenants[0], strict.Tenants[1]
	if bronze.ShedRate <= 0 {
		t.Errorf("overload did not shed the cheapest tenant: %+v", bronze)
	}
	if gold.ShedRate > 0 && bronze.AdmittedRate > 1e-9 {
		t.Errorf("gold shed %v before bronze was empty (bronze kept %v)", gold.ShedRate, bronze.AdmittedRate)
	}
	var shed float64
	for _, ten := range strict.Tenants {
		shed += ten.ShedRate
	}
	if shed+strict.ResidualShedRate < overload-1e-6 {
		t.Errorf("shed %v + residual %v below overload %v", shed, strict.ResidualShedRate, overload)
	}
}

// mixedWindowToObservations converts a mixed-workload measurement window
// into class-labelled wire observations: the lower half of the devices
// reports as tenant "gold", the upper half as "bronze".
func mixedWindowToObservations(win simstore.Window, devices int) []serve.Observation {
	const accesses = 1_000_000
	var out []serve.Observation
	for d := range win.DeviceRate {
		if win.DeviceRate[d] <= 0 {
			continue
		}
		hits := func(miss float64) (uint64, uint64) {
			m := uint64(math.Round(miss * accesses))
			return accesses - m, m
		}
		class := "gold"
		if d >= devices/2 {
			class = "bronze"
		}
		o := serve.Observation{
			Device:    d,
			Class:     class,
			Interval:  win.Duration,
			Requests:  uint64(math.Round(win.DeviceRate[d] * win.Duration)),
			DataReads: uint64(math.Round(win.DeviceChunkRate[d] * win.Duration)),
			DiskBusy:  win.DiskMeanSvc[d] * accesses,
			DiskOps:   accesses,
		}
		if d < len(win.DeviceWriteRate) {
			o.Writes = uint64(math.Round(win.DeviceWriteRate[d] * win.Duration))
			o.WriteChunks = uint64(math.Round(win.DeviceWriteChunkRate[d] * win.Duration))
		}
		o.IndexHits, o.IndexMisses = hits(win.MissIndex[d])
		o.MetaHits, o.MetaMisses = hits(win.MissMeta[d])
		o.DataHits, o.DataMisses = hits(win.MissData[d])
		out = append(out, o)
	}
	return out
}
