package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cosmodel/internal/numeric"
	"cosmodel/internal/retry"
)

// ---------------------------------------------------------------------------
// Fault-injection inverters (test doubles for the numeric layer).

// slowInverter delays every inversion before delegating, turning each model
// evaluation into a request that takes real wall-clock time.
type slowInverter struct {
	d     time.Duration
	inner numeric.Inverter
}

func (s slowInverter) Invert(f numeric.TransformFunc, t float64) float64 {
	time.Sleep(s.d)
	return s.inner.Invert(f, t)
}
func (s slowInverter) Name() string { return "slow-" + s.inner.Name() }

// nanInverter poisons every inversion.
type nanInverter struct{}

func (nanInverter) Invert(numeric.TransformFunc, float64) float64 { return math.NaN() }
func (nanInverter) Name() string                                  { return "nan" }

// panicInverter blows up inside the pooled evaluation.
type panicInverter struct{}

func (panicInverter) Invert(numeric.TransformFunc, float64) float64 { panic("inverter exploded") }
func (panicInverter) Name() string                                  { return "panic" }

// waitMetrics polls /metrics until cond is satisfied or the deadline passes,
// returning the last snapshot either way. The polling schedule rides the
// shared retry helper (constant delay, context-bounded) instead of a
// hand-rolled sleep loop.
func waitMetrics(t *testing.T, base string, cond func(MetricsResponse) bool) MetricsResponse {
	t.Helper()
	var m MetricsResponse
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	p := retry.Policy{MaxAttempts: 500, BaseDelay: 10 * time.Millisecond}
	p.Do(ctx, func(context.Context) error { //nolint:errcheck — last snapshot is returned either way
		getJSON(t, base+"/metrics", &m)
		if cond(m) {
			return nil
		}
		return errNotYet
	})
	return m
}

// errNotYet is waitMetrics' retryable "condition not met" sentinel.
var errNotYet = errors.New("condition not met")

// ---------------------------------------------------------------------------
// Client cancellation.

// TestClientCancelAbortsEvaluation is the headline robustness criterion: a
// client that gives up after 50ms on a query whose uncancelled evaluation
// would take seconds (dozens of sequential ~50ms bisection probes) gets its
// error immediately, the server-side evaluation stops within one inversion of
// the hangup instead of grinding on, and the hangup is accounted as a 499.
func TestClientCancelAbortsEvaluation(t *testing.T) {
	cfg := testConfig()
	cfg.Opts.Inverter = slowInverter{d: 50 * time.Millisecond, inner: numeric.NewEuler()}
	_, ts := newTestServer(t, cfg)
	ingestHTTP(t, ts.URL, 50, 4, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/advise?sla=0.05&target=0.9", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatalf("request succeeded in %v; the slow inverter should have outlived the client", time.Since(start))
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("cancelled client waited %v, want ≈50ms", el)
	}

	// The abandoned handler must notice, abort the bisection, account the
	// hangup and release its in-flight slot.
	m := waitMetrics(t, ts.URL, func(m MetricsResponse) bool {
		return m.ClientGone >= 1 && m.Inflight == 0
	})
	if m.ClientGone < 1 {
		t.Errorf("clientClosedRequests = %d, want ≥1", m.ClientGone)
	}
	if m.Inflight != 0 {
		t.Errorf("inflight = %d after the client hung up", m.Inflight)
	}
}

// TestEvalTimeoutReturns503 drives a patient client into the per-call
// evaluation budget: the server answers 503 + Retry-After well before the
// uncancelled evaluation would finish, and counts the timeout.
func TestEvalTimeoutReturns503(t *testing.T) {
	cfg := testConfig()
	cfg.Opts.Inverter = slowInverter{d: 50 * time.Millisecond, inner: numeric.NewEuler()}
	cfg.Opts.EvalTimeout = 20 * time.Millisecond
	_, ts := newTestServer(t, cfg)
	ingestHTTP(t, ts.URL, 50, 4, nil)

	resp := getJSON(t, ts.URL+"/predict", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	var m MetricsResponse
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Timeouts < 1 {
		t.Errorf("evaluationTimeouts = %d, want ≥1", m.Timeouts)
	}
	if m.ClientGone != 0 {
		t.Errorf("a server-side budget expiry was misaccounted as a client hangup (%d)", m.ClientGone)
	}
}

// ---------------------------------------------------------------------------
// Numerical poisoning.

// TestNumericalFailureReturns500 injects an inverter that yields NaN with
// fallbacks disabled: the answer must be a structured 500 JSON error naming
// the failure, never a 200 carrying NaN.
func TestNumericalFailureReturns500(t *testing.T) {
	cfg := testConfig()
	cfg.Opts.Inverter = nanInverter{}
	cfg.Opts.Fallbacks = []numeric.Inverter{} // non-nil empty: disabled
	_, ts := newTestServer(t, cfg)
	ingestHTTP(t, ts.URL, 50, 4, nil)

	resp, err := http.Get(ts.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (body %s)", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("500 body %q is not the structured error payload: %v", body, err)
	}
	if !strings.Contains(eb.Error, "invert") && !strings.Contains(eb.Error, "numeric") {
		t.Errorf("error %q does not describe the numerical failure", eb.Error)
	}
	var m MetricsResponse
	getJSON(t, ts.URL+"/metrics", &m)
	if m.NumericalFails < 1 {
		t.Errorf("numericalFailures = %d, want ≥1", m.NumericalFails)
	}

	// Health stays "ok": nothing was recovered by a fallback, the failure
	// was surfaced instead.
	var h HealthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "ok" {
		t.Errorf("healthz %q", h.Status)
	}
}

// TestFallbackRecoversAndDegradesHealth leaves the default fallback chain in
// place behind the poisoned primary: predictions keep flowing (200 with a
// sane value), the fallback is counted, and /healthz flips to "degraded".
func TestFallbackRecoversAndDegradesHealth(t *testing.T) {
	cfg := testConfig()
	cfg.Opts.Inverter = nanInverter{}
	_, ts := newTestServer(t, cfg)
	ingestHTTP(t, ts.URL, 50, 4, nil)

	var pr PredictResponse
	if resp := getJSON(t, ts.URL+"/predict?sla=0.05", &pr); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict with fallbacks available: %d", resp.StatusCode)
	}
	if len(pr.Predictions) != 1 {
		t.Fatalf("predictions %+v", pr.Predictions)
	}
	if v := pr.Predictions[0].MeetRatio; !(v > 0 && v <= 1) {
		t.Errorf("recovered meet ratio %v outside (0,1]", v)
	}

	var m MetricsResponse
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Fallbacks < 1 {
		t.Errorf("inverterFallbacks = %d, want ≥1", m.Fallbacks)
	}
	if m.LastFallbackAge < 0 {
		t.Errorf("lastFallbackAgeSeconds = %v, want ≥0", m.LastFallbackAge)
	}
	var h HealthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "degraded" {
		t.Errorf("healthz %q after an inverter fallback, want degraded", h.Status)
	}
}

// ---------------------------------------------------------------------------
// Panics.

// TestPanicInEvaluationRecovered injects an inverter that panics inside the
// pooled evaluation: every request gets a structured 500, the panic is
// counted, and — the actual point — no in-flight slot or pool worker leaks,
// so the server keeps answering at full capacity afterwards.
func TestPanicInEvaluationRecovered(t *testing.T) {
	cfg := testConfig()
	cfg.Opts.Inverter = panicInverter{}
	s, ts := newTestServer(t, cfg)
	ingestHTTP(t, ts.URL, 50, 4, nil)

	for i := 0; i < 8; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/predict?sla=%g", ts.URL, 0.05+float64(i)*1e-3))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d (body %s), want 500", i, resp.StatusCode, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Fatalf("request %d: body %q not structured: %v", i, body, err)
		}
		if !strings.Contains(eb.Error, "panic") {
			t.Errorf("request %d: error %q does not mention the panic", i, eb.Error)
		}
	}
	var m MetricsResponse
	getJSON(t, ts.URL+"/metrics", &m)
	if m.PanicsRecov < 8 {
		t.Errorf("panicsRecovered = %d, want ≥8", m.PanicsRecov)
	}
	if m.Inflight != 0 || len(s.sem) != 0 {
		t.Errorf("slot leak after panics: inflight=%d sem=%d", m.Inflight, len(s.sem))
	}
	if m.Shed != 0 {
		t.Errorf("sequential requests were shed (%d): slots leaked", m.Shed)
	}
	// The process is still healthy: liveness holds and ingest still works.
	var h HealthResponse
	if resp := getJSON(t, ts.URL+"/healthz", &h); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz %d after panics", resp.StatusCode)
	}
	ingestHTTP(t, ts.URL, 60, 4, nil)
}

// TestRecoverMiddleware exercises the handler-level recovery directly: a
// panicking handler becomes a logged, counted 500; http.ErrAbortHandler is
// re-raised untouched (net/http's sanctioned abort).
func TestRecoverMiddleware(t *testing.T) {
	var mu sync.Mutex
	var logged []string
	cfg := testConfig()
	cfg.Logf = func(format string, args ...any) {
		mu.Lock()
		logged = append(logged, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}

	h := s.recoverMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/predict", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", rec.Code)
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || !strings.Contains(eb.Error, "panic") {
		t.Errorf("body %q (%v)", rec.Body.String(), err)
	}
	if s.panics.Value() != 1 {
		t.Errorf("panics counter %d, want 1", s.panics.Value())
	}
	mu.Lock()
	nlogs := len(logged)
	stack := nlogs > 0 && strings.Contains(logged[0], "handler exploded") && strings.Contains(logged[0], "goroutine")
	mu.Unlock()
	if nlogs == 0 || !stack {
		t.Errorf("panic not logged with its stack: %q", logged)
	}

	abort := s.recoverMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("ErrAbortHandler was swallowed; net/http needs it re-raised")
			}
		}()
		abort.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/x", nil))
	}()
}

// ---------------------------------------------------------------------------
// Load shedding under concurrent pressure.

// TestLoadShedHammer hammers a MaxInflight=2 server with distinct slow
// queries from many goroutines: every answer is a clean 200 or a 503 with
// Retry-After, both actually occur, the shed counter matches, and afterwards
// the in-flight gauge and the slot pool are exactly empty.
func TestLoadShedHammer(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInflight = 2
	cfg.Opts.Inverter = slowInverter{d: 10 * time.Millisecond, inner: numeric.NewEuler()}
	s, ts := newTestServer(t, cfg)
	ingestHTTP(t, ts.URL, 50, 4, nil)

	const (
		clients = 16
		iters   = 4
	)
	var ok, shed, retryAfterMissing atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Distinct SLA per request defeats the memo cache, forcing
				// each 200 to hold its slot for a real evaluation.
				sla := 0.010 + float64(c*iters+i)*1e-4
				resp, err := http.Get(fmt.Sprintf("%s/predict?sla=%g", ts.URL, sla))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusServiceUnavailable:
					shed.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						retryAfterMissing.Add(1)
					}
				default:
					t.Errorf("status %d", resp.StatusCode)
				}
			}
		}(c)
	}
	wg.Wait()

	if ok.Load() == 0 || shed.Load() == 0 {
		t.Errorf("hammer saw %d OK / %d shed; want both under MaxInflight=2", ok.Load(), shed.Load())
	}
	if retryAfterMissing.Load() != 0 {
		t.Errorf("%d sheds lacked Retry-After", retryAfterMissing.Load())
	}
	var m MetricsResponse
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Shed != shed.Load() {
		t.Errorf("shed counter %d, clients observed %d", m.Shed, shed.Load())
	}
	if m.Inflight != 0 || len(s.sem) != 0 {
		t.Errorf("after drain: inflight=%d sem=%d, want 0/0", m.Inflight, len(s.sem))
	}
}

// ---------------------------------------------------------------------------
// Oversized bodies.

// TestOversizedBodyRejected413 posts an ingest body past the 1 MiB cap: the
// request dies with 413 (not 400, not an unbounded read), is counted, and a
// normal request still works afterwards.
func TestOversizedBodyRejected413(t *testing.T) {
	_, ts := newTestServer(t, testConfig())

	// A structurally valid payload whose latencies array alone exceeds the
	// cap, so the limit — not the JSON syntax — is what kills it. The excess
	// stays under net/http's post-handler drain allowance (256 KiB) so the
	// client reliably reads the 413 instead of racing a connection reset.
	huge := `{"observations":[{"device":0,"interval":1,"latencies":[` +
		strings.Repeat("0.001,", 200_000) + `0.001]}]}`
	if len(huge) <= maxBodyBytes || len(huge) > maxBodyBytes+200_000 {
		t.Fatalf("test body %d bytes, want just over the %d cap", len(huge), maxBodyBytes)
	}
	resp, err := http.Post(ts.URL+"/ingest", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (body %s), want 413", resp.StatusCode, body)
	}
	var m MetricsResponse
	getJSON(t, ts.URL+"/metrics", &m)
	if m.TooLarge != 1 {
		t.Errorf("oversizedBodies = %d, want 1", m.TooLarge)
	}
	if m.BadRequests != 0 {
		t.Errorf("oversized body was double-counted as a bad request (%d)", m.BadRequests)
	}
	// The server is unharmed: a sane ingest succeeds.
	ingestHTTP(t, ts.URL, 50, 4, nil)
}

// ---------------------------------------------------------------------------
// Transport hardening: slow loris and graceful shutdown.

// serveOnLoopback starts srv via ServeGraceful on an ephemeral loopback
// listener and returns the address, the cancel that initiates shutdown, and
// a channel carrying ServeGraceful's result.
func serveOnLoopback(t *testing.T, srv *http.Server, grace time.Duration) (string, context.CancelFunc, <-chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ServeGraceful(ctx, srv, ln, grace) }()
	t.Cleanup(func() {
		cancel()
		srv.Close() //nolint:errcheck // teardown: the drain result, if any, was read by the test body
	})
	return ln.Addr().String(), cancel, done
}

// TestSlowLorisConnectionReaped dials the hardened server and dribbles an
// eternally incomplete header: the ReadHeaderTimeout must reap the
// connection instead of letting it pin a goroutine forever.
func TestSlowLorisConnectionReaped(t *testing.T) {
	srv := NewHTTPServer("", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), HTTPTimeouts{
		ReadHeader: 100 * time.Millisecond,
		Read:       200 * time.Millisecond,
		Write:      time.Second,
		Idle:       time.Second,
	})
	addr, _, _ := serveOnLoopback(t, srv, time.Second)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: x\r\nX-Drib")); err != nil {
		t.Fatal(err)
	}
	// Never finish the header; the server must reap the connection — either
	// silently or with a 4xx error (net/http answers a timed-out partial
	// header with 408 or 400) — and must never serve the request.
	conn.SetReadDeadline(time.Now().Add(3 * time.Second)) //nolint:errcheck
	start := time.Now()
	reply, err := io.ReadAll(conn)
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server never reaped the slow-loris connection")
	}
	if len(reply) > 0 && !strings.Contains(string(reply), " 408 ") && !strings.Contains(string(reply), " 400 ") {
		t.Fatalf("incomplete header answered with %q, want nothing or a 4xx reap", reply)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("connection reaped only after %v", el)
	}
}

// TestGracefulShutdownDrains cancels the serve context while a request is in
// flight: the in-flight response completes, ServeGraceful returns nil (clean
// drain), and the listener stops accepting new connections.
func TestGracefulShutdownDrains(t *testing.T) {
	started := make(chan struct{})
	srv := NewHTTPServer("", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		time.Sleep(300 * time.Millisecond)
		io.WriteString(w, "drained") //nolint:errcheck
	}), HTTPTimeouts{})
	addr, cancel, done := serveOnLoopback(t, srv, 5*time.Second)

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/")
		if err != nil {
			got <- result{err: err}
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		got <- result{body: string(body), err: err}
	}()
	<-started
	cancel() // shutdown begins with the request still running

	select {
	case r := <-got:
		if r.err != nil || r.body != "drained" {
			t.Fatalf("in-flight request: %q, %v", r.body, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("clean drain returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeGraceful did not return after the drain")
	}
	if _, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// TestGracefulShutdownGraceExpires pins the other edge: a handler that will
// not finish within the grace forces ServeGraceful to give up with
// context.DeadlineExceeded instead of hanging forever.
func TestGracefulShutdownGraceExpires(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	srv := NewHTTPServer("", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		select {
		case <-release:
		case <-time.After(10 * time.Second):
		}
	}), HTTPTimeouts{})
	t.Cleanup(func() { close(release) })
	addr, cancel, done := serveOnLoopback(t, srv, 50*time.Millisecond)

	go func() {
		resp, err := http.Get("http://" + addr + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	cancel()

	select {
	case err := <-done:
		if err == nil || !isContextErr(err) {
			t.Fatalf("expired grace returned %v, want a deadline error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeGraceful hung past its grace")
	}
}
