package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"cosmodel/internal/experiments"
	"cosmodel/internal/serve"
	"cosmodel/internal/simstore"
)

// TestCodedEndToEndAgainstSimulator drives the service with coded-read
// traffic from the simulator: a (3,1) striped sweep's windows become
// /ingest batches, and /predict's codedRead block is compared against the
// simulator-observed SLA-meeting fractions (MAE <= 0.10).
func TestCodedEndToEndAgainstSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-driven e2e")
	}
	sim := simstore.DefaultConfig()
	sim.Backends = 6
	sim.Replicas = 3
	sim.StripeK = 1
	sc := experiments.ScenarioConfig{
		Name:           "coded-e2e",
		Sim:            sim,
		CatalogObjects: 30000,
		ZipfS:          1.05,
		WarmRate:       40,
		WarmDur:        15,
		RateStart:      20,
		RateEnd:        60,
		RateStep:       20,
		StepDur:        10,
		StepDiscard:    3,
		CalibrationOps: 1500,
		Seed:           41,
	}
	data, err := experiments.RunSweep(sc)
	if err != nil {
		t.Fatal(err)
	}

	cfg := serve.DefaultConfig(data.Props, sim.Devices())
	cfg.ProcsPerDevice = sim.ProcsPerDisk
	cfg.FrontendProcs = sim.Frontends * sim.ProcsPerFrontend
	cfg.SLAs = sim.SLAs
	cfg.Window = sc.StepDur - sc.StepDiscard

	srv, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var absErr []float64
	for step, win := range data.Windows {
		if win.Timeouts > 0 || win.Retries > 0 || win.Responses == 0 {
			continue
		}
		batch := windowToObservations(win)
		if len(batch) == 0 {
			continue
		}
		buf, err := json.Marshal(serve.IngestRequest{Observations: batch})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step %d ingest: %d %s", step, resp.StatusCode, body)
		}

		var pr serve.PredictResponse
		getInto(t, ts.URL+"/predict?codedN=3&codedK=1", &pr)
		if pr.CodedRead == nil {
			t.Fatal("no codedRead block in response")
		}
		if pr.CodedRead.Spec.N != 3 || pr.CodedRead.Spec.K != 1 {
			t.Fatalf("codedRead echoed wrong spec: %+v", pr.CodedRead.Spec)
		}
		if pr.CodedRead.Saturated {
			t.Errorf("rate %.0f predicted saturated; simulator completed the window fine", data.Rates[step])
			continue
		}
		for i, p := range pr.CodedRead.Predictions {
			e := p.MeetRatio - win.MeetFraction[i]
			absErr = append(absErr, math.Abs(e))
			t.Logf("rate %.0f sla %.3f: coded predicted %.4f observed %.4f (err %+.4f)",
				data.Rates[step], p.SLA, p.MeetRatio, win.MeetFraction[i], e)
		}

		// The identical coded query again: served from the memo cache.
		var again serve.PredictResponse
		getInto(t, ts.URL+"/predict?codedN=3&codedK=1", &again)
		for _, p := range again.CodedRead.Predictions {
			if !p.Cached {
				t.Errorf("rate %.0f: repeated coded query not served from cache", data.Rates[step])
			}
		}
		// A different stripe shape must not alias the cached entries.
		var other serve.PredictResponse
		getInto(t, ts.URL+"/predict?codedN=3&codedK=3", &other)
		for i, p := range other.CodedRead.Predictions {
			if p.MeetRatio > again.CodedRead.Predictions[i].MeetRatio+1e-9 {
				t.Errorf("rate %.0f sla %d: 3-of-3 barrier %.4f above fastest-of-3 %.4f",
					data.Rates[step], i, p.MeetRatio, again.CodedRead.Predictions[i].MeetRatio)
			}
		}
	}
	if len(absErr) < 6 {
		t.Fatalf("only %d comparable predictions; sweep degenerated", len(absErr))
	}
	var sum float64
	for _, e := range absErr {
		sum += e
	}
	mae := sum / float64(len(absErr))
	t.Logf("coded MAE %.4f over %d (step, SLA) pairs", mae, len(absErr))
	if mae > 0.10 {
		t.Errorf("coded MAE %.4f exceeds 0.10", mae)
	}

	// Coded admission advice: a finite threshold, spec echoed back.
	var adv serve.Advice
	getInto(t, ts.URL+"/advise?sla=0.1&target=0.5&codedN=3&codedK=1", &adv)
	if adv.CodedRead == nil || adv.CodedRead.N != 3 || adv.CodedRead.K != 1 {
		t.Errorf("advice did not echo the coded spec: %+v", adv)
	}
	if adv.MaxAdmissibleRate <= 0 {
		t.Errorf("coded advise found no admissible rate at a survivable load: %+v", adv)
	}

	// Invalid specs are 400s on both endpoints and both methods.
	for _, url := range []string{
		ts.URL + "/predict?codedN=4&codedK=6",
		ts.URL + "/predict?codedN=x&codedK=1",
		ts.URL + "/advise?sla=0.1&target=0.5&codedN=0&codedK=0",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", url, resp.StatusCode)
		}
	}
	bad, _ := json.Marshal(serve.PredictRequest{Coded: &serve.CodedReadSpec{N: 4, K: 6}})
	resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("POST bad coded spec: status %d, want 400", resp.StatusCode)
	}
}
