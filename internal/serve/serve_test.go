package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cosmodel/internal/core"
	"cosmodel/internal/dist"
)

func testProps() core.DeviceProperties {
	return core.DeviceProperties{
		IndexDisk: dist.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  dist.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  dist.NewGammaMeanSCV(8e-3, 0.40),
		ParseFE:   dist.Degenerate{Value: 0.3e-3},
		ParseBE:   dist.Degenerate{Value: 0.5e-3},
	}
}

func testConfig() Config {
	cfg := DefaultConfig(testProps(), 4)
	cfg.SLAs = []float64{0.010, 0.050, 0.100}
	return cfg
}

// obsAtRate builds one device's observation for a moderate operating point.
func obsAtRate(device int, rate float64) Observation {
	const interval = 10.0
	reqs := uint64(rate * interval)
	return Observation{
		Device:      device,
		Interval:    interval,
		Requests:    reqs,
		DataReads:   uint64(float64(reqs) * 1.2),
		IndexHits:   700,
		IndexMisses: 300,
		MetaHits:    650,
		MetaMisses:  350,
		DataHits:    500,
		DataMisses:  500,
	}
}

func ingestAll(t testing.TB, e *Engine, rate float64) {
	t.Helper()
	batch := make([]Observation, e.Config().Devices)
	for d := range batch {
		batch[d] = obsAtRate(d, rate)
	}
	if err := e.Ingest(batch); err != nil {
		t.Fatal(err)
	}
}

func TestEnginePredict(t *testing.T) {
	eng, err := NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Predict(nil); !errors.Is(err, ErrNotReady) {
		t.Fatalf("predict before ingest: %v", err)
	}
	ingestAll(t, eng, 50)
	preds, err := eng.Predict(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 3 {
		t.Fatalf("got %d predictions", len(preds))
	}
	for i, p := range preds {
		if p.Saturated {
			t.Errorf("saturated at a moderate load: %+v", p)
		}
		if p.MeetRatio < 0 || p.MeetRatio > 1 {
			t.Errorf("meet ratio %v", p.MeetRatio)
		}
		if i > 0 && p.MeetRatio < preds[i-1].MeetRatio-1e-9 {
			t.Errorf("meet ratio not monotone in SLA: %v after %v", p.MeetRatio, preds[i-1].MeetRatio)
		}
	}
	// Identical query again: answered from the cache.
	preds2, err := eng.Predict(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range preds2 {
		if !p.Cached {
			t.Errorf("repeat query not cached: %+v", p)
		}
	}
	if st := eng.Stats(); st.CacheHitRatio <= 0 {
		t.Errorf("cache hit ratio %v", st.CacheHitRatio)
	}
	if _, err := eng.Predict([]float64{-1}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("negative SLA: %v", err)
	}
}

func TestEngineSaturation(t *testing.T) {
	eng, err := NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Far beyond what ~8ms disk service times can sustain per device.
	ingestAll(t, eng, 2000)
	preds, err := eng.Predict([]float64{0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !preds[0].Saturated || preds[0].MeetRatio != 0 {
		t.Errorf("expected saturated zero prediction, got %+v", preds[0])
	}
	if st := eng.Stats(); st.Saturations == 0 {
		t.Error("saturation counter not bumped")
	}
}

func TestEngineSlidingWindow(t *testing.T) {
	cfg := testConfig()
	cfg.Window = 20 // two 10s observations per device
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Saturating load first, then enough moderate observations to push
	// the overloaded ones out of the window.
	ingestAll(t, eng, 2000)
	for i := 0; i < 3; i++ {
		ingestAll(t, eng, 40)
	}
	preds, err := eng.Predict([]float64{0.05})
	if err != nil {
		t.Fatal(err)
	}
	if preds[0].Saturated {
		t.Fatalf("old overload still dominates the window: %+v", preds[0])
	}
	if preds[0].MeetRatio <= 0.5 {
		t.Errorf("meet ratio %v at a light load", preds[0].MeetRatio)
	}
}

func TestEngineAdvise(t *testing.T) {
	eng, err := NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, eng, 40)
	adv, err := eng.Advise(0.05, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !adv.Admit || adv.Saturated {
		t.Errorf("light load should admit: %+v", adv)
	}
	if adv.MaxAdmissibleRate <= adv.CurrentRate {
		t.Errorf("threshold %v should exceed current %v", adv.MaxAdmissibleRate, adv.CurrentRate)
	}
	if math.Abs(adv.Headroom-(adv.MaxAdmissibleRate-adv.CurrentRate)) > 1e-9 {
		t.Errorf("headroom %v inconsistent", adv.Headroom)
	}
	// The threshold is meaningful: hammering the system at far above it
	// must flip the decision.
	ingestAll(t, eng, adv.MaxAdmissibleRate) // new window dominated by max-rate load
	ingestAll(t, eng, adv.MaxAdmissibleRate)
	over, err := eng.Advise(0.05, 0.9999)
	if err != nil {
		t.Fatal(err)
	}
	if over.Admit {
		t.Errorf("hard target at the threshold should not admit: %+v", over)
	}
	if _, err := eng.Advise(0, 0.9); !errors.Is(err, ErrBadQuery) {
		t.Errorf("zero SLA: %v", err)
	}
	if _, err := eng.Advise(0.05, 2); !errors.Is(err, ErrBadQuery) {
		t.Errorf("target 2: %v", err)
	}
}

func TestQuantize(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{0, 0},
		{123.456, 123},
		{0.04567, 0.0457},
		{1234, 1230},
		{-0.04567, -0.0457},
	} {
		if got := quantize(tc.in); math.Abs(got-tc.want) > 1e-12*math.Max(1, math.Abs(tc.want)) {
			t.Errorf("quantize(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
	a := []core.OnlineMetrics{{Rate: 100.004, DataRate: 120.01, MissIndex: 0.30002, Procs: 1}}
	b := []core.OnlineMetrics{{Rate: 100.003, DataRate: 120.02, MissIndex: 0.30003, Procs: 1}}
	if opKey(a) != opKey(b) {
		t.Errorf("near-identical points should share a key:\n%s\n%s", opKey(a), opKey(b))
	}
	c := []core.OnlineMetrics{{Rate: 150, DataRate: 180, MissIndex: 0.3, Procs: 1}}
	if opKey(a) == opKey(c) {
		t.Error("distinct operating points must not collide")
	}
}

// ---------------------------------------------------------------------------
// HTTP layer.

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t testing.TB, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("unmarshal %q: %v", data, err)
		}
	}
	return resp
}

func ingestHTTP(t testing.TB, base string, rate float64, devices int, latencies []float64) {
	t.Helper()
	batch := make([]Observation, devices)
	for d := range batch {
		batch[d] = obsAtRate(d, rate)
		batch[d].Latencies = latencies
	}
	resp, body := postJSON(t, base+"/ingest", IngestRequest{Observations: batch})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %s", resp.StatusCode, body)
	}
}

func TestServerEndpoints(t *testing.T) {
	_, ts := newTestServer(t, testConfig())

	// healthz: alive but not ready before ingest.
	var health HealthResponse
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", resp.StatusCode)
	}
	if health.Status != "ok" || health.Ready {
		t.Errorf("health before ingest: %+v", health)
	}

	// predict before ingest: 409.
	if resp := getJSON(t, ts.URL+"/predict", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("predict before ingest: %d", resp.StatusCode)
	}

	ingestHTTP(t, ts.URL, 50, 4, []float64{0.004, 0.008, 0.020, 0.045})

	if getJSON(t, ts.URL+"/healthz", &health); !health.Ready {
		t.Error("not ready after ingest")
	}

	var pr PredictResponse
	if resp := getJSON(t, ts.URL+"/predict?sla=0.05,0.1", &pr); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict %d", resp.StatusCode)
	}
	if len(pr.Predictions) != 2 || pr.Saturated {
		t.Fatalf("predict response %+v", pr)
	}
	if pr.TotalRate < 150 || pr.TotalRate > 250 {
		t.Errorf("total rate %v, ingested 4x50", pr.TotalRate)
	}

	// POST body form.
	resp, body := postJSON(t, ts.URL+"/predict", PredictRequest{SLAs: []float64{0.05}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict POST: %d %s", resp.StatusCode, body)
	}

	var adv Advice
	if resp := getJSON(t, ts.URL+"/advise?sla=0.05&target=0.8", &adv); resp.StatusCode != http.StatusOK {
		t.Fatalf("advise %d", resp.StatusCode)
	}
	if !adv.Admit || adv.MaxAdmissibleRate <= 0 {
		t.Errorf("advise %+v", adv)
	}

	var m MetricsResponse
	if resp := getJSON(t, ts.URL+"/metrics", &m); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics %d", resp.StatusCode)
	}
	if m.Ingested != 4 || m.Reporting != 4 {
		t.Errorf("ingest counters %+v", m)
	}
	if m.ObservedCount != 16 || m.ObservedP95 <= 0 {
		t.Errorf("observed latency counters: count=%d p95=%v", m.ObservedCount, m.ObservedP95)
	}
	if m.QueriesServed < 3 {
		t.Errorf("queries served %d", m.QueriesServed)
	}
}

func TestServerBadInput(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	for name, tc := range map[string]struct {
		method, path, body string
		want               int
	}{
		"garbage json":      {"POST", "/ingest", "{not json", http.StatusBadRequest},
		"unknown field":     {"POST", "/ingest", `{"observatons":[]}`, http.StatusBadRequest},
		"empty batch":       {"POST", "/ingest", `{"observations":[]}`, http.StatusBadRequest},
		"bad device":        {"POST", "/ingest", `{"observations":[{"device":99,"interval":1}]}`, http.StatusBadRequest},
		"zero interval":     {"POST", "/ingest", `{"observations":[{"device":0,"interval":0}]}`, http.StatusBadRequest},
		"negative latency":  {"POST", "/ingest", `{"observations":[{"device":0,"interval":1,"latencies":[-1]}]}`, http.StatusBadRequest},
		"bad sla query":     {"GET", "/predict?sla=banana", "", http.StatusBadRequest},
		"bad advise target": {"GET", "/advise?sla=0.05&target=banana", "", http.StatusBadRequest},
		"ingest get":        {"GET", "/ingest", "", http.StatusMethodNotAllowed},
		"metrics post":      {"POST", "/metrics", "", http.StatusMethodNotAllowed},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewBufferString(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: got %d, want %d", name, resp.StatusCode, tc.want)
		}
	}
	// A batch with one invalid observation is rejected whole.
	_, ts2 := newTestServer(t, testConfig())
	resp, _ := postJSON(t, ts2.URL+"/ingest", IngestRequest{Observations: []Observation{
		obsAtRate(0, 50), {Device: -1, Interval: 1},
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mixed batch: %d", resp.StatusCode)
	}
	if r := getJSON(t, ts2.URL+"/predict", nil); r.StatusCode != http.StatusConflict {
		t.Errorf("state changed by a rejected batch: predict %d", r.StatusCode)
	}
}

// TestServerShedsLoad fills the in-flight pool by hand and checks that the
// next query is shed with 503 and counted.
func TestServerShedsLoad(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInflight = 2
	s, ts := newTestServer(t, cfg)
	ingestHTTP(t, ts.URL, 50, 4, nil)

	s.sem <- struct{}{}
	s.sem <- struct{}{}
	resp := getJSON(t, ts.URL+"/predict", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expected 503, got %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 should carry Retry-After")
	}
	<-s.sem
	<-s.sem
	if resp := getJSON(t, ts.URL+"/predict", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("after slots free: %d", resp.StatusCode)
	}
	var m MetricsResponse
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Shed != 1 {
		t.Errorf("shed counter %d, want 1", m.Shed)
	}
}

// TestServerConcurrentClients drives ≥8 concurrent clients mixing /ingest,
// /predict, /advise and /metrics against one instance; run with -race.
func TestServerConcurrentClients(t *testing.T) {
	cfg := testConfig()
	_, ts := newTestServer(t, cfg)
	ingestHTTP(t, ts.URL, 40, 4, nil) // make predictions possible from the start

	const (
		ingesters  = 4
		predictors = 6
		advisers   = 2
		iters      = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, (ingesters+predictors+advisers)*iters)
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rate := 30 + float64((g*iters+i)%40)
				batch := make([]Observation, cfg.Devices)
				for d := range batch {
					batch[d] = obsAtRate(d, rate)
					batch[d].Latencies = []float64{0.004, 0.02}
				}
				buf, _ := json.Marshal(IngestRequest{Observations: batch})
				resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(buf))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("ingest status %d", resp.StatusCode)
				}
			}
		}(g)
	}
	query := func(path string) {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			// 503 (shed) is an acceptable answer under pressure; errors
			// and 4xx/5xx beyond that are not.
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
				errs <- fmt.Errorf("%s status %d", path, resp.StatusCode)
			}
		}
	}
	for g := 0; g < predictors; g++ {
		wg.Add(1)
		go query("/predict?sla=0.01,0.05,0.1")
	}
	for g := 0; g < advisers; g++ {
		wg.Add(1)
		go query("/advise?sla=0.05&target=0.9")
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	var m MetricsResponse
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Ingested != 4+ingesters*iters*uint64(cfg.Devices) {
		t.Errorf("ingested %d", m.Ingested)
	}
	if m.CacheHitRatio <= 0 {
		t.Errorf("no cache hits across concurrent identical queries: %+v", m.EngineStats)
	}
	if m.Inflight != 0 {
		t.Errorf("inflight %d after drain", m.Inflight)
	}
}

// TestCachedPredictionSpeedup measures the memoization win directly: the
// cached path must be at least 10x faster than cold prediction (in practice
// it is orders of magnitude faster — a map lookup vs transform inversions).
func TestCachedPredictionSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	eng, err := NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, eng, 50)
	slas := []float64{0.01, 0.05, 0.1}

	const coldIters = 10
	start := time.Now()
	for i := 0; i < coldIters; i++ {
		eng.InvalidateCache()
		if _, err := eng.Predict(slas); err != nil {
			t.Fatal(err)
		}
	}
	cold := time.Since(start) / coldIters

	if _, err := eng.Predict(slas); err != nil { // warm
		t.Fatal(err)
	}
	const warmIters = 2000
	start = time.Now()
	for i := 0; i < warmIters; i++ {
		if _, err := eng.Predict(slas); err != nil {
			t.Fatal(err)
		}
	}
	warm := time.Since(start) / warmIters

	t.Logf("cold %v, cached %v (%.0fx)", cold, warm, float64(cold)/float64(warm))
	if cold < 10*warm {
		t.Errorf("cached path only %.1fx faster than cold (%v vs %v)",
			float64(cold)/float64(warm), warm, cold)
	}
}

func TestNewServerBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Devices = 0
	if _, err := NewServer(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero devices: %v", err)
	}
	cfg = testConfig()
	cfg.SLAs = nil
	if _, err := NewServer(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("no SLAs: %v", err)
	}
	cfg = testConfig()
	cfg.Props = core.DeviceProperties{}
	if _, err := NewServer(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad props: %v", err)
	}
}
