package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cosmodel/internal/calib"
	"cosmodel/internal/core"
	"cosmodel/internal/ingest"
	"cosmodel/internal/numeric"
	"cosmodel/internal/obs"
	"cosmodel/internal/parallel"
)

// defaultIngestQueue is the calibration hand-off ring capacity (batches)
// when Config.IngestQueue is zero.
const defaultIngestQueue = 256

// Engine is the concurrent prediction engine: it derives the current
// operating point from the ingest state and answers prediction and
// admission queries through the memoizing model cache.
type Engine struct {
	cfg   Config
	state *stateTable
	cache *modelCache

	// reg is the engine's metrics registry: every counter below, the
	// model-evaluation spans, pool and cache gauges, and — through the HTTP
	// layer — the server's own request-latency histograms all live here and
	// are rendered by /metrics/prom.
	reg *obs.Registry
	// pool is the evaluation worker pool the engine pins into Opts.Pool so
	// one bounded, meterable pool carries every model it builds (nil when
	// the configuration forces sequential evaluation).
	pool *parallel.Pool

	// props is the currently served device-properties calibration,
	// hot-swappable via Recalibrate without restarting the engine.
	props atomic.Pointer[core.DeviceProperties]
	// calibrator is the online drift-detection controller; nil when
	// Config.Calib is nil.
	calibrator *calib.Controller

	predictions *obs.Counter // SLA evaluations answered
	saturations *obs.Counter // evaluations that hit an overloaded point
	fallbacks   *obs.Counter // inversions recovered by a fallback inverter
	recals      *obs.Counter // property swaps applied via Recalibrate
	// lastFallbackNS is the cfg.now() timestamp (UnixNano) of the most
	// recent inverter fallback; 0 before any.
	lastFallbackNS atomic.Int64

	// calibQ decouples HTTP ingest from calibration work: IngestQueued
	// hands accepted batches to the feeder goroutine through this bounded
	// ring, so ingest latency never includes drift-detector processing.
	// When the ring is full the batch still lands in the state table but
	// its calibration feed is dropped — counted by calibDropped, never
	// silent.
	calibQ       *ingest.Ring[*[]Observation]
	calibDone    chan struct{}
	calibFed     atomic.Uint64 // batches the feeder finished processing
	calibDropped *obs.Counter  // observations dropped from the calibration feed
	closeOnce    sync.Once
}

// NewEngine validates the configuration and builds an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, reg: obs.NewRegistry()}
	e.predictions = e.reg.Counter("cosserve_predictions_total",
		"SLA evaluations answered (cached and computed).", nil)
	e.saturations = e.reg.Counter("cosserve_saturations_total",
		"Evaluations that hit an overloaded operating point.", nil)
	e.fallbacks = e.reg.Counter("cosserve_inverter_fallbacks_total",
		"Inversions recovered by a fallback inverter.", nil)
	e.recals = e.reg.Counter("cosserve_recalibrations_total",
		"Device-property swaps applied via Recalibrate.", nil)
	// Observe every inverter fallback the guarded evaluation engine
	// performs on our behalf, chaining any callback the embedder installed.
	user := e.cfg.Opts.OnFallback
	e.cfg.Opts.OnFallback = func(from, to string) {
		e.fallbacks.Inc()
		e.lastFallbackNS.Store(e.cfg.now().UnixNano())
		if user != nil {
			user(from, to)
		}
	}
	e.instrumentEvaluation()
	props := e.cfg.Props
	e.props.Store(&props)
	state, err := newStateTable(&e.cfg)
	if err != nil {
		return nil, err
	}
	e.state = state
	e.cache = newModelCache(cfg.CacheEntries)
	e.registerCacheMetrics()
	if cfg.Calib != nil {
		cc := *cfg.Calib
		cc.Devices = cfg.Devices
		if cc.Logf == nil {
			cc.Logf = e.cfg.Logf
		}
		e.instrumentCalibration(&cc)
		ctrl, err := calib.New(cc, props, e.Recalibrate)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		e.calibrator = ctrl
	}
	qsize := cfg.IngestQueue
	if qsize == 0 {
		qsize = defaultIngestQueue
	}
	e.calibQ = ingest.NewRing[*[]Observation](qsize)
	e.calibDone = make(chan struct{})
	e.calibDropped = e.reg.Counter("cosserve_ingest_queue_dropped_total",
		"Observations whose calibration feed was dropped because the hand-off ring was full.", nil)
	e.reg.GaugeFunc("cosserve_ingest_queue_depth",
		"Batches queued for the calibration feeder.", nil,
		func() float64 { return float64(e.calibQ.Len()) })
	e.reg.GaugeFunc("cosserve_ingest_stripes",
		"Lock-stripe count of the observation state table.", nil,
		func() float64 { return float64(e.state.stripes()) })
	go e.calibrationFeeder()
	return e, nil
}

// Registry exposes the engine's metrics registry so embedders (and the HTTP
// layer) can attach their own metrics next to the engine's.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// instrumentEvaluation chains a metrics-recording Observer in front of any
// user callback and pins a shared, meterable worker pool into Opts.Pool.
func (e *Engine) instrumentEvaluation() {
	const (
		opsName   = "cosserve_model_ops_total"
		opsHelp   = "Completed model-evaluation spans by operation."
		errsName  = "cosserve_model_op_errors_total"
		errsHelp  = "Model-evaluation spans that returned an error, by operation."
		secsName  = "cosserve_model_op_seconds"
		secsHelp  = "Wall time of model-evaluation spans by operation."
		probeName = "cosserve_model_probes_total"
		probeHelp = "Inner CDF evaluations performed by search spans (quantile bisection, admission search)."
	)
	probes := e.reg.Counter(probeName, probeHelp, nil)
	nodes := e.reg.Gauge("cosserve_model_inversion_nodes",
		"Quadrature node count of the configured transform inverter.", nil)
	userObs := e.cfg.Opts.Observer
	e.cfg.Opts.Observer = func(ev core.EvalEvent) {
		lbl := obs.Labels{"op": ev.Op}
		e.reg.Counter(opsName, opsHelp, lbl).Inc()
		if ev.Err != nil {
			e.reg.Counter(errsName, errsHelp, lbl).Inc()
		}
		e.reg.Histogram(secsName, secsHelp, lbl).Observe(ev.Duration.Seconds())
		if ev.Probes > 0 {
			probes.Add(uint64(ev.Probes))
		}
		if ev.Nodes > 0 {
			nodes.Set(float64(ev.Nodes))
		}
		if userObs != nil {
			userObs(ev)
		}
	}
	// Resolve the worker pool the model engine would pick (mirroring
	// core.Options) and inject it, so every model the engine builds shares
	// one bounded pool whose utilization the gauges below can read.
	pool := e.cfg.Opts.Pool
	if pool == nil {
		switch {
		case e.cfg.Opts.Workers > 1:
			pool = parallel.New(e.cfg.Opts.Workers)
		case e.cfg.Opts.Workers == 0:
			pool = parallel.Default()
		}
		e.cfg.Opts.Pool = pool
	}
	e.pool = pool
	e.reg.GaugeFunc("cosserve_pool_workers",
		"Concurrency bound of the evaluation worker pool, counting the caller.", nil,
		func() float64 { return float64(e.pool.Workers()) })
	e.reg.GaugeFunc("cosserve_pool_busy",
		"Goroutines currently executing a pooled evaluation task.", nil,
		func() float64 { return float64(e.pool.Busy()) })
	e.reg.GaugeFunc("cosserve_pool_helpers_in_use",
		"Helper goroutines currently live — the pool's instantaneous queue depth.", nil,
		func() float64 { return float64(e.pool.HelpersInUse()) })
	e.reg.GaugeFunc("cosserve_pool_tasks",
		"Cumulative iterations executed by the evaluation worker pool.", nil,
		func() float64 { return float64(e.pool.Tasks()) })
}

// registerCacheMetrics exposes the prediction cache's counters as
// scrape-time gauges.
func (e *Engine) registerCacheMetrics() {
	e.reg.GaugeFunc("cosserve_cache_hits",
		"Prediction-cache lookups served from memory or deduplicated onto an in-flight computation.", nil,
		func() float64 { return float64(e.cache.stats().Hits) })
	e.reg.GaugeFunc("cosserve_cache_misses",
		"Prediction-cache lookups that had to compute.", nil,
		func() float64 { return float64(e.cache.stats().Misses) })
	e.reg.GaugeFunc("cosserve_cache_entries",
		"Memoized predictions currently resident.", nil,
		func() float64 { return float64(e.cache.stats().Entries) })
	e.reg.GaugeFunc("cosserve_cache_generation",
		"Prediction-cache generation; a bump marks every prior entry stale.", nil,
		func() float64 { return float64(e.cache.stats().Generation) })
}

// instrumentCalibration counts drift-detector state transitions, chaining
// any hook the embedder installed on the calibration config.
func (e *Engine) instrumentCalibration(cc *calib.Config) {
	const (
		name = "cosserve_calibration_transitions_total"
		help = "Drift-detector device state transitions by from/to state."
	)
	userTr := cc.OnTransition
	cc.OnTransition = func(device int, from, to calib.DeviceState) {
		e.reg.Counter(name, help, obs.Labels{"from": from.String(), "to": to.String()}).Inc()
		if userTr != nil {
			userTr(device, from, to)
		}
	}
}

// Props returns the currently served device-properties calibration.
func (e *Engine) Props() core.DeviceProperties { return *e.props.Load() }

// Recalibrate atomically swaps the served device properties and starts a
// new cache generation, so every memoized prediction computed under the old
// calibration is stale. In-flight evaluations finish under whichever
// calibration they started with. This is the apply path of the online
// calibration controller, and is also available to embedders directly.
func (e *Engine) Recalibrate(props core.DeviceProperties) error {
	if err := props.Validate(); err != nil {
		return err
	}
	p := props
	e.props.Store(&p)
	e.recals.Inc()
	e.cache.invalidate()
	return nil
}

// RecentFallback reports whether an inverter fallback happened within the
// last window seconds — the "numerics degraded but recovering" health
// signal surfaced by /healthz.
func (e *Engine) RecentFallback(window float64) bool {
	ns := e.lastFallbackNS.Load()
	if ns == 0 {
		return false
	}
	return e.cfg.now().UnixNano()-ns <= int64(window*1e9)
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Ingest absorbs a batch of per-device observations (all-or-nothing). With
// online calibration enabled the accepted batch also feeds the drift
// detectors synchronously — embedders driving the engine directly get
// deterministic calibration state after every call; a recalibration failure
// does not reject the batch (the observations are sound — the swap is what
// failed) but is logged and counted in the calibration status. The HTTP
// ingest path uses IngestQueued instead.
func (e *Engine) Ingest(batch []Observation) error {
	if err := e.state.ingest(batch); err != nil {
		return err
	}
	e.feedCalibration(batch)
	return nil
}

// IngestQueued absorbs a batch like Ingest but hands the calibration feed to
// the feeder goroutine through the bounded ring: the caller pays only for
// validation and the striped window update, never for drift detection. When
// the ring is full (or the engine is closed) the batch still lands in the
// state table; the skipped calibration feed is counted per observation in
// cosserve_ingest_queue_dropped_total. The batch slice is copied before
// queueing, so callers may recycle it immediately (NDJSON chunks are pooled).
func (e *Engine) IngestQueued(batch []Observation) error {
	if err := e.state.ingest(batch); err != nil {
		return err
	}
	if e.calibrator == nil {
		return nil // nothing downstream consumes the feed
	}
	buf := ingest.GetBatch()
	*buf = append((*buf)[:0], batch...)
	if !e.calibQ.TryPush(buf) {
		ingest.PutBatch(buf)
		e.calibDropped.Add(uint64(len(batch)))
	}
	return nil
}

// calibrationFeeder drains the hand-off ring, feeding queued batches to the
// drift controller and recycling their pooled buffers. Each wakeup drains
// the whole backlog at once (Ring.PopAll) and coalesces it into a single
// batched feed — under a burst the feeder takes the ring lock once per
// backlog, not once per batch, so it catches up instead of ping-ponging with
// producers. calibFed advances only after the coalesced feed completed,
// preserving WaitCalibrationIdle's fed==pushed accounting. The feeder exits
// — after draining what is already queued — once Close closes the ring.
func (e *Engine) calibrationFeeder() {
	defer close(e.calibDone)
	var (
		bufs   []*[]Observation
		merged []Observation
	)
	for {
		var ok bool
		bufs, ok = e.calibQ.PopAll(bufs[:0])
		if len(bufs) > 0 {
			merged = merged[:0]
			for _, buf := range bufs {
				merged = append(merged, (*buf)...)
				ingest.PutBatch(buf)
			}
			e.feedCalibration(merged)
			e.calibFed.Add(uint64(len(bufs)))
		}
		if !ok {
			return
		}
	}
}

// Close stops the calibration feeder after it drains every queued batch and
// waits for it to exit. The engine keeps answering queries; batches arriving
// through IngestQueued afterwards still update the state table, with their
// calibration feed counted as dropped. Safe to call more than once.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { e.calibQ.Close() })
	<-e.calibDone
}

// WaitCalibrationIdle blocks until the feeder has processed every batch
// queued so far, or the timeout expires; it reports whether the queue went
// idle. Tests use it to assert on calibration state after asynchronous
// ingest.
func (e *Engine) WaitCalibrationIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if e.calibFed.Load() == e.calibQ.Pushed() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// feedCalibration forwards accepted observations to the drift controller.
func (e *Engine) feedCalibration(batch []Observation) {
	if e.calibrator == nil {
		return
	}
	for _, o := range batch {
		ws := calib.WindowStats{
			Device:   o.Device,
			Interval: o.Interval,
			Index:    o.DiskIndexLat,
			Meta:     o.DiskMetaLat,
			Data:     o.DiskDataLat,
			Metrics:  o.Metrics(e.cfg.ProcsPerDevice),
		}
		if _, err := e.calibrator.Observe(ws); err != nil {
			e.cfg.logf("serve: calibration observe (device %d): %v", o.Device, err)
		}
	}
}

// CalibrationStatus reports the online-calibration subsystem's state; ok is
// false when the subsystem is disabled.
func (e *Engine) CalibrationStatus() (calib.Status, bool) {
	if e.calibrator == nil {
		return calib.Status{}, false
	}
	return e.calibrator.Status(), true
}

// Prediction is the answer for one SLA bound.
type Prediction struct {
	// SLA is the latency bound (seconds).
	SLA float64 `json:"sla"`
	// MeetRatio is the predicted fraction of requests with latency at
	// most SLA; 0 when Saturated.
	MeetRatio float64 `json:"meetRatio"`
	// Saturated marks an operating point with no steady state
	// (core.ErrOverload): the honest prediction is that the SLA target
	// will not be met at all.
	Saturated bool `json:"saturated"`
	// Cached reports whether the answer came from the memo cache.
	Cached bool `json:"cached"`
}

// Predict evaluates the predicted SLA-meeting fraction at the current
// operating point for each bound. It returns ErrNotReady before any
// observations arrive and ErrBadQuery for invalid bounds; saturation is not
// an error (see Prediction.Saturated).
func (e *Engine) Predict(slas []float64) ([]Prediction, error) {
	return e.PredictContext(context.Background(), slas)
}

// PredictContext is the context-aware Predict: cancellation and the
// configured Opts.EvalTimeout are observed inside the transform inversion
// itself (between mixture groups), so a hung or saturated evaluation stops
// burning CPU the moment the client gives up. A numerically poisoned
// inversion surfaces as an error wrapping numeric.ErrNumerical, never as a
// garbage prediction.
func (e *Engine) PredictContext(ctx context.Context, slas []float64) ([]Prediction, error) {
	if len(slas) == 0 {
		slas = e.cfg.SLAs
	}
	for _, s := range slas {
		if !(s > 0) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("%w: SLA %v must be positive and finite", ErrBadQuery, s)
		}
	}
	ms, key, err := e.state.snapshotKeyed()
	if err != nil {
		return nil, err
	}
	ctx, cancel := e.cfg.Opts.EvalContext(ctx)
	defer cancel()
	v, cached, err := e.evaluateBatch(ctx, ms, gridKey(key, "", slas), slas, nil)
	if err != nil {
		return nil, err
	}
	out := make([]Prediction, len(slas))
	for i, sla := range slas {
		out[i] = Prediction{SLA: sla, MeetRatio: v.ps[i], Saturated: v.saturated, Cached: cached}
	}
	return out, nil
}

// gridKey is the memo key of a whole-SLA-grid evaluation at factor 1:
// the operating-point key, an optional query-shape suffix (coded stripe)
// and the quantized SLA list.
func gridKey(key, suffix string, slas []float64) string {
	var b strings.Builder
	b.WriteString(key)
	b.WriteString(suffix)
	b.WriteString("|slas=")
	for i, s := range slas {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(quantStr(s))
	}
	return b.String()
}

// evaluateBatch answers one (operating point, SLA grid) query through the
// cache: a miss builds the model once and evaluates every SLA in a single
// batched traversal of the device mixture (CDFBatchContext, or the
// coded-read batch when coded is non-nil). A saturated operating point
// caches an all-zero grid. The prediction and saturation counters advance
// by the grid size, preserving the per-SLA metric semantics of the scalar
// path.
func (e *Engine) evaluateBatch(ctx context.Context, ms []core.OnlineMetrics, ck string, slas []float64, coded *CodedReadSpec) (cachedValue, bool, error) {
	v, cached, err := e.cache.do(ctx, ck, func(ctx context.Context) (cachedValue, error) {
		var (
			sys *core.SystemModel
			err error
		)
		if coded != nil {
			sys, err = e.buildCodedModel(ms, *coded, 1)
		} else {
			sys, err = e.buildModel(ms, 1)
		}
		if errors.Is(err, core.ErrOverload) {
			return cachedValue{saturated: true, ps: make([]float64, len(slas))}, nil
		}
		if err != nil {
			return cachedValue{}, err
		}
		var ps []float64
		if coded != nil {
			ps, err = sys.CodedCDFBatchContext(ctx, coded.spec(), slas)
		} else {
			ps, err = sys.CDFBatchContext(ctx, slas)
		}
		if err != nil {
			return cachedValue{}, err
		}
		return cachedValue{ps: ps}, nil
	})
	if err == nil {
		e.predictions.Add(uint64(len(slas)))
		if v.saturated {
			e.saturations.Add(uint64(len(slas)))
		}
	}
	return v, cached, err
}

// evaluate answers one (operating point, SLA) query through the cache,
// scaling every device's load by factor (used by admission bisection).
func (e *Engine) evaluate(ctx context.Context, ms []core.OnlineMetrics, key string, sla, factor float64) (cachedValue, bool, error) {
	ck := key
	if factor != 1 {
		ck += "|f=" + quantStr(factor)
	}
	ck += "|sla=" + quantStr(sla)
	v, cached, err := e.cache.do(ctx, ck, func(ctx context.Context) (cachedValue, error) {
		sys, err := e.buildModel(ms, factor)
		if errors.Is(err, core.ErrOverload) {
			return cachedValue{p: 0, saturated: true}, nil
		}
		if err != nil {
			return cachedValue{}, err
		}
		p, err := sys.CDFContext(ctx, sla)
		if err != nil {
			return cachedValue{}, err
		}
		return cachedValue{p: p}, nil
	})
	if err == nil {
		e.predictions.Inc()
		if v.saturated {
			e.saturations.Inc()
		}
	}
	return v, cached, err
}

// buildModel assembles the system model for the snapshot with every
// device's rates scaled by factor. The cold path (a cache miss) inherits
// cfg.Opts wholesale, so the model's device-parallel evaluation engine and
// its worker budget (core.Options.Workers) apply to every uncached
// prediction and admission probe. Devices with identical (scaled) metrics
// share one DeviceModel: the system mixture deduplicates by model pointer,
// so a fleet of N lookalike devices collapses to one evaluation group with
// N times the weight instead of N identical transform inversions.
func (e *Engine) buildModel(ms []core.OnlineMetrics, factor float64) (*core.SystemModel, error) {
	return e.buildModelFE(ms, factor, -1)
}

// buildModelFE is buildModel with an explicit frontend arrival rate: feRate
// < 0 means the snapshot's own (scaled) total — the standalone case — while
// a non-negative feRate builds the frontend at that rate instead. The
// cluster partial-evaluation path passes the router-supplied global rate
// here: the frontend sojourn factor depends only on the tier-wide total, so
// every shard evaluating its local device slice under the same global
// frontend produces partial CDFs that merge exactly into the full mixture.
func (e *Engine) buildModelFE(ms []core.OnlineMetrics, factor, feRate float64) (*core.SystemModel, error) {
	props := e.Props()
	devs := make([]*core.DeviceModel, 0, len(ms))
	built := make(map[core.OnlineMetrics]*core.DeviceModel, len(ms))
	total := 0.0
	for _, m := range ms {
		// Admission probes scale the whole workload mix, writes included:
		// a tenant shedding decision that left write load fixed would
		// overstate read headroom (writes share the same disk queues).
		m.Rate *= factor
		m.DataRate *= factor
		m.WriteRate *= factor
		dm := built[m]
		if dm == nil {
			var err error
			dm, err = core.NewDeviceModel(props, m, e.cfg.Opts)
			if err != nil {
				return nil, err
			}
			built[m] = dm
		}
		devs = append(devs, dm)
		total += m.Rate + m.WriteRate
	}
	if feRate >= 0 {
		total = feRate
	}
	fe, err := core.NewFrontendModel(total, e.cfg.FrontendProcs, props.ParseFE)
	if err != nil {
		return nil, err
	}
	return core.NewSystemModel(fe, devs, e.cfg.Opts)
}

// Advice is the admission-control answer for one SLA constraint.
type Advice struct {
	// SLA and Target restate the constraint ("Target of requests within
	// SLA seconds").
	SLA    float64 `json:"sla"`
	Target float64 `json:"target"`
	// CurrentRate is the aggregate request rate of the current window.
	CurrentRate float64 `json:"currentRate"`
	// CurrentMeetRatio is the predicted compliance at the current point.
	CurrentMeetRatio float64 `json:"currentMeetRatio"`
	// Saturated marks the current operating point as overloaded.
	Saturated bool `json:"saturated"`
	// MaxAdmissibleRate is the highest aggregate rate (same workload mix,
	// proportionally scaled) still predicted to meet the target; 0 when
	// even minimal load misses it.
	MaxAdmissibleRate float64 `json:"maxAdmissibleRate"`
	// Headroom is MaxAdmissibleRate - CurrentRate (negative when the
	// system is already past the admission threshold).
	Headroom float64 `json:"headroom"`
	// Admit is the admission decision: the current rate is within the
	// threshold and the target is met.
	Admit bool `json:"admit"`
	// CodedRead echoes the stripe shape when the advice was computed
	// through the coded-read model (rates are then sub-read rates).
	CodedRead *CodedReadSpec `json:"codedRead,omitempty"`
}

// Advise answers the admission-control question "what fraction meets the
// SLA now, and how much more load fits before target breaks?" by bisecting
// a proportional scaling of the current per-device operating point. Every
// probe goes through the memo cache, so repeated advice at a stable
// operating point is nearly free; cold probes evaluate through the pooled
// model engine (see buildModel).
func (e *Engine) Advise(sla, target float64) (Advice, error) {
	return e.AdviseContext(context.Background(), sla, target)
}

// AdviseContext is the context-aware Advise: ctx and the configured
// Opts.EvalTimeout bound the entire admission search, observed before every
// bisection probe and inside each probe's transform inversion. A probe that
// fails numerically or is cancelled aborts the search with the error; a
// probe at an overloaded point merely bounds it.
func (e *Engine) AdviseContext(ctx context.Context, sla, target float64) (Advice, error) {
	if !(sla > 0) || math.IsInf(sla, 0) {
		return Advice{}, fmt.Errorf("%w: SLA %v must be positive and finite", ErrBadQuery, sla)
	}
	if !(target > 0) || target > 1 {
		return Advice{}, fmt.Errorf("%w: target %v outside (0,1]", ErrBadQuery, target)
	}
	ms, key, err := e.state.snapshotKeyed()
	if err != nil {
		return Advice{}, err
	}
	ctx, cancel := e.cfg.Opts.EvalContext(ctx)
	defer cancel()
	current := 0.0
	for _, m := range ms {
		current += m.Rate
	}
	adv := Advice{SLA: sla, Target: target, CurrentRate: current}
	cur, _, err := e.evaluate(ctx, ms, key, sla, 1)
	if err != nil {
		return Advice{}, err
	}
	adv.CurrentMeetRatio = cur.p
	adv.Saturated = cur.saturated
	margin := func(ctx context.Context, rate float64) (float64, bool, error) {
		v, _, err := e.evaluate(ctx, ms, key, sla, rate/current)
		switch {
		case err == nil:
			if v.saturated {
				return 0, false, nil
			}
			return v.p - target, true, nil
		case isContextErr(err) || errors.Is(err, numeric.ErrNumerical):
			return 0, false, err
		default:
			// A model-construction failure at an extreme probe point
			// (ErrBadParams from a degenerate scaled rate) bounds the
			// search like overload does.
			return 0, false, nil
		}
	}
	// Resolve the threshold to ~0.5% of the current rate; quantization
	// below that would alias probe points anyway. The margin-aware search
	// interpolates on how far the prediction sits from the target, so a
	// smooth compliance curve needs far fewer probes than blind bisection.
	maxRate, err := core.MaxRateWhereValueContext(ctx, margin, current/64, current/200)
	if err != nil {
		return Advice{}, err
	}
	adv.MaxAdmissibleRate = maxRate
	adv.Headroom = adv.MaxAdmissibleRate - current
	adv.Admit = !adv.Saturated && cur.p >= target && adv.Headroom >= 0
	return adv, nil
}

// InvalidateCache starts a new cache generation: every memoized prediction
// becomes stale. Call after changing what the model would answer (e.g. a
// recalibration of device properties).
func (e *Engine) InvalidateCache() { e.cache.invalidate() }

// CacheGeneration returns the current prediction-cache generation — the
// token the cluster tier gossips so every replica of a shard serves
// predictions from the same calibration epoch.
func (e *Engine) CacheGeneration() uint64 { return e.cache.generation() }

// SyncGeneration raises the cache generation to at least gen (never
// backwards). The cluster router calls this on replicas whose generation
// lags the shard group's maximum, so a recalibration on one replica
// invalidates stale predictions cluster-wide.
func (e *Engine) SyncGeneration(gen uint64) { e.cache.invalidateTo(gen) }

// EngineStats is a point-in-time view of the engine's internal counters.
type EngineStats struct {
	Predictions uint64 `json:"predictions"`
	Saturations uint64 `json:"saturations"`
	// Fallbacks counts inversions recovered by a fallback inverter;
	// LastFallbackAge is the seconds since the most recent one (-1: never).
	Fallbacks       uint64  `json:"inverterFallbacks"`
	LastFallbackAge float64 `json:"lastFallbackAgeSeconds"`
	// Recalibrations counts device-property swaps applied via Recalibrate
	// (manually or by the online calibration controller).
	Recalibrations  uint64  `json:"recalibrations"`
	CacheHits       uint64  `json:"cacheHits"`
	CacheMisses     uint64  `json:"cacheMisses"`
	CacheHitRatio   float64 `json:"cacheHitRatio"`
	CacheEntries    int     `json:"cacheEntries"`
	CacheGeneration uint64  `json:"cacheGeneration"`
	Ingested        uint64  `json:"ingestedObservations"`
	Reporting       int     `json:"devicesReporting"`
	// CalibrationAge is the seconds since the last accepted ingest;
	// negative (-1) before any ingest.
	CalibrationAge float64 `json:"calibrationAgeSeconds"`
	TotalRate      float64 `json:"totalRate"`
	// TotalWriteRate is the aggregate PUT replica rate of the current
	// window and TenantClasses the number of tenant partitions registered.
	TotalWriteRate float64 `json:"totalWriteRate"`
	TenantClasses  int     `json:"tenantClasses"`
	// IngestStripes is the effective lock-stripe count of the state table.
	IngestStripes int `json:"ingestStripes"`
	// CalibQueueDepth is the current calibration hand-off backlog in
	// batches; CalibQueueDropped counts observations whose calibration feed
	// was dropped on a full ring (the state table still absorbed them).
	CalibQueueDepth   int    `json:"calibQueueDepth"`
	CalibQueueDropped uint64 `json:"calibQueueDroppedObservations"`
}

// Stats assembles the engine counters.
func (e *Engine) Stats() EngineStats {
	cs := e.cache.stats()
	ingested, reporting := e.state.stats()
	st := EngineStats{
		Predictions:     e.predictions.Value(),
		Saturations:     e.saturations.Value(),
		Fallbacks:       e.fallbacks.Value(),
		LastFallbackAge: -1,
		Recalibrations:  e.recals.Value(),
		CacheHits:       cs.Hits,
		CacheMisses:     cs.Misses,
		CacheHitRatio:   cs.hitRatio(),
		CacheEntries:    cs.Entries,
		CacheGeneration: cs.Generation,
		Ingested:        ingested,
		Reporting:       reporting,
		CalibrationAge:  -1,
		IngestStripes:   e.state.stripes(),
		CalibQueueDepth: e.calibQ.Len(),
	}
	st.CalibQueueDropped = e.calibDropped.Value()
	if age, ok := e.state.calibrationAge(); ok {
		st.CalibrationAge = age
	}
	if ns := e.lastFallbackNS.Load(); ns != 0 {
		st.LastFallbackAge = float64(e.cfg.now().UnixNano()-ns) / 1e9
	}
	if ms, err := e.state.snapshot(); err == nil {
		for _, m := range ms {
			st.TotalRate += m.Rate
			st.TotalWriteRate += m.WriteRate
		}
	}
	st.TenantClasses = len(e.state.tenantNames())
	return st
}

// ---------------------------------------------------------------------------
// Operating-point quantization.

// quantize rounds x to 3 significant decimal digits. Nearby operating
// points then share cache entries: a ≤0.5% perturbation of a rate or miss
// ratio moves the prediction far less than the model's own accuracy
// (mean absolute errors of a few percentage points, Table I), so serving
// the memoized neighbour is indistinguishable from recomputing.
func quantize(x float64) float64 {
	if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return x
	}
	exp := math.Floor(math.Log10(math.Abs(x)))
	scale := math.Pow(10, exp-2)
	return math.Round(x/scale) * scale
}

func quantStr(x float64) string {
	return strconv.FormatFloat(quantize(x), 'g', -1, 64)
}

// opKey serializes a quantized operating point: every device's rates, miss
// ratios, process count and disk mean. Identical keys mean (up to
// quantization) identical model inputs.
func opKey(ms []core.OnlineMetrics) string {
	var b strings.Builder
	for i, m := range ms {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(quantStr(m.Rate))
		b.WriteByte(',')
		b.WriteString(quantStr(m.DataRate))
		b.WriteByte(',')
		b.WriteString(quantStr(m.MissIndex))
		b.WriteByte(',')
		b.WriteString(quantStr(m.MissMeta))
		b.WriteByte(',')
		b.WriteString(quantStr(m.MissData))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(m.Procs))
		b.WriteByte(',')
		b.WriteString(quantStr(m.DiskMean))
		b.WriteByte(',')
		b.WriteString(quantStr(m.WriteRate))
		b.WriteByte(',')
		b.WriteString(quantStr(m.WriteChunks))
	}
	return b.String()
}
