package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"cosmodel/internal/experiments"
	"cosmodel/internal/serve"
	"cosmodel/internal/simstore"
)

// TestEndToEndAgainstSimulator drives the service with traffic measured from
// the discrete-event simulator: each sweep step's per-device window becomes
// an /ingest batch, /predict answers are compared against the
// simulator-observed SLA-meeting fractions, and the memo cache must show
// hits after repeated queries. The acceptance bar is MAE <= 0.10 across all
// (step, SLA) pairs at moderate load — the same tolerance band the paper's
// Table I comfortably clears.
func TestEndToEndAgainstSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-driven e2e")
	}
	sc := experiments.DefaultS1()
	sc.CatalogObjects = 60000
	sc.WarmRate, sc.WarmDur = 100, 20
	sc.RateStart, sc.RateEnd, sc.RateStep = 60, 240, 60
	sc.StepDur, sc.StepDiscard = 10, 3
	sc.CalibrationOps = 1500
	data, err := experiments.RunSweep(sc)
	if err != nil {
		t.Fatal(err)
	}

	measured := sc.StepDur - sc.StepDiscard
	cfg := serve.DefaultConfig(data.Props, sc.Sim.Devices())
	cfg.ProcsPerDevice = sc.Sim.ProcsPerDisk
	cfg.FrontendProcs = sc.Sim.Frontends * sc.Sim.ProcsPerFrontend
	cfg.SLAs = sc.Sim.SLAs
	// One measurement window per step: the sliding window holds exactly the
	// latest step so predictions match that step's operating point.
	cfg.Window = measured

	srv, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var absErr []float64
	for step, win := range data.Windows {
		if win.Timeouts > 0 || win.Retries > 0 || win.Responses == 0 {
			continue // same exclusions as the paper's analysis
		}
		batch := windowToObservations(win)
		if len(batch) == 0 {
			continue
		}
		buf, err := json.Marshal(serve.IngestRequest{Observations: batch})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step %d ingest: %d %s", step, resp.StatusCode, body)
		}

		pr := predictHTTP(t, ts.URL)
		if pr.Saturated {
			t.Errorf("rate %.0f predicted saturated; simulator completed the window fine", data.Rates[step])
			continue
		}
		for i, p := range pr.Predictions {
			e := p.MeetRatio - win.MeetFraction[i]
			absErr = append(absErr, math.Abs(e))
			t.Logf("rate %.0f sla %.3f: predicted %.4f observed %.4f (err %+.4f)",
				data.Rates[step], p.SLA, p.MeetRatio, win.MeetFraction[i], e)
		}

		// Repeat the identical query: must be answered from the cache.
		again := predictHTTP(t, ts.URL)
		for _, p := range again.Predictions {
			if !p.Cached {
				t.Errorf("rate %.0f: repeated query not served from cache", data.Rates[step])
			}
		}
	}
	if len(absErr) < 6 {
		t.Fatalf("only %d comparable predictions; sweep degenerated", len(absErr))
	}
	var sum float64
	for _, e := range absErr {
		sum += e
	}
	mae := sum / float64(len(absErr))
	t.Logf("MAE %.4f over %d (step, SLA) pairs", mae, len(absErr))
	if mae > 0.10 {
		t.Errorf("MAE %.4f exceeds 0.10", mae)
	}

	// /advise at the final operating point: a finite, positive threshold
	// consistent with its own headroom.
	var adv serve.Advice
	getInto(t, ts.URL+"/advise?sla=0.1&target=0.5", &adv)
	if adv.MaxAdmissibleRate <= 0 {
		t.Errorf("advise found no admissible rate at a survivable load: %+v", adv)
	}
	if math.Abs(adv.Headroom-(adv.MaxAdmissibleRate-adv.CurrentRate)) > 1e-9 {
		t.Errorf("inconsistent headroom: %+v", adv)
	}

	// /metrics: the repeated predictions above must show up as cache hits.
	var m serve.MetricsResponse
	getInto(t, ts.URL+"/metrics", &m)
	if m.CacheHitRatio <= 0 {
		t.Errorf("cache hit ratio %v after repeated identical queries", m.CacheHitRatio)
	}
	if m.Reporting == 0 || m.Ingested == 0 {
		t.Errorf("ingest counters empty: %+v", m.EngineStats)
	}
}

// windowToObservations converts a simulator measurement window into the wire
// observations a real deployment's monitoring agent would report. Ratios are
// carried as synthetic hit/miss counts over a fixed number of accesses.
func windowToObservations(win simstore.Window) []serve.Observation {
	const accesses = 1_000_000
	var out []serve.Observation
	for d := range win.DeviceRate {
		if win.DeviceRate[d] <= 0 {
			continue
		}
		hits := func(miss float64) (uint64, uint64) {
			m := uint64(math.Round(miss * accesses))
			return accesses - m, m
		}
		o := serve.Observation{
			Device:    d,
			Interval:  win.Duration,
			Requests:  uint64(math.Round(win.DeviceRate[d] * win.Duration)),
			DataReads: uint64(math.Round(win.DeviceChunkRate[d] * win.Duration)),
			DiskBusy:  win.DiskMeanSvc[d] * accesses,
			DiskOps:   accesses,
		}
		o.IndexHits, o.IndexMisses = hits(win.MissIndex[d])
		o.MetaHits, o.MetaMisses = hits(win.MissMeta[d])
		o.DataHits, o.DataMisses = hits(win.MissData[d])
		out = append(out, o)
	}
	return out
}

func predictHTTP(t *testing.T, base string) serve.PredictResponse {
	t.Helper()
	var pr serve.PredictResponse
	getInto(t, base+"/predict", &pr)
	return pr
}

func getInto(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("unmarshal %q: %v", data, err)
	}
}
