package serve

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
)

// FuzzDecodeStrict throws arbitrary bytes at the strict request decoder: it
// must never panic, and every accepted payload must decode deterministically
// (re-decoding the same bytes gives the same verdict).
func FuzzDecodeStrict(f *testing.F) {
	f.Add([]byte(`{"slas":[0.01,0.05]}`))
	f.Add([]byte(`{"observations":[{"device":0,"interval":1}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{not json`))
	f.Add([]byte(`{"slas":[1]} trailing`))
	f.Add([]byte(`{"unknown":true}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"slas":[1e309]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		decode := func() error {
			r := httptest.NewRequest(http.MethodPost, "/predict", bytes.NewReader(data))
			var req PredictRequest
			return decodeStrict(httptest.NewRecorder(), r, &req)
		}
		first := decode()
		if again := decode(); (first == nil) != (again == nil) {
			t.Fatalf("non-deterministic verdict for %q: %v vs %v", data, first, again)
		}
	})
}

// FuzzParseFloats feeds arbitrary strings to the query-parameter list
// parser: no panic, and on success every element is a finite-or-inf float
// that strconv can reproduce (i.e. the parse really consumed the input).
func FuzzParseFloats(f *testing.F) {
	f.Add("0.01,0.05,0.1")
	f.Add("")
	f.Add(" 1 , 2 ")
	f.Add("banana")
	f.Add("1,,2")
	f.Add("NaN")
	f.Add("-Inf")
	f.Add("1e400")
	f.Add(",")
	f.Fuzz(func(t *testing.T, s string) {
		vals, err := parseFloats(s)
		if err != nil {
			if len(vals) != 0 {
				t.Fatalf("parseFloats(%q) returned values %v alongside error %v", s, vals, err)
			}
			return
		}
		for i, v := range vals {
			if math.IsNaN(v) {
				// NaN is representable input ("nan"); the round-trip check
				// below would fail on NaN != NaN.
				continue
			}
			if _, perr := strconv.ParseFloat(strconv.FormatFloat(v, 'g', -1, 64), 64); perr != nil {
				t.Fatalf("parseFloats(%q)[%d] = %v does not round-trip: %v", s, i, v, perr)
			}
		}
	})
}
