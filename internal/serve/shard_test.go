package serve

import (
	"context"
	"errors"
	"math"
	"testing"
)

// shardEngine builds an engine with each device at a distinct rate so the
// partial split cannot hide behind the identical-metrics dedup.
func shardEngine(t *testing.T) *Engine {
	t.Helper()
	eng, err := NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Observation, eng.Config().Devices)
	for d := range batch {
		batch[d] = obsAtRate(d, 40+10*float64(d))
	}
	if err := eng.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestPartialMergeMatchesFullPredict is the cluster tier's correctness
// foundation: evaluating the device mixture as two disjoint shard slices
// under the shared global frontend rate and merging Σ weightedSums / Σ rates
// reproduces the single-engine prediction exactly (mixture linearity,
// Eq. 3).
func TestPartialMergeMatchesFullPredict(t *testing.T) {
	eng := shardEngine(t)
	full, err := eng.Predict(nil)
	if err != nil {
		t.Fatal(err)
	}
	totalRate := eng.Stats().TotalRate
	ctx := context.Background()
	a, err := eng.PartialPredictContext(ctx, PartialRequest{
		Devices: []int{0, 1}, TotalRate: totalRate})
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.PartialPredictContext(ctx, PartialRequest{
		Devices: []int{2, 3}, TotalRate: totalRate})
	if err != nil {
		t.Fatal(err)
	}
	if a.Covered != 2 || b.Covered != 2 {
		t.Fatalf("covered %d/%d, want 2/2", a.Covered, b.Covered)
	}
	if rel := math.Abs(a.Rate+b.Rate-totalRate) / totalRate; rel > 1e-9 {
		t.Errorf("partial rates sum to %v, engine total %v", a.Rate+b.Rate, totalRate)
	}
	for i, p := range full {
		merged := (a.WeightedSums[i] + b.WeightedSums[i]) / (a.Rate + b.Rate)
		if math.Abs(merged-p.MeetRatio) > 1e-9 {
			t.Errorf("sla %v: merged %v, full %v", p.SLA, merged, p.MeetRatio)
		}
	}
}

// TestPartialPredictFactorScalesLikeAdviseProbe: a factor-scaled partial
// matches the scalar evaluate path used by admission bisection.
func TestPartialPredictFactorScalesLikeAdviseProbe(t *testing.T) {
	eng := shardEngine(t)
	totalRate := eng.Stats().TotalRate
	const factor = 1.5
	ctx := context.Background()
	a, err := eng.PartialPredictContext(ctx, PartialRequest{
		Devices: []int{0, 1}, TotalRate: totalRate, Factor: factor})
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.PartialPredictContext(ctx, PartialRequest{
		Devices: []int{2, 3}, TotalRate: totalRate, Factor: factor})
	if err != nil {
		t.Fatal(err)
	}
	ms, key, err := eng.state.snapshotKeyed()
	if err != nil {
		t.Fatal(err)
	}
	for _, sla := range eng.Config().SLAs {
		v, _, err := eng.evaluate(ctx, ms, key, sla, factor)
		if err != nil {
			t.Fatal(err)
		}
		merged := 0.0
		if !a.Saturated && !b.Saturated {
			merged = (a.WeightedSums[slaIndex(t, eng, sla)] + b.WeightedSums[slaIndex(t, eng, sla)]) / (a.Rate + b.Rate)
		}
		if v.saturated != (a.Saturated || b.Saturated) {
			t.Fatalf("sla %v: saturation disagrees (scalar %v, partial %v/%v)",
				sla, v.saturated, a.Saturated, b.Saturated)
		}
		if !v.saturated && math.Abs(merged-v.p) > 1e-9 {
			t.Errorf("sla %v at factor %v: merged %v, scalar %v", sla, factor, merged, v.p)
		}
	}
}

func slaIndex(t *testing.T, eng *Engine, sla float64) int {
	t.Helper()
	for i, s := range eng.Config().SLAs {
		if s == sla {
			return i
		}
	}
	t.Fatalf("sla %v not configured", sla)
	return -1
}

// TestPartialPredictEmptyCoverage: a shard with no observations for its
// devices returns a legitimate zero-weight slice, never ErrNotReady.
func TestPartialPredictEmptyCoverage(t *testing.T) {
	eng, err := NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := eng.PartialPredictContext(context.Background(), PartialRequest{
		Devices: []int{0, 1}, TotalRate: 100})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Covered != 0 || resp.Rate != 0 || resp.Saturated {
		t.Fatalf("empty shard slice: %+v", resp)
	}
	for _, s := range resp.WeightedSums {
		if s != 0 {
			t.Fatalf("empty slice contributed weight: %+v", resp)
		}
	}
}

// TestPartialPredictValidation covers the bad-query taxonomy.
func TestPartialPredictValidation(t *testing.T) {
	eng := shardEngine(t)
	ctx := context.Background()
	cases := []PartialRequest{
		{Devices: []int{0}, TotalRate: 0},
		{Devices: []int{0}, TotalRate: math.Inf(1)},
		{Devices: []int{0}, TotalRate: 100, Factor: -1},
		{Devices: []int{0}, TotalRate: 100, SLAs: []float64{-1}},
		{Devices: nil, TotalRate: 100},
		{Devices: []int{99}, TotalRate: 100},
	}
	for i, req := range cases {
		if _, err := eng.PartialPredictContext(ctx, req); !errors.Is(err, ErrBadQuery) {
			t.Errorf("case %d (%+v): err = %v, want ErrBadQuery", i, req, err)
		}
	}
}

// TestSyncGenerationConverges: invalidateTo takes the max, so gossip from
// multiple routers converges instead of ping-ponging, and a local
// recalibration is never undone by a stale sync.
func TestSyncGenerationConverges(t *testing.T) {
	eng := shardEngine(t)
	if g := eng.CacheGeneration(); g != 0 {
		t.Fatalf("fresh generation %d", g)
	}
	eng.SyncGeneration(5)
	if g := eng.CacheGeneration(); g != 5 {
		t.Fatalf("after sync to 5: %d", g)
	}
	eng.SyncGeneration(3) // stale gossip must not regress
	if g := eng.CacheGeneration(); g != 5 {
		t.Fatalf("stale sync regressed generation to %d", g)
	}
	eng.InvalidateCache()
	if g := eng.CacheGeneration(); g != 6 {
		t.Fatalf("local invalidate: %d", g)
	}
}
