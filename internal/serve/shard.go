package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"

	"cosmodel/internal/core"
)

// This file is the shard side of the cluster tier (internal/cluster): with
// Config.ShardMode a cosserve instance additionally answers partial-CDF
// evaluations over the device subset it owns, reports its shard state, and
// accepts cache-generation syncs. The correctness basis is the mixture
// linearity of the paper's Eq. 3: the system CDF is the rate-weighted sum of
// per-device response CDFs divided by the total rate, and the frontend
// sojourn factor inside each device's response depends only on the
// tier-wide total rate. A shard evaluating its local devices under the
// router-supplied global frontend rate therefore computes an exact additive
// slice — weightedSums[i] = localCDF(sla_i) · localRate — which the router
// merges as Σ sums / Σ rates with no approximation.

// PartialRequest asks a shard for its slice of the cluster mixture CDF.
type PartialRequest struct {
	// Devices are the storage devices this shard must evaluate — the subset
	// the router's ring assigns to it. Devices the shard has no observations
	// for contribute zero weight (see PartialResponse.Covered).
	Devices []int `json:"devices"`
	// SLAs are the latency bounds (seconds) to evaluate; empty means the
	// shard's configured defaults.
	SLAs []float64 `json:"slas"`
	// TotalRate is the tier-wide aggregate request rate the router computed
	// from the full ingest stream: the frontend model is built at this rate
	// (scaled by Factor) so every shard's partial shares one frontend.
	TotalRate float64 `json:"totalRate"`
	// Factor proportionally scales every device's load (and the frontend
	// rate) — the admission search's what-if knob; 0 means 1.
	Factor float64 `json:"factor,omitempty"`
}

// PartialResponse is a shard's additive slice of the cluster mixture.
type PartialResponse struct {
	// WeightedSums[i] is localCDF(sla_i) · Rate: the shard's contribution to
	// the numerator of the merged mixture CDF.
	WeightedSums []float64 `json:"weightedSums"`
	// Rate is the (factor-scaled) aggregate rate of the covered devices —
	// the shard's contribution to the denominator.
	Rate float64 `json:"rate"`
	// Covered counts requested devices that had an operating point.
	Covered int `json:"covered"`
	// Saturated marks an operating point with no steady state anywhere in
	// the shard's slice (or a frontend overloaded at the global rate).
	Saturated bool `json:"saturated"`
	// Generation is the shard's prediction-cache generation — the token the
	// router gossips so replicas converge on one calibration epoch.
	Generation uint64 `json:"generation"`
}

// PartialPredictContext evaluates the shard's slice of the cluster mixture:
// the local device subset scaled by req.Factor under a frontend built at
// req.TotalRate·req.Factor. Zero covered devices is a legitimate empty
// slice, not an error. Results are memoized like every other prediction.
func (e *Engine) PartialPredictContext(ctx context.Context, req PartialRequest) (PartialResponse, error) {
	slas := req.SLAs
	if len(slas) == 0 {
		slas = e.cfg.SLAs
	}
	for _, s := range slas {
		if !(s > 0) || math.IsInf(s, 0) {
			return PartialResponse{}, fmt.Errorf("%w: SLA %v must be positive and finite", ErrBadQuery, s)
		}
	}
	if !(req.TotalRate > 0) || math.IsInf(req.TotalRate, 0) {
		return PartialResponse{}, fmt.Errorf("%w: totalRate %v must be positive and finite", ErrBadQuery, req.TotalRate)
	}
	factor := req.Factor
	if factor == 0 {
		factor = 1
	}
	if !(factor > 0) || math.IsInf(factor, 0) {
		return PartialResponse{}, fmt.Errorf("%w: factor %v must be positive and finite", ErrBadQuery, req.Factor)
	}
	if len(req.Devices) == 0 {
		return PartialResponse{}, fmt.Errorf("%w: empty device list", ErrBadQuery)
	}
	ms, covered, err := e.state.snapshotDevices(req.Devices)
	if err != nil {
		return PartialResponse{}, err
	}
	resp := PartialResponse{
		WeightedSums: make([]float64, len(slas)),
		Covered:      covered,
		Generation:   e.CacheGeneration(),
	}
	if covered == 0 {
		return resp, nil
	}
	feRate := req.TotalRate * factor
	ctx, cancel := e.cfg.Opts.EvalContext(ctx)
	defer cancel()
	suffix := "|tr=" + quantStr(feRate) + "|f=" + quantStr(factor)
	ck := gridKey("partial|"+opKey(ms), suffix, slas)
	v, _, err := e.cache.do(ctx, ck, func(ctx context.Context) (cachedValue, error) {
		local := 0.0
		for _, m := range ms {
			local += m.Rate * factor
		}
		sys, err := e.buildModelFE(ms, factor, feRate)
		if errors.Is(err, core.ErrOverload) {
			return cachedValue{p: local, saturated: true, ps: make([]float64, len(slas))}, nil
		}
		if err != nil {
			return cachedValue{}, err
		}
		ps, err := sys.CDFBatchContext(ctx, slas)
		if err != nil {
			return cachedValue{}, err
		}
		sums := make([]float64, len(ps))
		for i, p := range ps {
			sums[i] = p * local
		}
		return cachedValue{p: local, ps: sums}, nil
	})
	if err != nil {
		return PartialResponse{}, err
	}
	e.predictions.Add(uint64(len(slas)))
	if v.saturated {
		e.saturations.Add(uint64(len(slas)))
	}
	resp.WeightedSums = v.ps
	resp.Rate = v.p
	resp.Saturated = v.saturated
	// The generation may have advanced while we evaluated; report the newest
	// so the router's gossip never pushes a shard backwards.
	resp.Generation = e.CacheGeneration()
	return resp, nil
}

// ---------------------------------------------------------------------------
// Shard HTTP endpoints (mounted only with Config.ShardMode).

// ShardStateResponse is the /shard/state payload: what the router's health
// prober and generation gossip need from a replica.
type ShardStateResponse struct {
	Generation     uint64  `json:"generation"`
	Ingested       uint64  `json:"ingestedObservations"`
	Reporting      int     `json:"devicesReporting"`
	Devices        int     `json:"devices"`
	TotalRate      float64 `json:"totalRate"`
	CalibrationAge float64 `json:"calibrationAgeSeconds"`
	// DeviceRates is every device's windowed request rate (0 when idle) —
	// the state a restarted router seeds its rate tracker from, so a fresh
	// router fronting warm shards reports the true tier-wide rate instead
	// of zero.
	DeviceRates []float64 `json:"deviceRates,omitempty"`
}

// ShardInvalidateRequest asks a shard to raise its cache generation to at
// least Generation (cluster-wide invalidation after a recalibration).
type ShardInvalidateRequest struct {
	Generation uint64 `json:"generation"`
}

// ShardInvalidateResponse reports the generation after the sync.
type ShardInvalidateResponse struct {
	Generation uint64 `json:"generation"`
}

func (s *Server) handleShardPartial(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	var req PartialRequest
	if err := decodeStrict(w, r, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	if !s.acquire(w) {
		return
	}
	defer s.release()
	resp, err := s.engine.PartialPredictContext(r.Context(), req)
	if err != nil {
		s.queryError(w, r, err)
		return
	}
	s.served.Inc()
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleShardState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET required"})
		return
	}
	st := s.engine.Stats()
	s.writeJSON(w, http.StatusOK, ShardStateResponse{
		Generation:     st.CacheGeneration,
		Ingested:       st.Ingested,
		Reporting:      st.Reporting,
		Devices:        s.engine.Config().Devices,
		TotalRate:      st.TotalRate,
		CalibrationAge: st.CalibrationAge,
		DeviceRates:    s.engine.state.deviceRates(),
	})
}

func (s *Server) handleShardInvalidate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	var req ShardInvalidateRequest
	if err := decodeStrict(w, r, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	s.engine.SyncGeneration(req.Generation)
	s.writeJSON(w, http.StatusOK, ShardInvalidateResponse{Generation: s.engine.CacheGeneration()})
}
