package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// HTTPTimeouts are the hardened http.Server limits applied by
// NewHTTPServer. Each guards one slow-client attack surface: a peer that
// dribbles header bytes (slow loris), a peer that never finishes its body,
// a peer that never reads the response, and an idle keep-alive connection
// pinned open forever.
type HTTPTimeouts struct {
	ReadHeader time.Duration
	Read       time.Duration
	Write      time.Duration
	Idle       time.Duration
}

// DefaultHTTPTimeouts returns the production limits. The write timeout
// comfortably exceeds any sane Options.EvalTimeout, so evaluation budgets
// fire first and produce structured 503s instead of a torn connection.
func DefaultHTTPTimeouts() HTTPTimeouts {
	return HTTPTimeouts{
		ReadHeader: 5 * time.Second,
		Read:       15 * time.Second,
		Write:      30 * time.Second,
		Idle:       60 * time.Second,
	}
}

// NewHTTPServer wraps h in an http.Server with the given timeouts and a
// bounded header size. The zero HTTPTimeouts value is replaced with
// DefaultHTTPTimeouts.
func NewHTTPServer(addr string, h http.Handler, t HTTPTimeouts) *http.Server {
	if t == (HTTPTimeouts{}) {
		t = DefaultHTTPTimeouts()
	}
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: t.ReadHeader,
		ReadTimeout:       t.Read,
		WriteTimeout:      t.Write,
		IdleTimeout:       t.Idle,
		MaxHeaderBytes:    1 << 16,
	}
}

// ServeGraceful serves on ln until ctx is cancelled, then drains: new
// connections stop being accepted and in-flight requests get up to grace
// to finish before the server is closed hard. It returns nil on a clean
// drain, context.DeadlineExceeded-wrapped errors when the grace expired
// with requests still running, and the original serve error when serving
// failed for any reason other than shutdown.
func ServeGraceful(ctx context.Context, srv *http.Server, ln net.Listener, grace time.Duration) error {
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		// Serve failed before any shutdown was requested.
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(shutCtx)
	// Serve returns ErrServerClosed once Shutdown begins; reap the goroutine.
	if serr := <-errCh; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	return err
}

// ListenAndServeGraceful binds srv.Addr and runs ServeGraceful on it.
func ListenAndServeGraceful(ctx context.Context, srv *http.Server, grace time.Duration) error {
	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		return err
	}
	return ServeGraceful(ctx, srv, ln, grace)
}
