package serve_test

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"cosmodel/internal/calib"
	"cosmodel/internal/dist"
	"cosmodel/internal/experiments"
	"cosmodel/internal/serve"
	"cosmodel/internal/simstore"
	"cosmodel/internal/trace"
)

// TestRegimeShiftRecalibration is the drift e2e: the simulator runs a long
// stationary phase, then suffers a mid-run regime shift (data reads become
// slower and much burstier, and every backend's page cache halves). Two
// servers watch the same measurement stream:
//
//   - the online server has the calibration subsystem enabled and keeps
//     ingesting through the shift;
//   - the frozen baseline stops ingesting at the shift — the classical
//     "calibrate once, serve forever" deployment.
//
// Acceptance (the PR's bar): no recalibration fires across the >= 50
// stationary windows; after the shift the detector confirms drift within 5
// windows; once recalibrated, the online server's SLA-fraction MAE over the
// post-shift windows is <= 0.10 while the frozen baseline exceeds it; and
// the /calibration endpoint exposes the state transitions.
func TestRegimeShiftRecalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-driven drift e2e")
	}
	const (
		winDur         = 4.0
		warmup         = 9.0
		stationaryWins = 50
		shiftWins      = 12
	)
	simCfg := simstore.DefaultConfig()
	simCfg.DiskSampleEvery = 1
	shiftAt := warmup + stationaryWins*winDur
	endAt := shiftAt + shiftWins*winDur

	props, err := experiments.Calibrate(simCfg, 1500, 33)
	if err != nil {
		t.Fatal(err)
	}

	cl, err := simstore.New(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := trace.NewCatalog(40000, trace.WikipediaLikeSizes(), 1.2, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.PrewarmCaches(cat, 0.95); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.Generate(cat, trace.Schedule{{Rate: 300, Duration: endAt, Label: "drift"}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	cl.Inject(recs)

	mkServer := func(withCalib bool) (*serve.Server, *httptest.Server) {
		t.Helper()
		cfg := serve.DefaultConfig(props, simCfg.Devices())
		cfg.ProcsPerDevice = simCfg.ProcsPerDisk
		cfg.FrontendProcs = simCfg.Frontends * simCfg.ProcsPerFrontend
		cfg.SLAs = simCfg.SLAs
		cfg.Window = winDur
		if withCalib {
			cc := calib.DefaultConfig(simCfg.Devices())
			cfg.Calib = &cc
		}
		srv, err := serve.NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return srv, httptest.NewServer(srv.Handler())
	}
	online, onlineTS := mkServer(true)
	defer onlineTS.Close()
	frozen, frozenTS := mkServer(false)
	defer frozenTS.Close()

	ingest := func(e *serve.Engine, batch []serve.Observation) {
		t.Helper()
		if err := e.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}

	// Stationary phase: 50 windows, both servers ingesting.
	cl.RunUntil(warmup)
	prev := cl.Snapshot()
	for w := 0; w < stationaryWins; w++ {
		cl.RunUntil(warmup + float64(w+1)*winDur)
		cur := cl.Snapshot()
		win := cl.Window(prev, cur)
		prev = cur
		batch := driftObservations(win)
		if len(batch) == 0 {
			t.Fatalf("stationary window %d had no reporting devices", w)
		}
		ingest(online.Engine(), batch)
		ingest(frozen.Engine(), batch)
		if st := online.Engine().Stats(); st.Recalibrations != 0 {
			t.Fatalf("false-positive recalibration at stationary window %d", w)
		}
	}
	var calResp serve.CalibrationResponse
	getInto(t, onlineTS.URL+"/calibration", &calResp)
	if !calResp.Enabled || calResp.Recalibrations != 0 {
		t.Fatalf("stationary /calibration: %+v", calResp)
	}

	// Regime shift: data reads 2x slower with SCV 0.4 -> 1.6 on every
	// device, and every backend cache halves.
	slow := dist.NewGammaMeanSCV(16e-3, 1.6)
	for d := 0; d < simCfg.Devices(); d++ {
		if err := cl.SetDiskService(d, nil, nil, slow); err != nil {
			t.Fatal(err)
		}
	}
	for b := 0; b < simCfg.Backends; b++ {
		if err := cl.ResizeCache(b, simCfg.CacheBytes/2); err != nil {
			t.Fatal(err)
		}
	}

	// Post-shift: only the online server keeps ingesting. Frozen serves
	// from its last pre-shift operating point and the original props.
	type comparison struct{ online, frozen, observed []float64 }
	var post []comparison
	detectedAt := -1
	for w := 0; w < shiftWins; w++ {
		cl.RunUntil(shiftAt + float64(w+1)*winDur)
		cur := cl.Snapshot()
		win := cl.Window(prev, cur)
		prev = cur
		if win.Responses == 0 || win.Timeouts > 0 || win.Retries > 0 {
			continue
		}
		batch := driftObservations(win)
		ingest(online.Engine(), batch)
		if detectedAt < 0 && online.Engine().Stats().Recalibrations > 0 {
			detectedAt = w
		}
		if detectedAt < 0 || w <= detectedAt {
			continue // compare only fully post-recalibration windows
		}
		op := predictHTTP(t, onlineTS.URL)
		fp := predictHTTP(t, frozenTS.URL)
		c := comparison{}
		for i := range win.MeetFraction {
			c.observed = append(c.observed, win.MeetFraction[i])
			c.online = append(c.online, op.Predictions[i].MeetRatio)
			c.frozen = append(c.frozen, fp.Predictions[i].MeetRatio)
		}
		post = append(post, c)
	}
	if detectedAt < 0 {
		t.Fatal("drift never detected")
	}
	// Detection within 5 observation windows of the shift (0-indexed).
	if detectedAt > 4 {
		t.Errorf("drift confirmed at post-shift window %d, want within 5", detectedAt+1)
	}
	if len(post) < 4 {
		t.Fatalf("only %d post-recalibration comparison windows", len(post))
	}
	mae := func(pick func(comparison) ([]float64, []float64)) float64 {
		var sum float64
		var n int
		for _, c := range post {
			pred, obs := pick(c)
			for i := range pred {
				sum += math.Abs(pred[i] - obs[i])
				n++
			}
		}
		return sum / float64(n)
	}
	onlineMAE := mae(func(c comparison) ([]float64, []float64) { return c.online, c.observed })
	frozenMAE := mae(func(c comparison) ([]float64, []float64) { return c.frozen, c.observed })
	t.Logf("post-recalibration MAE: online %.4f, frozen baseline %.4f (%d windows, detected at window %d)",
		onlineMAE, frozenMAE, len(post), detectedAt+1)
	if onlineMAE > 0.10 {
		t.Errorf("online MAE %.4f exceeds 0.10 after recalibration", onlineMAE)
	}
	if frozenMAE <= 0.10 {
		t.Errorf("frozen baseline MAE %.4f within 0.10; the regime shift did not bite", frozenMAE)
	}
	if frozenMAE <= onlineMAE {
		t.Errorf("frozen MAE %.4f <= online MAE %.4f; recalibration did not help", frozenMAE, onlineMAE)
	}

	// The calibration state is fully visible over HTTP.
	getInto(t, onlineTS.URL+"/calibration", &calResp)
	if calResp.Recalibrations < 1 || calResp.Status == nil {
		t.Fatalf("post-shift /calibration: %+v", calResp)
	}
	if calResp.Status.LastFitSource == "" {
		t.Error("fit source missing after recalibration")
	}
	if got := calResp.DataDisk; got.Mean < 12e-3 || got.SCV < 0.8 {
		t.Errorf("served data calibration {mean %v, SCV %v} did not track the new regime", got.Mean, got.SCV)
	}
	var m serve.MetricsResponse
	getInto(t, onlineTS.URL+"/metrics", &m)
	if m.Calibration == nil || m.Recalibrations != calResp.Recalibrations {
		t.Errorf("metrics calibration block inconsistent: %+v vs %+v", m.Recalibrations, calResp.Recalibrations)
	}

	// The drift is visible through the Prometheus exposition too: the
	// labelled transition counters record at least one device entering
	// recalibration, and the engine's recalibration counter agrees with
	// the JSON view.
	samples := scrapePromText(t, onlineTS.URL)
	intoRecal := 0.0
	for key, v := range samples {
		if strings.HasPrefix(key, "cosserve_calibration_transitions_total{") &&
			strings.Contains(key, `to="recalibrating"`) {
			intoRecal += v
		}
	}
	if intoRecal < 1 {
		t.Error("no transitions into recalibrating in /metrics/prom")
	}
	if got := samples["cosserve_recalibrations_total"]; got != float64(m.Recalibrations) {
		t.Errorf("prom recalibrations %v != JSON %d", got, m.Recalibrations)
	}
}

// driftObservations converts a simulator window into wire observations
// including the raw per-class disk service samples the calibration subsystem
// feeds on.
func driftObservations(win simstore.Window) []serve.Observation {
	out := windowToObservations(win)
	for i := range out {
		d := out[i].Device
		if win.DiskSamples == nil || d >= len(win.DiskSamples) {
			continue
		}
		out[i].DiskIndexLat = win.DiskSamples[d].Index
		out[i].DiskMetaLat = win.DiskSamples[d].Meta
		out[i].DiskDataLat = win.DiskSamples[d].Data
	}
	return out
}
