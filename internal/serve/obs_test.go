package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"cosmodel/internal/core"
	"cosmodel/internal/obs"
	"cosmodel/internal/obs/promtest"
)

// scrapeProm fetches /metrics/prom, checks the content type and returns the
// parsed samples.
func scrapeProm(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics/prom: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("content type %q, want %q", ct, obs.ContentType)
	}
	samples, err := promtest.Parse(string(body))
	if err != nil {
		t.Fatalf("/metrics/prom is not valid Prometheus text format: %v\n%s", err, body)
	}
	return samples
}

func TestMetricsPromExposition(t *testing.T) {
	cfg := testConfig()
	cfg.RuntimeMetrics = true
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ingestAll(t, srv.Engine(), 50)
	for _, url := range []string{ts.URL + "/predict", ts.URL + "/predict", ts.URL + "/metrics", ts.URL + "/healthz"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", url, resp.StatusCode)
		}
	}
	// One malformed request, to move the error counter.
	resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader([]byte("{junk")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed predict: %d, want 400", resp.StatusCode)
	}

	samples := scrapeProm(t, ts.URL)
	atLeast := func(key string, min float64) {
		t.Helper()
		v, ok := samples[key]
		if !ok {
			t.Errorf("sample %q missing", key)
			return
		}
		if v < min {
			t.Errorf("%s = %v, want >= %v", key, v, min)
		}
	}
	// Engine counters: 3 SLAs per predict, second predict served from cache
	// but still counted as predictions. The whole SLA grid is one cache
	// entry (one batched evaluation), so the first predict is one miss and
	// the second one hit.
	atLeast("cosserve_predictions_total", 6)
	atLeast("cosserve_cache_misses", 1)
	atLeast("cosserve_cache_hits", 1)
	atLeast("cosserve_cache_entries", 1)
	// Model-evaluation spans: the cold predict ran one batched CDF span
	// covering all three SLAs.
	atLeast(`cosserve_model_ops_total{op="cdf_batch"}`, 1)
	atLeast(`cosserve_model_op_seconds_count{op="cdf_batch"}`, 1)
	atLeast("cosserve_model_inversion_nodes", 1)
	// Pool gauges exist (busy is 0 at scrape time).
	atLeast("cosserve_pool_workers", 1)
	if _, ok := samples["cosserve_pool_busy"]; !ok {
		t.Error("cosserve_pool_busy missing")
	}
	// Per-endpoint self-latency: two /predict requests were timed.
	atLeast(`cosserve_http_request_seconds_count{path="/predict"}`, 2)
	atLeast(`cosserve_http_request_seconds{path="/predict",quantile="0.99"}`, 0)
	// HTTP counters.
	atLeast("cosserve_http_queries_served_total", 2)
	atLeast("cosserve_http_bad_requests_total", 1)
	// Runtime gauges were requested.
	atLeast("go_goroutines", 1)

	// The JSON view and the registry must agree on the shared counters.
	if st := srv.Engine().Stats(); float64(st.Predictions) != samples["cosserve_predictions_total"] {
		t.Errorf("JSON predictions %d != prom %v", st.Predictions, samples["cosserve_predictions_total"])
	}
}

func TestMetricsPromMethodNotAllowed(t *testing.T) {
	srv, err := NewServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/metrics/prom", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics/prom: %d, want 405", resp.StatusCode)
	}
}

func TestPprofGate(t *testing.T) {
	get := func(cfg Config) int {
		srv, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		resp, err := http.Get(ts.URL + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(testConfig()); code != http.StatusNotFound {
		t.Errorf("pprof disabled: /debug/pprof/ = %d, want 404", code)
	}
	cfg := testConfig()
	cfg.Pprof = true
	if code := get(cfg); code != http.StatusOK {
		t.Errorf("pprof enabled: /debug/pprof/ = %d, want 200", code)
	}
}

// TestObserverChainPreserved checks the engine's instrumentation chains —
// rather than replaces — a user-installed evaluation Observer.
func TestObserverChainPreserved(t *testing.T) {
	var events atomic.Int64
	cfg := testConfig()
	cfg.Opts.Observer = func(core.EvalEvent) { events.Add(1) }
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, eng, 50)
	if _, err := eng.Predict(nil); err != nil {
		t.Fatal(err)
	}
	if events.Load() == 0 {
		t.Error("user Observer never fired through the instrumentation chain")
	}
}

// TestIngestedLatencySelfMeasurement feeds raw latencies through /ingest and
// checks the self-measured percentiles agree between the JSON metrics and
// the Prometheus exposition.
func TestIngestedLatencySelfMeasurement(t *testing.T) {
	srv, err := NewServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	lats := make([]float64, 500)
	for i := range lats {
		lats[i] = 0.001 + 0.0001*float64(i) // 1ms .. ~51ms ramp
	}
	devices := srv.Engine().Config().Devices
	ingestHTTP(t, ts.URL, 50, devices, lats)
	want := uint64(devices * len(lats)) // every device reports the same batch

	var m MetricsResponse
	if resp := getJSON(t, ts.URL+"/metrics", &m); resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if m.ObservedCount != want {
		t.Fatalf("observed count %d, want %d", m.ObservedCount, want)
	}
	samples := scrapeProm(t, ts.URL)
	if got := samples["cosserve_ingested_latency_seconds_count"]; got != float64(want) {
		t.Errorf("prom ingested count %v, want %d", got, want)
	}
	for q, want := range map[string]float64{"0.5": m.ObservedP50, "0.95": m.ObservedP95, "0.99": m.ObservedP99} {
		if got := samples[`cosserve_ingested_latency_seconds{quantile="`+q+`"}`]; got != want {
			t.Errorf("prom q%s = %v, JSON reports %v", q, got, want)
		}
	}
}
