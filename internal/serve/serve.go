// Package serve turns the analytic model into a long-running service: an
// online SLA-prediction and admission-control server in the spirit of the
// paper's §IV online-calibration loop. Storage backends stream per-device
// observations (request counts, cache hit/miss counters, disk busy time,
// response latencies) into sliding windows; the server continuously
// re-derives each device's core.OnlineMetrics and answers
// percentile-prediction (/predict) and admission-control (/advise) queries
// from a concurrent prediction engine.
//
// Because Laplace-transform inversion is the hot path (~ms per operating
// point), the engine memoizes predictions in a keyed, generation-aware
// cache of quantized operating points with singleflight deduplication:
// concurrent identical queries compute once, and repeat queries at a
// near-identical operating point are served from memory.
//
// The service degrades gracefully rather than piling up work: an operating
// point with no steady state (core.ErrOverload) is a structured 200
// response with meetRatio 0 and a saturated flag; malformed input is a 400;
// and a bounded in-flight limit sheds excess prediction load with 503.
package serve

import (
	"errors"
	"fmt"
	"log"
	"time"

	"cosmodel/internal/calib"
	"cosmodel/internal/core"
)

// Service errors.
var (
	// ErrBadConfig reports an invalid service configuration.
	ErrBadConfig = errors.New("serve: invalid configuration")
	// ErrNotReady reports that no observations have been ingested yet, so
	// there is no operating point to predict from.
	ErrNotReady = errors.New("serve: no observations ingested yet")
	// ErrBadQuery reports an invalid prediction or advice query.
	ErrBadQuery = errors.New("serve: invalid query")
)

// Config describes a cosserve instance. Start from DefaultConfig.
type Config struct {
	// Props are the benchmarked device properties (the paper's §IV-A
	// offline calibration), shared by all devices.
	Props core.DeviceProperties
	// Opts select model variants; the zero value is the paper's model.
	Opts core.Options
	// Devices is the number of storage devices reporting observations.
	Devices int
	// ProcsPerDevice is Nbe, the process count per device.
	ProcsPerDevice int
	// FrontendProcs is the frontend process count across the tier.
	FrontendProcs int
	// SLAs are the default SLA bounds (seconds) answered by /predict when
	// a query names none.
	SLAs []float64
	// Window is the sliding-window span in seconds of observation
	// coverage: observations are dropped once the window holds newer
	// coverage spanning at least this long.
	Window float64
	// MaxObservations additionally bounds the retained observations per
	// device (memory bound when clients report very fine-grained
	// intervals).
	MaxObservations int
	// MaxInflight bounds concurrently evaluated /predict and /advise
	// queries; excess queries are shed with 503.
	MaxInflight int
	// CacheEntries bounds the memoized prediction cache.
	CacheEntries int
	// IngestStripes is the lock-stripe count of the observation state
	// table. 0 picks an automatic count from GOMAXPROCS; 1 is the
	// single-lock layout. Striping bounds ingest-path lock contention when
	// many monitoring agents report concurrently.
	IngestStripes int
	// IngestQueue bounds the calibration hand-off ring in batches: accepted
	// HTTP ingest batches are queued for the drift controller instead of
	// feeding it inline, so ingest latency never includes calibration work.
	// When the ring is full the batch still updates the state table but is
	// dropped from calibration feed (counted, surfaced in /metrics). 0 takes
	// the default.
	IngestQueue int
	// Calib enables the online calibration and drift-detection subsystem:
	// when non-nil, every accepted observation also feeds the drift
	// controller, and confirmed drift re-solves the device properties and
	// swaps them into the engine with a cache-generation bump. The
	// controller's Devices field is overridden to Config.Devices. nil
	// disables the subsystem (the seed behaviour: properties are fixed for
	// the engine's lifetime unless Recalibrate is called explicitly).
	Calib *calib.Config
	// ShardMode additionally mounts the cluster-internal /shard/* endpoints
	// (partial-CDF evaluation, shard state, cache-generation sync) used by
	// the cosrouter fan-out tier. Off by default: a standalone cosserve has
	// no business exposing partial evaluations (cosserve -shard).
	ShardMode bool
	// Pprof mounts the net/http/pprof profiling endpoints under
	// /debug/pprof/ on the service handler (cosserve -obs-pprof).
	Pprof bool
	// RuntimeMetrics registers Go runtime gauges (goroutines, heap, GC
	// activity) on the engine's metrics registry, surfaced by /metrics/prom
	// (cosserve -obs-runtime).
	RuntimeMetrics bool
	// Now supplies wall-clock time; nil means time.Now. Tests inject
	// fakes to control calibration-age reporting.
	Now func() time.Time
	// Logf receives diagnostic log lines (recovered panics, failed
	// response writes); nil means the standard library logger. Tests
	// inject collectors.
	Logf func(format string, args ...any)
}

// DefaultConfig returns a serving configuration for a deployment of the
// given size with sensible operational bounds.
func DefaultConfig(props core.DeviceProperties, devices int) Config {
	return Config{
		Props:           props,
		Devices:         devices,
		ProcsPerDevice:  1,
		FrontendProcs:   12,
		SLAs:            []float64{0.010, 0.050, 0.100},
		Window:          60,
		MaxObservations: 128,
		MaxInflight:     64,
		CacheEntries:    4096,
		IngestQueue:     256,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Props.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	switch {
	case c.Devices < 1:
		return fmt.Errorf("%w: need at least one device", ErrBadConfig)
	case c.ProcsPerDevice < 1:
		return fmt.Errorf("%w: need at least one process per device", ErrBadConfig)
	case c.FrontendProcs < 1:
		return fmt.Errorf("%w: need at least one frontend process", ErrBadConfig)
	case len(c.SLAs) == 0:
		return fmt.Errorf("%w: at least one default SLA required", ErrBadConfig)
	case c.Window <= 0:
		return fmt.Errorf("%w: window must be positive", ErrBadConfig)
	case c.MaxObservations < 1:
		return fmt.Errorf("%w: need at least one retained observation", ErrBadConfig)
	case c.MaxInflight < 1:
		return fmt.Errorf("%w: need at least one in-flight slot", ErrBadConfig)
	case c.CacheEntries < 1:
		return fmt.Errorf("%w: need at least one cache entry", ErrBadConfig)
	case c.IngestStripes < 0:
		return fmt.Errorf("%w: ingest stripes must be non-negative", ErrBadConfig)
	case c.IngestQueue < 0:
		return fmt.Errorf("%w: ingest queue must be non-negative", ErrBadConfig)
	}
	for _, s := range c.SLAs {
		if s <= 0 {
			return fmt.Errorf("%w: SLA %v must be positive", ErrBadConfig, s)
		}
	}
	if c.Calib != nil {
		cc := *c.Calib
		cc.Devices = c.Devices
		if err := cc.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	}
	return nil
}

func (c Config) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}
