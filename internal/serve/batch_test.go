package serve

import (
	"context"
	"math"
	"testing"

	"cosmodel/internal/core"
)

// TestPredictGridMatchesScalarEvaluate pins the batched /predict path
// against the scalar per-SLA cache path: the whole-grid evaluation must
// produce the same fractions the admission probes compute one SLA at a
// time over the same snapshot (both go through the deduplicated model
// build, so agreement is exact up to root-finder-free arithmetic noise).
func TestPredictGridMatchesScalarEvaluate(t *testing.T) {
	eng, err := NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, eng, 50)
	preds, err := eng.Predict(nil)
	if err != nil {
		t.Fatal(err)
	}
	ms, key, err := eng.state.snapshotKeyed()
	if err != nil {
		t.Fatal(err)
	}
	for i, sla := range eng.cfg.SLAs {
		v, _, err := eng.evaluate(context.Background(), ms, key, sla, 1)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(preds[i].MeetRatio - v.p); d > 1e-12 {
			t.Errorf("sla %g: grid %v, scalar %v (|Δ| = %g)", sla, preds[i].MeetRatio, v.p, d)
		}
	}
}

// TestPredictGridCaching pins the one-entry-per-grid contract: the first
// predict misses once, a repeat predict of the same SLA list is one hit,
// and a different SLA list is a separate entry.
func TestPredictGridCaching(t *testing.T) {
	eng, err := NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, eng, 50)
	if _, err := eng.Predict(nil); err != nil {
		t.Fatal(err)
	}
	s0 := eng.cache.stats()
	if s0.Misses != 1 || s0.Hits != 0 {
		t.Fatalf("cold grid: %d misses, %d hits, want 1, 0", s0.Misses, s0.Hits)
	}
	again, err := eng.Predict(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range again {
		if !p.Cached {
			t.Errorf("repeat grid prediction not cached: %+v", p)
		}
	}
	s1 := eng.cache.stats()
	if s1.Misses != 1 || s1.Hits != 1 {
		t.Fatalf("warm grid: %d misses, %d hits, want 1, 1", s1.Misses, s1.Hits)
	}
	if _, err := eng.Predict([]float64{0.02, 0.07}); err != nil {
		t.Fatal(err)
	}
	if s2 := eng.cache.stats(); s2.Misses != 2 {
		t.Fatalf("different grid: %d misses, want 2", s2.Misses)
	}
}

// TestPredictCachedAllocs pins the warm-path allocation budget: a cached
// grid prediction is a memoized-snapshot lookup plus one cache hit, with
// no model build and no inversion.
func TestPredictCachedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc counts are not meaningful")
	}
	eng, err := NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, eng, 50)
	ctx := context.Background()
	if _, err := eng.PredictContext(ctx, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := eng.PredictContext(ctx, nil); err != nil {
			t.Fatal(err)
		}
	})
	// Grid key build, context plumbing, output slice: fixed small cost.
	if allocs > 30 {
		t.Errorf("cached grid predict allocates %v objects per run", allocs)
	}
}

// TestAdviseValueSearchMatchesBoolean pins the margin-aware admission
// search against the boolean legacy search on the same engine state: both
// must land within the search tolerance of each other, and the advice must
// stay internally consistent.
func TestAdviseValueSearchMatchesBoolean(t *testing.T) {
	eng, err := NewEngine(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, eng, 50)
	const sla, target = 0.05, 0.9
	adv, err := eng.Advise(sla, target)
	if err != nil {
		t.Fatal(err)
	}
	if adv.MaxAdmissibleRate <= 0 {
		t.Fatalf("no admissible rate at a moderate load: %+v", adv)
	}
	ms, key, err := eng.state.snapshotKeyed()
	if err != nil {
		t.Fatal(err)
	}
	current := adv.CurrentRate
	meets := func(ctx context.Context, rate float64) (bool, error) {
		v, _, err := eng.evaluate(ctx, ms, key, sla, rate/current)
		if err != nil {
			return false, err
		}
		return !v.saturated && v.p >= target, nil
	}
	boolean, err := core.MaxRateWhereContext(context.Background(), meets, current/64, current/200)
	if err != nil {
		t.Fatal(err)
	}
	// Both searches return an actually-probed admissible rate within tol
	// of the threshold; the probe quantization (cache keys round to 3
	// significant digits) adds at most ~0.5% of slop on top.
	tol := current/200 + 0.01*current
	if d := math.Abs(adv.MaxAdmissibleRate - boolean); d > tol {
		t.Errorf("value search %v vs boolean search %v (|Δ| = %g > %g)",
			adv.MaxAdmissibleRate, boolean, d, tol)
	}
}
