package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"net/http/pprof"
	"net/url"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"cosmodel/internal/calib"
	"cosmodel/internal/dist"
	"cosmodel/internal/ingest"
	"cosmodel/internal/numeric"
	"cosmodel/internal/obs"
	"cosmodel/internal/parallel"
)

// statusClientClosedRequest is the non-standard (nginx-originated) status
// recorded when the client abandoned the request before the evaluation
// finished. Nothing is actually written to the closed connection; the code
// exists for accounting and logs.
const statusClientClosedRequest = 499

// maxBodyBytes bounds request bodies: the largest legitimate payload (a
// full ingest batch) is a few hundred KiB; anything beyond 1 MiB is either
// a mistake or an attack, and reading it unbounded would let one client
// exhaust memory.
const maxBodyBytes = 1 << 20

// Server is the HTTP front of the prediction engine. Create with NewServer
// and mount Handler on any http server. Its counters live on the engine's
// metrics registry (rendered at /metrics/prom) while /metrics keeps the
// original JSON shape.
type Server struct {
	engine *Engine
	// sem is the bounded work queue for model-evaluating endpoints: a
	// slot per allowed in-flight query, nothing queued behind it. A full
	// pool sheds with 503 instead of accumulating goroutines.
	sem   chan struct{}
	start time.Time

	// latAll accumulates every ingested latency for the lifetime
	// percentile diagnostics in /metrics and the self-measured quantiles
	// in /metrics/prom.
	latAll *obs.Histogram

	inflight    atomic.Int64
	shed        *obs.Counter
	badRequests *obs.Counter
	served      *obs.Counter

	clientGone  *obs.Counter // requests abandoned by the client mid-evaluation
	timeouts    *obs.Counter // evaluations that exceeded the per-call budget
	numerical   *obs.Counter // evaluations rejected as numerically poisoned
	panics      *obs.Counter // panics recovered (handlers and pooled tasks)
	encodeFails *obs.Counter // JSON responses that failed to encode/write
	tooLarge    *obs.Counter // request bodies over maxBodyBytes
	unsupMedia  *obs.Counter // ingest bodies with an unsupported content type
}

// NewServer builds a serving instance from the configuration.
func NewServer(cfg Config) (*Server, error) {
	eng, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{
		engine: eng,
		sem:    make(chan struct{}, cfg.MaxInflight),
		start:  cfg.now(),
	}
	reg := eng.Registry()
	s.latAll = reg.Histogram("cosserve_ingested_latency_seconds",
		"Response latencies reported by the storage backends via /ingest.", nil)
	s.shed = reg.Counter("cosserve_http_shed_total",
		"Queries shed with 503 because the in-flight limit was reached.", nil)
	s.badRequests = reg.Counter("cosserve_http_bad_requests_total",
		"Requests rejected as malformed (400).", nil)
	s.served = reg.Counter("cosserve_http_queries_served_total",
		"Prediction and advice queries answered successfully.", nil)
	s.clientGone = reg.Counter("cosserve_http_client_gone_total",
		"Requests abandoned by the client mid-evaluation.", nil)
	s.timeouts = reg.Counter("cosserve_eval_timeouts_total",
		"Evaluations that exceeded the per-call budget.", nil)
	s.numerical = reg.Counter("cosserve_numerical_failures_total",
		"Evaluations rejected as numerically poisoned.", nil)
	s.panics = reg.Counter("cosserve_panics_recovered_total",
		"Panics recovered in handlers and pooled evaluation tasks.", nil)
	s.encodeFails = reg.Counter("cosserve_response_encode_failures_total",
		"JSON responses that failed to encode or write.", nil)
	s.tooLarge = reg.Counter("cosserve_oversized_bodies_total",
		"Request bodies rejected for exceeding the size limit.", nil)
	s.unsupMedia = reg.Counter("cosserve_unsupported_media_total",
		"Ingest requests rejected for an unsupported content type (415).", nil)
	reg.GaugeFunc("cosserve_http_inflight",
		"Model-evaluating queries currently in flight.", nil,
		func() float64 { return float64(s.inflight.Load()) })
	reg.GaugeFunc("cosserve_uptime_seconds",
		"Seconds since the server started.", nil,
		func() float64 { return s.engine.Config().now().Sub(s.start).Seconds() })
	if cfg.RuntimeMetrics {
		obs.RegisterRuntimeMetrics(reg)
	}
	return s, nil
}

// Engine exposes the underlying prediction engine (benchmarks and embedders
// bypass HTTP through it).
func (s *Server) Engine() *Engine { return s.engine }

// Close stops the engine's background calibration feeder after draining
// queued batches. Call after the HTTP server has shut down.
func (s *Server) Close() { s.engine.Close() }

// Handler returns the route table:
//
//	POST /ingest   — absorb per-device observations
//	GET/POST /predict — percentile predictions at the current operating point
//	GET/POST /advise  — admission control: max admissible rate, headroom
//	GET  /calibration — online calibration and drift-detection state
//	GET  /metrics  — internal counters (JSON)
//	GET  /metrics/prom — the metrics registry in Prometheus text format
//	GET  /healthz  — liveness + readiness, per-component state
//
// With Config.ShardMode the cluster-internal shard endpoints are added:
//
//	POST /shard/partial    — partial-CDF evaluation over a device subset
//	GET  /shard/state      — generation, ingest and rate state for the prober
//	POST /shard/invalidate — raise the cache generation (gossip sync)
//
// With Config.Pprof the net/http/pprof profiling endpoints are additionally
// mounted under /debug/pprof/.
//
// Every route runs behind the panic-recovery middleware: a panicking
// handler (or a panic captured inside the pooled model evaluation and
// re-surfaced) is logged with its stack, counted, and answered with a 500
// JSON body instead of killing the connection served by this goroutine.
// Every named route is also timed into a per-endpoint latency histogram, so
// the server reports its own p50/p95/p99 next to the percentiles it
// predicts.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", s.timed("/ingest", s.handleIngest))
	mux.HandleFunc("/predict", s.timed("/predict", s.handlePredict))
	mux.HandleFunc("/advise", s.timed("/advise", s.handleAdvise))
	mux.HandleFunc("/calibration", s.timed("/calibration", s.handleCalibration))
	mux.HandleFunc("/metrics", s.timed("/metrics", s.handleMetrics))
	mux.HandleFunc("/metrics/prom", s.timed("/metrics/prom", s.handleMetricsProm))
	mux.HandleFunc("/healthz", s.timed("/healthz", s.handleHealthz))
	if s.engine.Config().ShardMode {
		mux.HandleFunc("/shard/partial", s.timed("/shard/partial", s.handleShardPartial))
		mux.HandleFunc("/shard/state", s.timed("/shard/state", s.handleShardState))
		mux.HandleFunc("/shard/invalidate", s.timed("/shard/invalidate", s.handleShardInvalidate))
	}
	if s.engine.Config().Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.recoverMiddleware(mux)
}

// timed wraps a handler with a per-endpoint self-latency histogram.
func (s *Server) timed(path string, h http.HandlerFunc) http.HandlerFunc {
	lat := s.engine.Registry().Histogram("cosserve_http_request_seconds",
		"Self-measured request-handling latency by endpoint.", obs.Labels{"path": path})
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		defer func() { lat.Observe(time.Since(start).Seconds()) }()
		h(w, r)
	}
}

// recoverMiddleware converts handler panics into logged, counted 500s.
// http.ErrAbortHandler is re-raised: it is the sanctioned way to abort a
// response and net/http suppresses its stack trace.
func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if err, ok := rec.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(rec)
			}
			s.panics.Inc()
			s.logf("serve: panic in %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			s.writeJSON(w, http.StatusInternalServerError,
				errorBody{Error: "internal error (panic recovered)"})
		}()
		next.ServeHTTP(w, r)
	})
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

// writeJSON writes v as an indented JSON response. Encode failures (an
// unmarshalable value, or a client that vanished mid-write) are counted and
// logged rather than silently dropped: a response the client never saw is
// an operational signal, not a non-event.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.encodeFails.Inc()
		s.logf("serve: writing %d response: %v", status, err)
	}
}

func (s *Server) logf(format string, args ...any) {
	s.engine.Config().logf(format, args...)
}

func (s *Server) badRequest(w http.ResponseWriter, err error) {
	if errors.Is(err, errBodyTooLarge) {
		s.tooLarge.Inc()
		s.writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: err.Error()})
		return
	}
	s.badRequests.Inc()
	s.writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
}

// acquire takes an in-flight slot, or sheds the request with 503.
func (s *Server) acquire(w http.ResponseWriter) bool {
	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		return true
	default:
		s.shed.Inc()
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusServiceUnavailable,
			errorBody{Error: "prediction queue full, load shed"})
		return false
	}
}

func (s *Server) release() {
	s.inflight.Add(-1)
	<-s.sem
}

// ---------------------------------------------------------------------------
// /ingest

// IngestRequest is the /ingest payload.
type IngestRequest struct {
	Observations []Observation `json:"observations"`
}

// IngestResponse acknowledges an accepted batch.
type IngestResponse struct {
	Accepted int `json:"accepted"`
}

// IngestErrorBody is the structured /ingest error payload in NDJSON mode:
// chunks emitted before the failure stay absorbed (Accepted), and Line names
// the offending input line when the failure was per-line.
type IngestErrorBody struct {
	Error    string `json:"error"`
	Accepted int    `json:"accepted"`
	Line     int    `json:"line,omitempty"`
}

// handleIngest negotiates the batch encoding by content type:
// application/json is the original array payload (absorbed all-or-nothing),
// application/x-ndjson streams one observation per line in pooled chunks
// (earlier chunks stay absorbed when a later line fails). An absent content
// type defaults to JSON for compatibility with bare clients; anything else
// is a 415 naming the supported types. Both modes enforce the body limit
// (413) and feed calibration through the asynchronous hand-off ring.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	mt := ingest.ContentTypeJSON
	if ct := r.Header.Get("Content-Type"); ct != "" {
		parsed, _, err := mime.ParseMediaType(ct)
		if err != nil {
			s.unsupportedMedia(w, ct)
			return
		}
		mt = parsed
	}
	switch mt {
	case ingest.ContentTypeJSON:
		s.ingestJSON(w, r)
	case ingest.ContentTypeNDJSON:
		s.ingestNDJSON(w, r)
	default:
		s.unsupportedMedia(w, mt)
	}
}

func (s *Server) unsupportedMedia(w http.ResponseWriter, ct string) {
	s.unsupMedia.Inc()
	s.writeJSON(w, http.StatusUnsupportedMediaType, errorBody{
		Error: fmt.Sprintf("unsupported content type %q: use %s or %s",
			ct, ingest.ContentTypeJSON, ingest.ContentTypeNDJSON)})
}

func (s *Server) ingestJSON(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if err := decodeStrict(w, r, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	if err := s.engine.IngestQueued(req.Observations); err != nil {
		s.badRequest(w, err)
		return
	}
	s.observeLatencies(req.Observations)
	s.writeJSON(w, http.StatusOK, IngestResponse{Accepted: len(req.Observations)})
}

func (s *Server) ingestNDJSON(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	accepted, err := ingest.DecodeNDJSON(body, s.engine.Config().Devices, 0,
		func(chunk []Observation) error {
			if err := s.engine.IngestQueued(chunk); err != nil {
				return err
			}
			s.observeLatencies(chunk)
			return nil
		})
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.tooLarge.Inc()
			s.writeJSON(w, http.StatusRequestEntityTooLarge, IngestErrorBody{
				Error:    fmt.Sprintf("body exceeds %d bytes", mbe.Limit),
				Accepted: accepted})
			return
		}
		s.badRequests.Inc()
		resp := IngestErrorBody{Error: err.Error(), Accepted: accepted}
		var le *ingest.LineError
		if errors.As(err, &le) {
			resp.Line = le.Line
		}
		s.writeJSON(w, http.StatusBadRequest, resp)
		return
	}
	s.writeJSON(w, http.StatusOK, IngestResponse{Accepted: accepted})
}

func (s *Server) observeLatencies(batch []Observation) {
	for _, o := range batch {
		for _, l := range o.Latencies {
			s.latAll.Observe(l)
		}
	}
}

// ---------------------------------------------------------------------------
// /predict

// PredictRequest is the /predict payload; GET requests pass the bounds as
// ?sla=0.01,0.05 instead. Empty bounds mean the configured defaults. A
// non-nil Coded spec (GET: ?codedN=6&codedK=4[&codedHedge=1&codedDelay=Δ])
// additionally answers the same bounds for (n,k) coded reads; a non-nil
// Write spec (GET: ?writeN=3&writeW=2) additionally answers them for
// w-of-n quorum PUTs. Tenant (GET: ?tenant=gold) annotates the answer with
// that class's windowed rates — the predictions themselves are evaluated at
// the shared aggregate operating point, because the FCFS queues every class
// shares serve all tenants the same latency distribution.
type PredictRequest struct {
	SLAs   []float64      `json:"slas"`
	Coded  *CodedReadSpec `json:"coded,omitempty"`
	Write  *WriteSpec     `json:"write,omitempty"`
	Tenant string         `json:"tenant,omitempty"`
}

// CodedReadBlock is the coded-read section of a /predict answer: the
// order-statistic model's predictions for the requested stripe shape.
type CodedReadBlock struct {
	Spec        CodedReadSpec `json:"spec"`
	Predictions []Prediction  `json:"predictions"`
	Saturated   bool          `json:"saturated"`
}

// WriteBlock is the PUT section of a /predict answer: the quorum model's
// predictions for the requested replication policy.
type WriteBlock struct {
	Spec        WriteSpec    `json:"spec"`
	Predictions []Prediction `json:"predictions"`
	Saturated   bool         `json:"saturated"`
}

// PredictResponse carries one prediction per requested SLA bound.
type PredictResponse struct {
	Predictions []Prediction `json:"predictions"`
	// CodedRead carries the coded-read predictions when the query named a
	// stripe shape.
	CodedRead *CodedReadBlock `json:"codedRead,omitempty"`
	// Write carries the PUT quorum predictions when the query named a
	// replication policy.
	Write *WriteBlock `json:"write,omitempty"`
	// Tenant carries the named tenant class's windowed rates.
	Tenant *TenantStats `json:"tenant,omitempty"`
	// Saturated aggregates the per-prediction flags: the current
	// operating point has no steady state.
	Saturated bool `json:"saturated"`
	// TotalRate is the aggregate request rate of the current window and
	// CalibrationAge the seconds since the last ingest.
	TotalRate      float64 `json:"totalRate"`
	CalibrationAge float64 `json:"calibrationAgeSeconds"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		slas, err := parseFloats(q.Get("sla"))
		if err != nil {
			s.badRequest(w, err)
			return
		}
		req.SLAs = slas
		if req.Coded, err = parseCodedParams(q); err != nil {
			s.badRequest(w, err)
			return
		}
		if req.Write, err = parseWriteParams(q); err != nil {
			s.badRequest(w, err)
			return
		}
		req.Tenant = strings.TrimSpace(q.Get("tenant"))
	case http.MethodPost:
		if err := decodeStrict(w, r, &req); err != nil {
			s.badRequest(w, err)
			return
		}
	default:
		s.writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET or POST required"})
		return
	}
	if !s.acquire(w) {
		return
	}
	defer s.release()
	preds, err := s.engine.PredictContext(r.Context(), req.SLAs)
	if err != nil {
		s.queryError(w, r, err)
		return
	}
	resp := PredictResponse{Predictions: preds}
	if req.Coded != nil {
		coded, err := s.engine.PredictCodedContext(r.Context(), *req.Coded, req.SLAs)
		if err != nil {
			s.queryError(w, r, err)
			return
		}
		blk := &CodedReadBlock{Spec: *req.Coded, Predictions: coded}
		for _, p := range coded {
			blk.Saturated = blk.Saturated || p.Saturated
		}
		resp.CodedRead = blk
	}
	if req.Write != nil {
		wr, err := s.engine.PredictWriteContext(r.Context(), *req.Write, req.SLAs)
		if err != nil {
			s.queryError(w, r, err)
			return
		}
		blk := &WriteBlock{Spec: *req.Write, Predictions: wr}
		for _, p := range wr {
			blk.Saturated = blk.Saturated || p.Saturated
		}
		resp.Write = blk
	}
	if req.Tenant != "" {
		ts, err := s.engine.TenantStats(req.Tenant)
		if err != nil {
			s.queryError(w, r, err)
			return
		}
		resp.Tenant = &ts
	}
	st := s.engine.Stats()
	resp.TotalRate = st.TotalRate
	resp.CalibrationAge = st.CalibrationAge
	for _, p := range preds {
		resp.Saturated = resp.Saturated || p.Saturated
	}
	s.served.Inc()
	s.writeJSON(w, http.StatusOK, resp)
}

// ---------------------------------------------------------------------------
// /advise

// AdviseRequest is the /advise payload; GET passes ?sla=0.05&target=0.9,
// plus the optional codedN/codedK/codedHedge/codedDelay stripe shape. A
// non-empty Tenants map (GET: ?tenants=gold:3,bronze:1) switches to
// weighted multi-tenant admission: the answer adds the per-class allocation
// that sheds the cheapest tenant first. Tenant (GET: ?tenant=gold) is the
// single-tenant shorthand for Tenants{gold: 1}.
type AdviseRequest struct {
	SLA     float64            `json:"sla"`
	Target  float64            `json:"target"`
	Coded   *CodedReadSpec     `json:"coded,omitempty"`
	Tenant  string             `json:"tenant,omitempty"`
	Tenants map[string]float64 `json:"tenants,omitempty"`
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	var req AdviseRequest
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		var err error
		if req.SLA, err = parseFloat(q.Get("sla")); err != nil {
			s.badRequest(w, fmt.Errorf("sla: %w", err))
			return
		}
		if req.Target, err = parseFloat(q.Get("target")); err != nil {
			s.badRequest(w, fmt.Errorf("target: %w", err))
			return
		}
		if req.Coded, err = parseCodedParams(q); err != nil {
			s.badRequest(w, err)
			return
		}
		if req.Tenants, err = parseTenantWeights(q.Get("tenants")); err != nil {
			s.badRequest(w, err)
			return
		}
		req.Tenant = strings.TrimSpace(q.Get("tenant"))
	case http.MethodPost:
		if err := decodeStrict(w, r, &req); err != nil {
			s.badRequest(w, err)
			return
		}
	default:
		s.writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET or POST required"})
		return
	}
	if req.Tenant != "" && req.Tenants == nil {
		req.Tenants = map[string]float64{req.Tenant: 1}
	}
	if !s.acquire(w) {
		return
	}
	defer s.release()
	if len(req.Tenants) > 0 {
		adv, err := s.engine.AdviseTenantsContext(r.Context(), req.SLA, req.Target, req.Tenants, req.Coded)
		if err != nil {
			s.queryError(w, r, err)
			return
		}
		s.served.Inc()
		s.writeJSON(w, http.StatusOK, adv)
		return
	}
	var adv Advice
	var err error
	if req.Coded != nil {
		adv, err = s.engine.AdviseCodedContext(r.Context(), *req.Coded, req.SLA, req.Target)
	} else {
		adv, err = s.engine.AdviseContext(r.Context(), req.SLA, req.Target)
	}
	if err != nil {
		s.queryError(w, r, err)
		return
	}
	s.served.Inc()
	s.writeJSON(w, http.StatusOK, adv)
}

// queryError maps engine errors to HTTP statuses. Invalid queries are 400;
// asking before any ingest is 409 (the client did nothing malformed; the
// server just has no operating point yet). Degradation paths each get a
// distinct, accounted answer:
//
//   - the client hung up mid-evaluation → 499 (nothing readable is
//     written; the status exists for logs and counters),
//   - the per-call evaluation budget (Opts.EvalTimeout) expired → 503 with
//     Retry-After: the server is temporarily too slow, not broken,
//   - the inversion was numerically poisoned and every fallback failed →
//     500 with the structured reason (never a NaN in a 200 body),
//   - a panic captured inside the pooled evaluation → 500, counted with
//     the handler-level panics.
func (s *Server) queryError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, ErrBadQuery):
		s.badRequest(w, err)
	case errors.Is(err, ErrNotReady):
		s.writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
	case isContextErr(err) && r.Context().Err() != nil:
		s.clientGone.Inc()
		s.writeJSON(w, statusClientClosedRequest, errorBody{Error: "client closed request"})
	case isContextErr(err):
		s.timeouts.Inc()
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusServiceUnavailable,
			errorBody{Error: "evaluation budget exceeded: " + err.Error()})
	case errors.Is(err, numeric.ErrNumerical):
		s.numerical.Inc()
		s.writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	case parallel.IsPanic(err):
		s.panics.Inc()
		s.logf("serve: panic inside model evaluation: %v", err)
		s.writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	default:
		s.writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// ---------------------------------------------------------------------------
// /calibration

// DistSummary describes one served service-time distribution: its mean and
// squared coefficient of variation, the two moments the model consumes.
type DistSummary struct {
	Mean float64 `json:"mean"`
	SCV  float64 `json:"scv"`
}

func summarize(d dist.Distribution) DistSummary {
	s := DistSummary{Mean: d.Mean()}
	if s.Mean > 0 {
		s.SCV = d.Variance() / (s.Mean * s.Mean)
	}
	return s
}

// CalibrationResponse is the /calibration payload: the currently served
// per-class calibration and — when the online subsystem is enabled — the
// full drift-detection status.
type CalibrationResponse struct {
	// Enabled reports whether the online calibration subsystem is running.
	Enabled bool `json:"enabled"`
	// Recalibrations counts property swaps applied since startup.
	Recalibrations uint64 `json:"recalibrations"`
	// IndexDisk, MetaDisk, DataDisk summarize the currently served
	// per-operation-class disk service-time calibration.
	IndexDisk DistSummary `json:"indexDisk"`
	MetaDisk  DistSummary `json:"metaDisk"`
	DataDisk  DistSummary `json:"dataDisk"`
	// Status is the drift controller's state; omitted when disabled.
	Status *calib.Status `json:"status,omitempty"`
}

func (s *Server) handleCalibration(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET required"})
		return
	}
	props := s.engine.Props()
	resp := CalibrationResponse{
		Recalibrations: s.engine.Stats().Recalibrations,
		IndexDisk:      summarize(props.IndexDisk),
		MetaDisk:       summarize(props.MetaDisk),
		DataDisk:       summarize(props.DataDisk),
	}
	if st, ok := s.engine.CalibrationStatus(); ok {
		resp.Enabled = true
		resp.Status = &st
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// ---------------------------------------------------------------------------
// /metrics and /healthz

// MetricsResponse exposes the service's internal counters.
type MetricsResponse struct {
	EngineStats
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Inflight      int64   `json:"inflight"`
	Shed          uint64  `json:"shedRequests"`
	BadRequests   uint64  `json:"badRequests"`
	QueriesServed uint64  `json:"queriesServed"`
	// Degradation accounting: each counter is one failure path of the
	// robustness design (see queryError and recoverMiddleware).
	ClientGone     uint64 `json:"clientClosedRequests"`
	Timeouts       uint64 `json:"evaluationTimeouts"`
	NumericalFails uint64 `json:"numericalFailures"`
	PanicsRecov    uint64 `json:"panicsRecovered"`
	EncodeFails    uint64 `json:"responseEncodeFailures"`
	TooLarge       uint64 `json:"oversizedBodies"`
	UnsupMedia     uint64 `json:"unsupportedMediaTypes"`
	// Observed latency diagnostics over every ingested latency sample.
	ObservedCount uint64  `json:"observedLatencyCount"`
	ObservedP50   float64 `json:"observedP50"`
	ObservedP95   float64 `json:"observedP95"`
	ObservedP99   float64 `json:"observedP99"`
	// Calibration is the online drift-detection status; omitted when the
	// subsystem is disabled.
	Calibration *calib.Status `json:"calibration,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET required"})
		return
	}
	m := MetricsResponse{
		EngineStats:    s.engine.Stats(),
		UptimeSeconds:  s.engine.Config().now().Sub(s.start).Seconds(),
		Inflight:       s.inflight.Load(),
		Shed:           s.shed.Value(),
		BadRequests:    s.badRequests.Value(),
		QueriesServed:  s.served.Value(),
		ClientGone:     s.clientGone.Value(),
		Timeouts:       s.timeouts.Value(),
		NumericalFails: s.numerical.Value(),
		PanicsRecov:    s.panics.Value(),
		EncodeFails:    s.encodeFails.Value(),
		TooLarge:       s.tooLarge.Value(),
		UnsupMedia:     s.unsupMedia.Value(),
		ObservedCount:  s.latAll.Count(),
	}
	if m.ObservedCount > 0 {
		m.ObservedP50 = s.latAll.Quantile(0.50)
		m.ObservedP95 = s.latAll.Quantile(0.95)
		m.ObservedP99 = s.latAll.Quantile(0.99)
	}
	if st, ok := s.engine.CalibrationStatus(); ok {
		m.Calibration = &st
	}
	s.writeJSON(w, http.StatusOK, m)
}

// handleMetricsProm renders the engine's metrics registry in the
// Prometheus text exposition format. A write failure here is the scraper
// vanishing mid-scrape; it is counted with the JSON encode failures.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET required"})
		return
	}
	w.Header().Set("Content-Type", obs.ContentType)
	if err := s.engine.Registry().WritePrometheus(w); err != nil {
		s.encodeFails.Inc()
		s.logf("serve: writing /metrics/prom: %v", err)
	}
}

// ComponentHealth is one subsystem's state inside /healthz: Status is "ok",
// "degraded" or "disabled", Detail the human-readable reason when it isn't a
// plain ok.
type ComponentHealth struct {
	Status string `json:"status"`
	Detail string `json:"detail,omitempty"`
}

// HealthResponse is the /healthz payload: Status is "ok" while the process
// serves normally and "degraded" when any component below degraded — today
// that is the evaluation engine recently recovering an inversion through a
// fallback inverter (still answering, but the numerics deserve attention);
// Ready reports whether observations have been ingested so predictions are
// possible. Components breaks the summary down per subsystem so an operator
// (or the cluster router's prober) sees which part degraded, not just that
// something did.
type HealthResponse struct {
	Status     string                     `json:"status"`
	Ready      bool                       `json:"ready"`
	Components map[string]ComponentHealth `json:"components,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	_, reporting := s.engine.state.stats()
	comps := map[string]ComponentHealth{}

	engine := ComponentHealth{Status: "ok"}
	if s.engine.RecentFallback(s.engine.Config().Window) {
		engine = ComponentHealth{Status: "degraded",
			Detail: "inverter fallback within the health window"}
	}
	comps["engine"] = engine

	calibC := ComponentHealth{Status: "disabled"}
	if st, ok := s.engine.CalibrationStatus(); ok {
		calibC = ComponentHealth{Status: "ok"}
		if st.ApplyErrors > 0 {
			calibC = ComponentHealth{Status: "degraded",
				Detail: fmt.Sprintf("%d recalibration apply errors", st.ApplyErrors)}
		}
	}
	comps["calibration"] = calibC

	cs := s.engine.cache.stats()
	comps["cache"] = ComponentHealth{Status: "ok",
		Detail: fmt.Sprintf("%d entries, generation %d", cs.Entries, cs.Generation)}

	ingestC := ComponentHealth{Status: "ok",
		Detail: fmt.Sprintf("%d devices reporting", reporting)}
	if reporting == 0 {
		ingestC = ComponentHealth{Status: "degraded", Detail: "no devices reporting yet"}
	}
	comps["ingest"] = ingestC

	if s.engine.Config().ShardMode {
		comps["shard"] = ComponentHealth{Status: "ok",
			Detail: fmt.Sprintf("generation %d", cs.Generation)}
	}

	// The summary keeps its original semantics — "degraded" means the
	// engine's numerics, not mere unreadiness — so existing probes (and the
	// fault tests) keep their meaning; the per-component map is additive.
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:     engine.Status,
		Ready:      reporting > 0,
		Components: comps,
	})
}

// ---------------------------------------------------------------------------
// Parsing helpers.

// errBodyTooLarge distinguishes an oversized body (413) from a merely
// malformed one (400).
var errBodyTooLarge = errors.New("serve: request body exceeds limit")

// decodeStrict decodes a JSON body rejecting unknown fields, trailing
// garbage and bodies over maxBodyBytes, so typos in payloads fail loudly
// with 400 instead of silently predicting from defaults and an unbounded
// body cannot exhaust server memory. The http.MaxBytesReader also closes
// the connection on overflow, stopping the client from streaming the rest.
func decodeStrict(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return fmt.Errorf("%w: body exceeds %d bytes", errBodyTooLarge, mbe.Limit)
		}
		return fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data after JSON body", ErrBadQuery)
	}
	return nil
}

func parseFloat(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	return v, nil
}

// parseCodedParams extracts the optional coded-read stripe shape from GET
// query parameters; nil when none were supplied.
func parseCodedParams(q url.Values) (*CodedReadSpec, error) {
	if strings.TrimSpace(q.Get("codedN")) == "" && strings.TrimSpace(q.Get("codedK")) == "" {
		return nil, nil
	}
	var spec CodedReadSpec
	var err error
	if spec.N, err = strconv.Atoi(strings.TrimSpace(q.Get("codedN"))); err != nil {
		return nil, fmt.Errorf("%w: codedN: %v", ErrBadQuery, err)
	}
	if spec.K, err = strconv.Atoi(strings.TrimSpace(q.Get("codedK"))); err != nil {
		return nil, fmt.Errorf("%w: codedK: %v", ErrBadQuery, err)
	}
	switch h := strings.TrimSpace(q.Get("codedHedge")); h {
	case "", "0", "false":
	case "1", "true":
		spec.Hedge = true
	default:
		return nil, fmt.Errorf("%w: codedHedge %q not a boolean", ErrBadQuery, h)
	}
	if d := q.Get("codedDelay"); strings.TrimSpace(d) != "" {
		if spec.HedgeDelaySeconds, err = parseFloat(d); err != nil {
			return nil, fmt.Errorf("codedDelay: %w", err)
		}
	}
	return &spec, nil
}

// parseWriteParams extracts the optional PUT replication policy from GET
// query parameters; nil when none were supplied.
func parseWriteParams(q url.Values) (*WriteSpec, error) {
	if strings.TrimSpace(q.Get("writeN")) == "" && strings.TrimSpace(q.Get("writeW")) == "" {
		return nil, nil
	}
	var spec WriteSpec
	var err error
	if spec.N, err = strconv.Atoi(strings.TrimSpace(q.Get("writeN"))); err != nil {
		return nil, fmt.Errorf("%w: writeN: %v", ErrBadQuery, err)
	}
	if spec.W, err = strconv.Atoi(strings.TrimSpace(q.Get("writeW"))); err != nil {
		return nil, fmt.Errorf("%w: writeW: %v", ErrBadQuery, err)
	}
	return &spec, nil
}

// parseTenantWeights parses the weighted tenant list "gold:3,bronze:1";
// empty means nil (no weighted admission). Weight values must parse here;
// their positivity is validated by the engine.
func parseTenantWeights(s string) (map[string]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		class, weight, found := strings.Cut(part, ":")
		if !found {
			return nil, fmt.Errorf("%w: tenant weight %q not class:weight", ErrBadQuery, part)
		}
		class = strings.TrimSpace(class)
		if class == "" {
			return nil, fmt.Errorf("%w: tenant weight %q has an empty class", ErrBadQuery, part)
		}
		w, err := parseFloat(weight)
		if err != nil {
			return nil, fmt.Errorf("tenant %q weight: %w", class, err)
		}
		if _, dup := out[class]; dup {
			return nil, fmt.Errorf("%w: tenant %q listed twice", ErrBadQuery, class)
		}
		out[class] = w
	}
	return out, nil
}

// parseFloats parses a comma-separated float list; empty means nil (use
// defaults).
func parseFloats(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := parseFloat(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
