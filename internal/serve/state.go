package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cosmodel/internal/core"
	"cosmodel/internal/ingest"
	"cosmodel/internal/stats"
)

// Observation is one batch of per-device measurements covering Interval
// seconds of operation. The wire type lives in internal/ingest (the
// high-throughput ingest subsystem owns decoding and validation); the alias
// keeps the serve API unchanged.
type Observation = ingest.Observation

// stateTable adapts the striped ingest.Table to the engine: it wraps the
// ingest-level errors into the serve error taxonomy and memoizes the derived
// snapshot and its operating-point key on the table's revision counter.
// All methods are safe for concurrent use.
type stateTable struct {
	cfg   *Config
	table *ingest.Table

	// Snapshot memo: the derived metrics and their quantized operating-point
	// key are pure functions of the ingest history, so between ingests every
	// query can reuse one immutable slice instead of re-deriving both.
	snapMu    sync.Mutex
	snapValid bool
	snapRev   uint64 // table revision the memo was derived from
	snapMS    []core.OnlineMetrics
	snapKey   string
	snapErr   error
}

func newStateTable(cfg *Config) (*stateTable, error) {
	table, err := ingest.NewTable(ingest.Config{
		Devices:    cfg.Devices,
		Stripes:    cfg.IngestStripes,
		Window:     cfg.Window,
		MaxEntries: cfg.MaxObservations,
		Procs:      cfg.ProcsPerDevice,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return &stateTable{cfg: cfg, table: table}, nil
}

// wrapIngestErr converts the ingest package's validation errors into the
// serve taxonomy (ErrBadQuery → 400 at the HTTP layer).
func wrapIngestErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ingest.ErrInvalid) {
		return fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	return err
}

// ingest validates and absorbs a batch of observations. The batch is
// all-or-nothing: a single invalid observation rejects the whole batch so
// partial state never depends on payload order.
func (t *stateTable) ingest(batch []Observation) error {
	return wrapIngestErr(t.table.Ingest(batch, t.cfg.now()))
}

// snapshot derives the current per-device online metrics. Idle devices are
// omitted (they contribute nothing to the system mixture). ErrNotReady is
// returned when no device has observations.
func (t *stateTable) snapshot() ([]core.OnlineMetrics, error) {
	ms := t.table.Snapshot()
	if len(ms) == 0 {
		return nil, ErrNotReady
	}
	return ms, nil
}

// snapshotKeyed returns the current per-device metrics together with their
// quantized operating-point key (opKey), memoized on the table revision:
// repeated queries at a stable operating point share one derivation and one
// key string. Callers must treat the returned slice as immutable.
func (t *stateTable) snapshotKeyed() ([]core.OnlineMetrics, string, error) {
	rev := t.table.Revision()
	t.snapMu.Lock()
	defer t.snapMu.Unlock()
	if !t.snapValid || t.snapRev != rev {
		t.snapMS, t.snapErr = t.snapshot()
		t.snapKey = ""
		if t.snapErr == nil {
			t.snapKey = opKey(t.snapMS)
		}
		t.snapRev, t.snapValid = rev, true
	}
	return t.snapMS, t.snapKey, t.snapErr
}

// snapshotDevices derives the current online metrics of a device subset —
// the shard-local slice of the cluster mixture. Idle devices in the subset
// are skipped; covered counts the subset devices that contributed an
// operating point. Unlike snapshot, an empty result is not an error: a shard
// that has not yet ingested for its devices legitimately contributes zero
// weight to the merged mixture.
func (t *stateTable) snapshotDevices(devs []int) (ms []core.OnlineMetrics, covered int, err error) {
	ms, covered, err = t.table.SnapshotDevices(devs)
	return ms, covered, wrapIngestErr(err)
}

// deviceRates returns every device's windowed request rate (0 when idle) —
// the warm-start state a restarted router rebuilds its rate tracker from.
func (t *stateTable) deviceRates() []float64 { return t.table.DeviceRates() }

// observedLatency merges the windowed latency histograms of all devices
// (nil when no latencies were ingested).
func (t *stateTable) observedLatency() *stats.Histogram {
	return t.table.ObservedLatency()
}

// calibrationAge returns the seconds since the last accepted ingest, and
// whether any ingest happened at all.
func (t *stateTable) calibrationAge() (float64, bool) {
	last, ok := t.table.LastIngest()
	if !ok {
		return 0, false
	}
	return t.cfg.now().Sub(last).Seconds(), true
}

// stats returns ingest counters.
func (t *stateTable) stats() (ingested uint64, reporting int) {
	return t.table.Stats()
}

// stripes returns the effective lock-stripe count of the state table.
func (t *stateTable) stripes() int { return t.table.Stripes() }

// lastIngestTime exposes the newest accepted-ingest timestamp.
func (t *stateTable) lastIngestTime() (time.Time, bool) { return t.table.LastIngest() }
