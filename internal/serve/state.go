package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cosmodel/internal/core"
	"cosmodel/internal/ingest"
	"cosmodel/internal/stats"
)

// Observation is one batch of per-device measurements covering Interval
// seconds of operation. The wire type lives in internal/ingest (the
// high-throughput ingest subsystem owns decoding and validation); the alias
// keeps the serve API unchanged.
type Observation = ingest.Observation

// maxTenantClasses bounds the per-class partition registry: enough for any
// sane multi-tenant deployment, small enough that a client inventing class
// labels cannot grow server state without bound.
const maxTenantClasses = 64

// stateTable adapts the striped ingest.Table to the engine: it wraps the
// ingest-level errors into the serve error taxonomy and memoizes the derived
// snapshot and its operating-point key on the table's revision counter.
// All methods are safe for concurrent use.
type stateTable struct {
	cfg   *Config
	table *ingest.Table

	// classes holds one striped partition per tenant class, created lazily
	// on the first class-labelled ingest. A class-labelled observation lands
	// both here and in the aggregate table: the aggregate stays the shared
	// operating point every prediction evaluates (FCFS queues are
	// classless), while the partition carries the per-tenant rates the
	// weighted admission controller sheds by.
	classMu sync.Mutex
	classes map[string]*ingest.Table

	// Snapshot memo: the derived metrics and their quantized operating-point
	// key are pure functions of the ingest history, so between ingests every
	// query can reuse one immutable slice instead of re-deriving both.
	snapMu    sync.Mutex
	snapValid bool
	snapRev   uint64 // table revision the memo was derived from
	snapMS    []core.OnlineMetrics
	snapKey   string
	snapErr   error
}

func newStateTable(cfg *Config) (*stateTable, error) {
	table, err := ingest.NewTable(ingest.Config{
		Devices:    cfg.Devices,
		Stripes:    cfg.IngestStripes,
		Window:     cfg.Window,
		MaxEntries: cfg.MaxObservations,
		Procs:      cfg.ProcsPerDevice,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return &stateTable{cfg: cfg, table: table}, nil
}

// wrapIngestErr converts the ingest package's validation errors into the
// serve taxonomy (ErrBadQuery → 400 at the HTTP layer).
func wrapIngestErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ingest.ErrInvalid) {
		return fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	return err
}

// ingest validates and absorbs a batch of observations. The batch is
// all-or-nothing: a single invalid observation rejects the whole batch so
// partial state never depends on payload order. Class-labelled observations
// additionally land in their tenant partition; the class-count bound is
// checked up front so a rejected batch leaves neither table touched.
func (t *stateTable) ingest(batch []Observation) error {
	if err := t.checkClassBound(batch); err != nil {
		return err
	}
	if err := wrapIngestErr(t.table.Ingest(batch, t.cfg.now())); err != nil {
		return err
	}
	t.ingestClasses(batch)
	return nil
}

// checkClassBound rejects a batch whose new class labels would grow the
// tenant registry past maxTenantClasses. Checked before the aggregate ingest
// so the all-or-nothing contract holds across both tables.
func (t *stateTable) checkClassBound(batch []Observation) error {
	var fresh map[string]bool
	t.classMu.Lock()
	defer t.classMu.Unlock()
	n := len(t.classes)
	for _, o := range batch {
		if o.Class == "" || t.classes[o.Class] != nil || fresh[o.Class] {
			continue
		}
		if fresh == nil {
			fresh = make(map[string]bool)
		}
		fresh[o.Class] = true
		if n++; n > maxTenantClasses {
			return fmt.Errorf("%w: tenant class %q would exceed the %d-class limit",
				ErrBadQuery, o.Class, maxTenantClasses)
		}
	}
	return nil
}

// ingestClasses routes the class-labelled observations of an already
// accepted batch into their tenant partitions, creating partitions lazily.
// The batch passed aggregate validation, so the per-class ingests cannot
// reject; a partition-construction failure would be a config bug and is
// surfaced through the aggregate path's validation at engine start.
func (t *stateTable) ingestClasses(batch []Observation) {
	var byClass map[string][]Observation
	for _, o := range batch {
		if o.Class == "" {
			continue
		}
		if byClass == nil {
			byClass = make(map[string][]Observation)
		}
		byClass[o.Class] = append(byClass[o.Class], o)
	}
	if byClass == nil {
		return
	}
	now := t.cfg.now()
	for class, sub := range byClass {
		tab, err := t.classTable(class)
		if err != nil {
			continue // bounded above; unreachable after checkClassBound
		}
		tab.Ingest(sub, now) //nolint:errcheck // validated by the aggregate ingest
	}
}

// classTable returns (creating if needed) the partition for class.
func (t *stateTable) classTable(class string) (*ingest.Table, error) {
	t.classMu.Lock()
	defer t.classMu.Unlock()
	if tab := t.classes[class]; tab != nil {
		return tab, nil
	}
	if len(t.classes) >= maxTenantClasses {
		return nil, fmt.Errorf("%w: tenant class limit reached", ErrBadQuery)
	}
	tab, err := ingest.NewTable(ingest.Config{
		Devices:    t.cfg.Devices,
		Stripes:    t.cfg.IngestStripes,
		Window:     t.cfg.Window,
		MaxEntries: t.cfg.MaxObservations,
		Procs:      t.cfg.ProcsPerDevice,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if t.classes == nil {
		t.classes = make(map[string]*ingest.Table)
	}
	t.classes[class] = tab
	return tab, nil
}

// tenantTable looks up the partition of one tenant class.
func (t *stateTable) tenantTable(class string) (*ingest.Table, bool) {
	t.classMu.Lock()
	defer t.classMu.Unlock()
	tab, ok := t.classes[class]
	return tab, ok
}

// tenantNames lists the known tenant classes in sorted order.
func (t *stateTable) tenantNames() []string {
	t.classMu.Lock()
	names := make([]string, 0, len(t.classes))
	for c := range t.classes {
		names = append(names, c)
	}
	t.classMu.Unlock()
	sort.Strings(names)
	return names
}

// snapshot derives the current per-device online metrics. Idle devices are
// omitted (they contribute nothing to the system mixture). ErrNotReady is
// returned when no device has observations.
func (t *stateTable) snapshot() ([]core.OnlineMetrics, error) {
	ms := t.table.Snapshot()
	if len(ms) == 0 {
		return nil, ErrNotReady
	}
	return ms, nil
}

// snapshotKeyed returns the current per-device metrics together with their
// quantized operating-point key (opKey), memoized on the table revision:
// repeated queries at a stable operating point share one derivation and one
// key string. Callers must treat the returned slice as immutable.
func (t *stateTable) snapshotKeyed() ([]core.OnlineMetrics, string, error) {
	rev := t.table.Revision()
	t.snapMu.Lock()
	defer t.snapMu.Unlock()
	if !t.snapValid || t.snapRev != rev {
		t.snapMS, t.snapErr = t.snapshot()
		t.snapKey = ""
		if t.snapErr == nil {
			t.snapKey = opKey(t.snapMS)
		}
		t.snapRev, t.snapValid = rev, true
	}
	return t.snapMS, t.snapKey, t.snapErr
}

// snapshotDevices derives the current online metrics of a device subset —
// the shard-local slice of the cluster mixture. Idle devices in the subset
// are skipped; covered counts the subset devices that contributed an
// operating point. Unlike snapshot, an empty result is not an error: a shard
// that has not yet ingested for its devices legitimately contributes zero
// weight to the merged mixture.
func (t *stateTable) snapshotDevices(devs []int) (ms []core.OnlineMetrics, covered int, err error) {
	ms, covered, err = t.table.SnapshotDevices(devs)
	return ms, covered, wrapIngestErr(err)
}

// deviceRates returns every device's windowed request rate (0 when idle) —
// the warm-start state a restarted router rebuilds its rate tracker from.
func (t *stateTable) deviceRates() []float64 { return t.table.DeviceRates() }

// observedLatency merges the windowed latency histograms of all devices
// (nil when no latencies were ingested).
func (t *stateTable) observedLatency() *stats.Histogram {
	return t.table.ObservedLatency()
}

// calibrationAge returns the seconds since the last accepted ingest, and
// whether any ingest happened at all.
func (t *stateTable) calibrationAge() (float64, bool) {
	last, ok := t.table.LastIngest()
	if !ok {
		return 0, false
	}
	return t.cfg.now().Sub(last).Seconds(), true
}

// stats returns ingest counters.
func (t *stateTable) stats() (ingested uint64, reporting int) {
	return t.table.Stats()
}

// stripes returns the effective lock-stripe count of the state table.
func (t *stateTable) stripes() int { return t.table.Stripes() }

// lastIngestTime exposes the newest accepted-ingest timestamp.
func (t *stateTable) lastIngestTime() (time.Time, bool) { return t.table.LastIngest() }
