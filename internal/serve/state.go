package serve

import (
	"fmt"
	"math"
	"sync"
	"time"

	"cosmodel/internal/core"
	"cosmodel/internal/stats"
)

// Observation is one batch of per-device measurements covering Interval
// seconds of operation — the raw material of the paper's §IV-B online
// metrics. Counters are deltas over the interval, not cumulative totals.
type Observation struct {
	// Device identifies the storage device, 0 <= Device < Config.Devices.
	Device int `json:"device"`
	// Interval is the wall-clock span the counters cover (seconds).
	Interval float64 `json:"interval"`
	// Requests is the number of requests routed to the device (r·Interval).
	Requests uint64 `json:"requests"`
	// DataReads is the number of data read operations, cache hits and
	// misses alike (rdata·Interval).
	DataReads uint64 `json:"dataReads"`
	// Cache accesses per operation class.
	IndexHits   uint64 `json:"indexHits"`
	IndexMisses uint64 `json:"indexMisses"`
	MetaHits    uint64 `json:"metaHits"`
	MetaMisses  uint64 `json:"metaMisses"`
	DataHits    uint64 `json:"dataHits"`
	DataMisses  uint64 `json:"dataMisses"`
	// DiskBusy is the disk busy time (seconds) over DiskOps operations;
	// together they give the observed overall mean disk service time b.
	DiskBusy float64 `json:"diskBusy"`
	DiskOps  uint64  `json:"diskOps"`
	// Latencies are optional raw response latencies (seconds) observed at
	// the frontend, kept in sliding-window histograms for the observed
	// SLA-compliance diagnostics in /metrics.
	Latencies []float64 `json:"latencies,omitempty"`
	// DiskIndexLat, DiskMetaLat and DiskDataLat are optional raw disk
	// service times (seconds) per operation class sampled during the
	// interval — the feed for the online calibration subsystem's live
	// refits and shape checks. Ignored (beyond validation) when
	// Config.Calib is nil.
	DiskIndexLat []float64 `json:"diskIndexLat,omitempty"`
	DiskMetaLat  []float64 `json:"diskMetaLat,omitempty"`
	DiskDataLat  []float64 `json:"diskDataLat,omitempty"`
}

// Validate checks one observation against the deployment size.
func (o Observation) Validate(devices int) error {
	switch {
	case o.Device < 0 || o.Device >= devices:
		return fmt.Errorf("%w: device %d outside [0,%d)", ErrBadQuery, o.Device, devices)
	case o.Interval <= 0 || math.IsNaN(o.Interval) || math.IsInf(o.Interval, 0):
		return fmt.Errorf("%w: interval %v must be positive and finite", ErrBadQuery, o.Interval)
	case o.DiskBusy < 0 || math.IsNaN(o.DiskBusy) || math.IsInf(o.DiskBusy, 0):
		return fmt.Errorf("%w: disk busy time %v", ErrBadQuery, o.DiskBusy)
	}
	for _, l := range o.Latencies {
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return fmt.Errorf("%w: latency %v", ErrBadQuery, l)
		}
	}
	for _, set := range [][]float64{o.DiskIndexLat, o.DiskMetaLat, o.DiskDataLat} {
		for _, l := range set {
			if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
				return fmt.Errorf("%w: disk service sample %v", ErrBadQuery, l)
			}
		}
	}
	return nil
}

// windowEntry is one retained observation with its latency histogram.
type windowEntry struct {
	obs Observation
	lat *stats.Histogram // nil when the observation carried no latencies
}

// deviceWindow is the sliding window of one device's observations, newest
// last.
type deviceWindow struct {
	entries []windowEntry
	span    float64 // summed intervals of the retained entries
}

// add appends an entry and evicts the oldest ones that fall outside the
// window span or the entry-count bound. At least one entry is always kept
// so a device that reports rarely still has an operating point.
func (w *deviceWindow) add(e windowEntry, window float64, maxEntries int) {
	w.entries = append(w.entries, e)
	w.span += e.obs.Interval
	for len(w.entries) > 1 &&
		(w.span-w.entries[0].obs.Interval >= window || len(w.entries) > maxEntries) {
		w.span -= w.entries[0].obs.Interval
		w.entries[0] = windowEntry{}
		w.entries = w.entries[1:]
	}
}

// metrics derives the device's current online metrics from the window.
// ok is false when the window holds no requests (idle device).
func (w *deviceWindow) metrics(procs int) (core.OnlineMetrics, bool) {
	if w.span <= 0 {
		return core.OnlineMetrics{}, false
	}
	var (
		requests, dataReads    uint64
		idxH, idxM, metH, metM uint64
		datH, datM, diskOps    uint64
		diskBusy               float64
	)
	for _, e := range w.entries {
		requests += e.obs.Requests
		dataReads += e.obs.DataReads
		idxH += e.obs.IndexHits
		idxM += e.obs.IndexMisses
		metH += e.obs.MetaHits
		metM += e.obs.MetaMisses
		datH += e.obs.DataHits
		datM += e.obs.DataMisses
		diskBusy += e.obs.DiskBusy
		diskOps += e.obs.DiskOps
	}
	if requests == 0 {
		return core.OnlineMetrics{}, false
	}
	m := core.OnlineMetrics{
		Rate:      float64(requests) / w.span,
		MissIndex: missRatio(idxM, idxH),
		MissMeta:  missRatio(metM, metH),
		MissData:  missRatio(datM, datH),
		Procs:     procs,
	}
	m.DataRate = math.Max(float64(dataReads)/w.span, m.Rate)
	if diskOps > 0 {
		m.DiskMean = diskBusy / float64(diskOps)
	}
	return m, true
}

func missRatio(misses, hits uint64) float64 {
	if misses+hits == 0 {
		return 0
	}
	return float64(misses) / float64(misses+hits)
}

// stateTable holds every device's sliding window plus ingest bookkeeping.
// All methods are safe for concurrent use.
type stateTable struct {
	cfg *Config

	mu         sync.RWMutex
	devices    []deviceWindow
	lastIngest time.Time
	ingested   uint64 // observations accepted

	// Snapshot memo: the derived metrics and their quantized operating-point
	// key are pure functions of the ingest history, so between ingests every
	// query can reuse one immutable slice instead of re-deriving both.
	snapMu    sync.Mutex
	snapValid bool
	snapRev   uint64 // ingested revision the memo was derived from
	snapMS    []core.OnlineMetrics
	snapKey   string
	snapErr   error
}

func newStateTable(cfg *Config) *stateTable {
	return &stateTable{cfg: cfg, devices: make([]deviceWindow, cfg.Devices)}
}

// ingest validates and absorbs a batch of observations. The batch is
// all-or-nothing: a single invalid observation rejects the whole batch so
// partial state never depends on payload order.
func (t *stateTable) ingest(batch []Observation) error {
	if len(batch) == 0 {
		return fmt.Errorf("%w: empty observation batch", ErrBadQuery)
	}
	for _, o := range batch {
		if err := o.Validate(t.cfg.Devices); err != nil {
			return err
		}
	}
	entries := make([]windowEntry, len(batch))
	for i, o := range batch {
		e := windowEntry{obs: o}
		if len(o.Latencies) > 0 {
			e.lat = stats.NewLatencyHistogram()
			for _, l := range o.Latencies {
				e.lat.Observe(l)
			}
			e.obs.Latencies = nil // retained as a histogram, not raw samples
		}
		// Raw disk samples feed the calibration controller, not the
		// sliding windows; don't retain them here.
		e.obs.DiskIndexLat, e.obs.DiskMetaLat, e.obs.DiskDataLat = nil, nil, nil
		entries[i] = e
	}
	now := t.cfg.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range entries {
		t.devices[e.obs.Device].add(e, t.cfg.Window, t.cfg.MaxObservations)
	}
	t.lastIngest = now
	t.ingested += uint64(len(entries))
	return nil
}

// snapshot derives the current per-device online metrics. Idle devices are
// omitted (they contribute nothing to the system mixture). ErrNotReady is
// returned when no device has observations.
func (t *stateTable) snapshot() ([]core.OnlineMetrics, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []core.OnlineMetrics
	for d := range t.devices {
		if m, ok := t.devices[d].metrics(t.cfg.ProcsPerDevice); ok {
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		return nil, ErrNotReady
	}
	return out, nil
}

// snapshotKeyed returns the current per-device metrics together with their
// quantized operating-point key (opKey), memoized on the ingest revision:
// repeated queries at a stable operating point share one derivation and one
// key string. Callers must treat the returned slice as immutable.
func (t *stateTable) snapshotKeyed() ([]core.OnlineMetrics, string, error) {
	t.mu.RLock()
	rev := t.ingested
	t.mu.RUnlock()
	t.snapMu.Lock()
	defer t.snapMu.Unlock()
	if !t.snapValid || t.snapRev != rev {
		t.snapMS, t.snapErr = t.snapshot()
		t.snapKey = ""
		if t.snapErr == nil {
			t.snapKey = opKey(t.snapMS)
		}
		t.snapRev, t.snapValid = rev, true
	}
	return t.snapMS, t.snapKey, t.snapErr
}

// snapshotDevices derives the current online metrics of a device subset —
// the shard-local slice of the cluster mixture. Idle devices in the subset
// are skipped; covered counts the subset devices that contributed an
// operating point. Unlike snapshot, an empty result is not an error: a shard
// that has not yet ingested for its devices legitimately contributes zero
// weight to the merged mixture.
func (t *stateTable) snapshotDevices(devs []int) (ms []core.OnlineMetrics, covered int, err error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, d := range devs {
		if d < 0 || d >= len(t.devices) {
			return nil, 0, fmt.Errorf("%w: device %d outside [0,%d)", ErrBadQuery, d, len(t.devices))
		}
		if m, ok := t.devices[d].metrics(t.cfg.ProcsPerDevice); ok {
			ms = append(ms, m)
			covered++
		}
	}
	return ms, covered, nil
}

// observedLatency merges the windowed latency histograms of all devices
// (nil when no latencies were ingested).
func (t *stateTable) observedLatency() *stats.Histogram {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var merged *stats.Histogram
	for d := range t.devices {
		for _, e := range t.devices[d].entries {
			if e.lat == nil {
				continue
			}
			if merged == nil {
				merged = stats.NewLatencyHistogram()
			}
			// Layouts always match (both NewLatencyHistogram).
			merged.Merge(e.lat) //nolint:errcheck
		}
	}
	return merged
}

// calibrationAge returns the seconds since the last accepted ingest, and
// whether any ingest happened at all.
func (t *stateTable) calibrationAge() (float64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.lastIngest.IsZero() {
		return 0, false
	}
	return t.cfg.now().Sub(t.lastIngest).Seconds(), true
}

// stats returns ingest counters.
func (t *stateTable) stats() (ingested uint64, reporting int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for d := range t.devices {
		if _, ok := t.devices[d].metrics(t.cfg.ProcsPerDevice); ok {
			reporting++
		}
	}
	return t.ingested, reporting
}
