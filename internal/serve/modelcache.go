package serve

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// cachedValue is one memoized prediction: the fraction of requests meeting
// an SLA at a quantized operating point, or the fact that the operating
// point is saturated (core.ErrOverload — a legitimate, cacheable answer).
// Grid entries (whole-SLA-list evaluations, see Engine.evaluateBatch) carry
// the per-SLA fractions in ps instead of p; the two shapes live under
// disjoint cache keys.
type cachedValue struct {
	p         float64
	saturated bool
	ps        []float64
}

// modelCache memoizes predictions keyed by quantized operating point. It
// reuses the ideas of internal/cache's byte-LRU (recency list + map) but is
// keyed by operating point, generation-aware — Invalidate makes every
// existing entry stale without touching it, so a recalibration never serves
// predictions computed from old device properties — and deduplicating:
// concurrent lookups of the same key block on a single computation
// (singleflight) instead of inverting the same transform in parallel.
type modelCache struct {
	mu       sync.Mutex
	capacity int
	gen      uint64
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // key -> element holding *cacheEntry
	hits     uint64                   // lookups served from memory or deduped onto an in-flight computation
	misses   uint64                   // lookups that had to compute
}

type cacheEntry struct {
	key   string
	gen   uint64
	ready chan struct{} // closed once val/err are set
	val   cachedValue
	err   error
}

func newModelCache(capacity int) *modelCache {
	if capacity < 1 {
		capacity = 1
	}
	return &modelCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// do returns the cached value for key, computing it with fn exactly once
// per (key, generation) no matter how many goroutines ask concurrently.
// cached reports whether the caller was served without running fn itself.
// A computation that fails with a non-cacheable error is forgotten so later
// lookups retry.
//
// ctx governs the caller's wait, not the shared computation: a waiter whose
// context expires abandons the entry immediately (the computing goroutine
// finishes and caches on its own), and a waiter whose computing owner was
// itself cancelled retries the lookup — one request's client hanging up
// must never poison the answer for everyone deduplicated behind it.
func (c *modelCache) do(ctx context.Context, key string, fn func(context.Context) (cachedValue, error)) (v cachedValue, cached bool, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			e := el.Value.(*cacheEntry)
			if e.gen == c.gen {
				c.hits++
				c.ll.MoveToFront(el)
				c.mu.Unlock()
				select {
				case <-e.ready:
				case <-ctx.Done():
					return cachedValue{}, false, ctx.Err()
				}
				if e.err != nil && isContextErr(e.err) && ctx.Err() == nil {
					// The owner's client hung up mid-computation but ours is
					// still here: take over with a fresh lookup.
					continue
				}
				return e.val, true, e.err
			}
			// Stale generation: drop and recompute below.
			c.removeLocked(el)
		}
		e := &cacheEntry{key: key, gen: c.gen, ready: make(chan struct{})}
		el := c.ll.PushFront(e)
		c.items[key] = el
		c.misses++
		for c.ll.Len() > c.capacity {
			// Evicting an in-flight entry is safe: waiters hold the entry
			// pointer and its ready channel is still closed by the computer.
			c.removeLocked(c.ll.Back())
		}
		c.mu.Unlock()

		e.val, e.err = fn(ctx)
		close(e.ready)
		if e.err != nil {
			c.mu.Lock()
			if cur, ok := c.items[key]; ok && cur.Value.(*cacheEntry) == e {
				c.removeLocked(cur)
			}
			c.mu.Unlock()
		}
		return e.val, false, e.err
	}
}

// isContextErr reports whether err is (or wraps) a context cancellation or
// deadline error.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// invalidate makes every current entry stale (a new generation).
func (c *modelCache) invalidate() {
	c.mu.Lock()
	c.gen++
	c.mu.Unlock()
}

// invalidateTo raises the generation to at least gen — the cluster
// generation-gossip primitive. Taking the max (never stepping backwards)
// makes concurrent syncs from multiple routers converge instead of
// ping-ponging: a replica that already recalibrated past gen keeps its newer
// generation, and a lagging replica jumps forward exactly once.
func (c *modelCache) invalidateTo(gen uint64) {
	c.mu.Lock()
	if gen > c.gen {
		c.gen = gen
	}
	c.mu.Unlock()
}

// generation returns the current cache generation.
func (c *modelCache) generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// cacheStats is a point-in-time view of the cache counters.
type cacheStats struct {
	Hits       uint64
	Misses     uint64
	Entries    int
	Generation uint64
}

func (s cacheStats) hitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (c *modelCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len(), Generation: c.gen}
}

func (c *modelCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
}
