package core

import (
	"errors"
	"math"
	"testing"

	"cosmodel/internal/dist"
)

// The online calibrator leans on SolveServiceTimes and MissRatioByThreshold
// behaving predictably on degenerate windows; these tests pin that contract.

func validMetrics() OnlineMetrics {
	return OnlineMetrics{
		Rate: 100, DataRate: 120,
		MissIndex: 0.2, MissMeta: 0.3, MissData: 0.4,
		Procs: 1,
	}
}

func TestSolveServiceTimesDegenerate(t *testing.T) {
	m := validMetrics()
	// Zero denominator: no operation class misses, so there is no disk
	// traffic to attribute the observed mean to.
	noMiss := m
	noMiss.MissIndex, noMiss.MissMeta, noMiss.MissData = 0, 0, 0
	if _, _, _, err := SolveServiceTimes(8e-3, 0.3, 0.3, 0.4, noMiss); !errors.Is(err, ErrBadParams) {
		t.Errorf("zero-denominator error = %v, want ErrBadParams", err)
	}
	// Nonpositive observed mean.
	for _, b := range []float64{0, -1e-3} {
		if _, _, _, err := SolveServiceTimes(b, 0.3, 0.3, 0.4, m); !errors.Is(err, ErrBadParams) {
			t.Errorf("b=%v error = %v, want ErrBadParams", b, err)
		}
	}
	// All-zero and negative proportions.
	if _, _, _, err := SolveServiceTimes(8e-3, 0, 0, 0, m); !errors.Is(err, ErrBadParams) {
		t.Errorf("zero proportions error = %v, want ErrBadParams", err)
	}
	if _, _, _, err := SolveServiceTimes(8e-3, -0.1, 0.5, 0.6, m); !errors.Is(err, ErrBadParams) {
		t.Errorf("negative proportion error = %v, want ErrBadParams", err)
	}
	// Invalid metrics are rejected before any arithmetic.
	bad := m
	bad.Rate = 0
	if _, _, _, err := SolveServiceTimes(8e-3, 0.3, 0.3, 0.4, bad); !errors.Is(err, ErrBadParams) {
		t.Errorf("invalid metrics error = %v, want ErrBadParams", err)
	}
}

func TestSolveServiceTimesConsistency(t *testing.T) {
	m := validMetrics()
	b := 8e-3
	pi, pm, pd := 0.35, 0.25, 0.40
	bi, bm, bd, err := SolveServiceTimes(b, pi, pm, pd, m)
	if err != nil {
		t.Fatal(err)
	}
	// Proportions persist: bi/pi = bm/pm = bd/pd.
	if r1, r2 := bi/pi, bm/pm; math.Abs(r1-r2) > 1e-12*r1 {
		t.Errorf("proportion ratios differ: %v vs %v", r1, r2)
	}
	if r1, r2 := bi/pi, bd/pd; math.Abs(r1-r2) > 1e-12*r1 {
		t.Errorf("proportion ratios differ: %v vs %v", r1, r2)
	}
	// The mix-weighted mean reproduces the observed b.
	num := m.MissIndex*m.Rate*bi + m.MissMeta*m.Rate*bm + m.MissData*m.DataRate*bd
	den := m.MissIndex*m.Rate + m.MissMeta*m.Rate + m.MissData*m.DataRate
	if got := num / den; math.Abs(got-b) > 1e-12 {
		t.Errorf("reconstructed b = %v, want %v", got, b)
	}
}

func TestMissRatioByThresholdDegenerate(t *testing.T) {
	// Empty sample: 0, not NaN.
	if got := MissRatioByThreshold(nil, 1e-3); got != 0 {
		t.Errorf("empty sample ratio = %v, want 0", got)
	}
	// Nonpositive thresholds fall back to the paper's default.
	lat := []float64{1e-6, 2e-6, 1e-3, 2e-3} // two below 15 µs, two above
	for _, th := range []float64{0, -1} {
		if got := MissRatioByThreshold(lat, th); got != 0.5 {
			t.Errorf("threshold %v ratio = %v, want 0.5 (default threshold)", th, got)
		}
	}
	// All hits / all misses.
	if got := MissRatioByThreshold([]float64{1e-6, 2e-6}, 1e-3); got != 0 {
		t.Errorf("all-hit ratio = %v, want 0", got)
	}
	if got := MissRatioByThreshold([]float64{1e-2, 2e-2}, 1e-3); got != 1 {
		t.Errorf("all-miss ratio = %v, want 1", got)
	}
	// Exactly at the threshold counts as a hit (strict >).
	if got := MissRatioByThreshold([]float64{1e-3}, 1e-3); got != 0 {
		t.Errorf("boundary ratio = %v, want 0", got)
	}
}

func TestRescaleDeviceProperties(t *testing.T) {
	base := DeviceProperties{
		IndexDisk: dist.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  dist.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  dist.NewGammaMeanSCV(8e-3, 0.40),
		ParseBE:   dist.Degenerate{Value: 0.5e-3},
		ParseFE:   dist.Degenerate{Value: 0.3e-3},
	}
	m := validMetrics()
	// Inflate the observed overall mean 1.5x: every per-operation mean
	// scales by the same factor (proportions persist) and the SCVs are
	// untouched.
	pi, pm, pd := base.Proportions()
	bi0, bm0, bd0, err := SolveServiceTimes(8e-3, pi, pm, pd, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RescaleDeviceProperties(base, 1.5*8e-3, m)
	if err != nil {
		t.Fatal(err)
	}
	approx := func(a, b float64) bool { return math.Abs(a-b) <= 1e-12*math.Abs(b) }
	if !approx(got.IndexDisk.Mean(), 1.5*bi0) || !approx(got.MetaDisk.Mean(), 1.5*bm0) || !approx(got.DataDisk.Mean(), 1.5*bd0) {
		t.Errorf("rescaled means (%v, %v, %v), want 1.5x (%v, %v, %v)",
			got.IndexDisk.Mean(), got.MetaDisk.Mean(), got.DataDisk.Mean(), bi0, bm0, bd0)
	}
	scv := func(d dist.Distribution) float64 { mu := d.Mean(); return d.Variance() / (mu * mu) }
	if !approx(scv(got.IndexDisk), scv(base.IndexDisk)) || !approx(scv(got.DataDisk), scv(base.DataDisk)) {
		t.Errorf("rescaling changed the SCV: %v vs %v", scv(got.IndexDisk), scv(base.IndexDisk))
	}
	if err := got.Validate(); err != nil {
		t.Errorf("rescaled properties invalid: %v", err)
	}
	// Degenerate inputs surface as errors, never as invalid properties.
	noMiss := m
	noMiss.MissIndex, noMiss.MissMeta, noMiss.MissData = 0, 0, 0
	if _, err := RescaleDeviceProperties(base, 8e-3, noMiss); !errors.Is(err, ErrBadParams) {
		t.Errorf("no-disk-traffic rescale error = %v, want ErrBadParams", err)
	}
	if _, err := RescaleDeviceProperties(DeviceProperties{}, 8e-3, m); !errors.Is(err, ErrBadParams) {
		t.Errorf("nil-props rescale error = %v, want ErrBadParams", err)
	}
}
