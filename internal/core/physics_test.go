package core

import (
	"math"
	"testing"
	"testing/quick"

	"cosmodel/internal/dist"
)

// These tests check the model's physics: predictions must respond to each
// input in the direction queueing theory demands, across randomized
// parameter settings.

func buildSingle(t *testing.T, m OnlineMetrics) *SystemModel {
	t.Helper()
	d, err := NewDeviceModel(testProps(), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontendModel(m.Rate*4, 12, dist.Degenerate{Value: 0.3e-3})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemModel(fe, []*DeviceModel{d}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestPercentileDecreasesWithLoad: more load can only hurt the percentile.
func TestPercentileDecreasesWithLoad(t *testing.T) {
	prev := math.Inf(1)
	for _, rate := range []float64{10, 20, 35, 50, 60} {
		m := testMetrics()
		m.Rate, m.DataRate = rate, rate*1.2
		sys := buildSingle(t, m)
		p := sys.PercentileMeetingSLA(0.05)
		if p > prev+1e-9 {
			t.Errorf("rate %v: percentile %v rose above %v", rate, p, prev)
		}
		prev = p
	}
}

// TestPercentileDecreasesWithMissRatio: worse caching can only hurt.
func TestPercentileDecreasesWithMissRatio(t *testing.T) {
	prev := math.Inf(1)
	for _, miss := range []float64{0.05, 0.2, 0.4, 0.6, 0.8} {
		m := testMetrics()
		m.MissIndex, m.MissMeta, m.MissData = miss, miss, miss
		sys := buildSingle(t, m)
		p := sys.PercentileMeetingSLA(0.05)
		if p > prev+1e-9 {
			t.Errorf("miss %v: percentile %v rose above %v", miss, p, prev)
		}
		prev = p
	}
}

// TestPercentileDecreasesWithChunking: more extra reads per request can
// only hurt.
func TestPercentileDecreasesWithChunking(t *testing.T) {
	prev := math.Inf(1)
	for _, factor := range []float64{1.0, 1.2, 1.5, 2.0} {
		m := testMetrics()
		m.DataRate = m.Rate * factor
		sys := buildSingle(t, m)
		p := sys.PercentileMeetingSLA(0.05)
		if p > prev+1e-9 {
			t.Errorf("chunk factor %v: percentile %v rose above %v", factor, p, prev)
		}
		prev = p
	}
}

// TestPercentileIncreasesWithSLA: a looser bound can only help — across
// random parameter settings.
func TestPercentileIncreasesWithSLA(t *testing.T) {
	f := func(rawRate, rawMiss, rawSLAa, rawSLAb uint16) bool {
		m := testMetrics()
		m.Rate = 5 + float64(rawRate%40)
		m.DataRate = m.Rate * 1.2
		miss := 0.05 + 0.9*float64(rawMiss%100)/100
		m.MissIndex, m.MissMeta, m.MissData = miss, miss, miss
		d, err := NewDeviceModel(testProps(), m, Options{})
		if err != nil {
			return true // overloaded combinations are out of scope here
		}
		fe, err := NewFrontendModel(m.Rate*4, 12, dist.Degenerate{Value: 0.3e-3})
		if err != nil {
			return true
		}
		sys, err := NewSystemModel(fe, []*DeviceModel{d}, Options{})
		if err != nil {
			return false
		}
		a := 0.005 + float64(rawSLAa%100)*0.002
		b := 0.005 + float64(rawSLAb%100)*0.002
		if a > b {
			a, b = b, a
		}
		return sys.PercentileMeetingSLA(b) >= sys.PercentileMeetingSLA(a)-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestMoreProcessesHelpAtHighLoad: at a load that saturates one process,
// adding processes must raise the percentile substantially.
func TestMoreProcessesHelpAtHighLoad(t *testing.T) {
	m := testMetrics()
	m.Rate, m.DataRate = 95, 114 // union mean ≈ 9.8 ms ⇒ ρ ≈ 0.93 for Nbe=1
	single := buildSingle(t, m)
	m16 := m
	m16.Procs = 16
	d, err := NewDeviceModel(testProps(), m16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fe, _ := NewFrontendModel(m.Rate*4, 12, dist.Degenerate{Value: 0.3e-3})
	multi, err := NewSystemModel(fe, []*DeviceModel{d}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pSingle := single.PercentileMeetingSLA(0.05)
	pMulti := multi.PercentileMeetingSLA(0.05)
	if !(pMulti > pSingle+0.05) {
		t.Errorf("16 processes (%v) should clearly beat 1 (%v) near saturation", pMulti, pSingle)
	}
}

// TestFasterDiskHelps: a lower online disk mean must raise the percentile.
func TestFasterDiskHelps(t *testing.T) {
	slow := testMetrics()
	slow.DiskMean = 15e-3
	fast := testMetrics()
	fast.DiskMean = 5e-3
	pSlow := buildSingle(t, slow).PercentileMeetingSLA(0.05)
	pFast := buildSingle(t, fast).PercentileMeetingSLA(0.05)
	if !(pFast > pSlow) {
		t.Errorf("fast disk %v should beat slow disk %v", pFast, pSlow)
	}
}

// TestZeroMissIsParseBound: with everything cached the backend response is
// parse-dominated and the tight SLA is easily met.
func TestZeroMissIsParseBound(t *testing.T) {
	m := testMetrics()
	m.MissIndex, m.MissMeta, m.MissData = 0, 0, 0
	sys := buildSingle(t, m)
	if p := sys.PercentileMeetingSLA(0.01); p < 0.99 {
		t.Errorf("all-cached percentile at 10ms = %v", p)
	}
}
