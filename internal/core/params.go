// Package core implements the paper's analytic performance model for cloud
// object storage systems: it predicts the percentile of requests meeting an
// SLA (a response-latency bound) from benchmarked device properties and
// online system metrics.
//
// The model composes, in the Laplace–Stieltjes transform domain,
//
//	Sfe = Sq ∗ Wa ∗ Sbe                                      (paper Eq. 2)
//
// where Sq is the frontend M/G/1 sojourn time, Wa the waiting time for
// being accept()-ed (approximated by the backend queue's waiting time), and
// Sbe the backend response time built from the "union operation"
// abstraction. The system-level CDF is the arrival-rate-weighted mixture
// over storage devices (Eq. 3). Numerical transform inversion recovers the
// CDF at the SLA.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"cosmodel/internal/dist"
	"cosmodel/internal/numeric"
	"cosmodel/internal/parallel"
)

// ErrBadParams reports invalid model parameters.
var ErrBadParams = errors.New("core: invalid model parameters")

// ErrOverload reports that the modeled system has no steady state at the
// given load (utilization >= 1 somewhere). The paper stops analyzing such
// operating points: "it is enough to know that the system does not perform
// well in such situations".
var ErrOverload = errors.New("core: modeled queue is overloaded")

// DeviceProperties are the benchmarked performance properties of one
// storage device and its server processes (Section IV-A): fitted raw disk
// service-time distributions per operation class and the (near-constant)
// request parsing latencies of the two tiers.
type DeviceProperties struct {
	// IndexDisk, MetaDisk, DataDisk are the fitted distributions of raw
	// disk service times for index lookups, metadata reads and data chunk
	// reads (the paper fits Gamma distributions, Fig. 5).
	IndexDisk dist.Distribution
	MetaDisk  dist.Distribution
	DataDisk  dist.Distribution
	// ParseBE is the backend request-parsing latency distribution.
	ParseBE dist.Distribution
	// ParseFE is the frontend request-parsing latency distribution.
	ParseFE dist.Distribution
}

// Validate checks the properties.
func (p DeviceProperties) Validate() error {
	check := func(name string, d dist.Distribution) error {
		if d == nil {
			return fmt.Errorf("%w: %s distribution is nil", ErrBadParams, name)
		}
		if d.Mean() < 0 {
			return fmt.Errorf("%w: %s mean is negative", ErrBadParams, name)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		d    dist.Distribution
	}{
		{"index", p.IndexDisk}, {"meta", p.MetaDisk}, {"data", p.DataDisk},
		{"parseBE", p.ParseBE}, {"parseFE", p.ParseFE},
	} {
		if err := check(c.name, c.d); err != nil {
			return err
		}
	}
	if p.IndexDisk.Mean()+p.MetaDisk.Mean()+p.DataDisk.Mean() <= 0 {
		return fmt.Errorf("%w: disk service means are all zero", ErrBadParams)
	}
	return nil
}

// Proportions returns the benchmarked service-time proportions
// (pi, pm, pd), normalized to sum to 1. The paper assumes these proportions
// persist while the absolute disk service time fluctuates online.
func (p DeviceProperties) Proportions() (pi, pm, pd float64) {
	bi, bm, bd := p.IndexDisk.Mean(), p.MetaDisk.Mean(), p.DataDisk.Mean()
	total := bi + bm + bd
	return bi / total, bm / total, bd / total
}

// OnlineMetrics are the per-device runtime measurements the model consumes
// (Section IV-B): arrival rates, cache miss ratios, process count and the
// observed overall mean disk service time.
type OnlineMetrics struct {
	// Rate is r: the request arrival rate at the device (req/s).
	Rate float64
	// DataRate is rdata: the arrival rate of data read operations
	// (chunk reads, counting cache hits and misses alike).
	DataRate float64
	// MissIndex, MissMeta, MissData are the cache miss ratios of the three
	// operation classes.
	MissIndex, MissMeta, MissData float64
	// Procs is Nbe: the number of processes dedicated to the device.
	Procs int
	// DiskMean is the observed overall mean raw disk service time b. If
	// zero, it is derived from the benchmarked distributions and the
	// operation mix.
	DiskMean float64
	// WriteRate is w: the arrival rate of PUT replica sub-requests at the
	// device (writes/s). 0 models a read-only workload and leaves the
	// read pipeline exactly as the paper defines it; a positive rate adds
	// a write class to the same FCFS union-operation queue, so write load
	// inflates the waiting time seen by reads and vice versa.
	WriteRate float64
	// WriteChunks is the mean number of data-chunk disk writes per PUT
	// replica sub-request (>= 1 when WriteRate > 0, 0 otherwise). Writes
	// always reach the disk: a PUT performs an index write, WriteChunks
	// data-chunk writes and a metadata write with no cache shortcut.
	WriteChunks float64
}

// Validate checks the metrics.
func (m OnlineMetrics) Validate() error {
	switch {
	case m.Rate <= 0:
		return fmt.Errorf("%w: rate %v must be positive", ErrBadParams, m.Rate)
	case m.DataRate < m.Rate:
		return fmt.Errorf("%w: data rate %v below request rate %v (each request reads at least one chunk)",
			ErrBadParams, m.DataRate, m.Rate)
	case m.Procs < 1:
		return fmt.Errorf("%w: procs %d", ErrBadParams, m.Procs)
	case m.DiskMean < 0:
		return fmt.Errorf("%w: disk mean %v", ErrBadParams, m.DiskMean)
	case m.WriteRate < 0:
		return fmt.Errorf("%w: write rate %v must be nonnegative", ErrBadParams, m.WriteRate)
	case m.WriteRate > 0 && m.WriteChunks < 1:
		return fmt.Errorf("%w: write chunks %v must be >= 1 when writes arrive (each PUT writes at least one chunk)",
			ErrBadParams, m.WriteChunks)
	case m.WriteRate == 0 && m.WriteChunks != 0:
		return fmt.Errorf("%w: write chunks %v without write traffic", ErrBadParams, m.WriteChunks)
	}
	for _, miss := range []float64{m.MissIndex, m.MissMeta, m.MissData} {
		if miss < 0 || miss > 1 {
			return fmt.Errorf("%w: miss ratio %v outside [0,1]", ErrBadParams, miss)
		}
	}
	return nil
}

// ExtraReads returns p: the mean number of extra data reads per union
// operation, (rdata - r)/r, clamped at zero.
func (m OnlineMetrics) ExtraReads() float64 {
	p := (m.DataRate - m.Rate) / m.Rate
	if p < 0 {
		return 0
	}
	return p
}

// WTAMode selects how the waiting time for being accept()-ed is modeled.
type WTAMode int

const (
	// WTAApprox is the paper's model: Wa(t) = Wbe(t), the backend request
	// processing queue's waiting-time distribution (via PASTA).
	WTAApprox WTAMode = iota
	// WTANone ignores the WTA entirely — the paper's "noWTA" baseline.
	WTANone
	// WTAExact evaluates the paper's exact integral
	// P(Wa > t) = ∫_{x≥t} A(x)(x-t)/x dx numerically instead of using the
	// Wa = A approximation (ablation).
	WTAExact
)

// DiskQueueMode selects the disk-queue approximation for Nbe > 1.
type DiskQueueMode int

const (
	// DiskMM1K is the paper's choice: M/M/1/K with K = Nbe.
	DiskMM1K DiskQueueMode = iota
	// DiskMG1 is an ablation: an unbounded M/G/1 disk queue with the
	// true (scaled) service mixture.
	DiskMG1
)

// CompoundMode selects how the number of extra data reads per union
// operation is modeled.
type CompoundMode int

const (
	// CompoundPoisson is the paper's model: Poisson-many extra reads.
	CompoundPoisson CompoundMode = iota
	// CompoundFixed uses the rounded mean as a deterministic count
	// (ablation).
	CompoundFixed
	// CompoundGeometric uses a geometric count with the same mean
	// (ablation).
	CompoundGeometric
)

// Options configure a model instance. The zero value is the paper's model
// with the Euler inverter.
type Options struct {
	// Inverter performs the numerical Laplace inversion; nil means
	// numeric.NewEuler().
	Inverter numeric.Inverter
	// WTA selects the accept-waiting model.
	WTA WTAMode
	// DiskQueue selects the multi-process disk approximation.
	DiskQueue DiskQueueMode
	// Compound selects the extra-data-read count model.
	Compound CompoundMode
	// ODOPR enables the paper's "One Disk Operation Per Request"
	// baseline: index lookups, metadata reads and extra data reads are
	// treated as cache hits; only the first data read may touch disk.
	ODOPR bool
	// Workers bounds the goroutines the evaluation engine may use when a
	// system model fans its device mixture out (see SystemModel.CDF).
	// 0 uses the process-wide shared pool sized to GOMAXPROCS; 1 forces
	// fully sequential evaluation; n > 1 gives the model its own pool of
	// that size.
	Workers int
	// EvalTimeout bounds one call of any context-aware entry point
	// (CDFContext, QuantileContext, MaxAdmissibleRateContext, ...): the
	// evaluation observes the derived deadline at its internal cancellation
	// checkpoints (between mixture groups, bisection probes and sweep
	// steps) and returns context.DeadlineExceeded. 0 means no per-call
	// budget. The context-free API delegates through the same path, so a
	// nonzero EvalTimeout also bounds CDF, Quantile, MaxAdmissibleRate and
	// friends.
	EvalTimeout time.Duration
	// Fallbacks is the inverter chain the guarded evaluation engine tries
	// when the primary inverter produces an invalid CDF value (NaN, Inf,
	// far outside [0,1]). nil means numeric.DefaultFallbacks()
	// (Euler → Gaver–Stehfest); an empty non-nil slice disables fallback,
	// so invalid inversions surface immediately as numeric.ErrNumerical.
	Fallbacks []numeric.Inverter
	// OnFallback, when non-nil, is called each time the evaluation engine
	// recovers from an invalid inversion by switching from inverter `from`
	// to fallback `to`. It may be called concurrently from worker
	// goroutines and must be safe for concurrent use. Serving layers hook
	// it to report degraded health.
	OnFallback func(from, to string)
	// Observer, when non-nil, receives one EvalEvent per completed
	// top-level evaluation span (CDFContext, BackendCDFContext,
	// QuantileContext, MaxAdmissibleRateContext and their context-free
	// wrappers). Nested spans each fire their own event: an admission
	// search reports one max_admissible_rate event plus one cdf event per
	// probe. The callback may run concurrently and must be cheap — it sits
	// on the evaluation path.
	Observer func(EvalEvent)
	// Pool, when non-nil, is the worker pool the evaluation engine fans
	// mixture groups across, overriding Workers. Injecting a pool lets a
	// serving layer share one bounded pool across every model it builds
	// (and meter its utilization) instead of each model constructing its
	// own.
	Pool *parallel.Pool
}

// EvalEvent describes one completed evaluation span for Options.Observer:
// which entry point ran, how much work it did and how long it took.
type EvalEvent struct {
	// Op identifies the entry point: "cdf", "backend_cdf", "cdf_batch",
	// "quantile", "max_admissible_rate", the coded-read spans
	// "coded_cdf", "coded_backend_cdf", "coded_cdf_batch" and
	// "coded_quantile", or the write-path spans "write_cdf",
	// "write_backend_cdf", "write_cdf_batch" and "write_quantile".
	// Batched spans cover a whole threshold grid in one event, with
	// Probes carrying the grid size.
	Op string
	// Groups is the number of distinct mixture groups the evaluation fans
	// out over (0 for spans without a single underlying model, like
	// admission searches).
	Groups int
	// Nodes is the quadrature node count of the configured inverter (0
	// when the inverter does not expose its nodes).
	Nodes int
	// Probes counts inner CDF evaluations for search spans (quantile
	// bisection, admission-rate search); 0 for single-shot spans.
	Probes int
	// Duration is the span's wall time.
	Duration time.Duration
	// Err is the error the span returned, if any.
	Err error
}

// defaultEuler is the shared inverter behind the nil-Inverter default.
// Inverters are immutable after construction (see numeric.Inverter's safety
// contract), so one instance serves every model and goroutine.
var defaultEuler = numeric.NewEuler()

func (o Options) inverter() numeric.Inverter {
	if o.Inverter == nil {
		return defaultEuler
	}
	return o.Inverter
}

// fallbacks resolves the guarded engine's fallback chain.
func (o Options) fallbacks() []numeric.Inverter {
	if o.Fallbacks != nil {
		return o.Fallbacks
	}
	return numeric.DefaultFallbacks()
}

// EvalContext applies the per-call evaluation budget to ctx. The returned
// cancel function must always be called. Nested entry points may re-apply
// it; a child deadline can only shorten the parent's, so the budget of the
// outermost call the user made always governs.
func (o Options) EvalContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if o.EvalTimeout > 0 {
		return context.WithTimeout(ctx, o.EvalTimeout)
	}
	return ctx, func() {}
}

func (o Options) pool() *parallel.Pool {
	switch {
	case o.Pool != nil:
		return o.Pool
	case o.Workers == 1:
		return nil
	case o.Workers > 1:
		return parallel.New(o.Workers)
	}
	return parallel.Default()
}

// span opens an observer span for op over a model with the given mixture
// width and node count. The returned func fires the event; it is a no-op
// when no Observer is configured, so uninstrumented evaluations pay only a
// nil check.
func (o Options) span(op string, groups, nodes int) func(probes int, err error) {
	obs := o.Observer
	if obs == nil {
		return func(int, error) {}
	}
	start := time.Now()
	return func(probes int, err error) {
		obs(EvalEvent{
			Op:       op,
			Groups:   groups,
			Nodes:    nodes,
			Probes:   probes,
			Duration: time.Since(start),
			Err:      err,
		})
	}
}
