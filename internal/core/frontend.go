package core

import (
	"fmt"

	"cosmodel/internal/dist"
	"cosmodel/internal/lst"
	"cosmodel/internal/queueing"
)

// FrontendModel is the paper's frontend-tier model (Section III-C): the
// frontend processes are homogeneous M/G/1 queues whose service time is the
// request-parsing latency, so the tier-wide queueing-latency distribution
// equals any single process's sojourn distribution at rate r/Nfe.
type FrontendModel struct {
	// TotalRate is the aggregate request arrival rate at the frontend
	// tier (req/s).
	TotalRate float64
	// Procs is Nfe, the number of frontend processes across all servers
	// (summed over sets for a heterogeneous tier).
	Procs int
	// Parse is the frontend request-parsing latency distribution (nil
	// for a heterogeneous tier, whose sets have their own).
	Parse dist.Distribution

	sq   lst.Transform
	util float64
}

// NewFrontendModel validates and builds the frontend model. It returns
// ErrOverload (wrapped) if a frontend process would be saturated.
func NewFrontendModel(totalRate float64, procs int, parse dist.Distribution) (*FrontendModel, error) {
	switch {
	case totalRate <= 0:
		return nil, fmt.Errorf("%w: frontend rate %v", ErrBadParams, totalRate)
	case procs < 1:
		return nil, fmt.Errorf("%w: frontend procs %d", ErrBadParams, procs)
	case parse == nil || parse.Mean() <= 0:
		return nil, fmt.Errorf("%w: frontend parse distribution", ErrBadParams)
	}
	f := &FrontendModel{TotalRate: totalRate, Procs: procs, Parse: parse}
	ri := totalRate / float64(procs)
	q, err := queueing.NewMG1(ri, lst.FromDist(parse))
	if err != nil {
		return nil, fmt.Errorf("%w: frontend process: %v", ErrOverload, err)
	}
	f.sq = q.SojournLST()
	f.util = ri * parse.Mean()
	return f, nil
}

// FrontendSet is one homogeneous group of frontend servers within a
// heterogeneous tier: the paper notes that such a tier "can be divided into
// several sets of homogeneous servers, and the distribution of queueing
// latencies can be calculated separately".
type FrontendSet struct {
	// Rate is the aggregate arrival rate handled by this set (req/s).
	Rate float64
	// Procs is the number of processes in the set.
	Procs int
	// Parse is the set's request-parsing latency distribution.
	Parse dist.Distribution
}

// NewHeterogeneousFrontend builds the frontend model of a tier made of
// several homogeneous sets: each set is its own M/G/1 family, and the
// tier-wide queueing-latency distribution is the rate-weighted mixture of
// the per-set sojourn distributions.
func NewHeterogeneousFrontend(sets []FrontendSet) (*FrontendModel, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("%w: heterogeneous frontend needs at least one set", ErrBadParams)
	}
	var (
		transforms []lst.Transform
		weights    []float64
		totalRate  float64
		totalProcs int
		maxUtil    float64
	)
	for i, set := range sets {
		sub, err := NewFrontendModel(set.Rate, set.Procs, set.Parse)
		if err != nil {
			return nil, fmt.Errorf("frontend set %d: %w", i, err)
		}
		transforms = append(transforms, sub.Sojourn())
		weights = append(weights, set.Rate)
		totalRate += set.Rate
		totalProcs += set.Procs
		if u := sub.Utilization(); u > maxUtil {
			maxUtil = u
		}
	}
	return &FrontendModel{
		TotalRate: totalRate,
		Procs:     totalProcs,
		sq:        lst.Mix(transforms, weights),
		util:      maxUtil,
	}, nil
}

// Sojourn returns Sq: the frontend queueing-plus-parsing latency transform.
func (f *FrontendModel) Sojourn() lst.Transform { return f.sq }

// Utilization returns the per-process utilization (the maximum over sets
// for a heterogeneous tier).
func (f *FrontendModel) Utilization() float64 { return f.util }
