package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"cosmodel/internal/dist"
	"cosmodel/internal/lst"
	"cosmodel/internal/numeric"
	"cosmodel/internal/queueing"
)

var inv = numeric.NewEuler()

// testProps returns disk/parse properties in the range of the paper's
// testbed (Fig. 5: service times of a few to tens of ms).
func testProps() DeviceProperties {
	return DeviceProperties{
		IndexDisk: dist.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  dist.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  dist.NewGammaMeanSCV(8e-3, 0.40),
		ParseBE:   dist.Degenerate{Value: 0.5e-3},
		ParseFE:   dist.Degenerate{Value: 0.3e-3},
	}
}

func testMetrics() OnlineMetrics {
	return OnlineMetrics{
		Rate:      40,
		DataRate:  48,
		MissIndex: 0.35,
		MissMeta:  0.30,
		MissData:  0.45,
		Procs:     1,
	}
}

func TestDevicePropertiesValidate(t *testing.T) {
	if err := testProps().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testProps()
	bad.IndexDisk = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil index dist should fail")
	}
	zero := testProps()
	zero.IndexDisk = dist.Degenerate{Value: 0}
	zero.MetaDisk = dist.Degenerate{Value: 0}
	zero.DataDisk = dist.Degenerate{Value: 0}
	if err := zero.Validate(); err == nil {
		t.Error("all-zero disk means should fail")
	}
}

func TestProportionsSumToOne(t *testing.T) {
	pi, pm, pd := testProps().Proportions()
	if math.Abs(pi+pm+pd-1) > 1e-12 {
		t.Errorf("proportions sum to %v", pi+pm+pd)
	}
	if pi <= 0 || pm <= 0 || pd <= 0 {
		t.Errorf("proportions: %v %v %v", pi, pm, pd)
	}
}

func TestOnlineMetricsValidate(t *testing.T) {
	if err := testMetrics().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*OnlineMetrics){
		func(m *OnlineMetrics) { m.Rate = 0 },
		func(m *OnlineMetrics) { m.DataRate = m.Rate - 1 },
		func(m *OnlineMetrics) { m.MissIndex = -0.1 },
		func(m *OnlineMetrics) { m.MissMeta = 1.1 },
		func(m *OnlineMetrics) { m.Procs = 0 },
		func(m *OnlineMetrics) { m.DiskMean = -1 },
	}
	for i, mut := range mutations {
		m := testMetrics()
		mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

func TestExtraReadsClamped(t *testing.T) {
	m := testMetrics()
	m.Rate, m.DataRate = 10, 25
	if got := m.ExtraReads(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("extra reads = %v, want 1.5", got)
	}
	m.DataRate = 10
	if got := m.ExtraReads(); got != 0 {
		t.Errorf("extra reads = %v, want 0", got)
	}
}

func TestDeviceModelBasics(t *testing.T) {
	d, err := NewDeviceModel(testProps(), testMetrics(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rho := d.Utilization(); rho <= 0 || rho >= 1 {
		t.Errorf("utilization = %v", rho)
	}
	// CDF sanity: monotone, in [0,1], reaching high values at 10x mean.
	prev := -1.0
	mean := d.Backend().Mean
	for x := mean / 10; x < 10*mean; x *= 1.3 {
		c := d.BackendCDF(x)
		if c < -1e-9 || c > 1+1e-9 {
			t.Fatalf("CDF(%v) = %v", x, c)
		}
		if c < prev-1e-6 {
			t.Fatalf("CDF not monotone at %v", x)
		}
		prev = c
	}
	if c := d.BackendCDF(10 * mean); c < 0.95 {
		t.Errorf("CDF(10·mean) = %v", c)
	}
}

// TestDeviceModelReducesToMG1 checks the degenerate case: no extra reads,
// certain misses, zero-latency index/meta, so the union operation is
// parse + data and the backend response must match the M/G/1 sojourn of
// that service.
func TestDeviceModelReducesToMG1(t *testing.T) {
	props := testProps()
	props.IndexDisk = dist.Degenerate{Value: 0}
	props.MetaDisk = dist.Degenerate{Value: 0}
	m := testMetrics()
	m.DataRate = m.Rate // no extra reads
	m.MissIndex, m.MissMeta, m.MissData = 1, 1, 1
	d, err := NewDeviceModel(props, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc := lst.Convolve(lst.FromDist(props.ParseBE), lst.FromDist(props.DataDisk))
	q, err := queueing.NewMG1(m.Rate, svc)
	if err != nil {
		t.Fatal(err)
	}
	want := q.SojournLST()
	for _, x := range []float64{0.005, 0.01, 0.02, 0.05, 0.1} {
		got := d.BackendCDF(x)
		ref := lst.CDF(inv, want, x)
		if math.Abs(got-ref) > 1e-6 {
			t.Errorf("CDF(%v) = %v, want %v", x, got, ref)
		}
	}
}

func TestDeviceModelOverload(t *testing.T) {
	m := testMetrics()
	m.Rate = 2000
	m.DataRate = 2400
	_, err := NewDeviceModel(testProps(), m, Options{})
	if !errors.Is(err, ErrOverload) {
		t.Errorf("want ErrOverload, got %v", err)
	}
}

func TestODOPRIsOptimistic(t *testing.T) {
	our, err := NewDeviceModel(testProps(), testMetrics(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	odopr, err := NewDeviceModel(testProps(), testMetrics(), Options{ODOPR: true})
	if err != nil {
		t.Fatal(err)
	}
	// Ignoring index/meta/extra-read disk traffic can only make latency
	// look better.
	for _, sla := range []float64{0.01, 0.05, 0.1} {
		if odopr.BackendCDF(sla) < our.BackendCDF(sla)-1e-6 {
			t.Errorf("ODOPR CDF(%v) below full model", sla)
		}
	}
	if odopr.Union().Mean >= our.Union().Mean {
		t.Error("ODOPR union mean should be smaller")
	}
}

func TestWTAModes(t *testing.T) {
	props, m := testProps(), testMetrics()
	approx, err := NewDeviceModel(props, m, Options{WTA: WTAApprox})
	if err != nil {
		t.Fatal(err)
	}
	none, err := NewDeviceModel(props, m, Options{WTA: WTANone})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewDeviceModel(props, m, Options{WTA: WTAExact})
	if err != nil {
		t.Fatal(err)
	}
	if none.WTA().Mean != 0 {
		t.Errorf("noWTA mean = %v", none.WTA().Mean)
	}
	if approx.WTA().Mean <= 0 {
		t.Errorf("approx WTA mean = %v", approx.WTA().Mean)
	}
	// The paper: the Wa = A approximation overestimates the waiting of
	// connections that arrive mid-lifetime, so the exact mean is smaller.
	if exact.WTA().Mean > approx.WTA().Mean+1e-9 {
		t.Errorf("exact WTA mean %v exceeds approx %v", exact.WTA().Mean, approx.WTA().Mean)
	}
	if exact.WTA().Mean <= 0 {
		t.Errorf("exact WTA mean = %v", exact.WTA().Mean)
	}
	// LST(0) = 1 for the grid transform.
	if got := exact.WTA().F(0); math.Abs(real(got)-1) > 1e-9 {
		t.Errorf("exact WTA LST(0) = %v", got)
	}
}

func TestMultiProcessModel(t *testing.T) {
	props := testProps()
	for _, nbe := range []int{2, 4, 16} {
		m := testMetrics()
		m.Procs = nbe
		m.Rate = 100
		m.DataRate = 120
		d, err := NewDeviceModel(props, m, Options{})
		if err != nil {
			t.Fatalf("Nbe=%d: %v", nbe, err)
		}
		mean := d.Backend().Mean
		if mean <= 0 {
			t.Fatalf("Nbe=%d: backend mean %v", nbe, mean)
		}
		prev := -1.0
		for x := 1e-3; x < 20*mean; x *= 1.5 {
			c := d.BackendCDF(x)
			if c < -1e-9 || c > 1+1e-9 || c < prev-1e-6 {
				t.Fatalf("Nbe=%d: bad CDF(%v) = %v (prev %v)", nbe, x, c, prev)
			}
			prev = c
		}
	}
}

// TestMultiProcessDiskAblation compares the paper's M/M/1/K disk model with
// the M/G/1 ablation; both must produce valid CDFs, and at low load they
// should roughly agree.
func TestMultiProcessDiskAblation(t *testing.T) {
	props := testProps()
	m := testMetrics()
	m.Procs = 8
	m.Rate = 60
	m.DataRate = 72
	mm1k, err := NewDeviceModel(props, m, Options{DiskQueue: DiskMM1K})
	if err != nil {
		t.Fatal(err)
	}
	mg1, err := NewDeviceModel(props, m, Options{DiskQueue: DiskMG1})
	if err != nil {
		t.Fatal(err)
	}
	a := mm1k.Backend().Mean
	b := mg1.Backend().Mean
	if a <= 0 || b <= 0 {
		t.Fatalf("means: %v %v", a, b)
	}
	if ratio := a / b; ratio < 0.5 || ratio > 2 {
		t.Errorf("disk approximations disagree wildly: %v vs %v", a, b)
	}
}

func TestMultiProcessNoDiskTraffic(t *testing.T) {
	m := testMetrics()
	m.Procs = 4
	m.MissIndex, m.MissMeta, m.MissData = 0, 0, 0
	d, err := NewDeviceModel(testProps(), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Everything cached: response is parse-dominated and fast.
	if c := d.BackendCDF(0.01); c < 0.99 {
		t.Errorf("all-hit CDF(10ms) = %v", c)
	}
}

func TestCompoundModes(t *testing.T) {
	props, m := testProps(), testMetrics()
	m.DataRate = 2.2 * m.Rate // strong chunking
	for _, mode := range []CompoundMode{CompoundPoisson, CompoundFixed, CompoundGeometric} {
		d, err := NewDeviceModel(props, m, Options{Compound: mode})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if d.Union().Mean <= 0 {
			t.Fatalf("mode %d: union mean %v", mode, d.Union().Mean)
		}
	}
	// All modes share the same union mean (same expected extra reads),
	// except Fixed which rounds.
	pois, _ := NewDeviceModel(props, m, Options{Compound: CompoundPoisson})
	geo, _ := NewDeviceModel(props, m, Options{Compound: CompoundGeometric})
	if math.Abs(pois.Union().Mean-geo.Union().Mean) > 1e-12 {
		t.Error("Poisson and geometric compounds should share the union mean")
	}
}

func TestScaledServiceMeans(t *testing.T) {
	props := testProps()
	m := testMetrics()
	m.DiskMean = 12e-3 // online disks look slower than benchmarked
	d, err := NewDeviceModel(props, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bi, bm, bd := d.scaledServiceMeans()
	pi, pm, pd := props.Proportions()
	// Proportions preserved.
	if math.Abs(bi/pi-bm/pm) > 1e-9 || math.Abs(bm/pm-bd/pd) > 1e-9 {
		t.Errorf("proportions broken: %v %v %v", bi, bm, bd)
	}
	// Weighted-mean equation holds.
	lhs := m.MissIndex*bi*m.Rate + m.MissMeta*bm*m.Rate + m.MissData*bd*m.DataRate
	rhs := (m.MissIndex*m.Rate + m.MissMeta*m.Rate + m.MissData*m.DataRate) * m.DiskMean
	if math.Abs(lhs-rhs) > 1e-9*rhs {
		t.Errorf("weighted mean equation: %v vs %v", lhs, rhs)
	}
	// No online measurement: fitted means unchanged.
	m.DiskMean = 0
	d2, _ := NewDeviceModel(props, m, Options{})
	bi2, _, _ := d2.scaledServiceMeans()
	if bi2 != props.IndexDisk.Mean() {
		t.Errorf("unscaled bi = %v", bi2)
	}
}

func TestSolveServiceTimes(t *testing.T) {
	m := testMetrics()
	bi, bm, bd, err := SolveServiceTimes(10e-3, 0.4, 0.25, 0.35, m)
	if err != nil {
		t.Fatal(err)
	}
	lhs := m.MissIndex*bi*m.Rate + m.MissMeta*bm*m.Rate + m.MissData*bd*m.DataRate
	rhs := (m.MissIndex*m.Rate + m.MissMeta*m.Rate + m.MissData*m.DataRate) * 10e-3
	if math.Abs(lhs-rhs) > 1e-12 {
		t.Errorf("equation violated: %v vs %v", lhs, rhs)
	}
	if _, _, _, err := SolveServiceTimes(0, 0.4, 0.25, 0.35, m); err == nil {
		t.Error("b=0 should fail")
	}
	noTraffic := m
	noTraffic.MissIndex, noTraffic.MissMeta, noTraffic.MissData = 0, 0, 0
	if _, _, _, err := SolveServiceTimes(10e-3, 0.4, 0.25, 0.35, noTraffic); err == nil {
		t.Error("no disk traffic should fail")
	}
}

func TestMissRatioByThreshold(t *testing.T) {
	lats := []float64{1e-6, 2e-6, 5e-3, 8e-3, 1e-6, 20e-3}
	if got := MissRatioByThreshold(lats, DefaultMissThreshold); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("miss ratio = %v, want 0.5", got)
	}
	if got := MissRatioByThreshold(nil, 0); got != 0 {
		t.Errorf("empty sample = %v", got)
	}
	if got := MissRatioByThreshold(lats, 0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("default threshold = %v", got)
	}
}

func TestFrontendModel(t *testing.T) {
	fe, err := NewFrontendModel(300, 12, dist.Degenerate{Value: 0.3e-3})
	if err != nil {
		t.Fatal(err)
	}
	if rho := fe.Utilization(); math.Abs(rho-300.0/12*0.3e-3) > 1e-12 {
		t.Errorf("utilization = %v", rho)
	}
	// Sq matches an M/G/1 sojourn at the per-process rate.
	q, _ := queueing.NewMG1(25, lst.FromDist(dist.Degenerate{Value: 0.3e-3}))
	want := q.SojournLST()
	for _, x := range []float64{0.0005, 0.001, 0.002} {
		got := lst.CDF(inv, fe.Sojourn(), x)
		ref := lst.CDF(inv, want, x)
		if math.Abs(got-ref) > 1e-9 {
			t.Errorf("Sq CDF(%v) = %v, want %v", x, got, ref)
		}
	}
	if _, err := NewFrontendModel(0, 1, dist.Degenerate{Value: 1e-3}); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := NewFrontendModel(10, 0, dist.Degenerate{Value: 1e-3}); err == nil {
		t.Error("zero procs should fail")
	}
	if _, err := NewFrontendModel(10, 1, nil); err == nil {
		t.Error("nil parse should fail")
	}
	if _, err := NewFrontendModel(1e9, 1, dist.Degenerate{Value: 1e-3}); !errors.Is(err, ErrOverload) {
		t.Error("saturated frontend should be ErrOverload")
	}
}

func TestSystemModelMixture(t *testing.T) {
	fe, err := NewFrontendModel(100, 12, dist.Degenerate{Value: 0.3e-3})
	if err != nil {
		t.Fatal(err)
	}
	fast := testMetrics()
	fast.Rate, fast.DataRate = 20, 24
	fast.MissIndex, fast.MissMeta, fast.MissData = 0.05, 0.05, 0.1
	slow := testMetrics()
	slow.Rate, slow.DataRate = 60, 72
	slow.MissIndex, slow.MissMeta, slow.MissData = 0.6, 0.6, 0.7
	dFast, err := NewDeviceModel(testProps(), fast, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dSlow, err := NewDeviceModel(testProps(), slow, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemModel(fe, []*DeviceModel{dFast, dSlow}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sla := range []float64{0.01, 0.05, 0.1} {
		want := (20*sys.DeviceResponseCDF(0, sla) + 60*sys.DeviceResponseCDF(1, sla)) / 80
		if got := sys.CDF(sla); math.Abs(got-want) > 1e-9 {
			t.Errorf("mixture CDF(%v) = %v, want %v", sla, got, want)
		}
	}
	// The mixture lies between the two device CDFs.
	sla := 0.05
	lo := math.Min(sys.DeviceResponseCDF(0, sla), sys.DeviceResponseCDF(1, sla))
	hi := math.Max(sys.DeviceResponseCDF(0, sla), sys.DeviceResponseCDF(1, sla))
	if got := sys.CDF(sla); got < lo-1e-9 || got > hi+1e-9 {
		t.Errorf("mixture CDF outside device range")
	}
	if got := sys.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %v", got)
	}
	if sys.PercentileMeetingSLA(0.05) != sys.CDF(0.05) {
		t.Error("PercentileMeetingSLA should equal CDF")
	}
	if sys.MeanResponse() <= 0 {
		t.Error("mean response should be positive")
	}
}

func TestSystemModelAccessors(t *testing.T) {
	fe, _ := NewFrontendModel(100, 12, dist.Degenerate{Value: 0.3e-3})
	d, _ := NewDeviceModel(testProps(), testMetrics(), Options{})
	sys, err := NewSystemModel(fe, []*DeviceModel{d}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Frontend() != fe {
		t.Error("Frontend accessor")
	}
	if devs := sys.Devices(); len(devs) != 1 || devs[0] != d {
		t.Error("Devices accessor")
	}
	if w := d.Waiting(); w.Mean <= 0 {
		t.Errorf("waiting mean = %v", w.Mean)
	}
}

func TestSystemModelValidation(t *testing.T) {
	fe, _ := NewFrontendModel(100, 12, dist.Degenerate{Value: 0.3e-3})
	d, _ := NewDeviceModel(testProps(), testMetrics(), Options{})
	if _, err := NewSystemModel(nil, []*DeviceModel{d}, Options{}); err == nil {
		t.Error("nil frontend should fail")
	}
	if _, err := NewSystemModel(fe, nil, Options{}); err == nil {
		t.Error("no devices should fail")
	}
	if _, err := NewSystemModel(fe, []*DeviceModel{nil}, Options{}); err == nil {
		t.Error("nil device should fail")
	}
}

func TestSystemQuantileRoundTrip(t *testing.T) {
	fe, _ := NewFrontendModel(100, 12, dist.Degenerate{Value: 0.3e-3})
	d, _ := NewDeviceModel(testProps(), testMetrics(), Options{})
	sys, err := NewSystemModel(fe, []*DeviceModel{d}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		q := sys.Quantile(p)
		if got := sys.CDF(q); math.Abs(got-p) > 5e-3 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if sys.Quantile(0) != 0 {
		t.Error("Quantile(0) should be 0")
	}
}

func newTestRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func TestFitDeviceProperties(t *testing.T) {
	// Generate samples from known Gammas and refit.
	gi := dist.NewGammaMeanSCV(9e-3, 0.45)
	gm := dist.NewGammaMeanSCV(6e-3, 0.5)
	gd := dist.NewGammaMeanSCV(8e-3, 0.4)
	r := newTestRand(99)
	props, err := FitDeviceProperties(
		dist.SampleN(gi, r, 20000),
		dist.SampleN(gm, r, 20000),
		dist.SampleN(gd, r, 20000),
		0.3e-3, 0.5e-3,
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(props.IndexDisk.Mean()-9e-3)/9e-3 > 0.05 {
		t.Errorf("index mean = %v", props.IndexDisk.Mean())
	}
	if math.Abs(props.ParseBE.Mean()-0.5e-3) > 1e-12 {
		t.Errorf("parseBE = %v", props.ParseBE.Mean())
	}
	if _, err := FitDeviceProperties(nil, nil, nil, 1, 1); err == nil {
		t.Error("empty samples should fail")
	}
	if _, err := FitDeviceProperties(
		dist.SampleN(gi, r, 100), dist.SampleN(gm, r, 100), dist.SampleN(gd, r, 100),
		0, 1); err == nil {
		t.Error("zero parse should fail")
	}
}

func TestCompareFits(t *testing.T) {
	r := newTestRand(7)
	gi := dist.NewGammaMeanSCV(9e-3, 0.45)
	rep, err := CompareFits(
		dist.SampleN(gi, r, 10000),
		dist.SampleN(gi, r, 10000),
		dist.SampleN(gi, r, 10000),
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Index[0].Name != "gamma" {
		t.Errorf("best index fit = %s, want gamma (the paper's Fig. 5 outcome)", rep.Index[0].Name)
	}
	if _, err := CompareFits(nil, nil, nil); err == nil {
		t.Error("empty should fail")
	}
}
