//go:build race

package core

// raceEnabled reports whether the race detector instruments this build.
// sync.Pool intentionally drops items under the race detector, so
// allocation-count pins are meaningless in race builds.
const raceEnabled = true
