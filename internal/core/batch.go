package core

import (
	"context"
	"fmt"
	"sync"

	"cosmodel/internal/numeric"
)

// BatchKind selects which system-level distribution a batched evaluation
// reports. Kinds evaluated together share one traversal of the device
// mixture: the per-node device factors (wa, sbe) are computed once and
// every kind's composition is accumulated from them, so asking for three
// kinds costs barely more than one.
type BatchKind int

const (
	// BatchFrontend is the frontend-observed response Sq ∗ Wa ∗ Sbe — what
	// CDFContext evaluates.
	BatchFrontend BatchKind = iota
	// BatchBackend is the backend-tier response Sbe — what
	// BackendCDFContext evaluates.
	BatchBackend
	// BatchNoWTA is the response with the accept-waiting factor dropped,
	// Sq ∗ Sbe — the paper's "noWTA" ablation, exact against a model built
	// with Options.WTA == WTANone.
	BatchNoWTA
	// BatchWrite is the frontend-observed single-replica PUT response
	// Sq ∗ Wa ∗ Swr — what WriteCDFContext with a {N:1, W:1} spec
	// evaluates. Requires write traffic in the mixture.
	BatchWrite
	// BatchWriteBackend is the backend-tier PUT replica response Swr.
	BatchWriteBackend
)

// mode maps the public kind onto the engine's internal evaluation mode.
func (k BatchKind) mode() (evalMode, error) {
	switch k {
	case BatchFrontend:
		return modeFull, nil
	case BatchBackend:
		return modeBackend, nil
	case BatchNoWTA:
		return modeNoWTA, nil
	case BatchWrite:
		return modeWriteFull, nil
	case BatchWriteBackend:
		return modeWriteBackend, nil
	}
	return 0, fmt.Errorf("%w: unknown batch kind %d", ErrBadParams, k)
}

// batchArena is the reusable scratch of one batched mixture evaluation:
// the concatenated per-threshold quadrature nodes and weights, the shared
// frontend factor per node, the node offsets per threshold and the raw
// per-(group, mode, threshold) sums. Pooling it drives the steady-state
// allocation count of a batched evaluation to the output slices alone.
type batchArena struct {
	nodes, ws, fe []complex128
	offs          []int
	sums          []float64
}

var batchArenaPool = sync.Pool{New: func() any { return new(batchArena) }}

// floats returns a zeroed float slice of length n backed by buf's capacity
// when possible.
func floats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// mixtureCDFBatch evaluates the rate-weighted mixture CDF for every mode in
// modes at every threshold in ts, writing out[m][j] for (modes[m], ts[j]).
// With a node-exposing inverter the whole request is one traversal of the
// mixture: nodes for all thresholds are appended once, the frontend factor
// is computed once per node, and each group's per-node device factors are
// evaluated once and accumulated into every (mode, threshold) cell. The
// accumulation order per cell is identical to the scalar evaluator's, with
// the per-node 1/s factor folded into the weights, so batch and scalar
// agree to within a few ulp of floating-point reassociation; validation and
// the fallback chain run per (group, mode, threshold) exactly as in the
// scalar path.
func (s *SystemModel) mixtureCDFBatch(ctx context.Context, modes []evalMode, ts []float64, out [][]float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ni, ok := s.opts.inverter().(numeric.NodeInverter)
	if !ok {
		// Opaque custom inverter: no quadrature to share — evaluate
		// scalar, same guarded path, same results.
		for m, mode := range modes {
			for j, t := range ts {
				v, err := s.mixtureCDF(ctx, t, mode)
				if err != nil {
					return err
				}
				out[m][j] = v
			}
		}
		return nil
	}
	a := batchArenaPool.Get().(*batchArena)
	defer func() {
		batchArenaPool.Put(a)
	}()
	nodes, ws := a.nodes[:0], a.ws[:0]
	offs := a.offs[:0]
	for _, t := range ts {
		offs = append(offs, len(nodes))
		if t > 0 {
			nodes, ws = ni.AppendNodes(nodes, ws, t)
		}
	}
	offs = append(offs, len(nodes))
	// Fold the per-node 1/s quadrature factor into the weights once: the
	// scalar evaluator divides every node value by its abscissa, but that
	// division is the same for every group and mode, so hoisting it out of
	// the accumulation loop trades nGroups*nModes complex divisions per
	// node for one. The reassociation perturbs each term by at most a few
	// ulp against the scalar path (pinned at 1e-12 by the equivalence
	// tests).
	for k := range nodes {
		ws[k] /= nodes[k]
	}
	needFE, needRead, needWrite := false, false, false
	for _, mode := range modes {
		if shape := mode.shape(); shape == modeFull || shape == modeNoWTA {
			needFE = true
		}
		if mode.write() {
			needWrite = true
		} else {
			needRead = true
		}
	}
	if needWrite && s.totalWriteRate <= 0 {
		return fmt.Errorf("%w: no write traffic in the device mixture", ErrBadParams)
	}
	fe := a.fe[:0]
	if needFE {
		sq := s.frontend.Sojourn().F
		for _, sk := range nodes {
			fe = append(fe, sq(sk))
		}
	}
	nt, nm := len(ts), len(modes)
	stride := nm * nt
	sums := floats(a.sums, len(s.groups)*stride)
	a.nodes, a.ws, a.fe, a.offs, a.sums = nodes, ws, fe, offs, sums

	// One pass over the mixture: each group walks all thresholds' nodes,
	// evaluating the device factors once per node and folding them into
	// every requested mode. Groups write disjoint sum ranges, so the
	// fan-out is race-free and the reduction below is deterministic.
	run := func(i int) error {
		gs := sums[i*stride : (i+1)*stride]
		dev := s.groups[i].dev
		// A read-only device contributes nothing to write modes: its
		// write factors are never evaluated and its write cells stay 0
		// (the reduction skips them by zero weight).
		devWrite := needWrite && s.groups[i].writeWeight > 0
		for j := range ts {
			for k := offs[j]; k < offs[j+1]; k++ {
				var wa, sbe, wwa, swr complex128
				if needRead {
					wa, sbe = dev.responseNode(nodes[k])
				}
				if devWrite {
					wwa, swr = dev.writeNode(nodes[k])
				}
				wr, wi := real(ws[k]), imag(ws[k])
				for m, mode := range modes {
					var v complex128
					if mode.write() {
						if !devWrite {
							continue
						}
						v = nodeValue(mode.shape(), fe, k, wwa, swr)
					} else {
						v = nodeValue(mode, fe, k, wa, sbe)
					}
					gs[m*nt+j] += wr*real(v) - wi*imag(v)
				}
			}
		}
		return nil
	}
	pool := s.pool
	if len(s.groups) < minDevicesParallel {
		pool = nil
	}
	if err := pool.ForEachContext(ctx, len(s.groups), run); err != nil {
		return err
	}
	// Validate and reduce in (mode, threshold, group) order: the same
	// per-group guarded validation, the same group-order weighted sum and
	// the same final clamp as the scalar mixture.
	for m, mode := range modes {
		write := mode.write()
		denom := s.totalRate
		if write {
			denom = s.totalWriteRate
		}
		for j, t := range ts {
			if t <= 0 {
				out[m][j] = 0
				continue
			}
			total := 0.0
			for i := range s.groups {
				weight := s.groups[i].weight
				if write {
					if weight = s.groups[i].writeWeight; weight == 0 {
						continue
					}
				}
				v, err := s.groupCDFFrom(sums[i*stride+m*nt+j], i, t, mode)
				if err != nil {
					return err
				}
				total += weight * v
			}
			out[m][j] = numeric.Clamp01(total / denom)
		}
	}
	return nil
}

// CDFBatch evaluates the system response-latency CDF at every threshold in
// ts through one traversal of the device mixture; CDFBatch(ts)[i] matches
// CDF(ts[i]) to within a few ulp (the quadrature's per-node 1/s factor is
// folded into the weights). Like CDF, a numerical failure reports zeros.
func (s *SystemModel) CDFBatch(ts []float64) []float64 {
	out, err := s.CDFBatchContext(context.Background(), ts)
	if err != nil {
		return make([]float64, len(ts))
	}
	return out
}

// CDFBatchContext is the context-aware CDFBatch: one guarded, cancellable
// traversal of the mixture answering every threshold. Cancellation and
// Options.EvalTimeout are observed between mixture groups as in
// CDFContext; a per-group inversion that stays invalid through the
// fallback chain surfaces as numeric.ErrNumerical and no partial result is
// returned.
func (s *SystemModel) CDFBatchContext(ctx context.Context, ts []float64) (out []float64, err error) {
	ctx, cancel := s.opts.EvalContext(ctx)
	defer cancel()
	done := s.beginSpan("cdf_batch")
	defer func() { done(len(ts), err) }()
	out = make([]float64, len(ts))
	if err := s.mixtureCDFBatch(ctx, []evalMode{modeFull}, ts, [][]float64{out}); err != nil {
		return nil, err
	}
	return out, nil
}

// CDFBatchKindsContext evaluates several system-level distributions over
// one threshold grid in a single traversal of the device mixture:
// out[m][j] is kinds[m] evaluated at ts[j], each entry matching the
// corresponding scalar evaluation (CDFContext, BackendCDFContext, or a
// WTANone model's CDFContext) to within a few ulp. The experiment sweeps use it to price the
// full model, its backend tier and the noWTA ablation at one traversal
// instead of three.
func (s *SystemModel) CDFBatchKindsContext(ctx context.Context, kinds []BatchKind, ts []float64) (out [][]float64, err error) {
	modes := make([]evalMode, len(kinds))
	for i, k := range kinds {
		if modes[i], err = k.mode(); err != nil {
			return nil, err
		}
	}
	ctx, cancel := s.opts.EvalContext(ctx)
	defer cancel()
	done := s.beginSpan("cdf_batch")
	defer func() { done(len(ts)*len(kinds), err) }()
	out = make([][]float64, len(kinds))
	for i := range out {
		out[i] = make([]float64, len(ts))
	}
	if err := s.mixtureCDFBatch(ctx, modes, ts, out); err != nil {
		return nil, err
	}
	return out, nil
}
