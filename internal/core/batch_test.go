package core

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"cosmodel/internal/numeric"
)

// buildHeteroSystem builds a mixture of n devices with distinct operating
// points, so every device is its own evaluation group.
func buildHeteroSystem(t *testing.T, n int, opts Options) *SystemModel {
	t.Helper()
	devs := make([]*DeviceModel, n)
	total := 0.0
	for i := range devs {
		m := testMetrics()
		m.Rate += 3 * float64(i)
		m.DataRate = m.Rate * 1.2
		m.MissData = 0.45 - 0.02*float64(i)
		d, err := NewDeviceModel(testProps(), m, opts)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
		total += m.Rate
	}
	fe, err := NewFrontendModel(total, 4, testProps().ParseFE)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemModel(fe, devs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// batchGrid is a threshold grid exercising the edge cases: nonpositive
// thresholds (defined as 0), sub-millisecond, typical and tail values.
func batchGrid() []float64 {
	return []float64{-0.01, 0, 1e-6, 0.004, 0.01, 0.02, 0.05, 0.1, 0.25}
}

func TestCDFBatchMatchesScalar(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		sys := buildHeteroSystem(t, n, Options{})
		ts := batchGrid()
		got, err := sys.CDFBatchContext(context.Background(), ts)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range ts {
			want, err := sys.CDFContext(context.Background(), x)
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(got[i] - want); d > 1e-12 {
				t.Errorf("n=%d CDFBatch(%g) = %v, scalar %v (|Δ| = %g)", n, x, got[i], want, d)
			}
		}
		// The context-free wrapper must agree too.
		for i, v := range sys.CDFBatch(ts) {
			if v != got[i] {
				t.Errorf("CDFBatch[%d] = %v != CDFBatchContext %v", i, v, got[i])
			}
		}
	}
}

func TestCDFBatchKindsMatchScalar(t *testing.T) {
	sys := buildHeteroSystem(t, 4, Options{})
	noWTA := buildHeteroSystem(t, 4, Options{WTA: WTANone})
	ts := batchGrid()
	kinds := []BatchKind{BatchFrontend, BatchBackend, BatchNoWTA}
	grids, err := sys.CDFBatchKindsContext(context.Background(), kinds, ts)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range ts {
		fe, err := sys.CDFContext(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		be, err := sys.BackendCDFContext(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		ablated, err := noWTA.CDFContext(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		for k, want := range []float64{fe, be, ablated} {
			if d := math.Abs(grids[k][i] - want); d > 1e-12 {
				t.Errorf("kind %d at t=%g: batch %v, scalar %v (|Δ| = %g)", k, x, grids[k][i], want, d)
			}
		}
	}
}

func TestCDFBatchKindsRejectsUnknownKind(t *testing.T) {
	sys := buildHeteroSystem(t, 1, Options{})
	_, err := sys.CDFBatchKindsContext(context.Background(), []BatchKind{BatchKind(99)}, []float64{0.01})
	if !errors.Is(err, ErrBadParams) {
		t.Fatalf("unknown kind: err = %v, want ErrBadParams", err)
	}
}

func TestCodedCDFBatchMatchesScalar(t *testing.T) {
	sys := buildHeteroSystem(t, 3, Options{})
	ts := batchGrid()
	for _, spec := range []CodedSpec{
		{N: 1, K: 1},
		{N: 3, K: 1},
		{N: 4, K: 2},
		{N: 4, K: 2, Hedge: true, HedgeDelay: 0.004},
	} {
		got, err := sys.CodedCDFBatchContext(context.Background(), spec, ts)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range ts {
			want, err := sys.CodedCDFContext(context.Background(), spec, x)
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(got[i] - want); d > 1e-12 {
				t.Errorf("spec %+v at t=%g: batch %v, scalar %v (|Δ| = %g)", spec, x, got[i], want, d)
			}
		}
	}
}

func TestCodedCDFBatchRejectsBadSpec(t *testing.T) {
	sys := buildHeteroSystem(t, 1, Options{})
	if _, err := sys.CodedCDFBatchContext(context.Background(), CodedSpec{N: 2, K: 5}, []float64{0.01}); err == nil {
		t.Fatal("k > n spec must be rejected")
	}
}

func TestCDFBatchCancelledContext(t *testing.T) {
	sys := buildHeteroSystem(t, 4, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.CDFBatchContext(ctx, batchGrid()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch: err = %v, want context.Canceled", err)
	}
	if _, err := sys.CodedCDFBatchContext(ctx, CodedSpec{N: 3, K: 1}, batchGrid()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled coded batch: err = %v, want context.Canceled", err)
	}
}

func TestCDFBatchOpaqueInverterFallback(t *testing.T) {
	opts := Options{
		Inverter:  opaqueInverter{numeric.NewEuler()},
		Fallbacks: []numeric.Inverter{},
	}
	if _, ok := opts.Inverter.(numeric.NodeInverter); ok {
		t.Fatal("fixture error: opaqueInverter must not expose nodes")
	}
	sys := buildHeteroSystem(t, 3, opts)
	ts := batchGrid()
	got, err := sys.CDFBatchContext(context.Background(), ts)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range ts {
		want, err := sys.CDFContext(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Errorf("opaque CDFBatch(%g) = %v, scalar %v", x, got[i], want)
		}
	}
}

// TestCDFBatchSteadyStateAllocs pins the scratch-arena reuse: once the
// pooled arena has grown, a batched evaluation allocates only its output
// slices and a handful of fixed-size descriptors — not per-node or
// per-group scratch.
func TestCDFBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc counts are not meaningful")
	}
	sys := buildHeteroSystem(t, 2, Options{Workers: 1})
	ts := batchGrid()
	sys.CDFBatch(ts) // warm the arena pool
	allocs := testing.AllocsPerRun(50, func() {
		sys.CDFBatch(ts)
	})
	// Output slice, wrapper slices, context plumbing: ~8 fixed
	// allocations; the concatenated node/weight/sum buffers must all come
	// from the arena.
	if allocs > 12 {
		t.Errorf("steady-state CDFBatch allocates %v objects per run", allocs)
	}
}

// TestQuantileSeededMatchesUnseeded pins the warm-start contract: a seed
// near (or exactly at) the true quantile yields the same root as the
// cold-started search.
func TestQuantileSeededMatchesUnseeded(t *testing.T) {
	sys := buildHeteroSystem(t, 3, Options{})
	p := 0.95
	cold, err := sys.QuantileContext(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []float64{cold, cold * 1.5, cold / 3, 0} {
		warm, err := sys.QuantileSeededContext(context.Background(), p, seed)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(warm - cold); d > 1e-9*(1+cold) {
			t.Errorf("seed %g: quantile %v, cold %v (|Δ| = %g)", seed, warm, cold, d)
		}
	}
}

// TestQuantileStaircasePlateauTerminates is the stall regression: a CDF
// frozen on a plateau below p (scripted via sequenceInverter) used to let
// secant iterates collapse onto one endpoint; the safeguarded root finder
// must still terminate in bounded probes without a spurious error.
func TestQuantileStaircasePlateauTerminates(t *testing.T) {
	// First probe (bracket) sees 0.95 >= p; every later probe sees 0.5:
	// a flat plateau with the scripted root at the bracket's far end.
	calls := &atomic.Int64{}
	seq := sequenceInverter{calls: calls, vals: []float64{0.95, 0.5}}
	opts := Options{
		Inverter:  seq,
		Fallbacks: []numeric.Inverter{}, // keep the script in control
	}
	sys := buildSystem(t, 1, opts)
	q, err := sys.QuantileContext(context.Background(), 0.9)
	if err != nil {
		t.Fatalf("plateau quantile: %v", err)
	}
	if math.IsNaN(q) || q <= 0 {
		t.Errorf("plateau quantile = %v", q)
	}
	if n := calls.Load(); n > 250 {
		t.Errorf("plateau took %d probes; stall safeguard not engaging", n)
	}
}
