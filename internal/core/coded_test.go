package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"cosmodel/internal/coscode"
	"cosmodel/internal/dist"
)

func buildCodedTestSystem(t *testing.T, nDevices int, opts Options) *SystemModel {
	t.Helper()
	devs := make([]*DeviceModel, nDevices)
	for i := range devs {
		m := testMetrics()
		m.Rate *= 1 + 0.02*float64(i) // distinct operating points
		m.DataRate = m.Rate * 1.2
		d, err := NewDeviceModel(testProps(), m, opts)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
	}
	fe, err := NewFrontendModel(testMetrics().Rate*float64(nDevices), 12, testProps().ParseFE)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemModel(fe, devs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// The acceptance bar: a degenerate 1-of-1 "stripe" must reproduce the
// plain backend CDF to within 1e-12 (it runs the identical mixture path).
func TestCodedBackendN1MatchesBackendCDF(t *testing.T) {
	sys := buildCodedTestSystem(t, 3, Options{})
	ctx := context.Background()
	for _, sla := range []float64{0.005, 0.010, 0.050, 0.100} {
		want, err := sys.BackendCDFContext(ctx, sla)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sys.CodedBackendCDFContext(ctx, CodedSpec{N: 1, K: 1}, sla)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("sla=%v: coded n=1 %v vs BackendCDF %v (diff %g)",
				sla, got, want, math.Abs(got-want))
		}
	}
}

func TestCodedFrontendN1MatchesCDF(t *testing.T) {
	sys := buildCodedTestSystem(t, 2, Options{})
	ctx := context.Background()
	for _, sla := range []float64{0.010, 0.050, 0.100} {
		want, err := sys.CDFContext(ctx, sla)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sys.CodedCDFContext(ctx, CodedSpec{N: 1, K: 1}, sla)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("sla=%v: coded n=1 %v vs CDF %v", sla, got, want)
		}
	}
}

func TestCodedCDFPropertiesAtSystemLevel(t *testing.T) {
	sys := buildCodedTestSystem(t, 3, Options{})
	ctx := context.Background()
	// Monotone in t and bounded, for both tiers.
	for _, spec := range []CodedSpec{{N: 3, K: 1}, {N: 6, K: 4}, {N: 4, K: 2, Hedge: true, HedgeDelay: 0.01}} {
		prevFE, prevBE := 0.0, 0.0
		for _, tt := range []float64{0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2} {
			fe, err := sys.CodedCDFContext(ctx, spec, tt)
			if err != nil {
				t.Fatal(err)
			}
			be, err := sys.CodedBackendCDFContext(ctx, spec, tt)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range []float64{fe, be} {
				if v < 0 || v > 1 || math.IsNaN(v) {
					t.Fatalf("spec %v t=%v: value %v outside [0,1]", spec, tt, v)
				}
			}
			if fe < prevFE-1e-9 || be < prevBE-1e-9 {
				t.Fatalf("spec %v t=%v: non-monotone (fe %v<%v or be %v<%v)",
					spec, tt, fe, prevFE, be, prevBE)
			}
			prevFE, prevBE = fe, be
		}
	}
	// Ordered in k at a fixed probe.
	prev := 1.0
	for k := 1; k <= 4; k++ {
		v, err := sys.CodedCDFContext(ctx, CodedSpec{N: 4, K: k}, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if v > prev+1e-9 {
			t.Fatalf("not ordered in k at k=%d: %v > %v", k, v, prev)
		}
		prev = v
	}
	// Fastest-of-3 stochastically dominates the plain read.
	plain, err := sys.CDFContext(ctx, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := sys.CodedCDFContext(ctx, CodedSpec{N: 3, K: 1}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if fast < plain-1e-6 {
		t.Errorf("fastest-of-3 CDF %v below plain CDF %v", fast, plain)
	}
}

func TestCodedHedgeEndpointsAtSystemLevel(t *testing.T) {
	sys := buildCodedTestSystem(t, 3, Options{})
	ctx := context.Background()
	for _, tt := range []float64{0.01, 0.05, 0.1} {
		plain, err := sys.CodedCDFContext(ctx, CodedSpec{N: 3, K: 2}, tt)
		if err != nil {
			t.Fatal(err)
		}
		h0, err := sys.CodedCDFContext(ctx, CodedSpec{N: 3, K: 2, Hedge: true, HedgeDelay: 0}, tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(plain-h0) > 1e-12 {
			t.Errorf("t=%v: hedge Δ=0 %v != plain %v", tt, h0, plain)
		}
		kOnly, err := sys.CodedCDFContext(ctx, CodedSpec{N: 2, K: 2}, tt)
		if err != nil {
			t.Fatal(err)
		}
		hInf, err := sys.CodedCDFContext(ctx, CodedSpec{N: 3, K: 2, Hedge: true, HedgeDelay: math.Inf(1)}, tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(kOnly-hInf) > 1e-12 {
			t.Errorf("t=%v: hedge Δ=∞ %v != k-of-k %v", tt, hInf, kOnly)
		}
	}
}

func TestCodedQuantileInvertsCodedCDF(t *testing.T) {
	sys := buildCodedTestSystem(t, 3, Options{})
	ctx := context.Background()
	for _, spec := range []CodedSpec{{N: 3, K: 1}, {N: 6, K: 4}} {
		for _, p := range []float64{0.5, 0.9, 0.99} {
			q, err := sys.CodedQuantileContext(ctx, spec, p)
			if err != nil {
				t.Fatal(err)
			}
			v, err := sys.CodedCDFContext(ctx, spec, q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(v-p) > 1e-3 {
				t.Errorf("spec %v: CDF(Quantile(%v)=%v) = %v", spec, p, q, v)
			}
		}
	}
	// Replication's p99 beats the plain read's p99; a full fork-join
	// barrier is no faster than its slowest constituent set.
	p99Plain, err := sys.QuantileContext(ctx, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	p99Fast, err := sys.CodedQuantileContext(ctx, CodedSpec{N: 3, K: 1}, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if p99Fast > p99Plain+1e-6 {
		t.Errorf("fastest-of-3 p99 %v above plain p99 %v", p99Fast, p99Plain)
	}
	p99Barrier, err := sys.CodedQuantileContext(ctx, CodedSpec{N: 3, K: 3}, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if p99Barrier < p99Plain-1e-3 {
		t.Errorf("fork-join barrier p99 %v below plain p99 %v", p99Barrier, p99Plain)
	}
}

func TestCodedObserverSpans(t *testing.T) {
	var mu sync.Mutex
	events := map[string]EvalEvent{}
	opts := Options{Observer: func(e EvalEvent) {
		mu.Lock()
		events[e.Op] = e
		mu.Unlock()
	}}
	sys := buildCodedTestSystem(t, 3, opts)
	ctx := context.Background()
	spec := CodedSpec{N: 3, K: 2}
	if _, err := sys.CodedCDFContext(ctx, spec, 0.05); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CodedBackendCDFContext(ctx, spec, 0.05); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CodedQuantileContext(ctx, spec, 0.9); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, op := range []string{"coded_cdf", "coded_backend_cdf", "coded_quantile"} {
		e, ok := events[op]
		if !ok {
			t.Errorf("no %s span observed", op)
			continue
		}
		if e.Probes < 1 {
			t.Errorf("%s span reports %d probes", op, e.Probes)
		}
		if e.Groups != 3 {
			t.Errorf("%s span reports %d groups", op, e.Groups)
		}
	}
}

func TestCodedSpecErrorsSurface(t *testing.T) {
	sys := buildCodedTestSystem(t, 2, Options{})
	ctx := context.Background()
	bad := CodedSpec{N: 2, K: 3}
	if _, err := sys.CodedCDFContext(ctx, bad, 0.05); !errors.Is(err, coscode.ErrBadSpec) {
		t.Errorf("CodedCDFContext: got %v, want ErrBadSpec", err)
	}
	if _, err := sys.CodedBackendCDFContext(ctx, bad, 0.05); !errors.Is(err, coscode.ErrBadSpec) {
		t.Errorf("CodedBackendCDFContext: got %v, want ErrBadSpec", err)
	}
	if _, err := sys.CodedQuantileContext(ctx, bad, 0.9); !errors.Is(err, coscode.ErrBadSpec) {
		t.Errorf("CodedQuantileContext: got %v, want ErrBadSpec", err)
	}
	// Cancellation propagates.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := sys.CodedCDFContext(cctx, CodedSpec{N: 3, K: 2}, 0.05); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context: got %v", err)
	}
}

// The grid discretization must keep a simulated-free sanity property: the
// coded mixture over a homogeneous pool equals the single-device coded
// value (mixture of identical groups collapses).
func TestCodedHomogeneousMixtureCollapses(t *testing.T) {
	m := testMetrics()
	d1, err := NewDeviceModel(testProps(), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontendModel(m.Rate*4, 12, dist.Degenerate{Value: 0.3e-3})
	if err != nil {
		t.Fatal(err)
	}
	one, err := NewSystemModel(fe, []*DeviceModel{d1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	many, err := NewSystemModel(fe, []*DeviceModel{d1, d1, d1, d1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := CodedSpec{N: 4, K: 2}
	for _, tt := range []float64{0.01, 0.05} {
		a, err := one.CodedCDFContext(context.Background(), spec, tt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := many.CodedCDFContext(context.Background(), spec, tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("t=%v: homogeneous mixture %v != single %v", tt, b, a)
		}
	}
}
