package core

import (
	"context"
	"fmt"
	"math"

	"cosmodel/internal/coscode"
	"cosmodel/internal/numeric"
)

// WriteSpec describes a replicated PUT: the object is written to N replica
// devices in parallel and the client is acknowledged when the W-th replica
// ack arrives (Swift's write quorum). The quorum latency is the W-th order
// statistic of the per-replica responses, the same mathematics the coded
// read path points at the k-th-fastest sub-read.
type WriteSpec struct {
	// N is the number of replica devices written.
	N int
	// W is the number of replica acknowledgements required.
	W int
}

// Validate checks the spec.
func (sp WriteSpec) Validate() error {
	if sp.N < 1 {
		return fmt.Errorf("%w: write replicas n=%d must be >= 1", ErrBadParams, sp.N)
	}
	if sp.W < 1 || sp.W > sp.N {
		return fmt.Errorf("%w: write quorum w=%d outside [1,%d]", ErrBadParams, sp.W, sp.N)
	}
	return nil
}

// spec maps the write quorum onto the k-of-n order-statistic combinator:
// waiting for the W-th of N replica acks is the K-th order statistic with
// K = W. No hedging — every replica is written on arrival.
func (sp WriteSpec) spec() coscode.Spec { return coscode.Spec{N: sp.N, K: sp.W} }

// writeCDF evaluates the frontend-observed PUT quorum CDF at t without span
// bookkeeping: the W-of-N order statistic of the per-replica write response
// (Wa ∗ Swr, write-rate-weighted over the device mixture) convolved with
// the frontend sojourn Sq. N=1 short-circuits to the plain single-replica
// write CDF, which is exact (no grid). probes counts base-CDF inversions
// for the observer.
func (s *SystemModel) writeCDF(ctx context.Context, spec WriteSpec, t float64, probes *int) (float64, error) {
	if t <= 0 {
		return 0, nil
	}
	if spec.N == 1 {
		*probes++
		return s.mixtureCDF(ctx, t, modeWriteFull)
	}
	pts, masses, err := s.frontendGrid()
	if err != nil {
		return 0, err
	}
	base := func(x float64) (float64, error) {
		*probes++
		return s.mixtureCDF(ctx, x, modeWriteResponse)
	}
	total := 0.0
	for i, x := range pts {
		if masses[i] == 0 || t-x <= 0 {
			continue
		}
		h, err := coscode.CDF(spec.spec(), base, t-x)
		if err != nil {
			return 0, err
		}
		total += masses[i] * h
	}
	return numeric.Clamp01(total), nil
}

// WriteCDF predicts the fraction of W-of-N replicated PUTs acknowledged
// within t seconds; see WriteCDFContext. A numerical or spec error reports
// 0.
func (s *SystemModel) WriteCDF(spec WriteSpec, t float64) float64 {
	v, _ := s.WriteCDFContext(context.Background(), spec, t)
	return v
}

// WriteCDFContext evaluates the frontend-observed quorum-ack latency CDF of
// a W-of-N replicated PUT at t under ctx. Each replica sub-write
// independently experiences the per-replica write response Wa ∗ Swr of the
// device mixture (only devices carrying write traffic participate,
// write-rate-weighted); the client is acknowledged at the W-th-fastest
// replica (Poisson-binomial order statistic) and the shared frontend
// sojourn Sq is added by discretized convolution. The degenerate
// {N:1, W:1} spec evaluates the plain single-replica write CDF through the
// identical mixture path, with no discretization. Cancellation, EvalTimeout
// and the fallback chain apply as in CDFContext. A mixture with no write
// traffic reports ErrBadParams.
func (s *SystemModel) WriteCDFContext(ctx context.Context, spec WriteSpec, t float64) (v float64, err error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	ctx, cancel := s.opts.EvalContext(ctx)
	defer cancel()
	probes := 0
	done := s.beginSpan("write_cdf")
	defer func() { done(probes, err) }()
	return s.writeCDF(ctx, spec, t, &probes)
}

// writeCDFBatch evaluates the PUT quorum CDF at every threshold in ts
// through one batched traversal of the device mixture — the same
// record/replay scheme as the coded read path: coscode.CDF's base probe
// sequence depends only on the spec and threshold, so a recording pass
// enumerates every backend threshold, one mixtureCDFBatch answers them all,
// and a replay pass reassembles each order-statistic evaluation.
func (s *SystemModel) writeCDFBatch(ctx context.Context, spec WriteSpec, ts []float64, probes *int) ([]float64, error) {
	out := make([]float64, len(ts))
	if spec.N == 1 {
		*probes += len(ts)
		if err := s.mixtureCDFBatch(ctx, []evalMode{modeWriteFull}, ts, [][]float64{out}); err != nil {
			return nil, err
		}
		return out, nil
	}
	pts, masses, err := s.frontendGrid()
	if err != nil {
		return nil, err
	}
	csp := spec.spec()
	var xs []float64
	record := func(x float64) (float64, error) {
		xs = append(xs, x)
		return 0, nil
	}
	for _, t := range ts {
		if t <= 0 {
			continue
		}
		for i, x := range pts {
			if masses[i] == 0 || t-x <= 0 {
				continue
			}
			if _, err := coscode.CDF(csp, record, t-x); err != nil {
				return nil, err
			}
		}
	}
	*probes += len(xs)
	vals := make([]float64, len(xs))
	if err := s.mixtureCDFBatch(ctx, []evalMode{modeWriteResponse}, xs, [][]float64{vals}); err != nil {
		return nil, err
	}
	idx := 0
	replay := func(float64) (float64, error) {
		v := vals[idx]
		idx++
		return v, nil
	}
	for j, t := range ts {
		if t <= 0 {
			continue
		}
		total := 0.0
		for i, x := range pts {
			if masses[i] == 0 || t-x <= 0 {
				continue
			}
			h, err := coscode.CDF(csp, replay, t-x)
			if err != nil {
				return nil, err
			}
			total += masses[i] * h
		}
		out[j] = numeric.Clamp01(total)
	}
	return out, nil
}

// WriteCDFBatchContext evaluates the PUT quorum CDF at every threshold in
// ts under ctx; out[i] equals WriteCDFContext(ctx, spec, ts[i]) exactly,
// but the whole grid shares one traversal of the device mixture.
// Cancellation, EvalTimeout and the fallback chain apply as in
// WriteCDFContext.
func (s *SystemModel) WriteCDFBatchContext(ctx context.Context, spec WriteSpec, ts []float64) (out []float64, err error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := s.opts.EvalContext(ctx)
	defer cancel()
	probes := 0
	done := s.beginSpan("write_cdf_batch")
	defer func() { done(probes, err) }()
	return s.writeCDFBatch(ctx, spec, ts, &probes)
}

// WriteBackendCDF is the backend-tier form of WriteCDF; a numerical or
// spec error reports 0.
func (s *SystemModel) WriteBackendCDF(spec WriteSpec, t float64) float64 {
	v, _ := s.WriteBackendCDFContext(context.Background(), spec, t)
	return v
}

// WriteBackendCDFContext evaluates the backend-tier PUT quorum CDF at t:
// the W-of-N order statistic over the write-rate-weighted Swr mixture,
// without frontend queueing or WTA.
func (s *SystemModel) WriteBackendCDFContext(ctx context.Context, spec WriteSpec, t float64) (v float64, err error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	ctx, cancel := s.opts.EvalContext(ctx)
	defer cancel()
	probes := 0
	done := s.beginSpan("write_backend_cdf")
	defer func() { done(probes, err) }()
	base := func(x float64) (float64, error) {
		probes++
		return s.mixtureCDF(ctx, x, modeWriteBackend)
	}
	return coscode.CDF(spec.spec(), base, t)
}

// WriteQuantile returns the latency below which a fraction p of W-of-N
// replicated PUTs are acknowledged; see WriteQuantileContext. A numerical
// failure reports NaN.
func (s *SystemModel) WriteQuantile(spec WriteSpec, p float64) float64 {
	v, err := s.WriteQuantileContext(context.Background(), spec, p)
	if err != nil {
		return math.NaN()
	}
	return v
}

// WriteQuantileContext inverts the PUT quorum CDF with the same guarded
// bracketed root finder as QuantileContext: cancellation and the
// EvalTimeout budget are observed at every probe, and a grossly
// non-monotone CDF surfaces as numeric.ErrNumerical instead of a garbage
// quantile. It returns +Inf when the quantile exceeds the search ceiling or
// when p >= 1.
func (s *SystemModel) WriteQuantileContext(ctx context.Context, spec WriteSpec, p float64) (q float64, err error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	ctx, cancel := s.opts.EvalContext(ctx)
	defer cancel()
	probes := 0
	done := s.beginSpan("write_quantile")
	defer func() { done(probes, err) }()
	if p <= 0 {
		return 0, nil
	}
	if p >= 1 {
		return math.Inf(1), nil
	}
	// The per-replica write mean bounds the W=1 case; a full W=N barrier
	// can sit above it, which the doubling loop absorbs.
	hi := s.MeanWriteResponse()
	if hi <= 0 {
		hi = 1e-3
	}
	vHi, err := s.writeCDF(ctx, spec, hi, &probes)
	if err != nil {
		return 0, err
	}
	for vHi < p {
		hi *= 2
		if hi > 1e6 {
			return math.Inf(1), nil
		}
		if vHi, err = s.writeCDF(ctx, spec, hi, &probes); err != nil {
			return 0, err
		}
	}
	f := func(t float64) (float64, error) {
		v, err := s.writeCDF(ctx, spec, t, &probes)
		if err != nil {
			return 0, err
		}
		return v - p, nil
	}
	q, err = numeric.BrentGuarded(f, 0, -p, hi, vHi-p, 0, numeric.CDFSlack)
	return q, s.quantileRootErr(err, p, "grossly non-monotone write CDF in quantile bisection")
}
