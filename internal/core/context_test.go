package core

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"cosmodel/internal/numeric"
)

// buildSystem assembles a system model of n identical test devices.
func buildSystem(t *testing.T, n int, opts Options) *SystemModel {
	t.Helper()
	m := testMetrics()
	devs := make([]*DeviceModel, n)
	for i := range devs {
		d, err := NewDeviceModel(testProps(), m, opts)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
	}
	fe, err := NewFrontendModel(m.Rate*float64(n), 4, testProps().ParseFE)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemModel(fe, devs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestContextFreeAPIEquivalence pins the compatibility contract: the legacy
// entry points delegate to the context-aware implementations and produce
// identical values.
func TestContextFreeAPIEquivalence(t *testing.T) {
	sys := buildSystem(t, 4, Options{})
	for _, sla := range []float64{0.01, 0.05, 0.1} {
		want := sys.CDF(sla)
		got, err := sys.CDFContext(context.Background(), sla)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("CDFContext(%v) = %v, CDF = %v", sla, got, want)
		}
		wantBE := sys.BackendCDF(sla)
		gotBE, err := sys.BackendCDFContext(context.Background(), sla)
		if err != nil || gotBE != wantBE {
			t.Errorf("BackendCDFContext(%v) = %v (%v), BackendCDF = %v", sla, gotBE, err, wantBE)
		}
	}
	wantQ := sys.Quantile(0.9)
	gotQ, err := sys.QuantileContext(context.Background(), 0.9)
	if err != nil || gotQ != wantQ {
		t.Errorf("QuantileContext = %v (%v), Quantile = %v", gotQ, err, wantQ)
	}
}

func TestCDFContextCancelled(t *testing.T) {
	sys := buildSystem(t, 4, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v, err := sys.CDFContext(ctx, 0.05)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if v != 0 {
		t.Errorf("cancelled evaluation leaked value %v", v)
	}
	if _, err := sys.QuantileContext(ctx, 0.9); !errors.Is(err, context.Canceled) {
		t.Errorf("QuantileContext err = %v", err)
	}
}

// slowInverter delays every inversion, making evaluation budgets bite.
type slowInverter struct {
	d     time.Duration
	inner numeric.Inverter
}

func (s slowInverter) Invert(f numeric.TransformFunc, t float64) float64 {
	time.Sleep(s.d)
	return s.inner.Invert(f, t)
}
func (s slowInverter) Name() string { return "slow-" + s.inner.Name() }

func TestEvalTimeoutBoundsCall(t *testing.T) {
	opts := Options{
		Inverter:    slowInverter{d: 20 * time.Millisecond, inner: numeric.NewEuler()},
		EvalTimeout: time.Millisecond,
	}
	sys := buildSystem(t, 8, opts)
	start := time.Now()
	_, err := sys.QuantileContext(context.Background(), 0.99)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// The quantile search would perform dozens of sequential probes, each
	// ≥ 8×20ms uncancelled; the budget must cut it off far earlier.
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("budgeted call took %v", el)
	}
}

// nanInverter poisons every inversion.
type nanInverter struct{}

func (nanInverter) Invert(numeric.TransformFunc, float64) float64 { return math.NaN() }
func (nanInverter) Name() string                                  { return "nan" }

func TestFallbackRecoversPoisonedInverter(t *testing.T) {
	var fired atomic.Int64
	var from, to atomic.Value
	opts := Options{
		Inverter: nanInverter{},
		OnFallback: func(f, tn string) {
			fired.Add(1)
			from.Store(f)
			to.Store(tn)
		},
	}
	sys := buildSystem(t, 2, opts)
	v, err := sys.CDFContext(context.Background(), 0.05)
	if err != nil {
		t.Fatalf("fallback chain should have recovered: %v", err)
	}
	if v <= 0 || v > 1 {
		t.Errorf("recovered CDF %v outside (0,1]", v)
	}
	if fired.Load() == 0 {
		t.Fatal("OnFallback never fired")
	}
	if from.Load() != "nan" {
		t.Errorf("fallback from %v, want the poisoned primary", from.Load())
	}
	if to.Load() == "nan" || to.Load() == "" {
		t.Errorf("fallback to %v", to.Load())
	}
	// The recovered value must agree with a healthy model.
	want := buildSystem(t, 2, Options{}).CDF(0.05)
	if math.Abs(v-want) > 1e-6 {
		t.Errorf("recovered CDF %v, healthy model %v", v, want)
	}
}

func TestDisabledFallbacksSurfaceErrNumerical(t *testing.T) {
	opts := Options{
		Inverter:  nanInverter{},
		Fallbacks: []numeric.Inverter{}, // non-nil empty: fallback disabled
	}
	sys := buildSystem(t, 2, opts)
	v, err := sys.CDFContext(context.Background(), 0.05)
	if !errors.Is(err, numeric.ErrNumerical) {
		t.Fatalf("err = %v, want ErrNumerical", err)
	}
	var ie *numeric.InversionError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %T", err)
	}
	if ie.Reason != "NaN CDF value" {
		t.Errorf("reason %q", ie.Reason)
	}
	if math.IsNaN(v) || v != 0 {
		t.Errorf("poisoned evaluation returned %v, want 0", v)
	}
	// The legacy CDF must degrade to 0, never NaN.
	if got := sys.CDF(0.05); got != 0 {
		t.Errorf("legacy CDF on poisoned model = %v, want 0", got)
	}
	if q := sys.Quantile(0.9); !math.IsNaN(q) {
		t.Errorf("legacy Quantile on poisoned model = %v, want NaN", q)
	}
}

// sequenceInverter replays scripted CDF values call by call — a harness for
// driving the bisection into pathological shapes.
type sequenceInverter struct {
	calls *atomic.Int64
	vals  []float64
}

func (s sequenceInverter) Invert(numeric.TransformFunc, float64) float64 {
	i := int(s.calls.Add(1)) - 1
	if i >= len(s.vals) {
		i = len(s.vals) - 1
	}
	return s.vals[i]
}
func (s sequenceInverter) Name() string { return "sequence" }

func TestQuantileDetectsGrossNonMonotonicity(t *testing.T) {
	// Probe script: the initial hi probe sees 0.95 (≥ p, no doubling);
	// bisection probe 1 sees 0.2 (→ lo, vLo=0.2); probe 2 sees 0.05,
	// which undershoots vLo by more than the slack → broken CDF.
	seq := sequenceInverter{calls: &atomic.Int64{}, vals: []float64{0.95, 0.2, 0.05}}
	opts := Options{
		Inverter:  seq,
		Fallbacks: []numeric.Inverter{}, // keep the script in control
	}
	sys := buildSystem(t, 1, opts)
	_, err := sys.QuantileContext(context.Background(), 0.9)
	if !errors.Is(err, numeric.ErrNumerical) {
		t.Fatalf("err = %v, want ErrNumerical", err)
	}
	var ie *numeric.InversionError
	if !errors.As(err, &ie) || ie.Reason != "grossly non-monotone CDF in quantile bisection" {
		t.Errorf("err %v", err)
	}
}

func TestMaxRateWhereContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	probes := 0
	meets := func(ctx context.Context, rate float64) (bool, error) {
		probes++
		if probes == 3 {
			cancel()
		}
		return rate < 1000, nil
	}
	_, err := MaxRateWhereContext(ctx, meets, 1, 0.5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if probes > 4 {
		t.Errorf("%d probes ran after cancellation", probes)
	}
}

func TestMaxRateWhereContextProbeError(t *testing.T) {
	boom := errors.New("probe failed")
	_, err := MaxRateWhereContext(context.Background(),
		func(_ context.Context, rate float64) (bool, error) {
			if rate > 10 {
				return false, boom
			}
			return true, nil
		}, 1, 0.5)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

// TestMaxRateWhereLegacyEquivalence pins the wrapper: the context-free
// bisection finds the same threshold.
func TestMaxRateWhereLegacyEquivalence(t *testing.T) {
	meets := func(rate float64) bool { return rate <= 730 }
	want := MaxRateWhere(meets, 1, 1)
	got, err := MaxRateWhereContext(context.Background(),
		func(_ context.Context, rate float64) (bool, error) { return meets(rate), nil }, 1, 1)
	if err != nil || got != want {
		t.Errorf("context variant %v (%v), legacy %v", got, err, want)
	}
	if want < 729 || want > 730 {
		t.Errorf("threshold %v, want ≈730", want)
	}
}

func TestDeploymentContextPropagation(t *testing.T) {
	d := Deployment{
		Props:         testProps(),
		Devices:       2,
		Procs:         1,
		FrontendProcs: 4,
		ExtraReadFrac: 0.2,
		MissIndex:     0.35, MissMeta: 0.3, MissData: 0.45,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.MeetFractionContext(ctx, 60, 0.05); !errors.Is(err, context.Canceled) {
		t.Errorf("MeetFractionContext err = %v", err)
	}
	if _, err := MaxAdmissibleRateContext(ctx, d, 0.05, 0.9); !errors.Is(err, context.Canceled) {
		t.Errorf("MaxAdmissibleRateContext err = %v", err)
	}
	if _, err := HeadroomContext(ctx, d, 60, 0.05, 0.9); !errors.Is(err, context.Canceled) {
		t.Errorf("HeadroomContext err = %v", err)
	}
	// And the healthy path still answers.
	rate, err := MaxAdmissibleRateContext(context.Background(), d, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Errorf("admissible rate %v", rate)
	}
}
