package core

import (
	"fmt"

	"cosmodel/internal/dist"
)

// DefaultMissThreshold is the latency threshold (seconds) separating cache
// hits from misses when classifying measured operation latencies. The paper
// uses 0.015 ms: anything faster than this must have been served from
// memory.
const DefaultMissThreshold = 15e-6

// MissRatioByThreshold estimates a cache miss ratio from measured operation
// latencies by counting how many exceed the threshold (Section IV-B's
// latency-threshold method). It returns 0 for an empty sample.
func MissRatioByThreshold(latencies []float64, threshold float64) float64 {
	if len(latencies) == 0 {
		return 0
	}
	if threshold <= 0 {
		threshold = DefaultMissThreshold
	}
	misses := 0
	for _, l := range latencies {
		if l > threshold {
			misses++
		}
	}
	return float64(misses) / float64(len(latencies))
}

// SolveServiceTimes solves the paper's Section IV-B equations for the
// per-operation mean disk service times given the observed overall mean b,
// the benchmarked proportions (pi, pm, pd) and the operation mix implied by
// the online metrics:
//
//	bi/pi = bm/pm = bd/pd
//	mi·bi·r + mm·bm·r + md·bd·rdata = (mi·r + mm·r + md·rdata)·b
func SolveServiceTimes(b, pi, pm, pd float64, m OnlineMetrics) (bi, bm, bd float64, err error) {
	if err := m.Validate(); err != nil {
		return 0, 0, 0, err
	}
	if b <= 0 || pi < 0 || pm < 0 || pd < 0 || pi+pm+pd <= 0 {
		return 0, 0, 0, fmt.Errorf("%w: b=%v proportions=(%v,%v,%v)", ErrBadParams, b, pi, pm, pd)
	}
	num := (m.MissIndex*m.Rate + m.MissMeta*m.Rate + m.MissData*m.DataRate) * b
	den := m.MissIndex*pi*m.Rate + m.MissMeta*pm*m.Rate + m.MissData*pd*m.DataRate
	if den <= 0 {
		return 0, 0, 0, fmt.Errorf("%w: no disk traffic to attribute service times to", ErrBadParams)
	}
	x := num / den
	return pi * x, pm * x, pd * x, nil
}

// RescaleDeviceProperties re-solves Section IV-B against a freshly observed
// overall mean disk service time b and operation mix m, and returns a copy
// of base whose per-operation disk distributions are rescaled (shape
// preserved) to the solved means bi, bm, bd. This is the online-recalibration
// counterpart of FitDeviceProperties: when drift is confirmed but no raw
// per-class samples are available for a full refit, the benchmarked
// proportions persist and only the absolute service times move.
func RescaleDeviceProperties(base DeviceProperties, b float64, m OnlineMetrics) (DeviceProperties, error) {
	if err := base.Validate(); err != nil {
		return DeviceProperties{}, err
	}
	pi, pm, pd := base.Proportions()
	bi, bm, bd, err := SolveServiceTimes(b, pi, pm, pd, m)
	if err != nil {
		return DeviceProperties{}, err
	}
	out := base
	out.IndexDisk = dist.ScaleToMean(base.IndexDisk, bi)
	out.MetaDisk = dist.ScaleToMean(base.MetaDisk, bm)
	out.DataDisk = dist.ScaleToMean(base.DataDisk, bd)
	return out, nil
}

// FitDeviceProperties runs the paper's Fig. 5 calibration: it fits Gamma
// distributions to the benchmarked per-operation disk service times and
// wraps the near-constant parse latencies as Degenerate distributions.
func FitDeviceProperties(index, meta, data []float64, parseFE, parseBE float64) (DeviceProperties, error) {
	gi, err := dist.FitGamma(index)
	if err != nil {
		return DeviceProperties{}, fmt.Errorf("core: fitting index service times: %w", err)
	}
	gm, err := dist.FitGamma(meta)
	if err != nil {
		return DeviceProperties{}, fmt.Errorf("core: fitting metadata service times: %w", err)
	}
	gd, err := dist.FitGamma(data)
	if err != nil {
		return DeviceProperties{}, fmt.Errorf("core: fitting data service times: %w", err)
	}
	if parseFE <= 0 || parseBE <= 0 {
		return DeviceProperties{}, fmt.Errorf("%w: parse latencies must be positive", ErrBadParams)
	}
	return DeviceProperties{
		IndexDisk: gi,
		MetaDisk:  gm,
		DataDisk:  gd,
		ParseBE:   dist.Degenerate{Value: parseBE},
		ParseFE:   dist.Degenerate{Value: parseFE},
	}, nil
}

// BestFitReport ranks the paper's four candidate families on each
// operation's samples (the comparison behind Fig. 5, where Gamma wins).
type BestFitReport struct {
	Index, Meta, Data []dist.FitResult
}

// CompareFits produces the Fig. 5 family comparison.
func CompareFits(index, meta, data []float64) (BestFitReport, error) {
	fi, err := dist.FitBest(index)
	if err != nil {
		return BestFitReport{}, err
	}
	fm, err := dist.FitBest(meta)
	if err != nil {
		return BestFitReport{}, err
	}
	fd, err := dist.FitBest(data)
	if err != nil {
		return BestFitReport{}, err
	}
	return BestFitReport{Index: fi, Meta: fm, Data: fd}, nil
}
