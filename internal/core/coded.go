package core

import (
	"context"
	"math"

	"cosmodel/internal/coscode"
	"cosmodel/internal/lst"
	"cosmodel/internal/numeric"
)

// CodedSpec describes a k-of-n coded read, optionally hedged; see
// coscode.Spec for the field semantics.
type CodedSpec = coscode.Spec

// codedFrontendGridPoints is the resolution of the discretized frontend
// sojourn used to convolve Sq with the order-statistic CDF. The sojourn is
// sub-millisecond next to the tens-of-milliseconds backend response, so a
// modest grid keeps the discretization error far below inversion noise.
const codedFrontendGridPoints = 48

// frontendGrid tabulates the frontend sojourn CDF on a fixed grid and
// converts it to point masses (interval increments, residual tail mass on
// the last point — the same discretization gridTransform uses). Built once
// per model; concurrency-safe.
func (s *SystemModel) frontendGrid() ([]float64, []float64, error) {
	s.feGridOnce.Do(func() {
		sq := s.frontend.Sojourn()
		mean := sq.Mean
		if !(mean > 0) {
			mean = 1e-4
		}
		span := 12 * mean
		inv := s.opts.inverter()
		pts := make([]float64, codedFrontendGridPoints)
		masses := make([]float64, codedFrontendGridPoints)
		for i := range pts {
			pts[i] = span * float64(i+1) / codedFrontendGridPoints
		}
		vs := lst.CDFBatch(inv, sq, pts)
		prev := 0.0
		for i, v := range vs {
			if reason := numeric.CheckCDF(v); reason != "" {
				s.feGridErr = &numeric.InversionError{
					T: pts[i], Value: v,
					Reason: "frontend sojourn grid: " + reason,
					Tried:  []string{inv.Name()},
				}
				return
			}
			v = numeric.Clamp01(v)
			if v < prev {
				v = prev
			}
			masses[i] = v - prev
			prev = v
		}
		masses[len(masses)-1] += 1 - prev
		s.fePoints, s.feMasses = pts, masses
	})
	return s.fePoints, s.feMasses, s.feGridErr
}

// codedCDF evaluates the frontend-observed coded-read CDF at t without
// span bookkeeping: the k-of-n order statistic of the per-read response
// (Wa ∗ Sbe, rate-weighted over the device mixture) convolved with the
// frontend sojourn Sq. N=1 short-circuits to the plain response CDF, which
// is exact (no grid). probes counts base-CDF inversions for the observer.
func (s *SystemModel) codedCDF(ctx context.Context, spec CodedSpec, t float64, probes *int) (float64, error) {
	if t <= 0 {
		return 0, nil
	}
	if spec.N == 1 {
		*probes++
		return s.mixtureCDF(ctx, t, modeFull)
	}
	pts, masses, err := s.frontendGrid()
	if err != nil {
		return 0, err
	}
	base := func(x float64) (float64, error) {
		*probes++
		return s.mixtureCDF(ctx, x, modeResponse)
	}
	total := 0.0
	for i, x := range pts {
		if masses[i] == 0 || t-x <= 0 {
			continue
		}
		h, err := coscode.CDF(spec, base, t-x)
		if err != nil {
			return 0, err
		}
		total += masses[i] * h
	}
	return numeric.Clamp01(total), nil
}

// CodedCDF predicts the fraction of (n,k) coded reads responding within t
// seconds; see CodedCDFContext. A numerical or spec error reports 0.
func (s *SystemModel) CodedCDF(spec CodedSpec, t float64) float64 {
	v, _ := s.CodedCDFContext(context.Background(), spec, t)
	return v
}

// CodedCDFContext evaluates the frontend-observed response-latency CDF of
// a k-of-n coded read at t under ctx. Each stripe sub-read independently
// experiences the per-read response Wa ∗ Sbe of the device mixture; the
// request completes at the k-th-fastest sub-read (Poisson-binomial order
// statistic, hedged reserves delayed by the spec's HedgeDelay) and the
// shared frontend sojourn Sq is added by discretized convolution. The
// degenerate N=1 spec evaluates identically to CDFContext. Cancellation,
// EvalTimeout and the fallback chain apply as in CDFContext.
func (s *SystemModel) CodedCDFContext(ctx context.Context, spec CodedSpec, t float64) (v float64, err error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	ctx, cancel := s.opts.EvalContext(ctx)
	defer cancel()
	probes := 0
	done := s.beginSpan("coded_cdf")
	defer func() { done(probes, err) }()
	return s.codedCDF(ctx, spec, t, &probes)
}

// codedCDFBatch evaluates the coded-read CDF at every threshold in ts
// through one batched traversal of the device mixture. coscode.CDF's base
// probe sequence depends only on the spec and its threshold argument,
// never on probed values, so a recording pass enumerates every backend
// threshold the scalar loop would probe, one mixtureCDFBatch answers them
// all, and a replay pass reassembles each order-statistic evaluation from
// the recorded answers — bit-identical to per-threshold codedCDF.
func (s *SystemModel) codedCDFBatch(ctx context.Context, spec CodedSpec, ts []float64, probes *int) ([]float64, error) {
	out := make([]float64, len(ts))
	if spec.N == 1 {
		*probes += len(ts)
		if err := s.mixtureCDFBatch(ctx, []evalMode{modeFull}, ts, [][]float64{out}); err != nil {
			return nil, err
		}
		return out, nil
	}
	pts, masses, err := s.frontendGrid()
	if err != nil {
		return nil, err
	}
	var xs []float64
	record := func(x float64) (float64, error) {
		xs = append(xs, x)
		return 0, nil
	}
	for _, t := range ts {
		if t <= 0 {
			continue
		}
		for i, x := range pts {
			if masses[i] == 0 || t-x <= 0 {
				continue
			}
			if _, err := coscode.CDF(spec, record, t-x); err != nil {
				return nil, err
			}
		}
	}
	*probes += len(xs)
	vals := make([]float64, len(xs))
	if err := s.mixtureCDFBatch(ctx, []evalMode{modeResponse}, xs, [][]float64{vals}); err != nil {
		return nil, err
	}
	idx := 0
	replay := func(float64) (float64, error) {
		v := vals[idx]
		idx++
		return v, nil
	}
	for j, t := range ts {
		if t <= 0 {
			continue
		}
		total := 0.0
		for i, x := range pts {
			if masses[i] == 0 || t-x <= 0 {
				continue
			}
			h, err := coscode.CDF(spec, replay, t-x)
			if err != nil {
				return nil, err
			}
			total += masses[i] * h
		}
		out[j] = numeric.Clamp01(total)
	}
	return out, nil
}

// CodedCDFBatchContext evaluates the coded-read CDF at every threshold in
// ts under ctx; out[i] equals CodedCDFContext(ctx, spec, ts[i]) exactly,
// but the whole grid shares one traversal of the device mixture — the
// batched engine answers every order-statistic probe of every threshold in
// a single pass. Cancellation, EvalTimeout and the fallback chain apply as
// in CodedCDFContext.
func (s *SystemModel) CodedCDFBatchContext(ctx context.Context, spec CodedSpec, ts []float64) (out []float64, err error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := s.opts.EvalContext(ctx)
	defer cancel()
	probes := 0
	done := s.beginSpan("coded_cdf_batch")
	defer func() { done(probes, err) }()
	return s.codedCDFBatch(ctx, spec, ts, &probes)
}

// CodedBackendCDF is the backend-tier form of CodedCDF; a numerical or
// spec error reports 0.
func (s *SystemModel) CodedBackendCDF(spec CodedSpec, t float64) float64 {
	v, _ := s.CodedBackendCDFContext(context.Background(), spec, t)
	return v
}

// CodedBackendCDFContext evaluates the backend-tier coded-read CDF at t:
// the k-of-n order statistic over the rate-weighted Sbe mixture, without
// frontend queueing or WTA. The degenerate N=1 spec evaluates through the
// identical mixture path as BackendCDFContext, so the two agree exactly.
func (s *SystemModel) CodedBackendCDFContext(ctx context.Context, spec CodedSpec, t float64) (v float64, err error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	ctx, cancel := s.opts.EvalContext(ctx)
	defer cancel()
	probes := 0
	done := s.beginSpan("coded_backend_cdf")
	defer func() { done(probes, err) }()
	base := func(x float64) (float64, error) {
		probes++
		return s.mixtureCDF(ctx, x, modeBackend)
	}
	return coscode.CDF(spec, base, t)
}

// CodedQuantile returns the latency below which a fraction p of coded
// reads complete; see CodedQuantileContext. A numerical failure reports
// NaN.
func (s *SystemModel) CodedQuantile(spec CodedSpec, p float64) float64 {
	v, err := s.CodedQuantileContext(context.Background(), spec, p)
	if err != nil {
		return math.NaN()
	}
	return v
}

// CodedQuantileContext inverts the coded-read CDF with the same guarded
// bracketed root finder as QuantileContext (numeric.BrentGuarded):
// cancellation and the EvalTimeout budget are observed at every probe, and
// a grossly non-monotone CDF surfaces as numeric.ErrNumerical instead of a
// garbage quantile. It returns +Inf when the quantile exceeds the search
// ceiling or when p >= 1.
func (s *SystemModel) CodedQuantileContext(ctx context.Context, spec CodedSpec, p float64) (q float64, err error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	ctx, cancel := s.opts.EvalContext(ctx)
	defer cancel()
	probes := 0
	done := s.beginSpan("coded_quantile")
	defer func() { done(probes, err) }()
	if p <= 0 {
		return 0, nil
	}
	if p >= 1 {
		return math.Inf(1), nil
	}
	// The per-read mean bounds the k=1 case; a fork-join barrier can sit
	// well above it, which the doubling loop absorbs.
	hi := s.MeanResponse()
	if hi <= 0 {
		hi = 1e-3
	}
	if spec.Hedge && !math.IsInf(spec.HedgeDelay, 1) {
		hi += spec.HedgeDelay
	}
	vHi, err := s.codedCDF(ctx, spec, hi, &probes)
	if err != nil {
		return 0, err
	}
	for vHi < p {
		hi *= 2
		if hi > 1e6 {
			return math.Inf(1), nil
		}
		if vHi, err = s.codedCDF(ctx, spec, hi, &probes); err != nil {
			return 0, err
		}
	}
	f := func(t float64) (float64, error) {
		v, err := s.codedCDF(ctx, spec, t, &probes)
		if err != nil {
			return 0, err
		}
		return v - p, nil
	}
	q, err = numeric.BrentGuarded(f, 0, -p, hi, vHi-p, 0, numeric.CDFSlack)
	return q, s.quantileRootErr(err, p, "grossly non-monotone coded CDF in quantile bisection")
}
