package core

import (
	"math"
	"testing"

	"cosmodel/internal/dist"
	"cosmodel/internal/lst"
)

func TestHeterogeneousFrontendSingleSetMatchesHomogeneous(t *testing.T) {
	parse := dist.Degenerate{Value: 0.3e-3}
	homo, err := NewFrontendModel(200, 8, parse)
	if err != nil {
		t.Fatal(err)
	}
	hetero, err := NewHeterogeneousFrontend([]FrontendSet{{Rate: 200, Procs: 8, Parse: parse}})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.0004, 0.001, 0.003} {
		a := lst.CDF(inv, homo.Sojourn(), x)
		b := lst.CDF(inv, hetero.Sojourn(), x)
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("CDF(%v): %v vs %v", x, a, b)
		}
	}
	if hetero.TotalRate != 200 || hetero.Procs != 8 {
		t.Errorf("aggregates: rate %v procs %d", hetero.TotalRate, hetero.Procs)
	}
	if math.Abs(hetero.Utilization()-homo.Utilization()) > 1e-12 {
		t.Errorf("utilization %v vs %v", hetero.Utilization(), homo.Utilization())
	}
}

func TestHeterogeneousFrontendMixture(t *testing.T) {
	fast := FrontendSet{Rate: 100, Procs: 4, Parse: dist.Degenerate{Value: 0.2e-3}}
	slow := FrontendSet{Rate: 300, Procs: 4, Parse: dist.Degenerate{Value: 0.8e-3}}
	hetero, err := NewHeterogeneousFrontend([]FrontendSet{fast, slow})
	if err != nil {
		t.Fatal(err)
	}
	fastOnly, _ := NewFrontendModel(fast.Rate, fast.Procs, fast.Parse)
	slowOnly, _ := NewFrontendModel(slow.Rate, slow.Procs, slow.Parse)
	for _, x := range []float64{0.0005, 0.001, 0.002} {
		want := (100*lst.CDF(inv, fastOnly.Sojourn(), x) + 300*lst.CDF(inv, slowOnly.Sojourn(), x)) / 400
		got := lst.CDF(inv, hetero.Sojourn(), x)
		// Inverting the mixed transform vs mixing the inverted CDFs
		// differ by inversion noise near the parse-time atoms (~1e-4).
		if math.Abs(got-want) > 5e-4 {
			t.Errorf("CDF(%v) = %v, want %v", x, got, want)
		}
	}
	// Mean is the rate-weighted mean.
	want := (100*fastOnly.Sojourn().Mean + 300*slowOnly.Sojourn().Mean) / 400
	if math.Abs(hetero.Sojourn().Mean-want) > 1e-15 {
		t.Errorf("mean = %v, want %v", hetero.Sojourn().Mean, want)
	}
	// Utilization reports the hottest set.
	if got := hetero.Utilization(); math.Abs(got-slowOnly.Utilization()) > 1e-12 {
		t.Errorf("utilization = %v, want %v", got, slowOnly.Utilization())
	}
}

func TestHeterogeneousFrontendValidation(t *testing.T) {
	if _, err := NewHeterogeneousFrontend(nil); err == nil {
		t.Error("empty sets should fail")
	}
	bad := []FrontendSet{{Rate: 0, Procs: 1, Parse: dist.Degenerate{Value: 1e-3}}}
	if _, err := NewHeterogeneousFrontend(bad); err == nil {
		t.Error("bad set should fail")
	}
	overloaded := []FrontendSet{{Rate: 1e9, Procs: 1, Parse: dist.Degenerate{Value: 1e-3}}}
	if _, err := NewHeterogeneousFrontend(overloaded); err == nil {
		t.Error("overloaded set should fail")
	}
}

func TestSystemBackendCDF(t *testing.T) {
	fe, err := NewFrontendModel(100, 12, dist.Degenerate{Value: 0.3e-3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewDeviceModel(testProps(), testMetrics(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2 := testMetrics()
	m2.Rate, m2.DataRate = 80, 96
	b, err := NewDeviceModel(testProps(), m2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemModel(fe, []*DeviceModel{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sla := range []float64{0.01, 0.05, 0.1} {
		want := (a.Rate()*a.BackendCDF(sla) + b.Rate()*b.BackendCDF(sla)) / (a.Rate() + b.Rate())
		if got := sys.BackendCDF(sla); math.Abs(got-want) > 1e-12 {
			t.Errorf("backend CDF(%v) = %v, want %v", sla, got, want)
		}
		// The backend-tier percentile can only be better than the full
		// frontend-observed one (which adds Sq and Wa on top).
		if sys.BackendCDF(sla) < sys.CDF(sla)-1e-9 {
			t.Errorf("backend CDF below full CDF at %v", sla)
		}
	}
	if sys.BackendCDF(0) != 0 {
		t.Error("backend CDF at 0 should be 0")
	}
	if sys.BackendPercentileMeetingSLA(0.05) != sys.BackendCDF(0.05) {
		t.Error("alias mismatch")
	}
}
