package core

import (
	"fmt"
	"math"
	"math/cmplx"

	"cosmodel/internal/dist"
	"cosmodel/internal/lst"
	"cosmodel/internal/numeric"
	"cosmodel/internal/queueing"
)

// DeviceModel is the paper's backend-tier model for one storage device: the
// union-operation M/G/1 queue, its waiting-time distribution (which doubles
// as the WTA distribution), and the backend response-time distribution.
type DeviceModel struct {
	props   DeviceProperties
	metrics OnlineMetrics
	opts    Options

	union lst.Transform // Bbe: union operation service time (read class)
	wbe   lst.Transform // waiting time of the request processing queue
	sbe   lst.Transform // backend response time (Eq. 1)
	wa    lst.Transform // waiting time for being accept()-ed

	// Write-class pipeline, populated when OnlineMetrics.WriteRate > 0.
	// A PUT replica sub-request is parse + index write + WriteChunks
	// data-chunk writes + metadata write, all reaching the disk (no cache
	// shortcut) — but the event loop does not serve it as one operation.
	// The data chunks arrive over the network one at a time, so the
	// process interleaves other requests between them: the replica is a
	// head operation (parse + index write), writePW middle operations
	// (one data-chunk write each) and a tail operation (final chunk +
	// metadata write), each a separate FCFS arrival to the same
	// per-process queue as reads.
	writeOp   lst.Transform // total write work (all ops convolved)
	swr       lst.Transform // write replica response: per-op sojourns convolved
	writeRate float64
	writePW   float64 // mean middle-chunk ops per write (WriteChunks-1)
	// Normalized service-mixture weights of the shared queue over the
	// four operation streams [read union, write head, write middle chunk,
	// write tail]; their arithmetic mirrors lst.Mix exactly so the node
	// evaluators reproduce the queue's service value bit-for-bit.
	fracRead, fracHead, fracMid, fracTail float64

	// effective per-operation latency transforms (cache-mixed), kept for
	// introspection and tests.
	opIndex, opMeta, opData lst.Transform
	procRate                float64 // per-process arrival rate r/Nbe

	// Shared-subexpression state for responseNode: the flattened form of
	// the transform pipeline above, letting the evaluation engine compute
	// Wa(s) and Sbe(s) at one frequency with each leaf transform evaluated
	// exactly once (union, wbe and sbe all share the parse/op factors).
	parse                    lst.Transform // backend parse latency
	unionQ                   queueing.MG1  // per-process union-operation queue
	rawIdx, rawMeta, rawData lst.Transform // raw disk latency per class
	rawShared                bool          // one disk transform stands in for all three classes
	missIdx, missMeta        float64       // effective (ODOPR-adjusted, clamped) miss ratios
	missData                 float64
	extraVal                 func(pd complex128) complex128 // extra-reads factor given the opData value
}

// NewDeviceModel builds the model for one device. It returns ErrOverload
// (wrapped) if the union-operation queue has no steady state.
func NewDeviceModel(props DeviceProperties, m OnlineMetrics, opts Options) (*DeviceModel, error) {
	if err := props.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	d := &DeviceModel{props: props, metrics: m, opts: opts}
	if err := d.build(); err != nil {
		return nil, err
	}
	return d, nil
}

// build assembles the transform pipeline following Section III-B.
func (d *DeviceModel) build() error {
	m := d.metrics
	// Step 1: effective raw disk-latency transforms per operation.
	idx, meta, data, shared, err := d.diskOperationTransforms()
	if err != nil {
		return err
	}
	d.rawIdx, d.rawMeta, d.rawData, d.rawShared = idx, meta, data, shared
	// Step 2: cache-aware operation latencies
	// index(t) = indexd(t)·m + δ(t)(1-m), etc.
	mi, mm, md := m.MissIndex, m.MissMeta, m.MissData
	p := m.ExtraReads()
	if d.opts.ODOPR {
		// Baseline: at most one disk operation per request — index,
		// metadata and extra data reads all "hit".
		mi, mm, p = 0, 0, 0
	}
	d.opIndex = lst.HitOrMiss(idx, mi)
	d.opMeta = lst.HitOrMiss(meta, mm)
	d.opData = lst.HitOrMiss(data, md)
	d.missIdx, d.missMeta, d.missData = clampUnit(mi), clampUnit(mm), clampUnit(md)
	d.parse = lst.FromDist(d.props.ParseBE)

	// Step 3: the union operation. Each union operation is one request's
	// parse + index + meta + data plus a random number of extra data
	// chunk reads belonging to other requests, interleaved by the event
	// loop. extraVal mirrors the compound transform's arithmetic exactly
	// so responseNode reproduces extra.F from an already-computed opData
	// value.
	var extra lst.Transform
	switch d.opts.Compound {
	case CompoundFixed:
		n := int(math.Round(p))
		extra = lst.FixedCompound(d.opData, n)
		d.extraVal = func(pd complex128) complex128 {
			if n <= 0 {
				return 1
			}
			return cmplx.Pow(pd, complex(float64(n), 0))
		}
	case CompoundGeometric:
		extra = lst.GeometricCompound(d.opData, p)
		q := p / (1 + p)
		d.extraVal = func(pd complex128) complex128 {
			if p <= 0 {
				return 1
			}
			return complex(1-q, 0) / (1 - complex(q, 0)*pd)
		}
	default:
		extra = lst.PoissonCompound(d.opData, p)
		d.extraVal = func(pd complex128) complex128 {
			if p <= 0 {
				return 1
			}
			return cmplx.Exp(complex(p, 0) * (pd - 1))
		}
	}
	d.union = lst.Convolve(d.parse, d.opIndex, d.opMeta, d.opData, extra)

	// Step 4: the M/G/1 queue of union operations, per process. With
	// write traffic the same FCFS queue serves both classes, so write
	// load inflates the waiting (and through it Wa and Sbe) seen by
	// reads, and vice versa — but a write replica does NOT enter the
	// queue as one monolithic operation. The event loop serves it as
	// separate operations with other work interleaved between them (the
	// chunks arrive over the network one at a time): a head op (parse +
	// index write), one op per middle data chunk, and a tail op (final
	// chunk + metadata write). Folding all of that into a single service
	// time would inflate the service second moment — and through
	// Pollaczek–Khinchin the waiting of every class — several-fold, so
	// the queue's service is the rate-weighted mixture over the four
	// operation streams and its arrival rate counts operations, not
	// replicas. A zero write rate leaves the read-only pipeline
	// structurally unchanged.
	d.writeRate = m.WriteRate
	svc := d.union
	totalRate := m.Rate
	var wHead, wTail lst.Transform
	if m.WriteRate > 0 {
		// The middle-chunk count is Poisson with mean WriteChunks-1,
		// mirroring the read path's extra-reads treatment of a
		// size-dependent operation count. Every write op reaches the
		// disk — no cache shortcut.
		pw := m.WriteChunks - 1
		d.writePW = pw
		wHead = lst.Convolve(d.parse, d.rawIdx)
		wTail = lst.Convolve(d.rawData, d.rawMeta)
		d.writeOp = lst.Convolve(d.parse, d.rawIdx, d.rawMeta, d.rawData,
			lst.PoissonCompound(d.rawData, pw))
		weights := []float64{m.Rate, m.WriteRate, m.WriteRate * pw, m.WriteRate}
		svc = lst.Mix([]lst.Transform{d.union, wHead, d.rawData, wTail}, weights)
		// Accumulate the total in lst.Mix's order so the stored
		// fractions equal its normalized weights bit-for-bit.
		totalRate = 0
		for _, w := range weights {
			totalRate += w
		}
		d.fracRead = m.Rate / totalRate
		d.fracHead = m.WriteRate / totalRate
		d.fracMid = m.WriteRate * pw / totalRate
		d.fracTail = m.WriteRate / totalRate
	}
	d.procRate = totalRate / float64(m.Procs)
	q, err := queueing.NewMG1(d.procRate, svc)
	if err != nil {
		return fmt.Errorf("%w: device union queue: %v", ErrOverload, err)
	}
	d.unionQ = q
	d.wbe = q.WaitingLST()

	// Step 5: backend response time, Eq. 1:
	// Sbe = Wbe ∗ parse ∗ index ∗ meta ∗ data.
	d.sbe = lst.Convolve(d.wbe, d.parse, d.opIndex, d.opMeta, d.opData)
	if m.WriteRate > 0 {
		// Write replica response: each of the replica's operations
		// queues behind the shared waiting independently, so the
		// response is the convolution of per-operation sojourns —
		// head, a Poisson-compound number of middle-chunk ops, and
		// tail.
		d.swr = lst.Convolve(
			lst.Convolve(d.wbe, wHead),
			lst.PoissonCompound(lst.Convolve(d.wbe, d.rawData), d.writePW),
			lst.Convolve(d.wbe, wTail),
		)
	}

	// Step 6: waiting time for being accept()-ed.
	switch d.opts.WTA {
	case WTANone:
		d.wa = lst.One()
	case WTAExact:
		d.wa = d.exactWTA()
	default:
		d.wa = d.wbe
	}
	return nil
}

// diskOperationTransforms produces the effective raw disk latency transform
// per operation class, handling both the single-process case (scaled fitted
// distributions) and the multi-process case (disk queue sojourn). shared
// reports that one transform stands in for all three classes, letting the
// evaluation engine evaluate it once per frequency.
func (d *DeviceModel) diskOperationTransforms() (idx, meta, data lst.Transform, shared bool, err error) {
	m := d.metrics
	bi, bm, bd := d.scaledServiceMeans()
	iDist := dist.ScaleToMean(d.props.IndexDisk, bi)
	mDist := dist.ScaleToMean(d.props.MetaDisk, bm)
	dDist := dist.ScaleToMean(d.props.DataDisk, bd)

	if m.Procs == 1 {
		return lst.FromDist(iDist), lst.FromDist(mDist), lst.FromDist(dDist), false, nil
	}

	// Nbe > 1: the disk is shared by Nbe processes, each blocking on its
	// one outstanding operation, so at most Nbe operations are in the
	// disk system. Different operation types mix in the disk queue, so a
	// single "disk response latency" distribution replaces all three.
	mi, mm, md := m.MissIndex, m.MissMeta, m.MissData
	if d.opts.ODOPR {
		mi, mm = 0, 0
	}
	// Writes always reach the disk: every PUT replica adds one index
	// write, one metadata write and WriteChunks data-chunk writes to the
	// disk arrival stream (zero terms for a read-only workload).
	rIndex := mi*m.Rate + m.WriteRate
	rMeta := mm*m.Rate + m.WriteRate
	dataRate := m.DataRate
	if d.opts.ODOPR {
		dataRate = m.Rate
	}
	rData := md*dataRate + m.WriteRate*m.WriteChunks
	rDisk := rIndex + rMeta + rData
	if rDisk <= 0 {
		// Nothing reaches the disk; latencies are all zero.
		zero := lst.FromDist(dist.Degenerate{Value: 0})
		return zero, zero, zero, true, nil
	}
	// Overall mean raw service time b for the operation mix.
	b := (rIndex*bi + rMeta*bm + rData*bd) / rDisk

	var sojourn lst.Transform
	switch d.opts.DiskQueue {
	case DiskMG1:
		// Ablation: unbounded disk queue with the true service mixture.
		svc := lst.Mix(
			[]lst.Transform{lst.FromDist(iDist), lst.FromDist(mDist), lst.FromDist(dDist)},
			[]float64{rIndex, rMeta, rData},
		)
		q, qerr := queueing.NewMG1(rDisk, svc)
		if qerr != nil {
			return idx, meta, data, false, fmt.Errorf("%w: disk M/G/1: %v", ErrOverload, qerr)
		}
		sojourn = q.SojournLST()
	default:
		// The paper's approximation: M/M/1/K with K = Nbe.
		q, qerr := queueing.NewMM1K(rDisk, 1/b, m.Procs)
		if qerr != nil {
			return idx, meta, data, false, fmt.Errorf("%w: %v", ErrBadParams, qerr)
		}
		sojourn = q.SojournLST()
	}
	return sojourn, sojourn, sojourn, true, nil
}

// scaledServiceMeans solves Section IV-B's proportion equations for the
// per-operation mean service times (bi, bm, bd) given the online overall
// mean b; if no online measurement is available the fitted means are used
// unchanged.
func (d *DeviceModel) scaledServiceMeans() (bi, bm, bd float64) {
	bi = d.props.IndexDisk.Mean()
	bm = d.props.MetaDisk.Mean()
	bd = d.props.DataDisk.Mean()
	b := d.metrics.DiskMean
	if b <= 0 {
		return bi, bm, bd
	}
	pi, pm, pd := d.props.Proportions()
	m := d.metrics
	// bi/pi = bm/pm = bd/pd = x and the rate-weighted mean over every
	// disk operation class — read misses plus the write stream's
	// unconditional index/meta/chunk writes — equals the observed b.
	num := (m.MissIndex*m.Rate + m.MissMeta*m.Rate + m.MissData*m.DataRate +
		m.WriteRate*(2+m.WriteChunks)) * b
	den := m.MissIndex*pi*m.Rate + m.MissMeta*pm*m.Rate + m.MissData*pd*m.DataRate +
		m.WriteRate*(pi+pm+m.WriteChunks*pd)
	if den <= 0 || num <= 0 {
		return bi, bm, bd
	}
	x := num / den
	return pi * x, pm * x, pd * x
}

// exactWTA evaluates the paper's exact accept-waiting integral numerically:
// P(Wa > t) = ∫_{x≥t} a(x)·(x-t)/x dx, where a is the accept-lifetime
// density (the continuous part of Wbe; the atom at zero contributes
// zero-waiting connections). The resulting CDF is re-encoded as a
// grid-based transform so it can be convolved with the other components.
func (d *DeviceModel) exactWTA() lst.Transform {
	inv := d.opts.inverter()
	// Grid over the waiting-time support: out to far tail of Wbe.
	hi := d.wbe.Mean * 12
	if hi <= 0 {
		return lst.One()
	}
	const gridN = 160
	step := hi / gridN
	// Tabulate the continuous density a(x) = rho-weighted pdf for x > 0.
	dens := make([]float64, gridN+1)
	xs := make([]float64, gridN+1)
	for i := 1; i <= gridN; i++ {
		x := float64(i) * step
		xs[i] = x
		dens[i] = lst.PDF(inv, d.wbe, x)
	}
	survival := func(t float64) float64 {
		s := 0.0
		for i := 1; i <= gridN; i++ {
			x := xs[i]
			if x <= t {
				continue
			}
			s += dens[i] * (x - t) / x * step
		}
		return numeric.Clamp01(s)
	}
	// Build CDF table and mean; P(Wa = 0) >= 1 - rho (atom).
	cdf := make([]float64, gridN+1)
	mean := 0.0
	for i := 0; i <= gridN; i++ {
		cdf[i] = 1 - survival(float64(i)*step)
		if i > 0 {
			mean += (1 - cdf[i]) * step
		}
	}
	return gridTransform(xs, cdf, mean)
}

// gridTransform builds an lst.Transform from a tabulated CDF via the
// Laplace–Stieltjes sum over grid increments (a discrete approximation of
// the distribution).
func gridTransform(xs, cdf []float64, mean float64) lst.Transform {
	n := len(xs)
	masses := make([]float64, n)
	prev := 0.0
	for i := 0; i < n; i++ {
		masses[i] = cdf[i] - prev
		if masses[i] < 0 {
			masses[i] = 0
		}
		prev = cdf[i]
	}
	// Any residual tail mass sits at the last grid point.
	tail := 1 - prev
	if tail > 0 {
		masses[n-1] += tail
	}
	points := append([]float64(nil), xs...)
	return lst.Transform{
		F: func(s complex128) complex128 {
			var sum complex128
			for i, m := range masses {
				if m == 0 {
					continue
				}
				sum += complex(m, 0) * lst.Delay(points[i]).F(s)
			}
			return sum
		},
		Mean: mean,
	}
}

// Union returns the union-operation service transform Bbe.
func (d *DeviceModel) Union() lst.Transform { return d.union }

// Waiting returns the request-processing-queue waiting transform Wbe.
func (d *DeviceModel) Waiting() lst.Transform { return d.wbe }

// Backend returns the backend response transform Sbe (Eq. 1).
func (d *DeviceModel) Backend() lst.Transform { return d.sbe }

// WTA returns the accept-waiting transform Wa.
func (d *DeviceModel) WTA() lst.Transform { return d.wa }

// Utilization returns the per-process union-operation utilization ρ (both
// traffic classes when write traffic is modeled).
func (d *DeviceModel) Utilization() float64 { return d.unionQ.Utilization() }

// Rate returns the device's request arrival rate r.
func (d *DeviceModel) Rate() float64 { return d.metrics.Rate }

// WriteRate returns the device's PUT replica arrival rate (0 for a
// read-only workload).
func (d *DeviceModel) WriteRate() float64 { return d.metrics.WriteRate }

// WriteOp returns the total write-work transform — every operation of one
// PUT replica convolved (the zero Transform when no write traffic is
// modeled). The queue serves these as separate operations; this is the
// summed service, for introspection.
func (d *DeviceModel) WriteOp() lst.Transform { return d.writeOp }

// WriteResponse returns the write replica response transform Swr: the
// convolution of the per-operation sojourns (Wbe ∗ head) ∗
// compound(Wbe ∗ chunk) ∗ (Wbe ∗ tail) — the zero Transform when no write
// traffic is modeled.
func (d *DeviceModel) WriteResponse() lst.Transform { return d.swr }

// BackendCDF evaluates the backend response-latency CDF at t.
func (d *DeviceModel) BackendCDF(t float64) float64 {
	return lst.CDF(d.opts.inverter(), d.sbe, t)
}

// clampUnit clamps a miss ratio to [0,1], matching lst.HitOrMiss.
func clampUnit(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// responseNode evaluates the accept-waiting transform Wa and the backend
// response transform Sbe at one inversion frequency s, sharing every leaf
// evaluation between them. The nested Transform closures built in build()
// would evaluate the parse/index/meta/data factors up to three times each
// per frequency (once inside the union service time feeding the P-K waiting
// term, once in Sbe's own convolution, and once more through Wa = Wbe);
// here each leaf is evaluated exactly once, and in multi-process mode the
// shared disk-sojourn transform once for all three operation classes. The
// arithmetic mirrors the closure pipeline term for term, so results agree
// with Transform.F to floating-point associativity (well below 1e-12).
// It is safe for concurrent use: all receiver state is immutable after
// build().
func (d *DeviceModel) responseNode(s complex128) (wa, sbe complex128) {
	pr, pi, pm, pd, ri, rm, rd := d.leafValues(s)
	union := pr * pi * pm * pd * d.extraVal(pd)
	w := d.unionQ.WaitingValue(s, d.serviceValue(union, pr, ri, rm, rd))
	sbe = w * pr * pi * pm * pd
	return d.waValue(s, w), sbe
}

// writeNode is responseNode's write-class sibling: it evaluates Wa and the
// write replica response Swr (the convolution of per-operation sojourns:
// head, Poisson-compound middle chunks, tail) at one inversion frequency s,
// each leaf transform evaluated exactly once. The shared queue's waiting
// term needs every operation stream's value (the service mixture), so the
// read factors are computed here too. Only meaningful on a device built
// with OnlineMetrics.WriteRate > 0; a read-only device reports a zero
// response (it contributes nothing to a write mixture).
func (d *DeviceModel) writeNode(s complex128) (wa, swr complex128) {
	if d.writeRate <= 0 {
		return 1, 0
	}
	pr, pi, pm, pd, ri, rm, rd := d.leafValues(s)
	union := pr * pi * pm * pd * d.extraVal(pd)
	head := pr * ri
	tail := rd * rm
	svc := complex(d.fracRead, 0)*union + complex(d.fracHead, 0)*head +
		complex(d.fracMid, 0)*rd + complex(d.fracTail, 0)*tail
	w := d.unionQ.WaitingValue(s, svc)
	swr = (w * head) * (w * tail)
	if d.writePW > 0 {
		swr *= cmplx.Exp(complex(d.writePW, 0) * (w*rd - 1))
	}
	return d.waValue(s, w), swr
}

// leafValues evaluates every leaf transform of the device pipeline at one
// frequency: the parse factor, the cache-mixed per-operation factors
// (pi, pm, pd) and the raw disk factors behind them (ri, rm, rd — the
// write path reads them directly, misses being certain for writes). In
// multi-process mode one shared disk-sojourn evaluation stands in for all
// three raw classes.
func (d *DeviceModel) leafValues(s complex128) (pr, pi, pm, pd, ri, rm, rd complex128) {
	pr = d.parse.F(s)
	if d.rawShared {
		rd = d.rawData.F(s)
		ri, rm = rd, rd
	} else {
		ri = d.rawIdx.F(s)
		rm = d.rawMeta.F(s)
		rd = d.rawData.F(s)
	}
	pi = complex(d.missIdx, 0)*ri + complex(1-d.missIdx, 0)
	pm = complex(d.missMeta, 0)*rm + complex(1-d.missMeta, 0)
	pd = complex(d.missData, 0)*rd + complex(1-d.missData, 0)
	return
}

// serviceValue composes the shared queue's service-transform value from the
// read union-operation value (and, with write traffic, the three write
// operation streams): the rate-weighted mixture, mirroring the lst.Mix
// arithmetic in build() term for term.
func (d *DeviceModel) serviceValue(union, pr, ri, rm, rd complex128) complex128 {
	if d.writeRate <= 0 {
		return union
	}
	return complex(d.fracRead, 0)*union + complex(d.fracHead, 0)*(pr*ri) +
		complex(d.fracMid, 0)*rd + complex(d.fracTail, 0)*(rd*rm)
}

// waValue maps the shared waiting value onto the configured WTA mode.
func (d *DeviceModel) waValue(s, w complex128) complex128 {
	switch d.opts.WTA {
	case WTANone:
		return 1
	case WTAExact:
		return d.wa.F(s)
	default:
		return w
	}
}
