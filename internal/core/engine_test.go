package core

import (
	"math"
	"sync"
	"testing"

	"cosmodel/internal/dist"
	"cosmodel/internal/numeric"
)

// opaqueInverter hides the NodeInverter quadrature of the wrapped inverter,
// forcing SystemModel down the legacy per-transform closure path.
type opaqueInverter struct{ numeric.Inverter }

// engineDevices builds n device models with distinct per-device metrics.
func engineDevices(t testing.TB, n, procs int, opts Options) []*DeviceModel {
	t.Helper()
	devs := make([]*DeviceModel, n)
	for i := range devs {
		m := testMetrics()
		m.Rate = 30 + 4*float64(i)
		m.DataRate = m.Rate * 1.2
		m.MissData = 0.35 + 0.02*float64(i%5)
		m.Procs = procs
		d, err := NewDeviceModel(testProps(), m, opts)
		if err != nil {
			t.Fatalf("device %d: %v", i, err)
		}
		devs[i] = d
	}
	return devs
}

func engineSystem(t testing.TB, n, procs int, opts Options) *SystemModel {
	t.Helper()
	devs := engineDevices(t, n, procs, opts)
	rate := 0.0
	for _, d := range devs {
		rate += d.Rate()
	}
	fe, err := NewFrontendModel(rate, 4, testProps().ParseFE)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemModel(fe, devs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestEngineMatchesLegacyClosures compares the node-sharing evaluation
// engine against the legacy path (independent inversion of each composed
// transform closure) across every model variant the engine specializes.
func TestEngineMatchesLegacyClosures(t *testing.T) {
	variants := []struct {
		name  string
		procs int
		opts  Options
	}{
		{"default", 1, Options{}},
		{"odopr", 1, Options{ODOPR: true}},
		{"noWTA", 1, Options{WTA: WTANone}},
		{"exactWTA", 1, Options{WTA: WTAExact}},
		{"fixedCompound", 1, Options{Compound: CompoundFixed}},
		{"geomCompound", 1, Options{Compound: CompoundGeometric}},
		{"multiproc", 4, Options{}},
		{"multiprocMG1", 4, Options{DiskQueue: DiskMG1}},
	}
	ts := []float64{0.002, 0.01, 0.05, 0.1, 0.3}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			engine := engineSystem(t, 3, v.procs, v.opts)
			legacyOpts := v.opts
			legacyOpts.Inverter = opaqueInverter{numeric.NewEuler()}
			legacy := engineSystem(t, 3, v.procs, legacyOpts)
			for _, x := range ts {
				got, want := engine.CDF(x), legacy.CDF(x)
				if math.Abs(got-want) > 1e-12 {
					t.Errorf("CDF(%v): engine %v, legacy %v (diff %g)", x, got, want, got-want)
				}
				got, want = engine.BackendCDF(x), legacy.BackendCDF(x)
				if math.Abs(got-want) > 1e-12 {
					t.Errorf("BackendCDF(%v): engine %v, legacy %v (diff %g)", x, got, want, got-want)
				}
			}
		})
	}
}

// TestParallelMatchesSequentialCDF is the determinism property test: the
// pooled engine must agree with fully sequential evaluation to within 1e-12
// (they share the per-group arithmetic, so they agree exactly) across
// mixture widths on both sides of the parallel threshold.
func TestParallelMatchesSequentialCDF(t *testing.T) {
	for _, n := range []int{1, 4, 16} {
		seq := engineSystem(t, n, 1, Options{Workers: 1})
		for _, workers := range []int{0, 8} {
			par := engineSystem(t, n, 1, Options{Workers: workers})
			for x := 0.002; x < 0.4; x *= 1.9 {
				if got, want := par.CDF(x), seq.CDF(x); math.Abs(got-want) > 1e-12 {
					t.Errorf("n=%d workers=%d: CDF(%v) = %v, sequential %v", n, workers, x, got, want)
				}
				if got, want := par.BackendCDF(x), seq.BackendCDF(x); math.Abs(got-want) > 1e-12 {
					t.Errorf("n=%d workers=%d: BackendCDF(%v) = %v, sequential %v", n, workers, x, got, want)
				}
			}
		}
	}
}

// TestSystemModelConcurrentCDF hammers one shared SystemModel from many
// goroutines; with -race it guards the engine's safety contract (shared
// inverter, shared device models, pooled fan-out).
func TestSystemModelConcurrentCDF(t *testing.T) {
	sys := engineSystem(t, 8, 1, Options{Workers: 4})
	want := sys.CDF(0.05)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if got := sys.CDF(0.05); got != want {
					t.Errorf("concurrent CDF = %v, want %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestQuantileSaturatedReturnsInf is the regression test for Quantile
// silently returning its internal 1e6-second search cap as if it were a
// real latency: a model whose response mass sits beyond the cap must report
// +Inf, matching lst.Quantile's contract.
func TestQuantileSaturatedReturnsInf(t *testing.T) {
	props := testProps()
	props.IndexDisk = dist.NewGammaMeanSCV(2e5, 0.45)
	props.MetaDisk = dist.NewGammaMeanSCV(2e5, 0.50)
	props.DataDisk = dist.NewGammaMeanSCV(3e5, 0.40)
	m := testMetrics()
	m.Rate = 1e-7
	m.DataRate = m.Rate
	d, err := NewDeviceModel(props, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontendModel(m.Rate, 1, props.ParseFE)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemModel(fe, []*DeviceModel{d}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Quantile(0.999999); !math.IsInf(got, 1) {
		t.Errorf("saturated Quantile = %v, want +Inf", got)
	}
	if got := sys.Quantile(1); !math.IsInf(got, 1) {
		t.Errorf("Quantile(1) = %v, want +Inf", got)
	}
	if got := sys.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v, want 0", got)
	}
}

// TestDeploymentDedupsIdenticalDevices checks that homogeneous deployments
// (every slot sharing one *DeviceModel) collapse to a single mixture group,
// so the engine inverts one backend transform regardless of device count.
func TestDeploymentDedupsIdenticalDevices(t *testing.T) {
	dep := Deployment{
		Props:         testProps(),
		Devices:       8,
		Procs:         1,
		FrontendProcs: 4,
		ExtraReadFrac: 0.2,
		MissIndex:     0.35,
		MissMeta:      0.30,
		MissData:      0.45,
	}
	sys, err := dep.Model(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.groups) != 1 {
		t.Fatalf("homogeneous deployment produced %d mixture groups, want 1", len(sys.groups))
	}
	if math.Abs(sys.groups[0].weight-sys.totalRate) > 1e-9 {
		t.Errorf("group weight %v, total rate %v", sys.groups[0].weight, sys.totalRate)
	}
	// Distinct devices must not collapse.
	het := engineSystem(t, 4, 1, Options{})
	if len(het.groups) != 4 {
		t.Errorf("heterogeneous system produced %d groups, want 4", len(het.groups))
	}
}
