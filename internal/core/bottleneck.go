package core

import (
	"fmt"
	"io"
	"sort"

	"cosmodel/internal/benchkit"
)

// DeviceDiagnosis summarizes one device's modeled health — the raw material
// of the paper's "bottleneck identification" what-if application, which
// must locate the performance bottleneck among hundreds of devices without
// instrumenting each one.
type DeviceDiagnosis struct {
	// Device is the index within the system model.
	Device int
	// Rate is the device's request arrival rate.
	Rate float64
	// Utilization is the union-operation queue utilization ρ (per
	// process); the device saturates as it approaches 1.
	Utilization float64
	// MeanWTA is the modeled mean waiting time for being accept()-ed.
	MeanWTA float64
	// MeanBackend is the modeled mean backend response time.
	MeanBackend float64
	// SLAContribution is the device's share of predicted SLA misses:
	// rate-weighted (1 - Sbe-CDF at the SLA), normalized over devices.
	SLAContribution float64
}

// Diagnose ranks the system's devices by their contribution to predicted
// SLA violations at the given latency bound, worst first. Ties in
// contribution break toward higher utilization.
func (s *SystemModel) Diagnose(sla float64) []DeviceDiagnosis {
	out := make([]DeviceDiagnosis, len(s.devices))
	totalMisses := 0.0
	for j, d := range s.devices {
		miss := d.Rate() * (1 - s.DeviceResponseCDF(j, sla))
		out[j] = DeviceDiagnosis{
			Device:          j,
			Rate:            d.Rate(),
			Utilization:     d.Utilization(),
			MeanWTA:         d.WTA().Mean,
			MeanBackend:     d.Backend().Mean,
			SLAContribution: miss,
		}
		totalMisses += miss
	}
	if totalMisses > 0 {
		for j := range out {
			out[j].SLAContribution /= totalMisses
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].SLAContribution != out[b].SLAContribution {
			return out[a].SLAContribution > out[b].SLAContribution
		}
		return out[a].Utilization > out[b].Utilization
	})
	return out
}

// Bottleneck returns the device contributing most to predicted SLA misses
// and that contribution (0..1). With no predicted misses it returns the
// most utilized device and a zero share.
func (s *SystemModel) Bottleneck(sla float64) (device int, share float64) {
	diag := s.Diagnose(sla)
	return diag[0].Device, diag[0].SLAContribution
}

// RenderDiagnosis writes the ranked device report.
func RenderDiagnosis(w io.Writer, diag []DeviceDiagnosis, sla float64) error {
	fmt.Fprintf(w, "Bottleneck identification at SLA %.0f ms (worst first)\n", sla*1e3)
	tab := benchkit.NewTable("device", "rate", "utilization", "mean WTA ms", "mean backend ms", "miss share")
	for _, d := range diag {
		tab.AddRow(d.Device, d.Rate, d.Utilization, d.MeanWTA*1e3, d.MeanBackend*1e3,
			fmt.Sprintf("%.1f%%", d.SLAContribution*100))
	}
	return tab.Render(w)
}
