package core

import (
	"math"
	"strings"
	"testing"

	"cosmodel/internal/dist"
)

// buildTwoDeviceSystem returns a system with one healthy and one struggling
// device (higher load and miss ratios).
func buildTwoDeviceSystem(t *testing.T) *SystemModel {
	t.Helper()
	healthy := testMetrics()
	healthy.Rate, healthy.DataRate = 20, 24
	healthy.MissIndex, healthy.MissMeta, healthy.MissData = 0.1, 0.1, 0.15
	sick := testMetrics()
	sick.Rate, sick.DataRate = 50, 60 // rho ≈ 0.8 with these miss ratios
	sick.MissIndex, sick.MissMeta, sick.MissData = 0.6, 0.6, 0.7
	d0, err := NewDeviceModel(testProps(), healthy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := NewDeviceModel(testProps(), sick, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontendModel(70, 12, dist.Degenerate{Value: 0.3e-3})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemModel(fe, []*DeviceModel{d0, d1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestDiagnoseRanksTheSickDevice(t *testing.T) {
	sys := buildTwoDeviceSystem(t)
	diag := sys.Diagnose(0.05)
	if len(diag) != 2 {
		t.Fatalf("diagnoses = %d", len(diag))
	}
	if diag[0].Device != 1 {
		t.Errorf("worst device = %d, want 1 (the loaded, cache-missing one)", diag[0].Device)
	}
	if diag[0].SLAContribution <= diag[1].SLAContribution {
		t.Error("ranking not descending")
	}
	total := diag[0].SLAContribution + diag[1].SLAContribution
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("contributions sum to %v", total)
	}
	if diag[0].Utilization <= diag[1].Utilization {
		t.Error("the sick device should also be the more utilized one")
	}
	dev, share := sys.Bottleneck(0.05)
	if dev != 1 || share != diag[0].SLAContribution {
		t.Errorf("Bottleneck = (%d, %v)", dev, share)
	}
}

func TestDiagnoseFieldsPopulated(t *testing.T) {
	sys := buildTwoDeviceSystem(t)
	for _, d := range sys.Diagnose(0.05) {
		if d.Rate <= 0 || d.Utilization <= 0 || d.MeanBackend <= 0 {
			t.Errorf("device %d: empty fields %+v", d.Device, d)
		}
		if d.MeanWTA < 0 || d.SLAContribution < 0 || d.SLAContribution > 1 {
			t.Errorf("device %d: out-of-range fields %+v", d.Device, d)
		}
	}
}

func TestRenderDiagnosis(t *testing.T) {
	sys := buildTwoDeviceSystem(t)
	var b strings.Builder
	if err := RenderDiagnosis(&b, sys.Diagnose(0.05), 0.05); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "miss share") || !strings.Contains(out, "Bottleneck identification") {
		t.Errorf("render output:\n%s", out)
	}
}
