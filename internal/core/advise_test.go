package core

import (
	"errors"
	"math"
	"testing"

	"cosmodel/internal/dist"
)

func testDeployment() Deployment {
	return Deployment{
		Props: DeviceProperties{
			IndexDisk: dist.NewGammaMeanSCV(9e-3, 0.45),
			MetaDisk:  dist.NewGammaMeanSCV(6e-3, 0.50),
			DataDisk:  dist.NewGammaMeanSCV(8e-3, 0.40),
			ParseFE:   dist.Degenerate{Value: 0.3e-3},
			ParseBE:   dist.Degenerate{Value: 0.5e-3},
		},
		Devices:       4,
		Procs:         1,
		FrontendProcs: 12,
		ExtraReadFrac: 0.2,
		MissIndex:     0.3,
		MissMeta:      0.3,
		MissData:      0.4,
	}
}

func TestDeploymentMeetFraction(t *testing.T) {
	d := testDeployment()
	pLow, err := d.MeetFraction(100, 0.050)
	if err != nil {
		t.Fatal(err)
	}
	pHigh, err := d.MeetFraction(300, 0.050)
	if err != nil {
		t.Fatal(err)
	}
	if !(pLow > pHigh) {
		t.Errorf("meet fraction should fall with load: %v at 100 vs %v at 300", pLow, pHigh)
	}
	if pLow <= 0 || pLow > 1 || pHigh < 0 || pHigh > 1 {
		t.Errorf("fractions outside [0,1]: %v, %v", pLow, pHigh)
	}
	// Far beyond the disks' service capacity there is no steady state.
	if _, err := d.MeetFraction(1e6, 0.050); !errors.Is(err, ErrOverload) {
		t.Errorf("expected ErrOverload at extreme rate, got %v", err)
	}
}

func TestDeploymentMatchesExplicitModel(t *testing.T) {
	// Deployment.Model must agree with assembling the same homogeneous
	// system by hand (the code path the examples previously duplicated).
	d := testDeployment()
	const rate, sla = 240.0, 0.050
	sys, err := d.Model(rate)
	if err != nil {
		t.Fatal(err)
	}
	devs := make([]*DeviceModel, d.Devices)
	for i := range devs {
		dev, err := NewDeviceModel(d.Props, d.Metrics(rate), d.Opts)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = dev
	}
	fe, err := NewFrontendModel(rate, d.FrontendProcs, d.Props.ParseFE)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewSystemModel(fe, devs, d.Opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, exp := sys.PercentileMeetingSLA(sla), want.PercentileMeetingSLA(sla); math.Abs(got-exp) > 1e-9 {
		t.Errorf("deployment model %v != explicit model %v", got, exp)
	}
}

func TestMaxAdmissibleRate(t *testing.T) {
	d := testDeployment()
	const sla, target = 0.050, 0.90
	max, err := MaxAdmissibleRate(d, sla, target)
	if err != nil {
		t.Fatal(err)
	}
	if max <= 0 {
		t.Fatalf("admission threshold should be positive, got %v", max)
	}
	// The threshold is tight: target met at the threshold, missed above.
	if p, err := d.MeetFraction(max, sla); err != nil || p < target {
		t.Errorf("at threshold %v: p=%v err=%v", max, p, err)
	}
	if p, err := d.MeetFraction(max+5, sla); err == nil && p >= target {
		t.Errorf("just above threshold %v: p=%v still meets target", max, p)
	}
	// Degrading the cache must lower the threshold.
	cold := d
	cold.MissIndex, cold.MissMeta, cold.MissData = 0.85, 0.85, 0.90
	coldMax, err := MaxAdmissibleRate(cold, sla, target)
	if err != nil {
		t.Fatal(err)
	}
	if coldMax >= max {
		t.Errorf("cold cache threshold %v should be below healthy %v", coldMax, max)
	}
}

func TestHeadroom(t *testing.T) {
	d := testDeployment()
	const sla, target = 0.050, 0.90
	max, err := MaxAdmissibleRate(d, sla, target)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Headroom(d, max/2, sla, target)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-max/2) > 2 {
		t.Errorf("headroom at half the threshold: got %v, want ~%v", h, max/2)
	}
	over, err := Headroom(d, max*2, sla, target)
	if err != nil {
		t.Fatal(err)
	}
	if over >= 0 {
		t.Errorf("headroom beyond the threshold should be negative, got %v", over)
	}
}

func TestMaxAdmissibleRateBadInputs(t *testing.T) {
	d := testDeployment()
	if _, err := MaxAdmissibleRate(d, -1, 0.9); !errors.Is(err, ErrBadParams) {
		t.Errorf("negative sla: %v", err)
	}
	if _, err := MaxAdmissibleRate(d, 0.05, 1.5); !errors.Is(err, ErrBadParams) {
		t.Errorf("target > 1: %v", err)
	}
	bad := d
	bad.Devices = 0
	if _, err := MaxAdmissibleRate(bad, 0.05, 0.9); !errors.Is(err, ErrBadParams) {
		t.Errorf("zero devices: %v", err)
	}
}

func TestMaxRateWhere(t *testing.T) {
	// Synthetic monotone predicate with a known threshold.
	const threshold = 357.0
	meets := func(rate float64) bool { return rate <= threshold }
	got := MaxRateWhere(meets, 1, 0.5)
	if math.Abs(got-threshold) > 0.5 {
		t.Errorf("got %v, want %v +- 0.5", got, threshold)
	}
	if MaxRateWhere(func(float64) bool { return false }, 1, 1) != 0 {
		t.Error("never-met predicate should return 0")
	}
	if MaxRateWhere(func(float64) bool { return true }, 1, 1) <= 1e8 {
		t.Error("always-met predicate should return the ceiling")
	}
}
