package core

import (
	"sync"
	"testing"

	"cosmodel/internal/parallel"
)

// eventSink collects EvalEvents; safe for the concurrent callbacks the
// Observer contract allows.
type eventSink struct {
	mu     sync.Mutex
	events []EvalEvent
}

func (s *eventSink) record(e EvalEvent) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *eventSink) byOp(op string) []EvalEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []EvalEvent
	for _, e := range s.events {
		if e.Op == op {
			out = append(out, e)
		}
	}
	return out
}

func TestObserverSpans(t *testing.T) {
	sink := &eventSink{}
	d := testDeployment()
	d.Opts.Observer = sink.record
	sys, err := d.Model(240)
	if err != nil {
		t.Fatal(err)
	}

	if v := sys.CDF(0.050); v <= 0 || v > 1 {
		t.Fatalf("CDF = %v", v)
	}
	cdf := sink.byOp("cdf")
	if len(cdf) != 1 {
		t.Fatalf("cdf events = %d, want 1", len(cdf))
	}
	e := cdf[0]
	// testDeployment is homogeneous: 4 devices collapse into 1 group. The
	// default Euler inverter exposes 27 quadrature nodes.
	if e.Groups != 1 || e.Nodes != 27 || e.Probes != 0 || e.Err != nil {
		t.Errorf("cdf event = %+v", e)
	}
	if e.Duration <= 0 {
		t.Errorf("cdf duration = %v", e.Duration)
	}

	if v, err := sys.BackendCDFContext(nil, 0.050); err != nil || v <= 0 {
		t.Fatalf("BackendCDF = %v, %v", v, err)
	}
	if got := sink.byOp("backend_cdf"); len(got) != 1 {
		t.Errorf("backend_cdf events = %d, want 1", len(got))
	}

	if q := sys.Quantile(0.95); q <= 0 {
		t.Fatalf("Quantile = %v", q)
	}
	qe := sink.byOp("quantile")
	if len(qe) != 1 {
		t.Fatalf("quantile events = %d, want 1", len(qe))
	}
	if qe[0].Probes < 10 {
		t.Errorf("quantile probes = %d, want bisection-scale count", qe[0].Probes)
	}

	rate, err := MaxAdmissibleRate(d, 0.050, 0.9)
	if err != nil || rate <= 0 {
		t.Fatalf("MaxAdmissibleRate = %v, %v", rate, err)
	}
	ae := sink.byOp("max_admissible_rate")
	if len(ae) != 1 {
		t.Fatalf("max_admissible_rate events = %d, want 1", len(ae))
	}
	if ae[0].Probes < 2 {
		t.Errorf("admission probes = %d", ae[0].Probes)
	}
	// Each admission probe builds and evaluates a model with the same
	// Observer, so nested cdf spans must have fired too.
	if nested := sink.byOp("cdf"); len(nested) < ae[0].Probes {
		t.Errorf("nested cdf events = %d, want >= %d probes", len(nested), ae[0].Probes)
	}
}

func TestOptionsPoolInjection(t *testing.T) {
	shared := parallel.New(3)
	o := Options{Pool: shared, Workers: 1}
	if got := o.pool(); got != shared {
		t.Errorf("pool() = %p, want injected %p", got, shared)
	}
	if got := (Options{Workers: 1}).pool(); got != nil {
		t.Errorf("Workers=1 pool() = %p, want nil", got)
	}

	// The injected pool must actually carry the evaluation: check its task
	// meter advances when a wide mixture is evaluated through it.
	d := testDeployment()
	d.Devices = minDevicesParallel
	d.Opts.Pool = shared
	before := shared.Tasks()
	// Distinct device models per slot so the mixture does not collapse.
	sys := buildHeterogeneous(t, d)
	if v := sys.CDF(0.050); v <= 0 {
		t.Fatalf("CDF = %v", v)
	}
	if shared.Tasks() <= before {
		t.Errorf("injected pool saw no tasks (before=%d after=%d)", before, shared.Tasks())
	}
	if shared.Busy() != 0 {
		t.Errorf("Busy = %d after evaluation, want 0", shared.Busy())
	}
}

// buildHeterogeneous assembles a system whose device slots are distinct
// model instances, so the mixture stays minDevicesParallel groups wide.
func buildHeterogeneous(t *testing.T, d Deployment) *SystemModel {
	t.Helper()
	rate := 240.0
	devs := make([]*DeviceModel, d.Devices)
	for i := range devs {
		m := d.Metrics(rate)
		m.Rate *= 1 + 0.01*float64(i) // distinct operating points
		dev, err := NewDeviceModel(d.Props, m, d.Opts)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = dev
	}
	fe, err := NewFrontendModel(rate, d.FrontendProcs, d.Props.ParseFE)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemModel(fe, devs, d.Opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}
