package core

import (
	"fmt"
	"math"

	"cosmodel/internal/lst"
	"cosmodel/internal/numeric"
	"cosmodel/internal/parallel"
)

// minDevicesParallel is the mixture width below which the evaluation engine
// stays sequential: fanning out two inversions costs more in goroutine
// hand-off than it saves.
const minDevicesParallel = 3

// mixGroup is one distinct device model in the system mixture with its
// summed arrival-rate weight. Duplicate *DeviceModel entries (homogeneous
// deployments pass the same model for every slot) collapse into one group,
// so the engine inverts each distinct backend transform once.
type mixGroup struct {
	dev      *DeviceModel
	weight   float64
	response lst.Transform // Sq ∗ Wa ∗ Sbe, for non-node inverters
}

// SystemModel combines the frontend model with per-device backend models
// into the system-level response-latency distribution (Eqs. 2 and 3):
//
//	Sj  = Sq ∗ Wa_j ∗ Sbe_j        per device j
//	S(t) = Σ_j r_j·Sj(t) / Σ_j r_j
//
// CDF and BackendCDF are evaluated by a shared-subexpression engine: when
// the configured inverter exposes its quadrature (numeric.NodeInverter, as
// all built-in inverters do), the frontend factor Sq(s_k) is computed once
// per inversion node and shared across the whole device mixture, each
// device's leaf transforms are evaluated once per node
// (DeviceModel.responseNode), and distinct devices are fanned across a
// bounded worker pool (Options.Workers) when the mixture is at least
// minDevicesParallel wide. Results are reduced in device order, so they are
// deterministic and agree with the sequential path exactly.
type SystemModel struct {
	frontend *FrontendModel
	devices  []*DeviceModel
	opts     Options
	pool     *parallel.Pool

	responses []lst.Transform // per device: Sq ∗ Wa ∗ Sbe
	weights   []float64
	groups    []mixGroup
	totalRate float64
}

// NewSystemModel assembles the system model. The frontend and at least one
// device model are required.
func NewSystemModel(fe *FrontendModel, devices []*DeviceModel, opts Options) (*SystemModel, error) {
	if fe == nil {
		return nil, fmt.Errorf("%w: frontend model required", ErrBadParams)
	}
	if len(devices) == 0 {
		return nil, fmt.Errorf("%w: at least one device model required", ErrBadParams)
	}
	s := &SystemModel{frontend: fe, devices: devices, opts: opts, pool: opts.pool()}
	sq := fe.Sojourn()
	seen := make(map[*DeviceModel]int, len(devices))
	for _, d := range devices {
		if d == nil {
			return nil, fmt.Errorf("%w: nil device model", ErrBadParams)
		}
		s.responses = append(s.responses, lst.Convolve(sq, d.WTA(), d.Backend()))
		s.weights = append(s.weights, d.Rate())
		s.totalRate += d.Rate()
		if g, ok := seen[d]; ok {
			s.groups[g].weight += d.Rate()
		} else {
			seen[d] = len(s.groups)
			s.groups = append(s.groups, mixGroup{
				dev:      d,
				weight:   d.Rate(),
				response: s.responses[len(s.responses)-1],
			})
		}
	}
	if s.totalRate <= 0 {
		return nil, fmt.Errorf("%w: zero total device rate", ErrBadParams)
	}
	return s, nil
}

// Frontend returns the frontend model.
func (s *SystemModel) Frontend() *FrontendModel { return s.frontend }

// Devices returns the device models.
func (s *SystemModel) Devices() []*DeviceModel { return s.devices }

// DeviceResponseCDF evaluates device j's frontend-observed response CDF.
func (s *SystemModel) DeviceResponseCDF(j int, t float64) float64 {
	return lst.CDF(s.opts.inverter(), s.responses[j], t)
}

// CDF evaluates the system response-latency CDF at t: the rate-weighted
// mixture over devices (Eq. 3).
func (s *SystemModel) CDF(t float64) float64 {
	return s.mixtureCDF(t, true)
}

// PercentileMeetingSLA predicts the fraction of requests whose response
// latency is at most sla seconds — the paper's headline output.
func (s *SystemModel) PercentileMeetingSLA(sla float64) float64 {
	return s.CDF(sla)
}

// BackendCDF evaluates the backend-tier response-latency CDF at t: the
// rate-weighted mixture of per-device Sbe distributions, without frontend
// queueing or WTA. The paper's testbed counts SLA compliance at both tiers;
// this is the backend-tier prediction.
func (s *SystemModel) BackendCDF(t float64) float64 {
	return s.mixtureCDF(t, false)
}

// mixtureCDF evaluates the rate-weighted mixture CDF at t. frontend selects
// the frontend-observed response Sq ∗ Wa ∗ Sbe; otherwise the backend-only
// Sbe mixture.
func (s *SystemModel) mixtureCDF(t float64, frontend bool) float64 {
	if t <= 0 {
		return 0
	}
	// evalGroup returns the clamped CDF of one mixture group at t.
	var evalGroup func(i int) float64
	if ni, ok := s.opts.inverter().(numeric.NodeInverter); ok {
		// 32 covers every built-in quadrature (Euler 27, Talbot 32,
		// Gaver-Stehfest 14) without append regrowth.
		nodes, ws := ni.AppendNodes(make([]complex128, 0, 32), make([]complex128, 0, 32), t)
		var fe []complex128
		if frontend {
			// The frontend sojourn factor is identical across the
			// mixture: evaluate it once per inversion node.
			sq := s.frontend.Sojourn().F
			fe = make([]complex128, len(nodes))
			for k, sk := range nodes {
				fe[k] = sq(sk)
			}
		}
		evalGroup = func(i int) float64 {
			var sum float64
			for k, sk := range nodes {
				wa, sbe := s.groups[i].dev.responseNode(sk)
				fv := sbe
				if frontend {
					fv = fe[k] * wa * sbe
				}
				sum += real(ws[k] * (fv / sk))
			}
			return numeric.Clamp01(sum)
		}
	} else {
		// Opaque custom inverter: fall back to inverting each group's
		// composed transform closure independently.
		inv := s.opts.inverter()
		evalGroup = func(i int) float64 {
			if frontend {
				return lst.CDF(inv, s.groups[i].response, t)
			}
			return lst.CDF(inv, s.groups[i].dev.Backend(), t)
		}
	}
	res := make([]float64, len(s.groups))
	run := func(i int) { res[i] = s.groups[i].weight * evalGroup(i) }
	if len(s.groups) >= minDevicesParallel {
		s.pool.ForEach(len(s.groups), run)
	} else {
		for i := range s.groups {
			run(i)
		}
	}
	total := 0.0
	for _, r := range res {
		total += r
	}
	return numeric.Clamp01(total / s.totalRate)
}

// BackendPercentileMeetingSLA predicts the backend-tier fraction of
// requests meeting the SLA.
func (s *SystemModel) BackendPercentileMeetingSLA(sla float64) float64 {
	return s.BackendCDF(sla)
}

// Quantile returns the latency below which a fraction p of requests
// complete (numeric inversion of the mixture CDF). It returns +Inf when the
// quantile exceeds the search ceiling (an effectively saturated model) or
// when p >= 1, matching lst.Quantile.
func (s *SystemModel) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	hi := s.MeanResponse()
	if hi <= 0 {
		hi = 1e-3
	}
	for s.CDF(hi) < p {
		hi *= 2
		if hi > 1e6 {
			return math.Inf(1)
		}
	}
	lo := 0.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if s.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// MeanResponse returns the rate-weighted mean response latency.
func (s *SystemModel) MeanResponse() float64 {
	total := 0.0
	for j, tr := range s.responses {
		total += s.weights[j] * tr.Mean
	}
	return total / s.totalRate
}
