package core

import (
	"fmt"

	"cosmodel/internal/lst"
	"cosmodel/internal/numeric"
)

// SystemModel combines the frontend model with per-device backend models
// into the system-level response-latency distribution (Eqs. 2 and 3):
//
//	Sj  = Sq ∗ Wa_j ∗ Sbe_j        per device j
//	S(t) = Σ_j r_j·Sj(t) / Σ_j r_j
type SystemModel struct {
	frontend *FrontendModel
	devices  []*DeviceModel
	opts     Options

	responses []lst.Transform // per device: Sq ∗ Wa ∗ Sbe
	weights   []float64
	totalRate float64
}

// NewSystemModel assembles the system model. The frontend and at least one
// device model are required.
func NewSystemModel(fe *FrontendModel, devices []*DeviceModel, opts Options) (*SystemModel, error) {
	if fe == nil {
		return nil, fmt.Errorf("%w: frontend model required", ErrBadParams)
	}
	if len(devices) == 0 {
		return nil, fmt.Errorf("%w: at least one device model required", ErrBadParams)
	}
	s := &SystemModel{frontend: fe, devices: devices, opts: opts}
	sq := fe.Sojourn()
	for _, d := range devices {
		if d == nil {
			return nil, fmt.Errorf("%w: nil device model", ErrBadParams)
		}
		s.responses = append(s.responses, lst.Convolve(sq, d.WTA(), d.Backend()))
		s.weights = append(s.weights, d.Rate())
		s.totalRate += d.Rate()
	}
	if s.totalRate <= 0 {
		return nil, fmt.Errorf("%w: zero total device rate", ErrBadParams)
	}
	return s, nil
}

// Frontend returns the frontend model.
func (s *SystemModel) Frontend() *FrontendModel { return s.frontend }

// Devices returns the device models.
func (s *SystemModel) Devices() []*DeviceModel { return s.devices }

// DeviceResponseCDF evaluates device j's frontend-observed response CDF.
func (s *SystemModel) DeviceResponseCDF(j int, t float64) float64 {
	return lst.CDF(s.opts.inverter(), s.responses[j], t)
}

// CDF evaluates the system response-latency CDF at t: the rate-weighted
// mixture over devices (Eq. 3).
func (s *SystemModel) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	inv := s.opts.inverter()
	total := 0.0
	for j, tr := range s.responses {
		total += s.weights[j] * lst.CDF(inv, tr, t)
	}
	return numeric.Clamp01(total / s.totalRate)
}

// PercentileMeetingSLA predicts the fraction of requests whose response
// latency is at most sla seconds — the paper's headline output.
func (s *SystemModel) PercentileMeetingSLA(sla float64) float64 {
	return s.CDF(sla)
}

// BackendCDF evaluates the backend-tier response-latency CDF at t: the
// rate-weighted mixture of per-device Sbe distributions, without frontend
// queueing or WTA. The paper's testbed counts SLA compliance at both tiers;
// this is the backend-tier prediction.
func (s *SystemModel) BackendCDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	total := 0.0
	for j, d := range s.devices {
		total += s.weights[j] * d.BackendCDF(t)
	}
	return numeric.Clamp01(total / s.totalRate)
}

// BackendPercentileMeetingSLA predicts the backend-tier fraction of
// requests meeting the SLA.
func (s *SystemModel) BackendPercentileMeetingSLA(sla float64) float64 {
	return s.BackendCDF(sla)
}

// Quantile returns the latency below which a fraction p of requests
// complete (numeric inversion of the mixture CDF).
func (s *SystemModel) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	hi := s.MeanResponse()
	if hi <= 0 {
		hi = 1e-3
	}
	for s.CDF(hi) < p {
		hi *= 2
		if hi > 1e6 {
			return hi
		}
	}
	lo := 0.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if s.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// MeanResponse returns the rate-weighted mean response latency.
func (s *SystemModel) MeanResponse() float64 {
	total := 0.0
	for j, tr := range s.responses {
		total += s.weights[j] * tr.Mean
	}
	return total / s.totalRate
}
