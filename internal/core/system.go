package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"cosmodel/internal/lst"
	"cosmodel/internal/numeric"
	"cosmodel/internal/parallel"
)

// minDevicesParallel is the mixture width below which the evaluation engine
// stays sequential: fanning out two inversions costs more in goroutine
// hand-off than it saves.
const minDevicesParallel = 3

// mixGroup is one distinct device model in the system mixture with its
// summed arrival-rate weight. Duplicate *DeviceModel entries (homogeneous
// deployments pass the same model for every slot) collapse into one group,
// so the engine inverts each distinct backend transform once.
type mixGroup struct {
	dev      *DeviceModel
	weight   float64
	response lst.Transform // Sq ∗ Wa ∗ Sbe, for non-node inverters
	beResp   lst.Transform // Wa ∗ Sbe, for non-node inverters
	noWTA    lst.Transform // Sq ∗ Sbe, for non-node inverters

	// Write-class mixture weight and compositions; writeWeight is 0 for
	// a read-only device, which then contributes nothing to write-mode
	// mixtures and is skipped without evaluation.
	writeWeight float64
	writeFull   lst.Transform // Sq ∗ Wa ∗ Swr, for non-node inverters
	writeResp   lst.Transform // Wa ∗ Swr, for non-node inverters
}

// evalMode selects which composition of the per-device factors the
// shared-subexpression engine inverts.
type evalMode int

const (
	// modeFull is the frontend-observed response Sq ∗ Wa ∗ Sbe (Eq. 2).
	modeFull evalMode = iota
	// modeBackend is the backend-tier response Sbe alone.
	modeBackend
	// modeResponse is the per-read response Wa ∗ Sbe: what one stripe
	// sub-read of a coded GET experiences after the (shared) frontend
	// parse, the base CDF of the k-of-n order statistic.
	modeResponse
	// modeNoWTA is the frontend-observed response with the accept-waiting
	// factor dropped, Sq ∗ Sbe — the paper's "noWTA" ablation. Evaluating
	// it from the full model's per-node factors is exact: a device built
	// with WTANone computes the identical Sbe pipeline and a unit Wa, and
	// multiplying by the exact complex 1 changes nothing.
	modeNoWTA
	// modeWriteFull is the frontend-observed PUT replica response
	// Sq ∗ Wa ∗ Swr: what a single-replica write experiences end to end.
	modeWriteFull
	// modeWriteResponse is the per-replica PUT response Wa ∗ Swr — what
	// one replica sub-write experiences after the shared frontend
	// sojourn, the base CDF of the W-of-N quorum order statistic.
	modeWriteResponse
	// modeWriteBackend is the backend-tier PUT replica response Swr.
	modeWriteBackend
)

// write reports whether the mode draws on the write-class device factors
// (DeviceModel.writeNode) instead of the read-class ones; write modes also
// mix with write-rate weights rather than request-rate weights.
func (m evalMode) write() bool { return m >= modeWriteFull }

// shape maps a mode onto the composition shape shared with the read
// family: the write modes compose Sq/Wa/Swr exactly as the corresponding
// read modes compose Sq/Wa/Sbe.
func (m evalMode) shape() evalMode {
	switch m {
	case modeWriteFull:
		return modeFull
	case modeWriteResponse:
		return modeResponse
	case modeWriteBackend:
		return modeBackend
	}
	return m
}

// SystemModel combines the frontend model with per-device backend models
// into the system-level response-latency distribution (Eqs. 2 and 3):
//
//	Sj  = Sq ∗ Wa_j ∗ Sbe_j        per device j
//	S(t) = Σ_j r_j·Sj(t) / Σ_j r_j
//
// CDF and BackendCDF are evaluated by a shared-subexpression engine: when
// the configured inverter exposes its quadrature (numeric.NodeInverter, as
// all built-in inverters do), the frontend factor Sq(s_k) is computed once
// per inversion node and shared across the whole device mixture, each
// device's leaf transforms are evaluated once per node
// (DeviceModel.responseNode), and distinct devices are fanned across a
// bounded worker pool (Options.Workers) when the mixture is at least
// minDevicesParallel wide. Results are reduced in device order, so they are
// deterministic and agree with the sequential path exactly.
type SystemModel struct {
	frontend *FrontendModel
	devices  []*DeviceModel
	opts     Options
	pool     *parallel.Pool

	responses      []lst.Transform // per device: Sq ∗ Wa ∗ Sbe
	weights        []float64
	groups         []mixGroup
	totalRate      float64
	totalWriteRate float64
	nodeCount      int // quadrature nodes of the configured inverter, for spans

	// Discretized frontend-sojourn distribution for coded-read
	// evaluation, built lazily by frontendGrid.
	feGridOnce sync.Once
	fePoints   []float64
	feMasses   []float64
	feGridErr  error
}

// NewSystemModel assembles the system model. The frontend and at least one
// device model are required.
func NewSystemModel(fe *FrontendModel, devices []*DeviceModel, opts Options) (*SystemModel, error) {
	if fe == nil {
		return nil, fmt.Errorf("%w: frontend model required", ErrBadParams)
	}
	if len(devices) == 0 {
		return nil, fmt.Errorf("%w: at least one device model required", ErrBadParams)
	}
	s := &SystemModel{frontend: fe, devices: devices, opts: opts, pool: opts.pool()}
	sq := fe.Sojourn()
	seen := make(map[*DeviceModel]int, len(devices))
	for _, d := range devices {
		if d == nil {
			return nil, fmt.Errorf("%w: nil device model", ErrBadParams)
		}
		s.responses = append(s.responses, lst.Convolve(sq, d.WTA(), d.Backend()))
		s.weights = append(s.weights, d.Rate())
		s.totalRate += d.Rate()
		s.totalWriteRate += d.WriteRate()
		if g, ok := seen[d]; ok {
			s.groups[g].weight += d.Rate()
			s.groups[g].writeWeight += d.WriteRate()
		} else {
			seen[d] = len(s.groups)
			g := mixGroup{
				dev:         d,
				weight:      d.Rate(),
				writeWeight: d.WriteRate(),
				response:    s.responses[len(s.responses)-1],
				beResp:      lst.Convolve(d.WTA(), d.Backend()),
				noWTA:       lst.Convolve(sq, d.Backend()),
			}
			if d.WriteRate() > 0 {
				g.writeFull = lst.Convolve(sq, d.WTA(), d.WriteResponse())
				g.writeResp = lst.Convolve(d.WTA(), d.WriteResponse())
			}
			s.groups = append(s.groups, g)
		}
	}
	if s.totalRate <= 0 {
		return nil, fmt.Errorf("%w: zero total device rate", ErrBadParams)
	}
	if opts.Observer != nil {
		if ni, ok := opts.inverter().(numeric.NodeInverter); ok {
			nodes, _ := ni.AppendNodes(nil, nil, 1)
			s.nodeCount = len(nodes)
		}
	}
	return s, nil
}

// beginSpan opens an observer span for one top-level evaluation of this
// model; see Options.Observer.
func (s *SystemModel) beginSpan(op string) func(probes int, err error) {
	return s.opts.span(op, len(s.groups), s.nodeCount)
}

// Frontend returns the frontend model.
func (s *SystemModel) Frontend() *FrontendModel { return s.frontend }

// Devices returns the device models.
func (s *SystemModel) Devices() []*DeviceModel { return s.devices }

// DeviceResponseCDF evaluates device j's frontend-observed response CDF.
func (s *SystemModel) DeviceResponseCDF(j int, t float64) float64 {
	return lst.CDF(s.opts.inverter(), s.responses[j], t)
}

// CDF evaluates the system response-latency CDF at t: the rate-weighted
// mixture over devices (Eq. 3). It delegates to CDFContext with a
// background context; an evaluation that fails numerically even after the
// fallback chain reports 0 (the pre-guard behaviour was an arbitrary
// clamped value; 0 is the conservative end of the clamp).
func (s *SystemModel) CDF(t float64) float64 {
	v, _ := s.CDFContext(context.Background(), t)
	return v
}

// CDFContext evaluates the system CDF at t under ctx: cancellation is
// observed between mixture groups, Options.EvalTimeout bounds the call, and
// every per-group inversion is validated — an invalid value (NaN, Inf, far
// outside [0,1]) retries through Options.Fallbacks before surfacing as
// numeric.ErrNumerical. On error the returned value is 0.
func (s *SystemModel) CDFContext(ctx context.Context, t float64) (float64, error) {
	ctx, cancel := s.opts.EvalContext(ctx)
	defer cancel()
	done := s.beginSpan("cdf")
	v, err := s.mixtureCDF(ctx, t, modeFull)
	done(0, err)
	return v, err
}

// PercentileMeetingSLA predicts the fraction of requests whose response
// latency is at most sla seconds — the paper's headline output.
func (s *SystemModel) PercentileMeetingSLA(sla float64) float64 {
	return s.CDF(sla)
}

// BackendCDF evaluates the backend-tier response-latency CDF at t: the
// rate-weighted mixture of per-device Sbe distributions, without frontend
// queueing or WTA. The paper's testbed counts SLA compliance at both tiers;
// this is the backend-tier prediction.
func (s *SystemModel) BackendCDF(t float64) float64 {
	v, _ := s.BackendCDFContext(context.Background(), t)
	return v
}

// BackendCDFContext is the context-aware, guarded form of BackendCDF; see
// CDFContext for the cancellation and fallback semantics.
func (s *SystemModel) BackendCDFContext(ctx context.Context, t float64) (float64, error) {
	ctx, cancel := s.opts.EvalContext(ctx)
	defer cancel()
	done := s.beginSpan("backend_cdf")
	v, err := s.mixtureCDF(ctx, t, modeBackend)
	done(0, err)
	return v, err
}

// groupEvaluator builds the raw (unclamped) per-group CDF evaluator at t
// for one inverter, composing the per-device factors selected by mode.
func (s *SystemModel) groupEvaluator(inv numeric.Inverter, t float64, mode evalMode) func(i int) float64 {
	if ni, ok := inv.(numeric.NodeInverter); ok {
		// 32 covers every built-in quadrature (Euler 27, Talbot 32,
		// Gaver-Stehfest 14) without append regrowth.
		nodes, ws := ni.AppendNodes(make([]complex128, 0, 32), make([]complex128, 0, 32), t)
		shape, write := mode.shape(), mode.write()
		var fe []complex128
		if shape == modeFull || shape == modeNoWTA {
			// The frontend sojourn factor is identical across the
			// mixture: evaluate it once per inversion node.
			sq := s.frontend.Sojourn().F
			fe = make([]complex128, len(nodes))
			for k, sk := range nodes {
				fe[k] = sq(sk)
			}
		}
		return func(i int) float64 {
			dev := s.groups[i].dev
			var sum float64
			for k, sk := range nodes {
				var wa, resp complex128
				if write {
					wa, resp = dev.writeNode(sk)
				} else {
					wa, resp = dev.responseNode(sk)
				}
				sum += real(ws[k] * (nodeValue(shape, fe, k, wa, resp) / sk))
			}
			return sum
		}
	}
	// Opaque custom inverter: invert each group's composed transform
	// closure independently.
	return func(i int) float64 {
		tr := s.groupTransform(i, mode)
		return inv.Invert(func(sc complex128) complex128 { return tr.F(sc) / sc }, t)
	}
}

// nodeValue composes the per-device node factors (wa, sbe — or the write
// pair wa, swr, which shares the same shapes) and the shared frontend
// factor fe[k] into the transform value mode selects. Callers pass the
// mode's shape() so the write family reuses the read compositions.
func nodeValue(mode evalMode, fe []complex128, k int, wa, sbe complex128) complex128 {
	switch mode {
	case modeFull:
		return fe[k] * wa * sbe
	case modeNoWTA:
		return fe[k] * sbe
	case modeResponse:
		return wa * sbe
	default:
		return sbe
	}
}

// groupTransform picks group i's composed transform for mode — the opaque
// (non-node) inverter path.
func (s *SystemModel) groupTransform(i int, mode evalMode) lst.Transform {
	switch mode {
	case modeFull:
		return s.groups[i].response
	case modeNoWTA:
		return s.groups[i].noWTA
	case modeResponse:
		return s.groups[i].beResp
	case modeWriteFull:
		return s.groups[i].writeFull
	case modeWriteResponse:
		return s.groups[i].writeResp
	case modeWriteBackend:
		return s.groups[i].dev.WriteResponse()
	default:
		return s.groups[i].dev.Backend()
	}
}

// groupCDF evaluates one mixture group with the primary evaluator and
// validates the result, walking the fallback inverter chain on an invalid
// value. A recovered value fires Options.OnFallback; exhaustion returns a
// *numeric.InversionError.
func (s *SystemModel) groupCDF(eval func(int) float64, i int, t float64, mode evalMode) (float64, error) {
	return s.groupCDFFrom(eval(i), i, t, mode)
}

// groupCDFFrom validates a raw per-group inversion value computed elsewhere
// (the scalar evaluator or the batched traversal) and walks the fallback
// chain on an invalid one — the shared tail of groupCDF.
func (s *SystemModel) groupCDFFrom(v float64, i int, t float64, mode evalMode) (float64, error) {
	reason := numeric.CheckCDF(v)
	if reason == "" {
		return numeric.Clamp01(v), nil
	}
	primary := s.opts.inverter().Name()
	tried := []string{primary}
	for _, fb := range s.opts.fallbacks() {
		if fb == nil || fb.Name() == primary {
			continue
		}
		tried = append(tried, fb.Name())
		fv := s.groupEvaluator(fb, t, mode)(i)
		if numeric.CheckCDF(fv) == "" {
			if cb := s.opts.OnFallback; cb != nil {
				cb(primary, fb.Name())
			}
			return numeric.Clamp01(fv), nil
		}
		v = fv
	}
	return 0, &numeric.InversionError{T: t, Value: v, Reason: reason, Tried: tried}
}

// mixtureCDF evaluates the rate-weighted mixture CDF at t under ctx.
// Narrow mixtures run inline through a nil pool — same panic capture and
// cancellation checks, no goroutine hand-off.
func (s *SystemModel) mixtureCDF(ctx context.Context, t float64, mode evalMode) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if t <= 0 {
		return 0, nil
	}
	write := mode.write()
	denom := s.totalRate
	if write {
		if s.totalWriteRate <= 0 {
			return 0, fmt.Errorf("%w: no write traffic in the device mixture", ErrBadParams)
		}
		denom = s.totalWriteRate
	}
	eval := s.groupEvaluator(s.opts.inverter(), t, mode)
	res := make([]float64, len(s.groups))
	run := func(i int) error {
		weight := s.groups[i].weight
		if write {
			// Read-only devices carry no write traffic: zero weight,
			// nothing to evaluate.
			if weight = s.groups[i].writeWeight; weight == 0 {
				return nil
			}
		}
		v, err := s.groupCDF(eval, i, t, mode)
		if err != nil {
			return err
		}
		res[i] = weight * v
		return nil
	}
	pool := s.pool
	if len(s.groups) < minDevicesParallel {
		pool = nil
	}
	if err := pool.ForEachContext(ctx, len(s.groups), run); err != nil {
		return 0, err
	}
	total := 0.0
	for _, r := range res {
		total += r
	}
	return numeric.Clamp01(total / denom), nil
}

// BackendPercentileMeetingSLA predicts the backend-tier fraction of
// requests meeting the SLA.
func (s *SystemModel) BackendPercentileMeetingSLA(sla float64) float64 {
	return s.BackendCDF(sla)
}

// Quantile returns the latency below which a fraction p of requests
// complete (numeric inversion of the mixture CDF). It returns +Inf when the
// quantile exceeds the search ceiling (an effectively saturated model) or
// when p >= 1, matching lst.Quantile. It delegates to QuantileContext; a
// numerical failure reports NaN.
func (s *SystemModel) Quantile(p float64) float64 {
	v, err := s.QuantileContext(context.Background(), p)
	if err != nil {
		return math.NaN()
	}
	return v
}

// QuantileContext is the context-aware quantile: cancellation and the
// Options.EvalTimeout budget are observed at every probe, each probe runs
// the guarded mixture evaluation, and the bracketed root finder
// (numeric.BrentGuarded — false position with a bisection safeguard,
// replacing the fixed 60-step bisection) additionally detects a grossly
// non-monotone CDF (a probe at a larger t reporting a value more than
// numeric.CDFSlack below a probe at a smaller t, or vice versa), returning
// numeric.ErrNumerical instead of a garbage quantile.
func (s *SystemModel) QuantileContext(ctx context.Context, p float64) (q float64, err error) {
	return s.QuantileSeededContext(ctx, p, 0)
}

// QuantileSeededContext is QuantileContext warm-started from a prior
// estimate: a positive seed replaces the mean-based initial upper bracket,
// so a caller sweeping nearby operating points (experiments.QuantileSweep)
// pays a couple of refinement probes per step instead of a fresh bracket
// growth. seed <= 0 is identical to QuantileContext.
func (s *SystemModel) QuantileSeededContext(ctx context.Context, p, seed float64) (q float64, err error) {
	ctx, cancel := s.opts.EvalContext(ctx)
	defer cancel()
	probes := 0
	done := s.beginSpan("quantile")
	defer func() { done(probes, err) }()
	if p <= 0 {
		return 0, nil
	}
	if p >= 1 {
		return math.Inf(1), nil
	}
	hi := seed
	if !(hi > 0) {
		hi = s.MeanResponse()
		if hi <= 0 {
			hi = 1e-3
		}
	}
	probes++
	vHi, err := s.mixtureCDF(ctx, hi, modeFull)
	if err != nil {
		return 0, err
	}
	for vHi < p {
		hi *= 2
		if hi > 1e6 {
			return math.Inf(1), nil
		}
		probes++
		if vHi, err = s.mixtureCDF(ctx, hi, modeFull); err != nil {
			return 0, err
		}
	}
	f := func(t float64) (float64, error) {
		probes++
		v, err := s.mixtureCDF(ctx, t, modeFull)
		if err != nil {
			return 0, err
		}
		return v - p, nil
	}
	q, err = numeric.BrentGuarded(f, 0, -p, hi, vHi-p, 0, numeric.CDFSlack)
	return q, s.quantileRootErr(err, p, "grossly non-monotone CDF in quantile bisection")
}

// quantileRootErr maps a root-finder non-monotone abort onto the engine's
// InversionError shape (preserving the pinned reason strings callers match
// on); every other error passes through.
func (s *SystemModel) quantileRootErr(err error, p float64, reason string) error {
	var nm *numeric.NonMonotoneError
	if errors.As(err, &nm) {
		return &numeric.InversionError{
			T:      nm.X,
			Value:  nm.F + p,
			Reason: reason,
			Tried:  []string{s.opts.inverter().Name()},
		}
	}
	return err
}

// MeanResponse returns the rate-weighted mean response latency.
func (s *SystemModel) MeanResponse() float64 {
	total := 0.0
	for j, tr := range s.responses {
		total += s.weights[j] * tr.Mean
	}
	return total / s.totalRate
}

// MeanWriteResponse returns the write-rate-weighted mean frontend-observed
// PUT replica response latency (Sq ∗ Wa ∗ Swr), or 0 when the mixture
// carries no write traffic. Quantile searches use it to seed their bracket.
func (s *SystemModel) MeanWriteResponse() float64 {
	if s.totalWriteRate <= 0 {
		return 0
	}
	total := 0.0
	for _, g := range s.groups {
		if g.writeWeight > 0 {
			total += g.writeWeight * g.writeFull.Mean
		}
	}
	return total / s.totalWriteRate
}
