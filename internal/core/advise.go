package core

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Deployment describes a homogeneous deployment whose admissible load is
// being asked about: identical storage devices behind a shared frontend
// tier, with the aggregate arrival rate split evenly across devices. It is
// the operating-point parameterization shared by the capacity-planning and
// overload-control applications (the paper's §I use cases) and by the
// serving layer's /advise endpoint.
type Deployment struct {
	// Props are the benchmarked device properties (Section IV-A).
	Props DeviceProperties
	// Devices is the number of storage devices.
	Devices int
	// Procs is Nbe, the process count per device.
	Procs int
	// FrontendProcs is the frontend process count across the tier.
	FrontendProcs int
	// ExtraReadFrac is p: mean extra data reads per request, so each
	// device's data-read rate is its request rate times (1 + p).
	ExtraReadFrac float64
	// MissIndex, MissMeta, MissData are the cache miss ratios assumed at
	// the operating point.
	MissIndex, MissMeta, MissData float64
	// DiskMean optionally overrides the observed overall mean disk service
	// time b; 0 derives it from Props and the operation mix.
	DiskMean float64
	// Opts select model variants.
	Opts Options
}

// Validate checks the deployment description.
func (d Deployment) Validate() error {
	if err := d.Props.Validate(); err != nil {
		return err
	}
	switch {
	case d.Devices < 1:
		return fmt.Errorf("%w: deployment needs at least one device", ErrBadParams)
	case d.Procs < 1:
		return fmt.Errorf("%w: deployment needs at least one process per device", ErrBadParams)
	case d.FrontendProcs < 1:
		return fmt.Errorf("%w: deployment needs at least one frontend process", ErrBadParams)
	case d.ExtraReadFrac < 0:
		return fmt.Errorf("%w: extra read fraction %v", ErrBadParams, d.ExtraReadFrac)
	case d.DiskMean < 0:
		return fmt.Errorf("%w: disk mean %v", ErrBadParams, d.DiskMean)
	}
	for _, miss := range []float64{d.MissIndex, d.MissMeta, d.MissData} {
		if miss < 0 || miss > 1 {
			return fmt.Errorf("%w: miss ratio %v outside [0,1]", ErrBadParams, miss)
		}
	}
	return nil
}

// Metrics returns the per-device online metrics at aggregate rate.
func (d Deployment) Metrics(rate float64) OnlineMetrics {
	return OnlineMetrics{
		Rate:      rate / float64(d.Devices),
		DataRate:  rate * (1 + d.ExtraReadFrac) / float64(d.Devices),
		MissIndex: d.MissIndex,
		MissMeta:  d.MissMeta,
		MissData:  d.MissData,
		Procs:     d.Procs,
		DiskMean:  d.DiskMean,
	}
}

// Model builds the system model at aggregate arrival rate. It returns
// ErrOverload (wrapped) when the operating point has no steady state.
func (d Deployment) Model(rate float64) (*SystemModel, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if rate <= 0 {
		return nil, fmt.Errorf("%w: rate %v must be positive", ErrBadParams, rate)
	}
	dev, err := NewDeviceModel(d.Props, d.Metrics(rate), d.Opts)
	if err != nil {
		return nil, err
	}
	// The devices are identical, so one model can stand in for all of
	// them: the system mixture weights each slot by its own rate.
	devs := make([]*DeviceModel, d.Devices)
	for i := range devs {
		devs[i] = dev
	}
	fe, err := NewFrontendModel(rate, d.FrontendProcs, d.Props.ParseFE)
	if err != nil {
		return nil, err
	}
	return NewSystemModel(fe, devs, d.Opts)
}

// MeetFraction predicts the fraction of requests meeting the SLA bound at
// aggregate rate. It returns ErrOverload (wrapped) when the operating point
// has no steady state.
func (d Deployment) MeetFraction(rate, sla float64) (float64, error) {
	return d.MeetFractionContext(context.Background(), rate, sla)
}

// MeetFractionContext is the context-aware MeetFraction: the guarded
// mixture evaluation observes ctx and the deployment's Opts.EvalTimeout,
// and a numerically poisoned inversion surfaces as numeric.ErrNumerical.
func (d Deployment) MeetFractionContext(ctx context.Context, rate, sla float64) (float64, error) {
	sys, err := d.Model(rate)
	if err != nil {
		return 0, err
	}
	return sys.CDFContext(ctx, sla)
}

// MaxAdmissibleRate returns the largest aggregate arrival rate (req/s, to
// within 1 req/s) at which the deployment still meets target — the
// admission threshold of the paper's overload-control application. It
// returns 0 when even minimal load misses the target.
func MaxAdmissibleRate(d Deployment, sla, target float64) (float64, error) {
	return MaxAdmissibleRateContext(context.Background(), d, sla, target)
}

// MaxAdmissibleRateContext is the context-aware admission search: ctx and
// the deployment's Opts.EvalTimeout are observed at every bisection probe
// (overload at a probe point simply bounds the search; cancellation and
// numerical failure abort it with the error).
func MaxAdmissibleRateContext(ctx context.Context, d Deployment, sla, target float64) (rate float64, err error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if sla <= 0 || target <= 0 || target > 1 {
		return 0, fmt.Errorf("%w: sla %v, target %v", ErrBadParams, sla, target)
	}
	ctx, cancel := d.Opts.EvalContext(ctx)
	defer cancel()
	probes := 0
	done := d.Opts.span("max_admissible_rate", 0, 0)
	defer func() { done(probes, err) }()
	margin := func(ctx context.Context, rate float64) (float64, bool, error) {
		probes++
		p, err := d.MeetFractionContext(ctx, rate, sla)
		switch {
		case err == nil:
			return p - target, true, nil
		case errors.Is(err, ErrOverload) || errors.Is(err, ErrBadParams):
			// No steady state at this probe point: the rate is simply
			// inadmissible, not a search failure.
			return 0, false, nil
		default:
			return 0, false, err // cancellation, deadline or numerical failure
		}
	}
	return MaxRateWhereValueContext(ctx, margin, 1, 1)
}

// Headroom returns the additional aggregate rate the deployment can admit
// before the predicted percentile drops below target: MaxAdmissibleRate
// minus current. Negative headroom means the deployment is already past the
// admission threshold.
func Headroom(d Deployment, current, sla, target float64) (float64, error) {
	return HeadroomContext(context.Background(), d, current, sla, target)
}

// HeadroomContext is the context-aware Headroom; see
// MaxAdmissibleRateContext.
func HeadroomContext(ctx context.Context, d Deployment, current, sla, target float64) (float64, error) {
	max, err := MaxAdmissibleRateContext(ctx, d, sla, target)
	if err != nil {
		return 0, err
	}
	return max - current, nil
}

// MaxRateWhere returns the largest rate at which meets still holds,
// assuming meets is monotone non-increasing in rate (true for SLA
// compliance under increasing load). The search starts at lo (> 0), doubles
// until meets fails, and bisects to within tol. It returns 0 when meets
// fails already at lo.
//
// The probes run sequentially — bisection is inherently serial — but each
// probe typically builds a model whose own evaluation fans out across the
// worker pool configured by Options.Workers, so admission searches over
// wide device mixtures parallelize from the inside.
func MaxRateWhere(meets func(rate float64) bool, lo, tol float64) float64 {
	v, _ := MaxRateWhereContext(context.Background(),
		func(_ context.Context, rate float64) (bool, error) { return meets(rate), nil },
		lo, tol)
	return v
}

// MaxRateWhereContext is the cancellable monotone bisection underlying
// every admission search: ctx is checked before each probe, and a probe
// returning an error (cancellation propagated by the model evaluation, a
// numerical failure, ...) aborts the search immediately with that error.
// The bounded probe count (geometric doubling to a 1e9 ceiling plus
// bisection to tol) guarantees the search terminates even when meets is
// pathological.
func MaxRateWhereContext(ctx context.Context, meets func(ctx context.Context, rate float64) (bool, error), lo, tol float64) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if lo <= 0 {
		lo = 1
	}
	if tol <= 0 {
		tol = lo * 1e-3
	}
	probe := func(rate float64) (bool, error) {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		return meets(ctx, rate)
	}
	ok, err := probe(lo)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	hi := lo * 2
	const ceiling = 1e9 // far beyond any physically admissible rate here
	for {
		ok, err := probe(hi)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		lo = hi
		hi *= 2
		if hi > ceiling {
			return lo, nil
		}
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		ok, err := probe(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// MaxRateWhereValueContext is the margin-aware admission search: probe
// reports how far above the requirement a rate sits (margin >= 0 means
// admissible) rather than only whether it holds, and the bracket is
// narrowed by false position on the margin with a bisection safeguard — a
// near-linear margin collapses the bracket in a handful of probes where
// blind bisection needs log2(range/tol). probe returning ok == false marks
// the rate inadmissible without ordering information (e.g. overload), so
// the step above it always bisects; a NaN margin is treated the same way.
// Contract otherwise matches MaxRateWhereContext: ctx is checked before
// every probe, probe errors abort the search, the result is the largest
// rate actually probed admissible (0 when lo itself fails), and the probe
// count is bounded by the geometric doubling plus the safeguarded
// narrowing to tol.
func MaxRateWhereValueContext(ctx context.Context, probe func(ctx context.Context, rate float64) (margin float64, ok bool, err error), lo, tol float64) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if lo <= 0 {
		lo = 1
	}
	if tol <= 0 {
		tol = lo * 1e-3
	}
	eval := func(rate float64) (float64, bool, error) {
		if err := ctx.Err(); err != nil {
			return 0, false, err
		}
		m, ok, err := probe(ctx, rate)
		if math.IsNaN(m) {
			ok = false // a NaN margin carries no ordering information
		}
		return m, ok, err
	}
	mLo, ok, err := eval(lo)
	if err != nil {
		return 0, err
	}
	if !ok || mLo < 0 {
		return 0, nil
	}
	hi := lo * 2
	const ceiling = 1e9 // far beyond any physically admissible rate here
	var mHi float64
	var okHi bool
	for {
		m, ok, err := eval(hi)
		if err != nil {
			return 0, err
		}
		if !ok || m < 0 {
			mHi, okHi = m, ok
			break
		}
		lo, mLo = hi, m
		hi *= 2
		if hi > ceiling {
			return lo, nil
		}
	}
	stalled := false
	for hi-lo > tol {
		var mid float64
		if okHi && mHi < 0 && mLo > 0 && !stalled {
			// False position: root of the secant through (lo, mLo) and
			// (hi, mHi), clamped to the bracket interior so a flat margin
			// cannot pin the iterate to an endpoint.
			mid = lo + (hi-lo)*mLo/(mLo-mHi)
			pad := 0.05 * (hi - lo)
			if mid < lo+pad {
				mid = lo + pad
			}
			if mid > hi-pad {
				mid = hi - pad
			}
		} else {
			mid = lo + (hi-lo)/2
		}
		width := hi - lo
		m, ok, err := eval(mid)
		if err != nil {
			return 0, err
		}
		if ok && m >= 0 {
			lo, mLo = mid, m
		} else {
			hi, mHi, okHi = mid, m, ok
		}
		stalled = hi-lo > 0.5*width
	}
	return lo, nil
}
