package core

import (
	"context"
	"errors"
	"math"
	"testing"
)

// writeTestMetrics is testMetrics plus a write class: a fifth of the read
// rate arrives as PUT replica sub-requests averaging two data chunks each.
func writeTestMetrics() OnlineMetrics {
	m := testMetrics()
	m.WriteRate = 8
	m.WriteChunks = 2
	return m
}

func buildWriteTestSystem(t *testing.T, nDevices int, opts Options) *SystemModel {
	t.Helper()
	devs := make([]*DeviceModel, nDevices)
	for i := range devs {
		m := writeTestMetrics()
		m.Rate *= 1 + 0.02*float64(i)
		m.DataRate = m.Rate * 1.2
		m.WriteRate *= 1 + 0.05*float64(i)
		d, err := NewDeviceModel(testProps(), m, opts)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
	}
	fe, err := NewFrontendModel((testMetrics().Rate+writeTestMetrics().WriteRate)*float64(nDevices), 12, testProps().ParseFE)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemModel(fe, devs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestOnlineMetricsWriteValidation(t *testing.T) {
	m := writeTestMetrics()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := m
	bad.WriteRate = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative write rate should fail")
	}
	bad = m
	bad.WriteChunks = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("write chunks < 1 with writes should fail")
	}
	bad = m
	bad.WriteRate = 0
	if err := bad.Validate(); err == nil {
		t.Error("write chunks without write traffic should fail")
	}
}

func TestWriteSpecValidate(t *testing.T) {
	for _, sp := range []WriteSpec{{N: 1, W: 1}, {N: 3, W: 2}, {N: 3, W: 3}} {
		if err := sp.Validate(); err != nil {
			t.Errorf("%+v: %v", sp, err)
		}
	}
	for _, sp := range []WriteSpec{{N: 0, W: 0}, {N: 3, W: 0}, {N: 3, W: 4}, {N: -1, W: 1}} {
		if err := sp.Validate(); err == nil {
			t.Errorf("%+v: expected validation error", sp)
		}
	}
}

// The acceptance bar: the degenerate {N:1, W:1} spec must reproduce the
// plain single-replica write CDF — the direct mixture evaluation with no
// frontend-grid discretization — to within 1e-12, mirroring the coscode
// n=1 bar.
func TestWriteCDFN1MatchesPlainWriteCDF(t *testing.T) {
	sys := buildWriteTestSystem(t, 3, Options{})
	ctx := context.Background()
	for _, sla := range []float64{0.005, 0.010, 0.050, 0.100} {
		want, err := sys.mixtureCDF(ctx, sla, modeWriteFull)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sys.WriteCDFContext(ctx, WriteSpec{N: 1, W: 1}, sla)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("sla=%v: write n=1 %v vs plain write CDF %v (diff %g)",
				sla, got, want, math.Abs(got-want))
		}
		// And the backend tier, against the Swr mixture.
		wantBE, err := sys.mixtureCDF(ctx, sla, modeWriteBackend)
		if err != nil {
			t.Fatal(err)
		}
		gotBE, err := sys.WriteBackendCDFContext(ctx, WriteSpec{N: 1, W: 1}, sla)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gotBE-wantBE) > 1e-12 {
			t.Errorf("sla=%v: backend write n=1 %v vs Swr mixture %v", sla, gotBE, wantBE)
		}
	}
}

func TestWriteCDFProperties(t *testing.T) {
	sys := buildWriteTestSystem(t, 3, Options{})
	ctx := context.Background()
	spec := WriteSpec{N: 3, W: 2}
	prev := 0.0
	for _, tt := range []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.2} {
		v, err := sys.WriteCDFContext(ctx, spec, tt)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 || v > 1 {
			t.Fatalf("t=%v: write CDF %v outside [0,1]", tt, v)
		}
		if v < prev-1e-12 {
			t.Fatalf("t=%v: write CDF not monotone (%v after %v)", tt, v, prev)
		}
		prev = v
	}
	if v, err := sys.WriteCDFContext(ctx, spec, 0); err != nil || v != 0 {
		t.Errorf("write CDF at t=0: %v, %v", v, err)
	}
	// More acks required -> stochastically slower: W=N lies below W=1 at
	// every threshold.
	for _, tt := range []float64{0.01, 0.05, 0.1} {
		fastest, err := sys.WriteCDFContext(ctx, WriteSpec{N: 3, W: 1}, tt)
		if err != nil {
			t.Fatal(err)
		}
		barrier, err := sys.WriteCDFContext(ctx, WriteSpec{N: 3, W: 3}, tt)
		if err != nil {
			t.Fatal(err)
		}
		if barrier > fastest+1e-12 {
			t.Errorf("t=%v: W=3 CDF %v above W=1 CDF %v", tt, barrier, fastest)
		}
	}
}

// The batched write evaluation must agree with per-threshold scalar calls
// bit-for-bit in the N=1 short-circuit and to within 1e-12 through the
// record/replay grid path.
func TestWriteCDFBatchMatchesScalar(t *testing.T) {
	sys := buildWriteTestSystem(t, 3, Options{})
	ctx := context.Background()
	ts := []float64{0, 0.005, 0.01, 0.05, 0.1}
	for _, spec := range []WriteSpec{{N: 1, W: 1}, {N: 3, W: 2}, {N: 3, W: 3}} {
		batch, err := sys.WriteCDFBatchContext(ctx, spec, ts)
		if err != nil {
			t.Fatal(err)
		}
		for i, tt := range ts {
			want, err := sys.WriteCDFContext(ctx, spec, tt)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(batch[i]-want) > 1e-12 {
				t.Errorf("spec=%+v t=%v: batch %v vs scalar %v", spec, tt, batch[i], want)
			}
		}
	}
}

// BatchWrite through CDFBatchKindsContext equals the {N:1,W:1} write CDF,
// and mixing read and write kinds in one traversal changes neither.
func TestBatchKindsWriteFamily(t *testing.T) {
	sys := buildWriteTestSystem(t, 3, Options{})
	ctx := context.Background()
	ts := []float64{0.01, 0.05, 0.1}
	grids, err := sys.CDFBatchKindsContext(ctx, []BatchKind{BatchFrontend, BatchWrite, BatchWriteBackend}, ts)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range ts {
		read, err := sys.CDFContext(ctx, tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(grids[0][i]-read) > 1e-12 {
			t.Errorf("t=%v: mixed-batch read %v vs scalar %v", tt, grids[0][i], read)
		}
		write, err := sys.WriteCDFContext(ctx, WriteSpec{N: 1, W: 1}, tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(grids[1][i]-write) > 1e-12 {
			t.Errorf("t=%v: mixed-batch write %v vs scalar %v", tt, grids[1][i], write)
		}
		writeBE, err := sys.WriteBackendCDFContext(ctx, WriteSpec{N: 1, W: 1}, tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(grids[2][i]-writeBE) > 1e-12 {
			t.Errorf("t=%v: mixed-batch write backend %v vs scalar %v", tt, grids[2][i], writeBE)
		}
	}
}

func TestWriteQuantileInvertsCDF(t *testing.T) {
	sys := buildWriteTestSystem(t, 2, Options{})
	ctx := context.Background()
	spec := WriteSpec{N: 3, W: 2}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		q, err := sys.WriteQuantileContext(ctx, spec, p)
		if err != nil {
			t.Fatal(err)
		}
		v, err := sys.WriteCDFContext(ctx, spec, q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-p) > 1e-6 {
			t.Errorf("p=%v: CDF(quantile)=%v", p, v)
		}
	}
	if q, err := sys.WriteQuantileContext(ctx, spec, 0); err != nil || q != 0 {
		t.Errorf("p=0: %v, %v", q, err)
	}
	if q, err := sys.WriteQuantileContext(ctx, spec, 1); err != nil || !math.IsInf(q, 1) {
		t.Errorf("p=1: %v, %v", q, err)
	}
}

// A read-only mixture has no write traffic to model: write-mode entry
// points must reject it rather than divide by a zero rate.
func TestWriteCDFRejectsReadOnlyMixture(t *testing.T) {
	d, err := NewDeviceModel(testProps(), testMetrics(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontendModel(testMetrics().Rate, 12, testProps().ParseFE)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemModel(fe, []*DeviceModel{d}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sys.WriteCDFContext(ctx, WriteSpec{N: 1, W: 1}, 0.05); !errors.Is(err, ErrBadParams) {
		t.Errorf("scalar: want ErrBadParams, got %v", err)
	}
	if _, err := sys.WriteCDFBatchContext(ctx, WriteSpec{N: 1, W: 1}, []float64{0.05}); !errors.Is(err, ErrBadParams) {
		t.Errorf("batch: want ErrBadParams, got %v", err)
	}
	if _, err := sys.CDFBatchKindsContext(ctx, []BatchKind{BatchWrite}, []float64{0.05}); !errors.Is(err, ErrBadParams) {
		t.Errorf("batch kinds: want ErrBadParams, got %v", err)
	}
}

// A mixed fleet — some devices carrying writes, some read-only — weights
// the write mixture by write rate only: the read-only device must not
// dilute the write CDF.
func TestWriteMixtureSkipsReadOnlyDevices(t *testing.T) {
	opts := Options{}
	writer, err := NewDeviceModel(testProps(), writeTestMetrics(), opts)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := NewDeviceModel(testProps(), testMetrics(), opts)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontendModel(100, 12, testProps().ParseFE)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := NewSystemModel(fe, []*DeviceModel{writer, reader}, opts)
	if err != nil {
		t.Fatal(err)
	}
	alone, err := NewSystemModel(fe, []*DeviceModel{writer}, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, tt := range []float64{0.01, 0.05, 0.1} {
		got, err := mixed.WriteCDFContext(ctx, WriteSpec{N: 1, W: 1}, tt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := alone.WriteCDFContext(ctx, WriteSpec{N: 1, W: 1}, tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("t=%v: mixed-fleet write CDF %v vs writer-only %v", tt, got, want)
		}
	}
}

// Adding write load to a device must slow the reads it shares the queue
// with: the read CDF of the loaded device lies below the read-only one.
func TestWriteLoadInflatesReadLatency(t *testing.T) {
	opts := Options{}
	loaded, err := NewDeviceModel(testProps(), writeTestMetrics(), opts)
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := NewDeviceModel(testProps(), testMetrics(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if lu, qu := loaded.Utilization(), quiet.Utilization(); lu <= qu {
		t.Fatalf("write load should raise utilization: %v vs %v", lu, qu)
	}
	fe, err := NewFrontendModel(60, 12, testProps().ParseFE)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, tt := range []float64{0.02, 0.05, 0.1} {
		sysL, err := NewSystemModel(fe, []*DeviceModel{loaded}, opts)
		if err != nil {
			t.Fatal(err)
		}
		sysQ, err := NewSystemModel(fe, []*DeviceModel{quiet}, opts)
		if err != nil {
			t.Fatal(err)
		}
		vl, err := sysL.CDFContext(ctx, tt)
		if err != nil {
			t.Fatal(err)
		}
		vq, err := sysQ.CDFContext(ctx, tt)
		if err != nil {
			t.Fatal(err)
		}
		if vl >= vq {
			t.Errorf("t=%v: loaded read CDF %v not below quiet %v", tt, vl, vq)
		}
	}
}

// Multi-process devices share one disk: write arrivals must enter the disk
// queue too, and the pipeline must still build and evaluate.
func TestWriteModelMultiProcess(t *testing.T) {
	m := writeTestMetrics()
	m.Procs = 16
	m.DiskMean = 8e-3
	d, err := NewDeviceModel(testProps(), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontendModel(m.Rate+m.WriteRate, 12, testProps().ParseFE)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemModel(fe, []*DeviceModel{d}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	prev := 0.0
	for _, tt := range []float64{0.01, 0.05, 0.1, 0.3} {
		v, err := sys.WriteCDFContext(ctx, WriteSpec{N: 3, W: 2}, tt)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-12 || v < 0 || v > 1 {
			t.Fatalf("t=%v: write CDF %v (prev %v)", tt, v, prev)
		}
		prev = v
	}
	if prev <= 0 {
		t.Fatal("write CDF never left zero")
	}
}
