package simstore

import (
	"math"
	"testing"

	"cosmodel/internal/trace"
)

func TestDegradeDiskValidation(t *testing.T) {
	cl, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.DegradeDisk(-1, 2); err == nil {
		t.Error("negative device should fail")
	}
	if err := cl.DegradeDisk(99, 2); err == nil {
		t.Error("out-of-range device should fail")
	}
	if err := cl.DegradeDisk(0, 0); err == nil {
		t.Error("zero factor should fail")
	}
	if err := cl.DegradeDisk(0, 2); err != nil {
		t.Errorf("valid degradation failed: %v", err)
	}
}

// TestDiskDegradationIsObservable injects a mid-run media degradation and
// checks that (a) the degraded device's observed SLA compliance drops while
// the healthy devices' stays put, and (b) the online metrics pipeline sees
// the slower mean service time — the signal the model uses to track it.
func TestDiskDegradationIsObservable(t *testing.T) {
	cfg := DefaultConfig()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t, 40000, 9)
	if err := cl.PrewarmCaches(cat, 0.95); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.Generate(cat, trace.Schedule{{Rate: 150, Duration: 60, Label: "x"}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	cl.Inject(recs)
	// Healthy first half.
	cl.RunUntil(5)
	s0 := cl.Snapshot()
	cl.RunUntil(30)
	s1 := cl.Snapshot()
	healthy := cl.Window(s0, s1)
	// Degrade device 0 by 3x and measure the second half.
	if err := cl.DegradeDisk(0, 3); err != nil {
		t.Fatal(err)
	}
	cl.RunUntil(35)
	s2 := cl.Snapshot()
	cl.RunUntil(60)
	s3 := cl.Snapshot()
	degraded := cl.Window(s2, s3)

	// (a) the degraded device's 50ms compliance collapses relative to its
	// healthy window.
	before := healthy.DeviceMeetFraction[0][1]
	after := degraded.DeviceMeetFraction[0][1]
	if math.IsNaN(before) || math.IsNaN(after) {
		t.Fatal("missing per-device observations")
	}
	if !(after < before-0.05) {
		t.Errorf("device 0 compliance %v -> %v: degradation invisible", before, after)
	}
	// A healthy device is unaffected (within noise).
	hb := healthy.DeviceMeetFraction[2][1]
	ha := degraded.DeviceMeetFraction[2][1]
	if ha < hb-0.15 {
		t.Errorf("healthy device compliance moved too much: %v -> %v", hb, ha)
	}
	// (b) the measured mean disk service time roughly triples.
	ratio := degraded.DiskMeanSvc[0] / healthy.DiskMeanSvc[0]
	if ratio < 2.2 || ratio > 3.8 {
		t.Errorf("disk mean service ratio = %v, want ~3", ratio)
	}
}

func TestPerDeviceSLAAccountingConsistency(t *testing.T) {
	cfg := DefaultConfig()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t, 10000, 9)
	recs, _ := trace.Generate(cat, trace.Schedule{{Rate: 80, Duration: 15, Label: "x"}}, 7)
	cl.Inject(recs)
	cl.Drain()
	snap := cl.Snapshot()
	// Per-device responses sum to the total, and per-device meets sum to
	// the tier-wide meets.
	var resp uint64
	meets := make([]uint64, len(cfg.SLAs))
	for d := range snap.DevResp {
		resp += snap.DevResp[d]
		for i := range meets {
			meets[i] += snap.DevMeet[d][i]
		}
	}
	if resp != snap.Responses {
		t.Errorf("device responses sum %d, total %d", resp, snap.Responses)
	}
	for i := range meets {
		if meets[i] != snap.Meet[i] {
			t.Errorf("SLA %d: device meets sum %d, total %d", i, meets[i], snap.Meet[i])
		}
	}
}
