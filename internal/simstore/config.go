// Package simstore is a discrete-event simulator of an event-driven cloud
// object storage system in the style of OpenStack Swift: a frontend tier of
// proxy processes, a backend tier of object-server processes with FCFS
// operation queues, one shared disk per storage device, a byte-LRU page
// cache per backend server, connection pools with batched accept(), and
// chunked data reads whose asynchronous sends interleave the processing of
// different requests.
//
// It substitutes for the paper's 7-node Swift testbed: every queueing
// mechanism the model targets (diverse disk operations, data chunking,
// waiting time for being accept()-ed) is reproduced structurally, so the
// simulator provides the "observed" curves of Figs. 6-7 while the analytic
// model in internal/core provides the predictions.
package simstore

import (
	"errors"
	"fmt"
	"math"

	"cosmodel/internal/dist"
)

// ErrBadConfig reports an invalid cluster configuration.
var ErrBadConfig = errors.New("simstore: invalid configuration")

// Architecture selects the backend concurrency model. The paper models the
// event-driven architecture and cites thread-per-connection as the
// alternative it outperforms (Section II); the simulator implements both so
// the comparison can be reproduced.
type Architecture int

const (
	// EventDriven is the paper's model: per-device processes with FCFS
	// operation queues, batched accept(), asynchronous chunk sends.
	EventDriven Architecture = iota
	// ThreadPerConnection dedicates one blocking thread (up to
	// MaxThreadsPerDisk) to each connection: the thread holds the
	// request through every disk read and chunk transmission.
	ThreadPerConnection
)

// String returns the architecture name.
func (a Architecture) String() string {
	switch a {
	case EventDriven:
		return "event-driven"
	case ThreadPerConnection:
		return "thread-per-connection"
	}
	return fmt.Sprintf("Architecture(%d)", int(a))
}

// Config describes a simulated cluster. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	// Frontends is the number of frontend (proxy) servers.
	Frontends int
	// ProcsPerFrontend is the number of event-loop worker processes per
	// frontend server.
	ProcsPerFrontend int
	// Backends is the number of backend (object) servers.
	Backends int
	// DisksPerBackend is the number of storage devices per backend server.
	DisksPerBackend int
	// ProcsPerDisk is Nbe: the number of object-server processes dedicated
	// to each storage device.
	ProcsPerDisk int

	// Partitions and Replicas configure the placement ring.
	Partitions int
	Replicas   int

	// WriteQuorum is W: the number of replica acknowledgements required
	// before a PUT is answered. 0 selects Swift's majority quorum
	// (Replicas/2 + 1); W=1 acknowledges on the fastest replica, W=Replicas
	// waits for all of them. Values above Replicas are rejected.
	WriteQuorum int

	// StripeK, when positive, switches GETs to (n,k) fork-join coded
	// reads: every GET fans one chunk sub-read (ceil(size/k) bytes) out
	// to each of the Replicas devices of the object's partition
	// (n = Replicas) and responds when the k-th-fastest sub-read delivers
	// its first byte; the losing sub-reads are cancelled. StripeK=1
	// models replicated speculative reads (fastest-of-n), StripeK=n a
	// full fork-join barrier. 0 keeps the default single-replica read
	// path. Requires the event-driven architecture (cancellation drops
	// queued backend operations).
	StripeK int
	// Hedge delays the reserve sub-reads: only StripeK primaries are
	// issued on arrival and the remaining Replicas-StripeK follow
	// HedgeDelay seconds later if the request is still incomplete.
	// Requires StripeK >= 1.
	Hedge bool
	// HedgeDelay is the reserve issue delay Δ in seconds; +Inf never
	// issues reserves (read exactly the StripeK primaries).
	HedgeDelay float64

	// ChunkSize is the data read/transmit granularity in bytes.
	ChunkSize int64
	// NetBandwidth is the backend→frontend transfer bandwidth in
	// bytes/second (per transfer; the network is assumed uncontended,
	// matching the paper's sufficient-resources assumption).
	NetBandwidth float64
	// NetRTT is the one-way frontend↔backend latency in seconds.
	NetRTT float64

	// ParseFE and ParseBE are the request-parsing service times (seconds)
	// at the two tiers; the paper measures them as near-constant.
	ParseFE float64
	ParseBE float64
	// AcceptCost is the event-loop cost of executing one accept()
	// operation (a batched accept of everything in the pool).
	AcceptCost float64

	// DiskIndex, DiskMeta and DiskData are the raw per-operation disk
	// service time distributions (seconds).
	DiskIndex dist.Distribution
	DiskMeta  dist.Distribution
	DiskData  dist.Distribution

	// CacheBytes is the page-cache capacity per backend server.
	CacheBytes int64
	// IndexEntrySize and MetaEntrySize are the cached footprint of an
	// object's index and metadata entries (the paper's ~1 KB I&M).
	IndexEntrySize int64
	MetaEntrySize  int64

	// SLAs are the response-latency bounds (seconds) tracked by the
	// metrics collector.
	SLAs []float64

	// Architecture selects the backend concurrency model.
	Architecture Architecture
	// MaxThreadsPerDisk bounds the thread pool per storage device in
	// ThreadPerConnection mode (ignored for EventDriven).
	MaxThreadsPerDisk int

	// DiskSampleEvery, when positive, records every DiskSampleEvery-th raw
	// disk service time per operation class so measurement windows can
	// export them (Window.DiskSamples) — the feed a production monitoring
	// agent would give an online recalibration loop. 0 disables sampling.
	DiskSampleEvery int

	// RequestTimeout aborts and retries a request whose first response
	// byte has not arrived within this many seconds; 0 disables timeouts.
	// The paper's evaluation discards measurement windows in which
	// timeouts or retries occurred.
	RequestTimeout float64
	// MaxRetries is the number of re-issues after a timeout before the
	// request is left to complete whenever it completes.
	MaxRetries int

	// Seed drives all randomness in the cluster deterministically.
	Seed int64
}

// DefaultConfig mirrors the paper's testbed: 3 frontend servers, 4 backend
// servers with one 1 TB HDD each, 1024 partitions × 3 replicas, 64 KB
// chunks, 1 Gbps interconnect, and Gamma disk service times in the range of
// the paper's Fig. 5. The backend page cache is sized to be scarce relative
// to the catalog, as in the paper's 5 GB memory limit.
func DefaultConfig() Config {
	return Config{
		Frontends:         3,
		ProcsPerFrontend:  4,
		Backends:          4,
		DisksPerBackend:   1,
		ProcsPerDisk:      1,
		Partitions:        1024,
		Replicas:          3,
		ChunkSize:         64 * 1024,
		NetBandwidth:      100e6, // ~1 Gbps effective
		NetRTT:            100e-6,
		ParseFE:           0.3e-3,
		ParseBE:           0.5e-3,
		AcceptCost:        0.05e-3,
		DiskIndex:         dist.NewGammaMeanSCV(9e-3, 0.45),
		DiskMeta:          dist.NewGammaMeanSCV(6e-3, 0.50),
		DiskData:          dist.NewGammaMeanSCV(8e-3, 0.40),
		CacheBytes:        96 << 20,
		IndexEntrySize:    512,
		MetaEntrySize:     512,
		SLAs:              []float64{0.010, 0.050, 0.100},
		Architecture:      EventDriven,
		MaxThreadsPerDisk: 64,
		RequestTimeout:    0,
		MaxRetries:        1,
		Seed:              1,
	}
}

// Devices returns the total number of storage devices.
func (c Config) Devices() int { return c.Backends * c.DisksPerBackend }

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Frontends < 1 || c.ProcsPerFrontend < 1:
		return fmt.Errorf("%w: need at least one frontend process", ErrBadConfig)
	case c.Backends < 1 || c.DisksPerBackend < 1 || c.ProcsPerDisk < 1:
		return fmt.Errorf("%w: need at least one backend process per disk", ErrBadConfig)
	case c.Partitions < 1 || c.Partitions&(c.Partitions-1) != 0:
		return fmt.Errorf("%w: partitions must be a power of two", ErrBadConfig)
	case c.Replicas < 1 || c.Replicas > c.Devices():
		return fmt.Errorf("%w: replicas=%d with %d devices", ErrBadConfig, c.Replicas, c.Devices())
	case c.WriteQuorum < 0 || c.WriteQuorum > c.Replicas:
		return fmt.Errorf("%w: write quorum W=%d outside [0,%d]", ErrBadConfig, c.WriteQuorum, c.Replicas)
	case c.StripeK < 0 || c.StripeK > c.Replicas:
		return fmt.Errorf("%w: stripe k=%d outside [0,%d]", ErrBadConfig, c.StripeK, c.Replicas)
	case c.StripeK > 0 && c.Architecture != EventDriven:
		return fmt.Errorf("%w: coded reads require the event-driven architecture", ErrBadConfig)
	case c.Hedge && c.StripeK < 1:
		return fmt.Errorf("%w: hedging requires StripeK >= 1", ErrBadConfig)
	case c.Hedge && (math.IsNaN(c.HedgeDelay) || c.HedgeDelay < 0):
		return fmt.Errorf("%w: hedge delay %v must be >= 0", ErrBadConfig, c.HedgeDelay)
	case !c.Hedge && c.HedgeDelay != 0:
		return fmt.Errorf("%w: hedge delay %v without hedging", ErrBadConfig, c.HedgeDelay)
	case c.ChunkSize < 1:
		return fmt.Errorf("%w: chunk size must be positive", ErrBadConfig)
	case c.NetBandwidth <= 0 || c.NetRTT < 0:
		return fmt.Errorf("%w: bad network parameters", ErrBadConfig)
	case c.ParseFE <= 0 || c.ParseBE <= 0 || c.AcceptCost < 0:
		return fmt.Errorf("%w: bad parse/accept costs", ErrBadConfig)
	case c.DiskIndex == nil || c.DiskMeta == nil || c.DiskData == nil:
		return fmt.Errorf("%w: disk service distributions required", ErrBadConfig)
	case c.CacheBytes <= 0 || c.IndexEntrySize < 0 || c.MetaEntrySize < 0:
		return fmt.Errorf("%w: bad cache parameters", ErrBadConfig)
	case len(c.SLAs) == 0:
		return fmt.Errorf("%w: at least one SLA required", ErrBadConfig)
	case c.Architecture == ThreadPerConnection && c.MaxThreadsPerDisk < 1:
		return fmt.Errorf("%w: thread-per-connection needs MaxThreadsPerDisk >= 1", ErrBadConfig)
	case c.RequestTimeout < 0 || c.MaxRetries < 0:
		return fmt.Errorf("%w: bad timeout/retry parameters", ErrBadConfig)
	case c.DiskSampleEvery < 0:
		return fmt.Errorf("%w: disk sample stride %d must be nonnegative", ErrBadConfig, c.DiskSampleEvery)
	}
	for _, s := range c.SLAs {
		if s <= 0 {
			return fmt.Errorf("%w: SLA %v must be positive", ErrBadConfig, s)
		}
	}
	return nil
}
