package simstore

import (
	"math"
	"math/rand"
)

// frontendServer is one proxy machine with several event-loop worker
// processes. Incoming requests are spread round-robin over the processes.
type frontendServer struct {
	id     int
	procs  []*feProc
	rrNext int
}

func (f *frontendServer) arrive(req *Request) {
	p := f.procs[f.rrNext]
	f.rrNext = (f.rrNext + 1) % len(f.procs)
	p.enqueue(req)
}

// feProc is one event-driven proxy process. Its only synchronous work is
// request parsing; connection establishment to the backend and response
// streaming are asynchronous, matching the paper's frontend model (an M/G/1
// queue whose service time is the parse latency).
type feProc struct {
	cl  *Cluster
	rng *rand.Rand // replica choice

	q       []*Request
	running bool
}

func (p *feProc) enqueue(req *Request) {
	p.q = append(p.q, req)
	p.kick()
}

func (p *feProc) kick() {
	if p.running || len(p.q) == 0 {
		return
	}
	p.running = true
	req := p.q[0]
	p.q = p.q[1:]
	p.cl.kern.After(p.cl.cfg.ParseFE, func() {
		p.route(req)
		p.running = false
		p.kick()
	})
}

// route dispatches a parsed request: GETs go to one randomly chosen
// replica (or fan out as a coded read when striping is on), PUTs to all
// replicas.
func (p *feProc) route(req *Request) {
	if req.IsWrite {
		p.routeWrite(req)
		return
	}
	if p.cl.cfg.StripeK > 0 {
		p.routeCodedRead(req)
		return
	}
	p.routeRead(req)
}

// routeWrite sends a PUT to every replica of the object's partition; the
// client is acknowledged once the configured write quorum of replicas has
// durably written the object (Swift's majority quorum by default).
func (p *feProc) routeWrite(req *Request) {
	part := p.cl.ring.PartitionOfID(req.Object)
	devs := p.cl.ring.ReplicasOf(part)
	need := p.cl.cfg.WriteQuorum
	if need == 0 {
		need = len(devs)/2 + 1
	}
	if need > len(devs) {
		// A degraded partition can carry fewer replicas than configured;
		// quorum cannot exceed what exists.
		need = len(devs)
	}
	state := &writeState{
		arriveFE:   req.ArriveFE,
		acksNeeded: need,
	}
	req.ConnectAt = p.cl.kern.Now()
	for _, dev := range devs {
		p.cl.nextReqID++
		sub := &Request{
			ID:       p.cl.nextReqID,
			Object:   req.Object,
			Size:     req.Size,
			ArriveFE: req.ArriveFE,
			IsWrite:  true,
			write:    state,
			Device:   int(dev),
		}
		p.cl.metrics.noteDeviceWrite(int(dev))
		s := sub
		target := int(dev)
		p.cl.kern.After(p.cl.cfg.NetRTT, func() {
			p.cl.devices[target].connect(s)
		})
	}
}

// routeRead picks a replica device for the object (uniformly at random, as
// the Swift proxy does) and initiates the backend connection, arming the
// request timeout when one is configured.
func (p *feProc) routeRead(req *Request) {
	req.Attempt++
	part := p.cl.ring.PartitionOfID(req.Object)
	dev := int(p.cl.ring.PickReplica(part, p.rng))
	req.Device = dev
	req.ConnectAt = p.cl.kern.Now()
	p.cl.metrics.noteDeviceRequest(dev)
	r := req
	p.cl.kern.After(p.cl.cfg.NetRTT, func() {
		p.cl.devices[dev].connect(r)
	})
	if p.cl.cfg.RequestTimeout > 0 {
		p.watch(req)
	}
}

// routeCodedRead fans a GET out as an (n,k) fork-join coded read: one
// stripe sub-read of ceil(size/k) bytes per replica device of the object's
// partition. The parent responds when the k-th sub-read's first byte
// reaches the frontend (Metrics.noteCodedArrival) and the losers are
// cancelled. With hedging only the k primaries are issued on arrival; the
// reserves follow HedgeDelay seconds later if the parent is still
// incomplete.
func (p *feProc) routeCodedRead(req *Request) {
	req.Attempt++
	part := p.cl.ring.PartitionOfID(req.Object)
	devs := p.cl.ring.ReplicasOf(part)
	n := len(devs)
	k := p.cl.cfg.StripeK
	if k > n {
		k = n
	}
	state := &readState{parent: req, need: k}
	req.read = state
	req.ConnectAt = p.cl.kern.Now()
	// Random device order, so the primary set does not bias load toward
	// any replica position.
	order := p.rng.Perm(n)
	primaries := n
	if p.cl.cfg.Hedge {
		primaries = k
	}
	for i := 0; i < primaries; i++ {
		p.issueSub(req, int(devs[order[i]]))
	}
	if primaries < n && !math.IsInf(p.cl.cfg.HedgeDelay, 1) {
		reserves := make([]int, 0, n-primaries)
		for i := primaries; i < n; i++ {
			reserves = append(reserves, int(devs[order[i]]))
		}
		p.cl.kern.After(p.cl.cfg.HedgeDelay, func() {
			if state.done || req.recorded || req.abandoned {
				return
			}
			for _, dev := range reserves {
				p.cl.metrics.noteHedge()
				p.issueSub(req, dev)
			}
		})
	}
	if p.cl.cfg.RequestTimeout > 0 {
		p.watch(req)
	}
}

// issueSub issues one stripe sub-read of a coded GET to dev.
func (p *feProc) issueSub(parent *Request, dev int) {
	size := (parent.Size + int64(parent.read.need) - 1) / int64(parent.read.need)
	if size < 1 {
		size = 1
	}
	p.cl.nextReqID++
	sub := &Request{
		ID:       p.cl.nextReqID,
		Object:   parent.Object,
		Size:     size,
		ArriveFE: parent.ArriveFE,
		Device:   dev,
		read:     parent.read,
	}
	parent.read.subs = append(parent.read.subs, sub)
	p.cl.metrics.noteDeviceRequest(dev)
	s := sub
	p.cl.kern.After(p.cl.cfg.NetRTT, func() {
		if s.abandoned {
			return
		}
		p.cl.devices[dev].connect(s)
	})
}

// watch aborts and retries the request if its first response byte has not
// arrived within the configured timeout. The superseded attempt keeps
// running at the backend (its work is already enqueued — as in the real
// system) but is excluded from response accounting. After MaxRetries the
// request is left to complete whenever it completes, counting against the
// SLA naturally.
func (p *feProc) watch(req *Request) {
	p.cl.kern.After(p.cl.cfg.RequestTimeout, func() {
		if req.recorded || req.abandoned {
			return
		}
		p.cl.metrics.noteTimeout()
		if req.Attempt > p.cl.cfg.MaxRetries {
			return
		}
		req.abandoned = true
		p.cl.metrics.noteRetry()
		p.cl.nextReqID++
		retry := &Request{
			ID:       p.cl.nextReqID,
			Object:   req.Object,
			Size:     req.Size,
			ArriveFE: req.ArriveFE, // latency spans all attempts
			Attempt:  req.Attempt,
		}
		// The proxy already parsed the request: the retry goes straight
		// to routing on another (possibly the same) replica.
		p.route(retry)
	})
}
