package simstore

import (
	"fmt"

	"cosmodel/internal/cache"
	"cosmodel/internal/sim"
	"cosmodel/internal/trace"
)

// DiskSamples holds per-operation-class disk service-time measurements from
// the device benchmark (the input of the paper's Fig. 5 fitting step).
type DiskSamples struct {
	Index []float64
	Meta  []float64
	Data  []float64
}

// MeasureDiskService benchmarks a storage device the way the paper does:
// operations are issued sequentially with at most one outstanding, so each
// recorded latency is a raw service time with no queueing. n operations are
// measured per class.
func MeasureDiskService(cfg Config, n int, seed int64) (DiskSamples, error) {
	if err := cfg.Validate(); err != nil {
		return DiskSamples{}, err
	}
	if n < 1 {
		return DiskSamples{}, fmt.Errorf("%w: need n >= 1 samples", ErrBadConfig)
	}
	kern := sim.NewKernel()
	d := newDisk(kern, &cfg, sim.Stream(seed, 5000))
	out := DiskSamples{
		Index: make([]float64, 0, n),
		Meta:  make([]float64, 0, n),
		Data:  make([]float64, 0, n),
	}
	measure := func(class cache.Class, sink *[]float64) {
		for i := 0; i < n; i++ {
			start := kern.Now()
			done := false
			d.submit(class, func() {
				*sink = append(*sink, kern.Now()-start)
				done = true
			})
			for !done && kern.Step() {
			}
		}
	}
	measure(cache.ClassIndex, &out.Index)
	measure(cache.ClassMeta, &out.Meta)
	measure(cache.ClassData, &out.Data)
	return out, nil
}

// ParseCalibration is the result of the closed-loop parse benchmark.
type ParseCalibration struct {
	// DFP is the measured frontend duration (request receipt to start of
	// response) and DBP the backend one, as defined in Section IV-A.
	DFP, DBP float64
	// FE and BE are the derived parse service times after subtracting the
	// network components.
	FE, BE float64
}

// MeasureParse runs the paper's parse benchmark: a closed loop with one
// outstanding request, always reading the same (cached) object, so no disk
// access and no queueing occur. It records Dfp and Dbp and derives the
// parse latencies; with the simulator's known network model the derivation
// subtracts the accept cost and three one-way trips (connect, request,
// first response byte).
func MeasureParse(cfg Config, n int, seed int64) (ParseCalibration, error) {
	if err := cfg.Validate(); err != nil {
		return ParseCalibration{}, err
	}
	if n < 1 {
		return ParseCalibration{}, fmt.Errorf("%w: need n >= 1 samples", ErrBadConfig)
	}
	cl, err := New(cfg)
	if err != nil {
		return ParseCalibration{}, err
	}
	const obj = uint64(0)
	size := cfg.ChunkSize / 2 // single small chunk
	// Cache the object on every backend server so all accesses hit.
	for _, srv := range cl.servers {
		srv.cache.Put(indexKey(obj), cfg.IndexEntrySize)
		srv.cache.Put(metaKey(obj), cfg.MetaEntrySize)
		srv.cache.Put(chunkKey(obj, 0), size)
	}
	var dfpSum, dbpSum float64
	var count int
	cl.metrics.SetResponseHook(func(r *Request) {
		dfpSum += r.Latency()
		dbpSum += r.BackendLatency()
		count++
	})
	// Closed loop: requests spaced far apart (1 second each) so exactly
	// one is ever in flight.
	for i := 0; i < n; i++ {
		cl.InjectRecord(trace.Record{At: float64(i + 1), Object: obj, Size: size})
	}
	cl.Drain()
	if count == 0 {
		return ParseCalibration{}, fmt.Errorf("simstore: parse benchmark recorded no responses")
	}
	dfp := dfpSum / float64(count)
	dbp := dbpSum / float64(count)
	return ParseCalibration{
		DFP: dfp,
		DBP: dbp,
		FE:  dfp - dbp - cfg.AcceptCost - 3*cfg.NetRTT,
		BE:  dbp,
	}, nil
}
