package simstore

import (
	"cosmodel/internal/cache"
)

// Thread-per-connection backend path: each connection gets a dedicated
// blocking thread, bounded per device by MaxThreadsPerDisk. The thread
// holds the request through parsing, every disk read and — unlike the
// event-driven path — every chunk transmission. Connections beyond the
// thread limit wait in the accept backlog until a thread frees, which is
// this architecture's version of the WTA.

// connectTPC delivers a connection in ThreadPerConnection mode.
func (d *device) connectTPC(req *Request) {
	cl := d.procs[0].cl
	req.PoolAt = cl.kern.Now()
	if d.threadsActive < cl.cfg.MaxThreadsPerDisk {
		d.startThread(req)
		return
	}
	d.threadPool = append(d.threadPool, req)
}

// startThread accepts the connection and runs its request on a dedicated
// thread.
func (d *device) startThread(req *Request) {
	cl := d.procs[0].cl
	d.threadsActive++
	req.AcceptedAt = cl.kern.Now()
	cl.metrics.noteAccepted(req)
	r := req
	cl.kern.After(cl.cfg.NetRTT, func() {
		r.BEArriveAt = cl.kern.Now()
		cl.kern.After(cl.cfg.ParseBE, func() {
			if r.IsWrite {
				d.tpcWriteIndex(r)
			} else {
				d.tpcIndex(r)
			}
		})
	})
}

func (d *device) tpcIndex(req *Request) {
	cl := d.procs[0].cl
	if d.srv.cache.Access(cache.ClassIndex, indexKey(req.Object), cl.cfg.IndexEntrySize) {
		d.tpcMeta(req)
		return
	}
	d.disk.submit(cache.ClassIndex, func() { d.tpcMeta(req) })
}

func (d *device) tpcMeta(req *Request) {
	cl := d.procs[0].cl
	if d.srv.cache.Access(cache.ClassMeta, metaKey(req.Object), cl.cfg.MetaEntrySize) {
		d.tpcData(req, 0)
		return
	}
	d.disk.submit(cache.ClassMeta, func() { d.tpcData(req, 0) })
}

func (d *device) tpcData(req *Request, chunk int) {
	cl := d.procs[0].cl
	cl.metrics.noteChunkRead(d.id)
	size := chunkBytes(req.Size, cl.cfg.ChunkSize, chunk)
	if d.srv.cache.Access(cache.ClassData, chunkKey(req.Object, chunk), size) {
		d.tpcSend(req, chunk, size)
		return
	}
	d.disk.submit(cache.ClassData, func() { d.tpcSend(req, chunk, size) })
}

// tpcSend transmits one chunk synchronously: the thread blocks for the
// whole transfer, the defining difference from the event-driven path.
func (d *device) tpcSend(req *Request, chunk int, size int64) {
	cl := d.procs[0].cl
	now := cl.kern.Now()
	if chunk == 0 {
		req.BEFirstByteAt = now
		req.FEFirstByteAt = now + cl.cfg.NetRTT
		r := req
		cl.kern.At(req.FEFirstByteAt, func() { cl.metrics.recordResponse(r) })
	}
	req.bytesSent += size
	sendDur := float64(size) / cl.cfg.NetBandwidth
	r := req
	if req.bytesSent >= req.Size {
		cl.kern.After(sendDur+cl.cfg.NetRTT, func() {
			r.DoneAt = cl.kern.Now()
			cl.metrics.noteDone(r)
			d.threadDone()
		})
		return
	}
	next := chunk + 1
	cl.kern.After(sendDur, func() {
		d.tpcData(r, next)
	})
}

// threadDone releases the thread and admits the next pooled connection.
func (d *device) threadDone() {
	d.threadsActive--
	if len(d.threadPool) > 0 {
		next := d.threadPool[0]
		d.threadPool = d.threadPool[1:]
		d.startThread(next)
	}
}
