package simstore

import (
	"cosmodel/internal/cache"
)

// backendServer is one backend machine: a shared page cache and one or more
// storage devices.
type backendServer struct {
	id      int
	cache   *cache.LRU
	devices []*device
}

// device is one storage device: a disk, its dedicated object-server
// processes, and a per-process connection pool. Incoming connections are
// spread over the processes round-robin (the kernel's listen-socket wakeup
// order is not load-aware).
type device struct {
	id     int
	srv    *backendServer
	disk   *disk
	procs  []*beProc
	rrNext int

	// Thread-per-connection state (Architecture == ThreadPerConnection).
	threadsActive int
	threadPool    []*Request
}

// connect delivers a connection request from the frontend tier. In the
// event-driven architecture it enters the per-process connection pool and
// waits for an accept() operation — the paper's WTA; in thread-per-
// connection mode it waits for a free thread.
func (d *device) connect(req *Request) {
	if d.procs[0].cl.cfg.Architecture == ThreadPerConnection {
		d.connectTPC(req)
		return
	}
	req.PoolAt = d.procs[0].cl.kern.Now()
	p := d.procs[d.rrNext]
	d.rrNext = (d.rrNext + 1) % len(d.procs)
	p.pool = append(p.pool, req)
	if !p.acceptQueued {
		p.acceptQueued = true
		p.enqueue(beOp{kind: opAccept})
	}
}

// opKind enumerates the operations a backend process schedules on its FCFS
// event queue. accept() is scheduled identically to normal operations —
// the property the WTA model rests on.
type opKind uint8

const (
	opAccept     opKind = iota
	opServe             // parse + index lookup + metadata read + first data chunk
	opChunk             // one subsequent data chunk read
	opWriteChunk        // one received data chunk to write to disk
)

// beOp is one entry of a backend process's operation queue.
type beOp struct {
	kind  opKind
	req   *Request
	chunk int
}

// beProc is one event-driven object-server process. It executes exactly one
// operation at a time; a disk access blocks it (the process cannot run other
// queued operations while its synchronous I/O is outstanding), while chunk
// transmission is asynchronous and releases it immediately.
type beProc struct {
	cl  *Cluster
	dev *device

	q       []beOp
	running bool

	pool         []*Request // connections waiting to be accept()-ed
	acceptQueued bool
}

func (p *beProc) enqueue(op beOp) {
	p.q = append(p.q, op)
	p.kick()
}

// kick starts the next queued operation if the process is idle. Cancelled
// coded sub-reads are dropped before execution: cancellation reaches
// queued operations, while the operation already running (a submitted disk
// command) completes naturally.
func (p *beProc) kick() {
	if p.running {
		return
	}
	for len(p.q) > 0 && p.q[0].req != nil && p.q[0].req.abandoned && p.q[0].req.read != nil {
		p.q = p.q[1:]
	}
	if len(p.q) == 0 {
		return
	}
	p.running = true
	op := p.q[0]
	p.q = p.q[1:]
	switch op.kind {
	case opAccept:
		p.execAccept()
	case opServe:
		if op.req.IsWrite {
			p.execWriteServe(op.req)
		} else {
			p.execServe(op.req)
		}
	case opChunk:
		p.stepData(op.req, op.chunk)
	case opWriteChunk:
		p.execWriteChunk(op.req, op.chunk)
	}
}

// finish marks the current operation complete and resumes the event loop.
func (p *beProc) finish() {
	p.running = false
	p.kick()
}

// execAccept performs a batched accept(): every connection in the pool at
// completion time is accepted at once (processes "may batch accept()
// requests", as the paper notes when discussing load imbalance).
func (p *beProc) execAccept() {
	p.cl.kern.After(p.cl.cfg.AcceptCost, func() {
		accepted := p.pool
		p.pool = nil
		p.acceptQueued = false
		now := p.cl.kern.Now()
		for _, req := range accepted {
			req.AcceptedAt = now
			req.proc = p
			p.cl.metrics.noteAccepted(req)
			r := req
			// The frontend sends the HTTP request once the connection
			// is established; it reaches the process an RTT later.
			p.cl.kern.After(p.cl.cfg.NetRTT, func() {
				r.BEArriveAt = p.cl.kern.Now()
				p.enqueue(beOp{kind: opServe, req: r})
			})
		}
		p.finish()
	})
}

// execServe runs the head of a request's backend work: request parsing,
// then index lookup, metadata read and the first data chunk, each possibly
// hitting the disk.
func (p *beProc) execServe(req *Request) {
	p.cl.kern.After(p.cl.cfg.ParseBE, func() {
		p.stepIndex(req)
	})
}

func (p *beProc) stepIndex(req *Request) {
	if p.dev.srv.cache.Access(cache.ClassIndex, indexKey(req.Object), p.cl.cfg.IndexEntrySize) {
		p.stepMeta(req)
		return
	}
	p.dev.disk.submit(cache.ClassIndex, func() { p.stepMeta(req) })
}

func (p *beProc) stepMeta(req *Request) {
	if p.dev.srv.cache.Access(cache.ClassMeta, metaKey(req.Object), p.cl.cfg.MetaEntrySize) {
		p.stepData(req, 0)
		return
	}
	p.dev.disk.submit(cache.ClassMeta, func() { p.stepData(req, 0) })
}

// stepData reads one data chunk (from cache or disk) and then starts its
// asynchronous transmission.
func (p *beProc) stepData(req *Request, chunk int) {
	p.cl.metrics.noteChunkRead(p.dev.id)
	size := chunkBytes(req.Size, p.cl.cfg.ChunkSize, chunk)
	if p.dev.srv.cache.Access(cache.ClassData, chunkKey(req.Object, chunk), size) {
		p.afterData(req, chunk, size)
		return
	}
	p.dev.disk.submit(cache.ClassData, func() { p.afterData(req, chunk, size) })
}

// afterData runs once a chunk is in memory: it records first-byte latency
// (the paper's response point: metadata plus first chunk ready), starts the
// asynchronous send, schedules the next chunk operation for when the send
// completes, and releases the process to its next queued operation.
func (p *beProc) afterData(req *Request, chunk int, size int64) {
	kern := p.cl.kern
	now := kern.Now()
	if chunk == 0 {
		req.BEFirstByteAt = now
		req.FEFirstByteAt = now + p.cl.cfg.NetRTT
		r := req
		if req.read != nil {
			// A stripe sub-read counts toward its parent's fork-join
			// quorum instead of responding itself.
			kern.At(req.FEFirstByteAt, func() { p.cl.metrics.noteCodedArrival(r) })
		} else {
			kern.At(req.FEFirstByteAt, func() { p.cl.metrics.recordResponse(r) })
		}
	}
	req.bytesSent += size
	sendDur := float64(size) / p.cl.cfg.NetBandwidth
	r := req
	if req.bytesSent >= req.Size {
		// The response completes when the last byte reaches the frontend.
		kern.After(sendDur+p.cl.cfg.NetRTT, func() {
			r.DoneAt = kern.Now()
			p.cl.metrics.noteDone(r)
		})
	} else {
		next := chunk + 1
		kern.After(sendDur, func() {
			p.enqueue(beOp{kind: opChunk, req: r, chunk: next})
		})
	}
	p.finish()
}

// queueLen returns the current operation-queue length (excluding the running
// operation).
func (p *beProc) queueLen() int { return len(p.q) }

// chunkBytes returns the size of the chunk-th chunk of an object.
func chunkBytes(objSize, chunkSize int64, chunk int) int64 {
	if objSize <= 0 {
		return 0
	}
	off := int64(chunk) * chunkSize
	if off >= objSize {
		return 0
	}
	remain := objSize - off
	if remain > chunkSize {
		return chunkSize
	}
	return remain
}
