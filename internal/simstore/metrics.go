package simstore

import (
	"math"

	"cosmodel/internal/cache"
	"cosmodel/internal/stats"
)

// Metrics accumulates the cluster's cumulative counters. Windowed views are
// obtained by subtracting two Snapshots.
type Metrics struct {
	slas []float64

	responses uint64
	meet      []uint64 // per SLA, frontend-tier latency
	beMeet    []uint64 // per SLA, backend-tier latency
	latSum    float64
	beLatSum  float64
	completed uint64
	wtaSum    float64
	wtaCount  uint64
	devReqs   []uint64 // arrivals routed per device
	devChunks []uint64 // data read operations per device

	latHist  *stats.Histogram
	timeouts uint64
	retries  uint64
	hedges   uint64 // hedged reserve sub-reads actually issued

	devWrites      []uint64 // PUT replica sub-requests per device
	devWriteChunks []uint64 // data chunk write operations per device
	writeResponses uint64   // quorum-acknowledged PUTs
	writeLatSum    float64
	writeMeet      []uint64 // per SLA, quorum-ack latency

	// Per-device SLA accounting (the paper: "the system counts the number
	// of requests that meet or violate the SLA for each storage device").
	devResponses []uint64
	devMeet      [][]uint64 // [device][sla]

	recordLatencies bool
	latencies       []float64
	wtas            []float64

	onResponse func(*Request)
}

func newMetrics(cfg *Config) *Metrics {
	m := &Metrics{
		slas:           append([]float64(nil), cfg.SLAs...),
		meet:           make([]uint64, len(cfg.SLAs)),
		beMeet:         make([]uint64, len(cfg.SLAs)),
		devReqs:        make([]uint64, cfg.Devices()),
		devChunks:      make([]uint64, cfg.Devices()),
		devWrites:      make([]uint64, cfg.Devices()),
		devWriteChunks: make([]uint64, cfg.Devices()),
		writeMeet:      make([]uint64, len(cfg.SLAs)),
		devResponses:   make([]uint64, cfg.Devices()),
		devMeet:        make([][]uint64, cfg.Devices()),
		latHist:        stats.NewLatencyHistogram(),
	}
	for d := range m.devMeet {
		m.devMeet[d] = make([]uint64, len(cfg.SLAs))
	}
	return m
}

// RecordLatencies enables (or disables) storing every response latency and
// WTA sample, for CDF-level validation.
func (m *Metrics) RecordLatencies(on bool) { m.recordLatencies = on }

// Latencies returns the recorded frontend response latencies (if enabled).
func (m *Metrics) Latencies() []float64 { return m.latencies }

// WTASamples returns the recorded accept-waiting times (if enabled).
func (m *Metrics) WTASamples() []float64 { return m.wtas }

func (m *Metrics) recordResponse(req *Request) {
	if req.recorded || req.abandoned {
		return
	}
	req.recorded = true
	lat := req.Latency()
	beLat := req.BackendLatency()
	m.responses++
	m.latHist.Observe(lat)
	m.latSum += lat
	m.beLatSum += beLat
	m.devResponses[req.Device]++
	for i, sla := range m.slas {
		if lat <= sla {
			m.meet[i]++
			m.devMeet[req.Device][i]++
		}
		if beLat <= sla {
			m.beMeet[i]++
		}
	}
	if m.recordLatencies {
		m.latencies = append(m.latencies, lat)
	}
	if m.onResponse != nil {
		m.onResponse(req)
	}
}

// SetResponseHook installs a callback invoked for every completed response
// (used by calibration and tests that need per-request timestamps).
func (m *Metrics) SetResponseHook(fn func(*Request)) { m.onResponse = fn }

func (m *Metrics) noteAccepted(req *Request) {
	m.wtaSum += req.WTA()
	m.wtaCount++
	if m.recordLatencies {
		m.wtas = append(m.wtas, req.WTA())
	}
}

func (m *Metrics) noteDone(*Request)         { m.completed++ }
func (m *Metrics) noteDeviceRequest(dev int) { m.devReqs[dev]++ }
func (m *Metrics) noteChunkRead(dev int)     { m.devChunks[dev]++ }
func (m *Metrics) noteTimeout()              { m.timeouts++ }
func (m *Metrics) noteRetry()                { m.retries++ }
func (m *Metrics) noteDeviceWrite(dev int)   { m.devWrites[dev]++ }
func (m *Metrics) noteWriteChunk(dev int)    { m.devWriteChunks[dev]++ }

func (m *Metrics) noteHedge() { m.hedges++ }

// Hedges returns the cumulative number of hedged reserve sub-reads
// actually issued.
func (m *Metrics) Hedges() uint64 { return m.hedges }

// noteCodedArrival counts one stripe sub-read's first byte reaching the
// frontend. The parent GET is recorded as responded at the k-th arrival —
// with the deciding sub-read's backend timestamps and device attribution —
// and the losing sub-reads are cancelled (queued backend work dropped;
// in-flight disk IO finishes naturally).
func (m *Metrics) noteCodedArrival(sub *Request) {
	rs := sub.read
	if rs == nil || rs.done || sub.abandoned {
		return
	}
	if rs.parent.recorded || rs.parent.abandoned {
		// Parent superseded by a timeout retry: stand the stripe down.
		rs.done = true
		cancelSubs(rs, nil)
		return
	}
	rs.got++
	if rs.got < rs.need {
		return
	}
	rs.done = true
	parent := rs.parent
	parent.Device = sub.Device
	parent.BEArriveAt = sub.BEArriveAt
	parent.BEFirstByteAt = sub.BEFirstByteAt
	parent.FEFirstByteAt = sub.FEFirstByteAt
	m.recordResponse(parent)
	cancelSubs(rs, sub)
}

// cancelSubs abandons every sub-read of the stripe except keep and those
// that already delivered their first byte (their remaining chunk sends are
// response streaming, not queue load worth modeling as cancelled).
func cancelSubs(rs *readState, keep *Request) {
	for _, s := range rs.subs {
		if s == keep || s.FEFirstByteAt > 0 {
			continue
		}
		s.abandoned = true
	}
}

// noteWriteAck counts one replica acknowledgement of a PUT; the PUT is
// recorded as responded when its write quorum is reached.
func (m *Metrics) noteWriteAck(req *Request, now float64) {
	ws := req.write
	if ws == nil || ws.recorded {
		return
	}
	ws.acks++
	if ws.acks < ws.acksNeeded {
		return
	}
	ws.recorded = true
	m.writeResponses++
	lat := now - ws.arriveFE
	m.writeLatSum += lat
	for i, sla := range m.slas {
		if lat <= sla {
			m.writeMeet[i]++
		}
	}
}

// Timeouts returns the cumulative number of request timeouts.
func (m *Metrics) Timeouts() uint64 { return m.timeouts }

// Retries returns the cumulative number of retried requests.
func (m *Metrics) Retries() uint64 { return m.retries }

// Snapshot is a copy of all cumulative counters at a point in simulated
// time, including per-device disk statistics and per-server cache
// statistics.
type Snapshot struct {
	Time           float64
	Responses      uint64
	Meet           []uint64
	BEMeet         []uint64
	LatSum         float64
	BELatSum       float64
	Completed      uint64
	WTASum         float64
	WTACount       uint64
	Timeouts       uint64
	Retries        uint64
	Hedges         uint64
	DevReqs        []uint64
	DevChunks      []uint64
	DevWrites      []uint64
	DevWriteChunks []uint64
	DevResp        []uint64
	DevMeet        [][]uint64
	WriteResp      uint64
	WriteLat       float64
	WriteMeet      []uint64
	Disk           []diskStats      // per device
	Cache          []cache.Stats    // per backend server
	LatHist        *stats.Histogram // cumulative latency histogram
	// DiskSampleLen is the per-device raw-sample cursor (per class) when
	// Config.DiskSampleEvery > 0; Cluster.Window uses the cursors of two
	// snapshots to extract the window's samples.
	DiskSampleLen [][3]int
}

// Window is the derived per-interval view of a Snapshot delta: everything
// the analytic model needs as "system online metrics" plus the observed
// percentiles it is validated against.
type Window struct {
	Duration  float64
	Responses uint64
	// MeetFraction[i] is the fraction of responses meeting SLAs[i],
	// measured at the frontend tier.
	MeetFraction []float64
	// BEMeetFraction is the same measured at the backend tier.
	BEMeetFraction []float64
	MeanLatency    float64
	MeanWTA        float64
	// Timeouts and Retries in the window; the paper's evaluation only
	// analyzes windows where both are zero.
	Timeouts uint64
	Retries  uint64
	// Hedges is the number of hedged reserve sub-reads issued in the
	// window (0 unless coded reads with hedging are configured).
	Hedges uint64
	// Latency is the window's latency histogram (nil when the snapshots
	// carry no histograms); use it for quantile queries.
	Latency *stats.Histogram
	// WriteRate is the aggregate quorum-acknowledged PUT rate and
	// MeanWriteLatency the mean PUT latency; DeviceWriteRate is the rate
	// of PUT replica sub-requests per device and DeviceWriteChunkRate the
	// rate of data chunk write operations per device (their ratio is the
	// model input WriteChunks).
	WriteRate            float64
	MeanWriteLatency     float64
	DeviceWriteRate      []float64
	DeviceWriteChunkRate []float64
	// WriteMeetFraction[i] is the fraction of quorum-acknowledged PUTs
	// meeting SLAs[i] — the write-path ground truth the W-of-N model is
	// validated against (nil when no PUT completed in the window).
	WriteMeetFraction []float64

	// Per-device online metrics (model inputs).
	DeviceRate      []float64 // r: request arrival rate per device
	DeviceChunkRate []float64 // rdata: data read operation rate per device
	// DeviceMeetFraction[d][i] is device d's observed fraction of
	// responses meeting SLA i (NaN when the device had no responses).
	DeviceMeetFraction [][]float64
	MissIndex          []float64 // per device (its server's cache)
	MissMeta           []float64
	MissData           []float64
	DiskMeanSvc        []float64 // b: overall mean raw disk service time
	DiskUtilization    []float64
	// DiskSamples holds the raw per-class disk service times recorded in
	// the window per device (nil unless Config.DiskSampleEvery > 0) — the
	// feed for online refitting and drift detection.
	DiskSamples []DiskSamples
}

// Sub computes the windowed delta cur - prev.
func (cur Snapshot) Sub(prev Snapshot, devToServer []int) Window {
	n := len(cur.DevReqs)
	w := Window{
		Duration:             cur.Time - prev.Time,
		Responses:            cur.Responses - prev.Responses,
		MeetFraction:         make([]float64, len(cur.Meet)),
		BEMeetFraction:       make([]float64, len(cur.Meet)),
		DeviceRate:           make([]float64, n),
		DeviceChunkRate:      make([]float64, n),
		MissIndex:            make([]float64, n),
		MissMeta:             make([]float64, n),
		MissData:             make([]float64, n),
		DiskMeanSvc:          make([]float64, n),
		DiskUtilization:      make([]float64, n),
		DeviceWriteRate:      make([]float64, n),
		DeviceWriteChunkRate: make([]float64, n),
		DeviceMeetFraction:   make([][]float64, n),
	}
	if w.Responses > 0 {
		for i := range cur.Meet {
			w.MeetFraction[i] = float64(cur.Meet[i]-prev.Meet[i]) / float64(w.Responses)
			w.BEMeetFraction[i] = float64(cur.BEMeet[i]-prev.BEMeet[i]) / float64(w.Responses)
		}
		w.MeanLatency = (cur.LatSum - prev.LatSum) / float64(w.Responses)
	}
	if dw := cur.WTACount - prev.WTACount; dw > 0 {
		w.MeanWTA = (cur.WTASum - prev.WTASum) / float64(dw)
	}
	w.Timeouts = cur.Timeouts - prev.Timeouts
	w.Retries = cur.Retries - prev.Retries
	w.Hedges = cur.Hedges - prev.Hedges
	if w.Duration > 0 {
		w.WriteRate = float64(cur.WriteResp-prev.WriteResp) / w.Duration
	}
	if dw := cur.WriteResp - prev.WriteResp; dw > 0 {
		w.MeanWriteLatency = (cur.WriteLat - prev.WriteLat) / float64(dw)
		w.WriteMeetFraction = make([]float64, len(cur.WriteMeet))
		for i := range cur.WriteMeet {
			var p uint64
			if i < len(prev.WriteMeet) {
				p = prev.WriteMeet[i]
			}
			w.WriteMeetFraction[i] = float64(cur.WriteMeet[i]-p) / float64(dw)
		}
	}
	if cur.LatHist != nil && prev.LatHist != nil {
		if d, err := cur.LatHist.Sub(prev.LatHist); err == nil {
			w.Latency = d
		}
	} else if cur.LatHist != nil {
		w.Latency = cur.LatHist.Clone()
	}
	for d := 0; d < n; d++ {
		if w.Duration > 0 {
			w.DeviceRate[d] = float64(cur.DevReqs[d]-prev.DevReqs[d]) / w.Duration
			w.DeviceChunkRate[d] = float64(cur.DevChunks[d]-prev.DevChunks[d]) / w.Duration
			w.DeviceWriteRate[d] = float64(cur.DevWrites[d]-prev.DevWrites[d]) / w.Duration
			if len(cur.DevWriteChunks) > d && len(prev.DevWriteChunks) > d {
				w.DeviceWriteChunkRate[d] = float64(cur.DevWriteChunks[d]-prev.DevWriteChunks[d]) / w.Duration
			}
		}
		ds := cur.Disk[d].sub(prev.Disk[d])
		w.DiskMeanSvc[d] = ds.meanService()
		if w.Duration > 0 {
			w.DiskUtilization[d] = ds.BusyTime / w.Duration
		}
		cs := cur.Cache[devToServer[d]].Sub(prev.Cache[devToServer[d]])
		w.MissIndex[d] = cs.MissRatio(cache.ClassIndex)
		w.MissMeta[d] = cs.MissRatio(cache.ClassMeta)
		w.MissData[d] = cs.MissRatio(cache.ClassData)
		w.DeviceMeetFraction[d] = make([]float64, len(cur.Meet))
		if len(cur.DevResp) > d && len(prev.DevResp) > d {
			resp := cur.DevResp[d] - prev.DevResp[d]
			for i := range w.DeviceMeetFraction[d] {
				if resp == 0 {
					w.DeviceMeetFraction[d][i] = math.NaN()
					continue
				}
				w.DeviceMeetFraction[d][i] =
					float64(cur.DevMeet[d][i]-prev.DevMeet[d][i]) / float64(resp)
			}
		}
	}
	return w
}

// TotalRate returns the summed per-device request rate.
func (w Window) TotalRate() float64 {
	total := 0.0
	for _, r := range w.DeviceRate {
		total += r
	}
	return total
}
