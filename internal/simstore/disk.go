package simstore

import (
	"math/rand"

	"cosmodel/internal/cache"
	"cosmodel/internal/dist"
	"cosmodel/internal/sim"
)

// diskJob is one outstanding disk operation.
type diskJob struct {
	class cache.Class
	done  func()
}

// disk models one storage device's HDD: a single server with a FCFS queue
// of operations whose raw service times are drawn per operation class
// (index lookup, metadata read, data read) from the configured
// distributions. Backend processes submitting to the disk block until their
// operation completes — the disk queue is what turns Nbe processes into the
// paper's M/G/1/K system.
type disk struct {
	kern *sim.Kernel
	rng  *rand.Rand
	svc  [3]dist.Distribution // indexed by cache.Class
	q    []diskJob
	busy bool

	// degrade scales every sampled service time; 1 is healthy. Failure
	// injection (media degradation, remapping storms) raises it mid-run.
	degrade float64

	// sampleEvery > 0 records every sampleEvery-th raw service time per
	// operation class (what a production device driver would export for
	// online recalibration). samples grows for the run's lifetime; the
	// sampling stride bounds it.
	sampleEvery int
	sampleSeen  [3]uint64
	samples     [3][]float64

	stats diskStats
}

// diskStats accumulates per-class operation counts and total raw service
// time, plus total busy time — the inputs for the "system online metrics"
// estimation (Section IV-B of the paper).
type diskStats struct {
	Ops      [3]uint64
	SvcTotal [3]float64
	BusyTime float64
	MaxQueue int
}

func newDisk(kern *sim.Kernel, cfg *Config, rng *rand.Rand) *disk {
	return &disk{
		kern:        kern,
		rng:         rng,
		svc:         [3]dist.Distribution{cfg.DiskIndex, cfg.DiskMeta, cfg.DiskData},
		degrade:     1,
		sampleEvery: cfg.DiskSampleEvery,
	}
}

// submit enqueues an operation; done runs when it completes.
func (d *disk) submit(class cache.Class, done func()) {
	d.q = append(d.q, diskJob{class: class, done: done})
	if n := len(d.q); n > d.stats.MaxQueue {
		d.stats.MaxQueue = n
	}
	d.maybeServe()
}

func (d *disk) maybeServe() {
	if d.busy || len(d.q) == 0 {
		return
	}
	d.busy = true
	job := d.q[0]
	d.q = d.q[1:]
	t := d.svc[job.class].Sample(d.rng) * d.degrade
	if t < 0 {
		t = 0
	}
	d.stats.Ops[job.class]++
	d.stats.SvcTotal[job.class] += t
	d.stats.BusyTime += t
	if d.sampleEvery > 0 {
		d.sampleSeen[job.class]++
		if d.sampleSeen[job.class]%uint64(d.sampleEvery) == 0 {
			d.samples[job.class] = append(d.samples[job.class], t)
		}
	}
	d.kern.After(t, func() {
		d.busy = false
		job.done()
		d.maybeServe()
	})
}

// queueLen returns the number of waiting (not in service) operations.
func (d *disk) queueLen() int { return len(d.q) }

// sampleLens returns the per-class recorded sample counts (snapshot cursor).
func (d *disk) sampleLens() [3]int {
	return [3]int{len(d.samples[0]), len(d.samples[1]), len(d.samples[2])}
}

// samplesBetween copies the raw service-time samples recorded between two
// snapshot cursors.
func (d *disk) samplesBetween(prev, cur [3]int) DiskSamples {
	slice := func(c int) []float64 {
		lo, hi := prev[c], cur[c]
		if lo < 0 {
			lo = 0
		}
		if hi > len(d.samples[c]) {
			hi = len(d.samples[c])
		}
		if lo >= hi {
			return nil
		}
		return append([]float64(nil), d.samples[c][lo:hi]...)
	}
	return DiskSamples{Index: slice(0), Meta: slice(1), Data: slice(2)}
}

// meanService returns the overall mean raw service time observed so far
// (the paper's online "b").
func (s *diskStats) meanService() float64 {
	var ops uint64
	var total float64
	for i := range s.Ops {
		ops += s.Ops[i]
		total += s.SvcTotal[i]
	}
	if ops == 0 {
		return 0
	}
	return total / float64(ops)
}

// sub returns the delta s - prev.
func (s diskStats) sub(prev diskStats) diskStats {
	out := s
	for i := range s.Ops {
		out.Ops[i] -= prev.Ops[i]
		out.SvcTotal[i] -= prev.SvcTotal[i]
	}
	out.BusyTime -= prev.BusyTime
	return out
}
