package simstore

import (
	"cosmodel/internal/cache"
)

// Event-driven PUT handling. A write is parsed, creates the object's index
// entry (a disk operation — writes always reach the device), then receives
// the body chunk by chunk: the process is free while a chunk is in flight
// from the proxy (asynchronous network I/O, like the read path's sends) and
// blocked while it is written to disk. The metadata write follows the last
// chunk, after which the replica acknowledges the proxy. The proxy answers
// the client at write quorum.

// execWriteServe runs the head of a PUT: parsing and the index create.
func (p *beProc) execWriteServe(req *Request) {
	p.cl.kern.After(p.cl.cfg.ParseBE, func() {
		p.dev.disk.submit(cache.ClassIndex, func() {
			p.scheduleWriteChunk(req, 0)
			p.finish()
		})
	})
}

// scheduleWriteChunk waits for the next body chunk to arrive from the
// proxy, then enqueues its disk write as a normal FCFS operation.
func (p *beProc) scheduleWriteChunk(req *Request, chunk int) {
	size := chunkBytes(req.Size, p.cl.cfg.ChunkSize, chunk)
	recvDur := float64(size) / p.cl.cfg.NetBandwidth
	r := req
	next := chunk
	p.cl.kern.After(recvDur, func() {
		p.enqueue(beOp{kind: opWriteChunk, req: r, chunk: next})
	})
}

// execWriteChunk writes one received chunk to disk; after the last chunk it
// writes the metadata and acknowledges.
func (p *beProc) execWriteChunk(req *Request, chunk int) {
	p.cl.metrics.noteWriteChunk(p.dev.id)
	p.dev.disk.submit(cache.ClassData, func() {
		written := int64(chunk+1) * p.cl.cfg.ChunkSize
		if written < req.Size {
			p.scheduleWriteChunk(req, chunk+1)
			p.finish()
			return
		}
		p.dev.disk.submit(cache.ClassMeta, func() {
			p.dev.completeWrite(req)
			p.finish()
		})
	})
}

// completeWrite populates the server's page cache with the freshly written
// entries (they are in memory right after the write), acknowledges the
// proxy, and records the client response once a write quorum is reached.
func (d *device) completeWrite(req *Request) {
	cl := d.procs[0].cl
	now := cl.kern.Now()
	populateWriteCache(d.srv.cache, &cl.cfg, req)
	req.BEFirstByteAt = now
	req.DoneAt = now
	r := req
	ackAt := now + cl.cfg.NetRTT
	cl.kern.At(ackAt, func() {
		cl.metrics.noteWriteAck(r, ackAt)
	})
}

// populateWriteCache inserts a written object's entries most-recent-first.
func populateWriteCache(lru *cache.LRU, cfg *Config, req *Request) {
	chunks := req.Chunks(cfg.ChunkSize)
	for ch := chunks - 1; ch >= 0; ch-- {
		lru.Put(chunkKey(req.Object, ch), chunkBytes(req.Size, cfg.ChunkSize, ch))
	}
	lru.Put(metaKey(req.Object), cfg.MetaEntrySize)
	lru.Put(indexKey(req.Object), cfg.IndexEntrySize)
}

// Thread-per-connection PUT handling: the dedicated thread blocks through
// chunk receives and disk writes alike.

func (d *device) tpcWriteIndex(req *Request) {
	d.disk.submit(cache.ClassIndex, func() { d.tpcWriteChunk(req, 0) })
}

func (d *device) tpcWriteChunk(req *Request, chunk int) {
	cl := d.procs[0].cl
	size := chunkBytes(req.Size, cl.cfg.ChunkSize, chunk)
	recvDur := float64(size) / cl.cfg.NetBandwidth
	r := req
	cl.kern.After(recvDur, func() {
		cl.metrics.noteWriteChunk(d.id)
		d.disk.submit(cache.ClassData, func() {
			written := int64(chunk+1) * cl.cfg.ChunkSize
			if written < r.Size {
				d.tpcWriteChunk(r, chunk+1)
				return
			}
			d.disk.submit(cache.ClassMeta, func() {
				d.completeWrite(r)
				d.threadDone()
			})
		})
	})
}
