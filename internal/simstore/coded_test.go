package simstore

import (
	"math"
	"testing"

	"cosmodel/internal/trace"
)

// codedConfig returns a 6-device deployment with (n,k) striped reads.
func codedConfig(n, k int) Config {
	cfg := DefaultConfig()
	cfg.Backends = 6
	cfg.Replicas = n
	cfg.StripeK = k
	return cfg
}

func runCoded(t *testing.T, cfg Config, rate, dur float64, seed int64) (*Cluster, int) {
	t.Helper()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t, 2000, 5)
	recs, err := trace.Generate(cat, trace.Schedule{{Rate: rate, Duration: dur, Label: "x"}}, seed)
	if err != nil {
		t.Fatal(err)
	}
	cl.Inject(recs)
	cl.Drain()
	return cl, len(recs)
}

func TestCodedConfigValidate(t *testing.T) {
	if err := codedConfig(3, 2).Validate(); err != nil {
		t.Fatalf("coded config invalid: %v", err)
	}
	hedged := codedConfig(3, 1)
	hedged.Hedge = true
	hedged.HedgeDelay = 0.005
	if err := hedged.Validate(); err != nil {
		t.Fatalf("hedged config invalid: %v", err)
	}
	hedged.HedgeDelay = math.Inf(1)
	if err := hedged.Validate(); err != nil {
		t.Fatalf("Δ=∞ config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.StripeK = -1 },
		func(c *Config) { c.StripeK = c.Replicas + 1 },
		func(c *Config) { c.StripeK = 2; c.Architecture = ThreadPerConnection },
		func(c *Config) { c.Hedge = true }, // StripeK == 0
		func(c *Config) { c.StripeK = 1; c.Hedge = true; c.HedgeDelay = -1 },
		func(c *Config) { c.StripeK = 1; c.Hedge = true; c.HedgeDelay = math.NaN() },
		func(c *Config) { c.HedgeDelay = 0.005 }, // delay without hedging
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
}

func TestCodedForkJoinLifecycle(t *testing.T) {
	cfg := codedConfig(3, 2)
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []*Request
	cl.Metrics().SetResponseHook(func(r *Request) { reqs = append(reqs, r) })
	cat := testCatalog(t, 2000, 5)
	recs, err := trace.Generate(cat, trace.Schedule{{Rate: 40, Duration: 8, Label: "x"}}, 9)
	if err != nil {
		t.Fatal(err)
	}
	cl.Inject(recs)
	cl.Drain()
	if len(reqs) != len(recs) {
		t.Fatalf("responded to %d of %d coded GETs", len(reqs), len(recs))
	}
	snap := cl.Snapshot()
	var subIssues uint64
	for _, v := range snap.DevReqs {
		subIssues += v
	}
	// Every GET fans out exactly Replicas sub-reads (no hedging).
	if want := uint64(3 * len(recs)); subIssues != want {
		t.Errorf("sub-read issues = %d, want %d", subIssues, want)
	}
	if snap.Hedges != 0 {
		t.Errorf("hedges = %d without hedging", snap.Hedges)
	}
	for _, r := range reqs {
		if r.Latency() <= 0 || r.BackendLatency() <= 0 {
			t.Fatalf("%v: bad latencies (lat=%v belat=%v)", r, r.Latency(), r.BackendLatency())
		}
		if r.Device < 0 || r.Device >= cfg.Devices() {
			t.Fatalf("%v: bad deciding device", r)
		}
		if r.read == nil || r.read.got != r.read.need {
			t.Fatalf("%v: fork-join state not satisfied", r)
		}
	}
}

func TestCodedHedgeIssueCounts(t *testing.T) {
	const n, k = 3, 1
	run := func(delay float64) (Snapshot, int) {
		cfg := codedConfig(n, k)
		cfg.Hedge = true
		cfg.HedgeDelay = delay
		cl, got := runCoded(t, cfg, 30, 8, 13)
		return cl.Snapshot(), got
	}
	// Δ=∞: only the k primaries are ever issued.
	snap, m := run(math.Inf(1))
	var subs uint64
	for _, v := range snap.DevReqs {
		subs += v
	}
	if want := uint64(k * m); subs != want {
		t.Errorf("Δ=∞: sub-read issues = %d, want %d", subs, want)
	}
	if snap.Hedges != 0 {
		t.Errorf("Δ=∞: hedges = %d, want 0", snap.Hedges)
	}
	if snap.Responses != uint64(m) {
		t.Errorf("Δ=∞: responses = %d, want %d", snap.Responses, m)
	}
	// Δ=0: every reserve is issued immediately.
	snap, m = run(0)
	subs = 0
	for _, v := range snap.DevReqs {
		subs += v
	}
	if want := uint64(n * m); subs != want {
		t.Errorf("Δ=0: sub-read issues = %d, want %d", subs, want)
	}
	if want := uint64((n - k) * m); snap.Hedges != want {
		t.Errorf("Δ=0: hedges = %d, want %d", snap.Hedges, want)
	}
	// A finite delay near the typical latency hedges only the slow tail.
	snap, m = run(0.020)
	if snap.Hedges == 0 || snap.Hedges >= uint64((n-k)*m) {
		t.Errorf("Δ=20ms: hedges = %d of %d possible, want strictly between", snap.Hedges, (n-k)*m)
	}
	if snap.Responses != uint64(m) {
		t.Errorf("Δ=20ms: responses = %d, want %d", snap.Responses, m)
	}
}

// Fastest-of-n must beat the plain single-replica read, and the fork-join
// barrier must be the slowest stripe shape, on the same arrival process.
func TestCodedLatencyOrdering(t *testing.T) {
	meanLat := func(stripeK int) float64 {
		cfg := codedConfig(3, stripeK)
		if stripeK == 0 {
			cfg.StripeK = 0
		}
		cl, _ := runCoded(t, cfg, 30, 10, 21)
		snap := cl.Snapshot()
		return snap.LatSum / float64(snap.Responses)
	}
	plain := meanLat(0)
	fastest := meanLat(1)
	barrier := meanLat(3)
	if fastest >= plain {
		t.Errorf("fastest-of-3 mean %v not below plain %v", fastest, plain)
	}
	if barrier <= fastest {
		t.Errorf("fork-join barrier mean %v not above fastest-of-3 %v", barrier, fastest)
	}
}

// Cancellation must drop the losers' queued backend work: some sub-reads
// never stream to completion, so completed transfers stay strictly below
// the n·m a cancellation-free fork-join would produce.
func TestCodedCancellationDropsQueuedWork(t *testing.T) {
	cfg := codedConfig(3, 1)
	// Make the disk the bottleneck so some losers are still queued when the
	// winner responds.
	cfg.CacheBytes = 1 << 10 // everything misses
	cl, m := runCoded(t, cfg, 25, 8, 17)
	snap := cl.Snapshot()
	if snap.Responses != uint64(m) {
		t.Fatalf("responses = %d, want %d", snap.Responses, m)
	}
	// Completed counts sub-reads that streamed to the end. All m winners
	// complete; a loser completes only when it was already in service (or
	// past first byte) at cancellation time, so the total must fall
	// strictly short of all 3m issues.
	if snap.Completed >= uint64(3*m) {
		t.Errorf("completed sub-reads = %d of %d issued: cancellation not biting", snap.Completed, 3*m)
	}
	if snap.Completed < uint64(m) {
		t.Errorf("completed sub-reads = %d below the %d winners", snap.Completed, m)
	}
}

func TestCodedDeterminism(t *testing.T) {
	run := func() (Snapshot, []float64) {
		cfg := codedConfig(3, 2)
		cfg.Hedge = false
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cl.Metrics().RecordLatencies(true)
		cat := testCatalog(t, 500, 3)
		recs, _ := trace.Generate(cat, trace.Schedule{{Rate: 40, Duration: 5, Label: "x"}}, 11)
		cl.Inject(recs)
		cl.Drain()
		return cl.Snapshot(), cl.Metrics().Latencies()
	}
	s1, l1 := run()
	s2, l2 := run()
	if s1.Responses != s2.Responses || s1.LatSum != s2.LatSum {
		t.Error("same seed must give identical aggregate results")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("same seed must give identical latency sequences")
		}
	}
}
