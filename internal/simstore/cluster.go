package simstore

import (
	"fmt"
	"math/rand"

	"cosmodel/internal/cache"
	"cosmodel/internal/dist"
	"cosmodel/internal/ring"
	"cosmodel/internal/sim"
	"cosmodel/internal/trace"
)

// Cluster is a simulated object storage deployment.
type Cluster struct {
	cfg     Config
	kern    *sim.Kernel
	ring    *ring.Ring
	fes     []*frontendServer
	servers []*backendServer
	devices []*device
	metrics *Metrics

	devToServer []int
	lbRNG       *rand.Rand // client-side load balancing (ssbench)
	nextReqID   uint64
}

// New builds a cluster from the configuration.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	kern := sim.NewKernel()
	rg, err := ring.New(cfg.Partitions, cfg.Replicas, cfg.Devices(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:     cfg,
		kern:    kern,
		ring:    rg,
		metrics: newMetrics(&cfg),
		lbRNG:   sim.Stream(cfg.Seed, 1),
	}
	// Frontend tier.
	for f := 0; f < cfg.Frontends; f++ {
		fe := &frontendServer{id: f}
		for p := 0; p < cfg.ProcsPerFrontend; p++ {
			fe.procs = append(fe.procs, &feProc{
				cl:  c,
				rng: sim.Stream(cfg.Seed, int64(1000+f*100+p)),
			})
		}
		c.fes = append(c.fes, fe)
	}
	// Backend tier.
	devID := 0
	for b := 0; b < cfg.Backends; b++ {
		lru, err := cache.NewLRU(cfg.CacheBytes)
		if err != nil {
			return nil, err
		}
		srv := &backendServer{id: b, cache: lru}
		for dk := 0; dk < cfg.DisksPerBackend; dk++ {
			dev := &device{
				id:   devID,
				srv:  srv,
				disk: newDisk(kern, &cfg, sim.Stream(cfg.Seed, int64(2000+devID))),
			}
			for p := 0; p < cfg.ProcsPerDisk; p++ {
				dev.procs = append(dev.procs, &beProc{cl: c, dev: dev})
			}
			srv.devices = append(srv.devices, dev)
			c.devices = append(c.devices, dev)
			c.devToServer = append(c.devToServer, b)
			devID++
		}
		c.servers = append(c.servers, srv)
	}
	return c, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Ring returns the placement ring.
func (c *Cluster) Ring() *ring.Ring { return c.ring }

// Metrics returns the live metrics collector.
func (c *Cluster) Metrics() *Metrics { return c.metrics }

// Now returns the simulation clock.
func (c *Cluster) Now() float64 { return c.kern.Now() }

// EventsProcessed returns the kernel event count (for benchmarks).
func (c *Cluster) EventsProcessed() uint64 { return c.kern.Processed() }

// InjectRecord schedules one trace record: the request arrives at a
// uniformly random frontend server at its timestamp (ssbench-style load
// balancing).
func (c *Cluster) InjectRecord(rec trace.Record) {
	c.nextReqID++
	req := &Request{
		ID:      c.nextReqID,
		Object:  rec.Object,
		Size:    rec.Size,
		IsWrite: rec.Op == trace.OpPut,
	}
	fe := c.fes[c.lbRNG.Intn(len(c.fes))]
	c.kern.At(rec.At, func() {
		req.ArriveFE = c.kern.Now()
		fe.arrive(req)
	})
}

// Inject schedules a batch of trace records.
func (c *Cluster) Inject(records []trace.Record) {
	for _, r := range records {
		c.InjectRecord(r)
	}
}

// RunUntil advances the simulation to the given absolute time.
func (c *Cluster) RunUntil(t float64) { c.kern.RunUntil(t) }

// Drain runs until no events remain.
func (c *Cluster) Drain() { c.kern.Drain() }

// Snapshot copies all cumulative counters.
func (c *Cluster) Snapshot() Snapshot {
	s := Snapshot{
		Time:           c.kern.Now(),
		Responses:      c.metrics.responses,
		Meet:           append([]uint64(nil), c.metrics.meet...),
		BEMeet:         append([]uint64(nil), c.metrics.beMeet...),
		LatSum:         c.metrics.latSum,
		BELatSum:       c.metrics.beLatSum,
		Completed:      c.metrics.completed,
		WTASum:         c.metrics.wtaSum,
		WTACount:       c.metrics.wtaCount,
		Timeouts:       c.metrics.timeouts,
		Retries:        c.metrics.retries,
		Hedges:         c.metrics.hedges,
		DevReqs:        append([]uint64(nil), c.metrics.devReqs...),
		DevChunks:      append([]uint64(nil), c.metrics.devChunks...),
		DevWrites:      append([]uint64(nil), c.metrics.devWrites...),
		DevWriteChunks: append([]uint64(nil), c.metrics.devWriteChunks...),
		DevResp:        append([]uint64(nil), c.metrics.devResponses...),
		WriteResp:      c.metrics.writeResponses,
		WriteLat:       c.metrics.writeLatSum,
		WriteMeet:      append([]uint64(nil), c.metrics.writeMeet...),
		LatHist:        c.metrics.latHist.Clone(),
	}
	s.DevMeet = make([][]uint64, len(c.metrics.devMeet))
	for d := range c.metrics.devMeet {
		s.DevMeet[d] = append([]uint64(nil), c.metrics.devMeet[d]...)
	}
	for _, d := range c.devices {
		s.Disk = append(s.Disk, d.disk.stats)
		if c.cfg.DiskSampleEvery > 0 {
			s.DiskSampleLen = append(s.DiskSampleLen, d.disk.sampleLens())
		}
	}
	for _, srv := range c.servers {
		s.Cache = append(s.Cache, srv.cache.Stats())
	}
	return s
}

// Window computes the interval view between two snapshots. With raw disk
// sampling enabled (Config.DiskSampleEvery > 0) it also extracts the
// window's per-device raw service-time samples from the snapshots' cursors.
func (c *Cluster) Window(prev, cur Snapshot) Window {
	w := cur.Sub(prev, c.devToServer)
	if c.cfg.DiskSampleEvery > 0 && len(cur.DiskSampleLen) == len(c.devices) {
		w.DiskSamples = make([]DiskSamples, len(c.devices))
		for i, d := range c.devices {
			var lo [3]int
			if len(prev.DiskSampleLen) > i {
				lo = prev.DiskSampleLen[i]
			}
			w.DiskSamples[i] = d.disk.samplesBetween(lo, cur.DiskSampleLen[i])
		}
	}
	return w
}

// PrewarmCaches pre-populates every backend server's page cache with the
// index, metadata and data chunks of the most popular catalog objects, most
// popular last (so they are the most recently used). It stands in for the
// paper's 3-hour warmup phase; fill is the fraction of each cache to fill.
func (c *Cluster) PrewarmCaches(cat *trace.Catalog, fill float64) error {
	if fill <= 0 || fill > 1 {
		return fmt.Errorf("%w: prewarm fill %v outside (0,1]", ErrBadConfig, fill)
	}
	target := int64(float64(c.cfg.CacheBytes) * fill)
	// Per-server bytes inserted so far.
	inserted := make([]int64, len(c.servers))
	full := 0
	ids := cat.PopularIDs(cat.Len())
	// Iterate from least popular of the considered prefix to most popular
	// so the most popular end up most recently used. First find the prefix
	// that fits, then insert in reverse.
	type item struct {
		srv int
		obj uint64
	}
	var plan []item
	need := make([]bool, len(c.servers))
	for i := range need {
		need[i] = true
	}
	for _, id := range ids {
		if full == len(c.servers) {
			break
		}
		part := c.ring.PartitionOfID(id)
		size := cat.Size(id)
		for _, devID := range c.ring.ReplicasOf(part) {
			srv := c.devToServer[devID]
			if !need[srv] {
				continue
			}
			cost := c.cfg.IndexEntrySize + c.cfg.MetaEntrySize + size
			if inserted[srv]+cost > target {
				need[srv] = false
				full++
				continue
			}
			inserted[srv] += cost
			plan = append(plan, item{srv: srv, obj: id})
		}
	}
	for i := len(plan) - 1; i >= 0; i-- {
		it := plan[i]
		lru := c.servers[it.srv].cache
		size := cat.Size(it.obj)
		chunks := int((size + c.cfg.ChunkSize - 1) / c.cfg.ChunkSize)
		for ch := chunks - 1; ch >= 0; ch-- {
			lru.Put(chunkKey(it.obj, ch), chunkBytes(size, c.cfg.ChunkSize, ch))
		}
		lru.Put(metaKey(it.obj), c.cfg.MetaEntrySize)
		lru.Put(indexKey(it.obj), c.cfg.IndexEntrySize)
	}
	return nil
}

// DeviceQueueLengths returns, per device, the summed backend-process
// operation-queue lengths plus pool sizes (diagnostics for overload
// detection).
func (c *Cluster) DeviceQueueLengths() []int {
	out := make([]int, len(c.devices))
	for i, d := range c.devices {
		n := d.disk.queueLen()
		for _, p := range d.procs {
			n += p.queueLen() + len(p.pool)
		}
		out[i] = n
	}
	return out
}

// DeviceServer returns the backend-server index hosting the given device.
func (c *Cluster) DeviceServer(dev int) int { return c.devToServer[dev] }

// DegradeDisk injects a media-degradation failure: from now on, device
// dev's raw disk service times are multiplied by factor (>= 1 slows it
// down; 1 restores health). The online metrics pipeline picks the change up
// through the measured mean service time, which is how the model is meant
// to track it.
func (c *Cluster) DegradeDisk(dev int, factor float64) error {
	if dev < 0 || dev >= len(c.devices) {
		return fmt.Errorf("%w: device %d out of range", ErrBadConfig, dev)
	}
	if factor <= 0 {
		return fmt.Errorf("%w: degradation factor %v must be positive", ErrBadConfig, factor)
	}
	c.devices[dev].disk.degrade = factor
	return nil
}

// SetDiskService swaps device dev's raw per-class service-time
// distributions from now on (nil keeps the current one). Unlike DegradeDisk
// — a pure scale factor — this models regime shifts that also change the
// distribution *shape* (media remapping storms, firmware throttling), the
// drift an online recalibration loop must refit rather than merely rescale.
func (c *Cluster) SetDiskService(dev int, index, meta, data dist.Distribution) error {
	if dev < 0 || dev >= len(c.devices) {
		return fmt.Errorf("%w: device %d out of range", ErrBadConfig, dev)
	}
	for _, d := range []dist.Distribution{index, meta, data} {
		if d != nil && d.Mean() <= 0 {
			return fmt.Errorf("%w: replacement service distribution must have positive mean", ErrBadConfig)
		}
	}
	disk := c.devices[dev].disk
	if index != nil {
		disk.svc[cache.ClassIndex] = index
	}
	if meta != nil {
		disk.svc[cache.ClassMeta] = meta
	}
	if data != nil {
		disk.svc[cache.ClassData] = data
	}
	return nil
}

// ResizeCache changes backend server srv's page-cache capacity mid-run,
// evicting LRU entries if it shrank — the cluster-level knob for injecting a
// cache-shrink regime shift (e.g. memory reclaimed by a co-located tenant).
func (c *Cluster) ResizeCache(srv int, bytes int64) error {
	if srv < 0 || srv >= len(c.servers) {
		return fmt.Errorf("%w: server %d out of range", ErrBadConfig, srv)
	}
	return c.servers[srv].cache.Resize(bytes)
}
