package simstore

import (
	"testing"

	"cosmodel/internal/trace"
)

func TestWriteQuorumLifecycle(t *testing.T) {
	cfg := DefaultConfig()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.InjectRecord(trace.Record{At: 1, Object: 42, Size: 100 * 1024, Op: trace.OpPut})
	cl.Drain()
	snap := cl.Snapshot()
	if snap.WriteResp != 1 {
		t.Fatalf("write responses = %d, want 1", snap.WriteResp)
	}
	if snap.Responses != 0 {
		t.Errorf("a PUT must not count as a read response (got %d)", snap.Responses)
	}
	// All three replicas received the write.
	var subs uint64
	for _, w := range snap.DevWrites {
		subs += w
	}
	if subs != uint64(cfg.Replicas) {
		t.Errorf("replica sub-requests = %d, want %d", subs, cfg.Replicas)
	}
	// Write latency is positive and includes at least parse + index +
	// chunks + meta disk time.
	if snap.WriteLat <= cfg.ParseBE {
		t.Errorf("write latency = %v, implausibly small", snap.WriteLat)
	}
	// The written object is now cached on its replica servers: a
	// follow-up read must not touch the disk.
	before := cl.Snapshot()
	cl.InjectRecord(trace.Record{At: cl.Now() + 1, Object: 42, Size: 100 * 1024, Op: trace.OpGet})
	cl.Drain()
	after := cl.Snapshot()
	for d := range after.Disk {
		delta := after.Disk[d].sub(before.Disk[d])
		if delta.Ops[0]+delta.Ops[1]+delta.Ops[2] != 0 {
			t.Errorf("device %d: read-after-write hit the disk", d)
		}
	}
	if after.Responses != 1 {
		t.Errorf("read responses = %d", after.Responses)
	}
}

func TestWritesGoToDiskEvenWhenCached(t *testing.T) {
	cfg := smallConfig()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two writes of the same object: both must reach the disk (no
	// write caching), with index+data+meta ops each.
	cl.InjectRecord(trace.Record{At: 1, Object: 7, Size: 1024, Op: trace.OpPut})
	cl.InjectRecord(trace.Record{At: 10, Object: 7, Size: 1024, Op: trace.OpPut})
	cl.Drain()
	snap := cl.Snapshot()
	if got := snap.Disk[0].Ops[0]; got != 2 {
		t.Errorf("index writes = %d, want 2", got)
	}
	if got := snap.Disk[0].Ops[2]; got != 2 {
		t.Errorf("data writes = %d, want 2", got)
	}
	if got := snap.Disk[0].Ops[1]; got != 2 {
		t.Errorf("meta writes = %d, want 2", got)
	}
}

func TestMultiChunkWrite(t *testing.T) {
	cfg := smallConfig()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	size := cfg.ChunkSize*2 + 10 // 3 chunks
	cl.InjectRecord(trace.Record{At: 1, Object: 9, Size: size, Op: trace.OpPut})
	cl.Drain()
	snap := cl.Snapshot()
	if got := snap.Disk[0].Ops[2]; got != 3 {
		t.Errorf("data writes = %d, want 3", got)
	}
	if snap.WriteResp != 1 {
		t.Errorf("write responses = %d", snap.WriteResp)
	}
}

func TestMixedWorkloadAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t, 20000, 9)
	recs, err := trace.GenerateMixed(cat, trace.Schedule{{Rate: 100, Duration: 20, Label: "x"}},
		0.2, 13)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Summarize(recs)
	if wf := st.WriteFraction(); wf < 0.15 || wf > 0.25 {
		t.Fatalf("write fraction = %v, want ~0.2", wf)
	}
	cl.Inject(recs)
	cl.RunUntil(5)
	before := cl.Snapshot()
	cl.Drain()
	final := cl.Snapshot()
	win := cl.Window(before, final)
	if win.WriteRate <= 0 || win.MeanWriteLatency <= 0 {
		t.Errorf("write rate %v, mean write latency %v", win.WriteRate, win.MeanWriteLatency)
	}
	// Reads and writes together must roughly account for the trace rate.
	total := win.TotalRate() + win.WriteRate
	if total < 70 || total > 130 {
		t.Errorf("total accounted rate = %v, want ~100", total)
	}
	for d, wr := range win.DeviceWriteRate {
		if wr < 0 {
			t.Errorf("device %d: negative write rate", d)
		}
	}
	// Over the whole run, every request is accounted exactly once: reads
	// as responses, writes as quorum acks.
	if final.Responses != uint64(st.Requests-st.Writes) {
		t.Errorf("read responses = %d, want %d", final.Responses, st.Requests-st.Writes)
	}
	if final.WriteResp != uint64(st.Writes) {
		t.Errorf("write responses = %d, want %d", final.WriteResp, st.Writes)
	}
}

func TestWritesUnderThreadPerConnection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Architecture = ThreadPerConnection
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t, 5000, 9)
	recs, err := trace.GenerateMixed(cat, trace.Schedule{{Rate: 50, Duration: 10, Label: "x"}}, 0.3, 17)
	if err != nil {
		t.Fatal(err)
	}
	cl.Inject(recs)
	cl.Drain()
	snap := cl.Snapshot()
	st := trace.Summarize(recs)
	if snap.WriteResp != uint64(st.Writes) {
		t.Errorf("acknowledged %d of %d writes", snap.WriteResp, st.Writes)
	}
	if snap.Responses != uint64(st.Requests-st.Writes) {
		t.Errorf("read responses = %d, want %d", snap.Responses, st.Requests-st.Writes)
	}
}

func TestZeroSizeWrite(t *testing.T) {
	cfg := smallConfig()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.InjectRecord(trace.Record{At: 1, Object: 3, Size: 0, Op: trace.OpPut})
	cl.Drain()
	if got := cl.Snapshot().WriteResp; got != 1 {
		t.Errorf("zero-size write responses = %d", got)
	}
}
