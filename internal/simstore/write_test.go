package simstore

import (
	"testing"

	"cosmodel/internal/trace"
)

func TestWriteQuorumLifecycle(t *testing.T) {
	cfg := DefaultConfig()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.InjectRecord(trace.Record{At: 1, Object: 42, Size: 100 * 1024, Op: trace.OpPut})
	cl.Drain()
	snap := cl.Snapshot()
	if snap.WriteResp != 1 {
		t.Fatalf("write responses = %d, want 1", snap.WriteResp)
	}
	if snap.Responses != 0 {
		t.Errorf("a PUT must not count as a read response (got %d)", snap.Responses)
	}
	// All three replicas received the write.
	var subs uint64
	for _, w := range snap.DevWrites {
		subs += w
	}
	if subs != uint64(cfg.Replicas) {
		t.Errorf("replica sub-requests = %d, want %d", subs, cfg.Replicas)
	}
	// Write latency is positive and includes at least parse + index +
	// chunks + meta disk time.
	if snap.WriteLat <= cfg.ParseBE {
		t.Errorf("write latency = %v, implausibly small", snap.WriteLat)
	}
	// The written object is now cached on its replica servers: a
	// follow-up read must not touch the disk.
	before := cl.Snapshot()
	cl.InjectRecord(trace.Record{At: cl.Now() + 1, Object: 42, Size: 100 * 1024, Op: trace.OpGet})
	cl.Drain()
	after := cl.Snapshot()
	for d := range after.Disk {
		delta := after.Disk[d].sub(before.Disk[d])
		if delta.Ops[0]+delta.Ops[1]+delta.Ops[2] != 0 {
			t.Errorf("device %d: read-after-write hit the disk", d)
		}
	}
	if after.Responses != 1 {
		t.Errorf("read responses = %d", after.Responses)
	}
}

func TestWritesGoToDiskEvenWhenCached(t *testing.T) {
	cfg := smallConfig()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two writes of the same object: both must reach the disk (no
	// write caching), with index+data+meta ops each.
	cl.InjectRecord(trace.Record{At: 1, Object: 7, Size: 1024, Op: trace.OpPut})
	cl.InjectRecord(trace.Record{At: 10, Object: 7, Size: 1024, Op: trace.OpPut})
	cl.Drain()
	snap := cl.Snapshot()
	if got := snap.Disk[0].Ops[0]; got != 2 {
		t.Errorf("index writes = %d, want 2", got)
	}
	if got := snap.Disk[0].Ops[2]; got != 2 {
		t.Errorf("data writes = %d, want 2", got)
	}
	if got := snap.Disk[0].Ops[1]; got != 2 {
		t.Errorf("meta writes = %d, want 2", got)
	}
}

func TestMultiChunkWrite(t *testing.T) {
	cfg := smallConfig()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	size := cfg.ChunkSize*2 + 10 // 3 chunks
	cl.InjectRecord(trace.Record{At: 1, Object: 9, Size: size, Op: trace.OpPut})
	cl.Drain()
	snap := cl.Snapshot()
	if got := snap.Disk[0].Ops[2]; got != 3 {
		t.Errorf("data writes = %d, want 3", got)
	}
	if snap.WriteResp != 1 {
		t.Errorf("write responses = %d", snap.WriteResp)
	}
}

func TestMixedWorkloadAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t, 20000, 9)
	recs, err := trace.GenerateMixed(cat, trace.Schedule{{Rate: 100, Duration: 20, Label: "x"}},
		0.2, 13)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Summarize(recs)
	if wf := st.WriteFraction(); wf < 0.15 || wf > 0.25 {
		t.Fatalf("write fraction = %v, want ~0.2", wf)
	}
	cl.Inject(recs)
	cl.RunUntil(5)
	before := cl.Snapshot()
	cl.Drain()
	final := cl.Snapshot()
	win := cl.Window(before, final)
	if win.WriteRate <= 0 || win.MeanWriteLatency <= 0 {
		t.Errorf("write rate %v, mean write latency %v", win.WriteRate, win.MeanWriteLatency)
	}
	// Reads and writes together must roughly account for the trace rate.
	total := win.TotalRate() + win.WriteRate
	if total < 70 || total > 130 {
		t.Errorf("total accounted rate = %v, want ~100", total)
	}
	for d, wr := range win.DeviceWriteRate {
		if wr < 0 {
			t.Errorf("device %d: negative write rate", d)
		}
	}
	// Over the whole run, every request is accounted exactly once: reads
	// as responses, writes as quorum acks.
	if final.Responses != uint64(st.Requests-st.Writes) {
		t.Errorf("read responses = %d, want %d", final.Responses, st.Requests-st.Writes)
	}
	if final.WriteResp != uint64(st.Writes) {
		t.Errorf("write responses = %d, want %d", final.WriteResp, st.Writes)
	}
}

func TestWritesUnderThreadPerConnection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Architecture = ThreadPerConnection
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t, 5000, 9)
	recs, err := trace.GenerateMixed(cat, trace.Schedule{{Rate: 50, Duration: 10, Label: "x"}}, 0.3, 17)
	if err != nil {
		t.Fatal(err)
	}
	cl.Inject(recs)
	cl.Drain()
	snap := cl.Snapshot()
	st := trace.Summarize(recs)
	if snap.WriteResp != uint64(st.Writes) {
		t.Errorf("acknowledged %d of %d writes", snap.WriteResp, st.Writes)
	}
	if snap.Responses != uint64(st.Requests-st.Writes) {
		t.Errorf("read responses = %d, want %d", snap.Responses, st.Requests-st.Writes)
	}
}

// TestWriteQuorumConfigValidation pins the W bounds: W in [0,N] is legal
// (0 selecting the majority default), anything outside is rejected before a
// cluster exists.
func TestWriteQuorumConfigValidation(t *testing.T) {
	for _, w := range []int{0, 1, 2, 3} {
		cfg := DefaultConfig() // Replicas = 3
		cfg.WriteQuorum = w
		if err := cfg.Validate(); err != nil {
			t.Errorf("W=%d of N=%d rejected: %v", w, cfg.Replicas, err)
		}
	}
	for _, w := range []int{-1, 4, 100} {
		cfg := DefaultConfig()
		cfg.WriteQuorum = w
		if err := cfg.Validate(); err == nil {
			t.Errorf("W=%d of N=%d accepted", w, cfg.Replicas)
		}
	}
}

// writeReplicasOf finds the replica devices a PUT of obj fans out to, by
// probing a throwaway cluster and reading the per-device write counters.
func writeReplicasOf(t *testing.T, cfg Config, obj uint64) []int {
	t.Helper()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.InjectRecord(trace.Record{At: 1, Object: obj, Size: 1024, Op: trace.OpPut})
	cl.Drain()
	var devs []int
	for d, w := range cl.Snapshot().DevWrites {
		if w > 0 {
			devs = append(devs, d)
		}
	}
	return devs
}

// meanWriteLat runs count spaced PUTs of obj against a fresh cluster with
// the given quorum, degrading one replica first, and returns the mean
// acknowledged-write latency.
func meanWriteLat(t *testing.T, cfg Config, quorum, slowDev int, obj uint64, count int) float64 {
	t.Helper()
	cfg.WriteQuorum = quorum
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.DegradeDisk(slowDev, 100); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < count; i++ {
		cl.InjectRecord(trace.Record{At: 1 + float64(i), Object: obj, Size: 1024, Op: trace.OpPut})
	}
	cl.Drain()
	snap := cl.Snapshot()
	if snap.WriteResp != uint64(count) {
		t.Fatalf("W=%d acknowledged %d of %d writes", quorum, snap.WriteResp, count)
	}
	return snap.WriteLat / float64(count)
}

// TestWriteQuorumMasksSlowReplica pins the order-statistic semantics at the
// W extremes with a degraded replica in the write set: W=1 and the majority
// W both acknowledge off the healthy replicas (latency stays near the
// healthy service time), while W=N must wait for the 100x-degraded disk —
// exactly the failure-masking the W-of-N model predicts.
func TestWriteQuorumMasksSlowReplica(t *testing.T) {
	cfg := DefaultConfig() // N = 3 replicas
	const obj = 42
	devs := writeReplicasOf(t, cfg, obj)
	if len(devs) != cfg.Replicas {
		t.Fatalf("object %d fanned out to %d devices, want %d", obj, len(devs), cfg.Replicas)
	}
	slow := devs[0]
	const writes = 20
	latW1 := meanWriteLat(t, cfg, 1, slow, obj, writes)
	latMaj := meanWriteLat(t, cfg, 2, slow, obj, writes)
	latAll := meanWriteLat(t, cfg, cfg.Replicas, slow, obj, writes)
	if !(latW1 <= latMaj && latMaj <= latAll) {
		t.Fatalf("quorum latencies not monotone: W=1 %v, W=2 %v, W=3 %v", latW1, latMaj, latAll)
	}
	// The majority quorum reaches ack without the degraded replica, so a
	// 100x slowdown must barely move it; W=N eats the slowdown in full.
	if latAll < 5*latMaj {
		t.Fatalf("W=N %v not dominated by the degraded replica (majority %v)", latAll, latMaj)
	}
}

// TestMixedWorkloadDeterminism pins the shared read/write queue discipline:
// two clusters replaying the same mixed trace must agree on every counter —
// the write path introduces no scheduling nondeterminism (run under -race
// in CI, which would also flag any shared-state races).
func TestMixedWorkloadDeterminism(t *testing.T) {
	cat := testCatalog(t, 5000, 11)
	recs, err := trace.GenerateMixed(cat, trace.Schedule{{Rate: 80, Duration: 10, Label: "x"}}, 0.25, 23)
	if err != nil {
		t.Fatal(err)
	}
	run := func() Snapshot {
		cl, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cl.Inject(recs)
		cl.Drain()
		return cl.Snapshot()
	}
	a, b := run(), run()
	if a.Responses != b.Responses || a.WriteResp != b.WriteResp {
		t.Fatalf("response counts diverged: %d/%d vs %d/%d",
			a.Responses, a.WriteResp, b.Responses, b.WriteResp)
	}
	if a.LatSum != b.LatSum || a.WriteLat != b.WriteLat {
		t.Fatalf("latency sums diverged: read %v vs %v, write %v vs %v",
			a.LatSum, b.LatSum, a.WriteLat, b.WriteLat)
	}
	for d := range a.Disk {
		if a.Disk[d].Ops != b.Disk[d].Ops {
			t.Fatalf("device %d disk ops diverged: %v vs %v", d, a.Disk[d].Ops, b.Disk[d].Ops)
		}
	}
}

// TestWritesInflateReadLatency pins the queue-sharing direction the mixed
// model depends on: adding PUT load to a fixed read workload must increase
// observed read latency — writes and reads contend for the same disks.
func TestWritesInflateReadLatency(t *testing.T) {
	cat := testCatalog(t, 5000, 7)
	meanRead := func(writeFrac float64) float64 {
		recs, err := trace.GenerateMixed(cat,
			trace.Schedule{{Rate: 120, Duration: 15, Label: "x"}}, writeFrac, 31)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cl.Inject(recs)
		cl.Drain()
		snap := cl.Snapshot()
		if snap.Responses == 0 {
			t.Fatal("no read responses")
		}
		return snap.LatSum / float64(snap.Responses)
	}
	pure := meanRead(0)
	mixed := meanRead(0.4)
	if mixed <= pure {
		t.Fatalf("read latency did not rise under write load: pure %v, mixed %v", pure, mixed)
	}
}

func TestZeroSizeWrite(t *testing.T) {
	cfg := smallConfig()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.InjectRecord(trace.Record{At: 1, Object: 3, Size: 0, Op: trace.OpPut})
	cl.Drain()
	if got := cl.Snapshot().WriteResp; got != 1 {
		t.Errorf("zero-size write responses = %d", got)
	}
}
