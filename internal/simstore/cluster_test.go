package simstore

import (
	"math"
	"testing"

	"cosmodel/internal/dist"
	"cosmodel/internal/lst"
	"cosmodel/internal/queueing"
	"cosmodel/internal/trace"
)

// smallConfig returns a minimal single-device configuration convenient for
// theory anchors: one frontend process, one backend process, no replicas.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Frontends = 1
	cfg.ProcsPerFrontend = 1
	cfg.Backends = 1
	cfg.DisksPerBackend = 1
	cfg.ProcsPerDisk = 1
	cfg.Partitions = 64
	cfg.Replicas = 1
	return cfg
}

func testCatalog(t testing.TB, n int, seed int64) *trace.Catalog {
	t.Helper()
	c, err := trace.NewCatalog(n, trace.WikipediaLikeSizes(), 1.2, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Frontends = 0 },
		func(c *Config) { c.ProcsPerFrontend = 0 },
		func(c *Config) { c.Backends = 0 },
		func(c *Config) { c.ProcsPerDisk = 0 },
		func(c *Config) { c.Partitions = 100 },
		func(c *Config) { c.Replicas = 0 },
		func(c *Config) { c.Replicas = 100 },
		func(c *Config) { c.ChunkSize = 0 },
		func(c *Config) { c.NetBandwidth = 0 },
		func(c *Config) { c.NetRTT = -1 },
		func(c *Config) { c.ParseFE = 0 },
		func(c *Config) { c.ParseBE = 0 },
		func(c *Config) { c.AcceptCost = -1 },
		func(c *Config) { c.DiskIndex = nil },
		func(c *Config) { c.DiskMeta = nil },
		func(c *Config) { c.DiskData = nil },
		func(c *Config) { c.CacheBytes = 0 },
		func(c *Config) { c.IndexEntrySize = -1 },
		func(c *Config) { c.SLAs = nil },
		func(c *Config) { c.SLAs = []float64{0} },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("mutation %d: New should fail", i)
		}
	}
}

func TestEndToEndRequestLifecycle(t *testing.T) {
	cfg := DefaultConfig()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t, 1000, 3)
	recs, err := trace.Generate(cat, trace.Schedule{{Rate: 50, Duration: 10, Label: "x"}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []*Request
	cl.Metrics().SetResponseHook(func(r *Request) { reqs = append(reqs, r) })
	cl.Inject(recs)
	cl.Drain()
	if len(reqs) != len(recs) {
		t.Fatalf("responded to %d of %d requests", len(reqs), len(recs))
	}
	snap := cl.Snapshot()
	if snap.Completed != uint64(len(recs)) {
		t.Errorf("completed = %d, want %d", snap.Completed, len(recs))
	}
	for _, r := range reqs {
		// Timestamp ordering across the request's life.
		seq := []float64{r.ArriveFE, r.ConnectAt, r.PoolAt, r.AcceptedAt,
			r.BEArriveAt, r.BEFirstByteAt, r.FEFirstByteAt}
		for i := 1; i < len(seq); i++ {
			if seq[i] < seq[i-1]-1e-12 {
				t.Fatalf("%v: timestamps out of order: %v", r, seq)
			}
		}
		if r.Latency() <= 0 || r.WTA() < 0 || r.BackendLatency() <= 0 {
			t.Fatalf("%v: bad derived latencies", r)
		}
		if r.Device < 0 || r.Device >= cfg.Devices() {
			t.Fatalf("%v: bad device", r)
		}
		if r.DoneAt < r.FEFirstByteAt {
			t.Fatalf("%v: done before first byte", r)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Snapshot, []float64) {
		cfg := DefaultConfig()
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cl.Metrics().RecordLatencies(true)
		cat := testCatalog(t, 500, 3)
		recs, _ := trace.Generate(cat, trace.Schedule{{Rate: 80, Duration: 5, Label: "x"}}, 11)
		cl.Inject(recs)
		cl.Drain()
		return cl.Snapshot(), cl.Metrics().Latencies()
	}
	s1, l1 := run()
	s2, l2 := run()
	if s1.Responses != s2.Responses || s1.LatSum != s2.LatSum || s1.WTASum != s2.WTASum {
		t.Error("same seed must give identical aggregate results")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("same seed must give identical latency sequences")
		}
	}
}

// TestBackendIsMG1 anchors the simulator against queueing theory: with a
// single backend process, negligible parse/accept costs, index and metadata
// always served from disk with zero cost, and data reads exponential with
// all-miss caching, the backend tier is an M/G/1 queue whose sojourn time
// has a known mean.
func TestBackendIsMG1(t *testing.T) {
	cfg := smallConfig()
	cfg.ParseFE = 1e-9
	cfg.ParseBE = 1e-9
	cfg.AcceptCost = 0
	cfg.NetRTT = 0
	cfg.DiskIndex = dist.Degenerate{Value: 0}
	cfg.DiskMeta = dist.Degenerate{Value: 0}
	mu := 200.0
	cfg.DiskData = dist.Exponential{Rate: mu}
	cfg.CacheBytes = 1 // everything misses
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t, 100000, 5)
	lambda := 100.0 // rho = 0.5
	recs, _ := trace.Generate(cat, trace.Schedule{{Rate: lambda, Duration: 300, Label: "x"}}, 13)
	// Force single-chunk objects.
	for i := range recs {
		recs[i].Size = 1024
	}
	var sum float64
	var n int
	cl.Metrics().SetResponseHook(func(r *Request) {
		if r.PoolAt > 50 { // discard warmup
			// A request's backend delay starts when its connection
			// enters the pool: part of the M/G/1 waiting shows up as
			// WTA, the rest as operation-queue waiting.
			sum += r.BEFirstByteAt - r.PoolAt
			n++
		}
	})
	cl.Inject(recs)
	cl.Drain()
	got := sum / float64(n)
	svc := lst.FromDist(dist.Exponential{Rate: mu})
	q, err := queueing.NewMG1(lambda, svc)
	if err != nil {
		t.Fatal(err)
	}
	want := q.SojournLST().Mean
	if math.Abs(got-want)/want > 0.08 {
		t.Errorf("backend mean sojourn = %v, M/G/1 predicts %v", got, want)
	}
}

// TestWTAFollowsQueueWaiting validates the paper's core WTA observation:
// the waiting time for being accept()-ed tracks the waiting time of the
// request processing queue (PASTA argument), so its mean should be within a
// factor of the M/G/1 mean waiting time under the same load.
func TestWTAFollowsQueueWaiting(t *testing.T) {
	cfg := smallConfig()
	cfg.ParseBE = 1e-9
	cfg.AcceptCost = 0
	cfg.NetRTT = 0
	cfg.DiskIndex = dist.Degenerate{Value: 0}
	cfg.DiskMeta = dist.Degenerate{Value: 0}
	mu := 200.0
	cfg.DiskData = dist.Exponential{Rate: mu}
	cfg.CacheBytes = 1
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t, 100000, 5)
	lambda := 120.0 // rho = 0.6
	recs, _ := trace.Generate(cat, trace.Schedule{{Rate: lambda, Duration: 300, Label: "x"}}, 17)
	for i := range recs {
		recs[i].Size = 1024
	}
	cl.Inject(recs)
	cl.Drain()
	snap := cl.Snapshot()
	meanWTA := snap.WTASum / float64(snap.WTACount)
	q, _ := queueing.NewMG1(lambda, lst.FromDist(dist.Exponential{Rate: mu}))
	waiting := q.WaitingLST().Mean
	// The paper's approximation equates the WTA distribution with the
	// queue waiting distribution (and notes it overestimates a bit); the
	// simulated mean must be on the same scale.
	if meanWTA < 0.2*waiting || meanWTA > 1.5*waiting {
		t.Errorf("mean WTA = %v, queue mean waiting = %v — not on the same scale", meanWTA, waiting)
	}
}

func TestChunkingGeneratesExtraReads(t *testing.T) {
	cfg := smallConfig()
	cfg.CacheBytes = 1 // all miss: every chunk is a disk read
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	size := cfg.ChunkSize*3 + 100 // 4 chunks
	cl.InjectRecord(trace.Record{At: 1, Object: 42, Size: size})
	cl.Drain()
	snap := cl.Snapshot()
	if got := snap.DevChunks[0]; got != 4 {
		t.Errorf("chunk reads = %d, want 4", got)
	}
	if got := snap.Disk[0].Ops[2]; got != 4 { // ClassData
		t.Errorf("disk data ops = %d, want 4", got)
	}
	if got := snap.Disk[0].Ops[0]; got != 1 {
		t.Errorf("disk index ops = %d, want 1", got)
	}
}

func TestZeroSizeObjectStillResponds(t *testing.T) {
	cfg := smallConfig()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	cl.Metrics().SetResponseHook(func(r *Request) { done++ })
	cl.InjectRecord(trace.Record{At: 1, Object: 7, Size: 0})
	cl.Drain()
	if done != 1 {
		t.Errorf("zero-size object produced %d responses", done)
	}
}

func TestPrewarmRaisesHitRatio(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheBytes = 64 << 20
	cat := testCatalog(t, 20000, 9)
	run := func(prewarm bool) float64 {
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if prewarm {
			if err := cl.PrewarmCaches(cat, 1.0); err != nil {
				t.Fatal(err)
			}
		}
		recs, _ := trace.Generate(cat, trace.Schedule{{Rate: 100, Duration: 20, Label: "x"}}, 23)
		cl.Inject(recs)
		cl.Drain()
		snap := cl.Snapshot()
		// Aggregate miss ratio over servers.
		var hits, misses uint64
		for _, cs := range snap.Cache {
			for i := range cs.Hits {
				hits += cs.Hits[i]
				misses += cs.Misses[i]
			}
		}
		return float64(misses) / float64(hits+misses)
	}
	cold := run(false)
	warm := run(true)
	if warm >= cold {
		t.Errorf("prewarm did not reduce miss ratio: cold=%v warm=%v", cold, warm)
	}
	cl, _ := New(cfg)
	if err := cl.PrewarmCaches(cat, 0); err == nil {
		t.Error("fill=0 should fail")
	}
	if err := cl.PrewarmCaches(cat, 1.5); err == nil {
		t.Error("fill>1 should fail")
	}
}

func TestDiskSystemBoundedByProcs(t *testing.T) {
	cfg := smallConfig()
	cfg.ProcsPerDisk = 4
	cfg.CacheBytes = 1
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t, 10000, 5)
	recs, _ := trace.Generate(cat, trace.Schedule{{Rate: 150, Duration: 30, Label: "x"}}, 29)
	cl.Inject(recs)
	cl.Drain()
	snap := cl.Snapshot()
	// At most Nbe operations can ever be in the disk system: each of the
	// Nbe processes blocks while its one synchronous disk op is pending.
	if got := snap.Disk[0].MaxQueue; got > cfg.ProcsPerDisk {
		t.Errorf("disk queue reached %d, processes are only %d", got, cfg.ProcsPerDisk)
	}
}

func TestWindowMetrics(t *testing.T) {
	cfg := DefaultConfig()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t, 5000, 5)
	recs, _ := trace.Generate(cat, trace.Schedule{{Rate: 100, Duration: 30, Label: "x"}}, 31)
	cl.Inject(recs)
	cl.RunUntil(10)
	s1 := cl.Snapshot()
	cl.RunUntil(30)
	s2 := cl.Snapshot()
	w := cl.Window(s1, s2)
	if w.Duration != 20 {
		t.Errorf("duration = %v", w.Duration)
	}
	if got := w.TotalRate(); got < 60 || got > 140 {
		t.Errorf("total rate = %v, want ~100", got)
	}
	for i, f := range w.MeetFraction {
		if f < 0 || f > 1 {
			t.Errorf("meet fraction %d = %v", i, f)
		}
	}
	for d := range w.MissIndex {
		for _, m := range []float64{w.MissIndex[d], w.MissMeta[d], w.MissData[d]} {
			if m < 0 || m > 1 {
				t.Errorf("device %d: miss ratio %v", d, m)
			}
		}
		if w.DiskUtilization[d] < 0 || w.DiskUtilization[d] > 1.01 {
			t.Errorf("device %d: utilization %v", d, w.DiskUtilization[d])
		}
	}
	if w.MeanLatency <= 0 || w.MeanWTA < 0 {
		t.Errorf("mean latency %v, mean WTA %v", w.MeanLatency, w.MeanWTA)
	}
}

func TestReplicaLoadBalance(t *testing.T) {
	cfg := DefaultConfig()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t, 50000, 5)
	recs, _ := trace.Generate(cat, trace.Schedule{{Rate: 200, Duration: 30, Label: "x"}}, 37)
	cl.Inject(recs)
	cl.Drain()
	snap := cl.Snapshot()
	var total uint64
	for _, r := range snap.DevReqs {
		total += r
	}
	mean := float64(total) / float64(len(snap.DevReqs))
	// With a Zipf head, a device that holds no replica of the hottest
	// objects legitimately sees much less traffic (the load imbalance the
	// paper discusses for scenario S16); only gross starvation would
	// indicate a routing bug.
	for d, r := range snap.DevReqs {
		if float64(r) < 0.4*mean || float64(r) > 2*mean {
			t.Errorf("device %d got %d requests, mean %v — gross imbalance", d, r, mean)
		}
	}
}

func TestMeasureDiskServiceRecoversDistribution(t *testing.T) {
	cfg := DefaultConfig()
	samples, err := MeasureDiskService(cfg, 4000, 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples.Index) != 4000 || len(samples.Meta) != 4000 || len(samples.Data) != 4000 {
		t.Fatalf("sample counts: %d %d %d", len(samples.Index), len(samples.Meta), len(samples.Data))
	}
	check := func(name string, got []float64, want dist.Distribution) {
		g, err := dist.FitGamma(got)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(g.Mean()-want.Mean())/want.Mean() > 0.05 {
			t.Errorf("%s: fitted mean %v, want %v", name, g.Mean(), want.Mean())
		}
	}
	check("index", samples.Index, cfg.DiskIndex)
	check("meta", samples.Meta, cfg.DiskMeta)
	check("data", samples.Data, cfg.DiskData)
	if _, err := MeasureDiskService(cfg, 0, 1); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestMeasureParseRecoversConfig(t *testing.T) {
	cfg := DefaultConfig()
	cal, err := MeasureParse(cfg, 20, 43)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cal.BE-cfg.ParseBE) > 1e-9 {
		t.Errorf("BE parse = %v, want %v", cal.BE, cfg.ParseBE)
	}
	if math.Abs(cal.FE-cfg.ParseFE) > 1e-9 {
		t.Errorf("FE parse = %v, want %v", cal.FE, cfg.ParseFE)
	}
	if cal.DFP <= cal.DBP {
		t.Errorf("Dfp %v should exceed Dbp %v", cal.DFP, cal.DBP)
	}
	if _, err := MeasureParse(cfg, 0, 1); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestChunkBytes(t *testing.T) {
	cases := []struct {
		size, chunk int64
		idx         int
		want        int64
	}{
		{100, 64, 0, 64},
		{100, 64, 1, 36},
		{100, 64, 2, 0},
		{64, 64, 0, 64},
		{64, 64, 1, 0},
		{0, 64, 0, 0},
		{-5, 64, 0, 0},
	}
	for _, c := range cases {
		if got := chunkBytes(c.size, c.chunk, c.idx); got != c.want {
			t.Errorf("chunkBytes(%d,%d,%d) = %d, want %d", c.size, c.chunk, c.idx, got, c.want)
		}
	}
}

func TestRequestChunks(t *testing.T) {
	r := &Request{Size: 100}
	if got := r.Chunks(64); got != 2 {
		t.Errorf("chunks = %d", got)
	}
	r.Size = 0
	if got := r.Chunks(64); got != 1 {
		t.Errorf("zero-size chunks = %d", got)
	}
}

func BenchmarkClusterThroughput(b *testing.B) {
	cfg := DefaultConfig()
	cl, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	cat, err := trace.NewCatalog(10000, trace.WikipediaLikeSizes(), 1.2, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	recs, err := trace.Generate(cat, trace.Schedule{{Rate: 200, Duration: float64(b.N) / 200, Label: "x"}}, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	cl.Inject(recs)
	cl.Drain()
	b.ReportMetric(float64(cl.EventsProcessed())/float64(b.N), "events/req")
}
