package simstore

import "fmt"

// Request is one GET moving through the simulated cluster. All timestamps
// are simulation seconds; a zero timestamp means "not reached yet" (requests
// arrive strictly after time zero).
type Request struct {
	ID     uint64
	Object uint64
	Size   int64

	// Device is the storage device chosen by the proxy (replica pick).
	Device int

	// ArriveFE is the arrival time at the frontend tier.
	ArriveFE float64
	// ConnectAt is when the frontend initiated the backend connection
	// (after frontend queueing and parsing).
	ConnectAt float64
	// PoolAt is when the connection entered the backend connection pool.
	PoolAt float64
	// AcceptedAt is when a backend process accept()-ed the connection.
	// AcceptedAt - PoolAt is the observed WTA.
	AcceptedAt float64
	// BEArriveAt is when the HTTP request reached the backend process
	// queue (one RTT after accept).
	BEArriveAt float64
	// BEFirstByteAt is when the backend started responding (metadata and
	// first data chunk ready).
	BEFirstByteAt float64
	// FEFirstByteAt is when the first response byte reached the frontend;
	// FEFirstByteAt - ArriveFE is the response latency the paper models.
	FEFirstByteAt float64
	// DoneAt is when the last chunk finished transmitting.
	DoneAt float64

	// Attempt is 1 for the initial issue and increments per retry.
	Attempt int
	// IsWrite marks a PUT. Writes go to every replica and are
	// acknowledged at write quorum; the analytic model does not cover
	// them (the paper's read-heavy assumption), which the write
	// sensitivity experiment exploits.
	IsWrite bool

	// bytesSent tracks transmission progress.
	bytesSent int64
	// proc is the backend process serving the request.
	proc *beProc
	// recorded marks that the response has been counted (dedupes retry
	// races); abandoned marks an attempt superseded by a retry.
	recorded  bool
	abandoned bool
	// write is the quorum state shared by a PUT's replica sub-requests.
	write *writeState
	// read is the fork-join state shared by a coded GET's stripe
	// sub-reads (nil on plain reads and on the parent of a coded GET
	// until routing fans it out).
	read *readState
}

// writeState tracks a PUT's replica acknowledgements.
type writeState struct {
	arriveFE   float64
	acksNeeded int
	acks       int
	recorded   bool
}

// readState tracks a coded GET's stripe sub-reads: the parent responds at
// the k-th sub-read first byte and the losers are cancelled.
type readState struct {
	parent *Request
	need   int // k: sub-read first bytes required to respond
	got    int
	done   bool
	subs   []*Request
}

// Latency returns the frontend-observed response latency (time to first
// byte), the quantity the model predicts.
func (r *Request) Latency() float64 { return r.FEFirstByteAt - r.ArriveFE }

// BackendLatency returns the backend-tier response latency: from HTTP
// request arrival at the backend process to start-of-response.
func (r *Request) BackendLatency() float64 { return r.BEFirstByteAt - r.BEArriveAt }

// WTA returns the observed waiting time for being accept()-ed.
func (r *Request) WTA() float64 { return r.AcceptedAt - r.PoolAt }

// Chunks returns the number of data chunks for the given chunk size.
func (r *Request) Chunks(chunkSize int64) int {
	if r.Size <= 0 {
		return 1
	}
	return int((r.Size + chunkSize - 1) / chunkSize)
}

// String implements fmt.Stringer for debugging.
func (r *Request) String() string {
	return fmt.Sprintf("req{id=%d obj=%d size=%d dev=%d}", r.ID, r.Object, r.Size, r.Device)
}

// indexKey, metaKey and chunkKey name the cache entries of an object.
func indexKey(obj uint64) string { return fmt.Sprintf("i:%d", obj) }
func metaKey(obj uint64) string  { return fmt.Sprintf("m:%d", obj) }
func chunkKey(obj uint64, chunk int) string {
	return fmt.Sprintf("d:%d:%d", obj, chunk)
}
