package simstore

import (
	"testing"

	"cosmodel/internal/dist"
	"cosmodel/internal/trace"
)

func meanVar(xs []float64) (m, v float64) {
	n := float64(len(xs))
	for _, x := range xs {
		m += x
	}
	m /= n
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return m, v / n
}

func TestSetDiskServiceValidation(t *testing.T) {
	cl, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := dist.NewGammaMeanSCV(10e-3, 0.5)
	if err := cl.SetDiskService(-1, g, nil, nil); err == nil {
		t.Error("negative device should fail")
	}
	if err := cl.SetDiskService(99, g, nil, nil); err == nil {
		t.Error("out-of-range device should fail")
	}
	if err := cl.SetDiskService(0, dist.Degenerate{Value: 0}, nil, nil); err == nil {
		t.Error("zero-mean distribution should fail")
	}
	if err := cl.SetDiskService(0, nil, nil, nil); err != nil {
		t.Errorf("all-nil (keep everything) should be a no-op, got %v", err)
	}
	if err := cl.SetDiskService(0, g, g, g); err != nil {
		t.Errorf("valid swap failed: %v", err)
	}
}

func TestResizeCacheValidation(t *testing.T) {
	cl, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.ResizeCache(-1, 1<<20); err == nil {
		t.Error("negative server should fail")
	}
	if err := cl.ResizeCache(99, 1<<20); err == nil {
		t.Error("out-of-range server should fail")
	}
	if err := cl.ResizeCache(0, 0); err == nil {
		t.Error("zero capacity should fail")
	}
	if err := cl.ResizeCache(0, 1<<20); err != nil {
		t.Errorf("valid resize failed: %v", err)
	}
}

// TestRegimeShiftIsObservable swaps the data-read service distribution for a
// slower, burstier one mid-run and shrinks a cache, then checks the windowed
// metrics and raw samples reflect the new regime: higher mean, higher SCV in
// the exported samples, and a worse data miss ratio on the resized server.
func TestRegimeShiftIsObservable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DiskSampleEvery = 1
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t, 40000, 9)
	if err := cl.PrewarmCaches(cat, 0.95); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.Generate(cat, trace.Schedule{{Rate: 150, Duration: 80, Label: "x"}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	cl.Inject(recs)
	// Stationary first half.
	cl.RunUntil(5)
	s0 := cl.Snapshot()
	cl.RunUntil(40)
	s1 := cl.Snapshot()
	before := cl.Window(s0, s1)
	if len(before.DiskSamples) != cfg.Devices() {
		t.Fatalf("DiskSamples has %d devices, want %d", len(before.DiskSamples), cfg.Devices())
	}
	if len(before.DiskSamples[0].Data) < 50 {
		t.Fatalf("too few data samples in window: %d", len(before.DiskSamples[0].Data))
	}
	// Shift: 2x slower and much burstier data reads everywhere, and server
	// 0's cache shrinks to a quarter.
	slow := dist.NewGammaMeanSCV(16e-3, 1.6)
	for d := 0; d < cfg.Devices(); d++ {
		if err := cl.SetDiskService(d, nil, nil, slow); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.ResizeCache(0, cfg.CacheBytes/4); err != nil {
		t.Fatal(err)
	}
	cl.RunUntil(45)
	s2 := cl.Snapshot()
	cl.RunUntil(80)
	s3 := cl.Snapshot()
	after := cl.Window(s2, s3)

	// Overall mean disk service time rises on every device.
	for d := 0; d < cfg.Devices(); d++ {
		if !(after.DiskMeanSvc[d] > before.DiskMeanSvc[d]*1.2) {
			t.Errorf("device %d mean svc %v -> %v: shift invisible",
				d, before.DiskMeanSvc[d], after.DiskMeanSvc[d])
		}
	}
	// The raw data-read samples show the new mean and the fatter shape.
	bm, bv := meanVar(before.DiskSamples[0].Data)
	am, av := meanVar(after.DiskSamples[0].Data)
	if !(am > bm*1.5) {
		t.Errorf("data sample mean %v -> %v, want ~2x", bm, am)
	}
	bscv, ascv := bv/(bm*bm), av/(am*am)
	if !(ascv > bscv*2) {
		t.Errorf("data sample SCV %v -> %v: shape change invisible", bscv, ascv)
	}
	// The shrunk cache misses more data reads (device 0 lives on server 0).
	if !(after.MissData[0] > before.MissData[0]+0.02) {
		t.Errorf("server 0 data miss ratio %v -> %v: cache shrink invisible",
			before.MissData[0], after.MissData[0])
	}
	// Sampling disabled => no samples exported.
	cl2, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if w := cl2.Window(cl2.Snapshot(), cl2.Snapshot()); w.DiskSamples != nil {
		t.Error("DiskSamples must be nil when sampling is disabled")
	}
}
