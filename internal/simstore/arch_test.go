package simstore

import (
	"testing"

	"cosmodel/internal/trace"
)

// runArch drives the same workload through a cluster with the given
// architecture and returns the measurement window.
func runArch(t *testing.T, arch Architecture, rate float64) Window {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Architecture = arch
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t, 60000, 5)
	if err := cl.PrewarmCaches(cat, 0.95); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.Generate(cat, trace.Schedule{{Rate: rate, Duration: 30, Label: "x"}}, 31)
	if err != nil {
		t.Fatal(err)
	}
	cl.Inject(recs)
	cl.RunUntil(8)
	before := cl.Snapshot()
	cl.Drain()
	return cl.Window(before, cl.Snapshot())
}

func TestThreadPerConnectionServesRequests(t *testing.T) {
	win := runArch(t, ThreadPerConnection, 150)
	if win.Responses == 0 {
		t.Fatal("no responses under thread-per-connection")
	}
	for i, f := range win.MeetFraction {
		if f < 0 || f > 1 {
			t.Errorf("meet fraction %d = %v", i, f)
		}
	}
	if win.MeanLatency <= 0 {
		t.Errorf("mean latency = %v", win.MeanLatency)
	}
}

// TestThreadLimitCreatesPoolWaiting: with a tiny thread pool, connections
// must queue for threads (positive WTA) and everything still completes.
func TestThreadLimitCreatesPoolWaiting(t *testing.T) {
	cfg := smallConfig()
	cfg.Architecture = ThreadPerConnection
	cfg.MaxThreadsPerDisk = 1
	cfg.CacheBytes = 1
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t, 5000, 5)
	recs, _ := trace.Generate(cat, trace.Schedule{{Rate: 60, Duration: 20, Label: "x"}}, 7)
	cl.Inject(recs)
	cl.Drain()
	snap := cl.Snapshot()
	if snap.Responses != uint64(len(recs)) {
		t.Fatalf("served %d of %d", snap.Responses, len(recs))
	}
	if snap.WTASum <= 0 {
		t.Error("single-thread pool should produce accept waiting")
	}
}

// TestEventDrivenBeatsTPCTailLatency reproduces the claim the paper cites
// (Section II, [22]): at identical high load the event-driven architecture
// has better tail response latency than thread-per-connection, because TPC
// threads hold the device through whole transfers while the event loop
// interleaves.
func TestEventDrivenBeatsTPCTailLatency(t *testing.T) {
	const rate = 320
	ed := runArch(t, EventDriven, rate)
	// A thread pool as scarce as the event-driven process count (the
	// apples-to-apples resource comparison).
	cfg := DefaultConfig()
	cfg.Architecture = ThreadPerConnection
	cfg.MaxThreadsPerDisk = cfg.ProcsPerDisk
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t, 60000, 5)
	if err := cl.PrewarmCaches(cat, 0.95); err != nil {
		t.Fatal(err)
	}
	recs, _ := trace.Generate(cat, trace.Schedule{{Rate: rate, Duration: 30, Label: "x"}}, 31)
	cl.Inject(recs)
	cl.RunUntil(8)
	before := cl.Snapshot()
	cl.Drain()
	tpc := cl.Window(before, cl.Snapshot())

	if ed.Latency == nil || tpc.Latency == nil {
		t.Fatal("missing latency histograms")
	}
	edP99 := ed.Latency.Quantile(0.99)
	tpcP99 := tpc.Latency.Quantile(0.99)
	if !(edP99 < tpcP99) {
		t.Errorf("event-driven p99 %.1fms should beat TPC p99 %.1fms", edP99*1e3, tpcP99*1e3)
	}
}

func TestArchitectureString(t *testing.T) {
	if EventDriven.String() != "event-driven" {
		t.Error(EventDriven.String())
	}
	if ThreadPerConnection.String() != "thread-per-connection" {
		t.Error(ThreadPerConnection.String())
	}
	if Architecture(7).String() != "Architecture(7)" {
		t.Error(Architecture(7).String())
	}
}

func TestTimeoutAndRetry(t *testing.T) {
	cfg := smallConfig()
	cfg.CacheBytes = 1
	cfg.RequestTimeout = 0.05 // 50ms: disk-bound requests will trip it
	cfg.MaxRetries = 1
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t, 10000, 5)
	// Overdrive a single device so queueing delays exceed the timeout.
	recs, _ := trace.Generate(cat, trace.Schedule{{Rate: 80, Duration: 20, Label: "x"}}, 7)
	cl.Inject(recs)
	cl.Drain()
	snap := cl.Snapshot()
	if snap.Timeouts == 0 {
		t.Fatal("expected timeouts under overload with a 50ms budget")
	}
	if snap.Retries == 0 {
		t.Fatal("expected retries")
	}
	if snap.Retries > snap.Timeouts {
		t.Errorf("retries %d > timeouts %d", snap.Retries, snap.Timeouts)
	}
	// No response is double-counted despite retries: responses equal the
	// number of distinct trace requests.
	if snap.Responses != uint64(len(recs)) {
		t.Errorf("responses %d, requests %d", snap.Responses, len(recs))
	}
	if cl.Metrics().Timeouts() != snap.Timeouts || cl.Metrics().Retries() != snap.Retries {
		t.Error("metrics accessors disagree with snapshot")
	}
}

func TestNoTimeoutsWhenDisabled(t *testing.T) {
	cfg := smallConfig()
	cfg.CacheBytes = 1
	cfg.RequestTimeout = 0
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t, 5000, 5)
	recs, _ := trace.Generate(cat, trace.Schedule{{Rate: 80, Duration: 10, Label: "x"}}, 7)
	cl.Inject(recs)
	cl.Drain()
	if got := cl.Snapshot().Timeouts; got != 0 {
		t.Errorf("timeouts = %d with timeouts disabled", got)
	}
}

func TestWindowLatencyHistogram(t *testing.T) {
	cfg := DefaultConfig()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog(t, 5000, 5)
	recs, _ := trace.Generate(cat, trace.Schedule{{Rate: 100, Duration: 20, Label: "x"}}, 7)
	cl.Inject(recs)
	cl.RunUntil(10)
	before := cl.Snapshot()
	cl.Drain()
	win := cl.Window(before, cl.Snapshot())
	if win.Latency == nil {
		t.Fatal("window should carry a latency histogram")
	}
	if win.Latency.Count() != win.Responses {
		t.Errorf("histogram count %d, responses %d", win.Latency.Count(), win.Responses)
	}
	p50 := win.Latency.Quantile(0.5)
	p99 := win.Latency.Quantile(0.99)
	if !(p50 > 0 && p50 <= p99) {
		t.Errorf("p50 %v, p99 %v", p50, p99)
	}
	// Histogram's FractionBelow should roughly agree with the SLA meet
	// fraction counters.
	for i, sla := range cfg.SLAs {
		hist := win.Latency.FractionBelow(sla)
		if diff := hist - win.MeetFraction[i]; diff > 0.05 || diff < -0.05 {
			t.Errorf("SLA %v: histogram %.3f vs counter %.3f", sla, hist, win.MeetFraction[i])
		}
	}
}

func TestTPCValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Architecture = ThreadPerConnection
	cfg.MaxThreadsPerDisk = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero threads should fail validation")
	}
	cfg = DefaultConfig()
	cfg.RequestTimeout = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative timeout should fail validation")
	}
	cfg = DefaultConfig()
	cfg.MaxRetries = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative retries should fail validation")
	}
}
