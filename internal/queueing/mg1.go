// Package queueing implements the queueing-theoretic building blocks of the
// model: the M/G/1 queue (Pollaczek–Khinchin transform), the M/M/1 queue
// (closed forms used for validation), the M/M/1/K queue (the paper's disk
// approximation for multi-process devices) and a numerically exact M/G/1/K
// embedded Markov chain used to assess that approximation.
package queueing

import (
	"errors"
	"fmt"

	"cosmodel/internal/lst"
)

// ErrUnstable reports a queue whose utilization is >= 1, for which no steady
// state exists.
var ErrUnstable = errors.New("queueing: utilization >= 1, queue is unstable")

// ErrBadParam reports nonpositive rates or service times.
var ErrBadParam = errors.New("queueing: rates and service times must be positive")

// MG1 is an M/G/1 queue: Poisson arrivals at rate Lambda served FCFS by a
// single server with service-time transform Service.
type MG1 struct {
	Lambda  float64
	Service lst.Transform
}

// NewMG1 validates and constructs an M/G/1 queue. It returns ErrUnstable if
// λ·E[S] >= 1.
func NewMG1(lambda float64, service lst.Transform) (MG1, error) {
	q := MG1{Lambda: lambda, Service: service}
	if lambda <= 0 || service.Mean <= 0 {
		return q, fmt.Errorf("%w: lambda=%v, mean service=%v", ErrBadParam, lambda, service.Mean)
	}
	if q.Utilization() >= 1 {
		return q, fmt.Errorf("%w: rho=%.4f", ErrUnstable, q.Utilization())
	}
	return q, nil
}

// Utilization returns ρ = λ·E[S].
func (q MG1) Utilization() float64 { return q.Lambda * q.Service.Mean }

// WaitingLST returns the Laplace–Stieltjes transform of the FCFS waiting
// time (time in queue before service) by the Pollaczek–Khinchin formula:
//
//	W(s) = (1-ρ)·s / (λ·B(s) + s - λ)
//
// Its mean is computed from the P-K mean formula using the numeric second
// moment of the service transform.
func (q MG1) WaitingLST() lst.Transform {
	b := q.Service.F
	m2 := lst.SecondMomentNumeric(q.Service)
	return lst.Transform{
		F: func(s complex128) complex128 {
			return q.WaitingValue(s, b(s))
		},
		Mean: q.Lambda * m2 / (2 * (1 - q.Utilization())),
	}
}

// WaitingValue evaluates the Pollaczek–Khinchin waiting transform at s
// given a precomputed service-transform value bs = B(s). It is the exact
// arithmetic behind WaitingLST, exposed so evaluation engines that already
// hold B(s) (because the service transform is shared with other convolution
// factors at the same node) avoid re-evaluating the service transform.
func (q MG1) WaitingValue(s, bs complex128) complex128 {
	if s == 0 {
		return 1
	}
	rho := q.Utilization()
	return complex(1-rho, 0) * s / (complex(q.Lambda, 0)*bs + s - complex(q.Lambda, 0))
}

// SojournLST returns the transform of the sojourn (response) time: the
// waiting time convolved with one service time.
func (q MG1) SojournLST() lst.Transform {
	return lst.Convolve(q.WaitingLST(), q.Service)
}

// MeanQueueLength returns the mean number of customers in the system by
// Little's law applied to the sojourn time.
func (q MG1) MeanQueueLength() float64 {
	return q.Lambda * q.SojournLST().Mean
}
