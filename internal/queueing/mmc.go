package queueing

import (
	"fmt"
	"math"

	"cosmodel/internal/dist"
	"cosmodel/internal/lst"
)

// MMC is an M/M/c queue: Poisson arrivals at rate Lambda, c parallel
// exponential servers of rate Mu each, FCFS. It models a pool of identical
// workers fed from one queue — a useful what-if contrast to the paper's
// one-queue-per-process architecture.
type MMC struct {
	Lambda float64
	Mu     float64
	C      int
}

// NewMMC validates and constructs an M/M/c queue.
func NewMMC(lambda, mu float64, c int) (MMC, error) {
	q := MMC{Lambda: lambda, Mu: mu, C: c}
	if lambda <= 0 || mu <= 0 || c < 1 {
		return q, fmt.Errorf("%w: lambda=%v mu=%v c=%d", ErrBadParam, lambda, mu, c)
	}
	if q.Utilization() >= 1 {
		return q, fmt.Errorf("%w: rho=%.4f", ErrUnstable, q.Utilization())
	}
	return q, nil
}

// Utilization returns ρ = λ/(c·μ).
func (q MMC) Utilization() float64 { return q.Lambda / (float64(q.C) * q.Mu) }

// offeredLoad returns a = λ/μ.
func (q MMC) offeredLoad() float64 { return q.Lambda / q.Mu }

// ErlangC returns the probability that an arriving customer must wait
// (all c servers busy), computed stably via the iterative Erlang-B
// recursion.
func (q MMC) ErlangC() float64 {
	a := q.offeredLoad()
	// Erlang B recursion: B(0)=1; B(k) = a·B(k-1)/(k + a·B(k-1)).
	b := 1.0
	for k := 1; k <= q.C; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := q.Utilization()
	return b / (1 - rho*(1-b))
}

// MeanWaiting returns E[Wq] = C(c,a)/(cμ - λ).
func (q MMC) MeanWaiting() float64 {
	return q.ErlangC() / (float64(q.C)*q.Mu - q.Lambda)
}

// MeanSojourn returns E[T] = E[Wq] + 1/μ.
func (q MMC) MeanSojourn() float64 { return q.MeanWaiting() + 1/q.Mu }

// MeanQueueLength returns E[N] by Little's law.
func (q MMC) MeanQueueLength() float64 { return q.Lambda * q.MeanSojourn() }

// WaitingCDF is the exact FCFS waiting-time CDF:
// P(Wq <= t) = 1 - C(c,a)·e^{-(cμ-λ)t}.
func (q MMC) WaitingCDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	return 1 - q.ErlangC()*math.Exp(-(float64(q.C)*q.Mu-q.Lambda)*t)
}

// WaitingLST returns the waiting-time transform: an atom of size 1-C at
// zero plus C·Exponential(cμ-λ).
func (q MMC) WaitingLST() lst.Transform {
	c := q.ErlangC()
	theta := float64(q.C)*q.Mu - q.Lambda
	exp := lst.FromDist(dist.Exponential{Rate: theta})
	return lst.Transform{
		F: func(s complex128) complex128 {
			return complex(1-c, 0) + complex(c, 0)*exp.F(s)
		},
		Mean: c / theta,
	}
}

// SojournLST returns the response-time transform (waiting ∗ service).
func (q MMC) SojournLST() lst.Transform {
	return lst.Convolve(q.WaitingLST(), lst.FromDist(dist.Exponential{Rate: q.Mu}))
}
