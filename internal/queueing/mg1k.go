package queueing

import (
	"fmt"
	"math"

	"cosmodel/internal/dist"
	"cosmodel/internal/lst"
	"cosmodel/internal/numeric"
)

// MG1K is an M/G/1/K queue solved numerically via the embedded Markov chain
// at departure epochs. The paper approximates this queue with an M/M/1/K
// (Section III-B, citing J.M. Smith); this exact solver quantifies the
// approximation error in the ablation benches.
type MG1K struct {
	Lambda  float64
	Service dist.Distribution
	K       int

	aj []float64 // P(j Poisson arrivals during one service)
	pj []float64 // time-stationary state probabilities, len K+1
}

// NewMG1K constructs and solves the queue. K is the system capacity
// (in service + waiting).
func NewMG1K(lambda float64, service dist.Distribution, k int) (*MG1K, error) {
	if lambda <= 0 || service == nil || service.Mean() <= 0 || k < 1 {
		return nil, fmt.Errorf("%w: lambda=%v, K=%d", ErrBadParam, lambda, k)
	}
	q := &MG1K{Lambda: lambda, Service: service, K: k}
	q.computeArrivalProbs()
	if err := q.solve(); err != nil {
		return nil, err
	}
	return q, nil
}

// computeArrivalProbs fills aj[j] = E[e^{-λT}(λT)^j / j!] for j = 0..K.
// Gamma and Exponential services have closed forms; anything else is
// integrated numerically over the quantile-transformed unit interval.
func (q *MG1K) computeArrivalProbs() {
	k := q.K
	q.aj = make([]float64, k+1)
	lam := q.Lambda
	switch svc := q.Service.(type) {
	case dist.Exponential:
		q.gammaArrivalProbs(1, svc.Rate)
	case dist.Gamma:
		q.gammaArrivalProbs(svc.Shape, svc.Rate)
	case dist.Degenerate:
		x := lam * svc.Value
		term := math.Exp(-x)
		for j := 0; j <= k; j++ {
			q.aj[j] = term
			term *= x / float64(j+1)
		}
	default:
		for j := 0; j <= k; j++ {
			jj := j
			q.aj[j] = numeric.IntegrateAdaptive(func(u float64) float64 {
				t := q.Service.Quantile(u)
				logp := -lam*t + float64(jj)*math.Log(lam*t+1e-300) - logFactorial(jj)
				return math.Exp(logp)
			}, 1e-9, 1-1e-9, 1e-10)
		}
	}
}

// gammaArrivalProbs uses the closed form for Gamma(shape, rate) service:
// a_j = (Γ(shape+j)/(Γ(shape) j!)) (rate/(rate+λ))^shape (λ/(rate+λ))^j.
func (q *MG1K) gammaArrivalProbs(shape, rate float64) {
	lam := q.Lambda
	p := lam / (rate + lam)
	base := math.Pow(rate/(rate+lam), shape)
	term := base // j = 0
	for j := 0; j <= q.K; j++ {
		q.aj[j] = term
		term *= (shape + float64(j)) / float64(j+1) * p
	}
}

func logFactorial(n int) float64 {
	lg, _ := math.Lgamma(float64(n + 1))
	return lg
}

// solve builds the embedded-chain transition matrix, finds its stationary
// distribution, and converts it to time-stationary probabilities using the
// standard M/G/1/K relations p_j = π_j/(π_0+ρ) (j<K), p_K = 1 - 1/(π_0+ρ).
func (q *MG1K) solve() error {
	k := q.K
	n := k // embedded states 0..K-1 (system size just after a departure)
	P := make([][]float64, n)
	for i := range P {
		P[i] = make([]float64, n)
	}
	// tailFrom(roomIdx) = 1 - Σ_{j<roomIdx} a_j.
	tail := func(room int) float64 {
		s := 0.0
		for j := 0; j < room; j++ {
			s += q.aj[j]
		}
		return math.Max(0, 1-s)
	}
	for from := 0; from < n; from++ {
		// Effective pre-service level: a departure leaving `from`
		// customers behaves like from=1 when from=0 (the next service
		// starts at the next arrival, with room K-1 during it).
		eff := from
		if eff == 0 {
			eff = 1
		}
		room := k - eff // spare capacity while the next service runs
		for m := eff - 1; m < n; m++ {
			j := m - (eff - 1) // arrivals accepted during the service
			if m == n-1 {
				P[from][m] = tail(room)
			} else if j <= room {
				P[from][m] = q.aj[j]
			}
		}
	}
	pi, err := stationary(P)
	if err != nil {
		return err
	}
	rho := q.Lambda * q.Service.Mean()
	denom := pi[0] + rho
	q.pj = make([]float64, k+1)
	blocked := 1 - 1/denom
	if blocked < 0 {
		blocked = 0
	}
	for j := 0; j < k; j++ {
		q.pj[j] = pi[j] / denom
	}
	q.pj[k] = blocked
	return nil
}

// stationary solves πP = π, Σπ = 1 by Gaussian elimination on (Pᵀ-I) with
// the normalization row appended.
func stationary(P [][]float64) ([]float64, error) {
	n := len(P)
	// Build A = Pᵀ - I with last row replaced by ones; b = e_n.
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = P[j][i]
		}
		a[i][i] -= 1
	}
	for j := 0; j < n; j++ {
		a[n-1][j] = 1
	}
	b[n-1] = 1
	// Gaussian elimination with partial pivoting.
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-14 {
			return nil, fmt.Errorf("queueing: singular embedded chain matrix")
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

// StateProbability returns the time-stationary probability of i customers in
// the system.
func (q *MG1K) StateProbability(i int) float64 {
	if i < 0 || i > q.K {
		return 0
	}
	return q.pj[i]
}

// BlockingProbability returns the fraction of arrivals lost (PASTA).
func (q *MG1K) BlockingProbability() float64 { return q.pj[q.K] }

// MeanNumber returns the mean number in the system.
func (q *MG1K) MeanNumber() float64 {
	total := 0.0
	for i, p := range q.pj {
		total += float64(i) * p
	}
	return total
}

// MeanSojourn returns the mean response time of accepted customers by
// Little's law.
func (q *MG1K) MeanSojourn() float64 {
	return q.MeanNumber() / (q.Lambda * (1 - q.BlockingProbability()))
}

// SojournLST returns an approximate sojourn-time transform for accepted
// customers. An accepted arrival finding j customers (PASTA, conditioned on
// acceptance) waits for the in-service customer's *residual* service, then
// j-1 full services, then its own:
//
//	S(s) ≈ p'_0·B(s) + Σ_{j>=1} p'_j · Be(s)·B(s)^j
//
// with Be the equilibrium (residual) service transform (1-B(s))/(s·E[B]).
// The construction is exact for exponential service (where it reduces to
// the M/M/1/K Erlang mixture) and a standard approximation otherwise: it
// ignores the correlation between the queue length found and the elapsed
// service age.
func (q *MG1K) SojournLST() lst.Transform {
	b := lst.FromDist(q.Service)
	residualMean := dist.SecondMoment(q.Service) / (2 * q.Service.Mean())
	be := lst.Transform{
		F: func(s complex128) complex128 {
			if s == 0 {
				return 1
			}
			return (1 - b.F(s)) / (s * complex(q.Service.Mean(), 0))
		},
		Mean: residualMean,
	}
	accepted := 1 - q.BlockingProbability()
	weights := make([]float64, q.K)
	for j := 0; j < q.K; j++ {
		weights[j] = q.pj[j] / accepted
	}
	mean := 0.0
	for j, w := range weights {
		if j == 0 {
			mean += w * q.Service.Mean()
		} else {
			mean += w * (residualMean + float64(j)*q.Service.Mean())
		}
	}
	return lst.Transform{
		F: func(s complex128) complex128 {
			bs := b.F(s)
			total := complex(weights[0], 0) * bs
			pow := bs // B(s)^j for j=1
			for j := 1; j < q.K; j++ {
				total += complex(weights[j], 0) * be.F(s) * pow
				pow *= bs
			}
			return total
		},
		Mean: mean,
	}
}
