package queueing

import (
	"fmt"
	"math"
)

// MM1 is an M/M/1 queue: Poisson arrivals at rate Lambda, exponential
// service at rate Mu. Its closed forms anchor the validation of both the
// numeric machinery and the simulator.
type MM1 struct {
	Lambda float64
	Mu     float64
}

// NewMM1 validates and constructs an M/M/1 queue.
func NewMM1(lambda, mu float64) (MM1, error) {
	q := MM1{Lambda: lambda, Mu: mu}
	if lambda <= 0 || mu <= 0 {
		return q, fmt.Errorf("%w: lambda=%v, mu=%v", ErrBadParam, lambda, mu)
	}
	if lambda >= mu {
		return q, fmt.Errorf("%w: rho=%.4f", ErrUnstable, lambda/mu)
	}
	return q, nil
}

// Utilization returns ρ = λ/μ.
func (q MM1) Utilization() float64 { return q.Lambda / q.Mu }

// WaitingCDF is the exact FCFS waiting-time CDF:
// W(t) = 1 - ρ·e^{-(μ-λ)t}, with an atom 1-ρ at zero.
func (q MM1) WaitingCDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	rho := q.Utilization()
	return 1 - rho*math.Exp(-(q.Mu-q.Lambda)*t)
}

// SojournCDF is the exact sojourn-time CDF: 1 - e^{-(μ-λ)t}.
func (q MM1) SojournCDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return -math.Expm1(-(q.Mu - q.Lambda) * t)
}

// MeanWaiting returns ρ/(μ-λ).
func (q MM1) MeanWaiting() float64 {
	return q.Utilization() / (q.Mu - q.Lambda)
}

// MeanSojourn returns 1/(μ-λ).
func (q MM1) MeanSojourn() float64 {
	return 1 / (q.Mu - q.Lambda)
}

// MeanQueueLength returns ρ/(1-ρ).
func (q MM1) MeanQueueLength() float64 {
	rho := q.Utilization()
	return rho / (1 - rho)
}
