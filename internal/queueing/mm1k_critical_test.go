package queueing

import (
	"math"
	"math/big"
	"testing"
)

// bigMM1K evaluates the textbook closed forms with 200-bit arithmetic, as
// the precision reference for the near-critical band where the float64
// closed forms used to cancel catastrophically.
type bigMM1K struct {
	u *big.Float
	k int
}

func newBigMM1K(lambda, mu float64, k int) bigMM1K {
	prec := uint(200)
	u := new(big.Float).SetPrec(prec).Quo(
		new(big.Float).SetPrec(prec).SetFloat64(lambda),
		new(big.Float).SetPrec(prec).SetFloat64(mu))
	return bigMM1K{u: u, k: k}
}

func (q bigMM1K) pow(n int) *big.Float {
	out := big.NewFloat(1).SetPrec(q.u.Prec())
	for i := 0; i < n; i++ {
		out.Mul(out, q.u)
	}
	return out
}

// stateProb returns P_i = (1-u)·u^i/(1-u^{K+1}) as float64.
func (q bigMM1K) stateProb(i int) float64 {
	one := big.NewFloat(1).SetPrec(q.u.Prec())
	num := new(big.Float).Sub(one, q.u)
	num.Mul(num, q.pow(i))
	den := new(big.Float).Sub(one, q.pow(q.k+1))
	out, _ := num.Quo(num, den).Float64()
	return out
}

// meanNumber returns N = u/(1-u) - (K+1)·u^{K+1}/(1-u^{K+1}) as float64.
func (q bigMM1K) meanNumber() float64 {
	prec := q.u.Prec()
	one := big.NewFloat(1).SetPrec(prec)
	t1 := new(big.Float).SetPrec(prec).Quo(q.u, new(big.Float).Sub(one, q.u))
	m := q.k + 1
	um := q.pow(m)
	t2 := new(big.Float).SetPrec(prec).Quo(um, new(big.Float).Sub(one, um))
	t2.Mul(t2, big.NewFloat(float64(m)).SetPrec(prec))
	out, _ := t1.Sub(t1, t2).Float64()
	return out
}

// TestMM1KNearCriticalContinuity sweeps u through 1±1e-4 … 1±1e-12 — the
// band the old |u-1| < 1e-9 guard left exposed to catastrophic cancellation
// in (1-u)/(1-u^{K+1}) and MeanNumber — and checks StateProbability,
// BlockingProbability and MeanNumber against a 200-bit reference and
// against the u → 1 limits.
func TestMM1KNearCriticalContinuity(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8, 32} {
		limN := float64(k) / 2
		limP := 1 / float64(k+1)
		for _, sign := range []float64{-1, 1} {
			prevN := math.Inf(int(sign))
			for e := 4; e <= 12; e++ {
				eps := sign * math.Pow(10, -float64(e))
				lambda := 1 + eps
				q, err := NewMM1K(lambda, 1, k)
				if err != nil {
					t.Fatal(err)
				}
				ref := newBigMM1K(lambda, 1, k)

				n := q.MeanNumber()
				if want := ref.meanNumber(); relErr(n, want) > 1e-10 {
					t.Errorf("K=%d u=1%+.0e: MeanNumber=%v want %v (rel %v)",
						k, eps, n, want, relErr(n, want))
				}
				// N is strictly increasing in u, so walking eps toward 0
				// from below (above) must increase (decrease) N toward K/2.
				if sign < 0 && !(n > prevN && n < limN) {
					t.Errorf("K=%d u=1%+.0e: N=%v not in (%v, %v)", k, eps, n, prevN, limN)
				}
				if sign > 0 && !(n < prevN && n > limN) {
					t.Errorf("K=%d u=1%+.0e: N=%v not in (%v, %v)", k, eps, n, limN, prevN)
				}
				prevN = n
				if e == 12 && math.Abs(n-limN) > 1e-10*limN+1e-12 {
					t.Errorf("K=%d u=1%+.0e: N=%v should be at limit %v", k, eps, n, limN)
				}

				sum := 0.0
				for i := 0; i <= k; i++ {
					p := q.StateProbability(i)
					sum += p
					if want := ref.stateProb(i); relErr(p, want) > 1e-10 {
						t.Errorf("K=%d u=1%+.0e: P_%d=%v want %v", k, eps, i, p, want)
					}
				}
				if math.Abs(sum-1) > 1e-12 {
					t.Errorf("K=%d u=1%+.0e: sum P_i = %v", k, eps, sum)
				}
				if pb := q.BlockingProbability(); math.Abs(pb-limP) > 2*math.Abs(eps)*float64(k)+1e-12 {
					t.Errorf("K=%d u=1%+.0e: P_K=%v far from limit %v", k, eps, pb, limP)
				}
			}
		}
	}
}

// TestMM1KStableFormsWideRange checks the rewritten expm1/log1p forms well
// away from the critical point, including loads extreme enough to overflow
// a naive u^{K+1}.
func TestMM1KStableFormsWideRange(t *testing.T) {
	for _, tc := range []struct{ lambda, mu float64 }{
		{0.1, 1}, {0.5, 1}, {0.9, 1}, {1.1, 1}, {2, 1}, {10, 1},
		{1e6, 1}, {1, 1e6},
	} {
		for _, k := range []int{1, 4, 32, 200} {
			q, err := NewMM1K(tc.lambda, tc.mu, k)
			if err != nil {
				t.Fatal(err)
			}
			ref := newBigMM1K(tc.lambda, tc.mu, k)
			if n, want := q.MeanNumber(), ref.meanNumber(); relErr(n, want) > 1e-12 {
				t.Errorf("λ=%v K=%d: MeanNumber=%v want %v", tc.lambda, k, n, want)
			}
			sum := 0.0
			for i := 0; i <= k; i++ {
				p := q.StateProbability(i)
				if p < 0 || p > 1 || math.IsNaN(p) {
					t.Fatalf("λ=%v K=%d: P_%d = %v", tc.lambda, k, i, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("λ=%v K=%d: sum P_i = %v", tc.lambda, k, sum)
			}
			if n := q.MeanNumber(); n < 0 || n > float64(k) {
				t.Errorf("λ=%v K=%d: N = %v outside [0, K]", tc.lambda, k, n)
			}
		}
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
