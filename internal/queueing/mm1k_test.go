package queueing

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"cosmodel/internal/dist"
	"cosmodel/internal/lst"
)

func TestNewMM1KValidation(t *testing.T) {
	if _, err := NewMM1K(0, 1, 4); err == nil {
		t.Error("lambda=0 should fail")
	}
	if _, err := NewMM1K(1, 0, 4); err == nil {
		t.Error("mu=0 should fail")
	}
	if _, err := NewMM1K(1, 1, 0); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := NewMM1K(2, 1, 4); err != nil {
		t.Errorf("overloaded M/M/1/K is fine: %v", err)
	}
}

func TestMM1KStateProbabilitiesSumToOne(t *testing.T) {
	for _, u := range []float64{0.2, 0.8, 1.0, 1.5, 3} {
		q, err := NewMM1K(u*100, 100, 7)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i := 0; i <= q.K; i++ {
			p := q.StateProbability(i)
			if p < 0 || p > 1 {
				t.Fatalf("u=%v: P_%d = %v", u, i, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("u=%v: ΣP = %v", u, sum)
		}
		if q.StateProbability(-1) != 0 || q.StateProbability(q.K+1) != 0 {
			t.Error("out-of-range state probability should be 0")
		}
	}
}

func TestMM1KCriticalLoadLimits(t *testing.T) {
	q, err := NewMM1K(100, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := q.StateProbability(3), 1.0/9.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("P_3 at u=1: %v, want %v", got, want)
	}
	if got, want := q.MeanNumber(), 4.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("N at u=1: %v, want %v", got, want)
	}
	// Continuity: u slightly off 1 should be close to the limit.
	qq, _ := NewMM1K(100.001, 100, 8)
	if math.Abs(qq.MeanNumber()-4.0) > 1e-2 {
		t.Errorf("N near u=1: %v", qq.MeanNumber())
	}
}

func TestMM1KSojournLSTMatchesCDF(t *testing.T) {
	for _, u := range []float64{0.5, 0.95, 1.0, 1.4} {
		q, err := NewMM1K(u*200, 200, 5)
		if err != nil {
			t.Fatal(err)
		}
		tr := q.SojournLST()
		if got := tr.F(0); math.Abs(real(got)-1) > 1e-12 {
			t.Errorf("u=%v: LST(0) = %v", u, got)
		}
		for _, x := range []float64{0.002, 0.01, 0.03, 0.08} {
			got := lst.CDF(inv, tr, x)
			want := q.SojournCDF(x)
			if math.Abs(got-want) > 1e-5 {
				t.Errorf("u=%v: CDF(%v) = %v, want %v", u, x, got, want)
			}
		}
	}
}

func TestMM1KSojournMeanMatchesMixture(t *testing.T) {
	// Mean from Little must equal the Erlang-mixture mean Σ w_j (j+1)/μ.
	for _, u := range []float64{0.4, 1.0, 2.0} {
		q, _ := NewMM1K(u*50, 50, 6)
		pk := q.BlockingProbability()
		want := 0.0
		for j := 0; j < q.K; j++ {
			want += q.StateProbability(j) / (1 - pk) * float64(j+1) / q.Mu
		}
		if got := q.MeanSojourn(); math.Abs(got-want) > 1e-10 {
			t.Errorf("u=%v: mean sojourn = %v, want %v", u, got, want)
		}
	}
}

// TestMM1KHeavyTrafficLimit: as u → ∞ the system is always full, so an
// accepted customer sees K-1 ahead and sojourn → Erlang(K, μ).
func TestMM1KHeavyTrafficLimit(t *testing.T) {
	q, _ := NewMM1K(1e6, 10, 4)
	want := 4.0 / 10.0
	if got := q.MeanSojourn(); math.Abs(got-want) > 1e-3 {
		t.Errorf("mean sojourn = %v, want %v", got, want)
	}
}

// simulateMG1K is a direct event simulation of an M/G/1/K queue, used to
// validate both the exact MG1K solver and the quality of the paper's
// M/M/1/K approximation.
func simulateMG1K(lambda float64, svc dist.Distribution, k int, n int, seed int64) (blocking, meanSojourn float64) {
	rng := rand.New(rand.NewSource(seed))
	now := 0.0
	prevDeparture := 0.0     // departure of the most recently accepted customer
	var departures []float64 // pending departure times, ascending (FCFS)
	blocked, accepted := 0, 0
	var totalSojourn float64
	for i := 0; i < n; i++ {
		now += rng.ExpFloat64() / lambda
		// Drop customers that have already departed.
		idx := sort.SearchFloat64s(departures, now)
		departures = departures[idx:]
		if len(departures) >= k {
			blocked++
			continue
		}
		start := now
		if len(departures) > 0 {
			start = math.Max(start, prevDeparture)
		}
		depart := start + svc.Sample(rng)
		departures = append(departures, depart)
		prevDeparture = depart
		totalSojourn += depart - now
		accepted++
	}
	return float64(blocked) / float64(n), totalSojourn / float64(accepted)
}

func TestMG1KExponentialMatchesMM1K(t *testing.T) {
	// With exponential service, the exact M/G/1/K solution must coincide
	// with the M/M/1/K closed forms.
	for _, u := range []float64{0.3, 0.9, 1.2} {
		mu := 120.0
		lam := u * mu
		exact, err := NewMG1K(lam, dist.Exponential{Rate: mu}, 5)
		if err != nil {
			t.Fatal(err)
		}
		closed, _ := NewMM1K(lam, mu, 5)
		for i := 0; i <= 5; i++ {
			got := exact.StateProbability(i)
			want := closed.StateProbability(i)
			if math.Abs(got-want) > 1e-10 {
				t.Errorf("u=%v: P_%d = %v, want %v", u, i, got, want)
			}
		}
		if got, want := exact.MeanSojourn(), closed.MeanSojourn(); math.Abs(got-want) > 1e-9 {
			t.Errorf("u=%v: mean sojourn %v, want %v", u, got, want)
		}
	}
}

func TestMG1KAgainstSimulation(t *testing.T) {
	svc := dist.Gamma{Shape: 2.5, Rate: 250} // mean 0.01, SCV 0.4
	const lam = 140.0
	q, err := NewMG1K(lam, svc, 4)
	if err != nil {
		t.Fatal(err)
	}
	blocking, sojourn := simulateMG1K(lam, svc, 4, 400000, 99)
	if math.Abs(q.BlockingProbability()-blocking) > 0.01 {
		t.Errorf("blocking = %v, sim %v", q.BlockingProbability(), blocking)
	}
	if math.Abs(q.MeanSojourn()-sojourn)/sojourn > 0.05 {
		t.Errorf("mean sojourn = %v, sim %v", q.MeanSojourn(), sojourn)
	}
}

// TestMM1KApproximationQuality quantifies the paper's M/M/1/K-for-M/G/1/K
// substitution on a Gamma-service disk queue: means should agree within a
// modest relative error at moderate load.
func TestMM1KApproximationQuality(t *testing.T) {
	svc := dist.Gamma{Shape: 2, Rate: 200} // mean 0.01
	for _, u := range []float64{0.4, 0.8} {
		lam := u / svc.Mean()
		exact, err := NewMG1K(lam, svc, 8)
		if err != nil {
			t.Fatal(err)
		}
		approx, _ := NewMM1K(lam, 1/svc.Mean(), 8)
		rel := math.Abs(exact.MeanSojourn()-approx.MeanSojourn()) / exact.MeanSojourn()
		if rel > 0.30 {
			t.Errorf("u=%v: approximation off by %.0f%%", u, rel*100)
		}
	}
}

func TestMG1KValidation(t *testing.T) {
	if _, err := NewMG1K(0, dist.Exponential{Rate: 1}, 3); err == nil {
		t.Error("lambda=0 should fail")
	}
	if _, err := NewMG1K(1, nil, 3); err == nil {
		t.Error("nil service should fail")
	}
	if _, err := NewMG1K(1, dist.Exponential{Rate: 1}, 0); err == nil {
		t.Error("K=0 should fail")
	}
}

func TestMG1KStateProbsSumToOne(t *testing.T) {
	for _, svc := range []dist.Distribution{
		dist.Degenerate{Value: 0.008},
		dist.Gamma{Shape: 3, Rate: 300},
		dist.Uniform{Lo: 0.001, Hi: 0.02},
	} {
		q, err := NewMG1K(90, svc, 6)
		if err != nil {
			t.Fatalf("%v: %v", svc, err)
		}
		sum := 0.0
		for i := 0; i <= q.K; i++ {
			p := q.StateProbability(i)
			if p < -1e-12 {
				t.Fatalf("%v: negative P_%d = %v", svc, i, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%v: ΣP = %v", svc, sum)
		}
		if q.StateProbability(-1) != 0 || q.StateProbability(q.K+1) != 0 {
			t.Error("out-of-range state probability should be 0")
		}
	}
}
