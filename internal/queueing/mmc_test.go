package queueing

import (
	"math"
	"testing"

	"cosmodel/internal/dist"
	"cosmodel/internal/lst"
)

func TestNewMMCValidation(t *testing.T) {
	if _, err := NewMMC(0, 1, 2); err == nil {
		t.Error("lambda=0 should fail")
	}
	if _, err := NewMMC(1, 0, 2); err == nil {
		t.Error("mu=0 should fail")
	}
	if _, err := NewMMC(1, 1, 0); err == nil {
		t.Error("c=0 should fail")
	}
	if _, err := NewMMC(4, 1, 4); err == nil {
		t.Error("rho=1 should fail")
	}
	if _, err := NewMMC(3, 1, 4); err != nil {
		t.Errorf("rho=0.75 should succeed: %v", err)
	}
}

func TestMMCWithOneServerIsMM1(t *testing.T) {
	mmc, err := NewMMC(6, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	mm1, err := NewMM1(6, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Erlang C with one server is exactly rho.
	if got := mmc.ErlangC(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("ErlangC = %v, want 0.6", got)
	}
	if math.Abs(mmc.MeanWaiting()-mm1.MeanWaiting()) > 1e-12 {
		t.Errorf("mean waiting %v vs %v", mmc.MeanWaiting(), mm1.MeanWaiting())
	}
	if math.Abs(mmc.MeanSojourn()-mm1.MeanSojourn()) > 1e-12 {
		t.Errorf("mean sojourn %v vs %v", mmc.MeanSojourn(), mm1.MeanSojourn())
	}
	for _, x := range []float64{0.05, 0.2, 0.8} {
		if math.Abs(mmc.WaitingCDF(x)-mm1.WaitingCDF(x)) > 1e-12 {
			t.Errorf("waiting CDF(%v) disagrees", x)
		}
	}
}

func TestMMCErlangCKnownValue(t *testing.T) {
	// Textbook value: a=2, c=3 -> ErlangC = (8/6)/( (1-2/3)(1+2+2) + 8/6 )
	// = (4/3)/(5/3 + 4/3)·... direct evaluation: B(3,2) via recursion, then C.
	q, err := NewMMC(2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Direct series: C = (a^c/c!)/((1-rho)·Σ_{k<c} a^k/k! + a^c/c!).
	a, c := 2.0, 3
	sum := 0.0
	fact := 1.0
	powA := 1.0
	for k := 0; k < c; k++ {
		if k > 0 {
			fact *= float64(k)
			powA *= a
		}
		sum += powA / fact
	}
	top := powA * a / (fact * float64(c))
	rho := a / float64(c)
	want := top / ((1-rho)*sum + top)
	if got := q.ErlangC(); math.Abs(got-want) > 1e-12 {
		t.Errorf("ErlangC = %v, want %v", got, want)
	}
}

func TestMMCWaitingLSTMatchesCDF(t *testing.T) {
	q, err := NewMMC(14, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	w := q.WaitingLST()
	if math.Abs(w.Mean-q.MeanWaiting()) > 1e-12 {
		t.Errorf("LST mean %v vs %v", w.Mean, q.MeanWaiting())
	}
	for _, x := range []float64{0.02, 0.1, 0.4} {
		got := lst.CDF(inv, w, x)
		want := q.WaitingCDF(x)
		if math.Abs(got-want) > 1e-5 {
			t.Errorf("waiting CDF(%v) = %v, want %v", x, got, want)
		}
	}
	s := q.SojournLST()
	if math.Abs(s.Mean-q.MeanSojourn()) > 1e-12 {
		t.Errorf("sojourn mean %v vs %v", s.Mean, q.MeanSojourn())
	}
	if got := q.MeanQueueLength(); math.Abs(got-q.Lambda*q.MeanSojourn()) > 1e-12 {
		t.Errorf("Little's law broken: %v", got)
	}
}

// TestMMCPoolVsSplit: a pooled M/M/c beats c separate M/M/1 queues fed a
// split stream — the resource-pooling inequality the what-if examples rely
// on.
func TestMMCPoolVsSplit(t *testing.T) {
	const lambda, mu, c = 32.0, 10.0, 4
	pool, err := NewMMC(lambda, mu, c)
	if err != nil {
		t.Fatal(err)
	}
	split, err := NewMM1(lambda/c, mu)
	if err != nil {
		t.Fatal(err)
	}
	if !(pool.MeanSojourn() < split.MeanSojourn()) {
		t.Errorf("pooling should win: %v vs %v", pool.MeanSojourn(), split.MeanSojourn())
	}
}

func TestMG1KSojournLSTExponentialExact(t *testing.T) {
	// With exponential service the approximation is exact: it must match
	// the M/M/1/K sojourn CDF.
	mu := 150.0
	for _, u := range []float64{0.5, 1.0, 1.6} {
		lam := u * mu
		exact, err := NewMG1K(lam, dist.Exponential{Rate: mu}, 6)
		if err != nil {
			t.Fatal(err)
		}
		closed, _ := NewMM1K(lam, mu, 6)
		tr := exact.SojournLST()
		if math.Abs(tr.Mean-closed.MeanSojourn()) > 1e-9 {
			t.Errorf("u=%v: mean %v, want %v", u, tr.Mean, closed.MeanSojourn())
		}
		for _, x := range []float64{0.005, 0.02, 0.06} {
			got := lst.CDF(inv, tr, x)
			want := closed.SojournCDF(x)
			if math.Abs(got-want) > 1e-5 {
				t.Errorf("u=%v: CDF(%v) = %v, want %v", u, x, got, want)
			}
		}
	}
}

func TestMG1KSojournLSTGammaAgainstSimulation(t *testing.T) {
	svc := dist.Gamma{Shape: 2.5, Rate: 250}
	const lam = 160.0
	q, err := NewMG1K(lam, svc, 5)
	if err != nil {
		t.Fatal(err)
	}
	tr := q.SojournLST()
	_, meanSim := simulateMG1K(lam, svc, 5, 300000, 321)
	if math.Abs(tr.Mean-meanSim)/meanSim > 0.06 {
		t.Errorf("approx mean sojourn %v, sim %v", tr.Mean, meanSim)
	}
	// Mean from the transform construction must match Little's law mean.
	if math.Abs(tr.Mean-q.MeanSojourn())/q.MeanSojourn() > 0.05 {
		t.Errorf("transform mean %v vs Little %v", tr.Mean, q.MeanSojourn())
	}
	// LST(0) = 1.
	if got := tr.F(0); math.Abs(real(got)-1) > 1e-9 {
		t.Errorf("LST(0) = %v", got)
	}
}
