package queueing

import (
	"math"
	"testing"

	"cosmodel/internal/dist"
	"cosmodel/internal/lst"
	"cosmodel/internal/numeric"
)

var inv = numeric.NewEuler()

func TestNewMG1Validation(t *testing.T) {
	svc := lst.FromDist(dist.Exponential{Rate: 10})
	if _, err := NewMG1(0, svc); err == nil {
		t.Error("lambda=0 should fail")
	}
	if _, err := NewMG1(-1, svc); err == nil {
		t.Error("negative lambda should fail")
	}
	if _, err := NewMG1(10, svc); err == nil {
		t.Error("rho=1 should fail")
	}
	if _, err := NewMG1(11, svc); err == nil {
		t.Error("rho>1 should fail")
	}
	if _, err := NewMG1(5, svc); err != nil {
		t.Errorf("rho=0.5 should succeed: %v", err)
	}
}

// TestMG1MatchesMM1 anchors the Pollaczek–Khinchin transform against the
// closed-form M/M/1 waiting and sojourn CDFs.
func TestMG1MatchesMM1(t *testing.T) {
	const lambda, mu = 6.0, 10.0
	mg1, err := NewMG1(lambda, lst.FromDist(dist.Exponential{Rate: mu}))
	if err != nil {
		t.Fatal(err)
	}
	mm1, err := NewMM1(lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	w := mg1.WaitingLST()
	s := mg1.SojournLST()
	for _, x := range []float64{0.05, 0.1, 0.3, 0.6, 1.2} {
		if got, want := lst.CDF(inv, w, x), mm1.WaitingCDF(x); math.Abs(got-want) > 1e-5 {
			t.Errorf("waiting CDF(%v) = %v, want %v", x, got, want)
		}
		if got, want := lst.CDF(inv, s, x), mm1.SojournCDF(x); math.Abs(got-want) > 1e-5 {
			t.Errorf("sojourn CDF(%v) = %v, want %v", x, got, want)
		}
	}
	// Means use a numeric second moment of the service LST (~1e-3 rel).
	if got, want := w.Mean, mm1.MeanWaiting(); math.Abs(got-want) > 1e-3*want {
		t.Errorf("mean waiting = %v, want %v", got, want)
	}
	if got, want := s.Mean, mm1.MeanSojourn(); math.Abs(got-want) > 1e-3*want {
		t.Errorf("mean sojourn = %v, want %v", got, want)
	}
	if got, want := mg1.MeanQueueLength(), mm1.MeanQueueLength(); math.Abs(got-want) > 1e-3*want {
		t.Errorf("mean queue length = %v, want %v", got, want)
	}
}

// TestMG1DeterministicService checks the M/D/1 mean waiting against the
// exact P-K value ρ·b/(2(1-ρ)).
func TestMG1DeterministicService(t *testing.T) {
	const lambda, b = 5.0, 0.1
	q, err := NewMG1(lambda, lst.FromDist(dist.Degenerate{Value: b}))
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda * b
	want := rho * b / (2 * (1 - rho))
	if got := q.WaitingLST().Mean; math.Abs(got-want) > 1e-4*want {
		t.Errorf("M/D/1 mean waiting = %v, want %v", got, want)
	}
}

// TestMG1GammaServiceMeanWaiting checks P-K mean waiting λE[S²]/(2(1-ρ))
// for Gamma service.
func TestMG1GammaServiceMeanWaiting(t *testing.T) {
	g := dist.Gamma{Shape: 2, Rate: 40} // mean .05, E[S²] = k(k+1)/l² = 6/1600
	const lambda = 10.0
	q, err := NewMG1(lambda, lst.FromDist(g))
	if err != nil {
		t.Fatal(err)
	}
	m2 := dist.SecondMoment(g)
	rho := lambda * g.Mean()
	want := lambda * m2 / (2 * (1 - rho))
	if got := q.WaitingLST().Mean; math.Abs(got-want) > 1e-3*want {
		t.Errorf("mean waiting = %v, want %v", got, want)
	}
}

func TestMG1WaitingAtomAtZero(t *testing.T) {
	// P(W = 0) = 1 - ρ; the CDF just above zero should be close to it.
	q, err := NewMG1(4, lst.FromDist(dist.Exponential{Rate: 10}))
	if err != nil {
		t.Fatal(err)
	}
	w := q.WaitingLST()
	got := lst.CDF(inv, w, 1e-6)
	if math.Abs(got-0.6) > 5e-3 {
		t.Errorf("CDF(0+) = %v, want ~0.6", got)
	}
}

func TestMM1Validation(t *testing.T) {
	if _, err := NewMM1(1, 1); err == nil {
		t.Error("rho=1 should fail")
	}
	if _, err := NewMM1(0, 1); err == nil {
		t.Error("lambda=0 should fail")
	}
	if _, err := NewMM1(1, 0); err == nil {
		t.Error("mu=0 should fail")
	}
	q, err := NewMM1(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Utilization(); math.Abs(got-0.3) > 1e-15 {
		t.Errorf("rho = %v", got)
	}
	if got := q.WaitingCDF(-1); got != 0 {
		t.Errorf("waiting CDF at t<0 = %v", got)
	}
	if got := q.WaitingCDF(0); math.Abs(got-0.7) > 1e-15 {
		t.Errorf("waiting CDF at 0 = %v, want 1-rho", got)
	}
	if got := q.MeanQueueLength(); math.Abs(got-3.0/7.0) > 1e-12 {
		t.Errorf("mean queue length = %v", got)
	}
}
