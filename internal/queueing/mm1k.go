package queueing

import (
	"fmt"
	"math"
	"math/cmplx"

	"cosmodel/internal/lst"
)

// MM1K is an M/M/1/K queue: Poisson arrivals at rate Lambda, exponential
// service at rate Mu, and at most K customers in the system (arrivals that
// find K customers are lost). The paper uses it, with K = Nbe, as the
// tractable approximation of the disk queue shared by the Nbe processes of a
// storage device.
type MM1K struct {
	Lambda float64
	Mu     float64
	K      int
}

// NewMM1K validates and constructs an M/M/1/K queue. Unlike the infinite
// queues it is stable for any utilization, so only positivity is checked.
func NewMM1K(lambda, mu float64, k int) (MM1K, error) {
	q := MM1K{Lambda: lambda, Mu: mu, K: k}
	if lambda <= 0 || mu <= 0 || k < 1 {
		return q, fmt.Errorf("%w: lambda=%v, mu=%v, K=%d", ErrBadParam, lambda, mu, k)
	}
	return q, nil
}

// Utilization returns the offered load u = λ/μ (which may exceed 1).
func (q MM1K) Utilization() float64 { return q.Lambda / q.Mu }

// critical reports whether the queue sits exactly at u = 1, where the
// geometric-series closed forms have removable singularities and the
// uniform limits apply. Near-but-not-at 1 needs no special casing: the
// closed forms below are written in terms of d = (λ-μ)/μ, x = log1p(d) and
// expm1, which stay fully accurate through the former cancellation band
// (the old guard |u-1| < 1e-9 left u ≈ 1±1e-6 computing (1-u)/(1-u^{K+1})
// by subtracting nearly equal quantities).
func (q MM1K) critical() bool { return q.Lambda == q.Mu }

// overUnity returns d = u - 1 computed as (λ-μ)/μ. Subtracting the rates
// first is exact when they are close (Sterbenz), so d keeps full relative
// precision where u = λ/μ followed by u-1 would lose it.
func (q MM1K) overUnity() float64 { return (q.Lambda - q.Mu) / q.Mu }

// logU returns log(u) accurately in both regimes: log1p(d) near the
// critical point (where forming u would round away the distance to 1) and
// log(λ/μ) elsewhere (log1p near d = -1 amplifies the rounding of d).
func (q MM1K) logU() float64 {
	d := q.overUnity()
	if math.Abs(d) < 0.5 {
		return math.Log1p(d)
	}
	return math.Log(q.Lambda / q.Mu)
}

// StateProbability returns P_i, the steady-state probability of i customers
// in the system, for i in [0, K]:
// P_i = (1-u)·u^i / (1-u^{K+1}), or 1/(K+1) when u = 1.
//
// With d = u-1 and x = log(u) = log1p(d) this is d·e^{ix}/expm1((K+1)x),
// which is free of cancellation for any u ≠ 1; for u > 1 the algebraically
// identical form -d·e^{(i-K-1)x}/expm1(-(K+1)x) keeps every exponent
// non-positive so nothing overflows.
func (q MM1K) StateProbability(i int) float64 {
	if i < 0 || i > q.K {
		return 0
	}
	if q.critical() {
		return 1 / float64(q.K+1)
	}
	d := q.overUnity()
	x := q.logU()
	m := float64(q.K + 1)
	if x > 0 {
		return -d * math.Exp((float64(i)-m)*x) / math.Expm1(-m*x)
	}
	return d * math.Exp(float64(i)*x) / math.Expm1(m*x)
}

// BlockingProbability returns P_K, the fraction of arrivals lost.
func (q MM1K) BlockingProbability() float64 { return q.StateProbability(q.K) }

// meanNumberSeriesHalfWidth bounds |x|·(K+1) for the series branch of
// MeanNumber. At the boundary the truncation error of the odd series and
// the rounding error of the subtractive closed form are both below ~1e-13
// relative, so the two branches agree to near machine precision where they
// meet.
const meanNumberSeriesHalfWidth = 0.01

// MeanNumber returns N, the mean number of customers in the system,
// N = u/(1-u) - (K+1)·u^{K+1}/(1-u^{K+1}), or K/2 when u = 1.
//
// The two terms both grow like 1/(u-1) near the critical point and cancel
// to the finite limit K/2, so the closed form (rewritten overflow-free as
// 1/expm1(-x) - M/expm1(-Mx) with M = K+1, x = log(u)) loses ~eps/(M·|x|)
// relative precision as u → 1. Inside |x|·M < meanNumberSeriesHalfWidth the
// expansion around the critical point is used instead:
//
//	N = K/2 + x·K(K+2)/12 - x³·(M⁴-1)/720 + O(x⁵)
//
// (odd in x apart from the constant, since N(1/u) = K - N(u)).
func (q MM1K) MeanNumber() float64 {
	k := float64(q.K)
	if q.critical() {
		return k / 2
	}
	m := k + 1
	x := q.logU()
	if math.Abs(x)*m < meanNumberSeriesHalfWidth {
		return k/2 + x*k*(k+2)/12 - x*x*x*(m*m*m*m-1)/720
	}
	return 1/math.Expm1(-x) - m/math.Expm1(-m*x)
}

// MeanSojourn returns the mean response time of accepted customers by
// Little's law: N / (λ(1-P_K)).
func (q MM1K) MeanSojourn() float64 {
	return q.MeanNumber() / (q.Lambda * (1 - q.BlockingProbability()))
}

// SojournLST returns the Laplace–Stieltjes transform of the sojourn time of
// an accepted customer (the paper's "disk service time" seen by a process):
//
//	L[S](s) = (v·P0/(1-P_K)) · (1-(λ/(v+s))^K) / (v - λ + s)
//
// where v = μ. The removable singularity at s = λ - v (for u > 1) and the
// s = 0 endpoint are handled explicitly.
func (q MM1K) SojournLST() lst.Transform {
	v := q.Mu
	lam := q.Lambda
	k := q.K
	p0 := q.StateProbability(0)
	pk := q.BlockingProbability()
	mean := q.MeanSojourn()
	return lst.Transform{
		F: func(s complex128) complex128 {
			if s == 0 {
				return 1
			}
			x := complex(lam, 0) / (complex(v, 0) + s)
			den := complex(v-lam, 0) + s
			if cmplx.Abs(den) < 1e-12 {
				// lim_{den→0}: the sojourn is Erlang-mixture; use the
				// explicit sum instead of the closed form.
				return q.sojournSum(s)
			}
			num := 1 - cmplx.Pow(x, complex(float64(k), 0))
			return complex(v*p0/(1-pk), 0) * num / den
		},
		Mean: mean,
	}
}

// sojournSum evaluates the sojourn LST as the explicit Erlang mixture
// Σ_{j=0}^{K-1} [P_j/(1-P_K)] (v/(v+s))^{j+1}; used near the removable
// singularity of the closed form.
func (q MM1K) sojournSum(s complex128) complex128 {
	v := complex(q.Mu, 0)
	x := v / (v + s)
	pk := q.BlockingProbability()
	var sum complex128
	pow := x
	for j := 0; j < q.K; j++ {
		sum += complex(q.StateProbability(j)/(1-pk), 0) * pow
		pow *= x
	}
	return sum
}

// SojournCDF returns the exact sojourn CDF of an accepted customer: the
// P_j/(1-P_K)-weighted mixture of Erlang(j+1, μ) CDFs.
func (q MM1K) SojournCDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	pk := q.BlockingProbability()
	total := 0.0
	for j := 0; j < q.K; j++ {
		w := q.StateProbability(j) / (1 - pk)
		total += w * erlangCDF(j+1, q.Mu, t)
	}
	return total
}

// erlangCDF is the CDF of an Erlang(n, rate) distribution:
// 1 - e^{-rate·t} Σ_{i=0}^{n-1} (rate·t)^i/i!.
func erlangCDF(n int, rate, t float64) float64 {
	x := rate * t
	sum := 0.0
	term := 1.0
	for i := 0; i < n; i++ {
		sum += term
		term *= x / float64(i+1)
	}
	return 1 - math.Exp(-x)*sum
}
