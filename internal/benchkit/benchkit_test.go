package benchkit

import (
	"math"
	"strings"
	"testing"
)

func TestSummarizeAbsErrors(t *testing.T) {
	pred := []float64{0.9, 0.8, 0.5}
	obs := []float64{0.85, 0.9, 0.5}
	s := SummarizeAbsErrors(pred, obs)
	if s.N != 3 {
		t.Fatalf("n = %d", s.N)
	}
	if math.Abs(s.Best-0) > 1e-12 {
		t.Errorf("best = %v", s.Best)
	}
	if math.Abs(s.Worst-0.1) > 1e-12 {
		t.Errorf("worst = %v", s.Worst)
	}
	if math.Abs(s.Mean-0.05) > 1e-12 {
		t.Errorf("mean = %v", s.Mean)
	}
}

func TestSummarizeAbsErrorsSkipsNaN(t *testing.T) {
	s := SummarizeAbsErrors([]float64{0.5, math.NaN()}, []float64{0.4, 0.2})
	if s.N != 1 {
		t.Errorf("n = %d", s.N)
	}
	empty := SummarizeAbsErrors(nil, nil)
	if !math.IsNaN(empty.Mean) {
		t.Error("empty summary should be NaN")
	}
	// Length mismatch: extra predictions ignored.
	s2 := SummarizeAbsErrors([]float64{0.5, 0.6}, []float64{0.4})
	if s2.N != 1 {
		t.Errorf("mismatched n = %d", s2.N)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("scenario", "sla", "error")
	tab.AddRow("S1", "10ms", 0.0291)
	tab.AddRow("S16", "100ms", 0.0196)
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "scenario") || !strings.Contains(out, "S16") {
		t.Errorf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}

func TestAsciiPlot(t *testing.T) {
	s := NewSeries("rate", "observed", "predicted")
	for i := 0; i < 20; i++ {
		x := float64(i) * 10
		if err := s.AddRow(x, 1-float64(i)*0.03, 1-float64(i)*0.035); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	if err := (AsciiPlot{Width: 40, Height: 10}).Render(&b, s); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "o=observed") || !strings.Contains(out, "+=predicted") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "+") {
		t.Error("marks missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+10+2 { // legend + body + axis + x labels
		t.Errorf("plot has %d lines", len(lines))
	}
	// Degenerate inputs fail cleanly.
	if err := (AsciiPlot{}).Render(&b, NewSeries("x")); err == nil {
		t.Error("single-column series should fail")
	}
	if err := (AsciiPlot{}).Render(&b, NewSeries("x", "y")); err == nil {
		t.Error("empty series should fail")
	}
}

func TestAsciiPlotHandlesNaNAndFlat(t *testing.T) {
	s := NewSeries("x", "y")
	if err := s.AddRow(1, math.NaN()); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRow(1, 0.5); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := (AsciiPlot{Width: 20, Height: 5}).Render(&b, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "o") {
		t.Error("flat single point should still render")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("rate", "observed", "predicted")
	if err := s.AddRow(10, 0.95, 0.94); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRow(20, 0.91, 0.90); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRow(1, 2); err == nil {
		t.Error("wrong arity should fail")
	}
	if s.Len() != 2 {
		t.Errorf("len = %d", s.Len())
	}
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "rate,observed,predicted\n10,0.95,0.94\n20,0.91,0.9\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
	empty := NewSeries()
	if empty.Len() != 0 {
		t.Error("empty series should have no rows")
	}
}
