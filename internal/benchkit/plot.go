package benchkit

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// AsciiPlot renders series columns as a terminal line plot: the first
// column is the x axis, every other column a labeled curve. It keeps
// cosbench's figure output readable without leaving the terminal.
type AsciiPlot struct {
	// Width and Height are the plot body dimensions in characters.
	Width, Height int
	// YMin and YMax fix the y range; leave both zero to auto-scale.
	YMin, YMax float64
}

// plotMarks assigns one rune per curve, cycling if there are many.
var plotMarks = []rune{'o', '+', 'x', '*', '#', '@', '%', '~'}

// Render draws the series. The series must have at least two columns and
// one row.
func (p AsciiPlot) Render(w io.Writer, s *Series) error {
	if len(s.Columns) < 2 || s.Len() == 0 {
		return fmt.Errorf("benchkit: plot needs an x column, one curve and data")
	}
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 16
	}
	xs := s.Columns[0]
	xmin, xmax := minMax(xs)
	ymin, ymax := p.YMin, p.YMax
	if ymin == 0 && ymax == 0 {
		ymin, ymax = math.Inf(1), math.Inf(-1)
		for _, col := range s.Columns[1:] {
			lo, hi := minMax(col)
			ymin = math.Min(ymin, lo)
			ymax = math.Max(ymax, hi)
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for ci, col := range s.Columns[1:] {
		mark := plotMarks[ci%len(plotMarks)]
		for i := range col {
			if math.IsNaN(col[i]) {
				continue
			}
			cx := int(math.Round((xs[i] - xmin) / (xmax - xmin) * float64(width-1)))
			cy := int(math.Round((col[i] - ymin) / (ymax - ymin) * float64(height-1)))
			if cx < 0 || cx >= width || cy < 0 || cy >= height {
				continue
			}
			row := height - 1 - cy
			grid[row][cx] = mark
		}
	}
	// Legend.
	var legend []string
	for ci, name := range s.Names[1:] {
		legend = append(legend, fmt.Sprintf("%c=%s", plotMarks[ci%len(plotMarks)], name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(legend, "  ")); err != nil {
		return err
	}
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3g", ymax)
		case height - 1:
			label = fmt.Sprintf("%8.3g", ymin)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	axis := strings.Repeat("-", width)
	if _, err := fmt.Fprintf(w, "         +%s\n", axis); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "          %-10.4g%s%10.4g  (%s)\n",
		xmin, strings.Repeat(" ", maxInt(0, width-20)), xmax, s.Names[0])
	return err
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
