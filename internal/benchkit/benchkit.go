// Package benchkit provides the small reporting toolkit shared by the
// experiment drivers: absolute-error summaries, aligned ASCII tables and
// CSV series output.
package benchkit

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// ErrorSummary aggregates absolute prediction errors the way the paper's
// Table I does: best case, worst case and mean.
type ErrorSummary struct {
	Best  float64
	Worst float64
	Mean  float64
	N     int
}

// SummarizeAbsErrors computes the summary of |predicted - observed| over
// paired samples; entries where either value is NaN are skipped.
func SummarizeAbsErrors(predicted, observed []float64) ErrorSummary {
	s := ErrorSummary{Best: math.Inf(1), Worst: math.Inf(-1)}
	total := 0.0
	for i := range predicted {
		if i >= len(observed) {
			break
		}
		if math.IsNaN(predicted[i]) || math.IsNaN(observed[i]) {
			continue
		}
		e := math.Abs(predicted[i] - observed[i])
		if e < s.Best {
			s.Best = e
		}
		if e > s.Worst {
			s.Worst = e
		}
		total += e
		s.N++
	}
	if s.N == 0 {
		return ErrorSummary{Best: math.NaN(), Worst: math.NaN(), Mean: math.NaN()}
	}
	s.Mean = total / float64(s.N)
	return s
}

// Table renders aligned ASCII tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v unless already strings.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// Series is a named set of columns of equal length, writable as CSV.
type Series struct {
	Names   []string
	Columns [][]float64
}

// NewSeries creates a series with the given column names.
func NewSeries(names ...string) *Series {
	return &Series{Names: names, Columns: make([][]float64, len(names))}
}

// AddRow appends one value per column.
func (s *Series) AddRow(values ...float64) error {
	if len(values) != len(s.Names) {
		return fmt.Errorf("benchkit: row has %d values, series has %d columns", len(values), len(s.Names))
	}
	for i, v := range values {
		s.Columns[i] = append(s.Columns[i], v)
	}
	return nil
}

// Len returns the number of rows.
func (s *Series) Len() int {
	if len(s.Columns) == 0 {
		return 0
	}
	return len(s.Columns[0])
}

// WriteCSV emits the series as CSV with a header row.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(s.Names, ",")); err != nil {
		return err
	}
	for r := 0; r < s.Len(); r++ {
		cells := make([]string, len(s.Columns))
		for c := range s.Columns {
			cells[c] = fmt.Sprintf("%g", s.Columns[c][r])
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}
