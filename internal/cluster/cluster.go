// Package cluster is the sharded, replicated serving tier: a stateless
// router (cmd/cosrouter) in front of N shard-mode cosserve instances.
// Storage devices are assigned to shard nodes through the same Swift-style
// consistent-hash ring (internal/ring) the paper's system uses for objects —
// here the ring's "devices" are cluster nodes and each partition's replica
// chain is a primary plus warm standbys. The router dual-writes every
// ingested observation to the whole replica chain of its device, so a
// standby holds the same sliding windows and calibration state as its
// primary and can answer the moment the primary dies.
//
// Predictions merge exactly: the paper's mixture CDF (Eq. 3) is linear in
// the per-device weighted response CDFs, and the frontend sojourn factor
// depends only on the tier-wide total rate, so each shard evaluates its
// device slice under the router-supplied global rate and returns an
// additive partial (Σ rate_j·F_j(sla), Σ rate_j). The router's merge is a
// division — see MergePartials. When a shard's whole replica chain is down
// the router keeps serving from the survivors: the estimate renormalizes
// over the live rate, the response is flagged degraded, and per-SLA bounds
// widen to bracket what the missing devices could have contributed.
package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"cosmodel/internal/retry"
	"cosmodel/internal/ring"
)

// Cluster errors.
var (
	// ErrBadConfig reports an invalid cluster configuration.
	ErrBadConfig = errors.New("cluster: invalid configuration")
	// ErrNoQuorum reports that no shard could answer for any device.
	ErrNoQuorum = errors.New("cluster: no shard reachable")
)

// Config describes the router's view of the tier. Start from DefaultConfig.
type Config struct {
	// Nodes are the shard base URLs ("http://host:port"); the slice index is
	// the node's ring id.
	Nodes []string
	// Replicas is the replica-chain length per partition: 1 primary plus
	// Replicas-1 warm standbys. Requires len(Nodes) >= Replicas.
	Replicas int
	// Partitions is the ring partition count (a power of two).
	Partitions int
	// Seed fixes the ring assignment.
	Seed int64
	// Devices is the number of storage devices reporting to the tier.
	Devices int
	// SLAs are the default bounds (seconds) for /predict queries naming none.
	SLAs []float64
	// Window is the span (seconds) of the router's per-device rate tracker —
	// the source of the global frontend rate. Matches the shards' window.
	Window float64
	// HedgeDelay is how long the shard client waits on the preferred replica
	// before racing the request to the next one. 0 means no hedging (only
	// failover on error).
	HedgeDelay time.Duration
	// ProbeInterval is the health prober's period; 0 disables the prober
	// (tests drive probes explicitly).
	ProbeInterval time.Duration
	// FailThreshold is how many consecutive probe failures mark a node down.
	FailThreshold int
	// MaxInflight bounds concurrently fanned-out /predict and /advise
	// queries; excess is shed with 503 like a shard would.
	MaxInflight int
	// Retry is the per-attempt retry schedule for shard calls.
	Retry retry.Policy
	// Client issues the shard HTTP requests; nil uses a dedicated client
	// with sane timeouts.
	Client *http.Client
	// Now supplies wall-clock time; nil means time.Now.
	Now func() time.Time
	// Logf receives diagnostics; nil means the standard library logger.
	Logf func(format string, args ...any)
}

// DefaultConfig returns a router configuration for the given shard nodes
// and deployment size: 2 replicas (primary + one warm standby), 64
// partitions, 25ms hedging, 1s probing with 2-strike failure detection.
func DefaultConfig(nodes []string, devices int) Config {
	return Config{
		Nodes:         nodes,
		Replicas:      2,
		Partitions:    64,
		Devices:       devices,
		SLAs:          []float64{0.010, 0.050, 0.100},
		Window:        60,
		HedgeDelay:    25 * time.Millisecond,
		ProbeInterval: time.Second,
		FailThreshold: 2,
		MaxInflight:   64,
		Retry:         retry.DefaultPolicy(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case len(c.Nodes) == 0:
		return fmt.Errorf("%w: need at least one shard node", ErrBadConfig)
	case c.Replicas < 1 || c.Replicas > len(c.Nodes):
		return fmt.Errorf("%w: replicas %d outside [1,%d]", ErrBadConfig, c.Replicas, len(c.Nodes))
	case c.Devices < 1:
		return fmt.Errorf("%w: need at least one storage device", ErrBadConfig)
	case len(c.SLAs) == 0:
		return fmt.Errorf("%w: at least one default SLA required", ErrBadConfig)
	case c.Window <= 0:
		return fmt.Errorf("%w: window must be positive", ErrBadConfig)
	case c.MaxInflight < 1:
		return fmt.Errorf("%w: need at least one in-flight slot", ErrBadConfig)
	case c.FailThreshold < 1:
		return fmt.Errorf("%w: fail threshold must be at least 1", ErrBadConfig)
	}
	for _, s := range c.SLAs {
		if s <= 0 {
			return fmt.Errorf("%w: SLA %v must be positive", ErrBadConfig, s)
		}
	}
	for i, n := range c.Nodes {
		if n == "" {
			return fmt.Errorf("%w: node %d has an empty URL", ErrBadConfig, i)
		}
	}
	_, err := ring.New(c.Partitions, c.Replicas, len(c.Nodes), c.Seed)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return nil
}

func (c Config) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

// Topology maps storage devices to shard replica chains through the ring.
type Topology struct {
	ring  *ring.Ring
	nodes int
}

// NewTopology builds the device→shard assignment.
func NewTopology(cfg Config) (*Topology, error) {
	r, err := ring.New(cfg.Partitions, cfg.Replicas, len(cfg.Nodes), cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return &Topology{ring: r, nodes: len(cfg.Nodes)}, nil
}

// ChainFor returns the replica chain (node ids, primary first) responsible
// for a storage device.
func (t *Topology) ChainFor(device int) []int {
	devs := t.ring.ReplicasOf(t.ring.PartitionOfID(uint64(device)))
	chain := make([]int, len(devs))
	for i, d := range devs {
		chain[i] = int(d)
	}
	return chain
}

// CoverageGroup is one fan-out target: the live node chain (preferred
// first) and the storage devices it answers for.
type CoverageGroup struct {
	// Chain is the live portion of the replica chain, preferred node first.
	Chain []int
	// Devices are the storage devices this chain serves.
	Devices []int
	// Primary reports whether the preferred node is the chain's original
	// primary (false: the group is already failed over to a standby).
	Primary bool
}

// Coverage partitions the devices [0,devices) into fan-out groups given the
// current node liveness. Devices whose entire replica chain is down are
// returned in lost. Groups are keyed by their live chain, so two devices
// sharing the same surviving replicas travel in one request; group order is
// deterministic (sorted by chain signature) for stable tests and logs.
func (t *Topology) Coverage(devices int, up func(node int) bool) (groups []CoverageGroup, lost []int) {
	byChain := map[string]*CoverageGroup{}
	for d := 0; d < devices; d++ {
		full := t.ChainFor(d)
		var live []int
		for _, n := range full {
			if up(n) {
				live = append(live, n)
			}
		}
		if len(live) == 0 {
			lost = append(lost, d)
			continue
		}
		key := fmt.Sprint(live)
		g := byChain[key]
		if g == nil {
			g = &CoverageGroup{Chain: live, Primary: live[0] == full[0]}
			byChain[key] = g
		}
		g.Devices = append(g.Devices, d)
	}
	keys := make([]string, 0, len(byChain))
	for k := range byChain {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		groups = append(groups, *byChain[k])
	}
	return groups, lost
}
