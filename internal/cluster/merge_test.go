package cluster

import (
	"errors"
	"math"
	"testing"

	"cosmodel/internal/serve"
)

func TestMergeSinglePartialPassthrough(t *testing.T) {
	p := Partial{WeightedSums: []float64{30, 60, 90}, Rate: 100}
	m, err := MergePartials([]Partial{p}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{0.3, 0.6, 0.9} {
		if math.Abs(m.Estimates[i]-want) > 1e-12 {
			t.Errorf("estimate[%d] = %v, want %v", i, m.Estimates[i], want)
		}
		if m.Low[i] != m.Estimates[i] || m.High[i] != m.Estimates[i] {
			t.Errorf("healthy bounds must collapse: [%v,%v] around %v",
				m.Low[i], m.High[i], m.Estimates[i])
		}
	}
	if m.LiveRate != 100 || m.LostRate != 0 || m.Saturated {
		t.Errorf("merged meta: %+v", m)
	}
}

func TestMergeIsRateWeighted(t *testing.T) {
	a := Partial{WeightedSums: []float64{90}, Rate: 100}  // CDF 0.9
	b := Partial{WeightedSums: []float64{150}, Rate: 300} // CDF 0.5
	m, err := MergePartials([]Partial{a, b}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := (90.0 + 150.0) / 400.0 // 0.6, not the unweighted mean 0.7
	if math.Abs(m.Estimates[0]-want) > 1e-12 {
		t.Errorf("estimate %v, want rate-weighted %v", m.Estimates[0], want)
	}
}

func TestMergeLostRateWidensBounds(t *testing.T) {
	p := Partial{WeightedSums: []float64{60}, Rate: 100}
	m, err := MergePartials([]Partial{p}, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Estimate renormalizes over the survivors; bounds bracket the loss.
	if math.Abs(m.Estimates[0]-0.6) > 1e-12 {
		t.Errorf("estimate %v", m.Estimates[0])
	}
	if math.Abs(m.Low[0]-0.3) > 1e-12 { // lost requests all miss
		t.Errorf("low %v, want 0.3", m.Low[0])
	}
	if math.Abs(m.High[0]-0.8) > 1e-12 { // lost requests all meet
		t.Errorf("high %v, want 0.8", m.High[0])
	}
	if !(m.Low[0] <= m.Estimates[0] && m.Estimates[0] <= m.High[0]) {
		t.Errorf("estimate %v outside its own bracket [%v,%v]",
			m.Estimates[0], m.Low[0], m.High[0])
	}
}

func TestMergeSaturationPropagates(t *testing.T) {
	a := Partial{WeightedSums: []float64{50}, Rate: 100}
	b := Partial{WeightedSums: []float64{0}, Rate: 100, Saturated: true}
	m, err := MergePartials([]Partial{a, b}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Saturated {
		t.Error("one saturated shard must saturate the merged answer")
	}
}

func TestMergeRejectsPoison(t *testing.T) {
	cases := []struct {
		parts []Partial
		lost  float64
		n     int
	}{
		{nil, 0, 0}, // no SLAs
		{[]Partial{{WeightedSums: []float64{1, 2}, Rate: 1}}, 0, 1},        // grid mismatch
		{[]Partial{{WeightedSums: []float64{1}, Rate: -1}}, 0, 1},          // negative rate
		{[]Partial{{WeightedSums: []float64{math.NaN()}, Rate: 1}}, 0, 1},  // NaN sum
		{[]Partial{{WeightedSums: []float64{-1}, Rate: 1}}, 0, 1},          // negative sum
		{[]Partial{{WeightedSums: []float64{1}, Rate: 1}}, math.Inf(1), 1}, // inf lost
	}
	for i, c := range cases {
		if _, err := MergePartials(c.parts, c.lost, c.n); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestMergeClampsToUnitInterval(t *testing.T) {
	// Sums slightly above rate (floating accumulation) must not leak a
	// probability above 1.
	p := Partial{WeightedSums: []float64{100.0000001}, Rate: 100}
	m, err := MergePartials([]Partial{p}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Estimates[0] > 1 || m.High[0] > 1 {
		t.Errorf("leaked probability above 1: %+v", m)
	}
}

func TestCoverageAllUp(t *testing.T) {
	cfg := DefaultConfig([]string{"a", "b", "c"}, 8)
	topo, err := NewTopology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	groups, lost := topo.Coverage(cfg.Devices, func(int) bool { return true })
	if len(lost) != 0 {
		t.Fatalf("healthy tier lost devices %v", lost)
	}
	seen := map[int]bool{}
	for _, g := range groups {
		if !g.Primary {
			t.Errorf("healthy group not led by its primary: %+v", g)
		}
		if len(g.Chain) != cfg.Replicas {
			t.Errorf("group chain %v, want %d replicas", g.Chain, cfg.Replicas)
		}
		for _, d := range g.Devices {
			if seen[d] {
				t.Errorf("device %d in two groups", d)
			}
			seen[d] = true
		}
	}
	for d := 0; d < cfg.Devices; d++ {
		if !seen[d] {
			t.Errorf("device %d uncovered", d)
		}
	}
}

func TestCoverageFailoverAndLoss(t *testing.T) {
	cfg := DefaultConfig([]string{"a", "b", "c"}, 8)
	topo, err := NewTopology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Kill device 0's whole chain: device 0 must be lost, and every device
	// sharing no live replica with it too; survivors regroup on the third
	// node.
	dead := map[int]bool{}
	for _, n := range topo.ChainFor(0) {
		dead[n] = true
	}
	up := func(n int) bool { return !dead[n] }
	groups, lost := topo.Coverage(cfg.Devices, up)
	foundLost := false
	for _, d := range lost {
		if d == 0 {
			foundLost = true
		}
	}
	if !foundLost {
		t.Fatalf("device 0's chain %v is dead but device 0 not lost (lost=%v)",
			topo.ChainFor(0), lost)
	}
	for _, g := range groups {
		for _, n := range g.Chain {
			if dead[n] {
				t.Errorf("dead node %d in live chain %v", n, g.Chain)
			}
		}
	}
	// Determinism: same liveness view, same grouping.
	groups2, lost2 := topo.Coverage(cfg.Devices, up)
	if len(groups2) != len(groups) || len(lost2) != len(lost) {
		t.Errorf("coverage not deterministic: %d/%d groups, %d/%d lost",
			len(groups), len(groups2), len(lost), len(lost2))
	}
}

func TestRateTrackerWindow(t *testing.T) {
	rt := newRateTracker(2, 20)
	rt.add(serve.Observation{Device: 0, Interval: 10, Requests: 500}) // 50/s
	rt.add(serve.Observation{Device: 1, Interval: 10, Requests: 300}) // 30/s
	if got := rt.totalRate(); math.Abs(got-80) > 1e-9 {
		t.Errorf("total rate %v, want 80", got)
	}
	// Newer observations push the first out of the 20s window.
	rt.add(serve.Observation{Device: 0, Interval: 10, Requests: 1000})
	rt.add(serve.Observation{Device: 0, Interval: 10, Requests: 1000})
	if got := rt.rate(0); math.Abs(got-100) > 1e-9 {
		t.Errorf("windowed rate %v, want 100 (old entry evicted)", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig([]string{"a", "b"}, 4)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Nodes = nil },
		func(c *Config) { c.Replicas = 3 },
		func(c *Config) { c.Replicas = 0 },
		func(c *Config) { c.Devices = 0 },
		func(c *Config) { c.SLAs = nil },
		func(c *Config) { c.SLAs = []float64{-1} },
		func(c *Config) { c.Window = 0 },
		func(c *Config) { c.MaxInflight = 0 },
		func(c *Config) { c.FailThreshold = 0 },
		func(c *Config) { c.Partitions = 3 },
		func(c *Config) { c.Nodes = []string{"a", ""} },
	}
	for i, mutate := range bad {
		c := DefaultConfig([]string{"a", "b"}, 4)
		mutate(&c)
		if err := c.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}
