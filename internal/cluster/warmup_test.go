package cluster

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"cosmodel/internal/serve"
)

// TestRateTrackerSeed pins the seeding contract: only positive finite rates
// install a synthetic window, and live data always wins.
func TestRateTrackerSeed(t *testing.T) {
	rt := newRateTracker(2, 60)
	for _, bad := range []float64{0, -3, math.NaN(), math.Inf(1)} {
		if rt.seed(0, bad) {
			t.Fatalf("seed accepted rate %v", bad)
		}
	}
	if !rt.seed(0, 40) {
		t.Fatal("seed rejected a valid rate")
	}
	if got := rt.rate(0); math.Abs(got-40) > 1e-9 {
		t.Fatalf("seeded rate = %v, want 40", got)
	}
	// A device already holding forwarded observations must be untouched.
	rt.add(obsAtRate(1, 80))
	if rt.seed(1, 5) {
		t.Fatal("seed overwrote live data")
	}
	if got := rt.rate(1); math.Abs(got-80) > 1e-9 {
		t.Fatalf("live rate = %v, want 80", got)
	}
	// Re-seeding a seeded device is also a no-op (the synthetic entry
	// counts as span until it ages out).
	if rt.seed(0, 999) {
		t.Fatal("seed overwrote an earlier seed")
	}
}

// TestRouterWarmupSeedsRestart simulates a router restart: shards hold a
// full window of dual-written state, a fresh router over the same nodes
// knows nothing — /predict says not-ready and healthz reports no ingest —
// and one WarmupOnce round rebuilds the tracker from /shard/state so the
// restarted router serves identical predictions without waiting a window.
func TestRouterWarmupSeedsRestart(t *testing.T) {
	const devices = 4
	tr := newTier(t, 3, devices)
	ingestTier(t, tr, devices)

	var want PredictResponse
	if code := getJSON(t, tr.routerSrv.URL+"/predict", &want); code != http.StatusOK {
		t.Fatalf("predict through original router: status %d", code)
	}
	wantRate := tr.router.rates.totalRate()
	if wantRate <= 0 {
		t.Fatal("original router has no tracked rate")
	}

	// "Restart": a second router over the same shard URLs, empty tracker.
	restarted, err := NewRouter(tr.router.cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs := httptest.NewServer(restarted.Handler())
	defer rs.Close()

	if got := restarted.rates.totalRate(); got != 0 {
		t.Fatalf("fresh router totalRate = %v, want 0", got)
	}
	if code := getJSON(t, rs.URL+"/predict", nil); code != http.StatusConflict {
		t.Fatalf("cold predict status %d, want 409", code)
	}
	var h serve.HealthResponse
	if code := getJSON(t, rs.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if h.Ready {
		t.Fatal("cold restarted router claims ready")
	}

	if seeded := restarted.WarmupOnce(context.Background()); seeded != devices {
		t.Fatalf("warmup seeded %d devices, want %d", seeded, devices)
	}
	// Warm again: a fully warm tracker is a no-op.
	if seeded := restarted.WarmupOnce(context.Background()); seeded != 0 {
		t.Fatalf("second warmup seeded %d devices, want 0", seeded)
	}
	got := restarted.rates.totalRate()
	// Shards quantize rates over their own window, so allow 1%.
	if math.Abs(got-wantRate) > 0.01*wantRate {
		t.Fatalf("warmed totalRate = %v, want ~%v", got, wantRate)
	}

	if code := getJSON(t, rs.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if !h.Ready {
		t.Fatalf("warmed router not ready: %+v", h)
	}
	var resp PredictResponse
	if code := getJSON(t, rs.URL+"/predict", &resp); code != http.StatusOK {
		t.Fatalf("warmed predict status %d", code)
	}
	if len(resp.Predictions) != len(want.Predictions) {
		t.Fatalf("got %d predictions, want %d", len(resp.Predictions), len(want.Predictions))
	}
	for i, p := range resp.Predictions {
		// The seeded rate differs from the live one only by window
		// quantization, so the merged curve should match closely.
		if math.Abs(p.MeetRatio-want.Predictions[i].MeetRatio) > 1e-3 {
			t.Errorf("sla %v: warmed %v, original %v",
				p.SLA, p.MeetRatio, want.Predictions[i].MeetRatio)
		}
	}
}

// TestRouterWarmupLiveDataWins: observations forwarded before the warmup
// answer arrives take precedence — only the still-silent devices are seeded.
func TestRouterWarmupLiveDataWins(t *testing.T) {
	const devices = 4
	tr := newTier(t, 2, devices)
	ingestTier(t, tr, devices)

	restarted, err := NewRouter(tr.router.cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs := httptest.NewServer(restarted.Handler())
	defer rs.Close()

	// Device 0 reports through the restarted router before warmup runs,
	// at a rate very different from what the shards remember.
	live := obsAtRate(0, 500)
	if code := postJSON(t, rs.URL+"/ingest",
		serve.IngestRequest{Observations: []serve.Observation{live}}, nil); code != http.StatusOK {
		t.Fatalf("live ingest status %d", code)
	}
	if seeded := restarted.WarmupOnce(context.Background()); seeded != devices-1 {
		t.Fatalf("warmup seeded %d devices, want %d", seeded, devices-1)
	}
	if got := restarted.rates.rate(0); math.Abs(got-500) > 1e-9 {
		t.Fatalf("device 0 rate = %v, want the live 500", got)
	}
}
