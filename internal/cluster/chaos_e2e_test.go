package cluster

import (
	"context"
	"math"
	"net/http"
	"testing"

	"cosmodel/internal/experiments"
	"cosmodel/internal/serve"
	"cosmodel/internal/simstore"
)

// TestChaosClusterKillShardMidSweep is the tier's fault-injection e2e: drive
// the sharded deployment with traffic measured from the discrete-event
// simulator, kill a shard node halfway through the rate sweep, and keep
// scoring the merged /predict answers against the simulator-observed
// SLA-meeting fractions. The warm standby holds dual-written state, so the
// acceptance bar does not move: MAE <= 0.10 across all comparable
// (step, SLA) pairs — including every step served with a dead node — the
// same band as the single-engine e2e and the paper's Table I. Post-kill
// answers must carry degraded: true, and flipping the node back up must
// clear the flag without restarting anything.
func TestChaosClusterKillShardMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-driven e2e")
	}
	sc := experiments.DefaultS1()
	sc.CatalogObjects = 60000
	sc.WarmRate, sc.WarmDur = 100, 20
	sc.RateStart, sc.RateEnd, sc.RateStep = 60, 240, 60
	sc.StepDur, sc.StepDiscard = 10, 3
	sc.CalibrationOps = 1500
	data, err := experiments.RunSweep(sc)
	if err != nil {
		t.Fatal(err)
	}

	measured := float64(sc.StepDur - sc.StepDiscard)
	devices := sc.Sim.Devices()
	tr := newTierCfg(t, 3, devices, func() serve.Config {
		cfg := serve.DefaultConfig(data.Props, devices)
		cfg.ProcsPerDevice = sc.Sim.ProcsPerDisk
		cfg.FrontendProcs = sc.Sim.Frontends * sc.Sim.ProcsPerFrontend
		cfg.SLAs = sc.Sim.SLAs
		cfg.Window = measured
		return cfg
	}, func(cfg *Config) {
		cfg.SLAs = sc.Sim.SLAs
		cfg.Window = measured
	})

	killAfter := len(data.Windows) / 2
	killed := false
	var absErr []float64
	var lastBatch []serve.Observation
	degradedSteps := 0
	for step, win := range data.Windows {
		if step == killAfter {
			tr.gates[0].set(true) // the mid-run shard kill
			killed = true
			t.Logf("killed shard node 0 before step %d (rate %.0f)", step, data.Rates[step])
		}
		if win.Timeouts > 0 || win.Retries > 0 || win.Responses == 0 {
			continue // same exclusions as the paper's analysis
		}
		batch := windowToObservations(win)
		if len(batch) == 0 {
			continue
		}
		lastBatch = batch
		if code := postJSON(t, tr.routerSrv.URL+"/ingest",
			serve.IngestRequest{Observations: batch}, nil); code != http.StatusOK {
			t.Fatalf("step %d ingest: status %d", step, code)
		}

		var pr PredictResponse
		if code := getJSON(t, tr.routerSrv.URL+"/predict", &pr); code != http.StatusOK {
			t.Fatalf("step %d predict: status %d", step, code)
		}
		if pr.Saturated {
			t.Errorf("rate %.0f predicted saturated; simulator completed the window fine", data.Rates[step])
			continue
		}
		if killed {
			if !pr.Degraded {
				t.Errorf("step %d served with a dead shard but not flagged degraded", step)
			} else {
				degradedSteps++
			}
			if len(pr.LostDevices) != 0 {
				t.Errorf("step %d lost devices %v despite a live standby for every shard",
					step, pr.LostDevices)
			}
		}
		for i, p := range pr.Predictions {
			e := p.MeetRatio - win.MeetFraction[i]
			absErr = append(absErr, math.Abs(e))
			t.Logf("rate %.0f sla %.3f: predicted %.4f observed %.4f (err %+.4f, degraded %v)",
				data.Rates[step], p.SLA, p.MeetRatio, win.MeetFraction[i], e, pr.Degraded)
		}
	}
	if !killed {
		t.Fatal("sweep too short: the shard kill never happened")
	}
	if degradedSteps == 0 {
		t.Fatal("no step was served in degraded mode; the kill was invisible")
	}
	if len(absErr) < 6 {
		t.Fatalf("only %d comparable predictions; sweep degenerated", len(absErr))
	}
	var sum float64
	for _, e := range absErr {
		sum += e
	}
	mae := sum / float64(len(absErr))
	t.Logf("MAE %.4f over %d (step, SLA) pairs (%d degraded steps)", mae, len(absErr), degradedSteps)
	if mae > 0.10 {
		t.Errorf("MAE %.4f exceeds 0.10", mae)
	}

	// Recovery without restart: the node rejoins on the next probe round —
	// but its window is stale (it missed every ingest while dead), so its
	// partials under-report the tracker and the router keeps flagging the
	// answer. One round of the dual-written monitoring stream refills it and
	// the degraded flag clears.
	tr.gates[0].set(false)
	tr.router.ProbeOnce(context.Background())
	var stale PredictResponse
	if code := getJSON(t, tr.routerSrv.URL+"/predict", &stale); code != http.StatusOK {
		t.Fatalf("post-rejoin predict: status %d", code)
	}
	if !stale.Degraded {
		t.Error("rejoined node is stale (missed ingests) but the answer was not flagged")
	}
	if code := postJSON(t, tr.routerSrv.URL+"/ingest",
		serve.IngestRequest{Observations: lastBatch}, nil); code != http.StatusOK {
		t.Fatalf("post-rejoin ingest: status %d", code)
	}
	var pr PredictResponse
	if code := getJSON(t, tr.routerSrv.URL+"/predict", &pr); code != http.StatusOK {
		t.Fatalf("post-recovery predict: status %d", code)
	}
	if pr.Degraded {
		t.Error("tier still degraded after the killed shard rejoined")
	}
}

// windowToObservations converts a simulator measurement window into the wire
// observations a monitoring agent would report to the router (mirrors the
// single-engine e2e conversion).
func windowToObservations(win simstore.Window) []serve.Observation {
	const accesses = 1_000_000
	var out []serve.Observation
	for d := range win.DeviceRate {
		if win.DeviceRate[d] <= 0 {
			continue
		}
		hits := func(miss float64) (uint64, uint64) {
			m := uint64(math.Round(miss * accesses))
			return accesses - m, m
		}
		o := serve.Observation{
			Device:    d,
			Interval:  win.Duration,
			Requests:  uint64(math.Round(win.DeviceRate[d] * win.Duration)),
			DataReads: uint64(math.Round(win.DeviceChunkRate[d] * win.Duration)),
			DiskBusy:  win.DiskMeanSvc[d] * accesses,
			DiskOps:   accesses,
		}
		o.IndexHits, o.IndexMisses = hits(win.MissIndex[d])
		o.MetaHits, o.MetaMisses = hits(win.MissMeta[d])
		o.DataHits, o.DataMisses = hits(win.MissData[d])
		out = append(out, o)
	}
	return out
}
