package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cosmodel/internal/core"
	"cosmodel/internal/dist"
	"cosmodel/internal/retry"
	"cosmodel/internal/serve"
)

func testProps() core.DeviceProperties {
	return core.DeviceProperties{
		IndexDisk: dist.NewGammaMeanSCV(9e-3, 0.45),
		MetaDisk:  dist.NewGammaMeanSCV(6e-3, 0.50),
		DataDisk:  dist.NewGammaMeanSCV(8e-3, 0.40),
		ParseFE:   dist.Degenerate{Value: 0.3e-3},
		ParseBE:   dist.Degenerate{Value: 0.5e-3},
	}
}

// gate sits in front of a shard and simulates a crashed process: when down
// it hijacks the connection and slams it shut, so the router sees the same
// connection-reset a killed shard would produce. Flipping it back up is an
// in-place recovery — no restart, exactly what the rejoin path must handle.
type gate struct {
	mu    sync.Mutex
	down  bool
	delay time.Duration
	next  http.Handler
}

func (g *gate) set(down bool) {
	g.mu.Lock()
	g.down = down
	g.mu.Unlock()
}

func (g *gate) setDelay(d time.Duration) {
	g.mu.Lock()
	g.delay = d
	g.mu.Unlock()
}

// setNext swaps the backing shard — a process restart: same address, fresh
// (empty) state behind it.
func (g *gate) setNext(h http.Handler) {
	g.mu.Lock()
	g.next = h
	g.mu.Unlock()
}

func (g *gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	down, delay, next := g.down, g.delay, g.next
	g.mu.Unlock()
	if down {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		panic(http.ErrAbortHandler)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	next.ServeHTTP(w, r)
}

// tier is a full in-process cluster: gated shard-mode serve instances plus
// a router in front.
type tier struct {
	router    *Router
	routerSrv *httptest.Server
	shards    []*serve.Server
	gates     []*gate
}

func newTier(t *testing.T, nodes, devices int) *tier {
	return newTierCfg(t, nodes, devices,
		func() serve.Config { return serve.DefaultConfig(testProps(), devices) }, nil)
}

// newTierCfg builds a tier with a caller-supplied shard configuration and an
// optional router-config mutation.
func newTierCfg(t *testing.T, nodes, devices int, mkShard func() serve.Config, mutate func(*Config)) *tier {
	t.Helper()
	tr := &tier{}
	urls := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		cfg := mkShard()
		cfg.ShardMode = true
		cfg.Logf = t.Logf
		srv, err := serve.NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g := &gate{next: srv.Handler()}
		hs := httptest.NewServer(g)
		t.Cleanup(hs.Close)
		tr.shards = append(tr.shards, srv)
		tr.gates = append(tr.gates, g)
		urls[i] = hs.URL
	}
	cfg := DefaultConfig(urls, devices)
	cfg.Partitions = 16
	cfg.ProbeInterval = 0 // tests drive ProbeOnce explicitly
	cfg.FailThreshold = 1
	cfg.HedgeDelay = 20 * time.Millisecond
	cfg.Retry = retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond,
		MaxDelay: 5 * time.Millisecond, Multiplier: 2}
	cfg.Logf = t.Logf
	if mutate != nil {
		mutate(&cfg)
	}
	router, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.router = router
	tr.routerSrv = httptest.NewServer(router.Handler())
	t.Cleanup(tr.routerSrv.Close)
	return tr
}

func obsAtRate(device int, rate float64) serve.Observation {
	const interval = 10.0
	reqs := uint64(rate * interval)
	return serve.Observation{
		Device:      device,
		Interval:    interval,
		Requests:    reqs,
		DataReads:   uint64(float64(reqs) * 1.2),
		IndexHits:   700,
		IndexMisses: 300,
		MetaHits:    650,
		MetaMisses:  350,
		DataHits:    500,
		DataMisses:  500,
	}
}

func ingestBatch(devices int) []serve.Observation {
	batch := make([]serve.Observation, devices)
	for d := range batch {
		batch[d] = obsAtRate(d, 40+10*float64(d))
	}
	return batch
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
	}
	return resp.StatusCode
}

func ingestTier(t *testing.T, tr *tier, devices int) {
	t.Helper()
	if code := postJSON(t, tr.routerSrv.URL+"/ingest",
		serve.IngestRequest{Observations: ingestBatch(devices)}, nil); code != http.StatusOK {
		t.Fatalf("ingest status %d", code)
	}
}

// TestRouterPredictMatchesSingleEngine: the merged cluster prediction is
// identical (to float rounding) to one engine holding every device — the
// sharding is invisible when healthy.
func TestRouterPredictMatchesSingleEngine(t *testing.T) {
	const devices = 4
	tr := newTier(t, 3, devices)
	ingestTier(t, tr, devices)

	ref, err := serve.NewEngine(serve.DefaultConfig(testProps(), devices))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Ingest(ingestBatch(devices)); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Predict(nil)
	if err != nil {
		t.Fatal(err)
	}

	var got PredictResponse
	if code := getJSON(t, tr.routerSrv.URL+"/predict", &got); code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}
	if got.Degraded || len(got.LostDevices) != 0 {
		t.Fatalf("healthy tier answered degraded: %+v", got)
	}
	if len(got.Predictions) != len(want) {
		t.Fatalf("got %d predictions, want %d", len(got.Predictions), len(want))
	}
	for i, p := range got.Predictions {
		if math.Abs(p.MeetRatio-want[i].MeetRatio) > 1e-9 {
			t.Errorf("sla %v: cluster %v, single engine %v", p.SLA, p.MeetRatio, want[i].MeetRatio)
		}
		if p.Low != p.MeetRatio || p.High != p.MeetRatio {
			t.Errorf("healthy bounds must collapse: %+v", p)
		}
	}
}

// TestRouterSurvivesShardLoss is the tentpole: kill a shard node mid-run
// and the router keeps serving /predict from the warm standby — the answers
// are IDENTICAL (the standby was dual-written), flagged degraded, and the
// node rejoins after recovery without any restart.
func TestRouterSurvivesShardLoss(t *testing.T) {
	const devices = 4
	tr := newTier(t, 3, devices)
	ingestTier(t, tr, devices)

	var baseline PredictResponse
	if code := getJSON(t, tr.routerSrv.URL+"/predict", &baseline); code != http.StatusOK {
		t.Fatalf("baseline predict status %d", code)
	}

	tr.gates[0].set(true) // kill node 0

	var degraded PredictResponse
	if code := getJSON(t, tr.routerSrv.URL+"/predict", &degraded); code != http.StatusOK {
		t.Fatalf("predict with a dead shard: status %d", code)
	}
	if !degraded.Degraded {
		t.Error("response with a dead shard not flagged degraded")
	}
	if len(degraded.LostDevices) != 0 {
		t.Errorf("replicas=2 with one node down lost devices %v", degraded.LostDevices)
	}
	for i, p := range degraded.Predictions {
		if math.Abs(p.MeetRatio-baseline.Predictions[i].MeetRatio) > 1e-9 {
			t.Errorf("sla %v: standby answered %v, baseline %v — the dual-written standby must hold identical state",
				p.SLA, p.MeetRatio, baseline.Predictions[i].MeetRatio)
		}
	}
	if v := tr.router.failovers.Value(); v == 0 {
		t.Error("no failover counted despite a dead preferred replica")
	}

	// Recovery: flip the gate back up, re-probe, and the tier is healthy
	// again — no restart, no state transfer.
	tr.gates[0].set(false)
	tr.router.ProbeOnce(context.Background())
	var recovered PredictResponse
	if code := getJSON(t, tr.routerSrv.URL+"/predict", &recovered); code != http.StatusOK {
		t.Fatalf("predict after recovery: status %d", code)
	}
	if recovered.Degraded {
		t.Error("recovered tier still answers degraded")
	}
}

// TestRouterLostDevicesWidenBounds: when a device's whole replica chain is
// down the router still answers from the survivors, renormalized, with the
// lost devices named and the confidence bracket widened over their rate.
func TestRouterLostDevicesWidenBounds(t *testing.T) {
	const devices = 8
	tr := newTier(t, 3, devices)
	ingestTier(t, tr, devices)

	// Kill both replicas of device 0's chain: device 0 is unreachable.
	for _, n := range tr.router.topo.ChainFor(0) {
		tr.gates[n].set(true)
	}
	var resp PredictResponse
	if code := getJSON(t, tr.routerSrv.URL+"/predict", &resp); code != http.StatusOK {
		t.Fatalf("predict with a lost device: status %d", code)
	}
	if !resp.Degraded {
		t.Error("lost device not flagged degraded")
	}
	found := false
	for _, d := range resp.LostDevices {
		if d == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("device 0 not reported lost: %v", resp.LostDevices)
	}
	if !(resp.LiveRate < resp.TotalRate) {
		t.Errorf("live rate %v not below total %v despite losses", resp.LiveRate, resp.TotalRate)
	}
	for _, p := range resp.Predictions {
		if !(p.Low < p.High) {
			t.Errorf("sla %v: bounds [%v,%v] did not widen over the lost rate", p.SLA, p.Low, p.High)
		}
		if p.MeetRatio < p.Low-1e-12 || p.MeetRatio > p.High+1e-12 {
			t.Errorf("sla %v: estimate %v outside [%v,%v]", p.SLA, p.MeetRatio, p.Low, p.High)
		}
	}
}

// TestRouterNoQuorum: every shard down answers 503 with Retry-After, not a
// hang or a 500.
func TestRouterNoQuorum(t *testing.T) {
	const devices = 4
	tr := newTier(t, 3, devices)
	ingestTier(t, tr, devices)
	for _, g := range tr.gates {
		g.set(true)
	}
	resp, err := http.Get(tr.routerSrv.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all shards down: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestRouterIngestRejectedWhenChainDown: an observation whose whole chain
// is unreachable must fail loudly (502), not vanish.
func TestRouterIngestRejectedWhenChainDown(t *testing.T) {
	const devices = 4
	tr := newTier(t, 3, devices)
	for _, g := range tr.gates {
		g.set(true)
	}
	code := postJSON(t, tr.routerSrv.URL+"/ingest",
		serve.IngestRequest{Observations: ingestBatch(devices)}, nil)
	if code != http.StatusBadGateway {
		t.Fatalf("ingest with all shards down: status %d, want 502", code)
	}
}

// TestRouterRejectsCoded: the order-statistic coded CDF does not decompose
// across shards; the router must refuse rather than merge wrongly.
func TestRouterRejectsCoded(t *testing.T) {
	const devices = 4
	tr := newTier(t, 3, devices)
	ingestTier(t, tr, devices)
	if code := getJSON(t, tr.routerSrv.URL+"/predict?codedN=6&codedK=4", nil); code != http.StatusBadRequest {
		t.Errorf("GET coded predict: status %d, want 400", code)
	}
	code := postJSON(t, tr.routerSrv.URL+"/predict",
		serve.PredictRequest{Coded: &serve.CodedReadSpec{N: 6, K: 4}}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("POST coded predict: status %d, want 400", code)
	}
	if code := getJSON(t, tr.routerSrv.URL+"/advise?sla=0.05&target=0.9&codedN=6&codedK=4", nil); code != http.StatusBadRequest {
		t.Errorf("GET coded advise: status %d, want 400", code)
	}
}

// TestRouterAdviseMatchesSingleEngine: merged admission control agrees with
// the single-engine answer on the same state (small tolerance: the two
// paths quantize probe points independently).
func TestRouterAdviseMatchesSingleEngine(t *testing.T) {
	const devices = 4
	tr := newTier(t, 3, devices)
	ingestTier(t, tr, devices)

	ref, err := serve.NewEngine(serve.DefaultConfig(testProps(), devices))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Ingest(ingestBatch(devices)); err != nil {
		t.Fatal(err)
	}
	const sla, target = 0.100, 0.5
	want, err := ref.Advise(sla, target)
	if err != nil {
		t.Fatal(err)
	}
	var got AdviceResponse
	code := getJSON(t, fmt.Sprintf("%s/advise?sla=%v&target=%v", tr.routerSrv.URL, sla, target), &got)
	if code != http.StatusOK {
		t.Fatalf("advise status %d", code)
	}
	if got.Degraded {
		t.Error("healthy advise flagged degraded")
	}
	if math.Abs(got.CurrentMeetRatio-want.CurrentMeetRatio) > 1e-6 {
		t.Errorf("current meet ratio %v, single engine %v", got.CurrentMeetRatio, want.CurrentMeetRatio)
	}
	if got.Admit != want.Admit {
		t.Errorf("admit %v, single engine %v", got.Admit, want.Admit)
	}
	if want.MaxAdmissibleRate > 0 {
		rel := math.Abs(got.MaxAdmissibleRate-want.MaxAdmissibleRate) / want.MaxAdmissibleRate
		if rel > 0.05 {
			t.Errorf("max admissible rate %v, single engine %v (rel %.3f)",
				got.MaxAdmissibleRate, want.MaxAdmissibleRate, rel)
		}
	}
}

// TestRouterHedgesSlowPrimary: a primary that answers slower than the hedge
// delay gets raced by the standby and the client still wins quickly.
func TestRouterHedgesSlowPrimary(t *testing.T) {
	const devices = 4
	tr := newTier(t, 3, devices)
	ingestTier(t, tr, devices)
	// Warm every shard's cache first so the hedged race measures transport,
	// not a cold transform inversion.
	if code := getJSON(t, tr.routerSrv.URL+"/predict", nil); code != http.StatusOK {
		t.Fatalf("warm predict status %d", code)
	}
	for _, g := range tr.gates {
		g.setDelay(300 * time.Millisecond)
	}
	// With every node slow, hedges must fire (delay 20ms << 300ms).
	if code := getJSON(t, tr.routerSrv.URL+"/predict", nil); code != http.StatusOK {
		t.Fatalf("slow predict status %d", code)
	}
	if tr.router.hedges.Value() == 0 {
		t.Error("no hedge fired against a slow primary")
	}
}

// TestGenerationGossipConverges: a recalibration (cache-generation bump) on
// one shard propagates to every other node through the probe round's
// gossip, so no replica keeps serving pre-recalibration cache entries.
func TestGenerationGossipConverges(t *testing.T) {
	const devices = 4
	tr := newTier(t, 3, devices)
	ingestTier(t, tr, devices)
	tr.shards[1].Engine().InvalidateCache()
	tr.shards[1].Engine().InvalidateCache()
	want := tr.shards[1].Engine().CacheGeneration()
	if want == 0 {
		t.Fatal("invalidate did not bump the generation")
	}
	tr.router.ProbeOnce(context.Background())
	for i, s := range tr.shards {
		if got := s.Engine().CacheGeneration(); got < want {
			t.Errorf("node %d generation %d lags the gossiped %d", i, got, want)
		}
	}
	// A second round must be stable (no ping-pong).
	tr.router.ProbeOnce(context.Background())
	for i, s := range tr.shards {
		if got := s.Engine().CacheGeneration(); got != want {
			t.Errorf("node %d generation %d drifted after a stable round (want %d)", i, got, want)
		}
	}
}

// TestRouterHealthz: per-shard components reflect liveness.
func TestRouterHealthz(t *testing.T) {
	const devices = 4
	tr := newTier(t, 3, devices)
	var h serve.HealthResponse
	if code := getJSON(t, tr.routerSrv.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if h.Ready {
		t.Error("ready before any ingest")
	}
	ingestTier(t, tr, devices)
	tr.gates[2].set(true)
	tr.router.ProbeOnce(context.Background())
	if code := getJSON(t, tr.routerSrv.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if h.Status != "degraded" {
		t.Errorf("status %q with a dead shard, want degraded", h.Status)
	}
	if !h.Ready {
		t.Error("not ready despite live shards and ingested state")
	}
	if c, ok := h.Components["shard-2"]; !ok || c.Status != "degraded" {
		t.Errorf("shard-2 component %+v, want degraded", h.Components["shard-2"])
	}
	if c, ok := h.Components["shard-0"]; !ok || c.Status != "ok" {
		t.Errorf("shard-0 component %+v, want ok", h.Components["shard-0"])
	}
}

// TestRouterFlagsEmptyRejoinedShard: a replica that restarts with an empty
// store answers /shard/partial authoritatively at rate 0 for its devices —
// it is up, so coverage sees nothing lost. The router must notice the live
// partials under-reporting the ingest tracker's total rate, fold the gap
// into the lost-rate term (widened bounds) and flag the answer degraded,
// rather than silently renormalizing over the surviving traffic.
func TestRouterFlagsEmptyRejoinedShard(t *testing.T) {
	const devices = 4
	tr := newTier(t, 3, devices)
	ingestTier(t, tr, devices)

	var healthy PredictResponse
	if code := getJSON(t, tr.routerSrv.URL+"/predict", &healthy); code != http.StatusOK {
		t.Fatalf("healthy predict: status %d", code)
	}
	if healthy.Degraded {
		t.Fatal("tier degraded before the restart")
	}

	// "Restart" the primary of device 0's chain: same address, empty state.
	node := tr.router.topo.ChainFor(0)[0]
	cfg := serve.DefaultConfig(testProps(), devices)
	cfg.ShardMode = true
	fresh, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.gates[node].setNext(fresh.Handler())

	var pr PredictResponse
	if code := getJSON(t, tr.routerSrv.URL+"/predict", &pr); code != http.StatusOK {
		t.Fatalf("predict with an empty rejoined shard: status %d", code)
	}
	if !pr.Degraded {
		t.Error("under-reporting shard not flagged degraded")
	}
	if len(pr.LostDevices) != 0 {
		t.Errorf("lost devices %v; the shard is up, just empty", pr.LostDevices)
	}
	if pr.LiveRate >= pr.TotalRate {
		t.Errorf("live rate %.2f not below total %.2f despite an empty shard",
			pr.LiveRate, pr.TotalRate)
	}
	for i, p := range pr.Predictions {
		if !(p.Low < p.High) {
			t.Errorf("sla %.3f: bounds [%v, %v] did not widen", p.SLA, p.Low, p.High)
		}
		if p.Low > p.MeetRatio+1e-12 || p.MeetRatio > p.High+1e-12 {
			t.Errorf("sla %.3f: estimate %v outside [%v, %v]", p.SLA, p.MeetRatio, p.Low, p.High)
		}
		_ = i
	}
}
