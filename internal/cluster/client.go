package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"cosmodel/internal/ingest"
	"cosmodel/internal/retry"
	"cosmodel/internal/serve"
)

// shardClient issues the router's HTTP calls to shard nodes: plain
// retrying requests for ingest forwarding and state probes, and a hedged
// racer over a replica chain for the latency-critical partial evaluations.
type shardClient struct {
	nodes      []string
	hc         *http.Client
	policy     retry.Policy
	hedgeDelay time.Duration
	logf       func(format string, args ...any)

	// Metric hooks, all optional.
	onHedge    func(node int) // a hedge timer fired and raced a standby
	onFailover func(node int) // an attempt failed and the next replica took over
	onRetry    func(node int) // one shard call retried (backoff/Retry-After)
	// onAttemptError reports a raced attempt that failed outright (not a
	// cancellation of a losing hedge) so the health tracker can strike the
	// node instead of re-dialing a corpse on every query.
	onAttemptError func(node int, err error)
}

func newShardClient(cfg Config) *shardClient {
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	return &shardClient{
		nodes:      cfg.Nodes,
		hc:         hc,
		policy:     cfg.Retry,
		hedgeDelay: cfg.HedgeDelay,
		logf:       cfg.Logf,
	}
}

// errShardStatus marks a non-2xx shard answer with its status and body.
type errShardStatus struct {
	status int
	body   string
}

func (e *errShardStatus) Error() string {
	return fmt.Sprintf("shard status %d: %s", e.status, e.body)
}

// doJSON performs one retrying JSON exchange with a node. The retry policy
// honors the shard's load-shed protocol: 503 waits out the Retry-After
// hint, 4xx is permanent (the request itself is wrong — another replica
// would reject it identically), network errors and 5xx retry on backoff.
func (c *shardClient) doJSON(ctx context.Context, node int, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return retry.Permanent(err)
		}
	}
	return c.doRaw(ctx, node, method, path, payload, "application/json", out)
}

// doRaw is doJSON with a pre-encoded payload and explicit content type —
// the NDJSON forwarding path encodes once and replays the same bytes across
// retries.
func (c *shardClient) doRaw(ctx context.Context, node int, method, path string, payload []byte, contentType string, out any) error {
	attempt := 0
	return c.policy.Do(ctx, func(ctx context.Context) error {
		if attempt++; attempt > 1 && c.onRetry != nil {
			c.onRetry(node)
		}
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.nodes[node]+path, rd)
		if err != nil {
			return retry.Permanent(err)
		}
		if payload != nil {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			serr := &errShardStatus{status: resp.StatusCode, body: string(bytes.TrimSpace(b))}
			switch {
			case resp.StatusCode == http.StatusServiceUnavailable:
				return retry.After(serr, retry.HTTPRetryAfter(resp.Header))
			case resp.StatusCode >= 400 && resp.StatusCode < 500:
				return retry.Permanent(serr)
			default:
				return serr
			}
		}
		if out == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("decoding shard response: %w", err)
		}
		return nil
	})
}

// postIngest dual-writes a batch to one replica over the streaming NDJSON
// mode: the shard absorbs it through its striped ingest path in pooled
// chunks instead of materializing the whole envelope, and the wire format
// costs one line per observation rather than a JSON array in memory.
func (c *shardClient) postIngest(ctx context.Context, node int, batch []serve.Observation) error {
	var buf bytes.Buffer
	if err := ingest.EncodeNDJSON(&buf, batch); err != nil {
		return retry.Permanent(err)
	}
	return c.doRaw(ctx, node, http.MethodPost, "/ingest",
		buf.Bytes(), ingest.ContentTypeNDJSON, nil)
}

func (c *shardClient) getState(ctx context.Context, node int) (serve.ShardStateResponse, error) {
	var st serve.ShardStateResponse
	err := c.doJSON(ctx, node, http.MethodGet, "/shard/state", nil, &st)
	return st, err
}

func (c *shardClient) postInvalidate(ctx context.Context, node int, gen uint64) error {
	return c.doJSON(ctx, node, http.MethodPost, "/shard/invalidate",
		serve.ShardInvalidateRequest{Generation: gen}, nil)
}

// postPartial asks a replica chain for its partial CDF, hedging and failing
// over along the chain. Returns the answering node.
func (c *shardClient) postPartial(ctx context.Context, chain []int, req serve.PartialRequest) (serve.PartialResponse, int, error) {
	return race(ctx, c, chain, func(ctx context.Context, node int) (serve.PartialResponse, error) {
		var resp serve.PartialResponse
		err := c.doJSON(ctx, node, http.MethodPost, "/shard/partial", req, &resp)
		return resp, err
	})
}

// race runs call against chain[0], hedges to the next replica when the
// hedge delay elapses without an answer, fails over immediately when an
// attempt errors, and returns the first success (cancelling the rest). All
// replicas hold the same dual-written state, so whichever answers first is
// equally authoritative. With every attempt failed, the errors are joined.
func race[T any](ctx context.Context, c *shardClient, chain []int, call func(context.Context, int) (T, error)) (T, int, error) {
	var zero T
	if len(chain) == 0 {
		return zero, -1, ErrNoQuorum
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		v    T
		node int
		err  error
	}
	ch := make(chan result, len(chain)) // buffered: losers never block
	launched := 0
	launch := func(node int) {
		launched++
		go func() {
			v, err := call(ctx, node)
			ch <- result{v: v, node: node, err: err}
		}()
	}
	launch(chain[0])

	hedge := time.NewTimer(time.Hour)
	defer hedge.Stop()
	armHedge := func() {
		if c.hedgeDelay > 0 && launched < len(chain) {
			hedge.Reset(c.hedgeDelay)
		} else {
			hedge.Stop()
		}
	}
	armHedge()

	pending := 1
	var errs []error
	for {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				return r.v, r.node, nil
			}
			if c.onAttemptError != nil && !errors.Is(r.err, context.Canceled) {
				c.onAttemptError(r.node, r.err)
			}
			errs = append(errs, fmt.Errorf("node %d: %w", r.node, r.err))
			if launched < len(chain) {
				if c.onFailover != nil {
					c.onFailover(chain[launched])
				}
				launch(chain[launched])
				pending++
				armHedge()
			} else if pending == 0 {
				return zero, -1, errors.Join(errs...)
			}
		case <-hedge.C:
			if launched >= len(chain) {
				break // stale fire from a timer racing its Stop
			}
			if c.onHedge != nil {
				c.onHedge(chain[launched])
			}
			launch(chain[launched])
			pending++
			armHedge()
		case <-ctx.Done():
			return zero, -1, ctx.Err()
		}
	}
}
