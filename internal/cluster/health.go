package cluster

import (
	"context"
	"sync"
	"time"
)

// nodeState is one shard node's health bookkeeping.
type nodeState struct {
	up    bool
	fails int    // consecutive failures (probe or live traffic)
	gen   uint64 // last observed cache generation
}

// prober tracks shard liveness by periodically fetching /shard/state and by
// absorbing live-traffic outcomes the router reports. A node goes down
// after FailThreshold consecutive failures and comes back on the first
// successful probe — recovery needs no restart and no operator action.
// Each probe round also gossips cache generations: replicas lagging the
// group's maximum generation get a /shard/invalidate push, so one replica's
// recalibration invalidates stale predictions cluster-wide (the sync takes
// max-of-generations on the shard side, so gossip converges and a stale
// push can never roll a shard backwards).
type prober struct {
	client    *shardClient
	interval  time.Duration
	threshold int
	logf      func(format string, args ...any)

	mu     sync.Mutex
	states []nodeState

	onTransition func(node int, up bool) // metrics hook, optional

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

func newProber(cfg Config, client *shardClient) *prober {
	p := &prober{
		client:    client,
		interval:  cfg.ProbeInterval,
		threshold: cfg.FailThreshold,
		logf:      cfg.Logf,
		states:    make([]nodeState, len(cfg.Nodes)),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	// Optimistic start: every node is presumed up until it proves otherwise,
	// so a router booting before its shards merely fails over on the first
	// calls instead of refusing to serve.
	for i := range p.states {
		p.states[i].up = true
	}
	return p
}

// start launches the probe loop; with interval 0 there is no loop (tests
// drive probeOnce explicitly). Idempotent.
func (p *prober) start() {
	p.startOnce.Do(func() {
		if p.interval <= 0 {
			close(p.done)
			return
		}
		go func() {
			defer close(p.done)
			t := time.NewTicker(p.interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					ctx, cancel := context.WithTimeout(context.Background(), p.interval)
					p.probeOnce(ctx)
					cancel()
				case <-p.stop:
					return
				}
			}
		}()
	})
}

// close stops the probe loop and waits it out. Safe to call whether or not
// start ran: the stop channel is closed first, so a loop started here (or
// racing with close) exits on its first select.
func (p *prober) close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.start()
	<-p.done
}

// up reports the node's current liveness verdict.
func (p *prober) up(node int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.states[node].up
}

// note absorbs one observation of a node (probe or live traffic): success
// revives it immediately, failures accumulate toward the threshold.
func (p *prober) note(node int, ok bool, gen uint64, fromProbe bool) {
	p.mu.Lock()
	st := &p.states[node]
	was := st.up
	if ok {
		st.fails = 0
		st.up = true
		if fromProbe {
			st.gen = gen
		}
	} else {
		st.fails++
		if st.fails >= p.threshold {
			st.up = false
		}
	}
	now := st.up
	p.mu.Unlock()
	if was != now && p.onTransition != nil {
		p.onTransition(node, now)
	}
}

// noteSuccess / noteFailure absorb live-traffic outcomes from the router.
func (p *prober) noteSuccess(node int) { p.note(node, true, 0, false) }
func (p *prober) noteFailure(node int) { p.note(node, false, 0, false) }

// observeGeneration records a generation seen on a live response (partial
// answers piggyback it), keeping gossip fresh between probe rounds.
func (p *prober) observeGeneration(node int, gen uint64) {
	p.mu.Lock()
	if gen > p.states[node].gen {
		p.states[node].gen = gen
	}
	p.mu.Unlock()
}

// snapshot returns a copy of the per-node states.
func (p *prober) snapshot() []nodeState {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]nodeState, len(p.states))
	copy(out, p.states)
	return out
}

// probeOnce probes every node concurrently, then gossips generations: any
// up node lagging the maximum observed generation is pushed forward.
func (p *prober) probeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for n := range p.states {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			st, err := p.client.getState(ctx, node)
			if err != nil {
				p.note(node, false, 0, true)
				return
			}
			p.note(node, true, st.Generation, true)
		}(n)
	}
	wg.Wait()

	states := p.snapshot()
	var maxGen uint64
	for _, st := range states {
		if st.up && st.gen > maxGen {
			maxGen = st.gen
		}
	}
	for n, st := range states {
		if !st.up || st.gen >= maxGen {
			continue
		}
		node := n
		if err := p.client.postInvalidate(ctx, node, maxGen); err != nil {
			if p.logf != nil {
				p.logf("cluster: generation gossip to node %d: %v", node, err)
			}
			continue
		}
		p.observeGeneration(node, maxGen)
	}
}
