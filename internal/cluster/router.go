package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"cosmodel/internal/core"
	"cosmodel/internal/ingest"
	"cosmodel/internal/obs"
	"cosmodel/internal/serve"
)

// Router is the stateless fan-out tier: it forwards ingest to every replica
// of a device's shard, answers /predict and /advise by merging per-shard
// partial CDFs, and keeps serving from warm standbys when shards die.
// "Stateless" means no model state: the router's only memory is the
// device-rate tracker (rebuilt from the ingest stream in one window) and
// the health prober's verdicts — a restarted router is fully functional
// after one observation window, with no recovery protocol.
type Router struct {
	cfg    Config
	topo   *Topology
	client *shardClient
	prober *prober
	rates  *rateTracker

	reg   *obs.Registry
	sem   chan struct{}
	start time.Time

	served       *obs.Counter
	shed         *obs.Counter
	badRequests  *obs.Counter
	degraded     *obs.Counter
	forwardFails *obs.Counter
	hedges       *obs.Counter
	failovers    *obs.Counter
	retries      *obs.Counter
}

// NewRouter validates the configuration and assembles the fan-out tier.
// Call Start to launch the health prober and Close to stop it.
func NewRouter(cfg Config) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo, err := NewTopology(cfg)
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:    cfg,
		topo:   topo,
		client: newShardClient(cfg),
		rates:  newRateTracker(cfg.Devices, cfg.Window),
		reg:    obs.NewRegistry(),
		sem:    make(chan struct{}, cfg.MaxInflight),
		start:  cfg.now(),
	}
	r.prober = newProber(cfg, r.client)
	r.served = r.reg.Counter("cosrouter_queries_served_total",
		"Prediction and advice queries answered successfully.", nil)
	r.shed = r.reg.Counter("cosrouter_shed_total",
		"Queries shed with 503 because the in-flight limit was reached.", nil)
	r.badRequests = r.reg.Counter("cosrouter_bad_requests_total",
		"Requests rejected as malformed (400).", nil)
	r.degraded = r.reg.Counter("cosrouter_degraded_responses_total",
		"Merged responses served with shards down or devices lost.", nil)
	r.forwardFails = r.reg.Counter("cosrouter_ingest_forward_failures_total",
		"Ingest forwards that failed on one replica (the batch may still be covered by another).", nil)
	r.hedges = r.reg.Counter("cosrouter_hedges_total",
		"Partial evaluations raced to a standby after the hedge delay.", nil)
	r.failovers = r.reg.Counter("cosrouter_failovers_total",
		"Partial evaluations failed over to the next replica after an error.", nil)
	r.retries = r.reg.Counter("cosrouter_shard_retries_total",
		"Shard calls retried on backoff or Retry-After.", nil)
	r.client.onHedge = func(int) { r.hedges.Inc() }
	r.client.onFailover = func(int) { r.failovers.Inc() }
	r.client.onRetry = func(int) { r.retries.Inc() }
	// A raced attempt that failed outright strikes the node with the health
	// tracker; past the threshold the fan-out stops dialing it (the standby
	// answers directly) until a probe or live success revives it.
	r.client.onAttemptError = func(node int, err error) { r.prober.noteFailure(node) }
	for n := range cfg.Nodes {
		node := n
		r.reg.GaugeFunc("cosrouter_shard_up",
			"Health prober verdict per shard node (1 = up).",
			obs.Labels{"node": strconv.Itoa(node)},
			func() float64 {
				if r.prober.up(node) {
					return 1
				}
				return 0
			})
	}
	r.reg.GaugeFunc("cosrouter_total_rate",
		"Tier-wide aggregate request rate from the router's ingest tracker.", nil,
		func() float64 { return r.rates.totalRate() })
	r.prober.onTransition = func(node int, up bool) {
		state := "down"
		if up {
			state = "up"
		}
		r.reg.Counter("cosrouter_shard_transitions_total",
			"Shard health transitions by node and new state.",
			obs.Labels{"node": strconv.Itoa(node), "state": state}).Inc()
		r.logf("cluster: shard node %d (%s) is %s", node, r.cfg.Nodes[node], state)
	}
	return r, nil
}

// Start launches the health prober (no-op with ProbeInterval 0) and warms
// the rate tracker from the shards' persisted windows, so a restarted
// router fronting warm shards serves /predict immediately instead of
// reporting zero ingest for a full observation window.
func (r *Router) Start() {
	r.prober.start()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if n := r.WarmupOnce(ctx); n > 0 {
			r.logf("cluster: rate tracker warmed from shard state (%d devices)", n)
		}
	}()
}

// WarmupOnce rebuilds the rate tracker from every reachable shard's
// /shard/state device rates, taking the per-device maximum across replicas
// (dual-written replicas should agree; a lagging one under-reports). Only
// devices with no live entries are seeded — forwarded traffic that arrived
// before the warmup answer always wins. Returns the number of devices
// seeded. Safe to call at any time; a fully warm tracker makes it a no-op.
func (r *Router) WarmupOnce(ctx context.Context) int {
	best := make([]float64, r.cfg.Devices)
	for n := range r.cfg.Nodes {
		st, err := r.client.getState(ctx, n)
		if err != nil {
			r.logf("cluster: warmup state from node %d: %v", n, err)
			continue
		}
		for d, rate := range st.DeviceRates {
			if d < len(best) && rate > best[d] {
				best[d] = rate
			}
		}
	}
	seeded := 0
	for d, rate := range best {
		if r.rates.seed(d, rate) {
			seeded++
		}
	}
	return seeded
}

// Close stops the prober.
func (r *Router) Close() { r.prober.close() }

// Registry exposes the router's metrics registry.
func (r *Router) Registry() *obs.Registry { return r.reg }

// ProbeOnce runs one synchronous health-probe and gossip round — the
// test and cron entry point mirroring what Start does periodically.
func (r *Router) ProbeOnce(ctx context.Context) { r.prober.probeOnce(ctx) }

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// ---------------------------------------------------------------------------
// Rate tracker: the router's only state.

// rateEntry is one forwarded observation's rate contribution.
type rateEntry struct {
	interval float64
	requests uint64
}

// rateTracker derives per-device request rates from the forwarded ingest
// stream over a sliding window — the source of the global frontend rate
// every shard's partial evaluation is built at, and of the lost-rate term
// that widens degraded confidence bounds.
type rateTracker struct {
	mu      sync.Mutex
	window  float64
	devices [][]rateEntry
	spans   []float64
}

const maxRateEntries = 256

func newRateTracker(devices int, window float64) *rateTracker {
	return &rateTracker{
		window:  window,
		devices: make([][]rateEntry, devices),
		spans:   make([]float64, devices),
	}
}

func (rt *rateTracker) add(o serve.Observation) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	d := o.Device
	rt.devices[d] = append(rt.devices[d], rateEntry{interval: o.Interval, requests: o.Requests})
	rt.spans[d] += o.Interval
	for len(rt.devices[d]) > 1 &&
		(rt.spans[d]-rt.devices[d][0].interval >= rt.window || len(rt.devices[d]) > maxRateEntries) {
		rt.spans[d] -= rt.devices[d][0].interval
		rt.devices[d] = rt.devices[d][1:]
	}
}

// seed installs a synthetic full-window entry for a device that has no live
// observations yet — the router-restart warm start. Live data always wins:
// a device that has already accumulated forwarded observations is left
// untouched, and the synthetic entry ages out of the window like any other
// as real traffic arrives.
func (rt *rateTracker) seed(d int, rate float64) bool {
	if !(rate > 0) || math.IsInf(rate, 0) {
		return false
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.spans[d] > 0 {
		return false
	}
	rt.devices[d] = append(rt.devices[d], rateEntry{
		interval: rt.window,
		requests: uint64(math.Round(rate * rt.window)),
	})
	rt.spans[d] += rt.window
	return true
}

func (rt *rateTracker) rateLocked(d int) float64 {
	if rt.spans[d] <= 0 {
		return 0
	}
	var reqs uint64
	for _, e := range rt.devices[d] {
		reqs += e.requests
	}
	return float64(reqs) / rt.spans[d]
}

func (rt *rateTracker) rate(d int) float64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.rateLocked(d)
}

func (rt *rateTracker) totalRate() float64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	total := 0.0
	for d := range rt.devices {
		total += rt.rateLocked(d)
	}
	return total
}

// ---------------------------------------------------------------------------
// HTTP plumbing.

type errorBody struct {
	Error string `json:"error"`
}

func (r *Router) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		r.logf("cluster: writing %d response: %v", status, err)
	}
}

func (r *Router) badRequest(w http.ResponseWriter, err error) {
	r.badRequests.Inc()
	r.writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
}

func (r *Router) acquire(w http.ResponseWriter) bool {
	select {
	case r.sem <- struct{}{}:
		return true
	default:
		r.shed.Inc()
		w.Header().Set("Retry-After", "1")
		r.writeJSON(w, http.StatusServiceUnavailable,
			errorBody{Error: "router queue full, load shed"})
		return false
	}
}

func (r *Router) release() { <-r.sem }

// queryError maps fan-out errors onto the serve tier's status taxonomy.
func (r *Router) queryError(w http.ResponseWriter, req *http.Request, err error) {
	switch {
	case errors.Is(err, serve.ErrBadQuery) || errors.Is(err, ErrBadConfig):
		r.badRequest(w, err)
	case errors.Is(err, serve.ErrNotReady):
		r.writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
	case errors.Is(err, ErrNoQuorum):
		w.Header().Set("Retry-After", "1")
		r.writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.Is(err, context.Canceled) && req.Context().Err() != nil:
		r.writeJSON(w, 499, errorBody{Error: "client closed request"})
	case errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Retry-After", "1")
		r.writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		r.writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// Handler returns the router's route table:
//
//	POST /ingest   — dual-write observations to every replica of each shard
//	GET/POST /predict — merged cluster-wide percentile predictions
//	GET/POST /advise  — merged admission control
//	GET  /healthz  — per-shard health components
//	GET  /metrics/prom — router metrics in Prometheus text format
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", r.handleIngest)
	mux.HandleFunc("/predict", r.handlePredict)
	mux.HandleFunc("/advise", r.handleAdvise)
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/metrics/prom", r.handleMetricsProm)
	return mux
}

// ---------------------------------------------------------------------------
// /ingest: dual-write to the replica chain.

// decodeIngest negotiates the ingest payload encoding like the serve tier:
// a JSON-array envelope or an NDJSON stream, selected by content type (415
// for anything else). Unlike a shard, the router needs the complete batch
// before fanning out (the coverage check is batch-atomic), so NDJSON is
// collected rather than absorbed chunk by chunk: a bad line rejects the
// whole request with its line number and nothing is forwarded. The reply
// reports false after writing the error response.
func (r *Router) decodeIngest(w http.ResponseWriter, req *http.Request) ([]serve.Observation, bool) {
	mt := ingest.ContentTypeJSON
	if ct := req.Header.Get("Content-Type"); ct != "" {
		parsed, _, err := mime.ParseMediaType(ct)
		if err != nil {
			parsed = ct // unparsable: report the raw header in the 415
		}
		mt = parsed
	}
	switch mt {
	case ingest.ContentTypeJSON:
		var in serve.IngestRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&in); err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				r.writeJSON(w, http.StatusRequestEntityTooLarge,
					errorBody{Error: fmt.Sprintf("body exceeds %d bytes", mbe.Limit)})
				return nil, false
			}
			r.badRequest(w, fmt.Errorf("%w: %v", serve.ErrBadQuery, err))
			return nil, false
		}
		return in.Observations, true
	case ingest.ContentTypeNDJSON:
		var observations []serve.Observation
		_, err := ingest.DecodeNDJSON(http.MaxBytesReader(w, req.Body, 1<<20), r.cfg.Devices, 0,
			func(chunk []serve.Observation) error {
				observations = append(observations, chunk...)
				return nil
			})
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				r.writeJSON(w, http.StatusRequestEntityTooLarge,
					errorBody{Error: fmt.Sprintf("body exceeds %d bytes", mbe.Limit)})
				return nil, false
			}
			r.badRequest(w, fmt.Errorf("%w: %v", serve.ErrBadQuery, err))
			return nil, false
		}
		return observations, true
	default:
		r.badRequests.Inc()
		r.writeJSON(w, http.StatusUnsupportedMediaType, errorBody{
			Error: fmt.Sprintf("unsupported content type %q: use %s or %s",
				mt, ingest.ContentTypeJSON, ingest.ContentTypeNDJSON)})
		return nil, false
	}
}

func (r *Router) handleIngest(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		r.writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	observations, ok := r.decodeIngest(w, req)
	if !ok {
		return
	}
	if len(observations) == 0 {
		r.badRequest(w, fmt.Errorf("%w: empty observation batch", serve.ErrBadQuery))
		return
	}
	// Slice the batch per node: an observation goes to EVERY replica of its
	// device's chain (dual-write), so warm standbys hold the same sliding
	// windows and calibration feed as their primaries.
	perNode := make(map[int][]serve.Observation)
	for _, o := range observations {
		if err := o.Validate(r.cfg.Devices); err != nil {
			r.badRequest(w, err)
			return
		}
		for _, n := range r.topo.ChainFor(o.Device) {
			perNode[n] = append(perNode[n], o)
		}
	}
	type outcome struct {
		node int
		err  error
	}
	results := make(chan outcome, len(perNode))
	for n, batch := range perNode {
		go func(node int, batch []serve.Observation) {
			results <- outcome{node: node, err: r.client.postIngest(req.Context(), node, batch)}
		}(n, batch)
	}
	acked := make(map[int]bool, len(perNode))
	for range perNode {
		out := <-results
		if out.err != nil {
			r.forwardFails.Inc()
			r.prober.noteFailure(out.node)
			r.logf("cluster: ingest forward to node %d: %v", out.node, out.err)
			continue
		}
		r.prober.noteSuccess(out.node)
		acked[out.node] = true
	}
	// Coverage check: every observation must have landed on at least one
	// replica, else its device would silently vanish from the mixture.
	for _, o := range observations {
		covered := false
		for _, n := range r.topo.ChainFor(o.Device) {
			if acked[n] {
				covered = true
				break
			}
		}
		if !covered {
			r.writeJSON(w, http.StatusBadGateway, errorBody{
				Error: fmt.Sprintf("no replica of device %d's shard accepted the batch", o.Device)})
			return
		}
	}
	for _, o := range observations {
		r.rates.add(o)
	}
	r.writeJSON(w, http.StatusOK, serve.IngestResponse{Accepted: len(observations)})
}

// ---------------------------------------------------------------------------
// Fan-out and merge.

// fanResult is one merged fan-out outcome plus its provenance.
type fanResult struct {
	merged     Merged
	lost       []int // devices with no live (or answering) replica
	degraded   bool
	generation uint64
	totalRate  float64
}

// fanOut evaluates the SLA grid across every shard group at the given load
// factor and merges the partials. Groups whose entire live chain fails at
// call time are folded into the lost set for this answer (and reported to
// the prober), so a shard dying between probe rounds degrades the response
// instead of erroring it.
func (r *Router) fanOut(ctx context.Context, slas []float64, factor float64) (fanResult, error) {
	totalRate := r.rates.totalRate()
	if totalRate <= 0 {
		return fanResult{}, serve.ErrNotReady
	}
	groups, lost := r.topo.Coverage(r.cfg.Devices, r.prober.up)
	if len(groups) == 0 {
		return fanResult{}, ErrNoQuorum
	}
	type call struct {
		resp  serve.PartialResponse
		group CoverageGroup
		node  int
		err   error
	}
	results := make(chan call, len(groups))
	for _, g := range groups {
		go func(g CoverageGroup) {
			resp, node, err := r.client.postPartial(ctx, g.Chain, serve.PartialRequest{
				Devices:   g.Devices,
				SLAs:      slas,
				TotalRate: totalRate,
				Factor:    factor,
			})
			results <- call{resp: resp, group: g, node: node, err: err}
		}(g)
	}
	res := fanResult{lost: lost, totalRate: totalRate}
	var partials []Partial
	notPrimary := false
	for range groups {
		c := <-results
		if c.err != nil {
			if ctx.Err() != nil {
				return fanResult{}, ctx.Err()
			}
			for _, n := range c.group.Chain {
				r.prober.noteFailure(n)
			}
			r.logf("cluster: partial fan-out to chain %v failed: %v", c.group.Chain, c.err)
			res.lost = append(res.lost, c.group.Devices...)
			continue
		}
		r.prober.noteSuccess(c.node)
		r.prober.observeGeneration(c.node, c.resp.Generation)
		if c.resp.Generation > res.generation {
			res.generation = c.resp.Generation
		}
		if !c.group.Primary || c.node != c.group.Chain[0] {
			notPrimary = true
		}
		partials = append(partials, Partial{
			WeightedSums: c.resp.WeightedSums,
			Rate:         c.resp.Rate,
			Saturated:    c.resp.Saturated,
		})
	}
	if len(partials) == 0 {
		return fanResult{}, ErrNoQuorum
	}
	lostRate := 0.0
	for _, d := range res.lost {
		lostRate += r.rates.rate(d) * factor
	}
	// An up-and-answering replica can still hold less state than the tier has
	// ingested — typically one that restarted empty and resumed primary duty
	// before its window refilled. That shows up as live partials whose rates
	// don't add up to the tracker's total; the gap is traffic nobody
	// accounted for, the same epistemic state as a lost device, so it widens
	// the bounds and degrades the answer instead of silently renormalizing.
	liveSum := 0.0
	for _, p := range partials {
		liveSum += p.Rate
	}
	underReported := false
	if gap := totalRate*factor - lostRate - liveSum; gap > 1e-3*totalRate*factor {
		lostRate += gap
		underReported = true
	}
	merged, err := MergePartials(partials, lostRate, len(slas))
	if err != nil {
		return fanResult{}, err
	}
	res.merged = merged
	anyDown := false
	for n := range r.cfg.Nodes {
		if !r.prober.up(n) {
			anyDown = true
		}
	}
	res.degraded = len(res.lost) > 0 || notPrimary || anyDown || underReported
	if res.degraded {
		r.degraded.Inc()
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// /predict

// Prediction is the cluster answer for one SLA bound: the merged estimate
// plus the degradation bracket (Low == High == MeetRatio when healthy).
type Prediction struct {
	SLA       float64 `json:"sla"`
	MeetRatio float64 `json:"meetRatio"`
	Low       float64 `json:"low"`
	High      float64 `json:"high"`
	Saturated bool    `json:"saturated"`
}

// PredictResponse is the merged /predict payload.
type PredictResponse struct {
	Predictions []Prediction `json:"predictions"`
	// Degraded reports that this answer was served with shards down or
	// devices lost: the estimate is the survivors' renormalized truth and
	// the Low/High brackets widen over the missing rate.
	Degraded bool `json:"degraded"`
	// LostDevices are the devices with no reachable replica.
	LostDevices []int `json:"lostDevices,omitempty"`
	Saturated   bool  `json:"saturated"`
	// TotalRate is the tier-wide rate from the router's tracker; LiveRate
	// the portion the surviving shards answered for.
	TotalRate float64 `json:"totalRate"`
	LiveRate  float64 `json:"liveRate"`
	// Generation is the maximum shard cache generation seen in this answer.
	Generation uint64 `json:"generation"`
}

func (r *Router) handlePredict(w http.ResponseWriter, req *http.Request) {
	slas, err := r.parsePredict(req)
	if err != nil {
		r.badRequest(w, err)
		return
	}
	if len(slas) == 0 {
		slas = r.cfg.SLAs
	}
	for _, s := range slas {
		if !(s > 0) || math.IsInf(s, 0) {
			r.badRequest(w, fmt.Errorf("%w: SLA %v must be positive and finite", serve.ErrBadQuery, s))
			return
		}
	}
	if !r.acquire(w) {
		return
	}
	defer r.release()
	res, err := r.fanOut(req.Context(), slas, 1)
	if err != nil {
		r.queryError(w, req, err)
		return
	}
	resp := PredictResponse{
		Predictions: make([]Prediction, len(slas)),
		Degraded:    res.degraded,
		LostDevices: res.lost,
		Saturated:   res.merged.Saturated,
		TotalRate:   res.totalRate,
		LiveRate:    res.merged.LiveRate,
		Generation:  res.generation,
	}
	for i, s := range slas {
		resp.Predictions[i] = Prediction{
			SLA:       s,
			MeetRatio: res.merged.Estimates[i],
			Low:       res.merged.Low[i],
			High:      res.merged.High[i],
			Saturated: res.merged.Saturated,
		}
	}
	r.served.Inc()
	r.writeJSON(w, http.StatusOK, resp)
}

// parsePredict extracts the SLA grid, rejecting coded-read queries: the
// coded CDF is a k-of-n order statistic of the WHOLE mixture — nonlinear in
// the per-device partials — so a merged answer would be silently wrong.
// Coded predictions remain a single-engine feature.
func (r *Router) parsePredict(req *http.Request) ([]float64, error) {
	switch req.Method {
	case http.MethodGet:
		q := req.URL.Query()
		if q.Get("codedN") != "" || q.Get("codedK") != "" {
			return nil, fmt.Errorf("%w: coded reads are not supported in cluster mode (the order-statistic CDF does not decompose across shards)", serve.ErrBadQuery)
		}
		return parseFloats(q.Get("sla"))
	case http.MethodPost:
		var body serve.PredictRequest
		dec := json.NewDecoder(http.MaxBytesReader(nil, req.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&body); err != nil {
			return nil, fmt.Errorf("%w: %v", serve.ErrBadQuery, err)
		}
		if body.Coded != nil {
			return nil, fmt.Errorf("%w: coded reads are not supported in cluster mode (the order-statistic CDF does not decompose across shards)", serve.ErrBadQuery)
		}
		return body.SLAs, nil
	default:
		return nil, fmt.Errorf("%w: GET or POST required", serve.ErrBadQuery)
	}
}

// ---------------------------------------------------------------------------
// /advise

// AdviceResponse is the merged admission answer: the single-engine Advice
// shape plus the cluster degradation flag.
type AdviceResponse struct {
	serve.Advice
	Degraded bool `json:"degraded"`
}

func (r *Router) handleAdvise(w http.ResponseWriter, req *http.Request) {
	var sla, target float64
	switch req.Method {
	case http.MethodGet:
		q := req.URL.Query()
		if q.Get("codedN") != "" || q.Get("codedK") != "" {
			r.badRequest(w, fmt.Errorf("%w: coded reads are not supported in cluster mode", serve.ErrBadQuery))
			return
		}
		var err error
		if sla, err = parseFloat(q.Get("sla")); err != nil {
			r.badRequest(w, fmt.Errorf("sla: %w", err))
			return
		}
		if target, err = parseFloat(q.Get("target")); err != nil {
			r.badRequest(w, fmt.Errorf("target: %w", err))
			return
		}
	case http.MethodPost:
		var body serve.AdviseRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&body); err != nil {
			r.badRequest(w, fmt.Errorf("%w: %v", serve.ErrBadQuery, err))
			return
		}
		if body.Coded != nil {
			r.badRequest(w, fmt.Errorf("%w: coded reads are not supported in cluster mode", serve.ErrBadQuery))
			return
		}
		sla, target = body.SLA, body.Target
	default:
		r.writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET or POST required"})
		return
	}
	if !(sla > 0) || math.IsInf(sla, 0) {
		r.badRequest(w, fmt.Errorf("%w: SLA %v must be positive and finite", serve.ErrBadQuery, sla))
		return
	}
	if !(target > 0) || target > 1 {
		r.badRequest(w, fmt.Errorf("%w: target %v outside (0,1]", serve.ErrBadQuery, target))
		return
	}
	if !r.acquire(w) {
		return
	}
	defer r.release()

	ctx := req.Context()
	current := r.rates.totalRate()
	if current <= 0 {
		r.queryError(w, req, serve.ErrNotReady)
		return
	}
	cur, err := r.fanOut(ctx, []float64{sla}, 1)
	if err != nil {
		r.queryError(w, req, err)
		return
	}
	adv := AdviceResponse{
		Advice: serve.Advice{
			SLA:              sla,
			Target:           target,
			CurrentRate:      current,
			CurrentMeetRatio: cur.merged.Estimates[0],
			Saturated:        cur.merged.Saturated,
		},
		Degraded: cur.degraded,
	}
	margin := func(ctx context.Context, rate float64) (float64, bool, error) {
		res, err := r.fanOut(ctx, []float64{sla}, rate/current)
		if err != nil {
			return 0, false, err
		}
		if res.merged.Saturated {
			return 0, false, nil
		}
		return res.merged.Estimates[0] - target, true, nil
	}
	maxRate, err := core.MaxRateWhereValueContext(ctx, margin, current/64, current/200)
	if err != nil {
		r.queryError(w, req, err)
		return
	}
	adv.MaxAdmissibleRate = maxRate
	adv.Headroom = maxRate - current
	adv.Admit = !adv.Saturated && adv.CurrentMeetRatio >= target && adv.Headroom >= 0
	r.served.Inc()
	r.writeJSON(w, http.StatusOK, adv)
}

// ---------------------------------------------------------------------------
// /healthz and /metrics/prom

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		r.writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET required"})
		return
	}
	states := r.prober.snapshot()
	comps := make(map[string]serve.ComponentHealth, len(states)+1)
	status := "ok"
	upCount := 0
	for n, st := range states {
		c := serve.ComponentHealth{Status: "ok",
			Detail: fmt.Sprintf("generation %d", st.gen)}
		if !st.up {
			c = serve.ComponentHealth{Status: "degraded",
				Detail: fmt.Sprintf("unreachable after %d consecutive failures", st.fails)}
			status = "degraded"
		} else {
			upCount++
		}
		comps[fmt.Sprintf("shard-%d", n)] = c
	}
	rate := r.rates.totalRate()
	ingest := serve.ComponentHealth{Status: "ok",
		Detail: fmt.Sprintf("total rate %.1f req/s", rate)}
	if rate <= 0 {
		ingest = serve.ComponentHealth{Status: "degraded", Detail: "no observations forwarded yet"}
	}
	comps["ingest"] = ingest
	r.writeJSON(w, http.StatusOK, serve.HealthResponse{
		Status:     status,
		Ready:      rate > 0 && upCount > 0,
		Components: comps,
	})
}

func (r *Router) handleMetricsProm(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		r.writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET required"})
		return
	}
	w.Header().Set("Content-Type", obs.ContentType)
	if err := r.reg.WritePrometheus(w); err != nil {
		r.logf("cluster: writing /metrics/prom: %v", err)
	}
}

// ---------------------------------------------------------------------------
// Parsing helpers (mirroring the serve tier's GET conventions).

func parseFloat(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", serve.ErrBadQuery, err)
	}
	return v, nil
}

func parseFloats(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := parseFloat(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
