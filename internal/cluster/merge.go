package cluster

import (
	"fmt"
	"math"
)

// Partial is one shard's additive slice of the cluster mixture: the
// weighted CDF sums Σ rate_j·F_j(sla_i) over its covered devices and their
// aggregate rate (the serve.PartialResponse payload, decoupled here so the
// merge is a pure function the fuzz target can drive directly).
type Partial struct {
	WeightedSums []float64
	Rate         float64
	Saturated    bool
}

// Merged is the cluster-wide prediction assembled from shard partials.
type Merged struct {
	// Estimates[i] is the merged meet ratio at sla_i, renormalized over the
	// live rate so a degraded tier still reports the survivors' truth.
	Estimates []float64
	// Low and High bracket the estimate against the lost devices: Low
	// assumes every lost request misses its SLA (contributes 0 to the
	// numerator), High assumes every lost request meets it (contributes its
	// full rate). With nothing lost the bounds collapse onto the estimate.
	Low, High []float64
	// LiveRate is the aggregate rate the surviving shards answered for;
	// LostRate is the rate attributed to devices with no live replica.
	LiveRate, LostRate float64
	// Saturated reports that some shard's slice had no steady state — the
	// tier-wide operating point is overloaded.
	Saturated bool
}

// MergePartials combines shard partials into the cluster prediction over n
// SLA bounds. lostRate is the aggregate request rate of devices whose whole
// replica chain is unreachable (0 when fully healthy). The merge is the
// paper's Eq. 3 numerator/denominator split: estimate_i = Σ sums_i / Σ
// rates. Estimates and bounds are clamped to [0,1] — floating summation
// must never leak an impossible probability. With a single partial and no
// loss the merge is an exact passthrough of that shard's own CDF.
func MergePartials(parts []Partial, lostRate float64, n int) (Merged, error) {
	if n < 1 {
		return Merged{}, fmt.Errorf("%w: merge over %d SLAs", ErrBadConfig, n)
	}
	if lostRate < 0 || math.IsNaN(lostRate) || math.IsInf(lostRate, 0) {
		return Merged{}, fmt.Errorf("%w: lost rate %v", ErrBadConfig, lostRate)
	}
	m := Merged{
		Estimates: make([]float64, n),
		Low:       make([]float64, n),
		High:      make([]float64, n),
		LostRate:  lostRate,
	}
	sums := make([]float64, n)
	for _, p := range parts {
		if len(p.WeightedSums) != n {
			return Merged{}, fmt.Errorf("%w: partial carries %d sums, want %d",
				ErrBadConfig, len(p.WeightedSums), n)
		}
		if p.Rate < 0 || math.IsNaN(p.Rate) || math.IsInf(p.Rate, 0) {
			return Merged{}, fmt.Errorf("%w: partial rate %v", ErrBadConfig, p.Rate)
		}
		for i, s := range p.WeightedSums {
			if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
				return Merged{}, fmt.Errorf("%w: weighted sum %v", ErrBadConfig, s)
			}
			sums[i] += s
		}
		m.LiveRate += p.Rate
		m.Saturated = m.Saturated || p.Saturated
	}
	total := m.LiveRate + lostRate
	for i := range sums {
		if m.LiveRate > 0 {
			m.Estimates[i] = clamp01(sums[i] / m.LiveRate)
		}
		if total > 0 {
			m.Low[i] = clamp01(sums[i] / total)
			m.High[i] = clamp01((sums[i] + lostRate) / total)
		}
	}
	return m, nil
}

func clamp01(x float64) float64 { return math.Min(1, math.Max(0, x)) }
