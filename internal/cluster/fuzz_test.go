package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzPartialMerge drives MergePartials with random shard counts, rates and
// per-shard weighted-CDF sums and checks the merge invariants: every output
// lands in [0,1]; monotone per-shard sums (CDFs are nondecreasing in the SLA
// grid, and positive rates preserve that through the weighting) merge to
// monotone estimates and bounds; Low <= Estimate <= High everywhere; a lost
// rate of zero collapses the bounds onto the estimate; and a single partial
// with no losses is a pure passthrough of its own CDF.
func FuzzPartialMerge(f *testing.F) {
	f.Add(uint8(1), uint8(3), uint16(0), int64(1))
	f.Add(uint8(3), uint8(4), uint16(100), int64(2))
	f.Add(uint8(8), uint8(1), uint16(65535), int64(3))
	f.Add(uint8(2), uint8(16), uint16(1), int64(4))
	f.Fuzz(func(t *testing.T, shardsRaw, gridRaw uint8, lostMilli uint16, seed int64) {
		shards := 1 + int(shardsRaw)%8
		n := 1 + int(gridRaw)%16
		rng := rand.New(rand.NewSource(seed))

		parts := make([]Partial, shards)
		for s := range parts {
			rate := rng.Float64() * 1000
			sums := make([]float64, n)
			cdf := 0.0
			for i := range sums {
				// Monotone CDF in [0,1], scaled by the shard's rate.
				cdf += rng.Float64() * (1 - cdf) / 2
				sums[i] = cdf * rate
			}
			parts[s] = Partial{WeightedSums: sums, Rate: rate, Saturated: rng.Intn(8) == 0}
		}
		lost := float64(lostMilli) / 65.0 // up to ~1000, same order as the rates

		m, err := MergePartials(parts, lost, n)
		if err != nil {
			t.Fatalf("valid inputs rejected: %v", err)
		}

		for i := 0; i < n; i++ {
			for name, v := range map[string]float64{
				"estimate": m.Estimates[i], "low": m.Low[i], "high": m.High[i],
			} {
				if math.IsNaN(v) || v < 0 || v > 1 {
					t.Fatalf("%s[%d] = %v outside [0,1]", name, i, v)
				}
			}
			if m.Low[i] > m.Estimates[i]+1e-12 || m.Estimates[i] > m.High[i]+1e-12 {
				t.Fatalf("ordering violated at %d: low %v, estimate %v, high %v",
					i, m.Low[i], m.Estimates[i], m.High[i])
			}
			if i > 0 {
				if m.Estimates[i] < m.Estimates[i-1]-1e-12 {
					t.Fatalf("estimates not monotone at %d: %v < %v", i, m.Estimates[i], m.Estimates[i-1])
				}
				if m.Low[i] < m.Low[i-1]-1e-12 || m.High[i] < m.High[i-1]-1e-12 {
					t.Fatalf("bounds not monotone at %d", i)
				}
			}
			if lost == 0 && (m.Low[i] != m.Estimates[i] || m.High[i] != m.Estimates[i]) {
				t.Fatalf("no losses but bounds did not collapse at %d: [%v,%v] around %v",
					i, m.Low[i], m.High[i], m.Estimates[i])
			}
		}

		// Saturation propagates iff some partial was saturated.
		anySat := false
		for _, p := range parts {
			anySat = anySat || p.Saturated
		}
		if m.Saturated != anySat {
			t.Fatalf("saturated = %v, partials say %v", m.Saturated, anySat)
		}

		// n=1 shard, no losses: passthrough of the shard's own CDF.
		single, err := MergePartials(parts[:1], 0, n)
		if err != nil {
			t.Fatalf("single-partial merge rejected: %v", err)
		}
		for i := 0; i < n; i++ {
			want := 0.0
			if parts[0].Rate > 0 {
				want = math.Min(1, parts[0].WeightedSums[i]/parts[0].Rate)
			}
			if math.Abs(single.Estimates[i]-want) > 1e-9 {
				t.Fatalf("passthrough[%d] = %v, shard's own CDF %v", i, single.Estimates[i], want)
			}
		}
	})
}
