// Package cache implements a byte-capacity LRU cache that models the page
// cache of a backend storage server. Entries carry a class label (index,
// metadata, data) so the simulator can report per-operation cache miss
// ratios — the quantities the analytic model consumes as online metrics.
package cache

import (
	"container/list"
	"errors"
	"fmt"
)

// ErrBadCapacity reports a nonpositive cache capacity.
var ErrBadCapacity = errors.New("cache: capacity must be positive")

// Class labels a cached entry with the operation type that loads it.
type Class uint8

// The three entry classes of a cloud object storage backend.
const (
	ClassIndex Class = iota
	ClassMeta
	ClassData
	numClasses
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassIndex:
		return "index"
	case ClassMeta:
		return "meta"
	case ClassData:
		return "data"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Stats counts accesses per class, plus capacity-pressure evictions.
type Stats struct {
	Hits   [numClasses]uint64
	Misses [numClasses]uint64
	// Evictions counts entries removed to make room (by Access, Put or a
	// shrinking Resize); explicit Remove and Flush are not evictions.
	Evictions uint64
}

// MissRatio returns misses/(hits+misses) for a class, or 0 if unobserved.
func (s *Stats) MissRatio(c Class) float64 {
	total := s.Hits[c] + s.Misses[c]
	if total == 0 {
		return 0
	}
	return float64(s.Misses[c]) / float64(total)
}

// Accesses returns hits+misses for a class.
func (s *Stats) Accesses(c Class) uint64 { return s.Hits[c] + s.Misses[c] }

// Sub returns the delta s - prev, for windowed metrics.
func (s Stats) Sub(prev Stats) Stats {
	var out Stats
	for i := range s.Hits {
		out.Hits[i] = s.Hits[i] - prev.Hits[i]
		out.Misses[i] = s.Misses[i] - prev.Misses[i]
	}
	out.Evictions = s.Evictions - prev.Evictions
	return out
}

type entry struct {
	key  string
	size int64
}

// LRU is a byte-capacity least-recently-used cache. It stores only keys and
// sizes (no payloads): the simulator needs residency decisions, not bytes.
// Not safe for concurrent use.
type LRU struct {
	capacity int64
	used     int64
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // key -> element holding *entry
	stats    Stats
}

// NewLRU returns an LRU with the given byte capacity.
func NewLRU(capacity int64) (*LRU, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadCapacity, capacity)
	}
	return &LRU{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}, nil
}

// Capacity returns the configured byte capacity.
func (c *LRU) Capacity() int64 { return c.capacity }

// Used returns the bytes currently cached.
func (c *LRU) Used() int64 { return c.used }

// Len returns the number of cached entries.
func (c *LRU) Len() int { return c.ll.Len() }

// Stats returns a copy of the access counters.
func (c *LRU) Stats() Stats { return c.stats }

// Contains reports residency without touching recency or counters.
func (c *LRU) Contains(key string) bool {
	_, ok := c.items[key]
	return ok
}

// Access simulates an access of class cl to key of the given size. On a hit
// the entry is refreshed; on a miss it is inserted (evicting LRU entries as
// needed) and false is returned. Entries larger than the whole cache are
// never inserted (they would evict everything for no reuse benefit —
// mirroring how a page cache thrashes through oversized streams).
func (c *LRU) Access(cl Class, key string, size int64) bool {
	if el, ok := c.items[key]; ok {
		c.stats.Hits[cl]++
		c.ll.MoveToFront(el)
		return true
	}
	c.stats.Misses[cl]++
	if size > c.capacity || size < 0 {
		return false
	}
	c.evictFor(size)
	el := c.ll.PushFront(&entry{key: key, size: size})
	c.items[key] = el
	c.used += size
	return false
}

// Put inserts or refreshes an entry without counting an access (used to
// pre-warm the cache).
func (c *LRU) Put(key string, size int64) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	if size > c.capacity || size < 0 {
		return
	}
	c.evictFor(size)
	el := c.ll.PushFront(&entry{key: key, size: size})
	c.items[key] = el
	c.used += size
}

// Resize changes the byte capacity, evicting least-recently-used entries
// until the cached bytes fit. Growing never evicts. Failure injection uses
// it to model a page cache shrinking under memory pressure mid-run.
func (c *LRU) Resize(capacity int64) error {
	if capacity <= 0 {
		return fmt.Errorf("%w: %d", ErrBadCapacity, capacity)
	}
	c.capacity = capacity
	c.evictFor(0)
	return nil
}

// Remove evicts key if present.
func (c *LRU) Remove(key string) {
	if el, ok := c.items[key]; ok {
		c.removeElement(el)
	}
}

// Flush empties the cache but keeps the counters.
func (c *LRU) Flush() {
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.used = 0
}

func (c *LRU) evictFor(size int64) {
	for c.used+size > c.capacity {
		back := c.ll.Back()
		if back == nil {
			return
		}
		c.removeElement(back)
		c.stats.Evictions++
	}
}

func (c *LRU) removeElement(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.used -= e.size
}
