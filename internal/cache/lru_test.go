package cache

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewLRUValidation(t *testing.T) {
	if _, err := NewLRU(0); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := NewLRU(-5); err == nil {
		t.Error("negative capacity should fail")
	}
}

func TestResize(t *testing.T) {
	c, err := NewLRU(100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), 10) // fills to capacity, k0 is LRU
	}
	if c.Used() != 100 {
		t.Fatalf("used %d, want 100", c.Used())
	}
	// Shrinking evicts from the LRU end until the bytes fit.
	if err := c.Resize(45); err != nil {
		t.Fatal(err)
	}
	if c.Capacity() != 45 || c.Used() != 40 || c.Len() != 4 {
		t.Errorf("after shrink: cap=%d used=%d len=%d, want 45/40/4", c.Capacity(), c.Used(), c.Len())
	}
	for i := 0; i < 6; i++ {
		if c.Contains(fmt.Sprintf("k%d", i)) {
			t.Errorf("k%d survived the shrink; LRU entries must go first", i)
		}
	}
	for i := 6; i < 10; i++ {
		if !c.Contains(fmt.Sprintf("k%d", i)) {
			t.Errorf("k%d evicted; MRU entries must survive", i)
		}
	}
	// Growing never evicts and new inserts use the headroom.
	if err := c.Resize(200); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 4 || c.Used() != 40 {
		t.Errorf("grow evicted entries: used=%d len=%d", c.Used(), c.Len())
	}
	c.Put("big", 150)
	if !c.Contains("big") || c.Used() != 190 {
		t.Errorf("headroom not usable after grow: used=%d", c.Used())
	}
	// Invalid capacities are rejected without touching state.
	if err := c.Resize(0); err == nil {
		t.Error("Resize(0) should fail")
	}
	if err := c.Resize(-7); err == nil {
		t.Error("Resize(-7) should fail")
	}
	if c.Capacity() != 200 {
		t.Errorf("failed resize changed capacity to %d", c.Capacity())
	}
}

func TestHitMissAccounting(t *testing.T) {
	c, err := NewLRU(100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(ClassIndex, "a", 10) {
		t.Error("first access must miss")
	}
	if !c.Access(ClassIndex, "a", 10) {
		t.Error("second access must hit")
	}
	st := c.Stats()
	if st.Hits[ClassIndex] != 1 || st.Misses[ClassIndex] != 1 {
		t.Errorf("stats = %+v", st)
	}
	if got := st.MissRatio(ClassIndex); got != 0.5 {
		t.Errorf("miss ratio = %v", got)
	}
	if got := st.MissRatio(ClassMeta); got != 0 {
		t.Errorf("unobserved class miss ratio = %v", got)
	}
	if st.Accesses(ClassIndex) != 2 {
		t.Errorf("accesses = %d", st.Accesses(ClassIndex))
	}
}

func TestEvictionIsLRU(t *testing.T) {
	c, _ := NewLRU(30)
	c.Access(ClassData, "a", 10)
	c.Access(ClassData, "b", 10)
	c.Access(ClassData, "c", 10)
	// Refresh "a" so "b" is now least recently used.
	c.Access(ClassData, "a", 10)
	c.Access(ClassData, "d", 10) // evicts b
	if !c.Contains("a") || !c.Contains("c") || !c.Contains("d") {
		t.Error("wrong survivors")
	}
	if c.Contains("b") {
		t.Error("b should have been evicted")
	}
	if got := c.Stats().Evictions; got != 1 {
		t.Errorf("Evictions = %d, want 1", got)
	}
	// Explicit removal and flushing are not capacity evictions.
	c.Remove("a")
	c.Flush()
	if got := c.Stats().Evictions; got != 1 {
		t.Errorf("Evictions after Remove+Flush = %d, want 1", got)
	}
	// A shrinking resize evicts the rest.
	c.Access(ClassData, "x", 10)
	c.Access(ClassData, "y", 10)
	if err := c.Resize(10); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Evictions; got != 2 {
		t.Errorf("Evictions after shrink = %d, want 2", got)
	}
	delta := c.Stats().Sub(Stats{Evictions: 1})
	if delta.Evictions != 1 {
		t.Errorf("Sub delta evictions = %d, want 1", delta.Evictions)
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c, _ := NewLRU(1000)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(500))
		size := int64(rng.Intn(300) + 1)
		c.Access(ClassData, key, size)
		if c.Used() > c.Capacity() {
			t.Fatalf("used %d > capacity %d", c.Used(), c.Capacity())
		}
	}
}

func TestOversizedEntryNotInserted(t *testing.T) {
	c, _ := NewLRU(100)
	c.Access(ClassData, "big", 200)
	if c.Contains("big") {
		t.Error("oversized entry must not be cached")
	}
	if c.Used() != 0 {
		t.Errorf("used = %d", c.Used())
	}
	c.Access(ClassData, "ok", 50)
	c.Access(ClassData, "big", 200) // again: must not evict "ok"
	if !c.Contains("ok") {
		t.Error("oversized miss should not evict resident entries")
	}
	c.Put("big", 200)
	if c.Contains("big") {
		t.Error("oversized Put must be ignored")
	}
	c.Access(ClassData, "neg", -1)
	if c.Contains("neg") {
		t.Error("negative size must be ignored")
	}
}

func TestPutAndRemove(t *testing.T) {
	c, _ := NewLRU(100)
	c.Put("a", 40)
	if !c.Contains("a") {
		t.Error("Put should insert")
	}
	st := c.Stats()
	if st.Hits[ClassIndex]+st.Misses[ClassIndex] != 0 {
		t.Error("Put must not count accesses")
	}
	c.Put("a", 40) // refresh, no growth
	if c.Used() != 40 {
		t.Errorf("used = %d", c.Used())
	}
	c.Remove("a")
	if c.Contains("a") || c.Used() != 0 {
		t.Error("Remove failed")
	}
	c.Remove("missing") // no-op
}

func TestFlushKeepsCounters(t *testing.T) {
	c, _ := NewLRU(100)
	c.Access(ClassMeta, "a", 10)
	c.Access(ClassMeta, "a", 10)
	c.Flush()
	if c.Len() != 0 || c.Used() != 0 {
		t.Error("flush should empty the cache")
	}
	if c.Stats().Hits[ClassMeta] != 1 {
		t.Error("flush should keep counters")
	}
	if c.Access(ClassMeta, "a", 10) {
		t.Error("entry must be gone after flush")
	}
}

func TestStatsSub(t *testing.T) {
	c, _ := NewLRU(100)
	c.Access(ClassIndex, "a", 1)
	before := c.Stats()
	c.Access(ClassIndex, "a", 1)
	c.Access(ClassIndex, "b", 1)
	delta := c.Stats().Sub(before)
	if delta.Hits[ClassIndex] != 1 || delta.Misses[ClassIndex] != 1 {
		t.Errorf("delta = %+v", delta)
	}
}

func TestClassString(t *testing.T) {
	if ClassIndex.String() != "index" || ClassMeta.String() != "meta" || ClassData.String() != "data" {
		t.Error("class names wrong")
	}
	if Class(9).String() != "Class(9)" {
		t.Errorf("unknown class = %q", Class(9).String())
	}
}

// TestInvariantsProperty drives random operation sequences and checks the
// core invariants: used <= capacity, used equals the sum of resident sizes,
// and the item map matches the list.
func TestInvariantsProperty(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		c, _ := NewLRU(500)
		rng := rand.New(rand.NewSource(seed))
		sizes := map[string]int64{}
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op%64)
			size := int64(op%200) + 1
			resident := c.Contains(key)
			switch op % 3 {
			case 0:
				c.Access(Class(op%3), key, size)
			case 1:
				c.Put(key, size)
			case 2:
				if rng.Intn(4) == 0 {
					c.Remove(key)
				} else {
					c.Access(ClassData, key, size)
				}
			}
			// A hit keeps the originally inserted size; only record the
			// size when this operation inserted the key.
			if !resident && c.Contains(key) {
				sizes[key] = size
			}
			if c.Used() > c.Capacity() {
				return false
			}
		}
		// Recompute used from residents.
		var total int64
		for k, s := range sizes {
			if c.Contains(k) {
				total += s
			}
		}
		return total == c.Used()
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkLRUAccess(b *testing.B) {
	c, _ := NewLRU(1 << 20)
	rng := rand.New(rand.NewSource(1))
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("obj-%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(ClassData, keys[rng.Intn(len(keys))], 512)
	}
}
