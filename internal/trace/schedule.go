package trace

import (
	"errors"
	"fmt"
)

// ErrBadSchedule reports an invalid phase list.
var ErrBadSchedule = errors.New("trace: schedule phases need positive rate and duration")

// Phase is a constant-rate segment of a workload schedule.
type Phase struct {
	// Rate is the request arrival rate in requests/second.
	Rate float64
	// Duration is the phase length in seconds.
	Duration float64
	// Label tags the phase (warmup, transition, or the benchmark step's
	// rate) for reporting.
	Label string
}

// Schedule is a sequence of phases replayed back to back. It mirrors the
// paper's workload construction: a warmup phase, a transition phase, and a
// benchmarking phase whose rate steps up by a fixed increment.
type Schedule []Phase

// Validate checks all phases.
func (s Schedule) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("%w: empty schedule", ErrBadSchedule)
	}
	for i, p := range s {
		if p.Rate <= 0 || p.Duration <= 0 {
			return fmt.Errorf("%w: phase %d rate=%v duration=%v",
				ErrBadSchedule, i, p.Rate, p.Duration)
		}
	}
	return nil
}

// TotalDuration returns the summed phase durations.
func (s Schedule) TotalDuration() float64 {
	total := 0.0
	for _, p := range s {
		total += p.Duration
	}
	return total
}

// ExpectedRequests returns the expected number of arrivals.
func (s Schedule) ExpectedRequests() float64 {
	total := 0.0
	for _, p := range s {
		total += p.Rate * p.Duration
	}
	return total
}

// PaperSchedule builds the paper's three-part workload: a warmup phase, a
// low-rate transition phase, and benchmark steps from startRate to endRate
// (inclusive) in increments of stepRate, each lasting stepDur seconds.
func PaperSchedule(warmRate, warmDur, transRate, transDur, startRate, endRate, stepRate, stepDur float64) (Schedule, error) {
	if stepRate <= 0 || startRate > endRate {
		return nil, fmt.Errorf("%w: steps from %v to %v by %v",
			ErrBadSchedule, startRate, endRate, stepRate)
	}
	var s Schedule
	if warmDur > 0 {
		s = append(s, Phase{Rate: warmRate, Duration: warmDur, Label: "warmup"})
	}
	if transDur > 0 {
		s = append(s, Phase{Rate: transRate, Duration: transDur, Label: "transition"})
	}
	for r := startRate; r <= endRate+1e-9; r += stepRate {
		s = append(s, Phase{Rate: r, Duration: stepDur, Label: fmt.Sprintf("rate=%g", r)})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// BenchmarkPhases returns the indices of the phases that belong to the
// benchmarking part (everything after warmup/transition).
func (s Schedule) BenchmarkPhases() []int {
	var out []int
	for i, p := range s {
		if p.Label != "warmup" && p.Label != "transition" {
			out = append(out, i)
		}
	}
	return out
}
