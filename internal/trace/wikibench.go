package trace

import (
	"bufio"
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
)

// Wikibench support: the paper builds its workload from the trace published
// with wikibench (Urdaneta et al.), keeping only media requests (URLs under
// upload.wikimedia.org). Wikibench trace lines have the form
//
//	<counter> <epoch-timestamp> <url> <save-flag>
//
// e.g. "4619 1194892800.250 http://upload.wikimedia.org/wikipedia/commons/x.jpg -".
// The trace carries no object sizes (the paper resolved sizes by re-fetching
// each object from Wikipedia); ParseWikibench assigns sizes by hashing each
// URL into a deterministic draw from a configurable size distribution, so a
// URL always gets the same size.

// WikibenchOptions configures trace conversion.
type WikibenchOptions struct {
	// MediaOnly keeps only upload.wikimedia.org requests (the paper's
	// filter). When false, every line is converted.
	MediaOnly bool
	// Sizes draws object sizes; nil means WikipediaLikeSizes().
	Sizes interface {
		Sample(*rand.Rand) float64
	}
	// SkipMalformed drops unparsable lines instead of failing.
	SkipMalformed bool
}

// ParseWikibench converts a wikibench-format trace into Records. Timestamps
// are rebased so the first kept request arrives at t=0. Object IDs are
// MD5-derived from the URL, and sizes are deterministic per URL.
func ParseWikibench(r io.Reader, opts WikibenchOptions) ([]Record, error) {
	sizes := opts.Sizes
	if sizes == nil {
		sizes = WikipediaLikeSizes()
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Record
	base := -1.0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			if opts.SkipMalformed {
				continue
			}
			return nil, fmt.Errorf("%w: wikibench line %d: %q", ErrBadRecord, line, text)
		}
		ts, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			if opts.SkipMalformed {
				continue
			}
			return nil, fmt.Errorf("%w: wikibench line %d: timestamp %q", ErrBadRecord, line, fields[1])
		}
		url := fields[2]
		if opts.MediaOnly && !strings.Contains(url, "upload.wikimedia.org") {
			continue
		}
		if base < 0 {
			base = ts
		}
		id, size := urlObject(url, sizes)
		out = append(out, Record{At: ts - base, Object: id, Size: size, Op: OpGet})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	return out, nil
}

// urlObject derives a stable object ID and size from a URL.
func urlObject(url string, sizes interface {
	Sample(*rand.Rand) float64
}) (uint64, int64) {
	sum := md5.Sum([]byte(url))
	id := binary.BigEndian.Uint64(sum[:8])
	// Deterministic per-URL size: seed a throwaway RNG from the other
	// half of the digest.
	seed := int64(binary.BigEndian.Uint64(sum[8:]))
	rng := rand.New(rand.NewSource(seed))
	size := int64(sizes.Sample(rng))
	if size < 1 {
		size = 1
	}
	return id, size
}
