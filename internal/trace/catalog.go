// Package trace provides the workload toolkit: an object catalog with
// Zipf-like popularity and synthetic sizes, phased Poisson arrival
// schedules, trace generation, timestamp rescaling (the paper's mechanism
// for sweeping arrival rates), and CSV serialization.
//
// It substitutes for the 50-hour Wikipedia media trace used in the paper:
// that trace's only surviving roles in the evaluation are its object
// popularity skew and its size marginal (~32 KB mean, small and
// right-skewed), because the paper rewrites every timestamp to control the
// arrival rate. Both marginals are generated directly here.
package trace

import (
	"errors"
	"fmt"
	"math/rand"

	"cosmodel/internal/dist"
)

// ErrBadCatalog reports invalid catalog parameters.
var ErrBadCatalog = errors.New("trace: catalog needs at least one object and a positive size distribution")

// Catalog is a fixed population of objects with sizes and a Zipf popularity
// law (rank 1 = most popular). Object IDs are 0-based ranks permuted by a
// deterministic shuffle, so that popular objects are scattered across
// partitions rather than clustered by ID.
type Catalog struct {
	sizes      []int64
	rankToID   []uint64
	totalBytes int64
	zipfS      float64
	zipfV      float64
}

// NewCatalog builds a catalog of n objects with sizes drawn from sizeDist
// (values are rounded and clamped to >= 1 byte) and Zipf(s, v) popularity,
// s > 1. The paper's workload characteristics suggest s in [1.05, 1.3].
func NewCatalog(n int, sizeDist dist.Distribution, zipfS, zipfV float64, seed int64) (*Catalog, error) {
	if n < 1 || sizeDist == nil || zipfS <= 1 || zipfV < 1 {
		return nil, fmt.Errorf("%w: n=%d zipfS=%v zipfV=%v", ErrBadCatalog, n, zipfS, zipfV)
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Catalog{
		sizes:    make([]int64, n),
		rankToID: make([]uint64, n),
		zipfS:    zipfS,
		zipfV:    zipfV,
	}
	for i := range c.sizes {
		v := int64(sizeDist.Sample(rng))
		if v < 1 {
			v = 1
		}
		c.sizes[i] = v
		c.totalBytes += v
	}
	perm := rng.Perm(n)
	for rank, id := range perm {
		c.rankToID[rank] = uint64(id)
	}
	return c, nil
}

// Len returns the number of objects.
func (c *Catalog) Len() int { return len(c.sizes) }

// Size returns the size in bytes of the object with the given ID.
func (c *Catalog) Size(id uint64) int64 { return c.sizes[id] }

// TotalBytes returns the summed size of all objects.
func (c *Catalog) TotalBytes() int64 { return c.totalBytes }

// MeanSize returns the average object size in bytes.
func (c *Catalog) MeanSize() float64 {
	return float64(c.totalBytes) / float64(len(c.sizes))
}

// Sampler returns a popularity sampler bound to rng. Samplers are cheap;
// create one per goroutine/stream.
func (c *Catalog) Sampler(rng *rand.Rand) *Sampler {
	return &Sampler{
		catalog: c,
		zipf:    rand.NewZipf(rng, c.zipfS, c.zipfV, uint64(len(c.sizes)-1)),
	}
}

// Sampler draws object IDs according to the catalog's popularity law.
type Sampler struct {
	catalog *Catalog
	zipf    *rand.Zipf
}

// Next returns the next sampled object ID.
func (s *Sampler) Next() uint64 {
	rank := s.zipf.Uint64()
	return s.catalog.rankToID[rank]
}

// PopularIDs returns the ids of the k most popular objects (useful for cache
// pre-warming).
func (c *Catalog) PopularIDs(k int) []uint64 {
	if k > len(c.rankToID) {
		k = len(c.rankToID)
	}
	out := make([]uint64, k)
	copy(out, c.rankToID[:k])
	return out
}
