package trace

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func testCatalog(t *testing.T, n int) *Catalog {
	t.Helper()
	c, err := NewCatalog(n, WikipediaLikeSizes(), 1.2, 1, 77)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCatalogValidation(t *testing.T) {
	sizes := WikipediaLikeSizes()
	if _, err := NewCatalog(0, sizes, 1.2, 1, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewCatalog(10, nil, 1.2, 1, 1); err == nil {
		t.Error("nil size dist should fail")
	}
	if _, err := NewCatalog(10, sizes, 1.0, 1, 1); err == nil {
		t.Error("zipf s<=1 should fail")
	}
	if _, err := NewCatalog(10, sizes, 1.2, 0.5, 1); err == nil {
		t.Error("zipf v<1 should fail")
	}
}

func TestCatalogSizes(t *testing.T) {
	c := testCatalog(t, 20000)
	if c.Len() != 20000 {
		t.Fatalf("len = %d", c.Len())
	}
	mean := c.MeanSize()
	if mean < 25*1024 || mean > 40*1024 {
		t.Errorf("mean size = %v, want ~32 KiB", mean)
	}
	var total int64
	for id := uint64(0); id < uint64(c.Len()); id++ {
		s := c.Size(id)
		if s < 1 {
			t.Fatalf("object %d has size %d", id, s)
		}
		total += s
	}
	if total != c.TotalBytes() {
		t.Errorf("TotalBytes = %d, want %d", c.TotalBytes(), total)
	}
}

func TestSamplerIsSkewed(t *testing.T) {
	c := testCatalog(t, 10000)
	rng := rand.New(rand.NewSource(9))
	s := c.Sampler(rng)
	counts := map[uint64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Next()]++
	}
	// Zipf: the most popular object should take a noticeable share and the
	// sampled set should be far smaller than uniform would give.
	max := 0
	for _, v := range counts {
		if v > max {
			max = v
		}
	}
	if float64(max)/n < 0.02 {
		t.Errorf("top object share = %v, want skewed", float64(max)/n)
	}
	if len(counts) > n/2 {
		t.Errorf("%d unique objects in %d samples — not skewed", len(counts), n)
	}
	// The most popular objects by construction should match PopularIDs.
	top := c.PopularIDs(1)[0]
	if counts[top] != max {
		t.Logf("note: sampled max %d, rank-1 count %d", max, counts[top])
	}
}

func TestPopularIDs(t *testing.T) {
	c := testCatalog(t, 100)
	ids := c.PopularIDs(10)
	if len(ids) != 10 {
		t.Fatalf("len = %d", len(ids))
	}
	if got := c.PopularIDs(1000); len(got) != 100 {
		t.Errorf("clamped len = %d", len(got))
	}
}

func TestScheduleValidate(t *testing.T) {
	if err := (Schedule{}).Validate(); err == nil {
		t.Error("empty schedule should fail")
	}
	if err := (Schedule{{Rate: 0, Duration: 1}}).Validate(); err == nil {
		t.Error("zero rate should fail")
	}
	if err := (Schedule{{Rate: 1, Duration: -1}}).Validate(); err == nil {
		t.Error("negative duration should fail")
	}
	s := Schedule{{Rate: 10, Duration: 5}, {Rate: 20, Duration: 2}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalDuration(); got != 7 {
		t.Errorf("duration = %v", got)
	}
	if got := s.ExpectedRequests(); got != 90 {
		t.Errorf("expected requests = %v", got)
	}
}

func TestPaperSchedule(t *testing.T) {
	s, err := PaperSchedule(300, 3600, 10, 600, 10, 350, 5, 300)
	if err != nil {
		t.Fatal(err)
	}
	if s[0].Label != "warmup" || s[1].Label != "transition" {
		t.Errorf("phases: %v %v", s[0].Label, s[1].Label)
	}
	bench := s.BenchmarkPhases()
	if len(bench) != 69 { // 10,15,...,350
		t.Errorf("benchmark steps = %d, want 69", len(bench))
	}
	if s[bench[0]].Rate != 10 || s[bench[len(bench)-1]].Rate != 350 {
		t.Error("step endpoints wrong")
	}
	if _, err := PaperSchedule(1, 1, 1, 1, 100, 50, 5, 60); err == nil {
		t.Error("start>end should fail")
	}
	if _, err := PaperSchedule(1, 1, 1, 1, 10, 20, 0, 60); err == nil {
		t.Error("zero step should fail")
	}
}

func TestGeneratePoissonArrivals(t *testing.T) {
	c := testCatalog(t, 1000)
	s := Schedule{{Rate: 200, Duration: 50, Label: "x"}}
	recs, err := Generate(c, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Expect ~10000 arrivals.
	if len(recs) < 9000 || len(recs) > 11000 {
		t.Fatalf("generated %d records, want ~10000", len(recs))
	}
	// Timestamps ordered and inside the phase.
	for i, r := range recs {
		if r.At < 0 || r.At >= 50 {
			t.Fatalf("record %d at %v outside phase", i, r.At)
		}
		if i > 0 && r.At < recs[i-1].At {
			t.Fatal("timestamps not monotone")
		}
		if r.Size != c.Size(r.Object) {
			t.Fatal("denormalized size mismatch")
		}
	}
	// Interarrival CV ~ 1 for Poisson.
	var gaps []float64
	for i := 1; i < len(recs); i++ {
		gaps = append(gaps, recs[i].At-recs[i-1].At)
	}
	mean, sd := meanStd(gaps)
	if cv := sd / mean; cv < 0.9 || cv > 1.1 {
		t.Errorf("interarrival CV = %v, want ~1", cv)
	}
}

func meanStd(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	return mean, sd
}

func TestGenerateInvalidSchedule(t *testing.T) {
	c := testCatalog(t, 10)
	if _, err := Generate(c, Schedule{}, 1); err == nil {
		t.Error("empty schedule should fail")
	}
}

func TestRescale(t *testing.T) {
	recs := []Record{{At: 1, Object: 1, Size: 10}, {At: 2, Object: 2, Size: 20}}
	out, err := Rescale(recs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].At != 0.5 || out[1].At != 1 {
		t.Errorf("rescaled = %+v", out)
	}
	// Original untouched.
	if recs[0].At != 1 {
		t.Error("Rescale must copy")
	}
	if _, err := Rescale(recs, 0); err == nil {
		t.Error("factor 0 should fail")
	}
	if _, err := Rescale(recs, -1); err == nil {
		t.Error("negative factor should fail")
	}
}

func TestRescaleDoublesRate(t *testing.T) {
	c := testCatalog(t, 100)
	recs, err := Generate(c, Schedule{{Rate: 100, Duration: 30, Label: "x"}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	half, err := Rescale(recs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(half)
	if st.MeanRate < 170 || st.MeanRate > 230 {
		t.Errorf("rescaled rate = %v, want ~200", st.MeanRate)
	}
}

func TestSummarize(t *testing.T) {
	if st := Summarize(nil); st.Requests != 0 {
		t.Error("empty summary should be zero")
	}
	recs := []Record{
		{At: 0, Object: 1, Size: 100},
		{At: 5, Object: 2, Size: 200},
		{At: 10, Object: 1, Size: 100},
	}
	st := Summarize(recs)
	if st.Requests != 3 || st.Unique != 2 || st.Duration != 10 {
		t.Errorf("summary = %+v", st)
	}
	if math.Abs(st.MeanRate-0.3) > 1e-12 {
		t.Errorf("rate = %v", st.MeanRate)
	}
	if st.TotalSize != 400 {
		t.Errorf("total = %d", st.TotalSize)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := testCatalog(t, 50)
	recs, err := Generate(c, Schedule{{Rate: 100, Duration: 5, Label: "x"}}, 21)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip lost records: %d vs %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestReadRejectsMalformedInput(t *testing.T) {
	cases := []string{
		"",
		"x,y,z\n1,2,3\n",
		"at,object,size\nnotanumber,2,3\n",
		"at,object,size\n1,-2,3\n",
		"at,object,size\n1,2,bad\n",
		"at,object,size\n1,2\n",
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

// TestGenerateRateProperty: for any phase rate, the realized rate is close
// to the requested one.
func TestGenerateRateProperty(t *testing.T) {
	c := testCatalog(t, 100)
	f := func(raw uint16) bool {
		rate := float64(raw%400) + 20
		recs, err := Generate(c, Schedule{{Rate: rate, Duration: 30, Label: "p"}}, int64(raw))
		if err != nil {
			return false
		}
		realized := float64(len(recs)) / 30
		return math.Abs(realized-rate)/rate < 0.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := testCatalog(t, 100)
	s := Schedule{{Rate: 50, Duration: 10, Label: "x"}}
	a, _ := Generate(c, s, 123)
	b, _ := Generate(c, s, 123)
	if len(a) != len(b) {
		t.Fatal("same seed, different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different records")
		}
	}
}

func TestSizesAreSorted(t *testing.T) {
	// Sanity check on the documented shape: median well below mean.
	c := testCatalog(t, 50000)
	sizes := make([]float64, c.Len())
	for i := range sizes {
		sizes[i] = float64(c.Size(uint64(i)))
	}
	sort.Float64s(sizes)
	median := sizes[len(sizes)/2]
	if median > c.MeanSize() {
		t.Errorf("median %v >= mean %v: not right-skewed", median, c.MeanSize())
	}
}

func BenchmarkGenerate(b *testing.B) {
	c, err := NewCatalog(10000, WikipediaLikeSizes(), 1.2, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	s := Schedule{{Rate: 1000, Duration: 10, Label: "x"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(c, s, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParetoSizes(t *testing.T) {
	const mean, alpha = 32 * 1024.0, 1.5
	d := ParetoSizes(mean, alpha)
	if got := d.Mean(); math.Abs(got-mean)/mean > 1e-12 {
		t.Fatalf("mean = %v, want %v", got, mean)
	}
	// Same mean, but a power-law tail: deep quantiles overtake the
	// lognormal default.
	if pq, lq := d.Quantile(0.9999), WikipediaLikeSizes().Quantile(0.9999); pq <= lq {
		t.Errorf("Pareto p99.99 %v not above lognormal p99.99 %v", pq, lq)
	}
	// The scale is the minimum object size: nothing below x_m.
	if xm := mean * (alpha - 1) / alpha; d.CDF(xm*0.999) != 0 {
		t.Errorf("mass below the scale x_m=%v", xm)
	}
}
