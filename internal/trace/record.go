package trace

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"cosmodel/internal/dist"
)

// Op is a request operation type.
type Op uint8

// Operation types. The paper's workloads are read-dominant (>95-99% GET in
// the production systems it cites); PUT support exists to test how the
// model degrades when the read-heavy assumption is violated.
const (
	OpGet Op = iota
	OpPut
)

// String returns the operation name.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Record is one request in a trace.
type Record struct {
	// At is the arrival time in seconds from trace start.
	At float64
	// Object is the requested object's ID.
	Object uint64
	// Size is the object size in bytes (denormalized into the trace so a
	// replayer does not need the catalog).
	Size int64
	// Op is the operation type (GET unless set otherwise).
	Op Op
}

// ErrBadRecord reports a malformed trace line.
var ErrBadRecord = errors.New("trace: malformed record")

// Generate produces an open-loop Poisson GET trace for the schedule: within
// each phase, interarrival times are exponential with the phase rate;
// objects are drawn from the catalog's popularity law.
func Generate(c *Catalog, s Schedule, seed int64) ([]Record, error) {
	return GenerateMixed(c, s, 0, seed)
}

// GenerateMixed produces an open-loop Poisson trace where each request is a
// PUT with probability writeFraction (overwriting an existing object, the
// dominant write pattern for read-heavy stores) and a GET otherwise.
func GenerateMixed(c *Catalog, s Schedule, writeFraction float64, seed int64) ([]Record, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if writeFraction < 0 || writeFraction > 1 {
		return nil, fmt.Errorf("trace: write fraction %v outside [0,1]", writeFraction)
	}
	rng := rand.New(rand.NewSource(seed))
	sampler := c.Sampler(rng)
	records := make([]Record, 0, int(s.ExpectedRequests()))
	phaseStart := 0.0
	for _, p := range s {
		t := phaseStart + rng.ExpFloat64()/p.Rate
		for t < phaseStart+p.Duration {
			id := sampler.Next()
			rec := Record{At: t, Object: id, Size: c.Size(id), Op: OpGet}
			if writeFraction > 0 && rng.Float64() < writeFraction {
				rec.Op = OpPut
			}
			records = append(records, rec)
			t += rng.ExpFloat64() / p.Rate
		}
		phaseStart += p.Duration
	}
	return records, nil
}

// Rescale returns a copy of records with all timestamps multiplied by
// factor. A factor < 1 compresses the trace, raising the arrival rate by
// 1/factor — exactly the paper's timestamp-rewriting mechanism for sweeping
// workload intensity.
func Rescale(records []Record, factor float64) ([]Record, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("trace: rescale factor must be positive, got %v", factor)
	}
	out := make([]Record, len(records))
	for i, r := range records {
		out[i] = r
		out[i].At = r.At * factor
	}
	return out, nil
}

// Stats summarizes a trace.
type Stats struct {
	Requests  int
	Writes    int
	Duration  float64
	MeanRate  float64
	MeanSize  float64
	TotalSize int64
	Unique    int
}

// WriteFraction returns the fraction of PUT requests.
func (s Stats) WriteFraction() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Writes) / float64(s.Requests)
}

// Summarize computes trace statistics.
func Summarize(records []Record) Stats {
	st := Stats{Requests: len(records)}
	if len(records) == 0 {
		return st
	}
	seen := make(map[uint64]struct{})
	for _, r := range records {
		st.TotalSize += r.Size
		seen[r.Object] = struct{}{}
		if r.Op == OpPut {
			st.Writes++
		}
	}
	st.Duration = records[len(records)-1].At - records[0].At
	if st.Duration > 0 {
		st.MeanRate = float64(len(records)) / st.Duration
	}
	st.MeanSize = float64(st.TotalSize) / float64(len(records))
	st.Unique = len(seen)
	return st
}

// Write serializes records as CSV: at,object,size,op with a header line.
func Write(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"at", "object", "size", "op"}); err != nil {
		return err
	}
	row := make([]string, 4)
	for _, r := range records {
		row[0] = strconv.FormatFloat(r.At, 'g', 17, 64)
		row[1] = strconv.FormatUint(r.Object, 10)
		row[2] = strconv.FormatInt(r.Size, 10)
		row[3] = r.Op.String()
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// Read parses a CSV trace written by Write. The op column is optional
// (3-column traces are read as all-GET) for compatibility with older
// files.
func Read(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated per row below
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrBadRecord, err)
	}
	if len(header) < 3 || header[0] != "at" || header[1] != "object" || header[2] != "size" {
		return nil, fmt.Errorf("%w: unexpected header %v", ErrBadRecord, header)
	}
	hasOp := len(header) == 4 && header[3] == "op"
	if len(header) == 4 && !hasOp {
		return nil, fmt.Errorf("%w: unexpected header %v", ErrBadRecord, header)
	}
	if len(header) > 4 {
		return nil, fmt.Errorf("%w: unexpected header %v", ErrBadRecord, header)
	}
	var out []Record
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadRecord, line, err)
		}
		if len(row) != len(header) {
			return nil, fmt.Errorf("%w: line %d: %d fields, want %d", ErrBadRecord, line, len(row), len(header))
		}
		at, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: at %q", ErrBadRecord, line, row[0])
		}
		obj, err := strconv.ParseUint(row[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: object %q", ErrBadRecord, line, row[1])
		}
		size, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: size %q", ErrBadRecord, line, row[2])
		}
		rec := Record{At: at, Object: obj, Size: size, Op: OpGet}
		if hasOp {
			switch row[3] {
			case "GET":
				rec.Op = OpGet
			case "PUT":
				rec.Op = OpPut
			default:
				return nil, fmt.Errorf("%w: line %d: op %q", ErrBadRecord, line, row[3])
			}
		}
		out = append(out, rec)
	}
	return out, nil
}

// WikipediaLikeSizes returns the object-size distribution used throughout
// the experiments: lognormal with a 32 KB mean and 10 KB median, matching
// the paper's description of the remaining Wikipedia media objects ("the
// average size of remaining objects is about 32KB" with a small-object-
// heavy skew).
func WikipediaLikeSizes() dist.Distribution {
	return dist.NewLognormalMeanMedian(32*1024, 10*1024)
}

// ParetoSizes returns a heavy-tailed (Pareto type I) object-size
// distribution with the given mean and tail index alpha > 1. Lower alpha
// fattens the tail while the mean is held fixed by shrinking the scale
// x_m = mean·(alpha-1)/alpha — the knob for stressing the model's
// order-statistic tail predictions beyond the lognormal Wikipedia mix.
func ParetoSizes(mean, alpha float64) dist.Distribution {
	return dist.Pareto{Xm: mean * (alpha - 1) / alpha, Alpha: alpha}
}
