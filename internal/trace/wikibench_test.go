package trace

import (
	"strings"
	"testing"
)

const sampleWikibench = `1 1194892800.000 http://en.wikipedia.org/wiki/Main_Page -
2 1194892800.100 http://upload.wikimedia.org/wikipedia/commons/a.jpg -
3 1194892800.250 http://upload.wikimedia.org/wikipedia/commons/b.png save
4 1194892800.400 http://de.wikipedia.org/wiki/Hauptseite -
5 1194892800.600 http://upload.wikimedia.org/wikipedia/commons/a.jpg -
`

func TestParseWikibenchMediaFilter(t *testing.T) {
	recs, err := ParseWikibench(strings.NewReader(sampleWikibench), WikibenchOptions{MediaOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("kept %d records, want 3 media requests", len(recs))
	}
	// Rebased timestamps: first kept record at 0.
	if recs[0].At != 0 {
		t.Errorf("first At = %v", recs[0].At)
	}
	if recs[1].At <= recs[0].At || recs[2].At <= recs[1].At {
		t.Error("timestamps not increasing")
	}
	// Same URL -> same object ID and size.
	if recs[0].Object != recs[2].Object || recs[0].Size != recs[2].Size {
		t.Error("repeated URL must map to the same object")
	}
	// Different URLs -> different IDs (with overwhelming probability).
	if recs[0].Object == recs[1].Object {
		t.Error("distinct URLs collided")
	}
	for _, r := range recs {
		if r.Size < 1 || r.Op != OpGet {
			t.Errorf("bad record %+v", r)
		}
	}
}

func TestParseWikibenchKeepAll(t *testing.T) {
	recs, err := ParseWikibench(strings.NewReader(sampleWikibench), WikibenchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("kept %d records, want all 5", len(recs))
	}
}

func TestParseWikibenchMalformed(t *testing.T) {
	bad := "notanumber notatime\n"
	if _, err := ParseWikibench(strings.NewReader(bad), WikibenchOptions{}); err == nil {
		t.Error("malformed line should fail")
	}
	badTS := "1 notatime http://upload.wikimedia.org/x -\n"
	if _, err := ParseWikibench(strings.NewReader(badTS), WikibenchOptions{}); err == nil {
		t.Error("bad timestamp should fail")
	}
	// SkipMalformed tolerates both.
	mixed := bad + badTS + "2 100.5 http://upload.wikimedia.org/y -\n"
	recs, err := ParseWikibench(strings.NewReader(mixed), WikibenchOptions{SkipMalformed: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Errorf("kept %d, want 1", len(recs))
	}
}

func TestParseWikibenchCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1 5.0 http://upload.wikimedia.org/z -\n"
	recs, err := ParseWikibench(strings.NewReader(in), WikibenchOptions{MediaOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Errorf("kept %d", len(recs))
	}
}

func TestParseWikibenchReplayable(t *testing.T) {
	// The produced records must satisfy the invariants the simulator
	// needs: nonnegative increasing-ish times, positive sizes.
	recs, err := ParseWikibench(strings.NewReader(sampleWikibench), WikibenchOptions{MediaOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(recs)
	if st.Requests != 3 || st.Unique != 2 {
		t.Errorf("summary %+v", st)
	}
}
