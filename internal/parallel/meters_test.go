package parallel

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestPoolMeters(t *testing.T) {
	p := New(4)
	var maxBusy atomic.Int64
	const n = 64
	err := p.ForEachContext(context.Background(), n, func(i int) error {
		if b := int64(p.Busy()); b > maxBusy.Load() {
			maxBusy.Store(b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Tasks(); got != n {
		t.Errorf("Tasks = %d, want %d", got, n)
	}
	if b := maxBusy.Load(); b < 1 || b > int64(p.Workers()) {
		t.Errorf("observed Busy peak %d outside [1, %d]", b, p.Workers())
	}
	if p.Busy() != 0 {
		t.Errorf("Busy = %d after fan-out, want 0", p.Busy())
	}
	if p.HelpersInUse() != 0 {
		t.Errorf("HelpersInUse = %d after fan-out, want 0", p.HelpersInUse())
	}
}

func TestPoolMetersCountPanics(t *testing.T) {
	p := New(2)
	err := p.ForEachContext(context.Background(), 1, func(int) error {
		panic("boom")
	})
	if !IsPanic(err) {
		t.Fatalf("err = %v, want panic error", err)
	}
	if p.Tasks() != 1 {
		t.Errorf("Tasks = %d, want 1 (panicked iterations count)", p.Tasks())
	}
	if p.Busy() != 0 {
		t.Errorf("Busy = %d after panic, want 0", p.Busy())
	}
}

func TestNilPoolMeters(t *testing.T) {
	var p *Pool
	if p.Tasks() != 0 || p.Busy() != 0 || p.HelpersInUse() != 0 {
		t.Error("nil pool meters must read zero")
	}
}
