// Package parallel provides the bounded worker pool behind the model's
// device-parallel evaluation engine and the experiment sweep drivers.
//
// The pool is deliberately tiny: a semaphore bounding helper goroutines plus
// a work-stealing ForEach. Two properties matter to its callers:
//
//   - The calling goroutine always participates in the fan-out, so nested
//     ForEach calls (a pooled experiment sweep whose steps evaluate pooled
//     device mixtures) can never deadlock — when the helper budget is
//     exhausted an inner call simply degrades to a sequential loop.
//   - Results are written by iteration index, never reduced concurrently,
//     so callers that fold results in index order get deterministic output
//     regardless of scheduling.
//
// ForEachContext adds the fail-safe variant the serving stack is built on:
// cooperative cancellation between iterations and panic capture, so a
// poisoned task surfaces as an error on the caller instead of killing the
// process or leaking a helper token.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool bounds the helper goroutines used by ForEach fan-outs. A nil *Pool
// is valid and means "no helpers": ForEach runs every iteration inline on
// the caller. Pools are safe for concurrent use; the helper budget is
// shared by all concurrent ForEach calls on the same pool.
type Pool struct {
	helpers chan struct{} // semaphore: one token per live helper goroutine

	// Utilization meters, read by observability gauges. A nil pool runs
	// sequentially and meters nothing.
	tasks atomic.Uint64 // iterations completed (or failed) across all fan-outs
	busy  atomic.Int64  // goroutines currently inside fn, caller included
}

// New returns a pool allowing up to workers goroutines per fan-out,
// counting the calling goroutine. workers <= 1 returns nil: a purely
// sequential pool.
func New(workers int) *Pool {
	if workers <= 1 {
		return nil
	}
	return &Pool{helpers: make(chan struct{}, workers-1)}
}

var defaultPool = sync.OnceValue(func() *Pool { return New(runtime.GOMAXPROCS(0)) })

// Default returns the process-wide shared pool, sized to GOMAXPROCS at
// first use. With GOMAXPROCS=1 it is nil (sequential).
func Default() *Pool { return defaultPool() }

// Workers reports the concurrency bound of the pool, counting the caller.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return cap(p.helpers) + 1
}

// Tasks reports the total number of iterations the pool has executed across
// all fan-outs (including failed and panicked ones). 0 for a nil pool.
func (p *Pool) Tasks() uint64 {
	if p == nil {
		return 0
	}
	return p.tasks.Load()
}

// Busy reports how many goroutines are currently executing an iteration,
// callers included — an instantaneous utilization reading against Workers.
// 0 for a nil pool.
func (p *Pool) Busy() int {
	if p == nil {
		return 0
	}
	return int(p.busy.Load())
}

// HelpersInUse reports how many helper goroutines are currently live —
// the pool's instantaneous queue depth against its helper budget
// (Workers - 1). 0 for a nil pool.
func (p *Pool) HelpersInUse() int {
	if p == nil {
		return 0
	}
	return len(p.helpers)
}

// PanicError is the error a panicking task is converted into by
// ForEachContext: the panic is recovered on the worker, captured with its
// stack, and returned to the caller instead of unwinding through the pool.
// A panicking task therefore can never kill the process, strand a helper
// token, or deadlock sibling workers.
type PanicError struct {
	// Value is the value the task panicked with.
	Value any
	// Stack is the stack trace captured at the recovery point.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task panicked: %v", e.Value)
}

// IsPanic reports whether err carries a task panic captured by the pool.
func IsPanic(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// ForEach runs fn(i) for every i in [0, n) and returns once all iterations
// have completed. Iterations are spread across the calling goroutine plus
// as many helper goroutines as the pool's remaining budget allows (at most
// n-1). fn must be safe for concurrent invocation with distinct indices
// and must not assume any iteration ordering. If any iteration panics, the
// remaining iterations are abandoned and the first panic is re-raised on
// the calling goroutine.
func (p *Pool) ForEach(n int, fn func(int)) {
	err := p.ForEachContext(context.Background(), n, func(i int) error {
		fn(i)
		return nil
	})
	var pe *PanicError
	if errors.As(err, &pe) {
		panic(pe.Value)
	}
}

// ForEachContext runs fn(i) for every i in [0, n) with cooperative
// cancellation and panic capture. Scheduling stops as soon as ctx is done or
// any iteration fails; iterations already running are allowed to finish
// (fn itself must poll ctx if a single iteration can be long). The first
// failure wins and is returned: a task error, a *PanicError wrapping a task
// panic, or ctx.Err(). A nil return means every iteration ran and
// succeeded. Like ForEach, the calling goroutine participates, so nested
// calls cannot deadlock, and helper tokens are always returned — even when
// tasks panic.
func (p *Pool) ForEachContext(ctx context.Context, n int, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var (
		next     atomic.Int64
		failure  atomic.Pointer[error]
		wg       sync.WaitGroup
		done     = ctx.Done()
		fail     = func(err error) { failure.CompareAndSwap(nil, &err) }
		safeCall = func(i int) (err error) {
			if p != nil {
				p.busy.Add(1)
				defer p.busy.Add(-1)
				defer p.tasks.Add(1)
			}
			defer func() {
				if r := recover(); r != nil {
					err = &PanicError{Value: r, Stack: debug.Stack()}
				}
			}()
			return fn(i)
		}
	)
	run := func() {
		for failure.Load() == nil {
			if done != nil {
				select {
				case <-done:
					fail(ctx.Err())
					return
				default:
				}
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := safeCall(i); err != nil {
				fail(err)
				return
			}
		}
	}
	if p != nil && n > 1 {
	spawn:
		for spawned := 0; spawned < n-1; spawned++ {
			select {
			case p.helpers <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-p.helpers }()
					run()
				}()
			default:
				break spawn // budget exhausted; the caller picks up the slack
			}
		}
	}
	run()
	wg.Wait()
	if e := failure.Load(); e != nil {
		return *e
	}
	return nil
}
