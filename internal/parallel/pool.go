// Package parallel provides the bounded worker pool behind the model's
// device-parallel evaluation engine and the experiment sweep drivers.
//
// The pool is deliberately tiny: a semaphore bounding helper goroutines plus
// a work-stealing ForEach. Two properties matter to its callers:
//
//   - The calling goroutine always participates in the fan-out, so nested
//     ForEach calls (a pooled experiment sweep whose steps evaluate pooled
//     device mixtures) can never deadlock — when the helper budget is
//     exhausted an inner call simply degrades to a sequential loop.
//   - Results are written by iteration index, never reduced concurrently,
//     so callers that fold results in index order get deterministic output
//     regardless of scheduling.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds the helper goroutines used by ForEach fan-outs. A nil *Pool
// is valid and means "no helpers": ForEach runs every iteration inline on
// the caller. Pools are safe for concurrent use; the helper budget is
// shared by all concurrent ForEach calls on the same pool.
type Pool struct {
	helpers chan struct{} // semaphore: one token per live helper goroutine
}

// New returns a pool allowing up to workers goroutines per fan-out,
// counting the calling goroutine. workers <= 1 returns nil: a purely
// sequential pool.
func New(workers int) *Pool {
	if workers <= 1 {
		return nil
	}
	return &Pool{helpers: make(chan struct{}, workers-1)}
}

var defaultPool = sync.OnceValue(func() *Pool { return New(runtime.GOMAXPROCS(0)) })

// Default returns the process-wide shared pool, sized to GOMAXPROCS at
// first use. With GOMAXPROCS=1 it is nil (sequential).
func Default() *Pool { return defaultPool() }

// Workers reports the concurrency bound of the pool, counting the caller.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return cap(p.helpers) + 1
}

type panicValue struct{ v any }

// ForEach runs fn(i) for every i in [0, n) and returns once all iterations
// have completed. Iterations are spread across the calling goroutine plus
// as many helper goroutines as the pool's remaining budget allows (at most
// n-1). fn must be safe for concurrent invocation with distinct indices
// and must not assume any iteration ordering. If any iteration panics, the
// remaining iterations are abandoned and the first panic is re-raised on
// the calling goroutine.
func (p *Pool) ForEach(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if p == nil || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		panicked atomic.Pointer[panicValue]
		wg       sync.WaitGroup
	)
	run := func() {
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, &panicValue{v: r})
			}
		}()
		for panicked.Load() == nil {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
spawn:
	for spawned := 0; spawned < n-1; spawned++ {
		select {
		case p.helpers <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.helpers }()
				run()
			}()
		default:
			break spawn // budget exhausted; the caller picks up the slack
		}
	}
	run()
	wg.Wait()
	if pv := panicked.Load(); pv != nil {
		panic(pv.v)
	}
}
