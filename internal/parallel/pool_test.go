package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, p := range []*Pool{nil, New(1), New(2), New(8)} {
		for _, n := range []int{0, 1, 2, 7, 100} {
			hits := make([]atomic.Int32, n)
			p.ForEach(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", p.Workers(), n, i, got)
				}
			}
		}
	}
}

func TestForEachNestedDoesNotDeadlock(t *testing.T) {
	p := New(3)
	var total atomic.Int64
	p.ForEach(8, func(i int) {
		p.ForEach(8, func(j int) { total.Add(1) })
	})
	if got := total.Load(); got != 64 {
		t.Fatalf("nested ForEach ran %d iterations, want 64", got)
	}
}

func TestForEachConcurrentCallsShareBudget(t *testing.T) {
	p := New(4)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			var sum atomic.Int64
			p.ForEach(50, func(i int) { sum.Add(int64(i)) })
			if got := sum.Load(); got != 50*49/2 {
				t.Errorf("sum = %d, want %d", got, 50*49/2)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	p := New(4)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	p.ForEach(16, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
	t.Fatal("ForEach returned instead of panicking")
}

func TestWorkers(t *testing.T) {
	if got := (*Pool)(nil).Workers(); got != 1 {
		t.Fatalf("nil pool workers = %d, want 1", got)
	}
	if got := New(1).Workers(); got != 1 {
		t.Fatalf("New(1) workers = %d, want 1", got)
	}
	if got := New(6).Workers(); got != 6 {
		t.Fatalf("New(6) workers = %d, want 6", got)
	}
	if Default() == nil && Default().Workers() != 1 {
		t.Fatal("nil default pool must report 1 worker")
	}
}
