package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachContextRunsAll(t *testing.T) {
	for _, p := range []*Pool{nil, New(4)} {
		var ran atomic.Int64
		err := p.ForEachContext(context.Background(), 100, func(i int) error {
			ran.Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("pool %v: %v", p, err)
		}
		if ran.Load() != 100 {
			t.Errorf("pool %v: ran %d of 100", p, ran.Load())
		}
	}
}

func TestForEachContextFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	err := New(4).ForEachContext(context.Background(), 64, func(i int) error {
		if i == 17 {
			return fmt.Errorf("task %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestForEachContextCancellationStopsEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := New(2).ForEachContext(ctx, 10_000, func(i int) error {
		if ran.Add(1) == 8 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Workers notice the cancellation between tasks; far fewer than the
	// full 10k must have run.
	if n := ran.Load(); n > 1000 {
		t.Errorf("%d tasks ran after cancellation", n)
	}
}

func TestForEachContextExpiredContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := New(4).ForEachContext(ctx, 50, func(i int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d tasks ran under an already-cancelled context", ran.Load())
	}
}

func TestForEachContextPanicBecomesError(t *testing.T) {
	for _, p := range []*Pool{nil, New(4)} {
		err := p.ForEachContext(context.Background(), 16, func(i int) error {
			if i == 3 {
				panic("kaboom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("pool %v: err = %v, want *PanicError", p, err)
		}
		if pe.Value != "kaboom" || len(pe.Stack) == 0 {
			t.Errorf("pool %v: PanicError %v stack=%dB", p, pe.Value, len(pe.Stack))
		}
		if !IsPanic(err) {
			t.Error("IsPanic should match")
		}
	}
}

// TestForEachRepanics pins the legacy contract: ForEach re-raises a task
// panic in the caller's goroutine instead of returning it.
func TestForEachRepanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "legacy" {
			t.Fatalf("recovered %v, want \"legacy\"", r)
		}
	}()
	New(2).ForEach(8, func(i int) {
		if i == 0 {
			panic("legacy")
		}
	})
	t.Fatal("ForEach returned instead of panicking")
}

// TestForEachContextPanicNoWorkerLeak checks a panicking task does not
// wedge the pool: the same pool keeps serving afterwards.
func TestForEachContextPanicNoWorkerLeak(t *testing.T) {
	p := New(4)
	for round := 0; round < 20; round++ {
		_ = p.ForEachContext(context.Background(), 32, func(i int) error {
			if i%7 == 0 {
				panic(i)
			}
			return nil
		})
	}
	var ran atomic.Int64
	if err := p.ForEachContext(context.Background(), 64, func(i int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 64 {
		t.Errorf("pool degraded after panics: ran %d of 64", ran.Load())
	}
}
