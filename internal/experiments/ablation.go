package experiments

import (
	"fmt"
	"io"

	"cosmodel/internal/benchkit"
	"cosmodel/internal/core"
	"cosmodel/internal/numeric"
	"cosmodel/internal/parallel"
)

// Variant is one model configuration under ablation.
type Variant struct {
	Name string
	Opts core.Options
}

// AblationResult compares model variants over a shared sweep.
type AblationResult struct {
	Name     string
	SLAs     []float64
	Variants []Variant
	// MeanErr[v][i] is variant v's mean absolute error at SLA i.
	MeanErr [][]float64
	Steps   int
}

// RunAblation evaluates every variant on every window of a sweep and
// summarizes mean absolute errors per SLA.
func RunAblation(name string, sc ScenarioConfig, variants []Variant) (*AblationResult, error) {
	if len(variants) == 0 {
		return nil, fmt.Errorf("experiments: ablation needs at least one variant")
	}
	data, err := RunSweep(sc)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{
		Name:     name,
		SLAs:     append([]float64(nil), sc.Sim.SLAs...),
		Variants: variants,
		MeanErr:  make([][]float64, len(variants)),
	}
	errsByVariant := make([][][]float64, len(variants)) // [v][sla][]errors
	for v := range variants {
		errsByVariant[v] = make([][]float64, len(res.SLAs))
	}
	// Windows evaluate independently across the pool; predictions land in
	// per-window slots and are folded below in window order, so the summary
	// matches a sequential run exactly.
	preds := make([][][]float64, len(data.Windows)) // [window][v][sla]; nil = unusable
	parallel.Default().ForEach(len(data.Windows), func(w int) {
		win := data.Windows[w]
		if win.Responses == 0 || win.Timeouts > 0 || win.Retries > 0 {
			return
		}
		p := make([][]float64, len(variants))
		for v, variant := range variants {
			sys, err := BuildSystemModel(sc.Sim, data.Props, win, variant.Opts)
			if err != nil {
				return
			}
			p[v] = make([]float64, len(res.SLAs))
			for i, sla := range res.SLAs {
				p[v][i] = sys.PercentileMeetingSLA(sla)
			}
		}
		preds[w] = p
	})
	for w, p := range preds {
		if p == nil {
			continue
		}
		res.Steps++
		for v := range variants {
			for i := range res.SLAs {
				e := p[v][i] - data.Windows[w].MeetFraction[i]
				if e < 0 {
					e = -e
				}
				errsByVariant[v][i] = append(errsByVariant[v][i], e)
			}
		}
	}
	for v := range variants {
		res.MeanErr[v] = make([]float64, len(res.SLAs))
		for i := range res.SLAs {
			res.MeanErr[v][i] = mean(errsByVariant[v][i])
		}
	}
	return res, nil
}

// Render writes the ablation comparison.
func (r *AblationResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Ablation: %s (%d analyzed steps)\n", r.Name, r.Steps)
	header := []string{"SLA"}
	for _, v := range r.Variants {
		header = append(header, v.Name)
	}
	tab := benchkit.NewTable(header...)
	for i, sla := range r.SLAs {
		row := []interface{}{fmt.Sprintf("%.0fms", sla*1e3)}
		for v := range r.Variants {
			row = append(row, pct(r.MeanErr[v][i]))
		}
		tab.AddRow(row...)
	}
	return tab.Render(w)
}

// WTAVariants is the accept-waiting ablation: the paper's approximation,
// the exact integral, and no WTA at all.
func WTAVariants() []Variant {
	return []Variant{
		{"wa=wbe (paper)", core.Options{WTA: core.WTAApprox}},
		{"wa exact", core.Options{WTA: core.WTAExact}},
		{"no wa", core.Options{WTA: core.WTANone}},
	}
}

// DiskQueueVariants is the multi-process disk-queue ablation: M/M/1/K
// (paper) vs unbounded M/G/1.
func DiskQueueVariants() []Variant {
	return []Variant{
		{"mm1k (paper)", core.Options{DiskQueue: core.DiskMM1K}},
		{"mg1 unbounded", core.Options{DiskQueue: core.DiskMG1}},
	}
}

// CompoundVariants is the extra-data-read count ablation.
func CompoundVariants() []Variant {
	return []Variant{
		{"poisson (paper)", core.Options{Compound: core.CompoundPoisson}},
		{"fixed mean", core.Options{Compound: core.CompoundFixed}},
		{"geometric", core.Options{Compound: core.CompoundGeometric}},
	}
}

// InverterVariants is the Laplace-inversion ablation.
func InverterVariants() []Variant {
	return []Variant{
		{"euler (default)", core.Options{Inverter: numeric.NewEuler()}},
		{"talbot", core.Options{Inverter: numeric.NewTalbot()}},
		{"gaver-stehfest", core.Options{Inverter: numeric.NewGaverStehfest()}},
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}
