package experiments

import (
	"math"
	"testing"

	"cosmodel/internal/core"
)

// TestEvaluateSweepParallelMatchesSequential checks the determinism
// guarantee of the pooled sweep evaluator: fanning rate steps (and the
// device mixtures inside them) across workers produces exactly the results
// of a fully sequential evaluation, step for step.
func TestEvaluateSweepParallelMatchesSequential(t *testing.T) {
	data, err := RunSweep(smallS1())
	if err != nil {
		t.Fatal(err)
	}
	sc := smallS1()
	seq := EvaluateSweep(sc, data, core.Options{Workers: 1})
	par := EvaluateSweep(sc, data, core.Options{Workers: 8})
	def := EvaluateSweep(sc, data)
	for _, res := range []*ScenarioResult{par, def} {
		if len(res.Steps) != len(seq.Steps) {
			t.Fatalf("step count %d, want %d", len(res.Steps), len(seq.Steps))
		}
		for i := range seq.Steps {
			a, b := res.Steps[i], seq.Steps[i]
			if a.Rate != b.Rate || a.Skipped != b.Skipped {
				t.Fatalf("step %d: rate/skip mismatch: %+v vs %+v", i, a, b)
			}
			for _, pair := range [][2][]float64{
				{a.Our, b.Our}, {a.ODOPR, b.ODOPR}, {a.NoWTA, b.NoWTA}, {a.OurBE, b.OurBE},
			} {
				for k := range pair[0] {
					x, y := pair[0][k], pair[1][k]
					if math.IsNaN(x) && math.IsNaN(y) {
						continue
					}
					if math.Abs(x-y) > 1e-12 {
						t.Errorf("step %d sla %d: parallel %v, sequential %v", i, k, x, y)
					}
				}
			}
		}
	}
}
