package experiments

import (
	"math"
	"strings"
	"testing"

	"cosmodel/internal/core"
)

// smallS1 is a scaled-down S1 sweep for tests: fewer, shorter steps at
// moderate load.
func smallS1() ScenarioConfig {
	sc := DefaultS1()
	sc.CatalogObjects = 60000
	sc.WarmRate, sc.WarmDur = 100, 20
	sc.RateStart, sc.RateEnd, sc.RateStep = 60, 300, 60
	sc.StepDur, sc.StepDiscard = 10, 3
	sc.CalibrationOps = 1500
	return sc
}

func smallS16() ScenarioConfig {
	sc := smallS1()
	sc.Name = "S16"
	sc.Sim.ProcsPerDisk = 16
	sc.RateStart, sc.RateEnd, sc.RateStep = 80, 400, 80
	sc.Seed = 2
	return sc
}

func runSmallS1(t *testing.T) *ScenarioResult {
	t.Helper()
	res, err := RunScenario(smallS1())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestScenarioS1ShapeMatchesPaper(t *testing.T) {
	res := runSmallS1(t)
	if res.AnalyzedSteps() < 4 {
		t.Fatalf("only %d analyzed steps", res.AnalyzedSteps())
	}
	first := res.Steps[0]
	last := res.Steps[len(res.Steps)-1]
	// Percentiles meeting the tight 10ms SLA degrade with load.
	if last.Observed[0] >= first.Observed[0] {
		t.Errorf("10ms percentile did not degrade: %v -> %v", first.Observed[0], last.Observed[0])
	}
	for _, st := range res.Steps {
		if st.Skipped {
			continue
		}
		for i := range res.SLAs {
			for _, v := range []float64{st.Observed[i], st.Our[i], st.ODOPR[i], st.NoWTA[i]} {
				if v < -1e-9 || v > 1+1e-9 || math.IsNaN(v) {
					t.Fatalf("rate %v SLA %d: value %v outside [0,1]", st.Rate, i, v)
				}
			}
		}
		// Percentile meeting a looser SLA can only be higher.
		if st.Observed[0] > st.Observed[1]+1e-9 || st.Observed[1] > st.Observed[2]+1e-9 {
			t.Errorf("rate %v: observed percentiles not monotone in SLA: %v", st.Rate, st.Observed)
		}
		if st.Our[0] > st.Our[1]+1e-9 || st.Our[1] > st.Our[2]+1e-9 {
			t.Errorf("rate %v: predicted percentiles not monotone in SLA: %v", st.Rate, st.Our)
		}
	}
}

func TestOurModelBeatsODOPR(t *testing.T) {
	res := runSmallS1(t)
	// The union-operation abstraction is the paper's headline win over
	// ODOPR: wherever the percentile has headroom (the 10ms and 50ms
	// SLAs in this small sweep; at 100ms everything sits at ~1.0 and the
	// models are indistinguishable), ODOPR — which ignores
	// index/meta/extra-read disk traffic — must be clearly worse.
	for _, i := range []int{0, 1} {
		our := res.ErrorSummary(i, "our").Mean
		odopr := res.ErrorSummary(i, "odopr").Mean
		if !(odopr > our) {
			t.Errorf("SLA %d: ODOPR mean error %v not worse than ours %v", i, odopr, our)
		}
	}
}

func TestOurModelBeatsNoWTAAtLooseSLAs(t *testing.T) {
	res := runSmallS1(t)
	// Paper Table II: modeling the WTA helps at the 50ms and 100ms SLAs
	// (the 10ms SLA is the documented exception where the WTA
	// overestimation can hurt).
	our := res.ErrorSummary(1, "our").Mean
	nowta := res.ErrorSummary(1, "nowta").Mean
	if !(our <= nowta+0.01) {
		t.Errorf("50ms: our mean error %v much worse than noWTA %v", our, nowta)
	}
}

func TestOurModelAccuracyReasonable(t *testing.T) {
	res := runSmallS1(t)
	// At moderate loads the model should track the observation within a
	// few percentage points at the 50ms and 100ms SLAs.
	for _, i := range []int{1, 2} {
		if mean := res.ErrorSummary(i, "our").Mean; mean > 0.08 {
			t.Errorf("SLA %v: mean abs error %.1f%% too large", res.SLAs[i], mean*100)
		}
	}
}

func TestODOPRIsSystematicallyOptimistic(t *testing.T) {
	res := runSmallS1(t)
	for _, st := range res.Steps {
		if st.Skipped {
			continue
		}
		for i := range res.SLAs {
			if st.ODOPR[i] < st.Our[i]-1e-6 {
				t.Errorf("rate %v SLA %d: ODOPR %v below our model %v", st.Rate, i, st.ODOPR[i], st.Our[i])
			}
			if st.NoWTA[i] < st.Our[i]-1e-6 {
				t.Errorf("rate %v SLA %d: noWTA %v below our model %v", st.Rate, i, st.NoWTA[i], st.Our[i])
			}
		}
	}
}

func TestScenarioS16Runs(t *testing.T) {
	res, err := RunScenario(smallS16())
	if err != nil {
		t.Fatal(err)
	}
	if res.AnalyzedSteps() < 3 {
		t.Fatalf("only %d analyzed steps", res.AnalyzedSteps())
	}
	// The multi-process model must still produce sane, monotone-in-SLA
	// predictions.
	for _, st := range res.Steps {
		if st.Skipped {
			continue
		}
		if st.Our[0] > st.Our[1]+1e-9 || st.Our[1] > st.Our[2]+1e-9 {
			t.Errorf("rate %v: predictions not monotone in SLA: %v", st.Rate, st.Our)
		}
	}
}

func TestSLASeriesAndRender(t *testing.T) {
	res := runSmallS1(t)
	s, err := res.SLASeries(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != res.AnalyzedSteps() {
		t.Errorf("series rows %d, analyzed steps %d", s.Len(), res.AnalyzedSteps())
	}
	if _, err := res.SLASeries(99); err == nil {
		t.Error("out-of-range SLA index should fail")
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Scenario S1") {
		t.Error("render output missing scenario header")
	}
	if res.Errors(0, "bogus") != nil {
		t.Error("unknown model should return nil errors")
	}
}

func TestTables(t *testing.T) {
	res := runSmallS1(t)
	var b strings.Builder
	if err := RenderTable1(&b, []*ScenarioResult{res}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "S1") {
		t.Errorf("table 1 output:\n%s", out)
	}
	b.Reset()
	if err := RenderTable2(&b, []*ScenarioResult{res}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ODOPR Model") {
		t.Errorf("table 2 output:\n%s", b.String())
	}
}

func TestFig5(t *testing.T) {
	cfg := DefaultFig5()
	cfg.Ops = 2000
	res, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's finding: Gamma fits best for every operation class.
	if res.Fits.Index[0].Name != "gamma" || res.Fits.Meta[0].Name != "gamma" || res.Fits.Data[0].Name != "gamma" {
		t.Errorf("gamma should win: %s %s %s",
			res.Fits.Index[0].Name, res.Fits.Meta[0].Name, res.Fits.Data[0].Name)
	}
	// Fitted means recover the configured disk distributions.
	if math.Abs(res.GammaIndex.Mean()-cfg.Sim.DiskIndex.Mean())/cfg.Sim.DiskIndex.Mean() > 0.1 {
		t.Errorf("index mean %v, want %v", res.GammaIndex.Mean(), cfg.Sim.DiskIndex.Mean())
	}
	if res.Series.Len() != cfg.Points+1 {
		t.Errorf("series rows = %d", res.Series.Len())
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "gamma_index_lookup") {
		t.Error("render missing CSV header")
	}
	if _, err := RunFig5(Fig5Config{Sim: cfg.Sim, Ops: 1, Points: 2}); err == nil {
		t.Error("tiny ops should fail")
	}
}

func TestAblationWTA(t *testing.T) {
	sc := smallS1()
	sc.RateStart, sc.RateEnd, sc.RateStep = 100, 300, 100
	res, err := RunAblation("wta", sc, WTAVariants())
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps < 2 {
		t.Fatalf("analyzed %d steps", res.Steps)
	}
	for v := range res.Variants {
		for i := range res.SLAs {
			if e := res.MeanErr[v][i]; e < 0 || e > 1 || math.IsNaN(e) {
				t.Errorf("variant %d SLA %d: error %v", v, i, e)
			}
		}
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "wa=wbe (paper)") {
		t.Error("render missing variant name")
	}
	if _, err := RunAblation("empty", sc, nil); err == nil {
		t.Error("no variants should fail")
	}
}

func TestBuildSystemModelEdgeCases(t *testing.T) {
	sc := smallS1()
	data, err := RunSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	win := data.Windows[0]
	// Normal build works.
	if _, err := BuildSystemModel(sc.Sim, data.Props, win, core.Options{}); err != nil {
		t.Fatal(err)
	}
	// All-idle window fails cleanly.
	idle := win
	idle.DeviceRate = make([]float64, len(win.DeviceRate))
	if _, err := BuildSystemModel(sc.Sim, data.Props, idle, core.Options{}); err == nil {
		t.Error("idle window should fail")
	}
}

func TestBackendTierPredictions(t *testing.T) {
	res := runSmallS1(t)
	for _, st := range res.Steps {
		if st.Skipped {
			continue
		}
		for i := range res.SLAs {
			if math.IsNaN(st.OurBE[i]) || st.OurBE[i] < 0 || st.OurBE[i] > 1 {
				t.Fatalf("rate %v: backend prediction %v", st.Rate, st.OurBE[i])
			}
			// The backend tier omits frontend queueing and WTA, so its
			// percentile can only be at least the frontend-tier one.
			if st.OurBE[i] < st.Our[i]-1e-6 {
				t.Errorf("rate %v SLA %d: backend %v below frontend %v",
					st.Rate, i, st.OurBE[i], st.Our[i])
			}
			if st.ObservedBE[i] < st.Observed[i]-1e-6 {
				t.Errorf("rate %v SLA %d: observed backend %v below frontend %v",
					st.Rate, i, st.ObservedBE[i], st.Observed[i])
			}
		}
	}
	// Backend-tier accuracy should be on par with the frontend tier at
	// the looser SLAs.
	for _, i := range []int{1, 2} {
		var errSum float64
		var n int
		for _, st := range res.Steps {
			if st.Skipped {
				continue
			}
			errSum += math.Abs(st.OurBE[i] - st.ObservedBE[i])
			n++
		}
		if n > 0 && errSum/float64(n) > 0.10 {
			t.Errorf("SLA %v: backend mean error %.1f%%", res.SLAs[i], errSum/float64(n)*100)
		}
	}
}

// TestPerDevicePredictions compares the model's per-device response CDFs
// against the simulator's per-device SLA accounting (the paper counts SLA
// compliance per storage device).
func TestPerDevicePredictions(t *testing.T) {
	sc := smallS1()
	data, err := RunSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Use a mid-sweep window with real load.
	win := data.Windows[len(data.Windows)/2]
	if win.Responses == 0 {
		t.Skip("empty window")
	}
	sys, err := BuildSystemModel(sc.Sim, data.Props, win, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Model devices appear in window order (idle devices skipped); with
	// load on all four devices the indices align.
	if len(sys.Devices()) != len(win.DeviceRate) {
		t.Skip("an idle device broke index alignment")
	}
	const slaIdx = 1 // 50ms
	sla := sc.Sim.SLAs[slaIdx]
	for d := range win.DeviceRate {
		obs := win.DeviceMeetFraction[d][slaIdx]
		if math.IsNaN(obs) {
			continue
		}
		pred := sys.DeviceResponseCDF(d, sla)
		if math.Abs(pred-obs) > 0.15 {
			t.Errorf("device %d: predicted %.3f, observed %.3f", d, pred, obs)
		}
	}
}

func TestArchComparison(t *testing.T) {
	cfg := DefaultArchComparison()
	cfg.CatalogObjects = 40000
	cfg.Rates = []float64{150, 300}
	cfg.StepDur = 12
	cfg.Discard = 3
	res, err := RunArchComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EventDriven) != 2 || len(res.ThreadPer) != 2 {
		t.Fatalf("points: %d / %d", len(res.EventDriven), len(res.ThreadPer))
	}
	for i := range res.EventDriven {
		ed, tp := res.EventDriven[i], res.ThreadPer[i]
		if ed.Responses == 0 || tp.Responses == 0 {
			t.Fatal("empty measurement")
		}
		if ed.P99 <= 0 || tp.P99 <= 0 {
			t.Fatal("missing tail quantiles")
		}
	}
	// At the high-load point the event-driven tail should win (the
	// paper's stated reason for modeling that architecture).
	last := len(res.EventDriven) - 1
	if !(res.EventDriven[last].P99 < res.ThreadPer[last].P99) {
		t.Errorf("event-driven p99 %.1fms should beat TPC %.1fms",
			res.EventDriven[last].P99*1e3, res.ThreadPer[last].P99*1e3)
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "event-driven") {
		t.Error("render missing architecture rows")
	}
	bad := cfg
	bad.Rates = nil
	if _, err := RunArchComparison(bad); err == nil {
		t.Error("empty rates should fail")
	}
}

func TestRunScenarioValidation(t *testing.T) {
	sc := smallS1()
	sc.RateStep = 0
	if _, err := RunScenario(sc); err == nil {
		t.Error("zero step should fail")
	}
	sc = smallS1()
	sc.StepDur = 1
	sc.StepDiscard = 2
	if _, err := RunScenario(sc); err == nil {
		t.Error("discard >= duration should fail")
	}
	sc = smallS1()
	sc.Sim.Frontends = 0
	if _, err := RunScenario(sc); err == nil {
		t.Error("bad sim config should fail")
	}
}
