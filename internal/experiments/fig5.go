package experiments

import (
	"fmt"
	"io"

	"cosmodel/internal/benchkit"
	"cosmodel/internal/core"
	"cosmodel/internal/dist"
	"cosmodel/internal/simstore"
)

// Fig5Result reproduces the paper's Fig. 5: for each disk operation class,
// the recorded service-time percentile curve next to the fitted Gamma
// curve, plus the full candidate-family ranking.
type Fig5Result struct {
	// Series has columns: service_time_ms, then per class
	// recorded/gamma percentile pairs.
	Series *benchkit.Series
	// Fits ranks the candidate families per class (the paper's finding:
	// Gamma is best everywhere).
	Fits core.BestFitReport
	// Gamma holds the winning fitted distributions.
	GammaIndex, GammaMeta, GammaData dist.Gamma
}

// Fig5Config parameterizes the disk benchmark.
type Fig5Config struct {
	Sim    simstore.Config
	Ops    int // operations measured per class
	Points int // percentile-curve resolution
	Seed   int64
}

// DefaultFig5 returns the standard Fig. 5 configuration.
func DefaultFig5() Fig5Config {
	return Fig5Config{Sim: simstore.DefaultConfig(), Ops: 8000, Points: 60, Seed: 5}
}

// RunFig5 benchmarks the disk (sequential, one outstanding operation),
// fits the four candidate families, and tabulates recorded vs Gamma CDFs.
func RunFig5(cfg Fig5Config) (*Fig5Result, error) {
	if cfg.Ops < 10 || cfg.Points < 2 {
		return nil, fmt.Errorf("experiments: fig5 needs ops >= 10 and points >= 2")
	}
	samples, err := simstore.MeasureDiskService(cfg.Sim, cfg.Ops, cfg.Seed)
	if err != nil {
		return nil, err
	}
	fits, err := core.CompareFits(samples.Index, samples.Meta, samples.Data)
	if err != nil {
		return nil, err
	}
	gi, err := dist.FitGamma(samples.Index)
	if err != nil {
		return nil, err
	}
	gm, err := dist.FitGamma(samples.Meta)
	if err != nil {
		return nil, err
	}
	gd, err := dist.FitGamma(samples.Data)
	if err != nil {
		return nil, err
	}
	empIdx, err := dist.NewEmpirical(samples.Index)
	if err != nil {
		return nil, err
	}
	empMeta, err := dist.NewEmpirical(samples.Meta)
	if err != nil {
		return nil, err
	}
	empData, err := dist.NewEmpirical(samples.Data)
	if err != nil {
		return nil, err
	}
	series := benchkit.NewSeries(
		"service_time_ms",
		"recorded_index_lookup", "gamma_index_lookup",
		"recorded_meta_read", "gamma_meta_read",
		"recorded_data_read", "gamma_data_read",
	)
	hi := maxOf(empIdx.Quantile(0.999), empMeta.Quantile(0.999), empData.Quantile(0.999))
	for i := 0; i <= cfg.Points; i++ {
		t := hi * float64(i) / float64(cfg.Points)
		if err := series.AddRow(
			t*1e3,
			empIdx.CDF(t), gi.CDF(t),
			empMeta.CDF(t), gm.CDF(t),
			empData.CDF(t), gd.CDF(t),
		); err != nil {
			return nil, err
		}
	}
	return &Fig5Result{
		Series:     series,
		Fits:       fits,
		GammaIndex: gi,
		GammaMeta:  gm,
		GammaData:  gd,
	}, nil
}

// Render writes the Fig. 5 fitting report.
func (r *Fig5Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Figure 5: fitting the disk service times (recorded vs fitted CDFs)")
	fmt.Fprintln(w)
	tab := benchkit.NewTable("operation", "family", "K-S statistic")
	for _, c := range []struct {
		name string
		fits []dist.FitResult
	}{{"index lookup", r.Fits.Index}, {"metadata read", r.Fits.Meta}, {"data read", r.Fits.Data}} {
		for _, f := range c.fits {
			tab.AddRow(c.name, f.Name, f.KS)
		}
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "fitted gamma (index): %v\n", r.GammaIndex)
	fmt.Fprintf(w, "fitted gamma (meta):  %v\n", r.GammaMeta)
	fmt.Fprintf(w, "fitted gamma (data):  %v\n", r.GammaData)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "percentile curves (CSV):")
	return r.Series.WriteCSV(w)
}

func maxOf(vals ...float64) float64 {
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
