package experiments

import (
	"context"
	"errors"
	"testing"

	"cosmodel/internal/core"
)

// TestEvaluateSweepContextCancellation checks a cancelled context aborts
// the sweep with the error instead of grinding through every step.
func TestEvaluateSweepContextCancellation(t *testing.T) {
	data, err := RunSweep(smallS1())
	if err != nil {
		t.Fatal(err)
	}
	sc := smallS1()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvaluateSweepContext(ctx, sc, data); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// A live context reproduces the legacy result exactly.
	want := EvaluateSweep(sc, data, core.Options{Workers: 1})
	got, err := EvaluateSweepContext(context.Background(), sc, data, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Steps) != len(want.Steps) {
		t.Fatalf("steps %d, want %d", len(got.Steps), len(want.Steps))
	}
	for i := range want.Steps {
		a, b := got.Steps[i], want.Steps[i]
		if a.Rate != b.Rate || a.Skipped != b.Skipped {
			t.Errorf("step %d diverged: %+v vs %+v", i, a, b)
		}
		for k := range b.Our {
			if a.Our[k] != b.Our[k] {
				t.Errorf("step %d sla %d: %v vs %v", i, k, a.Our[k], b.Our[k])
			}
		}
	}
}
