package experiments

import (
	"context"
	"fmt"
	"math"

	"cosmodel/internal/core"
	"cosmodel/internal/simstore"
)

// CodedSpecFromConfig derives the analytic coded-read spec from a striped
// simulator configuration: the stripe is spread over all n = Replicas
// devices of a partition and completes at the k-th = StripeK sub-read.
func CodedSpecFromConfig(cfg simstore.Config) core.CodedSpec {
	return core.CodedSpec{
		N:          cfg.Replicas,
		K:          cfg.StripeK,
		Hedge:      cfg.Hedge,
		HedgeDelay: cfg.HedgeDelay,
	}
}

// CodedStepResult is one rate step of a coded-read scenario: the observed
// fraction of coded GETs meeting each SLA against the order-statistic
// model's prediction.
type CodedStepResult struct {
	Rate      float64
	Responses uint64
	// Hedges is the number of reserve sub-reads issued in the window.
	Hedges uint64
	// Observed[i] is the measured fraction meeting SLAs[i] at the
	// frontend tier; Predicted[i] is the coded model's prediction (NaN
	// when the step was skipped).
	Observed  []float64
	Predicted []float64
	// Skipped marks steps excluded from analysis (overload), mirroring
	// the replication sweep's exclusion rule.
	Skipped bool
	Reason  string
	// MaxDiskUtilization is the highest per-device disk utilization in
	// the window (diagnostic).
	MaxDiskUtilization float64
}

// CodedResult is a full coded-read sweep evaluation.
type CodedResult struct {
	Config ScenarioConfig
	Spec   core.CodedSpec
	SLAs   []float64
	Steps  []CodedStepResult
	Props  core.DeviceProperties
}

// Analyzed returns the number of non-skipped steps.
func (r *CodedResult) Analyzed() int {
	n := 0
	for _, st := range r.Steps {
		if !st.Skipped {
			n++
		}
	}
	return n
}

// MAE returns the mean absolute error between predicted and observed SLA
// fractions over all analyzed steps (NaN if nothing was analyzed).
func (r *CodedResult) MAE() float64 {
	sum, n := 0.0, 0
	for _, st := range r.Steps {
		if st.Skipped {
			continue
		}
		for i := range st.Observed {
			if math.IsNaN(st.Predicted[i]) {
				continue
			}
			sum += math.Abs(st.Predicted[i] - st.Observed[i])
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// RunCodedScenario drives a striped-read rate sweep through the simulator
// (ground truth) and evaluates the order-statistic model on every step.
// The scenario's Sim must have StripeK > 0.
func RunCodedScenario(sc ScenarioConfig) (*CodedResult, error) {
	data, err := RunSweep(sc)
	if err != nil {
		return nil, err
	}
	return EvaluateCodedSweep(sc, data)
}

// EvaluateCodedSweep runs the coded-read model over every measurement
// window of a captured sweep; see EvaluateSweep for the overlay semantics.
func EvaluateCodedSweep(sc ScenarioConfig, data *SweepData, overlay ...core.Options) (*CodedResult, error) {
	return EvaluateCodedSweepContext(context.Background(), sc, data, overlay...)
}

// EvaluateCodedSweepContext is the cancellable coded sweep evaluation. As
// with EvaluateSweepContext, numerical failures inside one step skip that
// step rather than aborting the sweep; context errors abort.
func EvaluateCodedSweepContext(ctx context.Context, sc ScenarioConfig, data *SweepData, overlay ...core.Options) (*CodedResult, error) {
	spec := CodedSpecFromConfig(sc.Sim)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var base core.Options
	if len(overlay) > 0 {
		base = overlay[0]
	}
	ctx, cancel := base.EvalContext(ctx)
	defer cancel()
	res := &CodedResult{
		Config: sc,
		Spec:   spec,
		SLAs:   append([]float64(nil), sc.Sim.SLAs...),
		Props:  data.Props,
	}
	res.Steps = make([]CodedStepResult, len(data.Windows))
	err := stepPool(base).ForEachContext(ctx, len(data.Windows), func(i int) error {
		st, err := evaluateCodedStep(ctx, sc, spec, data.Props, data.Windows[i], data.Rates[i], base)
		if err != nil {
			return err
		}
		res.Steps[i] = st
		return nil
	})
	return res, err
}

// evaluateCodedStep turns one measurement window into a CodedStepResult,
// applying the same overload exclusions as the replication sweep.
func evaluateCodedStep(ctx context.Context, sc ScenarioConfig, spec core.CodedSpec, props core.DeviceProperties, win simstore.Window, rate float64, base core.Options) (CodedStepResult, error) {
	nSLA := len(sc.Sim.SLAs)
	st := CodedStepResult{
		Rate:      rate,
		Responses: win.Responses,
		Hedges:    win.Hedges,
		Observed:  append([]float64(nil), win.MeetFraction...),
		Predicted: nanSlice(nSLA),
	}
	for _, u := range win.DiskUtilization {
		if u > st.MaxDiskUtilization {
			st.MaxDiskUtilization = u
		}
	}
	if win.Responses == 0 {
		st.Skipped = true
		st.Reason = "no responses in window"
		return st, nil
	}
	if win.Timeouts > 0 || win.Retries > 0 {
		st.Skipped = true
		st.Reason = fmt.Sprintf("overload: %d timeouts, %d retries in window", win.Timeouts, win.Retries)
		return st, nil
	}
	if st.MaxDiskUtilization >= 0.98 {
		st.Skipped = true
		st.Reason = fmt.Sprintf("overload: disk utilization %.2f", st.MaxDiskUtilization)
		return st, nil
	}
	sys, err := BuildCodedSystemModel(sc.Sim, props, win, overlayOptions(core.Options{}, base))
	if err != nil {
		st.Skipped = true
		st.Reason = err.Error()
		return st, nil
	}
	for i, sla := range sc.Sim.SLAs {
		p, err := sys.CodedCDFContext(ctx, spec, sla)
		if err != nil {
			if ctx.Err() != nil {
				return st, ctx.Err()
			}
			st.Skipped = true
			st.Reason = err.Error()
			break
		}
		st.Predicted[i] = p
	}
	return st, nil
}

// BuildCodedSystemModel glues a striped-read measurement window to the
// analytic model. The per-device inputs are identical to BuildSystemModel —
// each stripe sub-read is an ordinary backend request, so the measured
// per-device rates already carry the n-fold fan-out (and any hedging load).
// Only the frontend rate differs: the proxy parses each coded GET once
// before fanning it out, so its M/G/1 arrival rate is the parent response
// rate, not the sub-read total.
func BuildCodedSystemModel(cfg simstore.Config, props core.DeviceProperties, win simstore.Window, opts core.Options) (*core.SystemModel, error) {
	var devs []*core.DeviceModel
	for d := range win.DeviceRate {
		r := win.DeviceRate[d]
		if r <= 0 {
			continue // idle device contributes nothing to the mixture
		}
		m := core.OnlineMetrics{
			Rate:      r,
			DataRate:  math.Max(win.DeviceChunkRate[d], r),
			MissIndex: win.MissIndex[d],
			MissMeta:  win.MissMeta[d],
			MissData:  win.MissData[d],
			Procs:     cfg.ProcsPerDisk,
			DiskMean:  win.DiskMeanSvc[d],
		}
		dm, err := core.NewDeviceModel(props, m, opts)
		if err != nil {
			return nil, fmt.Errorf("device %d: %w", d, err)
		}
		devs = append(devs, dm)
	}
	if len(devs) == 0 {
		return nil, fmt.Errorf("%w: no active devices in window", core.ErrBadParams)
	}
	feRate := 0.0
	if win.Duration > 0 {
		feRate = float64(win.Responses) / win.Duration
	}
	fe, err := core.NewFrontendModel(feRate, cfg.Frontends*cfg.ProcsPerFrontend, props.ParseFE)
	if err != nil {
		return nil, err
	}
	return core.NewSystemModel(fe, devs, opts)
}
