package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestWriteSensitivity(t *testing.T) {
	cfg := DefaultWriteSensitivity()
	cfg.CatalogObjects = 40000
	cfg.WriteFractions = []float64{0, 0.10, 0.40}
	cfg.StepDur = 15
	cfg.Discard = 4
	cfg.CalibrationOps = 1200
	res, err := RunWriteSensitivity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.WriteFraction > 0 && pt.WriteRate <= 0 {
			t.Errorf("wf=%v: write rate %v", pt.WriteFraction, pt.WriteRate)
		}
		if math.IsNaN(pt.MeanAbsErr) {
			t.Errorf("wf=%v: no prediction", pt.WriteFraction)
		}
	}
	// The read-heavy assumption: at zero writes the error is small; heavy
	// unmodeled write traffic must make the predictions substantially
	// worse than the write-free baseline.
	base := res.Points[0].MeanAbsErr
	heavy := res.Points[2].MeanAbsErr
	if base > 0.10 {
		t.Errorf("write-free baseline error %.1f%% too large", base*100)
	}
	if !(heavy > base) {
		t.Errorf("heavy-write error %.3f not worse than baseline %.3f", heavy, base)
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "write frac") {
		t.Error("render missing header")
	}
	bad := cfg
	bad.WriteFractions = nil
	if _, err := RunWriteSensitivity(bad); err == nil {
		t.Error("empty fractions should fail")
	}
}

func TestWorkloadIndependence(t *testing.T) {
	cfg := DefaultWorkloadIndependence()
	cfg.CatalogObjects = 40000
	cfg.StepDur = 15
	cfg.Discard = 4
	cfg.CalibrationOps = 1200
	res, err := RunWorkloadIndependence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// The paper's claim: calibration is workload-independent, so the one
	// benchmark must keep predicting across skews and size regimes. The
	// large-object variant legitimately stresses the model (long
	// transfers, heavy chunking), so it gets a looser bound.
	for _, pt := range res.Points {
		if math.IsNaN(pt.MeanAbsErr) {
			t.Fatalf("%s: no prediction", pt.Name)
		}
		bound := 0.12
		if strings.Contains(pt.Name, "large objects") {
			bound = 0.20
		}
		if pt.MeanAbsErr > bound {
			t.Errorf("%s: mean abs error %.1f%% — calibration did not transfer", pt.Name, pt.MeanAbsErr*100)
		}
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "baseline") {
		t.Error("render missing variants")
	}
	bad := cfg
	bad.StepDur = 1
	bad.Discard = 2
	if _, err := RunWorkloadIndependence(bad); err == nil {
		t.Error("bad durations should fail")
	}
}
