package experiments

import (
	"fmt"
	"math"
	"testing"

	"cosmodel/internal/simstore"
	"cosmodel/internal/trace"
)

// codedScenario is a scaled-down striped-read sweep over 6 devices.
func codedScenario(n, k int, seed int64) ScenarioConfig {
	cfg := simstore.DefaultConfig()
	cfg.Backends = 6
	cfg.Replicas = n
	cfg.StripeK = k
	return ScenarioConfig{
		Name:           fmt.Sprintf("coded-%d-%d", n, k),
		Sim:            cfg,
		CatalogObjects: 30000,
		ZipfS:          1.05,
		WarmRate:       40,
		WarmDur:        15,
		RateStart:      20,
		RateEnd:        60,
		RateStep:       20,
		StepDur:        10,
		StepDiscard:    3,
		CalibrationOps: 1500,
		Seed:           seed,
	}
}

func checkCodedResult(t *testing.T, res *CodedResult, label string) {
	t.Helper()
	if res.Analyzed() < 2 {
		t.Fatalf("%s: only %d analyzed steps", label, res.Analyzed())
	}
	for _, st := range res.Steps {
		if st.Skipped {
			t.Logf("%s: rate %v skipped: %s", label, st.Rate, st.Reason)
			continue
		}
		for i := range res.SLAs {
			if p := st.Predicted[i]; p < -1e-9 || p > 1+1e-9 || math.IsNaN(p) {
				t.Fatalf("%s: rate %v SLA %d: prediction %v outside [0,1]", label, st.Rate, i, p)
			}
		}
		// Percentile meeting a looser SLA can only be higher.
		if st.Predicted[0] > st.Predicted[1]+1e-9 || st.Predicted[1] > st.Predicted[2]+1e-9 {
			t.Errorf("%s: rate %v: predictions not monotone in SLA: %v", label, st.Rate, st.Predicted)
		}
	}
	mae := res.MAE()
	t.Logf("%s: MAE %.4f over %d analyzed steps", label, mae, res.Analyzed())
	if !(mae <= 0.10) {
		t.Errorf("%s: MAE %.3f exceeds 0.10", label, mae)
	}
}

// TestCodedReplicationVsEC validates the order-statistic model against
// simulated ground truth for the two canonical layouts: speculative
// replication (fastest of 3 full reads) and erasure coding (4-of-6 stripe).
func TestCodedReplicationVsEC(t *testing.T) {
	repl, err := RunCodedScenario(codedScenario(3, 1, 31))
	if err != nil {
		t.Fatal(err)
	}
	checkCodedResult(t, repl, "replication(3,1)")

	sc := codedScenario(6, 4, 32)
	// Every stripe touches all 6 devices, so per-device load equals the
	// offered rate; keep the sweep in the analyzable regime.
	sc.WarmRate = 25
	sc.RateStart, sc.RateEnd, sc.RateStep = 10, 30, 10
	ec, err := RunCodedScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	checkCodedResult(t, ec, "EC(6,4)")
}

// TestCodedHedgeDelaySweep validates hedged reads at the boundary delays
// (Δ=0 ≡ plain fastest-of-n, Δ→∞ ≡ primaries only) and one tail-cutting
// delay in between.
func TestCodedHedgeDelaySweep(t *testing.T) {
	for _, delay := range []float64{0, 0.020, math.Inf(1)} {
		sc := codedScenario(3, 1, 33)
		sc.Sim.Hedge = true
		sc.Sim.HedgeDelay = delay
		sc.RateStart, sc.RateEnd, sc.RateStep = 20, 40, 20
		res, err := RunCodedScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("hedge Δ=%v", delay)
		checkCodedResult(t, res, label)
		for _, st := range res.Steps {
			if st.Skipped {
				continue
			}
			switch {
			case math.IsInf(delay, 1):
				if st.Hedges != 0 {
					t.Errorf("%s: rate %v: %d reserves issued", label, st.Rate, st.Hedges)
				}
			case delay == 0:
				// Every GET hedges its n-k reserves immediately.
				if st.Hedges < st.Responses {
					t.Errorf("%s: rate %v: hedges %d below responses %d", label, st.Rate, st.Hedges, st.Responses)
				}
			default:
				// A tail-cutting delay hedges a strict minority.
				if st.Hedges == 0 || st.Hedges >= 2*st.Responses {
					t.Errorf("%s: rate %v: hedges %d of %d responses", label, st.Rate, st.Hedges, st.Responses)
				}
			}
		}
	}
}

// TestParetoSizesSweep swaps the lognormal object sizes for a heavy-tailed
// Pareto mix and checks the model still tracks the fattened latency tail.
func TestParetoSizesSweep(t *testing.T) {
	sc := smallS1()
	sc.Name = "S1-pareto"
	sc.Sizes = trace.ParetoSizes(32*1024, 1.4)
	sc.RateStart, sc.RateEnd, sc.RateStep = 60, 180, 60
	sc.Seed = 34
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.AnalyzedSteps() < 2 {
		t.Fatalf("only %d analyzed steps", res.AnalyzedSteps())
	}
	for _, i := range []int{1, 2} {
		mean := res.ErrorSummary(i, "our").Mean
		t.Logf("SLA %v: mean abs error %.4f with Pareto sizes", res.SLAs[i], mean)
		if !(mean <= 0.10) {
			t.Errorf("SLA %v: mean abs error %.3f exceeds 0.10 with Pareto sizes", res.SLAs[i], mean)
		}
	}
}
